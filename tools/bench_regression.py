#!/usr/bin/env python3
"""Performance-regression gate for the star-area bench.

Runs bench_star_area (sizes capped at n <= 7 so the gate stays fast), takes
the best of several runs per size, and compares construct/validate timings
against the committed BENCH_star_area.json baseline.  Fails when either
phase regresses by more than the threshold at any size; small absolute
times are exempted by a noise floor, since sub-millisecond phases on a
shared machine jitter far beyond any realistic regression.

A second mode gates the telemetry layer itself:

    bench_regression.py --telemetry-overhead <bench-binary>

runs the same table sweep with an active trace (STARLAY_BENCH_TELEMETRY=1)
and with tracing disabled (=0), best-of several runs each, and fails when
the traced sweep is more than OVERHEAD_THRESHOLD slower.  This is the
"<2% overhead" contract of DESIGN.md's telemetry section.

A third mode gates the out-of-core engine's memory contract:

    bench_regression.py --shard-rss <bench_shard_certify-binary>

runs one sharded star n = SHARD_GATE_N certification (the bench collapses
to a single auto-sharded row at n >= 9) and fails when any process — any
forked worker or the coordinator — peaks above SHARD_RSS_CEILING_MB, when
the run is invalid, or when the fingerprint cross-check fails.  This is
DESIGN.md's bounded-RSS promise for core/star_shard.hpp: the working set
is the band, not n!.

A fourth mode gates the optimization passes' payoff:

    bench_regression.py --area-improvement <bench-binary> [baseline-json]

runs one bench sweep capped at n <= AREA_GATE_N with the optimized pass
pipeline enabled (the bench streams each size through --passes
refine,compact into a certifier) and fails unless, at every gated size,
the optimized layout certifies clean and its area is strictly below the
unoptimized area at n >= AREA_GATE_STRICT_N (tiny sizes have nothing to
compact away, so they only need area <= unoptimized).  The committed
baseline's area_over_claim_compacted also must not drift up: layouts are
deterministic, so any growth is a real optimization regression, not noise.

A fifth mode gates certified wirelength against drift:

    bench_regression.py --wirelength <bench_wirelength-binary> [baseline-json]

runs the bench_wirelength table once (the sweep is fully deterministic:
construction is thread-invariant and pinned by the metamorphic relations)
and compares every per-(family, n) row against the committed
BENCH_wirelength.json with *exact* equality on wire_length,
max_wire_length, area, wires, N, and wl_grid_host.  Any difference is a
construction change, not noise — the new totals must be re-committed
alongside the code that moved them.

A sixth mode gates the layout service's cache payoff:

    bench_regression.py --serve-p99 <starlay_load-binary> <starlayd-binary>

spawns starlayd on a private unix socket, drives the saturation mix
(SERVE_CLIENTS clients, SERVE_REQUESTS requests, ~95% one hot star n=7
request), and fails unless the cache hit rate reaches SERVE_HIT_RATE_MIN
and the p99 latency over cache hits is at least SERVE_SPEEDUP_MIN times
below the cold build latency of the same request.  This is DESIGN.md's
service contract: a warm daemon answers from snapshots, not rebuilds.

Usage: bench_regression.py [--phase construct|validate] <bench-binary> [baseline-json]
       bench_regression.py --telemetry-overhead <bench-binary>
       bench_regression.py --shard-rss <bench_shard_certify-binary>
       bench_regression.py --area-improvement <bench-binary> [baseline-json]
       bench_regression.py --wirelength <bench_wirelength-binary> [baseline-json]
       bench_regression.py --serve-p99 <starlay_load-binary> <starlayd-binary>
Environment: STARLAY_THREADS is forced to the baseline's thread count so
timings are compared like for like.

--phase restricts the gate to one phase's timings: the `bench_star_regression`
ctest entry gates construct_ms and `bench_validate_regression` gates
validate_ms, so a regression report names the phase that moved in the test
name itself.  Without --phase both are gated (the manual invocation).

Wired into CTest as `bench_star_regression`, `bench_validate_regression`,
`bench_telemetry_overhead`, `bench_shard_rss`, `bench_wirelength_drift`,
and `bench_serve_latency` with LABEL perf:
    ctest -L perf
"""

import json
import os
import subprocess
import sys
import tempfile

MAX_N = 7  # sizes above this are scaling runs, not gate material
RUNS = 3  # best-of, to shed scheduler noise
THRESHOLD = 0.15  # fail on >15% regression
NOISE_FLOOR_MS = 2.0  # phases this fast are all jitter
OVERHEAD_THRESHOLD = 0.02  # telemetry may cost at most 2% ...
OVERHEAD_NOISE_FLOOR_MS = 10.0  # ... beyond scheduler jitter
SHARD_GATE_N = 10  # 3.63M vertices, 16.3M edges: big enough to bind
SHARD_RSS_CEILING_MB = 2048  # per-process peak RSS ceiling (workers too)
SHARD_GATE_WORKERS = 2  # forked, so worker RSS is measured separately
AREA_GATE_N = 8  # optimization-payoff sweep cap (40320 nodes, 141K wires)
AREA_GATE_STRICT_N = 6  # sizes from here up must *strictly* improve
AREA_DRIFT = 0.001  # deterministic areas: any real drift exceeds this
# Saturation concurrency, capped by the core count: on a box with fewer
# cores than clients the p99 tail measures the scheduler's timeslice, not
# the service (each ready thread waits out the others' quanta).
SERVE_CLIENTS = max(1, min(4, os.cpu_count() or 1))
SERVE_REQUESTS = 2000  # enough traffic for a stable p99
SERVE_HIT_RATE_MIN = 0.90  # repeated-request mix must mostly hit the cache
SERVE_SPEEDUP_MIN = 10.0  # hit p99 must sit >= 10x below the cold build
SERVE_RUNS = 3  # best-of, to shed scheduler noise in the hit-latency tail


def run_bench(binary, env):
    """Runs the bench once and returns its JSON rows keyed by n."""
    subprocess.run(
        [binary, "--benchmark_filter=NONE"],
        cwd=os.path.dirname(binary) or ".",
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    out = os.path.join(os.path.dirname(binary) or ".", "BENCH_star_area.json")
    with open(out, encoding="utf-8") as f:
        return {row["n"]: row for row in json.load(f)}


def telemetry_overhead(binary):
    """Compares the table sweep traced vs untraced; fails on >2% overhead."""
    base_env = dict(os.environ)
    base_env["STARLAY_BENCH_MAX_N"] = str(MAX_N)

    def sweep_ms(telemetry):
        env = dict(base_env)
        env["STARLAY_BENCH_TELEMETRY"] = "1" if telemetry else "0"
        env["STARLAY_BENCH_PASSES"] = "0"  # timing sweep; skip the optimized run
        best = float("inf")
        for _ in range(RUNS):
            rows = run_bench(binary, env)
            total = sum(r["construct_ms"] + r["validate_ms"] for r in rows.values())
            best = min(best, total)
        return best

    off_ms = sweep_ms(False)
    on_ms = sweep_ms(True)
    overhead_ms = on_ms - off_ms
    pct = 100.0 * overhead_ms / off_ms if off_ms > 0 else 0.0
    print(f"table sweep (n <= {MAX_N}, best of {RUNS}):")
    print(f"  telemetry off: {off_ms:8.2f}ms")
    print(f"  telemetry on:  {on_ms:8.2f}ms  (overhead {overhead_ms:+.2f}ms, {pct:+.2f}%)")
    if overhead_ms > off_ms * OVERHEAD_THRESHOLD and overhead_ms > OVERHEAD_NOISE_FLOOR_MS:
        print(f"\nFAIL: telemetry overhead exceeds {OVERHEAD_THRESHOLD:.0%} "
              f"(+{OVERHEAD_NOISE_FLOOR_MS}ms noise floor)")
        return 1
    print(f"\nPASS: telemetry overhead within {OVERHEAD_THRESHOLD:.0%} "
          f"(+{OVERHEAD_NOISE_FLOOR_MS}ms noise floor)")
    return 0


def shard_rss(binary):
    """Runs one sharded n=SHARD_GATE_N certification; gates per-process RSS."""
    env = dict(os.environ)
    env["STARLAY_BENCH_SHARD_N"] = str(SHARD_GATE_N)
    env["STARLAY_BENCH_SHARD_WORKERS"] = str(SHARD_GATE_WORKERS)
    # A sharded n = 10 run takes minutes; one run is the gate (RSS is a
    # hard ceiling, not a timing, so best-of repetition buys nothing).
    subprocess.run(
        [binary, "--benchmark_filter=NONE"],
        cwd=os.path.dirname(binary) or ".",
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    out = os.path.join(os.path.dirname(binary) or ".", "BENCH_shard_certify.json")
    with open(out, encoding="utf-8") as f:
        rows = json.load(f)
    if not rows:
        print(f"no rows in {out}")
        return 2

    failures = []
    for row in rows:
        peak_mb = max(row["coordinator_rss_mb"], row["worker_rss_mb"])
        verdict = "ok"
        if peak_mb > SHARD_RSS_CEILING_MB:
            verdict = "OVER CEILING"
            failures.append(
                f"n={row['n']} shards={row['shards']} workers={row['workers']}: "
                f"peak {peak_mb:.0f}MiB > ceiling {SHARD_RSS_CEILING_MB}MiB")
        if not row["valid"]:
            verdict = "INVALID"
            failures.append(f"n={row['n']}: certification reported invalid")
        if not row["fp_match"]:
            verdict = "FP MISMATCH"
            failures.append(f"n={row['n']}: fingerprint cross-check failed")
        print(f"n={row['n']} shards={row['shards']} workers={row['workers']}: "
              f"wall {row['wall_s']:.1f}s  coordinator {row['coordinator_rss_mb']:.0f}MiB  "
              f"worker {row['worker_rss_mb']:.0f}MiB  spill {row['spill_mb']:.0f}MiB  "
              f"[{verdict}]")

    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nPASS: sharded n={SHARD_GATE_N} certify valid and under "
          f"{SHARD_RSS_CEILING_MB}MiB peak RSS in every process")
    return 0


def area_improvement(binary, baseline_path):
    """Gates the optimized pass pipeline's area payoff against the baseline."""
    env = dict(os.environ)
    env["STARLAY_BENCH_MAX_N"] = str(AREA_GATE_N)
    env["STARLAY_BENCH_TELEMETRY"] = "0"
    env["STARLAY_BENCH_PASSES"] = "1"
    # One run: layouts (and therefore areas) are deterministic, so best-of
    # repetition buys nothing here.
    rows = run_bench(binary, env)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = {row["n"]: row for row in json.load(f)}

    failures = []
    for n, row in sorted(rows.items()):
        if "area_compacted" not in row:
            failures.append(f"n={n}: bench emitted no optimized-pipeline columns")
            continue
        area, opt = row["area"], row["area_compacted"]
        saved_pct = 100.0 * (area - opt) / area if area > 0 else 0.0
        verdict = "ok"
        if not row["compact_valid"]:
            verdict = "INVALID"
            failures.append(f"n={n}: optimized layout failed certification")
        elif n >= AREA_GATE_STRICT_N and opt >= area:
            verdict = "NO GAIN"
            failures.append(
                f"n={n}: optimized area {opt:.0f} not strictly below "
                f"unoptimized {area:.0f}")
        elif opt > area:
            verdict = "GREW"
            failures.append(
                f"n={n}: optimized area {opt:.0f} above unoptimized {area:.0f}")
        ref = baseline.get(n, {}).get("area_over_claim_compacted")
        if ref is not None and row["area_over_claim_compacted"] > ref * (1 + AREA_DRIFT):
            verdict = "DRIFTED"
            failures.append(
                f"n={n}: area_over_claim_compacted "
                f"{row['area_over_claim_compacted']:.4f} above baseline {ref:.4f}")
        print(f"n={n}: area {area:12.0f}  optimized {opt:12.0f}  "
              f"saved {saved_pct:5.2f}%  [{verdict}]")

    gate = rows.get(AREA_GATE_N)
    if gate is None:
        failures.append(f"bench emitted no n={AREA_GATE_N} row")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nPASS: optimized pipeline certifies clean and strictly shrinks "
          f"star areas at {AREA_GATE_STRICT_N} <= n <= {AREA_GATE_N}")
    return 0


# Certified-quantity columns the wirelength gate pins exactly.  Everything
# here is an integer produced by a deterministic construction, so equality
# is the right comparison — a tolerance would only mask real changes.
WL_EXACT_FIELDS = ("N", "wires", "area", "wire_length", "max_wire_length",
                   "wl_grid_host")


def wirelength_drift(binary, baseline_path):
    """Re-runs bench_wirelength; gates every row against exact equality."""
    env = dict(os.environ)
    env["STARLAY_BENCH_TELEMETRY"] = "0"
    # One run: the sweep is fully deterministic (thread-invariant
    # construction, pinned by the metamorphic relations), so best-of
    # repetition buys nothing and equality needs no noise floor.
    subprocess.run(
        [binary, "--benchmark_filter=NONE"],
        cwd=os.path.dirname(binary) or ".",
        env=env,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    out = os.path.join(os.path.dirname(binary) or ".", "BENCH_wirelength.json")
    with open(out, encoding="utf-8") as f:
        rows = {(row["family"], row["n"]): row for row in json.load(f)}
    with open(baseline_path, encoding="utf-8") as f:
        baseline = {(row["family"], row["n"]): row for row in json.load(f)}
    if not baseline:
        print(f"no baseline rows in {baseline_path}")
        return 2

    failures = []
    for key in sorted(baseline):
        family, n = key
        ref = baseline[key]
        row = rows.get(key)
        if row is None:
            failures.append(f"{family} n={n}: row missing from fresh run")
            print(f"{family:>20} n={n}: MISSING")
            continue
        drifted = [f"{field} {row[field]} != baseline {ref[field]}"
                   for field in WL_EXACT_FIELDS if row[field] != ref[field]]
        verdict = "ok" if not drifted else "DRIFTED"
        if drifted:
            failures.append(f"{family} n={n}: " + ", ".join(drifted))
        print(f"{family:>20} n={n}: wl {row['wire_length']:>12} "
              f"max {row['max_wire_length']:>6}  [{verdict}]")
    for key in sorted(set(rows) - set(baseline)):
        family, n = key
        failures.append(
            f"{family} n={n}: new row not in baseline (re-commit "
            f"BENCH_wirelength.json alongside the bench change)")
        print(f"{family:>20} n={n}: NOT IN BASELINE")

    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nPASS: all {len(baseline)} (family, n) rows match the committed "
          "baseline exactly on " + ", ".join(WL_EXACT_FIELDS))
    return 0


def serve_p99(load_binary, daemon_binary):
    """Drives starlayd via starlay_load; gates hit rate and hit-p99 payoff."""
    best = None
    with tempfile.TemporaryDirectory(prefix="starlay_serve_gate.") as tmp:
        out = os.path.join(tmp, "BENCH_serve.json")
        for _ in range(SERVE_RUNS):
            subprocess.run(
                [load_binary, "--daemon", daemon_binary,
                 "--clients", str(SERVE_CLIENTS),
                 "--requests", str(SERVE_REQUESTS),
                 "--out", out],
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            with open(out, encoding="utf-8") as f:
                row = json.load(f)[0]
            # Each run spawns a fresh daemon, so cold_ms is a real cold
            # build every time; keep the run with the best hit-p99 tail.
            if best is None or row["hit_p99_ms"] < best["hit_p99_ms"]:
                best = row

    speedup = best["cold_ms"] / best["hit_p99_ms"] if best["hit_p99_ms"] > 0 else float("inf")
    print(f"saturation mix ({best['clients']} clients, {best['requests']} requests, "
          f"best of {SERVE_RUNS}):")
    print(f"  rps        {best['rps']:10.1f}")
    print(f"  p50 / p99  {best['p50_ms']:.4f} / {best['p99_ms']:.4f} ms")
    print(f"  hit rate   {best['hit_rate']:10.4f}  "
          f"(hits {best['hits']}, misses {best['misses']}, joins {best['joins']})")
    print(f"  hit p99    {best['hit_p99_ms']:10.4f} ms")
    print(f"  cold build {best['cold_ms']:10.3f} ms ({best['cold_verdict']})  "
          f"-> {speedup:.1f}x over hit p99")

    failures = []
    if best["cold_verdict"] != "miss":
        failures.append("cold build was not a cache miss (daemon not fresh?)")
    if best["hit_rate"] < SERVE_HIT_RATE_MIN:
        failures.append(
            f"hit rate {best['hit_rate']:.4f} below {SERVE_HIT_RATE_MIN}")
    if speedup < SERVE_SPEEDUP_MIN:
        failures.append(
            f"hit p99 {best['hit_p99_ms']:.4f}ms only {speedup:.1f}x below "
            f"cold build {best['cold_ms']:.3f}ms (want >= {SERVE_SPEEDUP_MIN}x)")
    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print(f"\nPASS: cache hit rate >= {SERVE_HIT_RATE_MIN} and hit p99 "
          f">= {SERVE_SPEEDUP_MIN:.0f}x below the cold build")
    return 0


def main():
    args = sys.argv[1:]
    phases = ("construct_ms", "validate_ms")
    if args and args[0] == "--phase":
        if len(args) < 2 or args[1] not in ("construct", "validate"):
            print(__doc__)
            return 2
        phases = (args[1] + "_ms",)
        args = args[2:]
    if not args:
        print(__doc__)
        return 2
    if args[0] == "--telemetry-overhead":
        if len(args) < 2:
            print(__doc__)
            return 2
        return telemetry_overhead(os.path.abspath(args[1]))
    if args[0] == "--shard-rss":
        if len(args) < 2:
            print(__doc__)
            return 2
        return shard_rss(os.path.abspath(args[1]))
    if args[0] == "--serve-p99":
        if len(args) < 3:
            print(__doc__)
            return 2
        return serve_p99(os.path.abspath(args[1]), os.path.abspath(args[2]))
    if args[0] == "--wirelength":
        if len(args) < 2:
            print(__doc__)
            return 2
        baseline_path = (
            args[2]
            if len(args) > 2
            else os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                              "BENCH_wirelength.json")
        )
        return wirelength_drift(os.path.abspath(args[1]), baseline_path)
    if args[0] == "--area-improvement":
        if len(args) < 2:
            print(__doc__)
            return 2
        baseline_path = (
            args[2]
            if len(args) > 2
            else os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                              "BENCH_star_area.json")
        )
        return area_improvement(os.path.abspath(args[1]), baseline_path)
    binary = os.path.abspath(args[0])
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                          "BENCH_star_area.json")
    )
    with open(baseline_path, encoding="utf-8") as f:
        baseline = {row["n"]: row for row in json.load(f) if row["n"] <= MAX_N}
    if not baseline:
        print(f"no baseline rows at n <= {MAX_N} in {baseline_path}")
        return 2

    env = dict(os.environ)
    env["STARLAY_BENCH_MAX_N"] = str(MAX_N)
    # The committed baseline predates the bench-table trace; compare with
    # tracing off (the overhead gate covers the traced path separately).
    env["STARLAY_BENCH_TELEMETRY"] = "0"
    # Timing gate: the optimized-pipeline run is gated by --area-improvement
    # on its own schedule, so skip it here to keep best-of sweeps lean.
    env["STARLAY_BENCH_PASSES"] = "0"
    threads = next(iter(baseline.values())).get("threads")
    if threads:
        env["STARLAY_THREADS"] = str(threads)

    best = {}
    for _ in range(RUNS):
        for n, row in run_bench(binary, env).items():
            if n not in baseline:
                continue
            cur = best.setdefault(n, {key: float("inf") for key in phases})
            for key in cur:
                cur[key] = min(cur[key], row[key])

    failures = []
    for n, row in sorted(best.items()):
        for key in phases:
            now, ref = row[key], baseline[n][key]
            verdict = "ok"
            if now > ref * (1 + THRESHOLD) and now - ref > NOISE_FLOOR_MS:
                verdict = "REGRESSION"
                failures.append(f"n={n} {key}: {now:.2f}ms vs baseline {ref:.2f}ms")
            print(f"n={n} {key:>13}: {now:8.2f}ms  baseline {ref:8.2f}ms  [{verdict}]")

    if failures:
        print("\nFAIL: " + "; ".join(failures))
        return 1
    print("\nPASS: no phase regressed beyond "
          f"{THRESHOLD:.0%} (+{NOISE_FLOOR_MS}ms noise floor) at n <= {MAX_N}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
