#!/usr/bin/env bash
# Sanitizer sweep over the concurrency- and streaming-critical suites.
#
#   tools/san_check.sh                    # thread + address+undefined
#   tools/san_check.sh thread             # just one sanitizer
#   tools/san_check.sh address+undefined
#
# Each sanitizer gets its own build tree (build-tsan/, build-asan/) configured
# with -DSTARLAY_SANITIZE=<san>.  TSan covers the parallel layout engine
# (determinism suite + permutation enumerator at STARLAY_THREADS=8) and the
# telemetry engine (spans, counters, and the RSS sampler thread race against
# pool workers; STARLAY_TELEMETRY is forced ON in these trees); ASan+UBSan
# additionally covers the streaming pipeline, whose sink replay / adjacency
# release paths are the most pointer-lifetime-sensitive code in the tree, and
# sweeps the SIMD kernel suites once per forced level (STARLAY_SIMD=scalar,
# sse4, avx2) so every compiled vector variant's loads, tails, and masked
# compares run instrumented — not just the level this machine auto-selects.
# Both sweeps replay the starcheck corpus so every pinned family shape runs
# its oracle + metamorphic battery under the sanitizer, and both run the
# layout-service suite (single-flight races, LRU bookkeeping) since the
# daemon's locking is the youngest concurrent code in the tree.
# A toolchain without a given sanitizer runtime skips it with a notice and
# does not fail the sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

SANITIZERS=("$@")
if [ ${#SANITIZERS[@]} -eq 0 ]; then
  SANITIZERS=(thread address+undefined)
fi

TARGETS=(parallel_determinism_test permutation_test stream_pipeline_test
         pass_pipeline_test shard_engine_test telemetry_test builder_api_test
         wirelength_test kernels_test validate_test serve_test starcheck)

for SAN in "${SANITIZERS[@]}"; do
  case "$SAN" in
    thread)                    BUILD=build-tsan ;;
    address|address+undefined) BUILD=build-asan ;;
    undefined)                 BUILD=build-ubsan ;;
    *) echo "san_check: unknown sanitizer '$SAN' (want thread|address|undefined|address+undefined)" >&2; exit 2 ;;
  esac

  cmake -B "$BUILD" -S . -DSTARLAY_SANITIZE="$SAN" -DSTARLAY_BUILD_BENCH=OFF \
        -DSTARLAY_BUILD_EXAMPLES=OFF -DSTARLAY_TELEMETRY=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo
  if ! cmake --build "$BUILD" -j "$(nproc)" --target "${TARGETS[@]}"; then
    echo "san_check: build with -fsanitize=$SAN failed (toolchain without $SAN?); skipping" >&2
    continue
  fi

  export STARLAY_THREADS=8
  export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
  export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1"
  export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1"
  "$BUILD"/tests/parallel_determinism_test
  "$BUILD"/tests/permutation_test --gtest_filter='*Enumerator*'
  "$BUILD"/tests/telemetry_test
  "$BUILD"/tests/builder_api_test
  # Wirelength: FingerprintingSink's bulk path reduces total/max via relaxed
  # atomics inside fold_chunked — the exact pattern a thread sweep must see;
  # the brute-force segment sums also walk every wire's point array.
  "$BUILD"/tests/wirelength_test
  # Pass pipeline: the refine guard's double-route and compaction's
  # snapshot/restore cycles run the router's parallel stages twice per
  # build — prime territory for both sweeps.
  "$BUILD"/tests/pass_pipeline_test
  # Layout service: single-flight leader election, flight join/notify, and
  # the LRU under the state mutex are the newest lock-ordering code in the
  # tree; the concurrency suite drives 8 racing clients through them.
  "$BUILD"/tests/serve_test
  # Corpus replay: every pinned shape runs the full oracle + metamorphic
  # battery (thread sweep included), which exercises the builders, the
  # streaming certifier, and the pool under the sanitizer in one pass.
  "$BUILD"/cli/starcheck --replay tests/starcheck_corpus.txt
  if [ "$SAN" != thread ]; then
    "$BUILD"/tests/stream_pipeline_test
    # Out-of-core sharding (ctest label `shard`): mmap'd spill records,
    # fork/wait worker lifecycles, and the coordinator merges are exactly
    # the pointer-lifetime-sensitive paths the address sweep exists for.
    # Skipped under tsan: the engine pins the pool to one thread around
    # fork(), so there is no cross-thread interleaving to observe.
    "$BUILD"/tests/shard_engine_test
    # Kernel sweep at every forced level.  Unsupported requests clamp down
    # (never error), so the sweep is runnable on any host; on full AVX2
    # hardware each level's vector loads, scalar tails, and the dispatch
    # plumbing all run instrumented.
    for LEVEL in scalar sse4 avx2; do
      echo "san_check: $SAN kernels at STARLAY_SIMD=$LEVEL"
      STARLAY_SIMD=$LEVEL "$BUILD"/tests/kernels_test
      STARLAY_SIMD=$LEVEL "$BUILD"/tests/validate_test
    done
  fi
  echo "san_check: $SAN clean"
done
echo "san_check: done"
