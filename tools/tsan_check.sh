#!/usr/bin/env bash
# Back-compat entry point: the race check grew an AddressSanitizer leg and
# now lives in san_check.sh.  This wrapper runs just the thread-sanitizer
# pass, preserving the historical behaviour (and build-tsan/ tree).
exec "$(dirname "$0")/san_check.sh" thread
