#!/usr/bin/env bash
# Race check for the parallel layout engine: build with -fsanitize=thread and
# run the determinism suite (the only tests that exercise >1 worker) plus the
# permutation suite at STARLAY_THREADS=8.  Part of the tier-1 flow on
# machines where TSan is available; exits 0 with a notice where it is not.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD=build-tsan
cmake -B "$BUILD" -S . -DSTARLAY_SANITIZE=thread -DSTARLAY_BUILD_BENCH=OFF \
      -DSTARLAY_BUILD_EXAMPLES=OFF -DCMAKE_BUILD_TYPE=RelWithDebInfo
if ! cmake --build "$BUILD" -j "$(nproc)" --target parallel_determinism_test permutation_test; then
  echo "tsan_check: build with -fsanitize=thread failed (toolchain without TSan?); skipping" >&2
  exit 0
fi

export STARLAY_THREADS=8
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
"$BUILD"/tests/parallel_determinism_test
"$BUILD"/tests/permutation_test --gtest_filter='*Enumerator*'
echo "tsan_check: clean"
