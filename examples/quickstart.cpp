// Quickstart: lay out a 5-dimensional star graph, certify it, inspect it.
//
//   $ ./quickstart [n] [out.svg]
//
// Walks through the core API: build the network, build the paper's
// hierarchical layout, validate it under the Thompson rules, compare the
// measured area against the paper's N^2/16 target and the BATT lower
// bound, and emit an SVG for visual inspection.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/render/render.hpp"
#include "starlay/support/math.hpp"

int main(int argc, char** argv) {
  using namespace starlay;
  const int n = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::string svg_path = argc > 2 ? argv[2] : "star" + std::to_string(n) + ".svg";
  if (n < 3 || n > 8) {
    std::fprintf(stderr, "usage: %s [n in 3..8] [out.svg]\n", argv[0]);
    return 1;
  }

  // 1. The construction: recursive substar placement + channel routing.
  std::printf("laying out the %d-star (%lld nodes, %lld links)...\n", n,
              static_cast<long long>(factorial(n)),
              static_cast<long long>(factorial(n) * (n - 1) / 2));
  const core::StarLayoutResult r = core::star_layout(n);

  // 2. Certification: the validator re-checks every Thompson-model rule.
  layout::ValidationOptions vopt;
  vopt.thompson_node_size = true;
  const auto rep = layout::validate_layout(r.graph, r.routed.layout, vopt);
  std::printf("validator: %s (%lld segments, %d layers)\n", rep.ok ? "CLEAN" : "VIOLATIONS",
              static_cast<long long>(rep.num_segments), rep.num_layers);
  if (!rep.ok) {
    for (const auto& e : rep.errors) std::printf("  %s\n", e.c_str());
    return 1;
  }

  // 3. The numbers the paper is about.
  const double N = static_cast<double>(factorial(n));
  const double area = static_cast<double>(r.routed.layout.area());
  std::printf("area:        %.0f  (= %.0f x %.0f)\n", area,
              static_cast<double>(r.routed.layout.width()),
              static_cast<double>(r.routed.layout.height()));
  std::printf("N^2/16:      %.0f  (measured/claimed = %.3f; -> 1 as n grows)\n",
              core::star_area(N), area / core::star_area(N));
  std::printf("BATT lower:  %.0f  (Theorem 3.2 with Lemma 3.6's TE throughput)\n",
              core::area_lb_batt(factorial(n), core::star_te_time(n, N)));
  std::printf("Sykora-Vrto: %.0f  (prior best; we use %.1f%% of it)\n",
              core::sykora_vrto_star_area(N), 100.0 * area / core::sykora_vrto_star_area(N));
  std::printf("wire length: total %lld, max %lld\n",
              static_cast<long long>(r.routed.layout.total_wire_length()),
              static_cast<long long>(r.routed.layout.max_wire_length()));

  // 4. A picture.
  render::SvgOptions sopt;
  sopt.scale = n <= 5 ? 6.0 : 2.0;
  render::write_svg(r.routed.layout, svg_path, sopt);
  std::printf("wrote %s\n", svg_path.c_str());
  return 0;
}
