// Design-space explorer: the trade study a machine architect would run
// with this library.  For each candidate interconnect near a target node
// count, report measured layout area (2-layer and multilayer where
// supported), bisection-width witnesses, and total-exchange capability.
//
//   $ ./design_explorer [~target-nodes]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "starlay/bisect/bisect.hpp"
#include "starlay/comm/te.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/properties.hpp"

namespace {

struct Candidate {
  std::string name;
  starlay::topology::Graph graph;
  starlay::layout::RoutedLayout routed;
  starlay::layout::Placement placement;
};

void report(Candidate& c) {
  using namespace starlay;
  const auto rep = layout::validate_layout(c.graph, c.routed.layout);
  const std::int32_t N = c.graph.num_vertices();
  const double area = static_cast<double>(c.routed.layout.area());
  const auto slice = bisect::layout_slice_bisection(c.graph, c.placement);
  const std::int32_t diam = topology::diameter_from(c.graph, 0);
  double te = -1;
  if (N <= 256) {
    const comm::DistanceTable dt(c.graph);
    te = static_cast<double>(comm::greedy_te(c.graph, dt).steps);
  }
  std::printf("%-12s %7d %6d %7d %14.0f %10.4f %9lld %8.0f %s\n", c.name.c_str(), N,
              c.graph.degree(0), diam, area, area / (static_cast<double>(N) * N),
              static_cast<long long>(slice.width), te, rep.ok ? "" : "  ** INVALID **");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starlay;
  const int target = argc > 1 ? std::atoi(argv[1]) : 720;

  std::printf("candidate interconnects near %d nodes\n", target);
  std::printf("(area measured on real validated layouts; bisection = layout-slice witness;\n"
              " TE = greedy all-port total-exchange steps, simulated when N <= 256)\n\n");
  std::printf("%-12s %7s %6s %7s %14s %10s %9s %8s\n", "network", "nodes", "deg", "diam",
              "area", "area/N^2", "bisect<=", "TE");

  // Star graph: the n with n! closest to target.
  int n = 3;
  while (n < 9 && factorial(n + 1) <= 2 * static_cast<std::int64_t>(target)) ++n;
  {
    auto r = core::star_layout(n);
    Candidate c{"star-" + std::to_string(n), std::move(r.graph), std::move(r.routed),
                std::move(r.structure.placement)};
    report(c);
  }
  // Hypercube: 2^d closest to target.
  int d = 2;
  while (d < 14 && (1 << (d + 1)) <= 2 * target) ++d;
  {
    auto r = core::hypercube_layout(d);
    Candidate c{"Q-" + std::to_string(d), std::move(r.graph), std::move(r.routed),
                core::hypercube_placement(d)};
    report(c);
  }
  // HCN/HFN: 2^(2h) closest to target.
  int h = 1;
  while (h < 5 && (1 << (2 * (h + 1))) <= 2 * target) ++h;
  {
    auto r = core::hcn_layout(h);
    Candidate c{"HCN-" + std::to_string(1 << (2 * h)), std::move(r.graph), std::move(r.routed),
                std::move(r.placement)};
    report(c);
  }
  {
    auto r = core::hfn_layout(h);
    Candidate c{"HFN-" + std::to_string(1 << (2 * h)), std::move(r.graph), std::move(r.routed),
                std::move(r.placement)};
    report(c);
  }
  // Pancake graph, same n as the star.
  {
    auto r = core::permutation_layout(core::PermutationFamily::kPancake, n);
    Candidate c{"pancake-" + std::to_string(n), std::move(r.graph), std::move(r.routed),
                std::move(r.structure.placement)};
    report(c);
  }

  std::printf("\nreading: the star graph packs ~%.1fx denser than the hypercube\n",
              core::star_vs_hypercube_ratio());
  std::printf("(leading constants 1/16 vs 4/9) at comparable node counts, while HCN/HFN\n"
              "match the star's area constant with hypercube-style clusters.\n");
  return 0;
}
