// Design-space explorer: the trade study a machine architect would run
// with this library.  For each candidate interconnect near a target node
// count, report measured layout area, bisection-width witnesses, and
// total-exchange capability.  Every candidate is built through the
// builder registry — the same entry point starlay_cli and the streaming
// pipeline use — so adding a family there makes it explorable here.
//
//   $ ./design_explorer [~target-nodes]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "starlay/bisect/bisect.hpp"
#include "starlay/comm/te.hpp"
#include "starlay/core/build_request.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/properties.hpp"

namespace {

void report(const std::string& family, int n) {
  using namespace starlay;
  core::BuildRequest request;
  request.family = family;
  request.params.n = n;
  auto found = request.resolve();
  if (!found.ok()) {
    std::printf("%-14s (%s)\n", family.c_str(), found.error().message.c_str());
    return;
  }
  auto built = found.value()->try_build(request.params);
  if (!built.ok()) {
    std::printf("%-14s (%s)\n", family.c_str(), built.error().message.c_str());
    return;
  }
  core::BuildResult& r = built.value();

  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  const std::int32_t N = r.graph.num_vertices();
  const double area = static_cast<double>(r.routed.layout.area());
  const auto slice = bisect::layout_slice_bisection(r.graph, r.routed.layout);
  const std::int32_t diam = topology::diameter_from(r.graph, 0);
  double te = -1;
  if (N <= 256) {
    const comm::DistanceTable dt(r.graph);
    te = static_cast<double>(comm::greedy_te(r.graph, dt).steps);
  }
  const std::string label = family + "-" + std::to_string(n);
  std::printf("%-14s %7d %6d %7d %14.0f %10.4f %9lld %8.0f %s\n", label.c_str(), N,
              r.graph.degree(0), diam, area, area / (static_cast<double>(N) * N),
              static_cast<long long>(slice.width), te, rep.ok ? "" : "  ** INVALID **");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starlay;
  const int target = argc > 1 ? std::atoi(argv[1]) : 720;

  std::printf("candidate interconnects near %d nodes\n", target);
  std::printf("(area measured on real validated layouts; bisection = layout-slice witness;\n"
              " TE = greedy all-port total-exchange steps, simulated when N <= 256)\n\n");
  std::printf("%-14s %7s %6s %7s %14s %10s %9s %8s\n", "network", "nodes", "deg", "diam",
              "area", "area/N^2", "bisect<=", "TE");

  // Star graph (and pancake, same vertex count): the n with n! closest
  // to target.
  int n = 3;
  while (n < 9 && factorial(n + 1) <= 2 * static_cast<std::int64_t>(target)) ++n;
  report("star", n);
  report("pancake", n);
  // Hypercube: 2^d closest to target.
  int d = 2;
  while (d < 14 && (1 << (d + 1)) <= 2 * target) ++d;
  report("hypercube", d);
  // HCN/HFN: 2^(2h) closest to target.
  int h = 1;
  while (h < 5 && (1 << (2 * (h + 1))) <= 2 * target) ++h;
  report("hcn", h);
  report("hfn", h);

  std::printf("\nreading: the star graph packs ~%.1fx denser than the hypercube\n",
              core::star_vs_hypercube_ratio());
  std::printf("(leading constants 1/16 vs 4/9) at comparable node counts, while HCN/HFN\n"
              "match the star's area constant with hypercube-style clusters.\n");
  return 0;
}
