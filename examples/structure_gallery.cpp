// Reproduces the structure figures (Fig. 2 and Fig. 3) as SVGs:
//   - 3-star and 4-star (Fig. 2a/2b),
//   - the 6-star's substar decomposition counts (Fig. 2c, printed),
//   - the 64-node HCN and HFN (Fig. 3a/3b).
//
//   $ ./structure_gallery [output-dir]

#include <cstdio>
#include <fstream>
#include <string>

#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"
#include "starlay/topology/properties.hpp"
#include "starlay/render/render.hpp"

namespace {

void write(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  f << content;
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace starlay;
  const std::string dir = argc > 1 ? argv[1] : ".";

  // Fig. 2a/2b: small star graphs.
  write(dir + "/fig2a_star3.svg", render::graph_to_svg(topology::star_graph(3), 120));
  write(dir + "/fig2b_star4.svg", render::graph_to_svg(topology::star_graph(4), 220));

  // Fig. 2c: the 6-star's top view is a K_6 of 5-star supernodes with 4!
  // links per pair — verify and report the counts.
  {
    const auto g = topology::star_graph(6);
    std::int64_t cross = 0;
    for (const auto& e : g.edges())
      if (e.label == 6) ++cross;
    std::printf("6-star: %d nodes, dimension-6 links = %lld (= C(6,2) x 4! = %lld)\n",
                g.num_vertices(), static_cast<long long>(cross),
                static_cast<long long>(15 * factorial(4)));
    std::printf("        each pair of 5-star supernodes joined by %lld links (paper: 4!)\n",
                static_cast<long long>(cross / 15));
  }

  // Fig. 3a/3b: the 64-node HCN and HFN (h = 3).
  write(dir + "/fig3a_hcn64.svg", render::graph_to_svg(topology::hcn(3), 260));
  write(dir + "/fig3b_hfn64.svg", render::graph_to_svg(topology::hfn(3), 260));
  {
    const auto hcn = topology::hcn(3);
    const auto hfn = topology::hfn(3);
    std::printf("HCN-64: degree %d everywhere, diameter %d\n", hcn.degree(0),
                topology::diameter_from(hcn, 0));
    std::printf("HFN-64: diameter %d (folded clusters shorten paths)\n",
                topology::diameter_from(hfn, 0));
  }
  return 0;
}
