// Reproduces Figure 1 of the paper: the 2-D layout of an undirected K_9.
//
//   $ ./k9_figure [out.svg]
//
// Prints the ASCII rendering and channel-track histogram next to the
// paper's reported figures (6 vertical tracks per column channel; 10, 2,
// and 6 horizontal tracks above the three rows) and writes an SVG.

#include <cstdio>
#include <string>

#include "starlay/core/complete2d.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/render/render.hpp"

int main(int argc, char** argv) {
  using namespace starlay;
  const std::string svg_path = argc > 1 ? argv[1] : "k9.svg";

  const core::Complete2DResult r = core::complete2d_layout(9);
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  std::printf("undirected K_9 on a %dx%d node grid — %s\n", r.grid_rows, r.grid_cols,
              rep.ok ? "valid" : "INVALID");

  std::printf("\n%-42s %s\n", "this implementation", "paper (Fig. 1)");
  std::printf("%-42s %s\n", "-------------------", "--------------");
  std::printf("horizontal tracks/row:     %2d %2d %2d          10  2  6\n",
              r.routed.row_channel_tracks[0], r.routed.row_channel_tracks[1],
              r.routed.row_channel_tracks[2]);
  std::printf("vertical tracks/column:    %2d %2d %2d           6  6  6\n",
              r.routed.col_channel_tracks[0], r.routed.col_channel_tracks[1],
              r.routed.col_channel_tracks[2]);
  std::printf("area: %lld\n", static_cast<long long>(r.routed.layout.area()));

  std::printf("\n%s\n", render::to_ascii(r.routed.layout).c_str());
  render::write_svg(r.routed.layout, svg_path, {12.0, true, true, {}});
  std::printf("wrote %s\n", svg_path.c_str());
  return rep.ok ? 0 : 1;
}
