// Service-layer tests for the starlayd engine: the JSON codec, the
// line protocol (golden round-trips and the malformed-request sweep),
// single-flight deduplication under real concurrency, and the LRU byte
// budget.  Everything drives LayoutService::handle_line / acquire
// directly -- the socket layer adds no semantics (see serve/server.hpp),
// so these tests need no networking.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "starlay/core/build_request.hpp"
#include "starlay/serve/json.hpp"
#include "starlay/serve/service.hpp"

namespace {

using starlay::core::BuildRequest;
using starlay::serve::CacheSource;
using starlay::serve::Json;
using starlay::serve::LayoutService;
using starlay::serve::ServiceResult;
using starlay::serve::ServiceStats;

// ---------------------------------------------------------------- JSON codec

TEST(ServeJson, DumpParseRoundTripIsStable) {
  const std::string doc =
      R"({"id":3,"s":"a\"b\\c\nd","neg":-17,"f":1.5,"deep":[1,[2,[3]]],"t":true,"z":null})";
  const std::optional<Json> once = Json::parse(doc);
  ASSERT_TRUE(once.has_value());
  const std::string dumped = once->dump();
  const std::optional<Json> twice = Json::parse(dumped);
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(dumped, twice->dump());  // dump is a fixed point
}

TEST(ServeJson, ParseRejectsGarbage) {
  EXPECT_FALSE(Json::parse("").has_value());
  EXPECT_FALSE(Json::parse("{").has_value());
  EXPECT_FALSE(Json::parse("{}extra").has_value());
  EXPECT_FALSE(Json::parse("{'single': 1}").has_value());
  EXPECT_FALSE(Json::parse("[1, 2,]").has_value());
  EXPECT_FALSE(Json::parse("01").has_value());
  EXPECT_FALSE(Json::parse("\"\\u12\"").has_value());
}

TEST(ServeJson, ParseHandlesEscapesAndSurrogates) {
  const std::optional<Json> j = Json::parse(R"("\u0041\u00e9\ud83d\ude00")");
  ASSERT_TRUE(j.has_value());
  EXPECT_EQ(j->as_string(), "A\xc3\xa9\xf0\x9f\x98\x80");  // A, e-acute, emoji
}

// ------------------------------------------------------- protocol round-trip

Json response(LayoutService& service, const std::string& line, bool* shutdown = nullptr) {
  const std::string reply = service.handle_line(line, shutdown);
  std::optional<Json> rsp = Json::parse(reply);
  EXPECT_TRUE(rsp.has_value()) << "unparseable response: " << reply;
  return rsp ? *rsp : Json();
}

std::string error_code(const Json& rsp) {
  const Json* err = rsp.find("error");
  if (err == nullptr) return "";
  const Json* code = err->find("code");
  return code != nullptr ? code->as_string() : "";
}

TEST(ServeProtocol, PingGolden) {
  LayoutService service;
  // Byte-exact: the response encoding (field order, compact separators) is
  // part of the protocol surface clients may diff against.
  EXPECT_EQ(service.handle_line(R"({"id": 7, "method": "ping"})"),
            R"({"id":7,"ok":true,"method":"ping","result":"pong"})");
}

TEST(ServeProtocol, ShutdownSetsFlagAndAcks) {
  LayoutService service;
  bool shutdown = false;
  const Json rsp = response(service, R"({"method": "shutdown"})", &shutdown);
  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(rsp.find("ok")->as_bool());
}

TEST(ServeProtocol, MeasureReturnsLayoutMetrics) {
  LayoutService service;
  const Json rsp = response(service, R"({"id": 1, "method": "measure", "family": "star", "n": 4})");
  ASSERT_TRUE(rsp.find("ok")->as_bool());
  EXPECT_EQ(rsp.find("cache")->as_string(), "miss");
  EXPECT_EQ(rsp.find("key")->as_string(), "family=star n=4 base=3");
  const Json* r = rsp.find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->find("vertices")->as_int(), 24);  // 4!
  EXPECT_EQ(r->find("edges")->as_int(), 36);     // 4! * 3 / 2
  EXPECT_GT(r->find("area")->as_int(), 0);
  EXPECT_GT(r->find("wire_length")->as_int(), 0);

  // The same request again answers from the snapshot.
  const Json again =
      response(service, R"({"id": 2, "method": "measure", "family": "star", "n": 4})");
  EXPECT_EQ(again.find("cache")->as_string(), "hit");
  EXPECT_EQ(again.find("result")->find("area")->as_int(), r->find("area")->as_int());
}

TEST(ServeProtocol, CertifyBisectAndRenderShareOneSnapshot) {
  LayoutService service;
  const Json cert =
      response(service, R"({"id": 1, "method": "certify", "family": "star", "n": 4})");
  ASSERT_TRUE(cert.find("ok")->as_bool());
  EXPECT_TRUE(cert.find("result")->find("valid")->as_bool());
  EXPECT_EQ(cert.find("result")->find("errors")->items().size(), 0u);

  const Json bis = response(service, R"({"id": 2, "method": "bisect", "family": "star", "n": 4})");
  ASSERT_TRUE(bis.find("ok")->as_bool());
  EXPECT_EQ(bis.find("cache")->as_string(), "hit");  // certify already built it
  EXPECT_GT(bis.find("result")->find("width")->as_int(), 0);
  EXPECT_EQ(bis.find("result")->find("vertices")->as_int(), 24);  // 4!
  EXPECT_EQ(bis.find("result")->find("side0")->as_int(), 12);     // balanced witness

  const Json svg = response(
      service,
      R"({"id": 3, "method": "render-window", "family": "star", "n": 4, "window": [0, 0, 40, 40]})");
  ASSERT_TRUE(svg.find("ok")->as_bool());
  EXPECT_EQ(svg.find("cache")->as_string(), "hit");
  EXPECT_NE(svg.find("result")->find("svg")->as_string().find("<svg"), std::string::npos);

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.builds_run, 1);  // one snapshot served all three methods
  EXPECT_EQ(st.hits, 2);
}

TEST(ServeProtocol, PassesAndParamsEnterTheCacheKey) {
  LayoutService service;
  const Json plain =
      response(service, R"({"id": 1, "method": "measure", "family": "star", "n": 5})");
  const Json passed = response(
      service, R"({"id": 2, "method": "measure", "family": "star", "n": 5, "passes": "compact"})");
  ASSERT_TRUE(plain.find("ok")->as_bool());
  ASSERT_TRUE(passed.find("ok")->as_bool());
  EXPECT_NE(plain.find("key")->as_string(), passed.find("key")->as_string());
  EXPECT_EQ(passed.find("cache")->as_string(), "miss");  // distinct key: built fresh
  EXPECT_LE(passed.find("result")->find("area")->as_int(),
            plain.find("result")->find("area")->as_int());
}

TEST(ServeProtocol, TraceAttachesOnMissOnly) {
  LayoutService service;
  const Json miss = response(
      service, R"({"id": 1, "method": "measure", "family": "star", "n": 4, "trace": true})");
  ASSERT_TRUE(miss.find("ok")->as_bool());
  ASSERT_NE(miss.find("trace"), nullptr);

  const Json hit = response(
      service, R"({"id": 2, "method": "measure", "family": "star", "n": 4, "trace": true})");
  EXPECT_EQ(hit.find("cache")->as_string(), "hit");
  EXPECT_EQ(hit.find("trace"), nullptr);  // no build ran; nothing to trace
}

// ------------------------------------------------- malformed-request sweep

struct BadRequestCase {
  const char* name;
  const char* line;
  const char* code;        ///< expected error.code
  const char* suggestion;  ///< expected error.suggestion ("" = absent)
};

class ServeBadRequest : public ::testing::TestWithParam<BadRequestCase> {};

TEST_P(ServeBadRequest, MapsOntoBuildErrorVocabulary) {
  LayoutService service;
  const BadRequestCase& c = GetParam();
  const Json rsp = response(service, c.line);
  EXPECT_FALSE(rsp.find("ok")->as_bool()) << c.line;
  EXPECT_EQ(error_code(rsp), c.code) << c.line;
  const Json* sug = rsp.find("error")->find("suggestion");
  if (std::string(c.suggestion).empty()) {
    EXPECT_EQ(sug, nullptr) << c.line;
  } else {
    ASSERT_NE(sug, nullptr) << c.line;
    EXPECT_EQ(sug->as_string(), c.suggestion) << c.line;
  }
  // A request that never parsed must not touch the build machinery.
  EXPECT_EQ(service.stats().misses + service.stats().builds_run, 0) << c.line;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ServeBadRequest,
    ::testing::Values(
        BadRequestCase{"not_json", "this is not json", "invalid-argument", ""},
        BadRequestCase{"not_object", "[1, 2, 3]", "invalid-argument", ""},
        BadRequestCase{"bad_n_type", R"({"method": "build", "family": "star", "n": "7"})",
                       "invalid-argument", ""},
        BadRequestCase{"bad_id_type", R"({"id": "abc", "method": "ping"})", "invalid-argument",
                       ""},
        BadRequestCase{"unknown_field", R"({"method": "ping", "flavor": 1})", "invalid-argument",
                       ""},
        BadRequestCase{"missing_method", R"({"family": "star", "n": 4})", "invalid-argument", ""},
        BadRequestCase{"unknown_method", R"({"method": "biulds"})", "invalid-argument", "build"},
        BadRequestCase{"unknown_pass",
                       R"({"method": "build", "family": "star", "n": 4, "passes": "compactt"})",
                       "unknown-param", "compact"},
        BadRequestCase{"threads_out_of_range", R"({"method": "ping", "threads": 0})",
                       "invalid-argument", ""},
        BadRequestCase{"bad_simd", R"({"method": "ping", "simd": "avx512"})", "invalid-argument",
                       ""},
        BadRequestCase{"bad_window", R"({"method": "ping", "window": [1, 2, 3]})",
                       "invalid-argument", ""}),
    [](const ::testing::TestParamInfo<BadRequestCase>& param_info) {
      return param_info.param.name;
    });

// Errors below need a parsed request (they exercise resolve, not parse),
// so the miss counter does move; they assert codes only.
TEST(ServeBadRequest, ResolveErrorsKeepTheBuildErrorVocabulary) {
  LayoutService service;
  const Json fam = response(service, R"({"method": "build", "family": "starr", "n": 4})");
  EXPECT_EQ(error_code(fam), "unknown-family");
  EXPECT_EQ(fam.find("error")->find("suggestion")->as_string(), "star");

  const Json range = response(service, R"({"method": "build", "family": "star", "n": 40})");
  EXPECT_EQ(error_code(range), "size-out-of-range");
  ASSERT_NE(range.find("error")->find("n_lo"), nullptr);
  ASSERT_NE(range.find("error")->find("n_hi"), nullptr);
  EXPECT_GT(range.find("error")->find("n_hi")->as_int(), 0);

  EXPECT_EQ(error_code(response(service, R"({"method": "build", "n": 4})")), "invalid-argument");
  EXPECT_EQ(error_code(response(service, R"({"method": "build", "family": "star"})")),
            "invalid-argument");
  EXPECT_EQ(error_code(response(
                service, R"({"method": "render-window", "family": "star", "n": 4})")),
            "invalid-argument");  // no window
  // Errors are never cached: nothing may be resident after this sweep.
  EXPECT_EQ(service.stats().entries, 0);
  EXPECT_EQ(service.stats().builds_run, 0);
}

// ---------------------------------------------------------- single-flight

TEST(ServeSingleFlight, ConcurrentIdenticalRequestsShareOneBuild) {
  LayoutService service;
  BuildRequest request = BuildRequest::with_process_defaults();
  request.family = "star";
  request.params.n = 6;  // 720 vertices: long enough for joiners to pile up
  request.passes.compact = true;

  constexpr int kThreads = 8;
  std::vector<ServiceResult> results(kThreads);
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      results[static_cast<std::size_t>(t)] = service.acquire(request);
    });
  }
  while (ready.load() < kThreads) std::this_thread::yield();
  go.store(true);
  for (std::thread& t : threads) t.join();

  int misses = 0;
  for (const ServiceResult& r : results) {
    ASSERT_TRUE(r.ok());
    // Everyone holds the *same* immutable snapshot, not copies of it.
    EXPECT_EQ(r.snapshot.get(), results[0].snapshot.get());
    if (r.source == CacheSource::kMiss) ++misses;
  }
  EXPECT_EQ(misses, 1);  // exactly one leader

  const ServiceStats st = service.stats();
  EXPECT_EQ(st.builds_run, 1);
  EXPECT_EQ(st.misses, 1);
  EXPECT_EQ(st.hits + st.joins, kThreads - 1);
}

// ------------------------------------------------------------ LRU budget

TEST(ServeLru, TinyBudgetEvictsOldSnapshotsButKeepsNewest) {
  LayoutService::Options opt;
  opt.cache_bytes = 1;  // every insertion is over budget
  LayoutService service(opt);

  auto measure = [&](int n) {
    return response(service,
                    R"({"method": "measure", "family": "star", "n": )" + std::to_string(n) + "}");
  };

  EXPECT_EQ(measure(4).find("cache")->as_string(), "miss");
  EXPECT_EQ(measure(5).find("cache")->as_string(), "miss");  // evicts n=4
  ServiceStats st = service.stats();
  EXPECT_EQ(st.entries, 1);  // the newest entry always survives
  EXPECT_EQ(st.evictions, 1);

  EXPECT_EQ(measure(5).find("cache")->as_string(), "hit");   // newest is resident
  EXPECT_EQ(measure(4).find("cache")->as_string(), "miss");  // old one was evicted
  st = service.stats();
  EXPECT_EQ(st.entries, 1);
  EXPECT_EQ(st.evictions, 2);
  EXPECT_EQ(st.builds_run, 3);
  EXPECT_GT(st.bytes, 0);
}

TEST(ServeLru, BudgetLargeEnoughKeepsEverything) {
  LayoutService service;  // default budget: 256 MiB
  for (int n = 4; n <= 6; ++n) {
    response(service,
             R"({"method": "measure", "family": "star", "n": )" + std::to_string(n) + "}");
  }
  const ServiceStats st = service.stats();
  EXPECT_EQ(st.entries, 3);
  EXPECT_EQ(st.evictions, 0);
  EXPECT_LE(st.bytes, st.byte_budget);
}

}  // namespace
