// E1 (Lemma 2.1a / Theorem 3.5): collinear K_m layouts use exactly
// floor(m^2/4) tracks under both backends, and that is optimal.

#include <gtest/gtest.h>

#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/layout/validate.hpp"

namespace starlay::core {
namespace {

class CollinearTracks : public ::testing::TestWithParam<int> {};

TEST_P(CollinearTracks, LeftEdgeBackendExact) {
  const int m = GetParam();
  const CollinearResult r = collinear_complete_layout(m, TrackBackend::kLeftEdge);
  EXPECT_EQ(r.tracks, collinear_complete_tracks(m));
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST_P(CollinearTracks, PaperRuleBackendExact) {
  const int m = GetParam();
  const CollinearResult r = collinear_complete_layout(m, TrackBackend::kPaperRule);
  EXPECT_EQ(r.tracks, collinear_complete_tracks(m));
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST_P(CollinearTracks, BackendsAgree) {
  const int m = GetParam();
  EXPECT_EQ(collinear_complete_layout(m, TrackBackend::kLeftEdge).tracks,
            collinear_complete_layout(m, TrackBackend::kPaperRule).tracks);
}

INSTANTIATE_TEST_SUITE_P(SweepM, CollinearTracks,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 21, 25, 32, 41));

TEST(Collinear, TrackCountIsBisectionWidth) {
  // The paper: the collinear layout is strictly optimal because the track
  // count equals K_m's bisection width.
  for (int m : {4, 6, 9, 15}) {
    EXPECT_EQ(collinear_complete_tracks(m), complete_bisection(m)) << m;
  }
}

TEST(Collinear, MultiplicityScalesTracks) {
  for (int c : {2, 3}) {
    const CollinearResult r = collinear_complete_layout(6, TrackBackend::kLeftEdge, c);
    EXPECT_EQ(r.tracks, c * collinear_complete_tracks(6));
    EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok);
    const CollinearResult rp = collinear_complete_layout(6, TrackBackend::kPaperRule, c);
    EXPECT_EQ(rp.tracks, c * collinear_complete_tracks(6));
    EXPECT_TRUE(layout::validate_layout(rp.graph, rp.routed.layout).ok);
  }
}

TEST(Collinear, RejectsBadArguments) {
  EXPECT_THROW(collinear_complete_layout(1), starlay::InvariantError);
  EXPECT_THROW(collinear_complete_layout(5, TrackBackend::kLeftEdge, 0),
               starlay::InvariantError);
}

TEST(Collinear, AreaMatchesTracksTimesWidth) {
  const int m = 10;
  const CollinearResult r = collinear_complete_layout(m);
  // Width = m nodes of side m-1; height = node side + tracks.
  EXPECT_EQ(r.routed.layout.width(), static_cast<layout::Coord>(m) * (m - 1));
  EXPECT_EQ(r.routed.layout.height(), static_cast<layout::Coord>(m - 1) + r.tracks);
}

TEST(Collinear, PaperRule25PercentBetterThanChenAgrawal) {
  // The paper notes its floor(m^2/4) is 25% below the m^2/3-ish bound of
  // [11]; spot-check the ratio at a couple of sizes.
  for (int m : {12, 24}) {
    const double ours = static_cast<double>(collinear_complete_tracks(m));
    const double chen_agrawal = m * m / 3.0;  // prior upper bound
    EXPECT_LT(ours, chen_agrawal);
    EXPECT_NEAR(ours / chen_agrawal, 0.75, 0.02);
  }
}

}  // namespace
}  // namespace starlay::core
