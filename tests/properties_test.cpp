// Tests for graph property computations (BFS, diameter, cuts).

#include <gtest/gtest.h>

#include <cmath>

#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/properties.hpp"

namespace starlay::topology {
namespace {

Graph path_graph(int n) {
  Graph g(n);
  for (std::int32_t v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  g.finalize();
  return g;
}

TEST(Bfs, PathDistances) {
  const Graph g = path_graph(6);
  const auto d = bfs_distances(g, 0);
  for (int v = 0; v < 6; ++v) EXPECT_EQ(d[static_cast<std::size_t>(v)], v);
}

TEST(Bfs, DisconnectedMarksUnreachable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1);
  EXPECT_EQ(d[2], -1);
  EXPECT_FALSE(is_connected(g));
  EXPECT_THROW(diameter_from(g, 0), starlay::InvariantError);
}

TEST(Diameter, MatchesEccentricityForVertexTransitive) {
  const Graph g = hypercube(4);
  EXPECT_EQ(diameter(g), diameter_from(g, 0));
  EXPECT_EQ(diameter(g), 4);
}

TEST(Diameter, PathGraph) { EXPECT_EQ(diameter(path_graph(7)), 6); }

TEST(AverageDistance, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(average_distance_from(complete_graph(6), 0), 1.0);
}

TEST(AverageDistance, HypercubeIsHalfD) {
  // Average distance of Q_d from any vertex: d * 2^(d-1) / (2^d - 1).
  const int d = 5;
  const double expect = d * std::pow(2.0, d - 1) / ((1 << d) - 1);
  EXPECT_NEAR(average_distance_from(hypercube(d), 0), expect, 1e-12);
}

TEST(CutSize, HypercubeHalving) {
  // Splitting Q_d by the top bit cuts exactly 2^(d-1) links.
  const int d = 5;
  const Graph g = hypercube(d);
  std::vector<std::uint8_t> side(static_cast<std::size_t>(1 << d), 0);
  for (int v = 0; v < (1 << d); ++v)
    side[static_cast<std::size_t>(v)] = static_cast<std::uint8_t>((v >> (d - 1)) & 1);
  EXPECT_EQ(cut_size(g, side), 1 << (d - 1));
}

TEST(CutSize, RejectsSizeMismatch) {
  const Graph g = complete_graph(4);
  EXPECT_THROW(cut_size(g, std::vector<std::uint8_t>(3, 0)), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::topology
