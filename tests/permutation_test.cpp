// Unit tests for permutations and the factoradic ranking used by all
// permutation-network builders.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::topology {
namespace {

TEST(Permutation, IdentityIsRankZero) {
  for (int n = 1; n <= 8; ++n) EXPECT_EQ(perm_rank(identity_perm(n)), 0);
}

TEST(Permutation, ReverseIsLastRank) {
  for (int n = 1; n <= 8; ++n) {
    Perm p = identity_perm(n);
    std::reverse(p.begin(), p.end());
    EXPECT_EQ(perm_rank(p), factorial(n) - 1);
  }
}

class RankRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RankRoundTrip, UnrankThenRankIsIdentity) {
  const int n = GetParam();
  std::set<Perm> seen;
  for (std::int64_t r = 0; r < factorial(n); ++r) {
    const Perm p = perm_unrank(r, n);
    EXPECT_TRUE(is_perm(p));
    EXPECT_EQ(perm_rank(p), r);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate perm at rank " << r;
  }
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), factorial(n));
}

INSTANTIATE_TEST_SUITE_P(SmallN, RankRoundTrip, ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Permutation, UnrankIsLexicographic) {
  // Rank order must be lexicographic order of the permutation sequences.
  for (std::int64_t r = 1; r < factorial(5); ++r)
    EXPECT_LT(perm_unrank(r - 1, 5), perm_unrank(r, 5));
}

TEST(Permutation, RejectsBadInput) {
  EXPECT_THROW(perm_unrank(-1, 4), starlay::InvariantError);
  EXPECT_THROW(perm_unrank(24, 4), starlay::InvariantError);
  EXPECT_THROW(perm_rank(Perm{1, 1, 2}), starlay::InvariantError);
  EXPECT_THROW(perm_rank(Perm{0, 1, 2}), starlay::InvariantError);
}

TEST(Generators, SwapFirstWithIsInvolution) {
  const Perm p = perm_unrank(37, 5);
  for (int i = 2; i <= 5; ++i) EXPECT_EQ(swap_first_with(swap_first_with(p, i), i), p);
}

TEST(Generators, ReversePrefixIsInvolution) {
  const Perm p = perm_unrank(91, 5);
  for (int i = 2; i <= 5; ++i) EXPECT_EQ(reverse_prefix(reverse_prefix(p, i), i), p);
}

TEST(Generators, SwapAdjacentIsInvolution) {
  const Perm p = perm_unrank(53, 5);
  for (int i = 1; i < 5; ++i) EXPECT_EQ(swap_adjacent(swap_adjacent(p, i), i), p);
}

TEST(Generators, DimensionBounds) {
  const Perm p = identity_perm(4);
  EXPECT_THROW(swap_first_with(p, 1), starlay::InvariantError);
  EXPECT_THROW(swap_first_with(p, 5), starlay::InvariantError);
  EXPECT_THROW(reverse_prefix(p, 1), starlay::InvariantError);
  EXPECT_THROW(swap_adjacent(p, 0), starlay::InvariantError);
  EXPECT_THROW(swap_adjacent(p, 4), starlay::InvariantError);
}

TEST(SubstarPath, IdentityTakesFirstBlocks) {
  // Identity permutation: symbol at position j is j, always the largest
  // among remaining => block index = remaining count - 1... actually the
  // symbol n at position n has rank n-1 among {1..n}.
  const Perm p = identity_perm(5);
  const auto path = substar_path(p, 2);
  ASSERT_EQ(path.size(), 3u);  // levels 5, 4, 3
  EXPECT_EQ(path[0], 4);       // symbol 5 among {1,2,3,4,5}
  EXPECT_EQ(path[1], 3);       // symbol 4 among {1,2,3,4}
  EXPECT_EQ(path[2], 2);       // symbol 3 among {1,2,3}
}

TEST(SubstarPath, DigitsInRange) {
  for (std::int64_t r = 0; r < factorial(6); r += 11) {
    const auto path = substar_path(perm_unrank(r, 6), 3);
    ASSERT_EQ(path.size(), 3u);
    for (std::size_t j = 0; j < path.size(); ++j) {
      EXPECT_GE(path[j], 0);
      EXPECT_LT(path[j], 6 - static_cast<int>(j));
    }
  }
}

TEST(SubstarPath, SameBlockIffSameSuffix) {
  // Two permutations share all path digits iff they agree on positions
  // base+1..n.
  const int n = 5, base = 3;
  for (std::int64_t r1 = 0; r1 < factorial(n); r1 += 7) {
    for (std::int64_t r2 = r1 + 1; r2 < factorial(n); r2 += 13) {
      const Perm p1 = perm_unrank(r1, n), p2 = perm_unrank(r2, n);
      const bool same_suffix = std::equal(p1.begin() + base, p1.end(), p2.begin() + base);
      const bool same_path = substar_path(p1, base) == substar_path(p2, base);
      EXPECT_EQ(same_suffix, same_path);
    }
  }
}

TEST(SubstarPath, DimensionEdgeChangesExactlyItsLevel) {
  // A dimension-i generator changes the level-i digit and nothing above.
  const int n = 6, base = 3;
  const Perm p = perm_unrank(123, n);
  const auto path = substar_path(p, base);
  for (int i = base + 1; i <= n; ++i) {
    const auto qath = substar_path(swap_first_with(p, i), base);
    for (int level = n; level > i; --level)
      EXPECT_EQ(path[static_cast<std::size_t>(n - level)],
                qath[static_cast<std::size_t>(n - level)]);
    EXPECT_NE(path[static_cast<std::size_t>(n - i)], qath[static_cast<std::size_t>(n - i)]);
  }
}

TEST(BaseBlockRank, MatchesReducedPermRank) {
  // Relabel the head to 1..base preserving order, then rank it directly.
  const int n = 6;
  for (int base : {2, 3, 4}) {
    for (std::int64_t r = 0; r < factorial(n); r += 17) {
      const Perm p = perm_unrank(r, n);
      Perm head(p.begin(), p.begin() + base);
      Perm reduced = head;
      std::sort(head.begin(), head.end());
      for (auto& s : reduced)
        s = static_cast<std::uint8_t>(
            std::lower_bound(head.begin(), head.end(), s) - head.begin() + 1);
      EXPECT_EQ(base_block_rank(p, base), perm_rank(reduced)) << "r=" << r;
    }
  }
}

class EnumeratorSweep : public ::testing::TestWithParam<int> {};

TEST_P(EnumeratorSweep, MatchesUnrankAtEveryRank) {
  // The incremental enumerator must agree with the from-scratch derivation
  // (perm_unrank + substar_path + base_block_rank) at every single rank.
  const int n = GetParam();
  for (int base : {2, 3}) {
    if (base > n) continue;
    StarPathEnumerator en(0, n, base);
    for (std::int64_t r = 0; r < factorial(n); ++r) {
      ASSERT_EQ(en.rank(), r);
      const Perm p = perm_unrank(r, n);
      ASSERT_EQ(en.perm(), p) << "rank " << r;
      const auto path = substar_path(p, base);
      ASSERT_EQ(en.num_digits(), static_cast<int>(path.size()));
      for (int d = 0; d < en.num_digits(); ++d)
        ASSERT_EQ(en.digit(d), path[static_cast<std::size_t>(d)])
            << "rank " << r << " depth " << d;
      ASSERT_EQ(en.base_rank(), base_block_rank(p, base)) << "rank " << r;
      if (r + 1 < factorial(n)) en.advance();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, EnumeratorSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(Enumerator, SeededMidRangeMatchesAdvancedFromZero) {
  // Chunked parallel fill seeds an enumerator at an arbitrary rank; that
  // must land in exactly the state reached by advancing from rank 0.
  const int n = 6, base = 3;
  StarPathEnumerator walker(0, n, base);
  for (std::int64_t r = 0; r < factorial(n); ++r) {
    if (r % 37 == 0) {
      const StarPathEnumerator seeded(r, n, base);
      ASSERT_EQ(seeded.perm(), walker.perm()) << r;
      for (int d = 0; d < seeded.num_digits(); ++d)
        ASSERT_EQ(seeded.digit(d), walker.digit(d)) << r;
      ASSERT_EQ(seeded.base_rank(), walker.base_rank()) << r;
    }
    if (r + 1 < factorial(n)) walker.advance();
  }
}

TEST(Enumerator, ShardRangeBoundaries) {
  // The out-of-core engine partitions [0, n!) into rank-range shards
  // lo = n! * s / k; each shard walks its range with a freshly seeded
  // enumerator and must never advance past its last rank.  Exercise the
  // boundary shapes that matter: the rank-0 shard, a single-rank shard,
  // a last partial shard, and concatenated shards covering the full range.
  const int n = 5, base = 3;
  const std::int64_t N = factorial(n);

  // Rank 0 and the final rank are seedable; advancing at N-1 is rejected.
  StarPathEnumerator first(0, n, base);
  EXPECT_EQ(first.rank(), 0);
  EXPECT_EQ(first.perm(), identity_perm(n));
  StarPathEnumerator last(N - 1, n, base);
  EXPECT_EQ(last.rank(), N - 1);
  EXPECT_THROW(last.advance(), starlay::InvariantError);

  // A single-rank shard [r, r+1) uses its seed state and never advances.
  for (const std::int64_t r : {std::int64_t{0}, N / 2, N - 1}) {
    const StarPathEnumerator solo(r, n, base);
    EXPECT_EQ(solo.perm(), perm_unrank(r, n)) << "rank " << r;
  }

  // Uneven shard counts (including k > N and a ragged last shard):
  // concatenating every shard's walk reproduces the unsharded sweep.
  for (const std::int64_t k : {std::int64_t{1}, std::int64_t{7}, N - 1, N, 3 * N}) {
    std::int64_t covered = 0;
    StarPathEnumerator whole(0, n, base);
    for (std::int64_t s = 0; s < k; ++s) {
      const std::int64_t lo = N * s / k;
      const std::int64_t hi = N * (s + 1) / k;
      if (lo == hi) continue;  // empty shard: k > N
      StarPathEnumerator en(lo, n, base);
      for (std::int64_t r = lo; r < hi; ++r) {
        ASSERT_EQ(en.rank(), r) << "k=" << k << " shard " << s;
        ASSERT_EQ(en.perm(), whole.perm()) << "k=" << k << " rank " << r;
        for (int d = 0; d < en.num_digits(); ++d)
          ASSERT_EQ(en.digit(d), whole.digit(d)) << "k=" << k << " rank " << r;
        ASSERT_EQ(en.base_rank(), whole.base_rank()) << "k=" << k << " rank " << r;
        if (r + 1 < hi) en.advance();
        if (r + 1 < N) whole.advance();
        ++covered;
      }
    }
    EXPECT_EQ(covered, N) << "k=" << k;
  }
}

TEST(RankAfterSwap, MatchesMaterializedRankExhaustively) {
  // The graph builders replace perm_rank(swap(p, i, j)) with a Lehmer-delta
  // computation; sweep every permutation and every position pair.
  for (int n = 2; n <= 6; ++n) {
    std::int64_t fact[8];
    fact[0] = 1;
    for (int k = 1; k <= n; ++k) fact[k] = fact[k - 1] * k;
    Perm p = identity_perm(n);
    for (std::int64_t r = 0; r < factorial(n); ++r) {
      for (int i = 0; i < n; ++i) {
        for (int j = i + 1; j < n; ++j) {
          Perm q = p;
          std::swap(q[static_cast<std::size_t>(i)], q[static_cast<std::size_t>(j)]);
          ASSERT_EQ(rank_after_swap(p.data(), n, r, i, j, fact), perm_rank(q))
              << "n=" << n << " r=" << r << " i=" << i << " j=" << j;
        }
      }
      std::next_permutation(p.begin(), p.end());
    }
  }
}

}  // namespace
}  // namespace starlay::topology
