// Section 3: formulas and bound aggregators — the paper's narrative numbers.

#include <gtest/gtest.h>

#include "starlay/support/check.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/lower_bounds.hpp"
#include "starlay/support/math.hpp"

namespace starlay::core {
namespace {

TEST(Formulas, HeadlineRatioIsSevenPointOneRepeating) {
  EXPECT_NEAR(star_vs_hypercube_ratio(), 7.111111, 1e-5);
  EXPECT_DOUBLE_EQ(hypercube_area(1.0) / star_area(1.0), star_vs_hypercube_ratio());
}

TEST(Formulas, SykoraVrtoComparisons) {
  const double N = 40320;
  // 72x improvement of the constructive area.
  EXPECT_NEAR(sykora_vrto_star_area(N) / star_area(N), 72.0, 1e-9);
  // Their upper/lower ratio was 3528; ours is 1 + o(1).
  EXPECT_NEAR(sykora_vrto_star_area(N) / sykora_vrto_star_lower_bound(N), 3528.0, 1e-6);
}

TEST(Formulas, BattSingleTaskImproves12Point25x) {
  // Using T_TE = 2N in Theorem 3.2 beats Sykora-Vrt'o's lower bound 12.25x.
  const std::int64_t N = 362880;
  const double lb = area_lb_batt(N, fragopoulou_akl_te_time(static_cast<double>(N)));
  EXPECT_NEAR(lb / sykora_vrto_star_lower_bound(static_cast<double>(N)), 12.25, 0.01);
}

TEST(Formulas, PipelinedTeAddsFactorFour) {
  // Lemma 3.6's throughput improves the single-task bound by ~4x
  // (exactly 4 (1 - 1/n)^2 -> 4).
  const int n = 9;
  const std::int64_t N = starlay::factorial(n);
  const double single = area_lb_batt(N, fragopoulou_akl_te_time(static_cast<double>(N)));
  const double pipelined = area_lb_batt(N, star_te_time(n, static_cast<double>(N)));
  EXPECT_NEAR(pipelined / single, 4.0 * (1.0 - 1.0 / n) * (1.0 - 1.0 / n), 1e-9);
}

TEST(Formulas, BattBoundWithOptimalTeMatchesUpperAsymptotically) {
  // area_lb_batt with T_TE = nN/(n-1) equals (N^2/16)(1-1/n)^2 -> N^2/16.
  for (int n : {6, 10, 16, 20}) {
    const std::int64_t N = starlay::factorial(n);
    const double lb = area_lb_batt(N, star_te_time(n, static_cast<double>(N)));
    const double expect = star_area(static_cast<double>(N)) * (1.0 - 1.0 / n) * (1.0 - 1.0 / n);
    EXPECT_NEAR(lb / expect, 1.0, 1e-6) << n;
  }
}

TEST(Formulas, OddNFloorCeilSplitHandled) {
  // Odd N: floor/ceil split differs from N^2/4 squared.
  EXPECT_DOUBLE_EQ(area_lb_batt(5, 1.0), 4.0 * 9.0);
  EXPECT_DOUBLE_EQ(area_lb_batt(4, 1.0), 4.0 * 4.0);
  EXPECT_DOUBLE_EQ(bisection_lb_batt(5, 1.0), 6.0);
}

TEST(Formulas, XYBoundsEvenOdd) {
  EXPECT_DOUBLE_EQ(xy_area_lb_bisection(10.0, 2), 100.0);
  EXPECT_DOUBLE_EQ(xy_area_lb_bisection(10.0, 4), 25.0);
  EXPECT_DOUBLE_EQ(xy_area_lb_bisection(10.0, 3), 50.0);
  // X-Y with L=2 equals the Thompson bound B^2.
  EXPECT_DOUBLE_EQ(xy_area_lb_bisection(7.0, 2), area_lb_bisection(7.0));
}

TEST(Formulas, HcnTeTimeNearN) {
  EXPECT_NEAR(hcn_te_time(1024), 1024.2, 1e-9);
}

TEST(StarBounds, RatioApproachesOne) {
  double prev = 1e18;
  for (int n : {6, 8, 10, 12, 16, 20}) {
    const AreaBoundSummary s = star_area_bounds(n);
    EXPECT_GT(s.ratio, 1.0) << n;
    EXPECT_LT(s.ratio, prev) << n;
    prev = s.ratio;
  }
  // By n = 20 the construction is within 12% of the best lower bound.
  EXPECT_LT(prev, 1.12);
}

TEST(StarBounds, BisectionBoundIsWeakerThanBatt) {
  // B^2 = N^2/16 matches BATT asymptotically but the paper derives B from
  // the layout, so BATT must carry the argument: check both are present.
  const AreaBoundSummary s = star_area_bounds(10);
  EXPECT_GT(s.lb_batt_pipelined, s.lb_batt_single);
  EXPECT_GT(s.lb_bisection, 0.0);
}

TEST(HcnBounds, RatioApproachesOne) {
  double prev = 1e18;
  for (int h : {3, 5, 7, 10}) {
    const AreaBoundSummary s = hcn_area_bounds(h);
    EXPECT_GT(s.ratio, 1.0) << h;
    EXPECT_LT(s.ratio, prev) << h;
    prev = s.ratio;
  }
  EXPECT_LT(prev, 1.01);
}

TEST(CompleteBounds, TightAtAllSizes) {
  for (int m : {4, 8, 16, 100}) {
    const AreaBoundSummary s = complete_area_bounds(m);
    // K_m: BATT with T_TE = 1 gives ~m^4/16 directly; ratio -> 1.
    EXPECT_GT(s.ratio, 0.99) << m;
    EXPECT_LT(s.ratio, 1.2) << m;
  }
}

TEST(XYBounds, StarMultilayerRatioApproachesOne) {
  for (int L : {2, 3, 4, 8}) {
    const XYBoundSummary s = star_xy_bounds(16, L);
    EXPECT_GT(s.ratio, 1.0) << L;
    EXPECT_LT(s.ratio, 1.2) << L;
  }
}

TEST(Bounds, RejectBadArguments) {
  EXPECT_THROW(star_area_bounds(1), starlay::InvariantError);
  EXPECT_THROW(hcn_area_bounds(0), starlay::InvariantError);
  EXPECT_THROW(star_xy_bounds(8, 1), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
