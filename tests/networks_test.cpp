// Tests for every network builder against published structural facts.

#include <gtest/gtest.h>

#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"
#include "starlay/topology/properties.hpp"

namespace starlay::topology {
namespace {

class StarGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(StarGraphTest, CountsDegreeConnectivity) {
  const int n = GetParam();
  const Graph g = star_graph(n);
  EXPECT_EQ(g.num_vertices(), factorial(n));
  EXPECT_EQ(g.num_edges(), factorial(n) * (n - 1) / 2);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), n - 1);
  EXPECT_TRUE(g.is_simple());
  EXPECT_TRUE(is_connected(g));
}

TEST_P(StarGraphTest, DiameterIsFloor3NMinus1Over2) {
  // Akers & Krishnamurthy: diam(S_n) = floor(3(n-1)/2).
  const int n = GetParam();
  if (factorial(n) > 5100) GTEST_SKIP() << "diameter check limited to small n";
  const Graph g = star_graph(n);
  EXPECT_EQ(diameter_from(g, 0), 3 * (n - 1) / 2);
}

TEST_P(StarGraphTest, EdgesAreDimensionGenerators) {
  const int n = GetParam();
  const Graph g = star_graph(n);
  for (std::int64_t e = 0; e < g.num_edges(); e += 17) {
    const auto& ed = g.edge(e);
    const Perm pu = perm_unrank(ed.u, n);
    EXPECT_EQ(perm_rank(swap_first_with(pu, ed.label)), ed.v);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallN, StarGraphTest, ::testing::Values(2, 3, 4, 5, 6));

TEST(StarGraph, SubstarDecomposition) {
  // An n-star is n disjoint (n-1)-stars connected by (n-2)! links per pair.
  const int n = 5;
  const Graph g = star_graph(n);
  std::vector<std::vector<std::int64_t>> between(static_cast<std::size_t>(n),
                                                 std::vector<std::int64_t>(n, 0));
  for (const auto& e : g.edges()) {
    const int bu = perm_unrank(e.u, n)[static_cast<std::size_t>(n - 1)];
    const int bv = perm_unrank(e.v, n)[static_cast<std::size_t>(n - 1)];
    if (e.label == n) {
      EXPECT_NE(bu, bv);
      ++between[static_cast<std::size_t>(bu - 1)][static_cast<std::size_t>(bv - 1)];
      ++between[static_cast<std::size_t>(bv - 1)][static_cast<std::size_t>(bu - 1)];
    } else {
      EXPECT_EQ(bu, bv) << "dimension-" << e.label << " link left its substar";
    }
  }
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b)
      if (a != b)
        EXPECT_EQ(between[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                  factorial(n - 2));
}

TEST(PancakeGraph, CountsAndKnownDiameters) {
  for (int n = 2; n <= 5; ++n) {
    const Graph g = pancake_graph(n);
    EXPECT_EQ(g.num_vertices(), factorial(n));
    EXPECT_EQ(g.num_edges(), factorial(n) * (n - 1) / 2);
    EXPECT_TRUE(g.is_regular());
    EXPECT_TRUE(is_connected(g));
  }
  // Known pancake diameters: P3 = 3, P4 = 4, P5 = 5.
  EXPECT_EQ(diameter_from(pancake_graph(3), 0), 3);
  EXPECT_EQ(diameter_from(pancake_graph(4), 0), 4);
  EXPECT_EQ(diameter_from(pancake_graph(5), 0), 5);
}

TEST(BubbleSortGraph, CountsAndDiameter) {
  for (int n = 2; n <= 5; ++n) {
    const Graph g = bubble_sort_graph(n);
    EXPECT_EQ(g.num_vertices(), factorial(n));
    EXPECT_EQ(g.num_edges(), factorial(n) * (n - 1) / 2);
    EXPECT_TRUE(is_connected(g));
    // Diameter = max inversions = n(n-1)/2.
    EXPECT_EQ(diameter_from(g, 0), n * (n - 1) / 2);
  }
}

TEST(TranspositionGraph, CountsAndDiameter) {
  for (int n = 2; n <= 4; ++n) {
    const Graph g = transposition_graph(n);
    EXPECT_EQ(g.num_vertices(), factorial(n));
    EXPECT_EQ(g.num_edges(), factorial(n) * n * (n - 1) / 4);
    EXPECT_TRUE(g.is_regular());
    // Diameter = n - (number of cycles) max = n - 1.
    EXPECT_EQ(diameter_from(g, 0), n - 1);
  }
}

class HypercubeTest : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeTest, Structure) {
  const int d = GetParam();
  const Graph g = hypercube(d);
  EXPECT_EQ(g.num_vertices(), 1 << d);
  EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(d) * (1 << d) / 2);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), d);
  EXPECT_EQ(diameter_from(g, 0), d);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(SmallD, HypercubeTest, ::testing::Values(1, 2, 3, 4, 6, 8));

TEST(FoldedHypercube, Structure) {
  for (int d = 2; d <= 8; d += 2) {
    const Graph g = folded_hypercube(d);
    EXPECT_EQ(g.num_vertices(), 1 << d);
    EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(d + 1) * (1 << d) / 2);
    EXPECT_TRUE(g.is_regular());
    EXPECT_EQ(g.degree(0), d + 1);
    // Folding halves the diameter (rounded up).
    EXPECT_EQ(diameter_from(g, 0), (d + 1) / 2);
  }
}

TEST(CompleteGraph, StructureAndMultiplicity) {
  const Graph g = complete_graph(7);
  EXPECT_EQ(g.num_edges(), 21);
  EXPECT_TRUE(g.is_simple());
  EXPECT_EQ(diameter_from(g, 0), 1);
  const Graph g3 = complete_graph(5, 3);
  EXPECT_EQ(g3.num_edges(), 30);
  EXPECT_EQ(g3.degree(2), 12);
  EXPECT_FALSE(g3.is_simple());
}

class HcnTest : public ::testing::TestWithParam<int> {};

TEST_P(HcnTest, StructureMatchesGhoseDesai) {
  const int h = GetParam();
  const std::int32_t M = 1 << h;
  const Graph g = hcn(h);
  EXPECT_EQ(g.num_vertices(), M * M);
  // Edges: M clusters x (M h / 2 intra) + M(M-1)/2 inter + M/2 diameter.
  EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(M) * M * h / 2 +
                               static_cast<std::int64_t>(M) * (M - 1) / 2 + M / 2);
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(g.is_simple());
  // Every node has degree h+1 (h cube links + 1 inter-cluster or diameter).
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.degree(0), h + 1);
}

TEST_P(HcnTest, HfnStructureMatchesDuhChenFang) {
  const int h = GetParam();
  const std::int32_t M = 1 << h;
  const Graph g = hfn(h);
  EXPECT_EQ(g.num_vertices(), M * M);
  // Intra: M * M(h+1)/2 (folded cubes); inter: M(M-1)/2; nodes (c,c) have
  // no inter link, so the graph is NOT regular (degree h+1 or h+2).
  EXPECT_EQ(g.num_edges(), static_cast<std::int64_t>(M) * M * (h + 1) / 2 +
                               static_cast<std::int64_t>(M) * (M - 1) / 2);
  EXPECT_TRUE(is_connected(g));
  for (std::int32_t c = 0; c < M; ++c) {
    EXPECT_EQ(g.degree(hcn_vertex(h, c, c)), h + 1);
    EXPECT_EQ(g.degree(hcn_vertex(h, c, c ^ 1)), h + 2);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallH, HcnTest, ::testing::Values(1, 2, 3, 4));

TEST(Hcn, VertexHelpersRoundTrip) {
  const int h = 3;
  for (std::int32_t c = 0; c < 8; ++c)
    for (std::int32_t x = 0; x < 8; ++x) {
      const std::int32_t v = hcn_vertex(h, c, x);
      EXPECT_EQ(hcn_cluster_of(h, v), c);
      EXPECT_EQ(hcn_local_of(h, v), x);
    }
}

TEST(Hcn, DiameterLinksConnectComplementClusters) {
  const int h = 3;
  const Graph g = hcn(h);
  int count = 0;
  for (const auto& e : g.edges()) {
    if (e.label != kDiameterLabel) continue;
    ++count;
    const std::int32_t cu = hcn_cluster_of(h, e.u);
    const std::int32_t cv = hcn_cluster_of(h, e.v);
    EXPECT_EQ(cu ^ cv, (1 << h) - 1);
    EXPECT_EQ(hcn_local_of(h, e.u), cu);
    EXPECT_EQ(hcn_local_of(h, e.v), cv);
  }
  EXPECT_EQ(count, (1 << h) / 2);
}

TEST(Hcn, InterClusterLinksFormCompleteGraph) {
  const int h = 2;
  const Graph g = hcn(h);
  std::set<std::pair<std::int32_t, std::int32_t>> pairs;
  for (const auto& e : g.edges()) {
    if (e.label != kInterClusterLabel) continue;
    const std::int32_t cu = hcn_cluster_of(h, e.u);
    const std::int32_t cv = hcn_cluster_of(h, e.v);
    EXPECT_NE(cu, cv);
    pairs.insert({std::min(cu, cv), std::max(cu, cv)});
  }
  EXPECT_EQ(static_cast<int>(pairs.size()), 4 * 3 / 2);
}

}  // namespace
}  // namespace starlay::topology
