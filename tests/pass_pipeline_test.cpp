// The pass pipeline's two contracts, pinned:
//
//  1. Identity — an empty pass list routes bit-identically to the
//     historical monolithic path.  The golden FNV-1a fingerprints below
//     are the same constants wire_store_test.cpp pins for the materialized
//     builds; reproducing them through the *_stream_passes entries proves
//     the pipeline rewiring changed nothing it wasn't asked to change.
//  2. Monotone optimization — every nameable pass combination certifies
//     clean and never grows the emitted area: compaction keeps the best of
//     emit-safe candidate packings, and the refine guard falls back to the
//     unrefined placement unless routing the refined one strictly helps.
//
// Plus the surface around them: compact_route is idempotent on its own
// fixed point, parse_pass_list rejects unknown names with a nearest-name
// suggestion, and families outside the star machinery refuse pass lists
// with kUnknownParam rather than silently ignoring them.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "starlay/core/builder.hpp"
#include "starlay/core/pass.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/support/thread_pool.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {
namespace {

std::uint64_t fnv(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v);
  h *= 1099511628211ull;
  return h;
}

/// Same observable-quantity fingerprint wire_store_test.cpp pins its
/// goldens with (wires, segments, bounding box, derived lengths).
std::uint64_t layout_fingerprint(const layout::Layout& lay) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv(h, lay.num_wires());
  for (const layout::WireRef w : lay.wires()) {
    h = fnv(h, w.edge());
    h = fnv(h, w.h_layer());
    h = fnv(h, w.v_layer());
    h = fnv(h, w.npts());
    for (int i = 0; i < w.npts(); ++i) {
      h = fnv(h, w.pt(i).x);
      h = fnv(h, w.pt(i).y);
    }
  }
  for (const layout::LayerSegment& s : lay.segments()) {
    h = fnv(h, s.layer);
    h = fnv(h, s.horizontal ? 1 : 0);
    h = fnv(h, s.line);
    h = fnv(h, s.span.lo);
    h = fnv(h, s.span.hi);
    h = fnv(h, s.wire);
  }
  const layout::Rect& bb = lay.bounding_box();
  h = fnv(h, bb.x0);
  h = fnv(h, bb.y0);
  h = fnv(h, bb.x1);
  h = fnv(h, bb.y1);
  h = fnv(h, lay.num_layers());
  h = fnv(h, lay.total_wire_length());
  h = fnv(h, lay.max_wire_length());
  return h;
}

// ---- 1. Identity: empty pass list reproduces the pinned goldens ----------

TEST(PassPipelineIdentity, StarMachineryReproducesGoldens) {
  const PassList identity;
  {
    layout::MaterializingSink sink;
    star_layout_stream_passes(6, identity, sink);
    EXPECT_EQ(layout_fingerprint(sink.take_layout()), 10461399955388810600ull);
  }
  {
    layout::MaterializingSink sink;
    star_layout_compact_stream_passes(5, identity, sink);
    EXPECT_EQ(layout_fingerprint(sink.take_layout()), 8595571350256437763ull);
  }
  {
    layout::MaterializingSink sink;
    transposition_layout_stream_passes(4, identity, sink);
    EXPECT_EQ(layout_fingerprint(sink.take_layout()), 3861059960937322183ull);
  }
}

TEST(PassPipelineIdentity, NonPipelineFamiliesReproduceGoldens) {
  // hcn/hfn do not thread passes; try_build_stream_passes with an empty
  // list must still fall through to the plain streaming build.
  const struct {
    const char* family;
    std::uint64_t golden;
  } cases[] = {{"hcn", 16386271916943833031ull}, {"hfn", 12231418494752869806ull}};
  for (const auto& c : cases) {
    const LayoutBuilder* builder = find_builder(c.family);
    ASSERT_NE(builder, nullptr) << c.family;
    BuildParams params;
    params.n = 2;
    layout::MaterializingSink sink;
    const auto out = builder->try_build_stream_passes(params, PassList{}, sink);
    ASSERT_TRUE(out.ok()) << c.family;
    EXPECT_EQ(layout_fingerprint(sink.take_layout()), c.golden) << c.family;
  }
}

// ---- 2. Monotone optimization: clean verdicts, area never grows ----------

std::vector<PassList> optimization_combos() {
  return {{/*refine=*/false, /*compact=*/true},
          {/*refine=*/true, /*compact=*/false},
          {/*refine=*/true, /*compact=*/true}};
}

/// Streams (family, n) through a StreamingCertifier with \p passes and
/// returns the certified report.
layout::StreamReport certify(const char* family, int n, const PassList& passes) {
  const LayoutBuilder* builder = find_builder(family);
  EXPECT_NE(builder, nullptr) << family;
  BuildParams params;
  params.n = n;
  layout::StreamingCertifier cert;
  const auto out = builder->try_build_stream_passes(params, passes, cert);
  EXPECT_TRUE(out.ok()) << family << " n=" << n << ": "
                        << (out.ok() ? "" : out.error().message);
  return cert.report();
}

TEST(PassPipelineOptimized, EveryComboCertifiesCleanAndNeverGrows) {
  const struct {
    const char* family;
    int n;
  } cases[] = {{"star", 6}, {"star-compact", 5}, {"pancake", 5},
               {"bubble-sort", 5}, {"transposition", 4}};
  for (const auto& c : cases) {
    const layout::StreamReport base = certify(c.family, c.n, PassList{});
    ASSERT_TRUE(base.validation.ok) << c.family;
    for (const PassList& passes : optimization_combos()) {
      const layout::StreamReport opt = certify(c.family, c.n, passes);
      EXPECT_TRUE(opt.validation.ok)
          << c.family << " refine=" << passes.refine << " compact=" << passes.compact
          << ": " << opt.validation.summary();
      EXPECT_LE(opt.area, base.area)
          << c.family << " refine=" << passes.refine << " compact=" << passes.compact;
    }
  }
}

TEST(PassPipelineOptimized, FullPipelineStrictlyShrinksStar) {
  const layout::StreamReport base = certify("star", 6, PassList{});
  const layout::StreamReport opt =
      certify("star", 6, PassList{/*refine=*/true, /*compact=*/true});
  ASSERT_TRUE(opt.validation.ok) << opt.validation.summary();
  EXPECT_LT(opt.area, base.area);
  EXPECT_LE(opt.total_wire_length, base.total_wire_length);
}

TEST(PassPipelineOptimized, DeterministicAcrossThreadCounts) {
  const int saved = support::ThreadPool::instance().num_threads();
  const PassList both{/*refine=*/true, /*compact=*/true};
  std::uint64_t first_digest = 0;
  for (const int t : {1, 2, 4}) {
    support::ThreadPool::instance().set_num_threads(t);
    layout::FingerprintingSink sink;
    star_layout_stream_passes(5, both, sink);
    if (t == 1)
      first_digest = sink.fingerprint();
    else
      EXPECT_EQ(sink.fingerprint(), first_digest) << "threads=" << t;
  }
  support::ThreadPool::instance().set_num_threads(saved);
}

// ---- 3. Compaction idempotence: compact . compact == compact -------------

std::uint64_t plan_digest(const layout::RoutePlan& plan, const topology::Graph& g) {
  layout::FingerprintingSink sink;
  layout::emit_route(plan, g, sink);
  return sink.fingerprint();
}

TEST(PassPipelineCompaction, CompactIsIdempotent) {
  topology::Graph g = topology::star_graph(5);
  const layout::Placement p = layout::row_major_placement(g.num_vertices());
  layout::RoutePlan plan = layout::plan_route(g, p, {});
  const layout::CompactionStats first = layout::compact_route(plan);
  EXPECT_LE(first.area_after, first.area_before);
  const std::uint64_t once = plan_digest(plan, g);

  const layout::CompactionStats second = layout::compact_route(plan);
  EXPECT_EQ(second.area_after, first.area_after);
  EXPECT_EQ(plan_digest(plan, g), once);
}

TEST(PassPipelineCompaction, CompactIsIdempotentOnCompleteGraph) {
  topology::Graph g = topology::complete_graph(8);
  const layout::Placement p = layout::grid_placement(8, 2, 4);
  layout::RoutePlan plan = layout::plan_route(g, p, {});
  layout::compact_route(plan);
  const std::uint64_t once = plan_digest(plan, g);
  layout::compact_route(plan);
  EXPECT_EQ(plan_digest(plan, g), once);
}

// ---- 4. Pass-list parsing and family gating ------------------------------

TEST(PassListParse, AcceptsKnownNamesAndNormalizes) {
  const auto both = parse_pass_list(" Compact ,Refine");
  ASSERT_TRUE(both.ok());
  EXPECT_TRUE(both.value().compact);
  EXPECT_TRUE(both.value().refine);

  const auto tolerant = parse_pass_list(",compact,,");
  ASSERT_TRUE(tolerant.ok());
  EXPECT_TRUE(tolerant.value().compact);
  EXPECT_FALSE(tolerant.value().refine);

  const auto empty = parse_pass_list("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(PassListParse, UnknownNameSuggestsNearest) {
  const auto typo = parse_pass_list("compcat");
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.error().code, BuildErrorCode::kUnknownParam);
  EXPECT_EQ(typo.error().suggestion, "compact");
  EXPECT_NE(typo.error().message.find("did you mean 'compact'"), std::string::npos);

  const auto refin = parse_pass_list("refine,refien");
  ASSERT_FALSE(refin.ok());
  EXPECT_EQ(refin.error().suggestion, "refine");
}

TEST(PassListParse, RegistryExposesBothPasses) {
  ASSERT_NE(find_pass("compact"), nullptr);
  ASSERT_NE(find_pass("refine"), nullptr);
  EXPECT_EQ(find_pass("route"), nullptr);  // structural stages are not nameable
  EXPECT_EQ(all_passes().size(), 2u);
}

TEST(PassPipelineGating, NonSupportingFamilyRejectsPasses) {
  const LayoutBuilder* builder = find_builder("hcn");
  ASSERT_NE(builder, nullptr);
  EXPECT_FALSE(builder->supports_passes());
  BuildParams params;
  params.n = 2;
  layout::FingerprintingSink sink;
  const auto out =
      builder->try_build_stream_passes(params, PassList{/*refine=*/false, /*compact=*/true}, sink);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, BuildErrorCode::kUnknownParam);
  EXPECT_NE(out.error().message.find("--passes"), std::string::npos);
}

TEST(PassPipelineGating, StarMachinerySupportsPasses) {
  for (const char* family : {"star", "star-compact", "pancake", "bubble-sort",
                             "transposition"}) {
    const LayoutBuilder* builder = find_builder(family);
    ASSERT_NE(builder, nullptr) << family;
    EXPECT_TRUE(builder->supports_passes()) << family;
  }
}

}  // namespace
}  // namespace starlay::core
