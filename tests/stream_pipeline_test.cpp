// The streaming pipeline must be *observably identical* to the
// materialized one: a MaterializingSink fed by any builder's stream path
// reproduces build()'s geometry bit-for-bit (pinned by the same FNV-1a
// fingerprints wire_store_test.cpp uses), and a StreamingCertifier reports
// the same verdict, error count, and measured quantities as
// validate_layout on the materialized layout — without storing geometry.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "starlay/core/builder.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::layout {
namespace {

std::uint64_t fnv(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v);
  h *= 1099511628211ull;
  return h;
}

std::uint64_t layout_fingerprint(const Layout& lay) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv(h, lay.num_wires());
  for (const WireRef w : lay.wires()) {
    h = fnv(h, w.edge());
    h = fnv(h, w.h_layer());
    h = fnv(h, w.v_layer());
    h = fnv(h, w.npts());
    for (int i = 0; i < w.npts(); ++i) {
      h = fnv(h, w.pt(i).x);
      h = fnv(h, w.pt(i).y);
    }
  }
  for (std::int32_t v = 0; v < lay.num_nodes(); ++v) {
    const Rect& r = lay.node_rect(v);
    h = fnv(h, r.x0);
    h = fnv(h, r.y0);
    h = fnv(h, r.x1);
    h = fnv(h, r.y1);
  }
  const Rect& bb = lay.bounding_box();
  h = fnv(h, bb.x0);
  h = fnv(h, bb.y0);
  h = fnv(h, bb.x1);
  h = fnv(h, bb.y1);
  h = fnv(h, lay.num_layers());
  h = fnv(h, lay.total_wire_length());
  h = fnv(h, lay.max_wire_length());
  return h;
}

core::BuildParams params_for(const core::LayoutBuilder& b) {
  core::BuildParams p;
  const std::string name(b.name());
  if (name == "hcn" || name == "hfn" || name == "multilayer-hcn" || name == "multilayer-hfn")
    p.n = 2;
  else if (name == "hypercube" || name == "folded-hypercube")
    p.n = 4;
  else if (name.rfind("complete2d", 0) == 0 || name.rfind("collinear", 0) == 0)
    p.n = 7;
  else
    p.n = 4;
  // Only set fields the family reads: params_for must satisfy
  // BuildParams::validate for every builder (the sweeps go through the
  // error-returning try_build tier).
  if (name.rfind("multilayer-", 0) == 0) p.layers = 3;
  if (name == "collinear" || name == "complete2d") p.multiplicity = 2;
  return p;
}

// Registry sanity: lookups, ordering, range enforcement.
TEST(BuilderRegistry, FindAndEnumerate) {
  EXPECT_NE(core::find_builder("star"), nullptr);
  EXPECT_NE(core::find_builder("hcn"), nullptr);
  EXPECT_EQ(core::find_builder("no-such-family"), nullptr);
  const auto all = core::all_builders();
  EXPECT_GE(all.size(), 18u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(), [](const auto* a, const auto* b) {
    return a->name() < b->name();
  }));
  core::BuildParams bad;
  bad.n = -1;
  EXPECT_THROW(core::find_builder("star")->build(bad), std::exception);
}

// Tentpole bit-identity: every registered family's stream path, captured
// by a MaterializingSink, reproduces build() exactly.
TEST(StreamPipeline, MaterializingSinkMatchesBuildForEveryFamily) {
  for (const core::LayoutBuilder* b : core::all_builders()) {
    const core::BuildParams p = params_for(*b);
    ASSERT_TRUE(p.validate(*b).ok()) << "family " << b->name();
    auto built = b->try_build(p);
    ASSERT_TRUE(built.ok()) << "family " << b->name();
    MaterializingSink sink;
    ASSERT_TRUE(b->try_build_stream(p, sink, nullptr).ok()) << "family " << b->name();
    EXPECT_EQ(layout_fingerprint(sink.take_layout()),
              layout_fingerprint(built.value().routed.layout))
        << "family " << b->name();
  }
}

// The streamed graph handed back through graph_out matches the built one.
TEST(StreamPipeline, GraphOutMatchesBuild) {
  const core::LayoutBuilder* b = core::find_builder("star");
  ASSERT_NE(b, nullptr);
  const core::BuildParams p = params_for(*b);
  const core::BuildResult built = b->build(p);
  MaterializingSink sink;
  topology::Graph g(0);
  b->build_stream(p, sink, &g);
  ASSERT_EQ(g.num_vertices(), built.graph.num_vertices());
  ASSERT_EQ(g.num_edges(), built.graph.num_edges());
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(g.edge(e).u, built.graph.edge(e).u);
    EXPECT_EQ(g.edge(e).v, built.graph.edge(e).v);
  }
  // Adjacency was released but degrees must survive.
  EXPECT_EQ(g.max_degree(), built.graph.max_degree());
}

// Certifier equality: verdict, error count, and every measured quantity
// match the materialized validate + measure path, for every family.
TEST(StreamPipeline, CertifierMatchesValidateForEveryFamily) {
  for (const core::LayoutBuilder* b : core::all_builders()) {
    const core::BuildParams p = params_for(*b);
    auto built = b->try_build(p);
    ASSERT_TRUE(built.ok()) << "family " << b->name();
    const Layout& lay = built.value().routed.layout;
    const ValidationReport vrep = validate_layout(built.value().graph, lay);

    StreamingCertifier sink;
    ASSERT_TRUE(b->try_build_stream(p, sink, nullptr).ok()) << "family " << b->name();
    const StreamReport& srep = sink.report();

    EXPECT_EQ(srep.validation.ok, vrep.ok) << "family " << b->name();
    EXPECT_EQ(srep.validation.num_errors_total, vrep.num_errors_total)
        << "family " << b->name();
    EXPECT_EQ(srep.num_wires, lay.num_wires()) << "family " << b->name();
    EXPECT_EQ(srep.num_layers, lay.num_layers()) << "family " << b->name();
    EXPECT_EQ(srep.bounding_box, lay.bounding_box()) << "family " << b->name();
    EXPECT_EQ(srep.area, lay.area()) << "family " << b->name();
    EXPECT_EQ(srep.total_wire_length, lay.total_wire_length()) << "family " << b->name();
    EXPECT_EQ(srep.max_wire_length, lay.max_wire_length()) << "family " << b->name();
  }
}

// Squeezing the batch budget forces many cross-wire batches; results must
// not change (each (layer, line) group still lands in exactly one batch).
TEST(StreamPipeline, TinyBatchBudgetIsEquivalent) {
  StreamOptions small;
  small.batch_budget_bytes = 1 << 12;
  small.band_shift = 2;
  StreamingCertifier tiny(small);
  core::star_layout_stream(5, tiny);

  StreamingCertifier def;
  core::star_layout_stream(5, def);

  EXPECT_GT(tiny.report().num_batches, def.report().num_batches);
  EXPECT_EQ(tiny.report().validation.ok, def.report().validation.ok);
  EXPECT_EQ(tiny.report().validation.num_errors_total,
            def.report().validation.num_errors_total);
  EXPECT_EQ(tiny.report().area, def.report().area);
  EXPECT_EQ(tiny.report().total_wire_length, def.report().total_wire_length);
  EXPECT_EQ(tiny.report().bounding_box, def.report().bounding_box);
}

// Band boundaries: a wire whose records straddle two bands (its two
// endpoint probes land in different bands, with an empty band in between)
// must certify exactly like the materialized validator — the adjacent-pair
// scans only group records by (layer, line), never across bands.
TEST(StreamPipeline, WireSpanningTwoBandsCertifiesLikeValidator) {
  topology::Graph g(2);
  g.add_edge(0, 1, 0);
  g.finalize();

  Layout lay(2);
  // band_shift = 2 => bands of 4 grid lines.  Node 0 sits in y-band 0,
  // node 1 in y-band 2; the wire runs up column x=0 and bends onto row
  // y=8, so its vertical record lands in x-band 0, its horizontal record
  // in y-band 2, and y-band 1 (lines 4..7) holds no records at all — an
  // empty interior band the packer must skip cleanly.
  lay.set_node_rect(0, {0, 0, 1, 1});
  lay.set_node_rect(1, {4, 8, 5, 9});
  Wire w;
  w.edge = 0;
  w.push({0, 1});
  w.push({0, 8});
  w.push({4, 8});
  lay.add_wire(w);

  const ValidationReport vrep = validate_layout(g, lay);
  EXPECT_TRUE(vrep.ok) << (vrep.errors.empty() ? "?" : vrep.errors.front());

  StreamOptions opt;
  opt.band_shift = 2;
  opt.batch_budget_bytes = 1;  // one band per batch: the wire spans batches
  StreamingCertifier sink(opt);
  sink.begin(g, std::vector<Rect>(lay.node_rects()));
  sink.emit(lay.wire(0));
  sink.end();
  EXPECT_EQ(sink.report().validation.ok, vrep.ok);
  EXPECT_EQ(sink.report().validation.num_errors_total, vrep.num_errors_total);
  EXPECT_EQ(sink.report().bounding_box, lay.bounding_box());
  EXPECT_EQ(sink.report().area, lay.area());
  EXPECT_GT(sink.report().num_batches, 1);

  // The same geometry with a cross-band violation: a second wire reusing
  // the same vertical line overlaps in band 0 and band 2 alike; certifier
  // and validator must agree on the error count too.
  topology::Graph g2(2);
  g2.add_edge(0, 1, 0);
  g2.add_edge(0, 1, 1);
  g2.finalize();
  Layout bad(2);
  bad.set_node_rect(0, {0, 0, 1, 1});
  bad.set_node_rect(1, {0, 9, 1, 10});
  for (std::int64_t e = 0; e < 2; ++e) {
    Wire dup;
    dup.edge = e;
    dup.push({0, 1});
    dup.push({0, 9});
    bad.add_wire(dup);
  }
  const ValidationReport bad_vrep = validate_layout(g2, bad);
  ASSERT_FALSE(bad_vrep.ok);
  StreamingCertifier bad_sink(opt);
  bad_sink.begin(g2, std::vector<Rect>(bad.node_rects()));
  for (std::int64_t i = 0; i < bad.num_wires(); ++i) bad_sink.emit(bad.wire(i));
  bad_sink.end();
  EXPECT_FALSE(bad_sink.report().validation.ok);
  EXPECT_EQ(bad_sink.report().validation.num_errors_total, bad_vrep.num_errors_total);
}

// An emission whose last spatial band holds nothing (geometry ends well
// below the top of the band range after batching) must not produce phantom
// batches or skew the measured quantities.
TEST(StreamPipeline, EmptyTrailingBandIsHarmless) {
  StreamOptions coarse;
  coarse.band_shift = 14;  // one huge band: everything lands in batch 1
  StreamingCertifier one(coarse);
  core::star_layout_stream(4, one);

  StreamOptions fine;
  fine.band_shift = 0;  // one grid line per band: many bands, some empty
  fine.batch_budget_bytes = 1 << 10;
  StreamingCertifier many(fine);
  core::star_layout_stream(4, many);

  EXPECT_TRUE(one.report().validation.ok);
  EXPECT_TRUE(many.report().validation.ok);
  EXPECT_EQ(one.report().area, many.report().area);
  EXPECT_EQ(one.report().bounding_box, many.report().bounding_box);
  EXPECT_EQ(one.report().total_wire_length, many.report().total_wire_length);
  EXPECT_EQ(one.report().num_wires, many.report().num_wires);
  EXPECT_GT(many.report().num_batches, one.report().num_batches);
}

// Error layouts: the certifier must reject exactly what the validator
// rejects, with the same total count.  Feed hand-built wires through the
// serial emit() path (buffered, certified at end()).
TEST(StreamPipeline, CertifierFlagsSameErrorsAsValidator) {
  topology::Graph g(2);
  g.add_edge(0, 1, 0);
  g.add_edge(0, 1, 1);
  g.finalize();

  Layout lay(2);
  lay.set_node_rect(0, {0, 0, 1, 1});
  lay.set_node_rect(1, {6, 0, 7, 1});
  // Both wires share track y=3 with overlapping spans: track-exclusivity
  // violations, plus a via conflict at the shared bend column.
  for (std::int64_t e = 0; e < 2; ++e) {
    Wire w;
    w.edge = e;
    w.push({static_cast<Coord>(e), 1});
    w.push({static_cast<Coord>(e), 3});
    w.push({6, 3});
    w.push({6, 1});
    lay.add_wire(w);
  }
  const ValidationReport vrep = validate_layout(g, lay);
  ASSERT_FALSE(vrep.ok);
  ASSERT_GT(vrep.num_errors_total, 0);

  StreamingCertifier sink;
  sink.begin(g, std::vector<Rect>(lay.node_rects()));
  for (std::int64_t i = 0; i < lay.num_wires(); ++i) sink.emit(lay.wire(i));
  sink.end();
  EXPECT_FALSE(sink.report().validation.ok);
  EXPECT_EQ(sink.report().validation.num_errors_total, vrep.num_errors_total);
}

// The retained window captures exactly the geometry a zoomed rendering
// needs: every kept wire/node intersects the window, and the kept wires
// are bit-identical to their materialized counterparts.
TEST(StreamPipeline, RetainedWindowCapturesIntersectingGeometry) {
  const auto full = core::star_layout(5);
  const Rect window{0, 0, 40, 40};

  StreamOptions opt;
  opt.retain_window = window;
  StreamingCertifier sink(opt);
  core::star_layout_stream(5, sink);
  const Layout& kept = sink.retained_layout();

  ASSERT_GT(kept.num_wires(), 0);
  ASSERT_LT(kept.num_wires(), full.routed.layout.num_wires());
  const auto intersects = [&](const Rect& r) {
    return !r.empty() && r.x0 <= window.x1 && window.x0 <= r.x1 && r.y0 <= window.y1 &&
           window.y0 <= r.y1;
  };
  std::int64_t expected_nodes = 0;
  for (const Rect& r : full.routed.layout.node_rects())
    if (intersects(r)) ++expected_nodes;
  std::int64_t kept_nodes = 0;
  for (const Rect& r : kept.node_rects())
    if (!r.empty()) {
      EXPECT_TRUE(intersects(r));
      ++kept_nodes;
    }
  EXPECT_EQ(kept_nodes, expected_nodes);

  std::int64_t expected_wires = 0;
  for (const WireRef w : full.routed.layout.wires()) {
    Rect wbb;
    for (int i = 0; i < w.npts(); ++i) wbb.cover(w.pt(i));
    if (intersects(wbb)) ++expected_wires;
  }
  EXPECT_EQ(kept.num_wires(), expected_wires);
  for (const WireRef w : kept.wires()) {
    Rect wbb;
    for (int i = 0; i < w.npts(); ++i) wbb.cover(w.pt(i));
    EXPECT_TRUE(intersects(wbb));
    // The retained copy matches the materialized wire for the same edge.
    bool found = false;
    for (const WireRef fw : full.routed.layout.wires()) {
      if (fw.edge() != w.edge()) continue;
      found = true;
      ASSERT_EQ(fw.npts(), w.npts());
      for (int i = 0; i < w.npts(); ++i) EXPECT_EQ(fw.pt(i), w.pt(i));
    }
    EXPECT_TRUE(found);
  }
}

// New golden fingerprints, streaming edition: HCN/HFN pinned to the same
// values wire_store_test.cpp pins for the materialized path, plus a
// multilayer-star golden.  Computed through MaterializingSink so any
// divergence in the stream path's emitted geometry trips them too.
TEST(StreamGolden, HierarchicalCubicStreamsMatchBaseline) {
  MaterializingSink hcn_sink;
  core::hcn_layout_stream(2, hcn_sink);
  EXPECT_EQ(layout_fingerprint(hcn_sink.take_layout()),
            layout_fingerprint(core::hcn_layout(2).routed.layout));

  MaterializingSink hfn_sink;
  core::hfn_layout_stream(2, hfn_sink);
  EXPECT_EQ(layout_fingerprint(hfn_sink.take_layout()),
            layout_fingerprint(core::hfn_layout(2).routed.layout));
}

// Wire-content-only hashes (no node rects) comparable with the
// wire_store_test.cpp goldens; pinned values below were computed from the
// materialized layouts and must never drift.
std::uint64_t wire_fingerprint(const Layout& lay) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv(h, lay.num_wires());
  for (const WireRef w : lay.wires()) {
    h = fnv(h, w.edge());
    h = fnv(h, w.h_layer());
    h = fnv(h, w.v_layer());
    h = fnv(h, w.npts());
    for (int i = 0; i < w.npts(); ++i) {
      h = fnv(h, w.pt(i).x);
      h = fnv(h, w.pt(i).y);
    }
  }
  return h;
}

TEST(StreamGolden, PinnedWireHashes) {
  MaterializingSink hcn_sink;
  core::hcn_layout_stream(2, hcn_sink);
  EXPECT_EQ(wire_fingerprint(hcn_sink.take_layout()), 11980727731581661597ull);

  MaterializingSink hfn_sink;
  core::hfn_layout_stream(2, hfn_sink);
  EXPECT_EQ(wire_fingerprint(hfn_sink.take_layout()), 1773523785632612384ull);

  MaterializingSink ml_sink;
  core::multilayer_star_layout_stream(4, 3, ml_sink);
  EXPECT_EQ(wire_fingerprint(ml_sink.take_layout()), 14742093594943842870ull);
}

}  // namespace
}  // namespace starlay::layout
