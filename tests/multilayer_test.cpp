// E4 (Lemma 2.3 / Theorem 3.8): multilayer X-Y star layouts.

#include <gtest/gtest.h>

#include <map>

#include "starlay/core/formulas.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"

namespace starlay::core {
namespace {

TEST(XYLayerPairs, EvenLDisjointPairs) {
  const auto pairs = xy_layer_pairs(6);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<std::int16_t, std::int16_t>{1, 2}));
  EXPECT_EQ(pairs[1], (std::pair<std::int16_t, std::int16_t>{3, 4}));
  EXPECT_EQ(pairs[2], (std::pair<std::int16_t, std::int16_t>{5, 6}));
}

TEST(XYLayerPairs, OddLSharedPairs) {
  const auto pairs = xy_layer_pairs(5);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (std::pair<std::int16_t, std::int16_t>{1, 2}));
  EXPECT_EQ(pairs[1], (std::pair<std::int16_t, std::int16_t>{3, 2}));
  EXPECT_EQ(pairs[2], (std::pair<std::int16_t, std::int16_t>{3, 4}));
  EXPECT_EQ(pairs[3], (std::pair<std::int16_t, std::int16_t>{5, 4}));
}

TEST(XYLayerPairs, AllPairsAdjacentAndParityCorrect) {
  for (int L = 2; L <= 11; ++L) {
    for (const auto& [h, v] : xy_layer_pairs(L)) {
      EXPECT_EQ(h % 2, 1);
      EXPECT_EQ(v % 2, 0);
      EXPECT_EQ(std::abs(h - v), 1);
      EXPECT_LE(std::max(h, v), L);
    }
  }
}

TEST(XYPairWeights, SumToOneAndBalancePerLayer) {
  for (int L = 2; L <= 11; ++L) {
    const auto pairs = xy_layer_pairs(L);
    const auto w = xy_pair_weights(L);
    ASSERT_EQ(pairs.size(), w.size());
    double total = 0;
    std::map<int, double> h_load, v_load;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_GE(w[p], -1e-12) << "L=" << L;
      total += w[p];
      h_load[pairs[p].first] += w[p];
      v_load[pairs[p].second] += w[p];
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "L=" << L;
    const int kH = L % 2 == 0 ? L / 2 : L / 2 + 1;
    const int kV = L / 2;
    for (const auto& [layer, load] : h_load) {
      (void)layer;
      EXPECT_NEAR(load, 1.0 / kH, 1e-9) << "L=" << L;
    }
    for (const auto& [layer, load] : v_load) {
      (void)layer;
      EXPECT_NEAR(load, 1.0 / kV, 1e-9) << "L=" << L;
    }
  }
}

TEST(AssignPairs, BalancedPrefixes) {
  const std::vector<double> w{0.5, 0.25, 0.25};
  const auto a = assign_pairs(1000, w);
  std::vector<int> counts(3, 0);
  for (std::int32_t p : a) ++counts[static_cast<std::size_t>(p)];
  EXPECT_NEAR(counts[0], 500, 2);
  EXPECT_NEAR(counts[1], 250, 2);
  EXPECT_NEAR(counts[2], 250, 2);
  // Windows of 8 consecutive assignments contain every pair.
  for (std::size_t i = 0; i + 8 < a.size(); i += 97) {
    std::set<std::int32_t> seen(a.begin() + static_cast<std::ptrdiff_t>(i),
                                a.begin() + static_cast<std::ptrdiff_t>(i) + 8);
    EXPECT_EQ(seen.size(), 3u);
  }
}

class MultilayerSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultilayerSweep, ValidUnderMultilayerRules) {
  const int L = GetParam();
  const MultilayerStarResult r = multilayer_star_layout(5, L);
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_LE(rep.num_layers, L);
}

INSTANTIATE_TEST_SUITE_P(Layers, MultilayerSweep, ::testing::Values(2, 3, 4, 5, 6, 7, 8));

TEST(Multilayer, TwoLayersEqualsThompson) {
  // L = 2 must reproduce the single-pair Thompson layout exactly.
  const auto thompson = star_layout(5);
  const auto two = multilayer_star_layout(5, 2);
  EXPECT_EQ(two.routed.layout.area(), thompson.routed.layout.area());
}

TEST(Multilayer, AreaDecreasesWithLayers) {
  // More layers, less area (n=6 so channels dominate enough to see it).
  const auto a2 = multilayer_star_layout(6, 2).routed.layout.area();
  const auto a4 = multilayer_star_layout(6, 4).routed.layout.area();
  const auto a6 = multilayer_star_layout(6, 6).routed.layout.area();
  EXPECT_LT(a4, a2);
  EXPECT_LT(a6, a4);
}

TEST(Multilayer, OddLayerCountBeatsEvenPredecessor) {
  // The paper's odd-L trick: 3 layers strictly beat 2.
  const auto a2 = multilayer_star_layout(6, 2).routed.layout.area();
  const auto a3 = multilayer_star_layout(6, 3).routed.layout.area();
  EXPECT_LT(a3, a2);
}

TEST(Multilayer, VolumeAccounting) {
  const MultilayerStarResult r = multilayer_star_layout(5, 4);
  EXPECT_EQ(r.volume(), 4 * r.routed.layout.area());
}

TEST(Multilayer, UpperFormulaHalvesFromEvenToNext) {
  const double N = 5040;
  // N^2/(4L^2) sequence: L=2 -> N^2/16, L=4 -> N^2/64.
  EXPECT_DOUBLE_EQ(multilayer_star_area(N, 2), N * N / 16);
  EXPECT_DOUBLE_EQ(multilayer_star_area(N, 4), N * N / 64);
  EXPECT_DOUBLE_EQ(multilayer_star_area(N, 3), N * N / 32);
  EXPECT_DOUBLE_EQ(multilayer_star_area(N, 5), N * N / 96);
}

TEST(MultilayerHcn, ValidAndAreaDecreases) {
  // Section 2.4's remark, executed on HCN/HFN.
  const auto l2 = multilayer_hcn_layout(3, 2);
  const auto l4 = multilayer_hcn_layout(3, 4);
  EXPECT_TRUE(layout::validate_layout(l4.graph, l4.routed.layout).ok);
  EXPECT_LT(l4.routed.layout.area(), l2.routed.layout.area());
  EXPECT_EQ(l2.routed.layout.area(), hcn_layout(3).routed.layout.area());
  const auto f4 = multilayer_hfn_layout(3, 4);
  EXPECT_TRUE(layout::validate_layout(f4.graph, f4.routed.layout).ok);
  EXPECT_LT(f4.routed.layout.area(), hfn_layout(3).routed.layout.area());
}

TEST(MultilayerHcn, OddLayerCountValid) {
  const auto l3 = multilayer_hcn_layout(2, 3);
  EXPECT_TRUE(layout::validate_layout(l3.graph, l3.routed.layout).ok);
  EXPECT_LE(l3.routed.layout.num_layers(), 3);
}

TEST(ApplyXyLayers, OverwritesLayersForAnySpec) {
  layout::RouteSpec spec;
  apply_xy_layers(spec, 10, 6);
  ASSERT_EQ(spec.layers.size(), 10u);
  for (const auto& [h, v] : spec.layers) {
    EXPECT_EQ(h % 2, 1);
    EXPECT_EQ(v % 2, 0);
    EXPECT_LE(std::max(h, v), 6);
  }
}

TEST(Multilayer, RejectsFewerThanTwoLayers) {
  EXPECT_THROW(multilayer_star_layout(5, 1), starlay::InvariantError);
  EXPECT_THROW(xy_layer_pairs(1), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
