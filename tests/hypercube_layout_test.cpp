// Hypercube / folded-hypercube layouts (the 4N^2/9 comparison substrate).

#include <gtest/gtest.h>

#include "starlay/core/formulas.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/layout/validate.hpp"

namespace starlay::core {
namespace {

class CubeLayout : public ::testing::TestWithParam<int> {};

TEST_P(CubeLayout, HypercubeValid) {
  const int d = GetParam();
  const HypercubeLayoutResult r = hypercube_layout(d);
  layout::ValidationOptions opt;
  opt.thompson_node_size = true;
  const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST_P(CubeLayout, FoldedHypercubeValid) {
  const int d = GetParam();
  const HypercubeLayoutResult r = folded_hypercube_layout(d);
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(SmallD, CubeLayout, ::testing::Values(1, 2, 3, 4, 5, 6, 8));

TEST(CubeLayout, PlacementSplitsBits) {
  const layout::Placement p = hypercube_placement(6);
  EXPECT_EQ(p.rows, 8);
  EXPECT_EQ(p.cols, 8);
  // Low bits = row, high bits = column.
  EXPECT_EQ(p.row_of(0b101101), 0b101);
  EXPECT_EQ(p.col_of(0b101101), 0b101);
}

TEST(CubeLayout, AreaRatioDecreasesTowardOne) {
  // measured / (4 N^2 / 9) decreasing (converging to the [28] constant).
  double prev = 1e18;
  for (int d : {4, 6, 8, 10}) {
    const HypercubeLayoutResult r = hypercube_layout(d);
    const double N = static_cast<double>(1 << d);
    const double ratio = static_cast<double>(r.routed.layout.area()) / hypercube_area(N);
    EXPECT_LT(ratio, prev) << d;
    prev = ratio;
  }
  EXPECT_LT(prev, 2.5);
}

TEST(CubeLayout, AreaAboveBisectionLowerBound) {
  // Thompson: area >= B^2 = (N/2)^2 for the hypercube.
  for (int d : {4, 6, 8}) {
    const HypercubeLayoutResult r = hypercube_layout(d);
    const double B = static_cast<double>(hypercube_bisection(1 << d));
    EXPECT_GE(static_cast<double>(r.routed.layout.area()), area_lb_bisection(B));
  }
}

TEST(CubeLayout, FoldedCostsMoreThanPlain) {
  for (int d : {4, 6}) {
    EXPECT_GT(folded_hypercube_layout(d).routed.layout.area(),
              hypercube_layout(d).routed.layout.area());
  }
}

}  // namespace
}  // namespace starlay::core
