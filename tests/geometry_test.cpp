// Unit tests for the geometry primitives and the Layout container.

#include <gtest/gtest.h>

#include "starlay/core/star_model.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/geometry.hpp"
#include "starlay/layout/layout.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::layout {
namespace {

TEST(Rect, EmptyByDefault) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.width(), 0);
  EXPECT_EQ(r.area(), 0);
}

TEST(Rect, DimensionsAndContainment) {
  Rect r{2, 3, 5, 7};
  EXPECT_EQ(r.width(), 4);
  EXPECT_EQ(r.height(), 5);
  EXPECT_EQ(r.area(), 20);
  EXPECT_TRUE(r.contains({2, 3}));
  EXPECT_TRUE(r.contains({5, 7}));
  EXPECT_FALSE(r.contains({6, 7}));
  EXPECT_FALSE(r.strictly_contains({2, 5}));
  EXPECT_TRUE(r.strictly_contains({3, 5}));
}

TEST(Rect, CoverGrows) {
  Rect r;
  r.cover(Point{4, 4});
  EXPECT_EQ(r, (Rect{4, 4, 4, 4}));
  r.cover(Point{-1, 9});
  EXPECT_EQ(r, (Rect{-1, 4, 4, 9}));
  Rect other{10, 10, 12, 12};
  r.cover(other);
  EXPECT_EQ(r.x1, 12);
  r.cover(Rect{});  // covering an empty rect is a no-op
  EXPECT_EQ(r.x1, 12);
}

TEST(Interval, ClosedOverlap) {
  EXPECT_TRUE((Interval{0, 5}).overlaps_closed({5, 9}));
  EXPECT_FALSE((Interval{0, 5}).overlaps_closed({6, 9}));
  EXPECT_TRUE((Interval{3, 3}).overlaps_closed({0, 9}));
}

TEST(Wire, PushDeduplicates) {
  Wire w;
  w.push({0, 0});
  w.push({0, 0});
  w.push({0, 5});
  EXPECT_EQ(w.npts, 2);
  EXPECT_EQ(w.back(), (Point{0, 5}));
}

TEST(Layout, AreaAndWireLength) {
  Layout lay(2);
  lay.set_node_rect(0, {0, 0, 1, 1});
  lay.set_node_rect(1, {8, 0, 9, 1});
  Wire w;
  w.edge = 0;
  w.push({1, 1});
  w.push({1, 3});
  w.push({8, 3});
  w.push({8, 1});
  lay.add_wire(w);
  EXPECT_EQ(lay.width(), 10);
  EXPECT_EQ(lay.height(), 4);
  EXPECT_EQ(lay.area(), 40);
  EXPECT_EQ(lay.total_wire_length(), 2 + 7 + 2);
  EXPECT_EQ(lay.max_wire_length(), 11);
  EXPECT_EQ(lay.num_layers(), 2);
  EXPECT_EQ(lay.segments().size(), 3u);
}

TEST(Layout, RejectsBadNodeAccess) {
  Layout lay(1);
  EXPECT_THROW(lay.set_node_rect(1, {0, 0, 1, 1}), starlay::InvariantError);
  EXPECT_THROW(lay.set_node_rect(0, Rect{}), starlay::InvariantError);
  EXPECT_THROW(lay.node_rect(-1), starlay::InvariantError);
}

TEST(Layout, SegmentsSkipDegenerate) {
  Layout lay(1);
  lay.set_node_rect(0, {0, 0, 0, 0});
  Wire w;
  w.push({0, 0});
  w.push({0, 0});  // deduped: single point, no segments
  lay.add_wire(w);
  EXPECT_TRUE(lay.segments().empty());
}

}  // namespace
}  // namespace starlay::layout

namespace starlay::core {
namespace {

TEST(StarAreaModel, PredictsMeasuredAreaTightly) {
  // The second-order model must be far tighter than the bare N^2/16, and
  // conservative (the router's cross-level sharing only helps).
  for (int n : {5, 6, 7}) {
    const StarAreaModel m = star_area_model(n);
    const auto r = star_layout(n);
    const double measured = static_cast<double>(r.routed.layout.area());
    const double model_ratio = measured / m.area;
    EXPECT_GT(model_ratio, 0.6) << n;
    EXPECT_LT(model_ratio, 1.1) << n;
    const double bare_ratio =
        measured / (static_cast<double>(starlay::factorial(n)) *
                    static_cast<double>(starlay::factorial(n)) / 16.0);
    EXPECT_LT(std::abs(model_ratio - 1.0), std::abs(bare_ratio - 1.0)) << n;
  }
}

TEST(StarAreaModel, ComponentsArePositiveAndOrdered) {
  const StarAreaModel m = star_area_model(6);
  EXPECT_GT(m.channel_width, 0);
  EXPECT_GT(m.channel_height, 0);
  EXPECT_GT(m.node_width, 0);
  // Channels dominate nodes from n = 6 on.
  EXPECT_GT(m.channel_height, m.node_height);
}

TEST(StarAreaModel, ChannelTermApproachesNQuarter) {
  // The model's channel totals, normalized by N/4, shrink toward 1 as n
  // grows — the measurable version of the paper's o(N^2) claim.
  double prev = 1e18;
  for (int n : {5, 6, 7, 8}) {
    const StarAreaModel m = star_area_model(n);
    const double norm = static_cast<double>(m.channel_height) /
                        (static_cast<double>(starlay::factorial(n)) / 4.0);
    EXPECT_LT(norm, prev) << n;
    EXPECT_GT(norm, 1.0) << n;
    prev = norm;
  }
}

TEST(StarAreaModel, RejectsBadArguments) {
  EXPECT_THROW(star_area_model(1), starlay::InvariantError);
  EXPECT_THROW(star_area_model(11), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
