// Konig edge coloring — correctness and optimality (exactly Delta colors).

#include <gtest/gtest.h>

#include <random>

#include "starlay/comm/edge_coloring.hpp"
#include "starlay/support/check.hpp"

namespace starlay::comm {
namespace {

/// Checks the coloring is proper and uses at most max_colors colors.
void expect_proper(std::int32_t nl, std::int32_t nr, const std::vector<BipartiteEdge>& edges,
                   const std::vector<std::int32_t>& colors, std::int32_t max_colors) {
  ASSERT_EQ(colors.size(), edges.size());
  std::set<std::pair<std::int32_t, std::int32_t>> left_used, right_used;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    ASSERT_GE(colors[i], 0);
    ASSERT_LT(colors[i], max_colors);
    EXPECT_TRUE(left_used.insert({edges[i].left, colors[i]}).second)
        << "left " << edges[i].left << " repeats color " << colors[i];
    EXPECT_TRUE(right_used.insert({edges[i].right, colors[i]}).second)
        << "right " << edges[i].right << " repeats color " << colors[i];
  }
  (void)nl;
  (void)nr;
}

std::int32_t max_degree(std::int32_t nl, std::int32_t nr,
                        const std::vector<BipartiteEdge>& edges) {
  std::vector<std::int32_t> l(static_cast<std::size_t>(nl), 0), r(static_cast<std::size_t>(nr), 0);
  std::int32_t d = 0;
  for (const auto& e : edges) {
    d = std::max({d, ++l[static_cast<std::size_t>(e.left)],
                  ++r[static_cast<std::size_t>(e.right)]});
  }
  return d;
}

TEST(EdgeColoring, EmptyGraph) {
  EXPECT_TRUE(bipartite_edge_coloring(3, 3, {}).empty());
}

TEST(EdgeColoring, SingleEdge) {
  const std::vector<BipartiteEdge> e{{0, 0}};
  const auto c = bipartite_edge_coloring(1, 1, e);
  expect_proper(1, 1, e, c, 1);
}

TEST(EdgeColoring, CompleteBipartite) {
  std::vector<BipartiteEdge> e;
  for (std::int32_t a = 0; a < 5; ++a)
    for (std::int32_t b = 0; b < 5; ++b) e.push_back({a, b});
  const auto c = bipartite_edge_coloring(5, 5, e);
  expect_proper(5, 5, e, c, 5);
}

TEST(EdgeColoring, ParallelEdges) {
  const std::vector<BipartiteEdge> e{{0, 0}, {0, 0}, {0, 0}};
  const auto c = bipartite_edge_coloring(1, 1, e);
  expect_proper(1, 1, e, c, 3);
}

TEST(EdgeColoring, RejectsOutOfRange) {
  EXPECT_THROW(bipartite_edge_coloring(1, 1, {{1, 0}}), starlay::InvariantError);
  EXPECT_THROW(bipartite_edge_coloring(1, 1, {{0, -1}}), starlay::InvariantError);
}

class RandomBipartite : public ::testing::TestWithParam<int> {};

TEST_P(RandomBipartite, KonigOptimal) {
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam() * 7919 + 13));
  const std::int32_t nl = 4 + GetParam() % 13;
  const std::int32_t nr = 3 + GetParam() % 7;
  std::uniform_int_distribution<std::int32_t> dl(0, nl - 1), dr(0, nr - 1);
  std::vector<BipartiteEdge> e;
  const int count = 10 + GetParam() * 11;
  for (int i = 0; i < count; ++i) e.push_back({dl(rng), dr(rng)});
  const auto c = bipartite_edge_coloring(nl, nr, e);
  // Konig: exactly max-degree colors suffice.
  expect_proper(nl, nr, e, c, max_degree(nl, nr, e));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBipartite, ::testing::Range(0, 20));

TEST(EdgeColoring, HypercubeDemandShape) {
  // The Q_d TE demand graph: offsets x dims, degree N/2 per dim.
  const int d = 5;
  const std::int32_t N = 1 << d;
  std::vector<BipartiteEdge> e;
  for (std::int32_t off = 1; off < N; ++off)
    for (int b = 0; b < d; ++b)
      if (off & (1 << b)) e.push_back({off - 1, b});
  const auto c = bipartite_edge_coloring(N - 1, d, e);
  expect_proper(N - 1, d, e, c, N / 2);
}

}  // namespace
}  // namespace starlay::comm
