// E8/E9 (Theorems 4.1/4.2): bisection widths.

#include <gtest/gtest.h>

#include "starlay/bisect/bisect.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::bisect {
namespace {

std::int32_t count_side(const std::vector<std::uint8_t>& side, std::uint8_t s) {
  std::int32_t c = 0;
  for (std::uint8_t x : side) c += x == s;
  return c;
}

void expect_balanced(const std::vector<std::uint8_t>& side) {
  const auto n = static_cast<std::int32_t>(side.size());
  const std::int32_t c0 = count_side(side, 0);
  EXPECT_TRUE(c0 == n / 2 || c0 == n - n / 2) << "unbalanced partition";
}

TEST(Exact, CompleteGraphIsFloorM2Over4) {
  for (int m : {2, 3, 4, 5, 6, 7, 8, 9}) {
    const auto g = topology::complete_graph(m);
    const BisectionResult r = exact_bisection(g);
    EXPECT_EQ(r.width, core::complete_bisection(m)) << m;
    expect_balanced(r.side);
    EXPECT_EQ(partition_cut(g, r.side), r.width);
  }
}

TEST(Exact, HypercubeIsNOver2) {
  for (int d : {2, 3, 4}) {
    const auto g = topology::hypercube(d);
    EXPECT_EQ(exact_bisection(g).width, (1 << d) / 2) << d;
  }
}

TEST(Exact, CycleIsTwo) {
  topology::Graph g(8);
  for (std::int32_t v = 0; v < 8; ++v) g.add_edge(v, (v + 1) % 8);
  g.finalize();
  EXPECT_EQ(exact_bisection(g).width, 2);
}

TEST(Exact, Star4IsEight) {
  // Theorem 4.1 gives N/4 +- o(N) = 6 +- o(24); the exact value is 8
  // (the substar cut is optimal at n = 4).
  const auto g = topology::star_graph(4);
  const BisectionResult r = exact_bisection(g);
  EXPECT_EQ(r.width, 8);
  expect_balanced(r.side);
}

TEST(Exact, HcnAndHfn16AreExactlyNOver4) {
  // Theorem 4.2: B = N/4 exactly.
  {
    const auto g = topology::hcn(2);
    EXPECT_EQ(exact_bisection(g).width, core::hcn_bisection(16));
  }
  {
    const auto g = topology::hfn(2);
    EXPECT_EQ(exact_bisection(g).width, core::hcn_bisection(16));
  }
}

TEST(Exact, RejectsOversizedInput) {
  EXPECT_THROW(exact_bisection(topology::hypercube(6)), starlay::InvariantError);
}

TEST(KL, MatchesExactOnSmallGraphs) {
  for (int m : {4, 6, 8}) {
    const auto g = topology::complete_graph(m);
    EXPECT_EQ(kernighan_lin_bisection(g).width, exact_bisection(g).width) << m;
  }
  {
    const auto g = topology::hypercube(4);
    EXPECT_EQ(kernighan_lin_bisection(g).width, exact_bisection(g).width);
  }
  {
    const auto g = topology::star_graph(4);
    EXPECT_EQ(kernighan_lin_bisection(g).width, 8);
  }
}

TEST(KL, BalancedAndConsistent) {
  const auto g = topology::star_graph(5);
  const BisectionResult r = kernighan_lin_bisection(g, 4);
  expect_balanced(r.side);
  EXPECT_EQ(partition_cut(g, r.side), r.width);
  // Upper bound sanity: KL can't beat the BATT lower bound of Theorem 4.2.
  const double lb = core::bisection_lb_batt(120, core::star_te_time(5, 120));
  EXPECT_GE(static_cast<double>(r.width), lb * 0.99);
}

TEST(Constructions, HcnClusterCutIsExactlyNOver4) {
  for (int h : {2, 3, 4}) {
    const std::int64_t N = std::int64_t{1} << (2 * h);
    {
      const auto g = topology::hcn(h);
      const BisectionResult r = hcn_cluster_bisection(g, h);
      expect_balanced(r.side);
      EXPECT_EQ(r.width, N / 4) << "HCN h=" << h;
    }
    {
      const auto g = topology::hfn(h);
      const BisectionResult r = hcn_cluster_bisection(g, h);
      expect_balanced(r.side);
      EXPECT_EQ(r.width, N / 4) << "HFN h=" << h;
    }
  }
}

TEST(Constructions, NaiveClusterSplitCutsDiameterLinks) {
  // Control experiment for Theorem 4.2's cluster ordering: splitting HCN
  // clusters as [0, M/2) vs [M/2, M) also cuts N/4 inter-cluster links but
  // adds M/2 diameter links — strictly worse.
  const int h = 3;
  const auto g = topology::hcn(h);
  const std::int32_t M = 1 << h;
  std::vector<std::uint8_t> naive(static_cast<std::size_t>(M) * M, 0);
  for (std::int32_t c = M / 2; c < M; ++c)
    for (std::int32_t x = 0; x < M; ++x)
      naive[static_cast<std::size_t>(topology::hcn_vertex(h, c, x))] = 1;
  const std::int64_t naive_cut = partition_cut(g, naive);
  const std::int64_t smart_cut = hcn_cluster_bisection(g, h).width;
  EXPECT_EQ(naive_cut, smart_cut + M / 2);
}

TEST(Constructions, StarSubstarCutMatchesFormula) {
  // Even n: cut = (n/2)^2 (n-2)! = (N/4) n/(n-1), the paper's remark that
  // substar cuts overshoot N/4.
  for (int n : {4, 6}) {
    const auto g = topology::star_graph(n);
    const BisectionResult r = star_substar_bisection(g, n);
    expect_balanced(r.side);
    const std::int64_t expect = static_cast<std::int64_t>(n / 2) * (n / 2) *
                                starlay::factorial(n - 2);
    EXPECT_EQ(r.width, expect);
    EXPECT_GT(static_cast<double>(r.width),
              core::star_bisection(static_cast<double>(starlay::factorial(n))));
  }
}

TEST(Constructions, StarSubstarRejectsOddN) {
  const auto g = topology::star_graph(5);
  EXPECT_THROW(star_substar_bisection(g, 5), starlay::InvariantError);
}

TEST(Constructions, LayoutSliceIsBalancedUpperBound) {
  const auto r = core::star_layout(5);
  const BisectionResult s = layout_slice_bisection(r.graph, r.structure.placement);
  expect_balanced(s.side);
  // It is an upper bound witness: some balanced cut of this size exists.
  EXPECT_GE(s.width, kernighan_lin_bisection(r.graph, 2).width);
}

TEST(Theorem42Sandwich, Hcn16) {
  // Lower bound (BATT chain) <= exact <= construction, all equal N/4.
  const std::int64_t N = 16;
  const double lb = core::bisection_lb_batt(N, core::hcn_te_time(static_cast<double>(N)));
  const auto g = topology::hcn(2);
  const std::int64_t exact = exact_bisection(g).width;
  const std::int64_t upper = hcn_cluster_bisection(g, 2).width;
  EXPECT_LE(std::ceil(lb - 0.05), static_cast<double>(exact));
  EXPECT_LE(exact, upper);
  EXPECT_EQ(upper, N / 4);
  EXPECT_EQ(exact, N / 4);
}

}  // namespace
}  // namespace starlay::bisect
