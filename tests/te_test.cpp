// E7 (Lemmas 3.6/3.9): total-exchange simulation and schedules.

#include <gtest/gtest.h>

#include "starlay/support/check.hpp"
#include "starlay/comm/te.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::comm {
namespace {

TEST(DistanceTable, MatchesBfs) {
  const auto g = topology::hypercube(4);
  const DistanceTable dt(g);
  EXPECT_EQ(dt.dist(0, 0), 0);
  EXPECT_EQ(dt.dist(0, 0b1111), 4);
  EXPECT_EQ(dt.dist(0b1010, 0b1000), 1);
}

TEST(DistanceTable, RejectsDisconnected) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_THROW(DistanceTable{g}, starlay::InvariantError);
}

TEST(MakeTePackets, CountsAndContents) {
  const auto p = make_te_packets(4, 2);
  EXPECT_EQ(p.size(), 2u * 4 * 3);
  for (const auto& pk : p) EXPECT_NE(pk.at, pk.dst);
}

TEST(Greedy, CompleteGraphOneStepPerTask) {
  // All-port K_m finishes a whole TE in one step.
  const auto g = topology::complete_graph(8);
  const DistanceTable dt(g);
  EXPECT_EQ(greedy_te(g, dt, 1).steps, 1);
  EXPECT_EQ(greedy_te(g, dt, 3).steps, 3);
}

TEST(Greedy, DeliversEverything) {
  const auto g = topology::star_graph(4);
  const DistanceTable dt(g);
  const SimResult r = greedy_te(g, dt);
  EXPECT_EQ(r.packets_delivered, 24 * 23);
  EXPECT_TRUE(r.all_shortest_paths);
}

TEST(Greedy, RespectsLowerBounds) {
  struct Case {
    topology::Graph g;
    std::int64_t B;
  };
  std::vector<Case> cases;
  cases.push_back({topology::hypercube(4), 8});
  cases.push_back({topology::star_graph(4), 8});   // exact bisection (computed)
  cases.push_back({topology::hcn(2), 4});
  for (auto& c : cases) {
    const DistanceTable dt(c.g);
    const SimResult r = greedy_te(c.g, dt);
    const auto lb = te_time_lower_bounds(c.g.num_vertices(), c.B, c.g.max_degree());
    EXPECT_GE(r.steps, lb.bisection);
    EXPECT_GE(r.steps, lb.degree);
  }
}

TEST(Greedy, StarBeatsFragopoulouAklFormulaTime) {
  // The greedy all-port schedule should comfortably meet 2N + o(N).
  const auto g = topology::star_graph(5);
  const DistanceTable dt(g);
  const SimResult r = greedy_te(g, dt);
  const double N = 120;
  EXPECT_LE(static_cast<double>(r.steps), core::fragopoulou_akl_te_time(N));
  // And it can't beat the bisection bound N^2/4 / B with B = N/4 + o(N).
  EXPECT_GE(static_cast<double>(r.steps), 0.8 * N);
}

TEST(Greedy, HcnThroughputNearOneOverN) {
  // Lemma 3.9: HCN TE throughput -> 1/N.  Two pipelined tasks should take
  // under 2x the single-task-plus-slack time.
  const auto g = topology::hcn(2);
  const DistanceTable dt(g);
  const auto one = greedy_te(g, dt, 1);
  const auto two = greedy_te(g, dt, 2);
  EXPECT_LE(two.steps, 2 * one.steps);
  EXPECT_GE(two.steps, one.steps);
}

TEST(TeLowerBounds, Formulas) {
  const auto b = te_time_lower_bounds(16, 4, 5);
  EXPECT_EQ(b.bisection, 16);
  EXPECT_EQ(b.degree, 3);
  EXPECT_THROW(te_time_lower_bounds(1, 1, 1), starlay::InvariantError);
}

class HypercubeTe : public ::testing::TestWithParam<int> {};

TEST_P(HypercubeTe, ScheduleIsOptimal) {
  // max(per-dimension load, longest offset) = N/2 for every d >= 1.
  const int d = GetParam();
  const HypercubeTeSchedule s = hypercube_te_schedule(d);
  EXPECT_EQ(s.steps, (1 << d) / 2);
  EXPECT_EQ(execute_hypercube_te(s), (1 << d) / 2);
}

INSTANTIATE_TEST_SUITE_P(Dims, HypercubeTe, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 10));

TEST(HypercubeTe, ScheduleMatchesBisectionBound) {
  // N/2 steps is exactly the bisection lower bound N^2/4 / (N/2).
  for (int d : {3, 5, 8}) {
    const std::int64_t N = 1 << d;
    const auto lb = te_time_lower_bounds(N, core::hypercube_bisection(N),
                                         static_cast<std::int32_t>(d));
    EXPECT_EQ(hypercube_te_schedule(d).steps, lb.bisection);
  }
}

TEST(HypercubeTe, CorruptedScheduleRejected) {
  HypercubeTeSchedule s = hypercube_te_schedule(3);
  // Give two offsets the same (step, dim) slot.
  ASSERT_GE(s.slots.size(), 2u);
  s.slots[1] = s.slots[0];
  EXPECT_THROW(execute_hypercube_te(s), starlay::InvariantError);
}

TEST(Greedy, MultipleTasksIncreaseThroughputUtilization) {
  // Pipelining f tasks must not take f times as long as one when the
  // single task is latency-bound.
  const auto g = topology::hypercube(3);
  const DistanceTable dt(g);
  const auto one = greedy_te(g, dt, 1);
  const auto four = greedy_te(g, dt, 4);
  EXPECT_LE(static_cast<double>(four.steps), 4.0 * static_cast<double>(one.steps));
}

}  // namespace
}  // namespace starlay::comm
