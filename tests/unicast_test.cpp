// BAUT (best achievable unicast throughput) — the paper's second
// lower-bound technique (Section 3.1) — plus the transposition-graph
// layout ("various other networks", Section 2.4).

#include <gtest/gtest.h>

#include "starlay/comm/unicast.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::comm {
namespace {

TEST(Unicast, DeliversAllPackets) {
  const auto g = topology::star_graph(4);
  const DistanceTable dt(g);
  const UnicastResult r = route_random_permutations(g, dt, 3);
  EXPECT_EQ(r.packets, 3 * 24);
  EXPECT_GT(r.steps, 0);
  EXPECT_GT(r.rate, 0.0);
}

TEST(Unicast, DeterministicForSeed) {
  const auto g = topology::hypercube(4);
  const DistanceTable dt(g);
  const UnicastResult a = route_random_permutations(g, dt, 2, 7);
  const UnicastResult b = route_random_permutations(g, dt, 2, 7);
  EXPECT_EQ(a.steps, b.steps);
  const UnicastResult c = route_random_permutations(g, dt, 2, 8);
  EXPECT_EQ(c.packets, a.packets);  // same load, possibly different time
}

TEST(Unicast, CompleteGraphNearRateOne) {
  // K_m routes any permutation in one step: rate ~ 1 per batch.
  const auto g = topology::complete_graph(12);
  const DistanceTable dt(g);
  const UnicastResult r = route_random_permutations(g, dt, 5);
  EXPECT_GE(r.rate, 0.99);
}

TEST(Unicast, RateNeverExceedsOne) {
  // One injection port per node per step bounds lambda by ~1 (it can reach
  // 1 only when every packet needs a single hop).
  for (auto make : {+[] { return topology::star_graph(4); },
                    +[] { return topology::hypercube(4); },
                    +[] { return topology::hcn(2); }}) {
    const auto g = make();
    const DistanceTable dt(g);
    const UnicastResult r = route_random_permutations(g, dt, 4);
    EXPECT_LE(r.rate, 1.0 + 1e-9);
  }
}

TEST(Unicast, BautBoundsAreConsistent) {
  // The BAUT bisection bound must hold against the known bisections.
  struct Case {
    topology::Graph g;
    double true_bisection;
  };
  std::vector<Case> cases;
  cases.push_back({topology::star_graph(4), 8});
  cases.push_back({topology::hcn(2), 4});
  cases.push_back({topology::hypercube(4), 8});
  for (auto& c : cases) {
    const DistanceTable dt(c.g);
    const UnicastResult r = route_random_permutations(c.g, dt, 6);
    EXPECT_LE(bisection_lb_baut(c.g.num_vertices(), r.rate), c.true_bisection + 1e-9);
    EXPECT_LE(area_lb_baut(c.g.num_vertices(), r.rate),
              c.true_bisection * c.true_bisection + 1e-6);
  }
}

TEST(Unicast, FormulaShapes) {
  EXPECT_DOUBLE_EQ(bisection_lb_baut(100, 1.0), 25.0);
  EXPECT_DOUBLE_EQ(area_lb_baut(100, 1.0), 625.0);
  EXPECT_THROW(bisection_lb_baut(1, 1.0), starlay::InvariantError);
  EXPECT_THROW(bisection_lb_baut(8, 0.0), starlay::InvariantError);
}

TEST(Unicast, MoreBatchesDontLowerThroughput) {
  // Pipelining should keep or improve utilization.
  const auto g = topology::hypercube(4);
  const DistanceTable dt(g);
  const UnicastResult one = route_random_permutations(g, dt, 1, 3);
  const UnicastResult four = route_random_permutations(g, dt, 4, 3);
  EXPECT_GE(four.rate, 0.8 * one.rate);
}

}  // namespace
}  // namespace starlay::comm

namespace starlay::core {
namespace {

TEST(TranspositionLayout, ValidUnderThompsonRules) {
  for (int n : {3, 4}) {
    const StarLayoutResult r = transposition_layout(n);
    layout::ValidationOptions opt;
    opt.thompson_node_size = true;  // degree n(n-1)/2, regular
    const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "?" : rep.errors[0]);
  }
}

TEST(TranspositionLayout, DenserThanNaiveBaseline) {
  const StarLayoutResult r = transposition_layout(4);
  // The transposition graph on n=4 has 24 nodes of degree 6; its layout
  // area must exceed the star's (more links) but stay within a small
  // multiple (the hierarchy still localizes most links).
  const StarLayoutResult star = star_layout(4);
  EXPECT_GT(r.routed.layout.area(), star.routed.layout.area());
  EXPECT_LT(r.routed.layout.area(), 40 * star.routed.layout.area());
}

TEST(TranspositionLayout, LevelMapIsConsistent) {
  // Generator (i, j) must stay within its level-j block: endpoints agree
  // on all digits above level j.
  const int n = 4, base = 3;
  const StarStructure s = star_structure(n, base);
  const auto g = topology::transposition_graph(n);
  std::vector<int> label_to_level;
  for (int i = 1; i <= n; ++i)
    for (int j = i + 1; j <= n; ++j) label_to_level.push_back(j);
  for (const auto& e : g.edges()) {
    const int level = label_to_level[static_cast<std::size_t>(e.label)];
    for (int lvl = n; lvl > std::max(level, base); --lvl) {
      const std::int32_t depth = n - lvl;
      EXPECT_EQ(s.paths.digit(e.u, depth), s.paths.digit(e.v, depth))
          << "level-" << level << " edge leaked out of its level-" << lvl << " block";
    }
  }
}

}  // namespace
}  // namespace starlay::core
