// Tests for the telemetry subsystem: span nesting and merge semantics,
// counter attribution, the JSON trace schema, and — the load-bearing
// property — structure-digest determinism across thread-pool sizes when
// tracing the real streaming pipeline.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "starlay/core/builder.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace tel = starlay::support::telemetry;

namespace {

tel::TraceReport sample_report() {
  tel::TraceReport rep;
  rep.root.name = "trace";
  rep.root.calls = 1;
  rep.root.seconds = 0.5;
  rep.root.counters = {{"wires", 42}};
  tel::TraceSpan child;
  child.name = "routing";
  child.calls = 2;
  child.seconds = 0.25;
  rep.root.children.push_back(child);
  rep.total_seconds = 0.5;
  rep.threads = 4;
  rep.rss_samples = {{0.0, 1048576}, {0.1, 2097152}};
  rep.peak_rss_bytes = 2097152;
  return rep;
}

}  // namespace

// The serialization layer compiles (and must stay stable) regardless of
// whether the instrumentation itself is compiled in.

TEST(TelemetryReport, JsonSchemaGolden) {
  const tel::TraceReport rep = sample_report();
  const std::string expected =
      "{\n"
      "  \"schema\": \"starlay-trace-v1\",\n"
      "  \"threads\": 4,\n"
      "  \"total_seconds\": 0.5,\n"
      "  \"peak_rss_mb\": 2,\n"
      "  \"counters\": {\"wires\": 42},\n"
      "  \"rss_samples\": [{\"t\": 0, \"rss_mb\": 1}, {\"t\": 0.1, \"rss_mb\": 2}],\n"
      "  \"spans\": {\"name\": \"trace\", \"calls\": 1, \"seconds\": 0.5, "
      "\"counters\": {\"wires\": 42}, \"children\": "
      "[{\"name\": \"routing\", \"calls\": 2, \"seconds\": 0.25, "
      "\"counters\": {}, \"children\": []}]}\n"
      "}\n";
  EXPECT_EQ(rep.to_json(), expected);
}

TEST(TelemetryReport, SummaryTableShape) {
  const std::string table = sample_report().summary_table();
  EXPECT_NE(table.find("phase"), std::string::npos);
  EXPECT_NE(table.find("wall-ms"), std::string::npos);
  EXPECT_NE(table.find("wires=42"), std::string::npos);
  // Children indent by two spaces per depth level.
  EXPECT_NE(table.find("  routing"), std::string::npos);
  // 500 ms at 100% for the root, 250 ms at 50% for the child.
  EXPECT_NE(table.find("500.00"), std::string::npos);
  EXPECT_NE(table.find("250.00"), std::string::npos);
  EXPECT_NE(table.find("100.0"), std::string::npos);
  // RSS footer covers the sample range.
  EXPECT_NE(table.find("rss: 2 samples, min 1.0 MiB, max 2.0 MiB (threads=4)"),
            std::string::npos);
}

TEST(TelemetryReport, StructureDigestOmitsTimings) {
  tel::TraceReport a = sample_report();
  tel::TraceReport b = sample_report();
  b.root.seconds = 123.0;
  b.root.children[0].seconds = 99.0;
  b.total_seconds = 123.0;
  EXPECT_EQ(a.structure_digest(), b.structure_digest());
  EXPECT_EQ(a.structure_digest(),
            "trace calls=1 wires=42\n"
            "  routing calls=2\n");
}

TEST(TelemetryReport, TotalCountersSumTree) {
  tel::TraceReport rep = sample_report();
  rep.root.children[0].counters = {{"edges", 7}, {"wires", 8}};
  const auto totals = rep.total_counters();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals[0].first, "edges");
  EXPECT_EQ(totals[0].second, 7);
  EXPECT_EQ(totals[1].first, "wires");
  EXPECT_EQ(totals[1].second, 50);
}

TEST(TelemetryReport, WriteTraceJsonRoundTrip) {
  const tel::TraceReport rep = sample_report();
  const std::string path = ::testing::TempDir() + "telemetry_golden_trace.json";
  ASSERT_TRUE(tel::write_trace_json(rep, path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), rep.to_json());
  std::remove(path.c_str());
  EXPECT_FALSE(tel::write_trace_json(rep, "/nonexistent-dir/starlay/trace.json"));
}

#if STARLAY_TELEMETRY

namespace {

tel::TraceOptions no_rss() {
  tel::TraceOptions opt;
  opt.sample_rss = false;
  return opt;
}

const tel::TraceSpan* find_child(const tel::TraceSpan& s, const std::string& name) {
  for (const tel::TraceSpan& c : s.children)
    if (c.name == name) return &c;
  return nullptr;
}

std::int64_t counter_of(const tel::TraceSpan& s, const std::string& name) {
  for (const auto& [k, v] : s.counters)
    if (k == name) return v;
  return -1;
}

}  // namespace

TEST(TelemetryEngine, SpanNestingAndMerge) {
  tel::start_trace(no_rss());
  {
    tel::ScopedPhase alpha("alpha");
    tel::count("c1", 5);
    {
      tel::ScopedPhase beta("beta");
      tel::count("c2", 1);
    }
    {
      tel::ScopedPhase beta("beta");  // merges with the span above
      tel::count("c2", 2);
    }
  }
  {
    tel::ScopedPhase alpha("alpha");  // second call of the same phase
  }
  tel::count("at_root", 7);  // no open span: attributed to the trace root
  const tel::TraceReport rep = tel::stop_trace();

  EXPECT_EQ(rep.root.name, "trace");
  EXPECT_EQ(rep.root.calls, 1);
  EXPECT_EQ(counter_of(rep.root, "at_root"), 7);
  ASSERT_EQ(rep.root.children.size(), 1u);

  const tel::TraceSpan* alpha = find_child(rep.root, "alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->calls, 2);
  EXPECT_EQ(counter_of(*alpha, "c1"), 5);
  ASSERT_EQ(alpha->children.size(), 1u);

  const tel::TraceSpan* beta = find_child(*alpha, "beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->calls, 2);
  EXPECT_EQ(counter_of(*beta, "c2"), 3);
  EXPECT_GE(beta->seconds, 0.0);
  EXPECT_GE(rep.total_seconds, alpha->seconds);
}

TEST(TelemetryEngine, InactivePrimitivesAreNoOps) {
  // Make sure no trace is running, then exercise every primitive.
  tel::stop_trace();
  EXPECT_FALSE(tel::tracing());
  {
    tel::ScopedPhase phase("ignored");
    tel::count("ignored", 1);
  }
  tel::start_trace(no_rss());
  EXPECT_TRUE(tel::tracing());
  const tel::TraceReport rep = tel::stop_trace();
  EXPECT_FALSE(tel::tracing());
  // The pre-trace span and counter must not have leaked into the tree.
  EXPECT_TRUE(rep.root.children.empty());
  EXPECT_TRUE(rep.root.counters.empty());
}

TEST(TelemetryEngine, SpanOpenAcrossStopIsDropped) {
  tel::start_trace(no_rss());
  std::optional<tel::ScopedPhase> phase;
  phase.emplace("straddler");
  const tel::TraceReport first = tel::stop_trace();
  ASSERT_NE(find_child(first.root, "straddler"), nullptr);
  tel::start_trace(no_rss());
  phase.reset();  // ends with a stale epoch: must not touch the new tree
  tel::count("fresh", 1);
  const tel::TraceReport second = tel::stop_trace();
  EXPECT_EQ(find_child(second.root, "straddler"), nullptr);
  EXPECT_EQ(counter_of(second.root, "fresh"), 1);
}

TEST(TelemetryEngine, RssSamplerRecordsProfile) {
  tel::TraceOptions opt;
  opt.sample_rss = true;
  opt.rss_interval_ms = 5;
  tel::start_trace(opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  const tel::TraceReport rep = tel::stop_trace();
  ASSERT_GE(rep.rss_samples.size(), 2u);
  for (std::size_t i = 1; i < rep.rss_samples.size(); ++i)
    EXPECT_LE(rep.rss_samples[i - 1].seconds, rep.rss_samples[i].seconds);
#if defined(__linux__)
  EXPECT_GT(rep.peak_rss_bytes, 0);
#endif
  EXPECT_NE(rep.to_json().find("\"rss_samples\": [{"), std::string::npos);
}

// The core contract: instrumentation sites live in orchestration code only,
// so tracing the real pipeline yields a bit-identical structure digest for
// every thread-pool size.
TEST(TelemetryEngine, StructureDigestDeterministicAcrossThreadCounts) {
  using namespace starlay;
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();

  const core::LayoutBuilder* builder = core::find_builder("star");
  ASSERT_NE(builder, nullptr);
  core::BuildParams params;
  params.n = 5;

  std::vector<std::string> digests;
  for (int threads : {1, 2, 4}) {
    pool.set_num_threads(threads);
    tel::start_trace(no_rss());
    layout::StreamingCertifier sink;
    auto streamed = builder->try_build_stream(params, sink, nullptr);
    const tel::TraceReport rep = tel::stop_trace();
    ASSERT_TRUE(streamed.ok());
    EXPECT_TRUE(sink.report().validation.ok);
    EXPECT_EQ(rep.threads, threads);
    digests.push_back(rep.structure_digest());
  }
  pool.set_num_threads(orig);

  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);
  // The digest covers every instrumented layer of the stream pipeline.
  for (const char* phase : {"build.star", "enumeration", "placement", "route_spec",
                            "routing", "emit", "validation", "band_count"}) {
    EXPECT_NE(digests[0].find(phase), std::string::npos) << "missing phase " << phase;
  }
  EXPECT_NE(digests[0].find("stream.wires="), std::string::npos);
  EXPECT_NE(digests[0].find("enum.paths="), std::string::npos);
}

#endif  // STARLAY_TELEMETRY
