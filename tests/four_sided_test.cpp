// Four-sided routing (the extended-grid node-size regime of Lemma 2.1 /
// Theorem 3.7): attachments on all four node sides with jog terminals.

#include <gtest/gtest.h>

#include "starlay/core/complete2d.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::layout {
namespace {

void expect_valid(const topology::Graph& g, const Layout& lay) {
  const ValidationReport rep = validate_layout(g, lay);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "?" : rep.errors[0]);
}

struct FourCase {
  const char* name;
  topology::Graph (*make)();
};

topology::Graph f_k9() { return topology::complete_graph(9); }
topology::Graph f_k16() { return topology::complete_graph(16); }
topology::Graph f_k6x3() { return topology::complete_graph(6, 3); }
topology::Graph f_q5() { return topology::hypercube(5); }
topology::Graph f_star4() { return topology::star_graph(4); }
topology::Graph f_hcn2() { return topology::hcn(2); }
topology::Graph f_bubble4() { return topology::bubble_sort_graph(4); }

class FourSided : public ::testing::TestWithParam<FourCase> {};

TEST_P(FourSided, AutoSizeProducesValidLayout) {
  const topology::Graph g = GetParam().make();
  RouterOptions opt;
  opt.four_sided = true;
  const RoutedLayout r = route_grid(g, row_major_placement(g.num_vertices()), {}, opt);
  expect_valid(g, r.layout);
  // Auto size in four-sided mode is about half the degree for large
  // degrees; the even/odd interleave can cost one extra unit at tiny ones.
  EXPECT_LE(r.node_size, std::max<Coord>(1, g.max_degree()) + 1);
}

TEST_P(FourSided, StatsCoverAllChannels) {
  const topology::Graph g = GetParam().make();
  const Placement p = row_major_placement(g.num_vertices());
  RouterOptions opt;
  opt.four_sided = true;
  const RoutedLayout r = route_grid(g, p, {}, opt);
  EXPECT_EQ(static_cast<std::int32_t>(r.row_channel_tracks.size()), p.rows + 1);
  EXPECT_EQ(static_cast<std::int32_t>(r.col_channel_tracks.size()), p.cols + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, FourSided,
    ::testing::Values(FourCase{"K9", &f_k9}, FourCase{"K16", &f_k16},
                      FourCase{"K6x3", &f_k6x3}, FourCase{"Q5", &f_q5},
                      FourCase{"star4", &f_star4}, FourCase{"hcn2", &f_hcn2},
                      FourCase{"bubble4", &f_bubble4}),
    [](const ::testing::TestParamInfo<FourCase>& info) { return info.param.name; });

TEST(FourSided, NodeSizeNearHalfDegree) {
  // K_m: degree m-1; the even/odd interleave admits about (m-1)/2 + 1.
  for (int m : {16, 36, 64}) {
    const topology::Graph g = topology::complete_graph(m);
    RouterOptions opt;
    opt.four_sided = true;
    const RoutedLayout r = route_grid(g, row_major_placement(m), {}, opt);
    expect_valid(g, r.layout);
    EXPECT_LE(r.node_size, (m - 1) / 2 + 3) << m;
  }
}

TEST(FourSided, SmallerAreaThanTwoSided) {
  for (int m : {36, 100}) {
    const topology::Graph g = topology::complete_graph(m);
    const Placement p = row_major_placement(m);
    RouterOptions opt;
    opt.four_sided = true;
    const RoutedLayout four = route_grid(g, p, {}, opt);
    const RoutedLayout two = route_grid(g, p);
    expect_valid(g, four.layout);
    EXPECT_LT(four.layout.area(), two.layout.area()) << m;
  }
}

TEST(FourSided, ExplicitTooSmallNodeThrows) {
  const topology::Graph g = topology::complete_graph(12);
  RouterOptions opt;
  opt.four_sided = true;
  opt.node_size = 2;
  EXPECT_THROW(route_grid(g, row_major_placement(12), {}, opt), starlay::InvariantError);
}

TEST(FourSided, CollinearStillExactTracks) {
  // Four-sided collinear K_m: row edges alternate above/below, so the
  // track demand splits between two channels; the total stays floor(m^2/4)
  // + O(1) imbalance.
  for (int m : {8, 16}) {
    const topology::Graph g = topology::complete_graph(m);
    RouterOptions opt;
    opt.four_sided = true;
    const RoutedLayout r = route_grid(g, collinear_placement(m), {}, opt);
    expect_valid(g, r.layout);
    std::int64_t total = 0;
    for (std::int32_t t : r.row_channel_tracks) total += t;
    EXPECT_GE(total, m * m / 4);
    EXPECT_LE(total, m * m / 4 + m);
  }
}

TEST(FourSided, MultilayerCombination) {
  // Four-sided + multilayer: jogs carry the wire's own layers, so the
  // adjacent-pair via rules still hold — the validator confirms.
  topology::Graph g = topology::complete_graph(10, 2);
  const Placement p = row_major_placement(10);
  RouteSpec spec;
  spec.source_is_u.assign(static_cast<std::size_t>(g.num_edges()), 1);
  spec.layers.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e)
    spec.layers[static_cast<std::size_t>(e)] =
        g.edge(e).label == 0 ? std::pair<std::int16_t, std::int16_t>{1, 2}
                             : std::pair<std::int16_t, std::int16_t>{3, 4};
  RouterOptions opt;
  opt.four_sided = true;
  const RoutedLayout r = route_grid(g, p, spec, opt);
  expect_valid(g, r.layout);
  EXPECT_EQ(r.layout.num_layers(), 4);
}

}  // namespace
}  // namespace starlay::layout

namespace starlay::core {
namespace {

TEST(CompactLayouts, StarCompactValid) {
  // Star graphs have degree n-1 only, so the node shrink is small while
  // the jog terminals add channel demand — compact layouts of stars are
  // legal but not smaller at these sizes (see EXPERIMENTS.md E11 notes).
  // The win shows on degree-dominated layouts (K_m below, ~1.2-1.3x).
  for (int n : {4, 5, 6}) {
    const StarLayoutResult compact = star_layout_compact(n);
    const StarLayoutResult normal = star_layout(n);
    const auto rep = layout::validate_layout(compact.graph, compact.routed.layout);
    EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "?" : rep.errors[0]);
    // Still the same order of magnitude as the standard construction.
    EXPECT_LT(compact.routed.layout.area(), 2 * normal.routed.layout.area()) << n;
  }
}

TEST(CompactLayouts, StarCompactStaysAboveLowerBound) {
  // Theorem 3.7 holds for node sides down to the extended-grid minimum:
  // even the compact layout cannot beat N^2/16's BATT floor.
  for (int n : {5, 6}) {
    const StarLayoutResult compact = star_layout_compact(n);
    const double N = static_cast<double>(starlay::factorial(n));
    EXPECT_GE(static_cast<double>(compact.routed.layout.area()),
              N * N / 16.0 * (1.0 - 1.0 / n) * (1.0 - 1.0 / n));
  }
}

TEST(CompactLayouts, Complete2dCompactValidAndSmaller) {
  for (int m : {16, 36}) {
    const Complete2DResult compact = complete2d_compact_layout(m);
    const Complete2DResult normal = complete2d_layout(m);
    EXPECT_TRUE(layout::validate_layout(compact.graph, compact.routed.layout).ok) << m;
    EXPECT_LT(compact.routed.layout.area(), normal.routed.layout.area()) << m;
  }
}

TEST(CompactLayouts, CompactWithMultiplicity) {
  const Complete2DResult r = complete2d_compact_layout(9, 3);
  EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok);
}

}  // namespace
}  // namespace starlay::core
