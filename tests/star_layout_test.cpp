// E3 (Lemma 2.2 / Theorem 3.7): star-graph layouts — validity, structure,
// and convergence of measured area toward N^2/16.

#include <gtest/gtest.h>

#include <numeric>

#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {
namespace {

class StarLayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(StarLayoutSweep, ValidUnderThompsonRules) {
  const int n = GetParam();
  const StarLayoutResult r = star_layout(n);
  layout::ValidationOptions opt;
  opt.thompson_node_size = true;
  const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(r.routed.layout.num_wires(), r.graph.num_edges());
}

TEST_P(StarLayoutSweep, NodeSizeWithinExtendedGridRange) {
  // Theorem 3.7's extended-grid window: sides in [n-1, o(sqrt(N))].
  const int n = GetParam();
  const StarLayoutResult r = star_layout(n);
  layout::ValidationOptions opt;
  opt.min_node_side = n - 1;
  opt.max_node_side = starlay::isqrt(starlay::factorial(n));
  EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout, opt).ok);
}

INSTANTIATE_TEST_SUITE_P(SmallN, StarLayoutSweep, ::testing::Values(3, 4, 5, 6));

TEST(StarLayout, AreaRatioDecreasesTowardOne) {
  double prev = 1e18;
  for (int n : {4, 5, 6, 7}) {
    const StarLayoutResult r = star_layout(n);
    const double N = static_cast<double>(starlay::factorial(n));
    const double ratio = static_cast<double>(r.routed.layout.area()) / star_area(N);
    EXPECT_GT(ratio, 1.0) << "area below the proven lower bound at n=" << n;
    if (n > 4) {
      EXPECT_LT(ratio, prev) << "n=" << n;
    }
    prev = ratio;
  }
  EXPECT_LT(prev, 7.0);
}

TEST(StarLayout, BeatsSykoraVrtoByLargeFactor) {
  // The paper: our area is 72x below Sykora-Vrt'o's 4.5 N^2.  Even with
  // finite-size overheads the measured layout must already beat it.
  for (int n : {5, 6, 7}) {
    const StarLayoutResult r = star_layout(n);
    const double N = static_cast<double>(starlay::factorial(n));
    EXPECT_LT(static_cast<double>(r.routed.layout.area()), sykora_vrto_star_area(N)) << n;
  }
}

TEST(StarLayout, StructureShapesCoverAllLevels) {
  const StarStructure s = star_structure(6, 3);
  // Levels 6, 5, 4 plus the 3! base grid.
  ASSERT_EQ(s.shapes.size(), 4u);
  EXPECT_GE(s.shapes[0].rows * s.shapes[0].cols, 6);
  EXPECT_GE(s.shapes[1].rows * s.shapes[1].cols, 5);
  EXPECT_GE(s.shapes[2].rows * s.shapes[2].cols, 4);
  EXPECT_GE(s.shapes[3].rows * s.shapes[3].cols, 6);  // 3! = 6
  EXPECT_EQ(s.paths.num_paths(), starlay::factorial(6));
  EXPECT_EQ(s.paths.stride, static_cast<std::int32_t>(s.shapes.size()));
}

TEST(StarLayout, PlacementKeepsSubstarsContiguous) {
  // All nodes of one (n-1)-substar must occupy a contiguous block of rows
  // and columns (the hierarchical recursion of Lemma 2.2).
  const int n = 5;
  const StarStructure s = star_structure(n, 3);
  const std::int32_t block_rows = s.placement.rows / s.shapes[0].rows;
  const std::int32_t block_cols = s.placement.cols / s.shapes[0].cols;
  for (std::int64_t v = 0; v < starlay::factorial(n); ++v) {
    const std::int32_t digit = s.paths.digit(v, 0);
    const std::int32_t expect_row_block = digit / s.shapes[0].cols;
    const std::int32_t expect_col_block = digit % s.shapes[0].cols;
    EXPECT_EQ(s.placement.row_of(static_cast<std::int32_t>(v)) / block_rows, expect_row_block);
    EXPECT_EQ(s.placement.col_of(static_cast<std::int32_t>(v)) / block_cols, expect_col_block);
  }
}

TEST(StarLayout, BaseSizeVariantsAllValid) {
  for (int base : {2, 3, 4}) {
    const StarLayoutResult r = star_layout(5, base);
    EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok) << "base=" << base;
  }
}

TEST(StarLayout, BaseSizeClampsToN) {
  const StarLayoutResult r = star_layout(3, 4);
  EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok);
}

TEST(StarLayout, GridStaysNearSquare) {
  for (int n : {5, 6, 7}) {
    const StarStructure s = star_structure(n);
    const double skew = static_cast<double>(s.placement.rows) / s.placement.cols;
    EXPECT_LT(skew, 3.0) << n;
    EXPECT_GT(skew, 1.0 / 3.0) << n;
  }
}

TEST(PermutationFamilies, PancakeLayoutValid) {
  const StarLayoutResult r = permutation_layout(PermutationFamily::kPancake, 5);
  EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok);
}

TEST(PermutationFamilies, BubbleSortLayoutValid) {
  const StarLayoutResult r = permutation_layout(PermutationFamily::kBubbleSort, 5);
  EXPECT_TRUE(layout::validate_layout(r.graph, r.routed.layout).ok);
}

TEST(PermutationFamilies, PancakeAreaSimilarToStar) {
  // Pancake and star graphs have identical degree sequences and the same
  // hierarchical decomposition; the paper says the same area bound holds.
  const auto star = star_layout(5);
  const auto pancake = permutation_layout(PermutationFamily::kPancake, 5);
  const double ratio = static_cast<double>(pancake.routed.layout.area()) /
                       static_cast<double>(star.routed.layout.area());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(StarRouteSpec, OrientationIsConsistentPerEdge) {
  const int n = 5;
  const StarStructure s = star_structure(n);
  const auto g = topology::star_graph(n);
  const layout::RouteSpec spec = star_route_spec(g, s);
  ASSERT_EQ(spec.source_is_u.size(), static_cast<std::size_t>(g.num_edges()));
  // Count orientation balance for dimension-n edges: the halving rule must
  // split each block pair's bundle entirely one way or the other, and the
  // two directions must both occur across block pairs.
  int to_u = 0, to_v = 0;
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge(e).label != n) continue;
    (spec.source_is_u[static_cast<std::size_t>(e)] ? to_u : to_v)++;
  }
  EXPECT_GT(to_u, 0);
  EXPECT_GT(to_v, 0);
}

TEST(StarStructure, RejectsBadArguments) {
  EXPECT_THROW(star_structure(1), starlay::InvariantError);
  EXPECT_THROW(star_structure(13), starlay::InvariantError);
  EXPECT_THROW(star_structure(5, 1), starlay::InvariantError);
  EXPECT_THROW(star_structure(5, 6), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
