// The sharded out-of-core engine must be *observably identical* to the
// in-process streaming pipeline: for every shard and worker count, the
// certification report, the canonical wire fingerprint, and the route
// statistics equal a StreamingCertifier + FingerprintingSink run over
// star_layout_stream on the same parameters — including the error-message
// prefix and exact error totals when validation fails.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "starlay/core/star_layout.hpp"
#include "starlay/core/star_shard.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/support/mapped_file.hpp"
#include "starlay/support/math.hpp"

namespace starlay::core {
namespace {

struct Reference {
  layout::StreamReport report;
  std::uint64_t fingerprint = 0;
  layout::RouteStats route;
};

Reference reference_run(int n, int base_size, const layout::ValidationOptions& vopt) {
  Reference ref;
  layout::StreamOptions sopt;
  sopt.validation = vopt;
  layout::StreamingCertifier cert(sopt);
  ref.route = star_layout_stream(n, cert, base_size);
  ref.report = cert.report();
  layout::FingerprintingSink fp;
  star_layout_stream(n, fp, base_size);
  ref.fingerprint = fp.fingerprint();
  return ref;
}

void expect_matches(const ShardReport& got, const Reference& ref,
                    const std::string& ctx) {
  const layout::StreamReport& s = got.stream;
  const layout::StreamReport& r = ref.report;
  EXPECT_EQ(s.validation.ok, r.validation.ok) << ctx;
  EXPECT_EQ(s.validation.num_errors_total, r.validation.num_errors_total) << ctx;
  EXPECT_EQ(s.validation.errors, r.validation.errors) << ctx;
  EXPECT_EQ(s.validation.num_segments, r.validation.num_segments) << ctx;
  EXPECT_EQ(s.num_wires, r.num_wires) << ctx;
  EXPECT_EQ(s.num_layers, r.num_layers) << ctx;
  EXPECT_EQ(s.bounding_box, r.bounding_box) << ctx;
  EXPECT_EQ(s.area, r.area) << ctx;
  EXPECT_EQ(s.total_wire_length, r.total_wire_length) << ctx;
  EXPECT_EQ(s.max_wire_length, r.max_wire_length) << ctx;
  EXPECT_EQ(got.wire_fingerprint, ref.fingerprint) << ctx;
  EXPECT_EQ(got.route.node_size, ref.route.node_size) << ctx;
  EXPECT_EQ(got.route.row_channel_tracks, ref.route.row_channel_tracks) << ctx;
  EXPECT_EQ(got.route.col_channel_tracks, ref.route.col_channel_tracks) << ctx;
}

std::string spill_root() {
  return ::testing::TempDir() + "/starlay_shard_test";
}

// Bit-identity against the in-process pipeline at every shard count, both
// sequential and forked.
TEST(ShardEngine, MatchesStreamingCertifierAcrossShardCounts) {
  for (const int n : {5, 6, 7}) {
    const Reference ref = reference_run(n, 3, {});
    for (const int shards : {1, 2, 3, 5}) {
      ShardOptions opt;
      opt.num_shards = shards;
      opt.spill_dir = spill_root();
      auto out = star_certify_sharded(n, opt);
      ASSERT_TRUE(out.ok()) << "n=" << n << " shards=" << shards;
      EXPECT_EQ(out.value().num_shards, shards);
      EXPECT_TRUE(out.value().stream.validation.ok) << "n=" << n;
      expect_matches(out.value(), ref,
                     "n=" + std::to_string(n) + " shards=" + std::to_string(shards));
    }
  }
}

TEST(ShardEngine, ForkedWorkersMatchSequential) {
  const Reference ref = reference_run(6, 3, {});
  for (const int workers : {1, 2}) {
    ShardOptions opt;
    opt.num_shards = 4;
    opt.workers = workers;
    opt.spill_dir = spill_root();
    auto out = star_certify_sharded(6, opt);
    ASSERT_TRUE(out.ok()) << "workers=" << workers;
    EXPECT_EQ(out.value().num_workers, workers);
    expect_matches(out.value(), ref, "workers=" + std::to_string(workers));
    if (workers > 1) {
      EXPECT_GT(out.value().worker_peak_rss_bytes, 0);
    }
  }
}

// Thompson-mode node sizing and a forced validation failure: the merged
// error messages and exact totals must reproduce the certifier's chunked
// node pass (N failing nodes, message prefix in vertex order).
TEST(ShardEngine, FailingValidationReproducesErrorStream) {
  layout::ValidationOptions vopt;
  vopt.thompson_node_size = true;
  const Reference ok_ref = reference_run(5, 3, vopt);
  ShardOptions opt;
  opt.num_shards = 3;
  opt.spill_dir = spill_root();
  opt.validation = vopt;
  auto ok_out = star_certify_sharded(5, opt);
  ASSERT_TRUE(ok_out.ok());
  EXPECT_TRUE(ok_out.value().stream.validation.ok);
  expect_matches(ok_out.value(), ok_ref, "thompson ok");

  vopt.min_node_side = 100;  // every node is (n-1) x (n-1): all N fail
  const Reference bad_ref = reference_run(5, 3, vopt);
  opt.validation = vopt;
  auto bad_out = star_certify_sharded(5, opt);
  ASSERT_TRUE(bad_out.ok());
  EXPECT_FALSE(bad_out.value().stream.validation.ok);
  EXPECT_EQ(bad_out.value().stream.validation.num_errors_total,
            starlay::factorial(5));
  expect_matches(bad_out.value(), bad_ref, "thompson failing");
}

// Base-size variation exercises non-default level shapes.
TEST(ShardEngine, AlternateBaseSizeMatches) {
  for (const int base : {2, 4}) {
    const Reference ref = reference_run(6, base, {});
    ShardOptions opt;
    opt.base_size = base;
    opt.num_shards = 2;
    opt.spill_dir = spill_root();
    auto out = star_certify_sharded(6, opt);
    ASSERT_TRUE(out.ok()) << "base=" << base;
    expect_matches(out.value(), ref, "base=" + std::to_string(base));
  }
}

// The slot-grid view must agree with the materialized placement: same
// grid extent, same vertex slots, exact occupancy, and rank round-trips.
TEST(StarSlotGrid, MatchesMaterializedPlacement) {
  for (const int n : {4, 5, 6}) {
    for (const int base : {2, 3}) {
      const StarStructure st = star_structure(n, base);
      const StarSlotGrid grid = StarSlotGrid::make(n, base);
      ASSERT_EQ(grid.rows, st.placement.rows) << "n=" << n << " base=" << base;
      ASSERT_EQ(grid.cols, st.placement.cols) << "n=" << n << " base=" << base;
      std::vector<std::int64_t> slot_of_rank(st.placement.slot.begin(),
                                             st.placement.slot.end());
      std::vector<bool> used(static_cast<std::size_t>(grid.rows) * grid.cols, false);
      for (std::int64_t v = 0; v < static_cast<std::int64_t>(slot_of_rank.size()); ++v) {
        const std::int64_t s = slot_of_rank[static_cast<std::size_t>(v)];
        used[static_cast<std::size_t>(s)] = true;
        EXPECT_TRUE(grid.occupied(s)) << "n=" << n << " v=" << v;
        EXPECT_EQ(grid.rank_of_slot(s), v) << "n=" << n << " slot=" << s;
      }
      for (std::int64_t s = 0; s < static_cast<std::int64_t>(used.size()); ++s)
        EXPECT_EQ(grid.occupied(s), static_cast<bool>(used[static_cast<std::size_t>(s)]))
            << "n=" << n << " base=" << base << " slot=" << s;
    }
  }
}

TEST(ShardEngine, SizeOutOfRangeIsStructured) {
  auto out = star_certify_sharded(13, {});
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, BuildErrorCode::kSizeOutOfRange);
  EXPECT_EQ(out.error().n_lo, 2);
  EXPECT_EQ(out.error().n_hi, 12);
  auto low = star_certify_sharded(1, {});
  ASSERT_FALSE(low.ok());
  EXPECT_EQ(low.error().code, BuildErrorCode::kSizeOutOfRange);
}

// An unusable spill root (a path component that is a regular file) must
// surface as a structured kIoError with the failing path and errno, not
// as a crash or an assertion.
TEST(ShardEngine, UnwritableSpillDirReportsIoError) {
  const std::string blocker = ::testing::TempDir() + "/starlay_shard_blocker";
  {
    std::ofstream f(blocker, std::ios::trunc);
    f << "not a directory\n";
  }
  ShardOptions opt;
  opt.spill_dir = blocker + "/sub";
  auto out = star_certify_sharded(5, opt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.error().code, BuildErrorCode::kIoError);
  EXPECT_FALSE(out.error().io_path.empty());
  EXPECT_NE(out.error().io_errno, 0);
  support::remove_file(blocker);
}

// keep_spill leaves the spill tree on disk for post-mortems; the default
// removes it.
TEST(ShardEngine, SpillLifecycleFollowsKeepSpill) {
  const std::string root = spill_root() + "_lifecycle";
  ShardOptions opt;
  opt.num_shards = 2;
  opt.spill_dir = root;
  opt.keep_spill = true;
  auto kept = star_certify_sharded(5, opt);
  ASSERT_TRUE(kept.ok());
  EXPECT_GT(kept.value().spill_bytes_written, 0);
  EXPECT_TRUE(support::path_exists(root + "/star_n5"));
  opt.keep_spill = false;
  auto removed = star_certify_sharded(5, opt);
  ASSERT_TRUE(removed.ok());
  EXPECT_FALSE(support::path_exists(root + "/star_n5"));
}

}  // namespace
}  // namespace starlay::core
