// E2 (Lemma 2.1b): 2-D complete-graph layouts — undirected m^4/16 leading
// term, directed m^4/4, valid geometry, and the K_9 figure's structure.

#include <gtest/gtest.h>

#include <numeric>

#include "starlay/core/complete2d.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/layout/validate.hpp"

namespace starlay::core {
namespace {

class Complete2D : public ::testing::TestWithParam<int> {};

TEST_P(Complete2D, ValidUnderThompsonRules) {
  const int m = GetParam();
  const Complete2DResult r = complete2d_layout(m);
  layout::ValidationOptions opt;
  opt.thompson_node_size = true;
  const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST_P(Complete2D, VerticalChannelsMatchTheory) {
  // For a perfectly balanced grid the total vertical track count equals
  // floor(m1^2/4) * m2 per... in aggregate exactly m^2/4 (paper Sec 2.2).
  const int m = GetParam();
  const Complete2DResult r = complete2d_layout(m);
  const std::int64_t vch = std::accumulate(r.routed.col_channel_tracks.begin(),
                                           r.routed.col_channel_tracks.end(), std::int64_t{0});
  if (r.grid_rows * r.grid_cols == m) {
    EXPECT_LE(vch, m * m / 4 + m);  // small endpoint slack
    EXPECT_GE(vch, m * m / 4 - m);
  } else {
    EXPECT_LE(vch, m * m / 4 + m);
  }
}

INSTANTIATE_TEST_SUITE_P(SweepM, Complete2D, ::testing::Values(4, 6, 9, 12, 16, 25, 36, 49));

TEST(Complete2D, DirectedCostsFourTimesUndirected) {
  for (int m : {16, 36}) {
    const auto undirected = complete2d_layout(m);
    const auto directed = complete2d_directed_layout(m);
    EXPECT_TRUE(layout::validate_layout(directed.graph, directed.routed.layout).ok);
    const double ratio = static_cast<double>(directed.routed.layout.area()) /
                         static_cast<double>(undirected.routed.layout.area());
    EXPECT_NEAR(ratio, 4.0, 1.2) << "m=" << m;
  }
}

TEST(Complete2D, AreaRatioDecreasesTowardOne) {
  // measured / (m^4/16) must decrease in m (converging to 1 + o(1)).
  double prev = 1e18;
  for (int m : {16, 36, 64, 100}) {
    const auto r = complete2d_layout(m);
    const double ratio = static_cast<double>(r.routed.layout.area()) / complete2d_area(m);
    EXPECT_LT(ratio, prev) << "m=" << m;
    EXPECT_GT(ratio, 1.0) << "m=" << m;
    prev = ratio;
  }
  EXPECT_LT(prev, 2.1);  // by m=100 the ratio is close to the paper's model
}

TEST(Complete2D, MultiplicityValidAndMonotone) {
  const auto r1 = complete2d_layout(9, 1);
  const auto r3 = complete2d_layout(9, 3);
  EXPECT_TRUE(layout::validate_layout(r3.graph, r3.routed.layout).ok);
  EXPECT_GT(r3.routed.layout.area(), r1.routed.layout.area());
  EXPECT_EQ(r3.routed.layout.num_wires(), 3 * r1.routed.layout.num_wires());
}

TEST(Complete2D, K9GridIsThreeByThree) {
  const auto r = complete2d_layout(9);
  EXPECT_EQ(r.grid_rows, 3);
  EXPECT_EQ(r.grid_cols, 3);
  // Fig. 1 scale check: the directed K_9 had 12 tracks between neighboring
  // rows/columns; the undirected layout must use at most that everywhere.
  for (std::int32_t t : r.routed.col_channel_tracks) EXPECT_LE(t, 12);
  for (std::int32_t t : r.routed.row_channel_tracks) EXPECT_LE(t, 12);
}

TEST(Complete2D, OrientationRuleAntisymmetricInCopies) {
  // Copies must alternate orientation: copy 0 and copy 1 of the same pair
  // route through different row channels.
  EXPECT_NE(complete_orientation(0, 2, 0), complete_orientation(0, 2, 1));
  EXPECT_NE(complete_orientation(5, 1, 0), complete_orientation(5, 1, 1));
}

TEST(Complete2D, RejectsTooSmall) {
  EXPECT_THROW(complete2d_layout(1), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
