// Unit tests for the Graph container (CSR multigraph).

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "starlay/support/check.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::topology {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  g.finalize();
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_simple());
}

TEST(Graph, AddEdgeNormalizesEndpoints) {
  Graph g(4);
  g.add_edge(3, 1, 7);
  g.finalize();
  EXPECT_EQ(g.edge(0).u, 1);
  EXPECT_EQ(g.edge(0).v, 3);
  EXPECT_EQ(g.edge(0).label, 7);
}

TEST(Graph, RejectsSelfLoopsAndOutOfRange) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), InvariantError);
  EXPECT_THROW(g.add_edge(0, 3), InvariantError);
  EXPECT_THROW(g.add_edge(-1, 0), InvariantError);
}

TEST(Graph, AdjacencyMatchesEdges) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.finalize();
  const auto n0 = g.neighbors(0);
  std::multiset<std::int32_t> s0(n0.begin(), n0.end());
  EXPECT_EQ(s0, (std::multiset<std::int32_t>{1, 2}));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 1);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_FALSE(g.is_regular());
}

TEST(Graph, ParallelEdgesCountInDegree) {
  Graph g(2);
  g.add_edge(0, 1, 0);
  g.add_edge(0, 1, 1);
  g.add_edge(0, 1, 2);
  g.finalize();
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 3);
  EXPECT_FALSE(g.is_simple());
  EXPECT_TRUE(g.is_regular());
}

TEST(Graph, IncidentEdgesRoundTrip) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(1, 3);
  g.finalize();
  for (std::int32_t v = 0; v < 4; ++v) {
    const auto inc = g.incident_edges(v);
    EXPECT_EQ(static_cast<std::int32_t>(inc.size()), g.degree(v));
    for (std::int64_t ei : inc) {
      const Edge& e = g.edge(ei);
      EXPECT_TRUE(e.u == v || e.v == v);
    }
  }
}

TEST(Graph, RequiresFinalizeForQueries) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.neighbors(0), InvariantError);
  EXPECT_THROW(g.degree(0), InvariantError);
  g.finalize();
  EXPECT_NO_THROW(g.neighbors(0));
}

TEST(Graph, RefinalizeAfterNewEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  EXPECT_EQ(g.degree(0), 1);
  g.add_edge(0, 2);
  g.finalize();
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Graph, HandshakeLemma) {
  Graph g(10);
  for (std::int32_t u = 0; u < 10; ++u)
    for (std::int32_t v = u + 1; v < 10; v += 2) g.add_edge(u, v);
  g.finalize();
  std::int64_t total = 0;
  for (std::int32_t v = 0; v < 10; ++v) total += g.degree(v);
  EXPECT_EQ(total, 2 * g.num_edges());
}

}  // namespace
}  // namespace starlay::topology
