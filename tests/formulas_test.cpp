// Pins the paper's closed-form constants so no refactor of the comparators
// (benches, EXPERIMENTS.md "claimed" columns) can silently drift them.

#include <gtest/gtest.h>

#include "starlay/core/formulas.hpp"

namespace starlay::core {
namespace {

TEST(Formulas, StarAreaConstantIsOneSixteenth) {
  EXPECT_DOUBLE_EQ(star_area(1.0), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(star_area(720.0), 720.0 * 720.0 / 16.0);
  EXPECT_DOUBLE_EQ(hcn_area(1.0), 1.0 / 16.0);  // Lemma 2.4 shares the constant
  EXPECT_DOUBLE_EQ(complete2d_area(1.0), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(complete2d_directed_area(1.0), 1.0 / 4.0);
}

TEST(Formulas, MultilayerStarAreaIsNSquaredOver4LSquared) {
  const double N = 5040.0;
  for (int L : {2, 4, 8})
    EXPECT_DOUBLE_EQ(multilayer_star_area(N, L), N * N / (4.0 * L * L));
  // Odd L gains the paper's (L^2 - 1) refinement.
  for (int L : {3, 5, 7})
    EXPECT_DOUBLE_EQ(multilayer_star_area(N, L), N * N / (4.0 * (L * L - 1)));
  // L = 2 degenerates to the single-construction N^2/16.
  EXPECT_DOUBLE_EQ(multilayer_star_area(N, 2), star_area(N));
}

TEST(Formulas, HypercubeAreaConstantIsFourNinths) {
  EXPECT_DOUBLE_EQ(hypercube_area(1.0), 4.0 / 9.0);
  EXPECT_DOUBLE_EQ(hypercube_area(512.0), 4.0 * 512.0 * 512.0 / 9.0);
}

TEST(Formulas, HeadlineRatioIs64Ninths) {
  EXPECT_DOUBLE_EQ(star_vs_hypercube_ratio(), 64.0 / 9.0);
  // The ratio must be exactly hypercube constant over star constant.
  EXPECT_DOUBLE_EQ(star_vs_hypercube_ratio(), hypercube_area(1.0) / star_area(1.0));
  EXPECT_NEAR(star_vs_hypercube_ratio(), 7.111, 1e-3);
}

TEST(Formulas, ExactCombinatorialValues) {
  EXPECT_EQ(collinear_complete_tracks(9), 20);   // floor(81/4)
  EXPECT_EQ(complete_bisection(9), 20);
  EXPECT_EQ(hypercube_bisection(512), 256);      // N/2
  EXPECT_EQ(hcn_bisection(256), 64);             // N/4
}

}  // namespace
}  // namespace starlay::core
