// E5 (Lemma 2.4 / Theorem 3.10): HCN and HFN layouts.

#include <gtest/gtest.h>

#include <numeric>

#include "starlay/core/formulas.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {
namespace {

class HcnLayoutSweep : public ::testing::TestWithParam<int> {};

TEST_P(HcnLayoutSweep, HcnValid) {
  const int h = GetParam();
  const HcnLayoutResult r = hcn_layout(h);
  layout::ValidationOptions opt;
  opt.thompson_node_size = true;  // HCN is (h+1)-regular
  const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST_P(HcnLayoutSweep, HfnValid) {
  const int h = GetParam();
  const HcnLayoutResult r = hfn_layout(h);
  const auto rep = layout::validate_layout(r.graph, r.routed.layout);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(SmallH, HcnLayoutSweep, ::testing::Values(1, 2, 3, 4));

TEST(HcnLayout, ClustersOccupyContiguousBlocks) {
  const int h = 3;
  const HcnLayoutResult r = hcn_layout(h);
  const std::int32_t M = 1 << h;
  // Each cluster's nodes must fit in one block of the cluster grid.
  for (std::int32_t c = 0; c < M; ++c) {
    std::int32_t rmin = 1 << 30, rmax = -1, cmin = 1 << 30, cmax = -1;
    for (std::int32_t x = 0; x < M; ++x) {
      const std::int32_t v = topology::hcn_vertex(h, c, x);
      rmin = std::min(rmin, r.placement.row_of(v));
      rmax = std::max(rmax, r.placement.row_of(v));
      cmin = std::min(cmin, r.placement.col_of(v));
      cmax = std::max(cmax, r.placement.col_of(v));
    }
    EXPECT_LE((rmax - rmin + 1) * (cmax - cmin + 1), M) << "cluster " << c << " not compact";
  }
}

TEST(HcnLayout, AreaRatioDecreases) {
  double prev = 1e18;
  for (int h : {2, 3, 4}) {
    const HcnLayoutResult r = hcn_layout(h);
    const double N = static_cast<double>(1 << (2 * h));
    const double ratio = static_cast<double>(r.routed.layout.area()) / hcn_area(N);
    EXPECT_LT(ratio, prev) << h;
    EXPECT_GT(ratio, 1.0) << h;
    prev = ratio;
  }
}

TEST(HcnLayout, HfnAreaRatioDecreases) {
  double prev = 1e18;
  for (int h : {2, 3, 4}) {
    const HcnLayoutResult r = hfn_layout(h);
    const double N = static_cast<double>(1 << (2 * h));
    const double ratio = static_cast<double>(r.routed.layout.area()) / hcn_area(N);
    EXPECT_LT(ratio, prev) << h;
    prev = ratio;
  }
}

TEST(HcnLayout, DiameterLinksOnlyAddLowerOrderArea) {
  // Paper: diameter links imply only O(N sqrt(N)) extra area, so HCN and
  // HFN areas stay within a modest factor of each other (HFN has the
  // heavier clusters instead).
  for (int h : {3, 4}) {
    const double hcn_area_measured = static_cast<double>(hcn_layout(h).routed.layout.area());
    const double hfn_area_measured = static_cast<double>(hfn_layout(h).routed.layout.area());
    EXPECT_LT(hcn_area_measured / hfn_area_measured, 1.5) << h;
    EXPECT_GT(hcn_area_measured / hfn_area_measured, 0.3) << h;
  }
}

TEST(HcnLayout, RejectsBadArguments) {
  EXPECT_THROW(hcn_layout(0), starlay::InvariantError);
  EXPECT_THROW(hfn_layout(9), starlay::InvariantError);
}

}  // namespace
}  // namespace starlay::core
