// Tests for the stable, error-returning builder surface: the negative-path
// sweep (no registered family may crash on an out-of-range n), name
// normalization and nearest-name suggestions, param/field validation, and
// the shared command-line parser all drivers go through.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "starlay/core/build_request.hpp"
#include "starlay/core/build_status.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/core/params_cli.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/support/check.hpp"

namespace {

using namespace starlay;
using core::BuildErrorCode;

core::BuildOutcome<core::ParsedBuildParams> parse(std::vector<const char*> argv,
                                                  std::vector<std::string>* extra = nullptr) {
  argv.insert(argv.begin(), "prog");
  return core::parse_build_params(static_cast<int>(argv.size()), argv.data(), extra);
}

// --- negative-path sweep --------------------------------------------------

// Every registered family must return a structured kSizeOutOfRange — never
// crash or abort — for n just outside its advertised range, in both
// execution modes.
TEST(BuilderApi, EveryFamilyRejectsOutOfRangeSizes) {
  const auto builders = core::all_builders();
  ASSERT_FALSE(builders.empty());
  for (const core::LayoutBuilder* b : builders) {
    const auto [lo, hi] = b->n_range();
    const std::string name(b->name());
    for (int n : {lo - 1, hi + 1}) {
      core::BuildParams params;
      params.n = n;

      auto built = b->try_build(params);
      ASSERT_FALSE(built.ok()) << name << " n=" << n;
      EXPECT_EQ(built.error().code, BuildErrorCode::kSizeOutOfRange) << name;
      EXPECT_EQ(built.error().n_lo, lo) << name;
      EXPECT_EQ(built.error().n_hi, hi) << name;
      EXPECT_NE(built.error().message.find("'" + name + "'"), std::string::npos);

      layout::MaterializingSink sink;
      auto streamed = b->try_build_stream(params, sink, nullptr);
      ASSERT_FALSE(streamed.ok()) << name << " n=" << n;
      EXPECT_EQ(streamed.error().code, BuildErrorCode::kSizeOutOfRange) << name;
      EXPECT_EQ(streamed.error().n_lo, lo) << name;
      EXPECT_EQ(streamed.error().n_hi, hi) << name;
    }
  }
}

// The historical asserting tier keeps throwing on the same inputs.
TEST(BuilderApi, AssertingTierStillThrows) {
  const core::LayoutBuilder* star = core::find_builder("star");
  ASSERT_NE(star, nullptr);
  core::BuildParams params;
  params.n = star->n_range().second + 1;
  EXPECT_THROW(star->build(params), starlay::InvariantError);
}

// --- lookup: normalization + suggestion -----------------------------------

TEST(BuilderApi, FindBuilderNormalizesNames) {
  for (const char* spelling : {"star", "  star ", "STAR", "\tStar\n"}) {
    auto found = core::try_find_builder(spelling);
    ASSERT_TRUE(found.ok()) << "'" << spelling << "'";
    EXPECT_EQ(found.value()->name(), "star");
  }
  auto underscored = core::try_find_builder("Multilayer_Star");
  ASSERT_TRUE(underscored.ok());
  EXPECT_EQ(underscored.value()->name(), "multilayer-star");
  // The asserting-tier lookup stays exact-match.
  EXPECT_EQ(core::find_builder("STAR"), nullptr);
  EXPECT_NE(core::find_builder("star"), nullptr);
}

TEST(BuilderApi, UnknownFamilySuggestsNearestName) {
  auto found = core::try_find_builder("strr");
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.error().code, BuildErrorCode::kUnknownFamily);
  EXPECT_EQ(found.error().suggestion, "star");
  EXPECT_NE(found.error().message.find("did you mean 'star'?"), std::string::npos);

  auto hyper = core::try_find_builder("hyper_cube");
  ASSERT_FALSE(hyper.ok());
  EXPECT_EQ(hyper.error().suggestion, "hypercube");

  for (const char* empty : {"", "   "}) {
    auto e = core::try_find_builder(empty);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, BuildErrorCode::kInvalidArgument);
  }
}

// A suggestion tie is broken by name order, not registration order: "hn"
// is edit distance 1 from both "hcn" and "hfn", and must always suggest
// the lexicographically smaller one.
TEST(BuilderApi, SuggestionTieBreaksByName) {
  for (int i = 0; i < 3; ++i) {
    auto found = core::try_find_builder("hn");
    ASSERT_FALSE(found.ok());
    EXPECT_EQ(found.error().code, BuildErrorCode::kUnknownFamily);
    EXPECT_EQ(found.error().suggestion, "hcn");
  }
}

// --- param-field validation -----------------------------------------------

TEST(BuilderApi, ValidateRejectsUnreadFields) {
  const core::LayoutBuilder* hypercube = core::find_builder("hypercube");
  ASSERT_NE(hypercube, nullptr);
  core::BuildParams params;
  params.n = 4;
  params.layers = 3;
  const core::BuildStatus st = params.validate(*hypercube);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, BuildErrorCode::kUnknownParam);
  EXPECT_EQ(st.error().message, "--layers (layers) does not apply to family 'hypercube'");

  // An explicitly-passed flag is rejected even at its default value.
  core::BuildParams defaults;
  defaults.n = 4;
  EXPECT_TRUE(defaults.validate(*hypercube).ok());
  const core::BuildStatus explicit_st = defaults.validate(*hypercube, core::kParamLayers);
  ASSERT_FALSE(explicit_st.ok());
  EXPECT_EQ(explicit_st.error().code, BuildErrorCode::kUnknownParam);

  const core::LayoutBuilder* star = core::find_builder("star");
  ASSERT_NE(star, nullptr);
  core::BuildParams star_params;
  star_params.n = 4;
  star_params.base_size = 4;  // star reads base_size ...
  EXPECT_TRUE(star_params.validate(*star).ok());
  star_params.multiplicity = 2;  // ... but not multiplicity
  const core::BuildStatus star_st = star_params.validate(*star);
  ASSERT_FALSE(star_st.ok());
  EXPECT_EQ(star_st.error().code, BuildErrorCode::kUnknownParam);
  EXPECT_EQ(star_st.error().message,
            "--multiplicity (multiplicity) does not apply to family 'star'");
}

// Exhaustive mask audit: every field a family *advertises* via
// params_used() must actually steer the construction (changing it changes
// the emitted geometry), and every field it does not advertise must be
// rejected by the stable tier when set.  An over-advertised mask silently
// accepts a flag that does nothing; an under-advertised one rejects a flag
// the family reads — both are caught here, family by family, field by
// field.
TEST(BuilderApi, EveryAdvertisedParamFieldIsRead) {
  struct Field {
    unsigned bit;
    const char* name;
    void (*set)(core::BuildParams&);
  };
  static constexpr Field kFields[] = {
      {core::kParamBaseSize, "base_size", [](core::BuildParams& p) { p.base_size = 2; }},
      {core::kParamLayers, "layers", [](core::BuildParams& p) { p.layers = 4; }},
      {core::kParamMultiplicity, "multiplicity",
       [](core::BuildParams& p) { p.multiplicity = 2; }},
  };
  for (const core::LayoutBuilder* b : core::all_builders()) {
    const std::string name(b->name());
    core::BuildParams base;
    // Sizes where every varied field has room to matter (base_size is
    // clamped to n, so n must exceed the probe value).
    if (name == "hcn" || name == "hfn" || name.rfind("multilayer-h", 0) == 0)
      base.n = 2;
    else if (name == "hypercube" || name == "folded-hypercube")
      base.n = 4;
    else if (name.rfind("complete2d", 0) == 0 || name.rfind("collinear", 0) == 0)
      base.n = 6;
    else
      base.n = 5;
    const auto digest = [&](const core::BuildParams& p) {
      layout::FingerprintingSink sink;
      auto out = b->try_build_stream(p, sink);
      EXPECT_TRUE(out.ok()) << name << ": " << (out.ok() ? "" : out.error().message);
      return sink.fingerprint();
    };
    const std::uint64_t base_digest = digest(base);
    for (const Field& f : kFields) {
      core::BuildParams varied = base;
      f.set(varied);
      if (b->params_used() & f.bit) {
        EXPECT_TRUE(varied.validate(*b).ok()) << name << " rejects " << f.name;
        EXPECT_NE(digest(varied), base_digest)
            << name << " advertises " << f.name << " but ignores it";
      } else {
        layout::FingerprintingSink sink;
        auto out = b->try_build_stream(varied, sink);
        ASSERT_FALSE(out.ok()) << name << " accepts unadvertised " << f.name;
        EXPECT_EQ(out.error().code, BuildErrorCode::kUnknownParam) << name << " " << f.name;
      }
    }
  }
}

// Focused negative-path coverage for the wirelength-bearing families added
// alongside the exact host-embedding BoundSpecs.  The generic sweeps above
// already include them (they iterate all_builders()); these pin the exact
// diagnostics a driver relays.
TEST(BuilderApi, NewFamiliesRejectBadInputsStructurally) {
  const struct {
    const char* family;
    int lo, hi;
  } families[] = {{"3ary-cube", 1, 10}, {"enhanced-hypercube", 2, 16}};
  for (const auto& f : families) {
    const core::LayoutBuilder* b = core::find_builder(f.family);
    ASSERT_NE(b, nullptr) << f.family;
    EXPECT_EQ(b->n_range(), std::make_pair(f.lo, f.hi)) << f.family;
    EXPECT_EQ(b->params_used(), 0u) << f.family;  // n only
    EXPECT_FALSE(b->supports_passes()) << f.family;

    // Out-of-range n, both sides.
    for (int n : {f.lo - 1, f.hi + 1}) {
      core::BuildParams params;
      params.n = n;
      auto out = b->try_build(params);
      ASSERT_FALSE(out.ok()) << f.family << " n=" << n;
      EXPECT_EQ(out.error().code, BuildErrorCode::kSizeOutOfRange) << f.family;
    }

    // A param the family does not read.
    core::BuildParams stray;
    stray.n = f.lo + 1;
    stray.base_size = 4;
    const core::BuildStatus st = stray.validate(*b);
    ASSERT_FALSE(st.ok()) << f.family;
    EXPECT_EQ(st.error().code, BuildErrorCode::kUnknownParam) << f.family;
    EXPECT_EQ(st.error().message, "--base-size (base_size) does not apply to family '" +
                                      std::string(f.family) + "'");

    // --passes gating: neither family threads optimization passes.
    core::BuildRequest request;
    request.family = f.family;
    request.params.n = f.lo + 1;
    request.passes = core::PassList{/*refine=*/false, /*compact=*/true};
    layout::FingerprintingSink sink;
    auto streamed = b->try_build_stream(request, sink);
    ASSERT_FALSE(streamed.ok()) << f.family;
    EXPECT_EQ(streamed.error().code, BuildErrorCode::kUnknownParam) << f.family;
    EXPECT_NE(streamed.error().message.find("--passes"), std::string::npos) << f.family;
  }

  // Name normalization reaches the new families too.
  auto threeary = core::try_find_builder(" 3ARY_CUBE ");
  ASSERT_TRUE(threeary.ok());
  EXPECT_EQ(threeary.value()->name(), "3ary-cube");
  auto enhanced = core::try_find_builder("Enhanced_Hypercube");
  ASSERT_TRUE(enhanced.ok());
  EXPECT_EQ(enhanced.value()->name(), "enhanced-hypercube");
}

TEST(BuilderApi, NondefaultFieldsBits) {
  core::BuildParams params;
  EXPECT_EQ(params.nondefault_fields(), 0u);
  params.base_size = 4;
  EXPECT_EQ(params.nondefault_fields(), core::kParamBaseSize);
  params.layers = 3;
  params.multiplicity = 2;
  EXPECT_EQ(params.nondefault_fields(),
            core::kParamBaseSize | core::kParamLayers | core::kParamMultiplicity);
}

TEST(BuilderApi, ErrorCodeNames) {
  EXPECT_STREQ(core::build_error_code_name(BuildErrorCode::kUnknownFamily), "unknown-family");
  EXPECT_STREQ(core::build_error_code_name(BuildErrorCode::kUnknownParam), "unknown-param");
  EXPECT_STREQ(core::build_error_code_name(BuildErrorCode::kSizeOutOfRange),
               "size-out-of-range");
  EXPECT_STREQ(core::build_error_code_name(BuildErrorCode::kBudgetExceeded),
               "budget-exceeded");
  EXPECT_STREQ(core::build_error_code_name(BuildErrorCode::kInvalidArgument),
               "invalid-argument");
}

// --- shared command-line parser -------------------------------------------

TEST(ParamsCli, ParsesBothFlagSpellings) {
  auto parsed = parse({"--family", "star", "--n", "8"});
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().family, "star");
  EXPECT_EQ(parsed.value().params.n, 8);
  EXPECT_TRUE(parsed.value().n_set);
  EXPECT_EQ(parsed.value().explicit_fields, 0u);

  auto assigned = parse({"--family=hcn", "--n=3", "--base-size=4", "--layers", "3"});
  ASSERT_TRUE(assigned.ok());
  EXPECT_EQ(assigned.value().family, "hcn");
  EXPECT_EQ(assigned.value().params.n, 3);
  EXPECT_EQ(assigned.value().params.base_size, 4);
  EXPECT_EQ(assigned.value().params.layers, 3);
  EXPECT_EQ(assigned.value().explicit_fields, core::kParamBaseSize | core::kParamLayers);
}

TEST(ParamsCli, RejectsMalformedValues) {
  auto bad_int = parse({"--family", "star", "--n", "8x"});
  ASSERT_FALSE(bad_int.ok());
  EXPECT_EQ(bad_int.error().code, BuildErrorCode::kInvalidArgument);
  EXPECT_EQ(bad_int.error().message, "bad integer '8x' for '--n'");

  auto missing = parse({"--family", "star", "--n"});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().message, "missing value after '--n'");

  auto unknown = parse({"--frobnicate", "1"});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().message, "unknown argument '--frobnicate'");
}

TEST(ParamsCli, PassesDriverFlagsThroughExtra) {
  std::vector<std::string> extra;
  auto parsed = parse({"--mode", "stream", "--family", "star", "--n", "8", "--svg=x.svg"},
                      &extra);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().family, "star");
  ASSERT_EQ(extra.size(), 3u);
  EXPECT_EQ(extra[0], "--mode");
  EXPECT_EQ(extra[1], "stream");
  EXPECT_EQ(extra[2], "--svg=x.svg");
}

TEST(ParamsCli, ResolveBuilderDiagnostics) {
  {
    auto r = core::resolve_builder(parse({"--n", "8"}).value());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().message, "missing --family NAME");
  }
  {
    auto r = core::resolve_builder(parse({"--family", "star"}).value());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().message, "missing --n INT");
  }
  {
    auto r = core::resolve_builder(parse({"--family", "strr", "--n", "8"}).value());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, BuildErrorCode::kUnknownFamily);
    EXPECT_EQ(r.error().suggestion, "star");
  }
  {
    auto r = core::resolve_builder(parse({"--family", "star", "--n", "99"}).value());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, BuildErrorCode::kSizeOutOfRange);
  }
  {
    // Explicit --layers at its default value is still rejected for a family
    // that never reads it: the flag was on the command line.
    auto r = core::resolve_builder(
        parse({"--family", "hypercube", "--n", "4", "--layers", "2"}).value());
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, BuildErrorCode::kUnknownParam);
    EXPECT_EQ(r.error().message, "--layers (layers) does not apply to family 'hypercube'");
  }
  {
    auto r = core::resolve_builder(
        parse({"--family", " Star ", "--n", "5", "--base-size", "3"}).value());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value()->name(), "star");
  }
}

}  // namespace
