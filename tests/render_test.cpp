// Rendering sanity: SVG structure, ASCII output, figure reproduction paths.

#include <gtest/gtest.h>

#include <fstream>

#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/render/render.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::render {
namespace {

TEST(Svg, ContainsNodesAndWires) {
  const auto r = core::complete2d_layout(9);
  const std::string svg = to_svg(r.routed.layout);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // 9 node rects + background rect.
  std::size_t rects = 0;
  for (std::size_t pos = svg.find("<rect"); pos != std::string::npos;
       pos = svg.find("<rect", pos + 1))
    ++rects;
  EXPECT_EQ(rects, 10u);
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1))
    ++polylines;
  EXPECT_EQ(polylines, 36u);
}

TEST(Svg, WriteToFile) {
  const auto r = core::collinear_complete_layout(5);
  const std::string path = ::testing::TempDir() + "/k5.svg";
  write_svg(r.routed.layout, path);
  std::ifstream f(path);
  EXPECT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_NE(line.find("<svg"), std::string::npos);
}

TEST(Svg, WriteToBadPathThrows) {
  const auto r = core::collinear_complete_layout(4);
  EXPECT_THROW(write_svg(r.routed.layout, "/nonexistent-dir/x.svg"), starlay::InvariantError);
}

TEST(Ascii, SmallLayoutRenders) {
  const auto r = core::collinear_complete_layout(4);
  const std::string art = to_ascii(r.routed.layout);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('-'), std::string::npos);
  EXPECT_NE(art.find('|'), std::string::npos);
}

TEST(Ascii, RejectsHugeLayouts) {
  const auto r = core::complete2d_layout(36);
  EXPECT_THROW(to_ascii(r.routed.layout), starlay::InvariantError);
}

TEST(GraphSvg, StructureFigure) {
  const auto g = topology::hcn(2);
  const std::string svg = graph_to_svg(g);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1))
    ++circles;
  EXPECT_EQ(circles, 16u);
}

}  // namespace
}  // namespace starlay::render
