// Cross-module integration: the paper's arguments executed end to end.

#include <gtest/gtest.h>

#include "starlay/bisect/bisect.hpp"
#include "starlay/comm/te.hpp"
#include "starlay/core/baseline.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/lower_bounds.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay {
namespace {

TEST(EndToEnd, StarAreaSandwich) {
  // Theorem 3.7 executed: BATT lower bound <= measured layout area, and
  // the measured area converges to N^2/16 from above.
  for (int n : {5, 6}) {
    const auto r = core::star_layout(n);
    const std::int64_t N = factorial(n);
    const double measured = static_cast<double>(r.routed.layout.area());
    const double lb = core::area_lb_batt(N, core::star_te_time(n, static_cast<double>(N)));
    EXPECT_GE(measured, lb) << n;
    EXPECT_GE(measured, core::star_area(static_cast<double>(N))) << n;
  }
}

TEST(EndToEnd, StarBeatsSimilarSizeHypercube) {
  // The headline: an n-star needs less area than the hypercube with at
  // least as many nodes.  Compare star n=6 (720 nodes) against Q_10
  // (1024 nodes) scaled to equal node count via the leading constants —
  // and also compare the *measured* per-node^2 constants.
  const auto star = core::star_layout(6);
  const auto cube = core::hypercube_layout(10);
  const double star_const = static_cast<double>(star.routed.layout.area()) / (720.0 * 720.0);
  const double cube_const = static_cast<double>(cube.routed.layout.area()) / (1024.0 * 1024.0);
  EXPECT_LT(star_const, cube_const);
}

TEST(EndToEnd, MeasuredConstantsOrderAsPredicted) {
  // star (1/16) < hypercube (4/9): the measured normalized constants must
  // preserve the order even with finite-size inflation, because both
  // inflate by comparable factors at comparable sizes.
  const double star7 = static_cast<double>(core::star_layout(7).routed.layout.area()) /
                       (5040.0 * 5040.0);
  const double cube12 = static_cast<double>(core::hypercube_layout(12).routed.layout.area()) /
                        (4096.0 * 4096.0);
  EXPECT_LT(star7, cube12);
}

TEST(EndToEnd, Theorem41StarBisectionSandwich) {
  // Lower: BATT chain with Lemma 3.6's throughput; upper: exact (n=4) and
  // KL/layout-slice witnesses (n=5).  All must bracket N/4 +- o(N).
  {
    const std::int64_t N = 24;
    const double lb = core::bisection_lb_batt(N, core::star_te_time(4, 24.0));
    const auto g = topology::star_graph(4);
    const std::int64_t exact = bisect::exact_bisection(g).width;
    EXPECT_LE(lb, static_cast<double>(exact));
    EXPECT_NEAR(static_cast<double>(exact), 24.0 / 4.0, 3.0);
  }
  {
    const auto r = core::star_layout(5);
    const std::int64_t kl = bisect::kernighan_lin_bisection(r.graph, 4).width;
    const double lb = core::bisection_lb_batt(120, core::star_te_time(5, 120.0));
    EXPECT_LE(lb, static_cast<double>(kl) + 1e-9);
    EXPECT_NEAR(static_cast<double>(kl), 30.0, 12.0);  // N/4 +- o(N)
  }
}

TEST(EndToEnd, Theorem42HcnExactNOver4) {
  for (int h : {2}) {
    const std::int64_t N = std::int64_t{1} << (2 * h);
    const auto g = topology::hcn(h);
    EXPECT_EQ(bisect::exact_bisection(g).width, N / 4);
    EXPECT_EQ(bisect::hcn_cluster_bisection(g, h).width, N / 4);
    const double lb = core::bisection_lb_batt(N, core::hcn_te_time(static_cast<double>(N)));
    EXPECT_EQ(static_cast<std::int64_t>(std::ceil(lb - 0.05)), N / 4);
  }
}

TEST(EndToEnd, BaselineCollinearFarWorseThanOptimized) {
  // One-track-per-edge collinear vs the real layout: the optimized star
  // layout must win by a growing factor.
  const auto g = topology::star_graph(5);
  const auto naive = core::naive_collinear_layout(g);
  EXPECT_TRUE(layout::validate_layout(g, naive.layout).ok);
  const auto opt = core::star_layout(5);
  EXPECT_LT(opt.routed.layout.area() * 4, naive.layout.area());
}

TEST(EndToEnd, HierarchicalPlacementBeatsUnordered) {
  // Removing the hierarchy ingredient must not help (ablation E11).
  const auto g = topology::star_graph(6);
  const auto unordered = core::unordered_grid_layout(g);
  EXPECT_TRUE(layout::validate_layout(g, unordered.layout).ok);
  const auto opt = core::star_layout(6);
  EXPECT_LE(opt.routed.layout.area(), unordered.layout.area());
}

TEST(EndToEnd, OrientationRuleBeatsUnbalanced) {
  // Removing the bundle-halving rule must cost area (ablation E11).
  const auto r = core::star_layout(6);
  const auto unbalanced = core::unbalanced_orientation_layout(r.graph, r.structure.placement);
  EXPECT_TRUE(layout::validate_layout(r.graph, unbalanced.layout).ok);
  EXPECT_LT(r.routed.layout.area(), unbalanced.layout.area());
}

TEST(EndToEnd, MultilayerAreasRespectXYLowerBounds) {
  for (int L : {2, 3, 4}) {
    const auto r = core::multilayer_star_layout(5, L);
    const double lb = core::xy_area_lb_batt(120, core::star_te_time(5, 120.0), L);
    EXPECT_GE(static_cast<double>(r.routed.layout.area()), lb) << L;
  }
}

TEST(EndToEnd, HcnLayoutAboveItsLowerBound) {
  for (int h : {2, 3}) {
    const auto r = core::hcn_layout(h);
    const std::int64_t N = std::int64_t{1} << (2 * h);
    const double lb = core::area_lb_batt(N, core::hcn_te_time(static_cast<double>(N)));
    EXPECT_GE(static_cast<double>(r.routed.layout.area()), lb) << h;
  }
}

TEST(EndToEnd, GreedyTeConfirmsStarThroughputClaim) {
  // Lemma 3.6 implies per-task TE time ~ nN/(n-1); the greedy simulator
  // must land between the bisection bound and the 2N single-task formula.
  const auto g = topology::star_graph(5);
  const comm::DistanceTable dt(g);
  const auto r = comm::greedy_te(g, dt);
  EXPECT_GE(static_cast<double>(r.steps), 100.0);  // ~N lower bound territory
  EXPECT_LE(static_cast<double>(r.steps), core::fragopoulou_akl_te_time(120.0));
}

}  // namespace
}  // namespace starlay
