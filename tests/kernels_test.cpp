// Scalar-vs-SIMD equivalence for the certification kernels.  Every variant
// in the dispatch table must be bit-identical to the scalar reference —
// that equivalence is what lets the validator, the streaming certifier,
// and the fingerprint fold pick a level at runtime without changing any
// observable result.  The buckets below lean on the nasty cases: touching
// endpoints (lo[i+1] == hi[i] IS a conflict), zero-length spans, and
// INT32_MIN/INT32_MAX coordinates where a naive `hi - lo` would overflow.
//
// Layer-level invariance (identical conflict sets, identical fingerprints
// per level) is checked here on small layouts; the metamorphic battery and
// the `starcheck_corpus_avx2` ctest entry extend it to every registered
// family under a forced level.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "starlay/core/star_layout.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout::kernels {
namespace {

constexpr std::int32_t kMin = std::numeric_limits<std::int32_t>::min();
constexpr std::int32_t kMax = std::numeric_limits<std::int32_t>::max();

/// Deterministic PRNG (same recurrence as the fuzz driver's).
std::uint64_t next_u64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::int32_t rand_coord(std::uint64_t& state) {
  // Mostly small coordinates (adjacent values collide often), occasionally
  // an extreme so the vector compares see the full int32 range.
  const std::uint64_t r = next_u64(state);
  switch (r % 16) {
    case 0: return kMin;
    case 1: return kMax;
    case 2: return kMin + 1;
    case 3: return kMax - 1;
    default: return static_cast<std::int32_t>(r % 23) - 11;
  }
}

std::vector<SimdLevel> supported_levels() {
  std::vector<SimdLevel> out;
  for (SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSSE4, SimdLevel::kAVX2})
    if (level_supported(level)) out.push_back(level);
  return out;
}

TEST(Kernels, DispatchPlumbing) {
  EXPECT_STREQ(level_name(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(level_name(SimdLevel::kSSE4), "sse4");
  EXPECT_STREQ(level_name(SimdLevel::kAVX2), "avx2");
  ASSERT_TRUE(level_supported(SimdLevel::kScalar));
  EXPECT_EQ(&active(), &table(active_level()));
  {
    ScopedForcedLevel forced(SimdLevel::kScalar);
    EXPECT_EQ(forced.effective(), SimdLevel::kScalar);
    EXPECT_EQ(active_level(), SimdLevel::kScalar);
  }
  {
    // Requests clamp down to a supported level, never error.
    ScopedForcedLevel forced(SimdLevel::kAVX2);
    EXPECT_TRUE(level_supported(forced.effective()));
    EXPECT_EQ(active_level(), forced.effective());
  }
}

// ---------------------------------------------------------------------------
// count_seg_conflicts: exhaustive over every span pair from an adversarial
// coordinate alphabet, in 2-segment buckets and replicated 16-segment
// buckets (full vector width at every level).

/// Independent reference, written differently from the kernel on purpose.
std::int64_t ref_seg_conflicts(const std::vector<std::int32_t>& line,
                               const std::vector<std::int32_t>& lo,
                               const std::vector<std::int32_t>& hi) {
  std::int64_t c = 0;
  for (std::size_t i = 1; i < line.size(); ++i)
    if (line[i - 1] == line[i] && !(lo[i] > hi[i - 1])) ++c;
  return c;
}

TEST(Kernels, SegConflictsExhaustivePairs) {
  const std::vector<std::int32_t> coords = {kMin, kMin + 1, -3, -1, 0, 1, 2, 7, kMax - 1, kMax};
  std::vector<std::array<std::int32_t, 2>> spans;
  for (std::int32_t a : coords)
    for (std::int32_t b : coords)
      if (a <= b) spans.push_back({a, b});  // includes zero-length a == b

  const auto levels = supported_levels();
  for (const auto& s1 : spans) {
    for (const auto& s2 : spans) {
      for (const bool same_line : {true, false}) {
        // The 2-segment bucket itself...
        std::vector<std::int32_t> line = {0, same_line ? 0 : 1};
        std::vector<std::int32_t> lo = {s1[0], s2[0]};
        std::vector<std::int32_t> hi = {s1[1], s2[1]};
        // ...and the same pair replicated to 16 segments on disjoint lines,
        // so the expected count is exactly 8x the pair's.
        std::vector<std::int32_t> line16, lo16, hi16;
        for (std::int32_t k = 0; k < 8; ++k) {
          line16.push_back(same_line ? 3 * k : 3 * k);
          line16.push_back(same_line ? 3 * k : 3 * k + 1);
          lo16.insert(lo16.end(), {s1[0], s2[0]});
          hi16.insert(hi16.end(), {s1[1], s2[1]});
        }
        const std::int64_t want = ref_seg_conflicts(line, lo, hi);
        for (SimdLevel level : levels) {
          const KernelTable& K = table(level);
          ASSERT_EQ(K.count_seg_conflicts(line.data(), lo.data(), hi.data(), 2), want)
              << level_name(level) << " [" << s1[0] << "," << s1[1] << "] vs [" << s2[0] << ","
              << s2[1] << "] same_line=" << same_line;
          ASSERT_EQ(K.count_seg_conflicts(line16.data(), lo16.data(), hi16.data(), 16),
                    ref_seg_conflicts(line16, lo16, hi16))
              << level_name(level);
        }
      }
    }
  }
}

TEST(Kernels, SegConflictsRandomBuckets) {
  std::uint64_t state = 0x5eed5eed;
  const auto levels = supported_levels();
  for (int round = 0; round < 400; ++round) {
    const std::int64_t n = static_cast<std::int64_t>(next_u64(state) % 70);
    std::vector<std::int32_t> line(n), lo(n), hi(n);
    for (std::int64_t i = 0; i < n; ++i) {
      line[i] = static_cast<std::int32_t>(next_u64(state) % 4);
      const std::int32_t a = rand_coord(state), b = rand_coord(state);
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
    }
    const std::int64_t want = ref_seg_conflicts(line, lo, hi);
    for (SimdLevel level : levels)
      ASSERT_EQ(table(level).count_seg_conflicts(line.data(), lo.data(), hi.data(), n), want)
          << level_name(level) << " round=" << round << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// count_via_conflicts

std::int64_t ref_via_conflicts(const std::vector<std::int32_t>& x,
                               const std::vector<std::int32_t>& y,
                               const std::vector<std::int32_t>& zlo,
                               const std::vector<std::int32_t>& zhi,
                               const std::vector<std::uint32_t>& wire) {
  std::int64_t c = 0;
  for (std::size_t i = 1; i < x.size(); ++i)
    if (x[i - 1] == x[i] && y[i - 1] == y[i] && wire[i - 1] != wire[i] &&
        zlo[i - 1] <= zhi[i] && zlo[i] <= zhi[i - 1])
      ++c;
  return c;
}

TEST(Kernels, ViaConflictsExhaustivePairs) {
  const std::vector<std::int32_t> zs = {kMin, -1, 0, 1, kMax};
  std::vector<std::array<std::int32_t, 2>> spans;
  for (std::int32_t a : zs)
    for (std::int32_t b : zs)
      if (a <= b) spans.push_back({a, b});

  const auto levels = supported_levels();
  for (const auto& s1 : spans) {
    for (const auto& s2 : spans) {
      for (const bool same_col : {true, false}) {
        for (const bool same_wire : {true, false}) {
          std::vector<std::int32_t> x = {5, same_col ? 5 : 6};
          std::vector<std::int32_t> y = {-5, -5};
          std::vector<std::int32_t> zlo = {s1[0], s2[0]};
          std::vector<std::int32_t> zhi = {s1[1], s2[1]};
          std::vector<std::uint32_t> wire = {9u, same_wire ? 9u : 10u};
          const std::int64_t want = ref_via_conflicts(x, y, zlo, zhi, wire);
          for (SimdLevel level : levels)
            ASSERT_EQ(table(level).count_via_conflicts(x.data(), y.data(), zlo.data(),
                                                       zhi.data(), wire.data(), 2),
                      want)
                << level_name(level);
        }
      }
    }
  }
}

TEST(Kernels, ViaConflictsRandomColumns) {
  std::uint64_t state = 0x71a5;
  const auto levels = supported_levels();
  for (int round = 0; round < 400; ++round) {
    const std::int64_t n = static_cast<std::int64_t>(next_u64(state) % 70);
    std::vector<std::int32_t> x(n), y(n), zlo(n), zhi(n);
    std::vector<std::uint32_t> wire(n);
    for (std::int64_t i = 0; i < n; ++i) {
      x[i] = static_cast<std::int32_t>(next_u64(state) % 3);  // few columns -> many collisions
      y[i] = static_cast<std::int32_t>(next_u64(state) % 3);
      const std::int32_t a = rand_coord(state), b = rand_coord(state);
      zlo[i] = std::min(a, b);
      zhi[i] = std::max(a, b);
      wire[i] = static_cast<std::uint32_t>(next_u64(state) % 4);
    }
    const std::int64_t want = ref_via_conflicts(x, y, zlo, zhi, wire);
    for (SimdLevel level : levels)
      ASSERT_EQ(table(level).count_via_conflicts(x.data(), y.data(), zlo.data(), zhi.data(),
                                                 wire.data(), n),
                want)
          << level_name(level) << " round=" << round << " n=" << n;
  }
}

// ---------------------------------------------------------------------------
// find_covering / find_rect_overlap

TEST(Kernels, FindCoveringRandomRuns) {
  std::uint64_t state = 0xc0ffee;
  const auto levels = supported_levels();
  for (int round = 0; round < 600; ++round) {
    const std::int64_t n = static_cast<std::int64_t>(next_u64(state) % (kCoverWindow + 1));
    std::vector<std::int32_t> lo(n), hi(n);
    std::vector<std::uint32_t> wire(n);
    for (std::int64_t i = 0; i < n; ++i) {
      lo[i] = static_cast<std::int32_t>(next_u64(state) % 17) - 8;
      hi[i] = lo[i] + static_cast<std::int32_t>(next_u64(state) % 7);
      if (next_u64(state) % 31 == 0) hi[i] = kMax;  // unbounded-looking span
      wire[i] = static_cast<std::uint32_t>(next_u64(state) % 5);
    }
    std::sort(lo.begin(), lo.end());  // contract: lo ascending
    for (std::int64_t i = 0; i < n; ++i) hi[i] = std::max(hi[i], lo[i]);
    const std::int32_t pos = (next_u64(state) % 13 == 0)
                                 ? (next_u64(state) % 2 ? kMax : kMin)
                                 : static_cast<std::int32_t>(next_u64(state) % 21) - 10;
    const std::uint32_t self = static_cast<std::uint32_t>(next_u64(state) % 6);
    const std::int64_t want =
        table(SimdLevel::kScalar).find_covering(lo.data(), hi.data(), wire.data(), n, pos, self);
    for (SimdLevel level : levels)
      ASSERT_EQ(table(level).find_covering(lo.data(), hi.data(), wire.data(), n, pos, self), want)
          << level_name(level) << " round=" << round;
  }
}

TEST(Kernels, FindRectOverlapRandomRuns) {
  std::uint64_t state = 0xab1e;
  const auto levels = supported_levels();
  for (int round = 0; round < 600; ++round) {
    const std::int64_t n = static_cast<std::int64_t>(next_u64(state) % 70);
    std::vector<std::int32_t> x0(n), x1(n);
    for (std::int64_t i = 0; i < n; ++i) {
      x0[i] = static_cast<std::int32_t>(next_u64(state) % 41) - 20;
      x1[i] = x0[i] + static_cast<std::int32_t>(next_u64(state) % 9);
    }
    std::sort(x0.begin(), x0.end());  // contract: x0 ascending
    for (std::int64_t i = 0; i < n; ++i) x1[i] = std::max(x1[i], x0[i]);
    const std::int64_t start = n == 0 ? 0 : static_cast<std::int64_t>(next_u64(state) % (n + 1));
    std::int32_t qa = static_cast<std::int32_t>(next_u64(state) % 45) - 22;
    std::int32_t qb = static_cast<std::int32_t>(next_u64(state) % 45) - 22;
    if (qa > qb) std::swap(qa, qb);
    const std::int64_t want =
        table(SimdLevel::kScalar).find_rect_overlap(x0.data(), x1.data(), n, start, qa, qb);
    for (SimdLevel level : levels)
      ASSERT_EQ(table(level).find_rect_overlap(x0.data(), x1.data(), n, start, qa, qb), want)
          << level_name(level) << " round=" << round;
  }
}

// ---------------------------------------------------------------------------
// fold_hashes4 / deinterleave4

TEST(Kernels, FoldHashes4MatchesScalarAndBlocks) {
  std::uint64_t state = 0xf01d;
  const auto levels = supported_levels();
  for (std::int64_t n = 0; n <= 67; ++n) {
    std::vector<std::uint64_t> h(n);
    for (auto& v : h) v = next_u64(state);
    std::uint64_t want[4] = {1, 2, 3, 4};
    table(SimdLevel::kScalar).fold_hashes4(h.data(), n, want);
    for (SimdLevel level : levels) {
      std::uint64_t lanes[4] = {1, 2, 3, 4};
      table(level).fold_hashes4(h.data(), n, lanes);
      for (int j = 0; j < 4; ++j)
        ASSERT_EQ(lanes[j], want[j]) << level_name(level) << " n=" << n << " lane=" << j;
      // Folding in blocks whose sizes are multiples of 4 preserves the
      // round-robin lane phase, so the result must be unchanged.
      const std::int64_t cut = (n / 2) & ~std::int64_t{3};
      std::uint64_t blocked[4] = {1, 2, 3, 4};
      table(level).fold_hashes4(h.data(), cut, blocked);
      table(level).fold_hashes4(h.data() + cut, n - cut, blocked);
      for (int j = 0; j < 4; ++j)
        ASSERT_EQ(blocked[j], want[j]) << level_name(level) << " blocked n=" << n;
    }
  }
}

TEST(Kernels, Deinterleave4MatchesScalar) {
  std::uint64_t state = 0xdea1;
  const auto levels = supported_levels();
  constexpr std::int32_t kCanary = 0x7abc1234;
  for (std::int64_t n = 0; n <= 67; ++n) {
    std::vector<std::int32_t> in(4 * n);
    for (auto& v : in) v = rand_coord(state);
    std::vector<std::int32_t> a(n + 4, kCanary), b(n + 4, kCanary), c(n + 4, kCanary),
        d(n + 4, kCanary);
    for (SimdLevel level : levels) {
      std::fill(a.begin(), a.end(), kCanary);
      std::fill(b.begin(), b.end(), kCanary);
      std::fill(c.begin(), c.end(), kCanary);
      std::fill(d.begin(), d.end(), kCanary);
      table(level).deinterleave4(in.data(), n, a.data(), b.data(), c.data(), d.data());
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(a[i], in[4 * i + 0]) << level_name(level) << " n=" << n << " i=" << i;
        ASSERT_EQ(b[i], in[4 * i + 1]) << level_name(level);
        ASSERT_EQ(c[i], in[4 * i + 2]) << level_name(level);
        ASSERT_EQ(d[i], in[4 * i + 3]) << level_name(level);
      }
      // The kernels may never write past n records.
      for (std::int64_t i = n; i < n + 4; ++i) {
        ASSERT_EQ(a[i], kCanary) << level_name(level) << " n=" << n;
        ASSERT_EQ(b[i], kCanary);
        ASSERT_EQ(c[i], kCanary);
        ASSERT_EQ(d[i], kCanary);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layer-level invariance: same conflict sets, same fingerprints.

Wire straight_wire(std::int64_t edge, Point a, Point b) {
  Wire w;
  w.edge = edge;
  w.push(a);
  w.push(b);
  return w;
}

TEST(Kernels, ConflictSetsIdenticalAcrossLevels) {
  // A layout with several distinct violation classes (overlap, pierced
  // endpoint, missing wire) well below the message cap: every level must
  // produce the same verdict, the same total, and the same message list.
  topology::Graph g(6);
  for (int i = 0; i + 1 < 6; i += 2) g.add_edge(i, i + 1);
  g.finalize();
  Layout lay(6);
  for (int i = 0; i < 6; ++i) lay.set_node_rect(i, {20 * i, 0, 20 * i, 0});
  lay.add_wire(straight_wire(0, {0, 0}, {20, 0}));
  lay.add_wire(straight_wire(1, {10, 0}, {60, 0}));  // overlaps edge 0's span
  // edge 2 has no wire at all.
  const auto ref = validate_layout(g, lay);
  ASSERT_FALSE(ref.ok);
  ASSERT_FALSE(ref.errors.empty());
  for (SimdLevel level : supported_levels()) {
    ScopedForcedLevel forced(level);
    const auto r = validate_layout(g, lay);
    EXPECT_EQ(r.ok, ref.ok) << level_name(level);
    EXPECT_EQ(r.num_errors_total, ref.num_errors_total) << level_name(level);
    EXPECT_EQ(r.errors, ref.errors) << level_name(level);
  }
}

TEST(Kernels, FingerprintsIdenticalAcrossLevels) {
  // The canonical wire digest of a real construction must not depend on the
  // kernel level (the fold is chunked identically everywhere).  Scalar is
  // the reference; any compiled SIMD variant must reproduce it bit for bit.
  std::uint64_t want = 0;
  {
    ScopedForcedLevel forced(SimdLevel::kScalar);
    want = wire_fingerprint(core::star_layout(4).routed.layout);
  }
  EXPECT_NE(want, 0u);
  for (SimdLevel level : supported_levels()) {
    ScopedForcedLevel forced(level);
    EXPECT_EQ(wire_fingerprint(core::star_layout(4).routed.layout), want) << level_name(level);
  }
}

}  // namespace
}  // namespace starlay::layout::kernels
