// Tests for vertex-to-slot placements, including the hierarchical block
// placement that encodes the paper's recursive substar structure.

#include <gtest/gtest.h>

#include <set>

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"

namespace starlay::layout {
namespace {

TEST(Placement, RowMajorIsNearSquareAndBijective) {
  for (std::int32_t n : {1, 2, 5, 9, 10, 16, 17, 100}) {
    const Placement p = row_major_placement(n);
    EXPECT_NO_THROW(p.check(n));
    EXPECT_GE(p.num_slots(), n);
    EXPECT_LE(static_cast<std::int64_t>(p.rows) * p.cols, static_cast<std::int64_t>(p.rows) * p.rows);
  }
}

TEST(Placement, GridPlacementRowMajorOrder) {
  const Placement p = grid_placement(6, 2, 3);
  EXPECT_EQ(p.row_of(0), 0);
  EXPECT_EQ(p.col_of(0), 0);
  EXPECT_EQ(p.row_of(4), 1);
  EXPECT_EQ(p.col_of(4), 1);
}

TEST(Placement, GridTooSmallThrows) {
  EXPECT_THROW(grid_placement(7, 2, 3), starlay::InvariantError);
}

TEST(Placement, CollinearSingleRow) {
  const Placement p = collinear_placement(9);
  EXPECT_EQ(p.rows, 1);
  EXPECT_EQ(p.cols, 9);
  for (std::int32_t v = 0; v < 9; ++v) {
    EXPECT_EQ(p.row_of(v), 0);
    EXPECT_EQ(p.col_of(v), v);
  }
}

TEST(Placement, CheckRejectsDuplicates) {
  Placement p;
  p.rows = 2;
  p.cols = 2;
  p.slot = {0, 0, 1};
  EXPECT_THROW(p.check(3), starlay::InvariantError);
}

TEST(Placement, CheckRejectsOutOfRange) {
  Placement p;
  p.rows = 2;
  p.cols = 2;
  p.slot = {0, 4};
  EXPECT_THROW(p.check(2), starlay::InvariantError);
}

TEST(HierarchicalPlacement, TwoLevelStrides) {
  // Outer 2x2 of blocks, inner 3x3 per block.
  std::vector<LevelShape> shapes{{2, 2}, {3, 3}};
  std::vector<std::vector<std::int32_t>> paths;
  for (std::int32_t outer = 0; outer < 4; ++outer)
    for (std::int32_t inner = 0; inner < 9; ++inner) paths.push_back({outer, inner});
  const Placement p = hierarchical_placement(paths, shapes);
  EXPECT_EQ(p.rows, 6);
  EXPECT_EQ(p.cols, 6);
  // Vertex (outer=3, inner=4) -> block (1,1), inner (1,1) -> slot (4,4).
  const std::int32_t v = 3 * 9 + 4;
  EXPECT_EQ(p.row_of(v), 4);
  EXPECT_EQ(p.col_of(v), 4);
}

TEST(HierarchicalPlacement, BlocksAreContiguous) {
  std::vector<LevelShape> shapes{{2, 3}, {2, 2}};
  std::vector<std::vector<std::int32_t>> paths;
  for (std::int32_t outer = 0; outer < 6; ++outer)
    for (std::int32_t inner = 0; inner < 4; ++inner) paths.push_back({outer, inner});
  const Placement p = hierarchical_placement(paths, shapes);
  // All vertices of one outer block must fall in one 2x2 slot sub-square.
  for (std::int32_t outer = 0; outer < 6; ++outer) {
    std::set<std::int32_t> rows, cols;
    for (std::int32_t inner = 0; inner < 4; ++inner) {
      rows.insert(p.row_of(outer * 4 + inner));
      cols.insert(p.col_of(outer * 4 + inner));
    }
    EXPECT_EQ(rows.size(), 2u);
    EXPECT_EQ(cols.size(), 2u);
    EXPECT_EQ(*rows.rbegin() - *rows.begin(), 1);
    EXPECT_EQ(*cols.rbegin() - *cols.begin(), 1);
  }
}

TEST(HierarchicalPlacement, RejectsBadDigit) {
  std::vector<LevelShape> shapes{{2, 2}};
  std::vector<std::vector<std::int32_t>> paths{{4}};
  EXPECT_THROW(hierarchical_placement(paths, shapes), starlay::InvariantError);
}

TEST(HierarchicalPlacement, RejectsPathLengthMismatch) {
  std::vector<LevelShape> shapes{{2, 2}, {2, 2}};
  std::vector<std::vector<std::int32_t>> paths{{1}};
  EXPECT_THROW(hierarchical_placement(paths, shapes), starlay::InvariantError);
}

TEST(HierarchicalPlacement, ThreeLevelsBijective) {
  std::vector<LevelShape> shapes{{2, 2}, {2, 1}, {1, 3}};
  std::vector<std::vector<std::int32_t>> paths;
  for (std::int32_t a = 0; a < 4; ++a)
    for (std::int32_t b = 0; b < 2; ++b)
      for (std::int32_t c = 0; c < 3; ++c) paths.push_back({a, b, c});
  const Placement p = hierarchical_placement(paths, shapes);
  EXPECT_EQ(p.rows, 4);
  EXPECT_EQ(p.cols, 6);
  EXPECT_NO_THROW(p.check(static_cast<std::int32_t>(paths.size())));
}

}  // namespace
}  // namespace starlay::layout
