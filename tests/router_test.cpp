// Tests for the channel-based grid router: every routed layout must pass
// the independent validator, on a spread of networks and placements.

#include <gtest/gtest.h>

#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::layout {
namespace {

void expect_valid(const topology::Graph& g, const Layout& lay) {
  const ValidationReport rep = validate_layout(g, lay);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "?" : rep.errors[0]);
}

TEST(Router, SingleEdge) {
  topology::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  const RoutedLayout r = route_grid(g, collinear_placement(2));
  expect_valid(g, r.layout);
  EXPECT_EQ(r.layout.num_wires(), 1);
}

TEST(Router, ParityRuleIsAntisymmetric) {
  for (std::int32_t a = 0; a < 40; ++a)
    for (std::int32_t b = 0; b < 40; ++b)
      if (a != b)
        EXPECT_NE(parity_source_is_first(a, b), parity_source_is_first(b, a))
            << a << "," << b;
}

TEST(Router, ParityRuleRejectsEqualRows) {
  EXPECT_THROW(parity_source_is_first(3, 3), starlay::InvariantError);
}

struct RouterCase {
  const char* name;
  topology::Graph (*make)();
};

topology::Graph make_k8() { return topology::complete_graph(8); }
topology::Graph make_k5x3() { return topology::complete_graph(5, 3); }
topology::Graph make_q5() { return topology::hypercube(5); }
topology::Graph make_fq4() { return topology::folded_hypercube(4); }
topology::Graph make_star4() { return topology::star_graph(4); }
topology::Graph make_pancake4() { return topology::pancake_graph(4); }
topology::Graph make_bubble4() { return topology::bubble_sort_graph(4); }
topology::Graph make_hcn2() { return topology::hcn(2); }
topology::Graph make_hfn2() { return topology::hfn(2); }
topology::Graph make_transposition4() { return topology::transposition_graph(4); }

class RouterNetworks : public ::testing::TestWithParam<RouterCase> {};

TEST_P(RouterNetworks, DefaultSpecProducesValidLayout) {
  const topology::Graph g = GetParam().make();
  const RoutedLayout r = route_grid(g, row_major_placement(g.num_vertices()));
  expect_valid(g, r.layout);
  EXPECT_EQ(r.layout.num_wires(), g.num_edges());
  // Channel stats shape.
  EXPECT_EQ(static_cast<std::int32_t>(r.row_channel_tracks.size()),
            row_major_placement(g.num_vertices()).rows);
}

TEST_P(RouterNetworks, CollinearPlacementProducesValidLayout) {
  const topology::Graph g = GetParam().make();
  const RoutedLayout r = route_grid(g, collinear_placement(g.num_vertices()));
  expect_valid(g, r.layout);
}

TEST_P(RouterNetworks, ThompsonNodeSizes) {
  const topology::Graph g = GetParam().make();
  if (!g.is_regular()) GTEST_SKIP() << "uniform node size only matches regular graphs";
  const RoutedLayout r = route_grid(g, row_major_placement(g.num_vertices()));
  ValidationOptions opt;
  opt.thompson_node_size = true;
  const ValidationReport rep = validate_layout(g, r.layout, opt);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "?" : rep.errors[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Networks, RouterNetworks,
    ::testing::Values(RouterCase{"K8", &make_k8}, RouterCase{"K5x3", &make_k5x3},
                      RouterCase{"Q5", &make_q5}, RouterCase{"FQ4", &make_fq4},
                      RouterCase{"star4", &make_star4}, RouterCase{"pancake4", &make_pancake4},
                      RouterCase{"bubble4", &make_bubble4}, RouterCase{"hcn2", &make_hcn2},
                      RouterCase{"hfn2", &make_hfn2},
                      RouterCase{"transposition4", &make_transposition4}),
    [](const ::testing::TestParamInfo<RouterCase>& info) { return info.param.name; });

TEST(Router, ExplicitOrientationRespected) {
  topology::Graph g(4);
  g.add_edge(0, 3);  // diagonal on a 2x2 grid
  g.finalize();
  const Placement p = grid_placement(4, 2, 2);
  RouteSpec spec;
  spec.source_is_u = {1};
  const RoutedLayout r = route_grid(g, p, spec);
  expect_valid(g, r.layout);
  // Horizontal run must sit in vertex 0's row channel (row 0).
  EXPECT_GT(r.row_channel_tracks[0], 0);
  EXPECT_EQ(r.row_channel_tracks[1], 0);

  RouteSpec spec2;
  spec2.source_is_u = {0};
  const RoutedLayout r2 = route_grid(g, p, spec2);
  expect_valid(g, r2.layout);
  EXPECT_EQ(r2.row_channel_tracks[0], 0);
  EXPECT_GT(r2.row_channel_tracks[1], 0);
}

TEST(Router, NodeSizeTooSmallThrows) {
  topology::Graph g = topology::complete_graph(6);
  RouterOptions opt;
  opt.node_size = 2;  // degree 5 needs up to 5 stubs on a side
  EXPECT_THROW(route_grid(g, collinear_placement(6), {}, opt), starlay::InvariantError);
}

TEST(Router, LargerNodesStillValid) {
  topology::Graph g = topology::complete_graph(6);
  RouterOptions opt;
  opt.node_size = 12;
  const RoutedLayout r = route_grid(g, row_major_placement(6), {}, opt);
  expect_valid(g, r.layout);
  ValidationOptions vopt;
  vopt.min_node_side = 12;
  vopt.max_node_side = 12;
  EXPECT_TRUE(validate_layout(g, r.layout, vopt).ok);
}

TEST(Router, SpecSizeMismatchThrows) {
  topology::Graph g = topology::complete_graph(4);
  RouteSpec spec;
  spec.source_is_u = {1};  // 6 edges expected
  EXPECT_THROW(route_grid(g, row_major_placement(4), spec), starlay::InvariantError);
}

TEST(Router, LayerValidationInSpec) {
  topology::Graph g(4);
  g.add_edge(0, 3);
  g.finalize();
  const Placement p = grid_placement(4, 2, 2);
  RouteSpec spec;
  spec.layers = {{2, 3}};  // h must be odd
  EXPECT_THROW(route_grid(g, p, spec), starlay::InvariantError);
  spec.layers = {{1, 4}};  // not adjacent
  EXPECT_THROW(route_grid(g, p, spec), starlay::InvariantError);
  spec.layers = {{3, 2}};  // fine: odd h, even v, adjacent
  const RoutedLayout r = route_grid(g, p, spec);
  expect_valid(g, r.layout);
}

TEST(Router, MultilayerSharesTrackPositions) {
  // Two parallel edges on separate layer pairs can reuse the same track
  // coordinates: the channel width must not double.
  topology::Graph g(4);
  g.add_edge(0, 3, 0);
  g.add_edge(0, 3, 1);
  g.finalize();
  const Placement p = grid_placement(4, 2, 2);
  RouteSpec one_pair;
  one_pair.source_is_u = {1, 1};
  const RoutedLayout r1 = route_grid(g, p, one_pair);
  RouteSpec two_pairs;
  two_pairs.source_is_u = {1, 1};
  two_pairs.layers = {{1, 2}, {3, 4}};
  const RoutedLayout r2 = route_grid(g, p, two_pairs);
  expect_valid(g, r1.layout);
  expect_valid(g, r2.layout);
  EXPECT_EQ(r2.row_channel_tracks[0], 1);
  EXPECT_EQ(r1.row_channel_tracks[0], 2);
  EXPECT_LT(r2.layout.area(), r1.layout.area());
}

TEST(Router, WireLengthAccounting) {
  topology::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  const RoutedLayout r = route_grid(g, collinear_placement(2));
  EXPECT_GT(r.layout.total_wire_length(), 0);
  EXPECT_EQ(r.layout.total_wire_length(), r.layout.max_wire_length());
}

}  // namespace
}  // namespace starlay::layout
