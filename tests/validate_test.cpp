// Tests that the validator actually rejects every class of illegal layout:
// overlaps, shared endpoints, knock-knees, via conflicts, node violations.

#include <gtest/gtest.h>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout {
namespace {

/// Two nodes on a line with one wire; a sandbox the tests mutate.
struct Fixture {
  topology::Graph g{2};
  Layout lay{2};
  Fixture() {
    g.add_edge(0, 1);
    g.finalize();
    lay.set_node_rect(0, {0, 0, 0, 0});
    lay.set_node_rect(1, {10, 0, 10, 0});
  }
};

Wire straight_wire(std::int64_t edge, Point a, Point b) {
  Wire w;
  w.edge = edge;
  w.push(a);
  w.push(b);
  return w;
}

TEST(Validate, AcceptsMinimalLayout) {
  Fixture f;
  f.lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  const auto rep = validate_layout(f.g, f.lay);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.num_segments, 1);
}

TEST(Validate, MissingWireIsError) {
  Fixture f;
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, DuplicateWireForEdgeIsError) {
  Fixture f;
  f.lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  Wire w2 = straight_wire(0, {0, 0}, {10, 0});
  w2.h_layer = 3;
  w2.v_layer = 4;
  f.lay.add_wire(w2);
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, OverlappingSegmentsRejected) {
  topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Layout lay(4);
  lay.set_node_rect(0, {0, 0, 0, 0});
  lay.set_node_rect(1, {10, 0, 10, 0});
  lay.set_node_rect(2, {3, 0, 3, 0});  // sits on the first wire's line
  lay.set_node_rect(3, {7, 0, 7, 0});
  lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  lay.add_wire(straight_wire(1, {3, 0}, {7, 0}));
  const auto rep = validate_layout(g, lay);
  EXPECT_FALSE(rep.ok);
}

TEST(Validate, SharedEndpointOnSameLineRejected) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.finalize();
  Layout lay(3);
  lay.set_node_rect(0, {0, 0, 0, 0});
  lay.set_node_rect(1, {5, 0, 5, 0});
  lay.set_node_rect(2, {9, 0, 9, 0});
  // Both wires use grid point (5, 0): closed-interval conflict.
  lay.add_wire(straight_wire(0, {0, 0}, {5, 0}));
  lay.add_wire(straight_wire(1, {5, 0}, {9, 0}));
  EXPECT_FALSE(validate_layout(g, lay).ok);
}

TEST(Validate, CrossingIsLegal) {
  topology::Graph g(4);
  g.add_edge(0, 1);  // horizontal
  g.add_edge(2, 3);  // vertical
  g.finalize();
  Layout lay(4);
  lay.set_node_rect(0, {0, 5, 0, 5});
  lay.set_node_rect(1, {10, 5, 10, 5});
  lay.set_node_rect(2, {5, 0, 5, 0});
  lay.set_node_rect(3, {5, 10, 5, 10});
  lay.add_wire(straight_wire(0, {0, 5}, {10, 5}));
  lay.add_wire(straight_wire(1, {5, 0}, {5, 10}));
  const auto rep = validate_layout(g, lay);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
}

TEST(Validate, KnockKneeRejected) {
  // Two wires bending at the same grid point (the knock-knee the Thompson
  // model forbids): wire A bends at (5,5) coming from west going north;
  // wire B bends at (5,5) coming from south going east.
  topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Layout lay(4);
  lay.set_node_rect(0, {0, 5, 0, 5});
  lay.set_node_rect(1, {5, 10, 5, 10});
  lay.set_node_rect(2, {5, 0, 5, 0});
  lay.set_node_rect(3, {10, 5, 10, 5});
  Wire a;
  a.edge = 0;
  a.push({0, 5});
  a.push({5, 5});
  a.push({5, 10});
  lay.add_wire(a);
  Wire b;
  b.edge = 1;
  b.push({5, 0});
  b.push({5, 5});
  b.push({10, 5});
  lay.add_wire(b);
  EXPECT_FALSE(validate_layout(g, lay).ok);
}

TEST(Validate, EndpointNotOnNodeRejected) {
  Fixture f;
  f.lay.add_wire(straight_wire(0, {1, 0}, {10, 0}));  // starts off node 0
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, DiagonalSegmentRejected) {
  Fixture f;
  Wire w;
  w.edge = 0;
  w.push({0, 0});
  w.push({10, 0});
  w.pts[1] = {10, 3};  // forge a diagonal step
  w.npts = 2;
  f.lay.add_wire(w);
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, CollinearConsecutiveSegmentsRejected) {
  Fixture f;
  Wire w;
  w.edge = 0;
  w.push({0, 0});
  w.push({4, 0});
  w.push({10, 0});  // same direction twice
  f.lay.add_wire(w);
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, BadLayerParityRejected) {
  Fixture f;
  Wire w = straight_wire(0, {0, 0}, {10, 0});
  w.h_layer = 2;  // must be odd
  w.v_layer = 1;
  f.lay.add_wire(w);
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, NonAdjacentLayersRejected) {
  Fixture f;
  Wire w = straight_wire(0, {0, 0}, {10, 0});
  w.h_layer = 1;
  w.v_layer = 4;
  f.lay.add_wire(w);
  EXPECT_FALSE(validate_layout(f.g, f.lay).ok);
}

TEST(Validate, WireThroughForeignNodeRejected) {
  topology::Graph g(3);
  g.add_edge(0, 1);
  g.finalize();
  Layout lay(3);
  lay.set_node_rect(0, {0, 0, 0, 0});
  lay.set_node_rect(1, {10, 0, 10, 0});
  lay.set_node_rect(2, {4, -1, 6, 1});  // straddles the wire path
  lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  // Vertex 2 has no edges; still, the wire may not cross its node.
  EXPECT_FALSE(validate_layout(g, lay).ok);
}

TEST(Validate, WireAlongOwnNodeRejected) {
  topology::Graph g(2);
  g.add_edge(0, 1);
  g.finalize();
  Layout lay(2);
  lay.set_node_rect(0, {0, 0, 3, 3});
  lay.set_node_rect(1, {10, 0, 13, 3});
  // Runs along node 0's top boundary for several points.
  lay.add_wire(straight_wire(0, {0, 3}, {10, 3}));
  EXPECT_FALSE(validate_layout(g, lay).ok);
}

TEST(Validate, ThompsonNodeSizeEnforced) {
  Fixture f;  // nodes are 1x1, degree 1 => want side 1: OK
  f.lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  ValidationOptions opt;
  opt.thompson_node_size = true;
  EXPECT_TRUE(validate_layout(f.g, f.lay, opt).ok);

  // Blow up node 0 beyond its degree.
  f.lay.set_node_rect(0, {-3, 0, 0, 3});
  EXPECT_FALSE(validate_layout(f.g, f.lay, opt).ok);
}

TEST(Validate, ExtendedGridWindowEnforced) {
  Fixture f;
  f.lay.add_wire(straight_wire(0, {0, 0}, {10, 0}));
  ValidationOptions opt;
  opt.min_node_side = 2;
  EXPECT_FALSE(validate_layout(f.g, f.lay, opt).ok);
  opt.min_node_side = 1;
  opt.max_node_side = 1;
  EXPECT_TRUE(validate_layout(f.g, f.lay, opt).ok);
}

TEST(Validate, ViaConflictAcrossSharedLayerRejected) {
  // Wire A uses layers (1,2), wire B layers (3,2).  Give them bends at the
  // same point: B's via [2,3] and A's via [1,2] share (x,y,2).
  topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Layout lay(4);
  lay.set_node_rect(0, {0, 5, 0, 5});
  lay.set_node_rect(1, {5, 10, 5, 10});
  lay.set_node_rect(2, {9, 5, 9, 5});
  lay.set_node_rect(3, {5, 0, 5, 0});
  Wire a;  // west -> bend (5,5) -> north, layers (1,2)
  a.edge = 0;
  a.push({0, 5});
  a.push({5, 5});
  a.push({5, 10});
  lay.add_wire(a);
  Wire b;  // east -> bend (5,5) -> south, layers (3,2)
  b.edge = 1;
  b.h_layer = 3;
  b.v_layer = 2;
  b.push({9, 5});
  b.push({5, 5});
  b.push({5, 0});
  lay.add_wire(b);
  EXPECT_FALSE(validate_layout(g, lay).ok);
}

TEST(Validate, DisjointLayerPairsMayShareBendPoint) {
  // Same geometry, but B on layers (3,4): vias [1,2] and [3,4] are
  // z-disjoint, so the shared 2-D bend point is legal.
  topology::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.finalize();
  Layout lay(4);
  lay.set_node_rect(0, {0, 5, 0, 5});
  lay.set_node_rect(1, {5, 10, 5, 10});
  lay.set_node_rect(2, {9, 5, 9, 5});
  lay.set_node_rect(3, {5, 0, 5, 0});
  Wire a;
  a.edge = 0;
  a.push({0, 5});
  a.push({5, 5});
  a.push({5, 10});
  lay.add_wire(a);
  Wire b;
  b.edge = 1;
  b.h_layer = 3;
  b.v_layer = 4;
  b.push({9, 5});
  b.push({5, 5});
  b.push({5, 0});
  lay.add_wire(b);
  const auto rep = validate_layout(g, lay);
  EXPECT_TRUE(rep.ok) << (rep.errors.empty() ? "" : rep.errors[0]);
  EXPECT_EQ(rep.num_layers, 4);
}

TEST(Validate, ErrorCapRespected) {
  topology::Graph g(2);
  for (int i = 0; i < 60; ++i) g.add_edge(0, 1, i);
  g.finalize();
  Layout lay(2);
  lay.set_node_rect(0, {0, 0, 0, 0});
  lay.set_node_rect(1, {10, 0, 10, 0});
  for (int i = 0; i < 60; ++i) lay.add_wire(straight_wire(i, {0, 0}, {10, 0}));
  ValidationOptions opt;
  opt.max_errors = 5;
  const auto rep = validate_layout(g, lay, opt);
  EXPECT_FALSE(rep.ok);
  EXPECT_LE(rep.errors.size(), 5u);
}

TEST(Validate, ErrorCapDeterministicAcrossSimdLevels) {
  // 60 coincident wires produce conflicts far beyond the cap.  The count
  // pass must still report the exact pre-truncation total while the
  // materialization short-circuits at max_errors messages, and both the
  // total and the retained messages must be byte-identical on every run at
  // every compiled kernel level.
  topology::Graph g(2);
  for (int i = 0; i < 60; ++i) g.add_edge(0, 1, i);
  g.finalize();
  Layout lay(2);
  lay.set_node_rect(0, {0, 0, 0, 0});
  lay.set_node_rect(1, {10, 0, 10, 0});
  for (int i = 0; i < 60; ++i) lay.add_wire(straight_wire(i, {0, 0}, {10, 0}));
  ValidationOptions opt;
  opt.max_errors = 5;
  const auto ref = validate_layout(g, lay, opt);
  ASSERT_FALSE(ref.ok);
  EXPECT_EQ(ref.errors.size(), 5u);
  EXPECT_GT(ref.num_errors_total, 5);
  for (kernels::SimdLevel level : {kernels::SimdLevel::kScalar, kernels::SimdLevel::kSSE4,
                                   kernels::SimdLevel::kAVX2}) {
    if (!kernels::level_supported(level)) continue;
    kernels::ScopedForcedLevel forced(level);
    for (int run = 0; run < 3; ++run) {
      const auto r = validate_layout(g, lay, opt);
      EXPECT_EQ(r.num_errors_total, ref.num_errors_total) << kernels::level_name(level);
      EXPECT_EQ(r.errors, ref.errors) << kernels::level_name(level);
    }
  }
}

}  // namespace
}  // namespace starlay::layout
