// The parallel layout engine must be bit-identical across thread counts:
// every parallel_for partitions by (begin, end, grain) only — never by the
// number of workers — and all merges happen serially in chunk order.  These
// tests pin the whole pipeline (paths, placement, routing, validation, KL)
// to that contract by fingerprinting full results at 1 vs 8 threads.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "starlay/bisect/bisect.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/thread_pool.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay {
namespace {

std::string fingerprint(const core::StarLayoutResult& r) {
  std::ostringstream os;
  const core::StarStructure& s = r.structure;
  os << s.paths.stride << ':';
  for (std::int32_t d : s.paths.flat) os << d << ',';
  os << '|' << s.placement.rows << 'x' << s.placement.cols << ':';
  for (std::int64_t sl : s.placement.slot) os << sl << ',';
  os << '|' << r.routed.layout.area() << '|';
  const layout::WireStore& ws = r.routed.layout.wires();
  // Pin the SoA store itself, not just the logical wires: offsets must be
  // the same prefix sum no matter how many threads built them.
  for (std::int64_t wi = 0; wi <= ws.size(); ++wi) os << ws.raw_offsets()[wi] << '~';
  for (const layout::WireRef w : ws) {
    os << w.edge() << '/' << w.h_layer() << '/' << w.v_layer() << '/';
    for (int i = 0; i < w.npts(); ++i) os << w.pt(i).x << ';' << w.pt(i).y << ';';
    os << ' ';
  }
  return os.str();
}

/// Evaluates \p make at 1 worker and at 8 workers and requires identical
/// output, restoring the pool size afterwards.
template <typename Fn>
void expect_thread_invariant(Fn&& make) {
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();
  pool.set_num_threads(1);
  const auto serial = make();
  pool.set_num_threads(8);
  const auto parallel = make();
  pool.set_num_threads(orig);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelDeterminism, StarLayoutBitIdentical) {
  for (int n : {4, 5, 6})
    expect_thread_invariant([n] { return fingerprint(core::star_layout(n)); });
}

TEST(ParallelDeterminism, CompactStarLayoutBitIdentical) {
  expect_thread_invariant([] { return fingerprint(core::star_layout_compact(5)); });
}

TEST(ParallelDeterminism, TranspositionLayoutBitIdentical) {
  expect_thread_invariant([] { return fingerprint(core::transposition_layout(4)); });
}

TEST(ParallelDeterminism, KlBisectionBitIdentical) {
  const auto g = topology::star_graph(5);
  expect_thread_invariant([&] {
    const auto b = bisect::kernighan_lin_bisection(g, 3);
    std::string s = std::to_string(b.width) + ":";
    for (std::uint8_t v : b.side) s += static_cast<char>('0' + v);
    return s;
  });
}

TEST(ParallelDeterminism, ValidationErrorsStable) {
  // Corrupt a layout so the chunked validator actually produces errors,
  // then require the full report (order and cap included) to be invariant.
  auto r = core::star_layout(4);
  auto& lay = r.routed.layout;
  ASSERT_GE(lay.num_wires(), 2);
  layout::Wire dup = lay.wire(1);  // coincident geometry => overlap + path-rule violations
  dup.edge = lay.wire(0).edge;
  lay.replace_wire(0, dup);
  expect_thread_invariant([&] {
    layout::ValidationOptions opt;
    opt.max_errors = 5;
    const auto rep = layout::validate_layout(r.graph, r.routed.layout, opt);
    std::string s = rep.ok ? "ok" : "bad";
    for (const auto& e : rep.errors) s += "\n" + e;
    return s;
  });
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();
  pool.set_num_threads(8);
  for (std::int64_t begin : {0, 3}) {
    for (std::int64_t end : {begin, begin + 1, begin + 97, begin + 1000}) {
      for (std::int64_t grain : {1, 7, 64, 5000}) {
        std::vector<int> hits(static_cast<std::size_t>(end), 0);
        support::parallel_for(begin, end, grain,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
          for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
        });
        for (std::int64_t i = begin; i < end; ++i)
          ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1)
              << "i=" << i << " grain=" << grain << " end=" << end;
      }
    }
  }
  pool.set_num_threads(orig);
}

TEST(ParallelFor, ChunkIndicesMatchSerialPartition) {
  // Chunk k must always cover [begin + k*grain, min(end, begin+(k+1)*grain)),
  // independent of thread count.
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();
  for (int threads : {1, 8}) {
    pool.set_num_threads(threads);
    const std::int64_t begin = 5, end = 137, grain = 16;
    const std::int64_t chunks = support::num_chunks(begin, end, grain);
    std::vector<std::pair<std::int64_t, std::int64_t>> bounds(
        static_cast<std::size_t>(chunks), {-1, -1});
    support::parallel_for(begin, end, grain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      bounds[static_cast<std::size_t>(chunk)] = {lo, hi};
    });
    for (std::int64_t k = 0; k < chunks; ++k) {
      EXPECT_EQ(bounds[static_cast<std::size_t>(k)].first, begin + k * grain);
      EXPECT_EQ(bounds[static_cast<std::size_t>(k)].second,
                std::min(end, begin + (k + 1) * grain));
    }
  }
  pool.set_num_threads(orig);
}

TEST(ParallelFor, NestedCallsRunInline) {
  // Re-entrant parallel_for (a pool job spawning another) must not deadlock:
  // inner loops detect the pool context and run serially on the caller.
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();
  pool.set_num_threads(4);
  std::vector<int> hits(64, 0);
  support::parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    for (std::int64_t i = lo; i < hi; ++i)
      support::parallel_for(0, 8, 1, [&](std::int64_t jlo, std::int64_t jhi, std::int64_t) {
        for (std::int64_t j = jlo; j < jhi; ++j)
          hits[static_cast<std::size_t>(i * 8 + j)]++;
      });
  });
  pool.set_num_threads(orig);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  auto& pool = support::ThreadPool::instance();
  const int orig = pool.num_threads();
  pool.set_num_threads(4);
  EXPECT_THROW(
      support::parallel_for(0, 100, 1,
                            [&](std::int64_t lo, std::int64_t, std::int64_t) {
                              if (lo == 42) throw std::runtime_error("boom");
                            }),
      std::runtime_error);
  pool.set_num_threads(orig);
  // The pool must stay usable after an exception.
  std::int64_t total = 0;
  support::parallel_for(0, 1, 1,
                        [&](std::int64_t, std::int64_t hi, std::int64_t) { total = hi; });
  EXPECT_EQ(total, 1);
}

}  // namespace
}  // namespace starlay
