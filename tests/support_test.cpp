// Unit tests for starlay/support: exact math helpers.

#include <gtest/gtest.h>

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"

namespace starlay {
namespace {

TEST(Factorial, SmallValues) {
  EXPECT_EQ(factorial(0), 1);
  EXPECT_EQ(factorial(1), 1);
  EXPECT_EQ(factorial(2), 2);
  EXPECT_EQ(factorial(5), 120);
  EXPECT_EQ(factorial(10), 3628800);
  EXPECT_EQ(factorial(20), 2432902008176640000LL);
}

TEST(Factorial, RejectsOutOfRange) {
  EXPECT_THROW(factorial(-1), InvariantError);
  EXPECT_THROW(factorial(21), InvariantError);
}

TEST(Factorial, RecurrenceHolds) {
  for (int n = 1; n <= 20; ++n) EXPECT_EQ(factorial(n), n * factorial(n - 1)) << n;
}

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1);
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(10, 5), 252);
  EXPECT_EQ(binomial(52, 5), 2598960);
  EXPECT_EQ(binomial(4, 7), 0);
}

TEST(Binomial, Symmetry) {
  for (int n = 0; n <= 30; ++n)
    for (int k = 0; k <= n; ++k) EXPECT_EQ(binomial(n, k), binomial(n, n - k));
}

TEST(Binomial, PascalRule) {
  for (int n = 1; n <= 40; ++n)
    for (int k = 1; k < n; ++k)
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k));
}

TEST(Binomial, RejectsNegative) {
  EXPECT_THROW(binomial(-1, 0), InvariantError);
  EXPECT_THROW(binomial(3, -2), InvariantError);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(0, 3), 0);
  EXPECT_EQ(ceil_div(1, 3), 1);
  EXPECT_EQ(ceil_div(3, 3), 1);
  EXPECT_EQ(ceil_div(4, 3), 2);
  EXPECT_EQ(ceil_div(-4, 3), -1);
  EXPECT_THROW(ceil_div(1, 0), InvariantError);
  EXPECT_THROW(ceil_div(1, -2), InvariantError);
}

TEST(Isqrt, ExactAndNear) {
  EXPECT_EQ(isqrt(0), 0);
  EXPECT_EQ(isqrt(1), 1);
  EXPECT_EQ(isqrt(2), 1);
  EXPECT_EQ(isqrt(3), 1);
  EXPECT_EQ(isqrt(4), 2);
  EXPECT_EQ(isqrt(99), 9);
  EXPECT_EQ(isqrt(100), 10);
  EXPECT_EQ(isqrt(3037000499LL * 3037000499LL), 3037000499LL);
  EXPECT_THROW(isqrt(-1), InvariantError);
}

TEST(Isqrt, PropertySweep) {
  for (std::int64_t x = 0; x < 100000; x += 7) {
    const std::int64_t r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
  }
}

TEST(GridFactors, CoversAndStaysBalanced) {
  for (int m = 1; m <= 500; ++m) {
    const auto f = grid_factors(m);
    EXPECT_GE(static_cast<std::int64_t>(f.rows) * f.cols, m) << m;
    EXPECT_EQ(f.rows, static_cast<int>(isqrt(m)) + (isqrt(m) * isqrt(m) < m ? 1 : 0)) << m;
    EXPECT_LE(f.cols, f.rows) << m;                     // near-square
    EXPECT_GE(f.cols, f.rows - 1) << "waste too big " << m;
  }
}

TEST(GridFactors, ExactSquares) {
  EXPECT_EQ(grid_factors(9).rows, 3);
  EXPECT_EQ(grid_factors(9).cols, 3);
  EXPECT_EQ(grid_factors(16).rows, 4);
  EXPECT_EQ(grid_factors(16).cols, 4);
}

TEST(Ilog2, Basics) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_THROW(ilog2(0), InvariantError);
}

TEST(IsPow2, Basics) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_TRUE(is_pow2(1 << 20));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(-4));
}

TEST(Require, ThrowsWithMessage) {
  EXPECT_NO_THROW(require(true, "fine"));
  try {
    require(false, "boom");
    FAIL() << "expected throw";
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("boom"), std::string::npos);
  }
}

}  // namespace
}  // namespace starlay
