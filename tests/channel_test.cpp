// Tests for left-edge interval packing — the per-channel optimality that
// every layout's track counts rest on.

#include <gtest/gtest.h>

#include <random>

#include "starlay/layout/channel.hpp"
#include "starlay/support/check.hpp"

namespace starlay::layout {
namespace {

TEST(Packing, EmptyInput) {
  const PackResult r = pack_intervals_left_edge({});
  EXPECT_EQ(r.num_tracks, 0);
  EXPECT_TRUE(r.track.empty());
  EXPECT_EQ(max_closed_coverage({}), 0);
}

TEST(Packing, SingleInterval) {
  const std::vector<PackRequest> reqs{{3, 9}};
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_EQ(r.num_tracks, 1);
  EXPECT_EQ(r.track[0], 0);
}

TEST(Packing, TouchingEndpointsConflict) {
  // Closed intervals sharing one point need two tracks.
  const std::vector<PackRequest> reqs{{0, 5}, {5, 9}};
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_EQ(r.num_tracks, 2);
  EXPECT_EQ(max_closed_coverage(reqs), 2);
}

TEST(Packing, DisjointChainSharesOneTrack) {
  const std::vector<PackRequest> reqs{{0, 4}, {5, 9}, {10, 14}, {15, 19}};
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_EQ(r.num_tracks, 1);
  EXPECT_TRUE(packing_is_valid(reqs, r));
}

TEST(Packing, NestedIntervalsStack) {
  const std::vector<PackRequest> reqs{{0, 10}, {1, 9}, {2, 8}, {3, 7}};
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_EQ(r.num_tracks, 4);
  EXPECT_TRUE(packing_is_valid(reqs, r));
}

TEST(Packing, RejectsInvertedInterval) {
  const std::vector<PackRequest> reqs{{5, 3}};
  EXPECT_THROW(pack_intervals_left_edge(reqs), starlay::InvariantError);
}

TEST(Packing, CollinearCompleteGraphPattern) {
  // The K_m collinear demand: one interval [i, j] per pair, endpoints
  // spread by node: coverage must be floor(m^2/4) with distinct stubs.
  // Model stubs: node i spans [i*m, i*m + m - 1]; edge (i, j) uses
  // lo = i*m + j, hi = j*m + i, which mirrors the stub discipline.
  const int m = 12;
  std::vector<PackRequest> reqs;
  for (int i = 0; i < m; ++i)
    for (int j = i + 1; j < m; ++j)
      reqs.push_back({static_cast<std::int64_t>(i) * m + j,
                      static_cast<std::int64_t>(j) * m + i});
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_EQ(r.num_tracks, m * m / 4);
  EXPECT_TRUE(packing_is_valid(reqs, r));
}

class RandomPacking : public ::testing::TestWithParam<int> {};

TEST_P(RandomPacking, OptimalAndValid) {
  std::mt19937 rng(static_cast<std::uint32_t>(GetParam()));
  std::uniform_int_distribution<std::int64_t> pos(0, 300);
  std::uniform_int_distribution<std::int64_t> len(0, 40);
  std::vector<PackRequest> reqs;
  const int count = 50 + GetParam() * 37;
  for (int i = 0; i < count; ++i) {
    const std::int64_t lo = pos(rng);
    reqs.push_back({lo, lo + len(rng)});
  }
  const PackResult r = pack_intervals_left_edge(reqs);
  EXPECT_TRUE(packing_is_valid(reqs, r));
  // Left-edge is optimal for interval graphs: tracks == max clique ==
  // max closed coverage.
  EXPECT_EQ(static_cast<std::int64_t>(r.num_tracks), max_closed_coverage(reqs));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPacking, ::testing::Range(0, 12));

TEST(Coverage, CountsClosedTouching) {
  const std::vector<PackRequest> reqs{{0, 2}, {2, 4}, {2, 2}};
  EXPECT_EQ(max_closed_coverage(reqs), 3);
}

TEST(PackingValidity, DetectsBadAssignment) {
  const std::vector<PackRequest> reqs{{0, 5}, {3, 9}};
  PackResult bad;
  bad.num_tracks = 1;
  bad.track = {0, 0};
  EXPECT_FALSE(packing_is_valid(reqs, bad));
}

}  // namespace
}  // namespace starlay::layout
