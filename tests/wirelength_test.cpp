// Wirelength as a first-class certified quantity: hand-pinned goldens for
// the smallest builds, brute-force recomputation of every derived total
// (ValidationReport, FingerprintingSink, Layout reductions), and the exact
// host-embedding closed forms of formulas.hpp cross-checked against a
// direct sum over the subject edges of the actual placements.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "starlay/core/builder.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/kary_layout.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay {
namespace {

using core::BuildParams;
using core::BuildResult;
using core::LayoutBuilder;
using layout::Layout;
using layout::WireRef;

std::int64_t brute_polyline_length(const WireRef& w) {
  std::int64_t len = 0;
  for (int i = 1; i < w.npts(); ++i)
    len += std::abs(static_cast<std::int64_t>(w.pt(i).x) - w.pt(i - 1).x) +
           std::abs(static_cast<std::int64_t>(w.pt(i).y) - w.pt(i - 1).y);
  return len;
}

BuildResult build_family(const char* family, int n) {
  const LayoutBuilder* b = core::find_builder(family);
  EXPECT_NE(b, nullptr) << family;
  BuildParams p;
  p.n = n;
  return b->build(p);
}

// --- hand-pinned goldens ----------------------------------------------------

struct Golden {
  const char* family;
  int n;
  std::int64_t total;
  std::int64_t max;
};

TEST(Wirelength, GoldenTotalsForSmallestBuilds) {
  // Pinned from the deterministic constructions; star n=2 and hypercube
  // d=1 are checkable by eye (one edge between adjacent unit nodes routes
  // with one jog: length 3).
  const Golden goldens[] = {
      {"star", 2, 3, 3},         {"star", 3, 42, 14},      {"star", 4, 454, 23},
      {"hypercube", 1, 3, 3},    {"hypercube", 2, 20, 5},  {"hypercube", 3, 96, 11},
      {"3ary-cube", 1, 15, 7},   {"3ary-cube", 2, 186, 15},
  };
  for (const Golden& g : goldens) {
    const BuildResult built = build_family(g.family, g.n);
    const Layout& lay = built.routed.layout;
    EXPECT_EQ(lay.total_wire_length(), g.total) << g.family << " n=" << g.n;
    EXPECT_EQ(lay.max_wire_length(), g.max) << g.family << " n=" << g.n;
  }
}

// --- every derived total agrees with a brute-force sum ----------------------

TEST(Wirelength, DerivedTotalsMatchBruteForceSegmentSum) {
  const struct {
    const char* family;
    int n;
  } cases[] = {{"star", 4},           {"hypercube", 3},          {"folded-hypercube", 3},
               {"enhanced-hypercube", 3}, {"3ary-cube", 2},      {"hcn", 2}};
  for (const auto& c : cases) {
    const BuildResult built = build_family(c.family, c.n);
    const Layout& lay = built.routed.layout;
    std::int64_t total = 0;
    std::int64_t longest = 0;
    for (const WireRef w : lay.wires()) {
      const std::int64_t len = brute_polyline_length(w);
      total += len;
      longest = std::max(longest, len);
    }
    EXPECT_EQ(lay.total_wire_length(), total) << c.family;
    EXPECT_EQ(lay.max_wire_length(), longest) << c.family;

    const layout::ValidationReport vr = layout::validate_layout(built.graph, lay);
    EXPECT_TRUE(vr.ok) << c.family;
    EXPECT_EQ(vr.total_wire_length, total) << c.family;
    EXPECT_EQ(vr.max_wire_length, longest) << c.family;
  }
}

TEST(Wirelength, FingerprintingSinkAgreesWithMaterialized) {
  const struct {
    const char* family;
    int n;
  } cases[] = {{"star", 4}, {"3ary-cube", 3}, {"enhanced-hypercube", 4}};
  for (const auto& c : cases) {
    const LayoutBuilder* b = core::find_builder(c.family);
    ASSERT_NE(b, nullptr);
    BuildParams p;
    p.n = c.n;
    const BuildResult built = b->build(p);
    layout::FingerprintingSink sink;
    ASSERT_TRUE(b->try_build_stream(p, sink).ok());
    EXPECT_EQ(sink.total_wire_length(), built.routed.layout.total_wire_length()) << c.family;
    EXPECT_EQ(sink.max_wire_length(), built.routed.layout.max_wire_length()) << c.family;
  }
}

TEST(Wirelength, WirePolylineLengthCountsJogs) {
  layout::Wire w;
  w.push({0, 0});
  w.push({4, 0});
  w.push({4, 3});
  w.push({2, 3});
  EXPECT_EQ(layout::wire_polyline_length(w), 4 + 3 + 2);
}

// --- exact host-embedding closed forms vs direct edge sums ------------------

// Lattice coordinates of vertex v under a placement: slot = r * cols + c.
struct Lattice {
  std::int64_t r, c;
};
Lattice lattice_of(const layout::Placement& p, std::int32_t v) {
  const std::int64_t slot = p.slot[static_cast<std::size_t>(v)];
  return {slot / p.cols, slot % p.cols};
}

std::int64_t tree3_distance(std::int32_t u, std::int32_t v) {
  std::int64_t steps = 0;
  while (u != v) {
    u /= 3;
    v /= 3;
    ++steps;
  }
  return 2 * steps;
}

TEST(Wirelength, HypercubeGridFormulaMatchesEdgeSum) {
  for (int d = 1; d <= 10; ++d) {
    const topology::Graph g = topology::hypercube(d);
    const layout::Placement p = core::hypercube_placement(d);
    std::int64_t sum = 0;
    for (std::int64_t e = 0; e < g.num_edges(); ++e) {
      const Lattice a = lattice_of(p, g.edge(e).u);
      const Lattice b = lattice_of(p, g.edge(e).v);
      sum += std::abs(a.r - b.r) + std::abs(a.c - b.c);
    }
    EXPECT_EQ(core::hypercube_grid_wirelength(d), sum) << "d=" << d;
  }
  EXPECT_EQ(core::hypercube_grid_wirelength(1), 1);
  EXPECT_EQ(core::hypercube_grid_wirelength(2), 4);
  EXPECT_EQ(core::hypercube_grid_wirelength(3), 16);
}

TEST(Wirelength, FoldedHypercubeGridFormulaMatchesEdgeSum) {
  for (int d = 1; d <= 10; ++d) {
    const topology::Graph g = topology::folded_hypercube(d);
    const layout::Placement p = core::hypercube_placement(d);
    std::int64_t sum = 0;
    for (std::int64_t e = 0; e < g.num_edges(); ++e) {
      const Lattice a = lattice_of(p, g.edge(e).u);
      const Lattice b = lattice_of(p, g.edge(e).v);
      sum += std::abs(a.r - b.r) + std::abs(a.c - b.c);
    }
    EXPECT_EQ(core::folded_hypercube_grid_wirelength(d), sum) << "d=" << d;
  }
}

TEST(Wirelength, EnhancedHypercubeGridFormulaMatchesEdgeSum) {
  for (int d = 2; d <= 10; ++d) {
    const topology::Graph g = topology::enhanced_hypercube(d, 2);
    const layout::Placement p = core::hypercube_placement(d);
    std::int64_t sum = 0;
    for (std::int64_t e = 0; e < g.num_edges(); ++e) {
      const Lattice a = lattice_of(p, g.edge(e).u);
      const Lattice b = lattice_of(p, g.edge(e).v);
      sum += std::abs(a.r - b.r) + std::abs(a.c - b.c);
    }
    EXPECT_EQ(core::enhanced_hypercube_grid_wirelength(d), sum) << "d=" << d;
  }
  // Hand-checked: the Q(d,2) partial-complement edges add host wirelength
  // 2 (d=2), 8 (d=3), 32 (d=4) on top of the plain cube's grid total.
  EXPECT_EQ(core::enhanced_hypercube_grid_wirelength(2) - core::hypercube_grid_wirelength(2),
            2);
  EXPECT_EQ(core::enhanced_hypercube_grid_wirelength(3) - core::hypercube_grid_wirelength(3),
            8);
  EXPECT_EQ(core::enhanced_hypercube_grid_wirelength(4) - core::hypercube_grid_wirelength(4),
            32);
}

TEST(Wirelength, ThreeAryHostFormulasMatchEdgeSums) {
  for (int n = 1; n <= 6; ++n) {
    const topology::Graph g = topology::threeary_cube(n);
    const layout::Placement p = core::threeary_cube_placement(n);
    const std::int64_t rows = p.rows;  // rows <= cols, so the cylinder wraps y
    std::int64_t grid = 0;
    std::int64_t cylinder = 0;
    std::int64_t tree = 0;
    for (std::int64_t e = 0; e < g.num_edges(); ++e) {
      const Lattice a = lattice_of(p, g.edge(e).u);
      const Lattice b = lattice_of(p, g.edge(e).v);
      const std::int64_t dr = std::abs(a.r - b.r);
      const std::int64_t dc = std::abs(a.c - b.c);
      grid += dr + dc;
      cylinder += dc + std::min(dr, rows - dr);
      tree += tree3_distance(g.edge(e).u, g.edge(e).v);
    }
    EXPECT_EQ(core::threeary_grid_wirelength(n), grid) << "n=" << n;
    EXPECT_EQ(core::threeary_cylinder_wirelength(n), cylinder) << "n=" << n;
    EXPECT_EQ(core::threeary_tree_wirelength(n), tree) << "n=" << n;
  }
  // Hand-checked smallest cases: one 3-cycle on a 1x3 grid (1+1+2 = 4,
  // tree host 3 * 2 = 6); n=2 wraps one axis of length 3, saving one unit
  // on each of the three wrap-around row edges.
  EXPECT_EQ(core::threeary_grid_wirelength(1), 4);
  EXPECT_EQ(core::threeary_cylinder_wirelength(1), 4);
  EXPECT_EQ(core::threeary_tree_wirelength(1), 6);
  EXPECT_EQ(core::threeary_grid_wirelength(2), 24);
  EXPECT_EQ(core::threeary_cylinder_wirelength(2), 21);
  EXPECT_EQ(core::threeary_tree_wirelength(2), 54);
}

// --- the registered BoundSpec claims point at the right formulas ------------

TEST(Wirelength, RegisteredWlClaimsMatchFormulas) {
  const core::LayoutBuilder* threeary = core::find_builder("3ary-cube");
  ASSERT_NE(threeary, nullptr);
  const core::BoundSpec* spec = threeary->bound_spec();
  ASSERT_NE(spec, nullptr);
  ASSERT_TRUE(spec->wl_grid_exact && spec->wl_cylinder_exact && spec->wl_tree_exact);
  BuildParams p;
  p.n = 3;
  EXPECT_EQ(spec->wl_grid_exact(p), core::threeary_grid_wirelength(3));
  EXPECT_EQ(spec->wl_cylinder_exact(p), core::threeary_cylinder_wirelength(3));
  EXPECT_EQ(spec->wl_tree_exact(p), core::threeary_tree_wirelength(3));

  for (const char* family : {"hypercube", "folded-hypercube", "enhanced-hypercube"}) {
    const core::LayoutBuilder* b = core::find_builder(family);
    ASSERT_NE(b, nullptr) << family;
    ASSERT_NE(b->bound_spec(), nullptr) << family;
    EXPECT_TRUE(static_cast<bool>(b->bound_spec()->wl_grid_exact)) << family;
  }
}

}  // namespace
}  // namespace starlay
