// Harness tests for the verification subsystem (src/check): the oracle
// must accept every clean build and reject deliberately corrupted ones,
// the metamorphic battery must hold for every registered family, and the
// fuzz driver must be deterministic, budget-bounded, and able to replay a
// corpus with comments and malformed lines.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "starlay/check/fuzz.hpp"
#include "starlay/check/metamorphic.hpp"
#include "starlay/check/oracle.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::check {
namespace {

/// Small valid params per family (mirrors stream_pipeline_test's helper).
core::BuildParams small_params(const core::LayoutBuilder& b) {
  core::BuildParams p;
  const std::string name(b.name());
  if (name == "hcn" || name == "hfn" || name == "multilayer-hcn" || name == "multilayer-hfn")
    p.n = 2;
  else if (name == "hypercube" || name == "folded-hypercube")
    p.n = 5;
  else if (name.rfind("complete2d", 0) == 0 || name.rfind("collinear", 0) == 0)
    p.n = 7;
  else
    p.n = 4;
  if (name.rfind("multilayer-", 0) == 0) p.layers = 3;
  if (name == "collinear" || name == "complete2d") p.multiplicity = 2;
  return p;
}

core::BuildResult must_build(const std::string& family, const core::BuildParams& p) {
  const core::LayoutBuilder* b = core::find_builder(family);
  EXPECT_NE(b, nullptr) << family;
  auto out = b->try_build(p);
  EXPECT_TRUE(out.ok()) << family;
  return std::move(out.value());
}

TEST(FuzzCase, LineRoundTrip) {
  FuzzCase c;
  c.family = "multilayer-star";
  c.params.n = 5;
  c.params.base_size = 2;
  c.params.layers = 4;
  c.params.multiplicity = 1;
  c.threads = 2;
  EXPECT_EQ(c.line(), "family=multilayer-star n=5 base=2 layers=4 mult=1 threads=2");
  FuzzCase back;
  std::string err;
  ASSERT_TRUE(FuzzCase::parse(c.line(), &back, &err)) << err;
  EXPECT_EQ(back.line(), c.line());
}

TEST(FuzzCase, ParseDefaultsAndErrors) {
  FuzzCase c;
  std::string err;
  ASSERT_TRUE(FuzzCase::parse("family=star n=4", &c, &err)) << err;
  EXPECT_EQ(c.family, "star");
  EXPECT_EQ(c.params.n, 4);
  EXPECT_EQ(c.params.base_size, core::BuildParams{}.base_size);
  EXPECT_EQ(c.threads, 1);

  EXPECT_FALSE(FuzzCase::parse("n=4", &c, &err));          // no family
  EXPECT_FALSE(FuzzCase::parse("family=star", &c, &err));  // no n
  EXPECT_FALSE(FuzzCase::parse("family=star n=x", &c, &err));
  EXPECT_FALSE(FuzzCase::parse("family=star n=4 bogus=1", &c, &err));
  EXPECT_FALSE(FuzzCase::parse("family=star n=4 naked-token", &c, &err));
}

TEST(Splitmix, DeterministicStream) {
  std::uint64_t a = 42, b = 42, c = 43;
  for (int i = 0; i < 8; ++i) EXPECT_EQ(splitmix64(a), splitmix64(b));
  std::uint64_t d = 42;
  EXPECT_NE(splitmix64(c), splitmix64(d));
}

TEST(Oracle, CleanOnEveryFamily) {
  for (const core::LayoutBuilder* b : core::all_builders()) {
    const core::BuildParams p = small_params(*b);
    auto built = b->try_build(p);
    ASSERT_TRUE(built.ok()) << b->name();
    const OracleReport rep = run_oracle(*b, p, built.value());
    EXPECT_TRUE(rep.ok) << b->name() << ": "
                        << (rep.violations.empty() ? "?" : rep.violations.front());
    EXPECT_TRUE(rep.overlap_pass_ran) << b->name();
    EXPECT_TRUE(rep.node_pass_ran) << b->name();
  }
}

TEST(Oracle, BoundsCheckedWhenSpecRegistered) {
  const core::LayoutBuilder* star = core::find_builder("star");
  ASSERT_NE(star, nullptr);
  ASSERT_NE(star->bound_spec(), nullptr);
  core::BuildParams p;
  p.n = 5;  // >= area_min_n, so the area bound is live
  auto built = star->try_build(p);
  ASSERT_TRUE(built.ok());
  const OracleReport rep = run_oracle(*star, p, built.value());
  EXPECT_TRUE(rep.ok);
  EXPECT_TRUE(rep.bounds_checked);
  const MeasuredBounds m = measure_bounds(*star, p, built.value());
  EXPECT_GT(m.area_leading, 0.0);
  EXPECT_EQ(m.num_layers, 2);
  EXPECT_LE(static_cast<double>(m.area), star->bound_spec()->area_slack * m.area_leading);
}

TEST(Oracle, CatchesDuplicatedWirePath) {
  core::BuildParams p;
  p.n = 4;
  core::BuildResult built = must_build("star", p);
  // Give wire 1 the exact geometry of wire 0 (keeping its own edge id):
  // identical same-layer spans must trip the brute-force overlap pass.
  layout::Wire clone = built.routed.layout.wire(0);
  clone.edge = built.routed.layout.wire(1).edge;
  built.routed.layout.replace_wire(1, clone);
  const OracleReport rep =
      run_oracle(*core::find_builder("star"), p, built);
  EXPECT_FALSE(rep.ok);
  EXPECT_GT(rep.num_violations_total, 0);
}

TEST(Oracle, CatchesShiftedEndpoint) {
  core::BuildParams p;
  p.n = 4;
  core::BuildResult built = must_build("star", p);
  // Shift one whole wire a row up: endpoints leave their node boundaries.
  layout::Wire w = built.routed.layout.wire(0);
  for (int i = 0; i < w.npts; ++i) w.pts[static_cast<std::size_t>(i)].y += 1000;
  built.routed.layout.replace_wire(0, w);
  const OracleReport rep = run_oracle(*core::find_builder("star"), p, built);
  EXPECT_FALSE(rep.ok);
}

TEST(Oracle, CatchesOverlappingNodeRects) {
  core::BuildParams p;
  p.n = 4;
  core::BuildResult built = must_build("star", p);
  built.routed.layout.set_node_rect(1, built.routed.layout.node_rect(0));
  const OracleReport rep = run_oracle(*core::find_builder("star"), p, built);
  EXPECT_FALSE(rep.ok);
  EXPECT_TRUE(rep.node_pass_ran);
}

TEST(Metamorphic, HoldsForEveryFamily) {
  for (const core::LayoutBuilder* b : core::all_builders()) {
    const core::BuildParams p = small_params(*b);
    MetamorphicOptions opt;
    opt.thread_counts = {1, 2};  // keep the battery fast; starcheck sweeps wider
    const MetamorphicReport rep = run_metamorphic(*b, p, opt);
    EXPECT_TRUE(rep.ok) << b->name() << ": "
                        << (rep.violations.empty() ? "?" : rep.violations.front());
    EXPECT_GE(rep.num_relations_checked, 5);
  }
}

TEST(Metamorphic, FingerprintSeesMutations) {
  core::BuildParams p;
  p.n = 4;
  core::BuildResult built = must_build("star", p);
  const std::uint64_t before = layout::wire_fingerprint(built.routed.layout);
  layout::Wire w = built.routed.layout.wire(0);
  w.pts[0].x += 1;
  built.routed.layout.replace_wire(0, w);
  EXPECT_NE(layout::wire_fingerprint(built.routed.layout), before);
}

TEST(CheckCase, PassesAndRestoresPoolSize) {
  const int before = support::ThreadPool::instance().num_threads();
  FuzzCase c;
  std::string err;
  ASSERT_TRUE(FuzzCase::parse("family=star n=4 threads=2", &c, &err)) << err;
  EXPECT_TRUE(check_case(c).empty());
  EXPECT_EQ(support::ThreadPool::instance().num_threads(), before);
}

TEST(CheckCase, ReportsUnknownFamily) {
  FuzzCase c;
  c.family = "no-such-family";
  c.params.n = 4;
  const std::vector<std::string> v = check_case(c);
  ASSERT_FALSE(v.empty());
  EXPECT_NE(v.front().find("lookup:"), std::string::npos);
}

TEST(Replay, SkipsCommentsRejectsGarbage) {
  FuzzOptions opt;
  const FuzzReport rep = run_replay(
      {"# a comment", "", "family=star n=4 threads=1", "family=star n=notanumber"}, opt);
  EXPECT_EQ(rep.cases_run, 2);
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.failures.size(), 1u);
  EXPECT_NE(rep.failures[0].violations.front().find("parse:"), std::string::npos);
}

TEST(Fuzz, DeterministicUnderSeedAndCaseCap) {
  FuzzOptions opt;
  opt.seed = 7;
  opt.max_cases = 4;
  opt.budget_seconds = 600.0;  // the case cap is the binding stop condition
  const FuzzReport a = run_fuzz(opt);
  const FuzzReport b = run_fuzz(opt);
  EXPECT_EQ(a.cases_run, 4);
  EXPECT_EQ(b.cases_run, 4);
  EXPECT_TRUE(a.ok) << (a.failures.empty() ? "?" : a.failures[0].shrunk.line());
  EXPECT_TRUE(b.ok);
  EXPECT_EQ(a.builds_run, b.builds_run);
}

TEST(Fuzz, UnknownRequestedFamilyIsAFailure) {
  FuzzOptions opt;
  opt.families = {"starr"};
  opt.max_cases = 1;
  const FuzzReport rep = run_fuzz(opt);
  EXPECT_FALSE(rep.ok);
  ASSERT_EQ(rep.failures.size(), 1u);
  // The lookup error carries the nearest-name suggestion.
  EXPECT_NE(rep.failures[0].violations.front().find("star"), std::string::npos);
}

}  // namespace
}  // namespace starlay::check
