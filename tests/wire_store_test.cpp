// The SoA wire store and the bucketed segment index must be *observably
// identical* to the AoS std::vector<Wire> representation they replaced.
// The golden fingerprints below were computed against the pre-SoA tree
// (identical construction pipeline, wires stored as vector<Wire>, segments
// sorted with one global std::sort): any divergence in wire geometry,
// metadata, segment set, bounding box, or derived lengths changes the hash.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/layout.hpp"
#include "starlay/layout/segment_index.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/layout/wire_store.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::layout {
namespace {

std::uint64_t fnv(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v);
  h *= 1099511628211ull;
  return h;
}

/// FNV-1a over every observable quantity of a layout, in a fixed order.
std::uint64_t layout_fingerprint(const Layout& lay) {
  std::uint64_t h = 14695981039346656037ull;
  h = fnv(h, lay.num_wires());
  for (const WireRef w : lay.wires()) {
    h = fnv(h, w.edge());
    h = fnv(h, w.h_layer());
    h = fnv(h, w.v_layer());
    h = fnv(h, w.npts());
    for (int i = 0; i < w.npts(); ++i) {
      h = fnv(h, w.pt(i).x);
      h = fnv(h, w.pt(i).y);
    }
  }
  for (const LayerSegment& s : lay.segments()) {
    h = fnv(h, s.layer);
    h = fnv(h, s.horizontal ? 1 : 0);
    h = fnv(h, s.line);
    h = fnv(h, s.span.lo);
    h = fnv(h, s.span.hi);
    h = fnv(h, s.wire);
  }
  const Rect& bb = lay.bounding_box();
  h = fnv(h, bb.x0);
  h = fnv(h, bb.y0);
  h = fnv(h, bb.x1);
  h = fnv(h, bb.y1);
  h = fnv(h, lay.num_layers());
  h = fnv(h, lay.total_wire_length());
  h = fnv(h, lay.max_wire_length());
  return h;
}

TEST(WireStoreGolden, StarLayoutsMatchAoSBaseline) {
  EXPECT_EQ(layout_fingerprint(core::star_layout(6).routed.layout),
            10461399955388810600ull);
  EXPECT_EQ(layout_fingerprint(core::star_layout_compact(5).routed.layout),
            8595571350256437763ull);
  EXPECT_EQ(layout_fingerprint(core::transposition_layout(4).routed.layout),
            3861059960937322183ull);
}

TEST(WireStoreGolden, HierarchicalCubicLayoutsMatchAoSBaseline) {
  EXPECT_EQ(layout_fingerprint(core::hcn_layout(2).routed.layout),
            16386271916943833031ull);
  EXPECT_EQ(layout_fingerprint(core::hfn_layout(2).routed.layout),
            12231418494752869806ull);
}

// The bucketed counting-sort pass must order segments exactly like the
// comparison sort it replaced, refined by (span.hi, wire) to a total order.
TEST(SegmentIndex, MatchesGlobalSortOrder) {
  const auto r = core::star_layout(5);
  const Layout& lay = r.routed.layout;
  auto expect = lay.segments();
  std::sort(expect.begin(), expect.end(), [](const LayerSegment& a, const LayerSegment& b) {
    if (a.layer != b.layer) return a.layer < b.layer;
    if (a.horizontal != b.horizontal) return a.horizontal < b.horizontal;
    if (a.line != b.line) return a.line < b.line;
    if (a.span.lo != b.span.lo) return a.span.lo < b.span.lo;
    if (a.span.hi != b.span.hi) return a.span.hi < b.span.hi;
    return a.wire < b.wire;
  });
  const SegmentIndex idx(lay);
  ASSERT_EQ(idx.size(), static_cast<std::int64_t>(expect.size()));
  const std::vector<LayerSegment> got = idx.materialize();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < expect.size(); ++i) {
    const LayerSegment& a = got[i];
    const LayerSegment& b = expect[i];
    ASSERT_TRUE(a.layer == b.layer && a.horizontal == b.horizontal && a.line == b.line &&
                a.span == b.span && a.wire == b.wire)
        << "segment " << i << " diverges";
    // The per-segment accessor and the SoA views must agree with the
    // materialized vector element-for-element.
    const LayerSegment c = idx.segment(static_cast<std::int64_t>(i));
    ASSERT_TRUE(c.layer == b.layer && c.horizontal == b.horizontal && c.line == b.line &&
                c.span == b.span && c.wire == b.wire)
        << "segment() " << i << " diverges";
    ASSERT_EQ(idx.lines()[i], b.line);
    ASSERT_EQ(idx.span_lo()[i], b.span.lo);
    ASSERT_EQ(idx.span_hi()[i], b.span.hi);
    ASSERT_EQ(static_cast<std::int64_t>(idx.wires()[i]), b.wire);
  }
}

TEST(SegmentIndex, LineSpanFindsEverySegment) {
  const auto r = core::star_layout(4);
  const SegmentIndex idx(r.routed.layout);
  for (const LayerSegment& s : idx.materialize()) {
    const auto [first, last] = idx.line_span(s.layer, s.horizontal, s.line);
    bool found = false;
    for (std::int64_t i = first; i < last; ++i) {
      EXPECT_EQ(idx.lines()[i], s.line);
      if (idx.span_lo()[i] == s.span.lo && idx.span_hi()[i] == s.span.hi &&
          static_cast<std::int64_t>(idx.wires()[i]) == s.wire)
        found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_EQ(idx.line_span(99, true, 0).first, idx.line_span(99, true, 0).second);
}

TEST(WireStore, PushBackExtractRoundTrip) {
  WireStore s;
  Wire a;
  a.edge = 7;
  a.h_layer = 3;
  a.v_layer = 4;
  a.push({0, 0});
  a.push({5, 0});
  a.push({5, 9});
  Wire b;
  b.edge = 1;
  b.push({-2, -3});
  b.push({-2, 8});
  s.push_back(a);
  s.push_back(b);
  ASSERT_EQ(s.size(), 2);
  EXPECT_EQ(s.num_points(), 5);
  const Wire a2 = s.extract(0);
  EXPECT_EQ(a2.edge, 7);
  EXPECT_EQ(a2.h_layer, 3);
  EXPECT_EQ(a2.v_layer, 4);
  ASSERT_EQ(a2.npts, 3);
  EXPECT_EQ(a2.pts[2], (Point{5, 9}));
  EXPECT_EQ(s[1].front(), (Point{-2, -3}));
  EXPECT_EQ(s[1].back(), (Point{-2, 8}));
}

TEST(WireStore, ReplaceShiftsFollowingOffsets) {
  WireStore s;
  for (int k = 0; k < 3; ++k) {
    Wire w;
    w.edge = k;
    w.push({k, 0});
    w.push({k, 5});
    s.push_back(w);
  }
  Wire longer;
  longer.edge = 1;
  longer.push({10, 0});
  longer.push({14, 0});
  longer.push({14, 3});
  longer.push({20, 3});
  s.replace(1, longer);
  ASSERT_EQ(s.size(), 3);
  EXPECT_EQ(s[1].npts(), 4);
  EXPECT_EQ(s[1].pt(3), (Point{20, 3}));
  // Wire 2 must be untouched by the shift.
  EXPECT_EQ(s[2].npts(), 2);
  EXPECT_EQ(s[2].front(), (Point{2, 0}));
  EXPECT_EQ(s[2].back(), (Point{2, 5}));
  EXPECT_EQ(s.extract(2).edge, 2);
}

TEST(WireStore, BuildParallelMatchesSerialAppend) {
  const auto fill = [](std::int64_t i, Wire& w) {
    w.edge = i;
    w.h_layer = 1;
    w.v_layer = 2;
    w.push({i, -i});
    w.push({i + 3, -i});
    if (i % 2 == 0) w.push({i + 3, -i + 4});
  };
  const WireStore par = WireStore::build_parallel(100, 7, fill);
  WireStore ser;
  for (std::int64_t i = 0; i < 100; ++i) {
    Wire w;
    fill(i, w);
    ser.push_back(w);
  }
  ASSERT_EQ(par.size(), ser.size());
  ASSERT_EQ(par.num_points(), ser.num_points());
  for (std::int64_t i = 0; i <= par.size(); ++i)
    ASSERT_EQ(par.raw_offsets()[i], ser.raw_offsets()[i]);
  for (std::int64_t i = 0; i < par.size(); ++i) {
    ASSERT_EQ(par[i].edge(), ser[i].edge());
    for (int p = 0; p < par[i].npts(); ++p) ASSERT_EQ(par[i].pt(p), ser[i].pt(p));
  }
}

TEST(WireStore, RejectsCoordinatesBeyond32Bit) {
  WireStore s;
  Wire w;
  w.push({1ll << 40, 0});
  w.push({1ll << 40, 5});
  EXPECT_THROW(s.push_back(w), InvariantError);
}

// Regression: validating a layout with nodes but no wires used to hand
// `segment count - 1 = -1` to the chunked checker.  It must come back clean
// (wire/edge mismatch aside), not crash.
TEST(Validate, EmptyAndRouteFreeLayouts) {
  const auto g = topology::star_graph(3);
  Layout lay(g.num_vertices());
  for (std::int32_t v = 0; v < g.num_vertices(); ++v)
    lay.set_node_rect(v, {v * 10, 0, v * 10 + 1, 1});
  const auto rep = validate_layout(g, lay);
  EXPECT_FALSE(rep.ok);  // wires missing for every edge
  EXPECT_EQ(rep.num_segments, 0);
  EXPECT_EQ(rep.num_layers, 0);

  const topology::Graph empty(0);
  const auto rep2 = validate_layout(empty, Layout(0));
  EXPECT_TRUE(rep2.ok);
  EXPECT_EQ(rep2.num_segments, 0);
}

TEST(Layout, BoundingBoxCacheInvalidates) {
  Layout lay(1);
  lay.set_node_rect(0, {0, 0, 2, 2});
  EXPECT_EQ(lay.area(), 9);
  EXPECT_EQ(lay.area(), 9);  // cached hit
  Wire w;
  w.push({2, 1});
  w.push({10, 1});
  lay.add_wire(w);
  EXPECT_EQ(lay.width(), 11);
  lay.set_node_rect(0, {0, -5, 2, 2});
  EXPECT_EQ(lay.height(), 8);
  Wire w2 = lay.wire(0);
  w2.pts[1].x = 20;
  lay.replace_wire(0, w2);
  EXPECT_EQ(lay.width(), 21);
}

// Regression: installing a rebuilt WireStore wholesale (the bulk-build
// path route_grid uses) must invalidate the cached bounding box like every
// per-wire mutator does — a stale cache here would poison every downstream
// area/bisection measurement while the layout itself stays valid.
TEST(Layout, BoundingBoxCacheInvalidatesOnWireStoreRebuild) {
  Layout lay(1);
  lay.set_node_rect(0, {0, 0, 2, 2});
  Wire w;
  w.push({2, 1});
  w.push({10, 1});
  lay.add_wire(w);
  EXPECT_EQ(lay.width(), 11);  // cache the wide box

  WireStore rebuilt;
  Wire shrunk;
  shrunk.push({2, 1});
  shrunk.push({4, 1});
  rebuilt.push_back(shrunk);
  lay.set_wires(std::move(rebuilt));
  EXPECT_EQ(lay.width(), 5);  // shrinks: the stale 11 must not survive
  EXPECT_EQ(lay.bounding_box(), (Rect{0, 0, 4, 2}));

  // And a rebuild that grows the box, after the shrunk one was cached.
  WireStore grown;
  Wire wide;
  wide.push({2, 1});
  wide.push({30, 1});
  grown.push_back(wide);
  lay.set_wires(std::move(grown));
  EXPECT_EQ(lay.width(), 31);
}

}  // namespace
}  // namespace starlay::layout
