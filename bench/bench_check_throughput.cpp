/// \file bench_check_throughput.cpp
/// \brief Verification-subsystem throughput (DESIGN 3.11; infrastructure).
///
/// The fuzz sweep's value is cases-per-budget: a 30 s ctest slot must get
/// through enough (family, n, params, threads) tuples to make a seed-1 run
/// a meaningful gate.  The table splits one check run per family into its
/// build / oracle / metamorphic parts at the corpus-representative size, so
/// a slowdown in any tier shows up attributed; the final row runs the real
/// seeded sweep and reports cases/s and check-runs/s.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

#include "bench_util.hpp"
#include "starlay/check/fuzz.hpp"
#include "starlay/check/metamorphic.hpp"
#include "starlay/check/oracle.hpp"
#include "starlay/core/builder.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Corpus-representative size per family (mirrors tests/starcheck_corpus.txt):
/// big enough that the O(W^2) oracle pass dominates trivially small builds,
/// small enough that the whole table stays in seconds.
starlay::core::BuildParams rep_params(std::string_view family) {
  starlay::core::BuildParams p;
  p.n = 5;
  if (family == "transposition" || family.substr(0, 8) == "baseline") p.n = 4;
  if (family == "hcn" || family == "hfn") p.n = 3;
  if (family == "hypercube") p.n = 6;
  if (family == "complete2d" || family == "complete2d-compact") p.n = 8;
  if (family == "complete2d-directed") p.n = 7;
  if (family == "collinear" || family == "collinear-paper") p.n = 9;
  if (family.substr(0, 10) == "multilayer") {
    p.layers = 3;
    if (family != "multilayer-star") p.n = 3;
  }
  return p;
}

void print_table() {
  starlay::benchutil::header(
      "check-throughput: oracle + metamorphic cost per family, fuzz rate",
      "none (verification infrastructure; see DESIGN 3.11, EXPERIMENTS E17)");
  std::printf("%-22s %4s %8s %10s %10s %12s\n", "family", "n", "wires", "build-ms",
              "oracle-ms", "metamorph-ms");
  starlay::benchutil::JsonReport json("bench_check_throughput.json");
  for (const starlay::core::LayoutBuilder* b : starlay::core::all_builders()) {
    const starlay::core::BuildParams p = rep_params(b->name());

    auto t0 = Clock::now();
    starlay::core::BuildOutcome<starlay::core::BuildResult> built = b->try_build(p);
    const double build_ms = ms_since(t0);
    if (!built.ok()) {
      std::printf("%-22s %4d  build failed: %s\n", std::string(b->name()).c_str(), p.n,
                  built.error().message.c_str());
      continue;
    }

    t0 = Clock::now();
    const starlay::check::OracleReport orep =
        starlay::check::run_oracle(*b, p, built.value());
    const double oracle_ms = ms_since(t0);

    t0 = Clock::now();
    const starlay::check::MetamorphicReport mrep =
        starlay::check::run_metamorphic(*b, p);
    const double meta_ms = ms_since(t0);

    std::printf("%-22s %4d %8lld %10.2f %10.2f %12.2f%s\n",
                std::string(b->name()).c_str(), p.n,
                static_cast<long long>(built.value().routed.layout.num_wires()),
                build_ms, oracle_ms, meta_ms,
                orep.ok && mrep.ok ? "" : "  CHECK FAILED");
    json.add_row()
        .str("family", std::string(b->name()))
        .integer("n", p.n)
        .integer("wires", built.value().routed.layout.num_wires())
        .num("build_ms", build_ms)
        .num("oracle_ms", oracle_ms)
        .num("metamorphic_ms", meta_ms)
        .boolean("ok", orep.ok && mrep.ok);
  }

  // The real sweep, short budget: the number to watch is cases/s — the
  // ctest gate's coverage is budget_seconds x this rate.
  starlay::check::FuzzOptions fopt;
  fopt.seed = 1;
  fopt.budget_seconds = 5.0;
  const auto t0 = Clock::now();
  const starlay::check::FuzzReport frep = starlay::check::run_fuzz(fopt);
  const double secs = ms_since(t0) / 1000.0;
  std::printf("\nfuzz sweep (seed 1, %.0fs budget): %lld cases, %lld check runs"
              " -> %.1f cases/s, %.1f checks/s%s\n",
              fopt.budget_seconds, static_cast<long long>(frep.cases_run),
              static_cast<long long>(frep.builds_run),
              static_cast<double>(frep.cases_run) / secs,
              static_cast<double>(frep.builds_run) / secs,
              frep.ok ? "" : "  FAILURES FOUND");
  json.add_row()
      .str("family", "fuzz-sweep")
      .num("seconds", secs)
      .integer("cases", frep.cases_run)
      .integer("check_runs", frep.builds_run)
      .num("cases_per_s", static_cast<double>(frep.cases_run) / secs)
      .boolean("ok", frep.ok);
  json.write();
}

void BM_OracleStar(benchmark::State& state) {
  const starlay::core::LayoutBuilder* b = starlay::core::find_builder("star");
  starlay::core::BuildParams p;
  p.n = static_cast<int>(state.range(0));
  const auto built = b->try_build(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(starlay::check::run_oracle(*b, p, built.value()));
  }
}
BENCHMARK(BM_OracleStar)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

void BM_MetamorphicStar(benchmark::State& state) {
  const starlay::core::LayoutBuilder* b = starlay::core::find_builder("star");
  starlay::core::BuildParams p;
  p.n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(starlay::check::run_metamorphic(*b, p));
  }
}
BENCHMARK(BM_MetamorphicStar)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "bench_check_throughput")
