// E9 (Theorem 4.2): HCN/HFN bisection width is exactly N/4.
// Lower: BATT chain rounded up; upper: the diameter-link-confining cluster
// ordering.  Exact enumeration confirms at N = 16.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_util.hpp"
#include "starlay/bisect/bisect.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/topology/networks.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E9: HCN/HFN bisection width (Theorem 4.2)",
                    "B = N/4 exactly, via lb = ceil(N/4 - 0.05) and the "
                    "cluster-ordering cut");
  benchutil::row_labels(
      {"net", "h", "N", "lb(BATT)", "construction", "exact", "N/4"});
  for (int h : {2, 3, 4, 5}) {
    const std::int64_t N = std::int64_t{1} << (2 * h);
    const double lb_raw = core::bisection_lb_batt(N, core::hcn_te_time(static_cast<double>(N)));
    const auto lb = static_cast<std::int64_t>(std::ceil(lb_raw - 1e-9));
    for (bool folded : {false, true}) {
      const auto g = folded ? topology::hfn(h) : topology::hcn(h);
      const std::int64_t upper = bisect::hcn_cluster_bisection(g, h).width;
      std::string exact = "-";
      if (N <= 32) exact = std::to_string(bisect::exact_bisection(g).width);
      std::printf("%16s%16d%16lld%16lld%16lld%16s%16lld\n", folded ? "HFN" : "HCN", h,
                  static_cast<long long>(N), static_cast<long long>(lb),
                  static_cast<long long>(upper), exact.c_str(),
                  static_cast<long long>(N / 4));
    }
  }
  std::printf("\ncontrol: the naive [0, M/2) cluster split on HCN cuts N/4 + M/2\n"
              "(it severs every diameter link), confirming the ordering matters.\n");
}

void BM_ExactBisectionHcn16(benchmark::State& state) {
  const auto g = starlay::topology::hcn(2);
  for (auto _ : state) {
    auto r = starlay::bisect::exact_bisection(g);
    benchmark::DoNotOptimize(r.width);
  }
}
BENCHMARK(BM_ExactBisectionHcn16)->Unit(benchmark::kMillisecond);

void BM_ClusterCutHcn(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  const auto g = starlay::topology::hcn(h);
  for (auto _ : state) {
    auto r = starlay::bisect::hcn_cluster_bisection(g, h);
    benchmark::DoNotOptimize(r.width);
  }
}
BENCHMARK(BM_ClusterCutHcn)->Arg(3)->Arg(5);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "bisection_hcn")
