// E22: certified wirelength across families.
// Wirelength is a first-class certified quantity: every total printed here
// is the same number the oracle re-sums serially, the metamorphic battery
// pins across streaming/materialized/sharded modes, and (for the
// hypercube-like and 3-ary families) the exact host-embedding closed forms
// of formulas.hpp check as equalities.  The table re-measures the paper's
// star-vs-hypercube density question on the wirelength axis: total routed
// wirelength normalized by N^2 alongside area/N^2, across the star, the
// plain/folded/enhanced hypercubes, and the 3-ary n-cube at comparable
// node counts.
//
// The run is fully deterministic (construction is thread-invariant, pinned
// by the metamorphic relations), so BENCH_wirelength.json is compared by
// the bench_wirelength_drift gate with *exact* equality — any drift in a
// committed total is a construction change, not noise.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/core/formulas.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E22: certified wirelength across families",
                    "total/max wirelength are certified quantities; star vs "
                    "hypercube density holds on the wirelength axis");
  benchutil::row_labels({"family", "n", "N", "wires", "area", "wire_length",
                         "max_wire_length", "wl/N^2", "wl-grid-host"});

  struct Case {
    const char* family;
    std::vector<int> sizes;
  };
  // Comparable node counts: star 6 (720), Q_9/Q_10 (512/1024), 3^6 (729).
  const Case cases[] = {
      {"star", {4, 5, 6}},
      {"hypercube", {6, 8, 10}},
      {"folded-hypercube", {6, 8, 10}},
      {"enhanced-hypercube", {6, 8, 10}},
      {"3ary-cube", {3, 4, 6}},
  };

  benchutil::JsonReport report("BENCH_wirelength.json");
  double star_wl_density = 0.0;  // wl/N^2 at the largest star size
  double cube_wl_density = 0.0;  // wl/N^2 at the largest hypercube size
  for (const Case& c : cases) {
    const core::LayoutBuilder* b = core::find_builder(c.family);
    if (!b) continue;
    for (int n : c.sizes) {
      core::BuildParams params;
      params.n = n;
      const core::BuildResult built = b->build(params);
      const layout::Layout& lay = built.routed.layout;
      const double N = static_cast<double>(built.graph.num_vertices());
      const std::int64_t wl = lay.total_wire_length();
      const std::int64_t wl_max = lay.max_wire_length();
      const double density = static_cast<double>(wl) / (N * N);
      // The registered exact host-embedding claim, where the family has one
      // (-1 otherwise) — committed so the drift gate also pins the closed
      // forms themselves.
      const core::BoundSpec* spec = b->bound_spec();
      const std::int64_t wl_grid =
          spec && spec->wl_grid_exact ? spec->wl_grid_exact(params) : -1;
      std::printf("%16s%16d%16.0f%16lld%16lld%16lld%16lld%16.5f%16lld\n", c.family, n, N,
                  static_cast<long long>(lay.num_wires()),
                  static_cast<long long>(lay.area()), static_cast<long long>(wl),
                  static_cast<long long>(wl_max), density, static_cast<long long>(wl_grid));
      benchutil::JsonReport::Row& row = report.add_row();
      row.str("family", c.family)
          .integer("n", n)
          .integer("N", static_cast<long long>(N))
          .integer("wires", static_cast<long long>(lay.num_wires()))
          .integer("area", static_cast<long long>(lay.area()))
          .integer("wire_length", static_cast<long long>(wl))
          .integer("max_wire_length", static_cast<long long>(wl_max))
          .num("wl_over_n2", density)
          .integer("wl_grid_host", static_cast<long long>(wl_grid));
      if (std::string(c.family) == "star") star_wl_density = density;
      if (std::string(c.family) == "hypercube") cube_wl_density = density;
    }
  }
  if (report.write()) std::printf("\nwrote BENCH_wirelength.json\n");
  std::printf("\nheadline on the wirelength axis (hypercube wl/N^2 over star wl/N^2,\n"
              "largest measured sizes): %.3f  (area-axis claim: %.3f)\n",
              cube_wl_density / star_wl_density, starlay::core::star_vs_hypercube_ratio());
}

void BM_TotalWireLengthStar6(benchmark::State& state) {
  const starlay::core::LayoutBuilder* b = starlay::core::find_builder("star");
  starlay::core::BuildParams p;
  p.n = 6;
  const starlay::core::BuildResult built = b->build(p);
  for (auto _ : state)
    benchmark::DoNotOptimize(built.routed.layout.total_wire_length());
}
BENCHMARK(BM_TotalWireLengthStar6)->Unit(benchmark::kMillisecond);

void BM_ThreeAryCubeLayout(benchmark::State& state) {
  const starlay::core::LayoutBuilder* b = starlay::core::find_builder("3ary-cube");
  starlay::core::BuildParams p;
  p.n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const starlay::core::BuildResult built = b->build(p);
    benchmark::DoNotOptimize(built.routed.layout.total_wire_length());
  }
}
BENCHMARK(BM_ThreeAryCubeLayout)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "wirelength")
