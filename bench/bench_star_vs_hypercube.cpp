// E6 (headline / Section 1): the Akers-Krishnamurthy question.
// Claims: (1) a star graph packs tighter than a similar-size hypercube —
// leading constants 1/16 vs 4/9, ratio 64/9 = 7.1(1); (2) an n-star can
// NOT be laid out as efficiently as the (much smaller) n-cube.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/support/math.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E6: star vs hypercube (the 1986 open question)",
                    "similar size: star wins by up to 64/9 = 7.11x; same n: n-cube wins");
  std::printf("\nmeasured area / nodes^2 (lower = denser packing):\n");
  benchutil::row_labels({"network", "nodes", "area", "area/N^2", "claimedconst"});
  struct Row {
    const char* name;
    double nodes, area, claimed;
  };
  std::vector<Row> rows;
  for (int n : {5, 6, 7}) {
    const auto r = core::star_layout(n);
    const double N = static_cast<double>(factorial(n));
    rows.push_back({"star", N, static_cast<double>(r.routed.layout.area()), core::star_area(1.0)});
  }
  for (int d : {7, 9, 12}) {
    const auto r = core::hypercube_layout(d);
    const double N = static_cast<double>(1 << d);
    rows.push_back({"hypercube", N, static_cast<double>(r.routed.layout.area()), core::hypercube_area(1.0)});
  }
  for (const auto& r : rows)
    std::printf("%16s%16.0f%16.0f%16.5f%16.5f\n", r.name, r.nodes, r.area,
                r.area / (r.nodes * r.nodes), r.claimed);

  std::printf("\nheadline ratio (hypercube const / star const): claimed %.4f\n",
              core::star_vs_hypercube_ratio());
  std::printf("measured at closest sizes (star 7 vs Q_12): %.4f\n",
              (rows[5].area / (rows[5].nodes * rows[5].nodes)) /
                  (rows[2].area / (rows[2].nodes * rows[2].nodes)));

  std::printf("\nsame-n comparison (claim: N^2/16 for n! nodes >> (4/9) 4^n for 2^n):\n");
  benchutil::row_labels({"n", "star-area", "n-cube-area", "star/cube"});
  for (int n : {5, 6, 7}) {
    const double sa = static_cast<double>(core::star_layout(n).routed.layout.area());
    const double ca = static_cast<double>(core::hypercube_layout(n).routed.layout.area());
    std::printf("%16d%16.0f%16.0f%16.1f\n", n, sa, ca, sa / ca);
  }
}

void BM_StarLayoutN6(benchmark::State& state) {
  for (auto _ : state) {
    auto r = starlay::core::star_layout(6);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_StarLayoutN6)->Unit(benchmark::kMillisecond);

void BM_HypercubeLayoutD10(benchmark::State& state) {
  for (auto _ : state) {
    auto r = starlay::core::hypercube_layout(10);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_HypercubeLayoutD10)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "star_vs_hypercube")
