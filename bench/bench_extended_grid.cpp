// E12 (extended-grid node sizes + BAUT): the paper's smaller-node regime
// (Lemma 2.1 / Theorem 3.7 allow node sides below the degree) realized by
// four-sided attachment routing, and the BAUT unicast-throughput bound of
// Section 3.1.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/comm/unicast.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E12a: extended-grid (four-sided) complete-graph layouts",
                    "node side drops from m-1 toward (m-1)/2; area shrinks");
  benchutil::row_labels({"m", "w(2side)", "area(2side)", "w(4side)", "area(4side)", "gain"});
  for (int m : {16, 36, 64, 100}) {
    const auto two = core::complete2d_layout(m);
    const auto four_l = core::complete2d_compact_layout(m);
    const bool ok = layout::validate_layout(four_l.graph, four_l.routed.layout).ok;
    std::printf("%16d%16lld%16lld%16lld%16lld%16.2f%s\n", m,
                static_cast<long long>(two.routed.node_size),
                static_cast<long long>(two.routed.layout.area()),
                static_cast<long long>(four_l.routed.node_size),
                static_cast<long long>(four_l.routed.layout.area()),
                static_cast<double>(two.routed.layout.area()) /
                    static_cast<double>(four_l.routed.layout.area()),
                ok ? "" : "   ** INVALID **");
  }

  std::printf("\nstar graphs (degree n-1 is small: jog overhead ~ node shrink):\n");
  benchutil::row_labels({"n", "area(2side)", "area(4side)", "gain"});
  for (int n : {5, 6}) {
    const auto two = core::star_layout(n);
    const auto four_l = core::star_layout_compact(n);
    std::printf("%16d%16lld%16lld%16.2f\n", n,
                static_cast<long long>(two.routed.layout.area()),
                static_cast<long long>(four_l.routed.layout.area()),
                static_cast<double>(two.routed.layout.area()) /
                    static_cast<double>(four_l.routed.layout.area()));
  }

  benchutil::header("E12b: BAUT — unicast-throughput lower bounds (Sec. 3.1)",
                    "B >= lambda N / 4 with measured achievable lambda");
  benchutil::row_labels({"network", "N", "lambda", "B>=", "actual-B"});
  struct Net {
    const char* name;
    topology::Graph g;
    double b;
  };
  std::vector<Net> nets;
  nets.push_back({"star4", topology::star_graph(4), 8});
  nets.push_back({"hcn2", topology::hcn(2), 4});
  nets.push_back({"Q5", topology::hypercube(5), 16});
  nets.push_back({"K16", topology::complete_graph(16), 64});
  for (auto& net : nets) {
    const comm::DistanceTable dt(net.g);
    const auto r = comm::route_random_permutations(net.g, dt, 8);
    std::printf("%16s%16d%16.3f%16.2f%16.0f\n", net.name, net.g.num_vertices(), r.rate,
                comm::bisection_lb_baut(net.g.num_vertices(), r.rate), net.b);
  }

  std::printf("\ntransposition graph (Sec. 2.4's 'other networks'):\n");
  benchutil::row_labels({"n", "nodes", "deg", "area", "valid"});
  for (int n : {3, 4}) {
    const auto r = core::transposition_layout(n);
    std::printf("%16d%16d%16d%16lld%16s\n", n, r.graph.num_vertices(), r.graph.degree(0),
                static_cast<long long>(r.routed.layout.area()),
                layout::validate_layout(r.graph, r.routed.layout).ok ? "yes" : "NO");
  }
}

void BM_CompactK64(benchmark::State& state) {
  for (auto _ : state) {
    auto r = starlay::core::complete2d_compact_layout(64);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_CompactK64)->Unit(benchmark::kMillisecond);

void BM_UnicastStar5(benchmark::State& state) {
  const auto g = starlay::topology::star_graph(5);
  const starlay::comm::DistanceTable dt(g);
  for (auto _ : state) {
    auto r = starlay::comm::route_random_permutations(g, dt, 4);
    benchmark::DoNotOptimize(r.rate);
  }
}
BENCHMARK(BM_UnicastStar5)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "extended_grid")
