// E4 (Lemma 2.3 / Theorem 3.8): multilayer X-Y star layouts.
// Claim: area = N^2/(4L^2) (even L) or N^2/(4(L^2-1)) (odd L); odd L
// strictly beats L-1.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E4: multilayer star layouts (Lemma 2.3, Thm 3.8)",
                    "area = N^2/(4L^2) even L, N^2/(4(L^2-1)) odd L");
  for (int n : {6, 7}) {
    const double N = static_cast<double>(factorial(n));
    std::printf("\nn = %d (N = %.0f):\n", n, N);
    benchutil::row_labels({"L", "area", "claimA(L)", "gain-vs-L2", "claim-gain", "valid"});
    double area2 = 0;
    for (int L : {2, 3, 4, 5, 6, 8}) {
      const auto r = core::multilayer_star_layout(n, L);
      const double area = static_cast<double>(r.routed.layout.area());
      if (L == 2) area2 = area;
      const bool valid = layout::validate_layout(r.graph, r.routed.layout).ok;
      std::printf("%16d%16.0f%16.0f%16.3f%16.3f%16s\n", L, area,
                  core::multilayer_star_area(N, L), area2 / area,
                  core::multilayer_star_area(N, 2) / core::multilayer_star_area(N, L),
                  valid ? "yes" : "NO");
    }
  }
  std::printf("\n(gain-vs-L2 trails claim-gain at small n because node rectangles\n"
              " do not shrink with L; the channel part scales as claimed.)\n");
}

void BM_MultilayerStar(benchmark::State& state) {
  const int L = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::multilayer_star_layout(6, L);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_MultilayerStar)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "star_multilayer")
