// E3 (Lemma 2.2 / Theorem 3.7): star-graph layout area.
// Claim: area = N^2/16 + o(N^2), 72x below Sykora-Vrt'o, within 1 + o(1)
// of the BATT lower bound.  measured/claim must decrease toward 1.
// STARLAY_BIG=1 adds n = 8 (about a second); STARLAY_BIG=2 adds n = 9.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/core/star_model.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E3: star-graph layout area (Lemma 2.2, Thm 3.7)",
                    "area -> N^2/16; 72x below Sykora-Vrt'o 4.5N^2; "
                    "upper/lower -> 1 + o(1)");
  benchutil::row_labels(
      {"n", "N", "area", "N^2/16", "ratio", "model-ratio", "vsSykoraVrto", "valid"});
  std::vector<int> sizes{4, 5, 6, 7};
  const char* big = std::getenv("STARLAY_BIG");
  if (big) sizes.push_back(8);
  if (big && std::atoi(big) >= 2) sizes.push_back(9);  // ~1 min, ~2 GB
  for (int n : sizes) {
    const auto r = core::star_layout(n);
    const double N = static_cast<double>(factorial(n));
    const double area = static_cast<double>(r.routed.layout.area());
    const bool valid = layout::validate_layout(r.graph, r.routed.layout).ok;
    const double model = core::star_area_model(n).area;
    std::printf("%16d%16.0f%16.0f%16.0f%16.3f%16.3f%16.4f%16s\n", n, N, area,
                core::star_area(N), area / core::star_area(N), area / model,
                area / core::sykora_vrto_star_area(N), valid ? "yes" : "NO");
  }
  std::printf("\n(n >= 9: the ratio continues toward 1; the per-level channel tail\n"
              " decays like 1/sqrt(n) and node rectangles like n*sqrt(N)/N.)\n");
}

void BM_StarLayout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::star_layout(n);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_StarLayout)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_StarValidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto r = starlay::core::star_layout(n);
  for (auto _ : state) {
    auto rep = starlay::layout::validate_layout(r.graph, r.routed.layout);
    benchmark::DoNotOptimize(rep.ok);
  }
}
BENCHMARK(BM_StarValidate)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table)
