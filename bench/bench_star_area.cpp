// E3 (Lemma 2.2 / Theorem 3.7): star-graph layout area.
// Claim: area = N^2/16 + o(N^2), 72x below Sykora-Vrt'o, within 1 + o(1)
// of the BATT lower bound.  measured/claim must decrease toward 1.
// n = 9 (362,880 nodes, 1.45M wires) runs by default since the SoA
// geometry core; STARLAY_BENCH_MAX_N caps the sweep (e.g. =7 for the
// perf-regression gate).  Alongside the printed table, the run emits
// BENCH_star_area.json with per-n construction/validation timings (best of
// 3 runs per phase), the validate per-phase breakdown (index build, rules,
// overlap, via, crossing, clearance), the active SIMD kernel level, area
// ratios, wirelengths, and the process peak RSS after each size.  Each size
// also streams once through the optimized pass pipeline (--passes
// refine,compact) into a certifier, emitting area_compacted /
// wire_length_compacted / area_over_claim_compacted / compact_valid;
// STARLAY_BENCH_PASSES=0 skips that run (the timing gates do, to keep
// their best-of sweeps lean).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <optional>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/core/star_model.hpp"
#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"
#include "starlay/support/thread_pool.hpp"

namespace {

void print_table() {
  using namespace starlay;
  using clock = std::chrono::steady_clock;
  benchutil::header("E3: star-graph layout area (Lemma 2.2, Thm 3.7)",
                    "area -> N^2/16; 72x below Sykora-Vrt'o 4.5N^2; "
                    "upper/lower -> 1 + o(1)");
  benchutil::row_labels({"n", "N", "area", "N^2/16", "ratio", "model-ratio",
                         "vsSykoraVrto", "wire_length", "build-ms", "rss-mb", "valid"});
  std::vector<int> sizes{4, 5, 6, 7, 8, 9};
  if (const char* cap = std::getenv("STARLAY_BENCH_MAX_N")) {
    const int max_n = std::atoi(cap);
    while (sizes.size() > 1 && sizes.back() > max_n) sizes.pop_back();
  }
  bool run_passes = true;
  if (const char* p = std::getenv("STARLAY_BENCH_PASSES")) run_passes = std::atoi(p) != 0;
  benchutil::JsonReport report("BENCH_star_area.json");
  for (int n : sizes) {
    // Best-of-3 per phase: construct and validate each repeat and keep the
    // fastest run, so one scheduler hiccup cannot masquerade as a phase
    // regression (the same rule the bench_regression.py gate applies across
    // whole bench invocations).
    constexpr int kReps = 3;
    double construct_ms = 0, validate_ms = 0;
    layout::ValidatePhases phases;
    bool valid = false;
    std::optional<core::StarLayoutResult> r;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = clock::now();
      r.emplace(core::star_layout(n));
      const auto t1 = clock::now();
      const layout::ValidationReport vr = layout::validate_layout(r->graph, r->routed.layout);
      const auto t2 = clock::now();
      const double c = std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double v = std::chrono::duration<double, std::milli>(t2 - t1).count();
      if (rep == 0 || c < construct_ms) construct_ms = c;
      if (rep == 0 || v < validate_ms) {
        validate_ms = v;
        phases = vr.phases;
      }
      valid = vr.ok;
    }
    // Optimized pipeline: one streamed pass through refine+compact (the
    // full --passes ladder), certified on the fly.  Deterministic, so one
    // run is the measurement.
    double optimize_ms = 0;
    std::int64_t area_compacted = -1, wire_length_compacted = -1;
    bool compact_valid = false;
    if (run_passes) {
      core::PassList passes;
      passes.refine = true;
      passes.compact = true;
      const auto t0 = clock::now();
      layout::StreamingCertifier cert;
      core::star_layout_stream_passes(n, passes, cert);
      optimize_ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
      const layout::StreamReport& sr = cert.report();
      area_compacted = sr.area;
      wire_length_compacted = sr.total_wire_length;
      compact_valid = sr.validation.ok;
    }

    const double N = static_cast<double>(factorial(n));
    const double area = static_cast<double>(r->routed.layout.area());
    const double model = core::star_area_model(n).area;
    const double rss_mb = benchutil::peak_rss_mb();
    std::printf("%16d%16.0f%16.0f%16.0f%16.3f%16.3f%16.4f%16lld%16.1f%16.0f%16s\n", n, N,
                area, core::star_area(N), area / core::star_area(N), area / model,
                area / core::sykora_vrto_star_area(N),
                static_cast<long long>(r->routed.layout.total_wire_length()), construct_ms,
                rss_mb, valid ? "yes" : "NO");
    benchutil::JsonReport::Row& row = report.add_row();
    row.integer("n", n)
        .integer("N", static_cast<long long>(N))
        .num("area", area)
        .num("claim_n2_over_16", core::star_area(N))
        .num("area_over_claim", area / core::star_area(N))
        .integer("wire_length", static_cast<long long>(r->routed.layout.total_wire_length()))
        .integer("max_wire_length", static_cast<long long>(r->routed.layout.max_wire_length()))
        .num("construct_ms", construct_ms)
        .num("validate_ms", validate_ms)
        .num("validate_index_ms", phases.index_ms)
        .num("validate_rules_ms", phases.rules_ms)
        .num("validate_overlap_ms", phases.overlap_ms)
        .num("validate_via_ms", phases.via_ms)
        .num("validate_crossing_ms", phases.crossing_ms)
        .num("validate_clearance_ms", phases.clearance_ms)
        .str("simd", layout::kernels::level_name(layout::kernels::active_level()))
        .num("peak_rss_mb", rss_mb)
        .integer("threads", support::ThreadPool::instance().num_threads())
        .boolean("valid", valid);
    if (run_passes) {
      row.num("area_compacted", static_cast<double>(area_compacted))
          .integer("wire_length_compacted", static_cast<long long>(wire_length_compacted))
          .num("area_over_claim_compacted",
               static_cast<double>(area_compacted) / core::star_area(N))
          .num("optimize_ms", optimize_ms)
          .boolean("compact_valid", compact_valid);
    }
  }
  if (report.write()) std::printf("\nwrote BENCH_star_area.json\n");
  std::printf("\n(n >= 9: the ratio continues toward 1; the per-level channel tail\n"
              " decays like 1/sqrt(n) and node rectangles like n*sqrt(N)/N.)\n");
}

void BM_StarLayout(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::star_layout(n);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_StarLayout)->Arg(5)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_StarValidate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto r = starlay::core::star_layout(n);
  for (auto _ : state) {
    auto rep = starlay::layout::validate_layout(r.graph, r.routed.layout);
    benchmark::DoNotOptimize(rep.ok);
  }
}
BENCHMARK(BM_StarValidate)->Arg(6)->Arg(7)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "star_area")
