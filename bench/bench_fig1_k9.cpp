// E2-figure (Fig. 1): the undirected K_9 layout on a 3x3 node grid.
// The paper's figure: after halving the directed layout's 12 tracks per
// channel, 6 vertical tracks remain between neighboring columns and 10/2/6
// horizontal tracks above the three rows.  We print our channel histogram
// next to those figures and emit the ASCII art of the layout.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/render/render.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E2-figure: undirected K_9 on a 3x3 grid (Fig. 1)",
                    "directed K_9 used 12 tracks/channel; undirected keeps "
                    "6 vertical and 10/2/6 horizontal");
  const auto r = core::complete2d_layout(9);
  std::printf("grid: %dx%d   area: %lld   valid: %s\n", r.grid_rows, r.grid_cols,
              static_cast<long long>(r.routed.layout.area()),
              layout::validate_layout(r.graph, r.routed.layout).ok ? "yes" : "NO");
  std::printf("horizontal tracks per row channel (paper: 10, 2, 6):");
  for (std::int32_t t : r.routed.row_channel_tracks) std::printf(" %d", t);
  std::printf("\nvertical tracks per column channel (paper: 6, 6, 6):  ");
  for (std::int32_t t : r.routed.col_channel_tracks) std::printf(" %d", t);
  std::printf("\ntotal horizontal: ours=%d paper=18; total vertical: ours=%d paper=18\n",
              r.routed.row_channel_tracks[0] + r.routed.row_channel_tracks[1] +
                  r.routed.row_channel_tracks[2],
              r.routed.col_channel_tracks[0] + r.routed.col_channel_tracks[1] +
                  r.routed.col_channel_tracks[2]);
  std::printf("\nASCII rendering ('#' = node, '-'/'|' = wires, '+' = crossing):\n%s\n",
              render::to_ascii(r.routed.layout).c_str());
}

void BM_K9Layout(benchmark::State& state) {
  for (auto _ : state) {
    auto r = starlay::core::complete2d_layout(9);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_K9Layout);

void BM_K9Ascii(benchmark::State& state) {
  const auto r = starlay::core::complete2d_layout(9);
  for (auto _ : state) {
    auto art = starlay::render::to_ascii(r.routed.layout);
    benchmark::DoNotOptimize(art.size());
  }
}
BENCHMARK(BM_K9Ascii);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "fig1_k9")
