// E8 (Theorem 4.1): star-graph bisection width = N/4 +- o(N).
// Lower: BATT chain; upper: exact (n=4), KL and layout-slice witnesses.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/bisect/bisect.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E8: star-graph bisection width (Theorem 4.1)",
                    "B = N/4 +- o(N); substar cut overshoots by n/(n-1)");
  benchutil::row_labels({"n", "N/4", "lb(BATT)", "exact", "KL", "slice", "substar"});
  for (int n : {4, 5, 6}) {
    const std::int64_t N = factorial(n);
    const double lb = core::bisection_lb_batt(N, core::star_te_time(n, static_cast<double>(N)));
    const auto r = core::star_layout(n);
    std::string exact = "-";
    if (N <= 32) exact = std::to_string(bisect::exact_bisection(r.graph).width);
    std::string kl = "-";
    if (N <= 200) kl = std::to_string(bisect::kernighan_lin_bisection(r.graph, 4).width);
    const auto slice = bisect::layout_slice_bisection(r.graph, r.structure.placement);
    std::string substar = "-";
    if (n % 2 == 0) substar = std::to_string(bisect::star_substar_bisection(r.graph, n).width);
    std::printf("%16lld%16lld%16.1f%16s%16s%16lld%16s\n", static_cast<long long>(n),
                static_cast<long long>(N / 4), lb, exact.c_str(), kl.c_str(),
                static_cast<long long>(slice.width), substar.c_str());
  }
  std::printf("\n(the slice column is the balanced cut read off our own layout —\n"
              " the paper's 'area implies bisection' direction made concrete.)\n");
}

void BM_ExactBisectionStar4(benchmark::State& state) {
  const auto g = starlay::topology::star_graph(4);
  for (auto _ : state) {
    auto r = starlay::bisect::exact_bisection(g);
    benchmark::DoNotOptimize(r.width);
  }
}
BENCHMARK(BM_ExactBisectionStar4)->Unit(benchmark::kMillisecond);

void BM_KlBisectionStar5(benchmark::State& state) {
  const auto g = starlay::topology::star_graph(5);
  for (auto _ : state) {
    auto r = starlay::bisect::kernighan_lin_bisection(g, 2);
    benchmark::DoNotOptimize(r.width);
  }
}
BENCHMARK(BM_KlBisectionStar5)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "bisection_star")
