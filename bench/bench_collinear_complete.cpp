// E1 (Lemma 2.1a / Theorem 3.5): collinear K_m track counts.
// Claim: exactly floor(m^2/4) tracks, strictly optimal (equals the
// bisection width); 25% below the Chen-Agrawal bound.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/layout/validate.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E1: collinear complete-graph layout (Lemma 2.1a, Thm 3.5)",
                    "tracks = floor(m^2/4), optimal; both backends agree");
  benchutil::row_labels({"m", "tracks(LE)", "tracks(paper)", "floor(m^2/4)", "valid", "area"});
  for (int m : {4, 8, 16, 32, 64, 128}) {
    const auto le = core::collinear_complete_layout(m, core::TrackBackend::kLeftEdge);
    const auto pr = core::collinear_complete_layout(m, core::TrackBackend::kPaperRule);
    const bool valid = layout::validate_layout(le.graph, le.routed.layout).ok &&
                       layout::validate_layout(pr.graph, pr.routed.layout).ok;
    std::printf("%16d%16d%16d%16lld%16s%16lld\n", m, le.tracks, pr.tracks,
                static_cast<long long>(core::collinear_complete_tracks(m)),
                valid ? "yes" : "NO", static_cast<long long>(le.routed.layout.area()));
  }
}

void BM_CollinearLeftEdge(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::collinear_complete_layout(m);
    benchmark::DoNotOptimize(r.tracks);
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_CollinearLeftEdge)->Arg(16)->Arg(64)->Arg(128)->Complexity();

void BM_CollinearPaperRule(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::collinear_complete_layout(m, starlay::core::TrackBackend::kPaperRule);
    benchmark::DoNotOptimize(r.tracks);
  }
}
BENCHMARK(BM_CollinearPaperRule)->Arg(16)->Arg(64)->Arg(128);

void BM_ValidateCollinear(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto r = starlay::core::collinear_complete_layout(m);
  for (auto _ : state) {
    auto rep = starlay::layout::validate_layout(r.graph, r.routed.layout);
    benchmark::DoNotOptimize(rep.ok);
  }
}
BENCHMARK(BM_ValidateCollinear)->Arg(64)->Arg(128);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "collinear_complete")
