// E7b (Theorems 3.1-3.5, 3.7, 3.8, 3.10): the lower-bound story.
// Claims: BATT beats Sykora-Vrt'o's star lower bound 12.25x (single TE)
// plus another ~4x (pipelined); upper/lower ratios -> 1 + o(1).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/lower_bounds.hpp"
#include "starlay/support/math.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E7b: area lower bounds (Theorems 3.1-3.5, 3.7, 3.10)",
                    "upper/lower -> 1 + o(1); 12.25x then 4x over [22]");
  std::printf("\nstar graph (Theorem 3.7):\n");
  benchutil::row_labels({"n", "upper", "lb-single", "lb-pipelined", "ratio", "vs[22]lb"});
  for (int n : {6, 8, 10, 12, 16, 20}) {
    const auto s = core::star_area_bounds(n);
    const double N = static_cast<double>(s.nodes);
    std::printf("%16d%16.3e%16.3e%16.3e%16.4f%16.2f\n", n, s.upper_formula, s.lb_batt_single,
                s.lb_batt_pipelined, s.ratio,
                s.lb_batt_pipelined / core::sykora_vrto_star_lower_bound(N));
  }
  std::printf("\nHCN/HFN (Theorem 3.10):\n");
  benchutil::row_labels({"h", "N", "upper", "lb-pipelined", "ratio"});
  for (int h : {3, 5, 8, 12}) {
    const auto s = core::hcn_area_bounds(h);
    std::printf("%16d%16lld%16.3e%16.3e%16.6f\n", h, static_cast<long long>(s.nodes),
                s.upper_formula, s.lb_batt_pipelined, s.ratio);
  }
  std::printf("\ncomplete graph (Theorem 3.5):\n");
  benchutil::row_labels({"m", "upper", "lb", "ratio"});
  for (int m : {8, 32, 128}) {
    const auto s = core::complete_area_bounds(m);
    std::printf("%16d%16.3e%16.3e%16.4f\n", m, s.upper_formula, s.lb_batt_single, s.ratio);
  }
  std::printf("\nmultilayer star X-Y bounds (Theorem 3.8), n = 16:\n");
  benchutil::row_labels({"L", "upper", "lb", "ratio"});
  for (int L : {2, 3, 4, 6, 9}) {
    const auto s = core::star_xy_bounds(16, L);
    std::printf("%16d%16.3e%16.3e%16.4f\n", L, s.upper_formula, s.lb_batt, s.ratio);
  }
}

void BM_StarBounds(benchmark::State& state) {
  for (auto _ : state) {
    auto s = starlay::core::star_area_bounds(static_cast<int>(state.range(0)));
    benchmark::DoNotOptimize(s.ratio);
  }
}
BENCHMARK(BM_StarBounds)->Arg(10)->Arg(20);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "lower_bounds")
