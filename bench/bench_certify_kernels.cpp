/// \file bench_certify_kernels.cpp
/// \brief Certification-kernel throughput: scalar vs SSE4 vs AVX2 (E18).
///
/// The SIMD layer's claim is per-sweep, not end-to-end: each kernel in the
/// dispatch table should process segments faster at every vector width, and
/// the win must survive small buckets (the SegmentIndex's per-(layer, line)
/// buckets are usually tens of segments, not thousands).  The table sweeps
/// bucket sizes 8..4096 over a fixed ~4M-segment workload and reports
/// segments/s per kernel per compiled level, so a regression in any one
/// variant is attributed to that variant.  Levels the CPU cannot run are
/// skipped (the table prints what was measured; the JSON only contains
/// measured rows).
///
/// Emits BENCH_certify_kernels.json; the peak-RSS footer comes from
/// STARLAY_BENCH_MAIN like every other bench.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "starlay/layout/kernels/kernels.hpp"

namespace {

namespace kr = starlay::layout::kernels;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kTotalSegs = 1 << 22;  // ~4M records per measurement
constexpr int kReps = 3;                      // best-of, sheds scheduler noise

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::uint64_t next_u64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// One synthetic workload shared by every (kernel, level) measurement so
/// the comparison is like for like: canonical-order buckets with ~1%
/// adjacent conflicts, the mix the validator sees on a clean layout.
struct Workload {
  std::vector<std::int32_t> line, lo, hi;     // seg-conflict inputs
  std::vector<std::int32_t> x, y, zlo, zhi;   // via-conflict inputs
  std::vector<std::uint32_t> wire;
  std::vector<std::int32_t> packed;           // deinterleave4 input (AoS)
  std::vector<std::uint64_t> hashes;          // fold_hashes4 input

  explicit Workload(std::int64_t bucket) {
    line.resize(kTotalSegs);
    lo.resize(kTotalSegs);
    hi.resize(kTotalSegs);
    x.resize(kTotalSegs);
    y.resize(kTotalSegs);
    zlo.resize(kTotalSegs);
    zhi.resize(kTotalSegs);
    wire.resize(kTotalSegs);
    packed.resize(4 * kTotalSegs);
    hashes.resize(kTotalSegs);
    std::uint64_t state = 0xbe7c + static_cast<std::uint64_t>(bucket);
    for (std::int64_t i = 0; i < kTotalSegs; ++i) {
      const std::int64_t in_bucket = i % bucket;
      line[i] = static_cast<std::int32_t>(in_bucket / 8);  // runs of 8 per line
      // lo ascends within a line run; ~1% of spans reach into the next one.
      lo[i] = static_cast<std::int32_t>(in_bucket * 16);
      hi[i] = lo[i] + 8 + static_cast<std::int32_t>(next_u64(state) % 100 == 0 ? 12 : 0);
      x[i] = static_cast<std::int32_t>(in_bucket / 4);
      y[i] = 0;
      zlo[i] = static_cast<std::int32_t>(in_bucket % 4) * 4;
      zhi[i] = zlo[i] + (next_u64(state) % 100 == 0 ? 6 : 2);
      wire[i] = static_cast<std::uint32_t>(next_u64(state) % 1024);
      packed[4 * i + 0] = line[i];
      packed[4 * i + 1] = lo[i];
      packed[4 * i + 2] = hi[i];
      packed[4 * i + 3] = static_cast<std::int32_t>(wire[i]);
      hashes[i] = next_u64(state);
    }
  }
};

/// Best-of-kReps wall time of fn(), in ms.
template <typename Fn>
double best_ms(const Fn& fn) {
  double best = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = Clock::now();
    fn();
    const double ms = ms_since(t0);
    if (ms < best) best = ms;
  }
  return best;
}

void print_table() {
  starlay::benchutil::header(
      "certify-kernels: per-kernel segments/s, scalar vs SSE4 vs AVX2",
      "none (infrastructure; DESIGN 3.12, EXPERIMENTS E18 — validate as fast as construct)");

  std::vector<kr::SimdLevel> levels;
  for (kr::SimdLevel level :
       {kr::SimdLevel::kScalar, kr::SimdLevel::kSSE4, kr::SimdLevel::kAVX2})
    if (kr::level_supported(level)) levels.push_back(level);

  std::printf("workload: %lld segments per measurement, best of %d\n",
              static_cast<long long>(kTotalSegs), kReps);
  std::printf("%-14s %7s", "kernel", "bucket");
  for (kr::SimdLevel level : levels) std::printf(" %14s", kr::level_name(level));
  std::printf("   (Mseg/s)\n");

  starlay::benchutil::JsonReport json("BENCH_certify_kernels.json");
  volatile std::int64_t sink = 0;  // keep the counting loops observable

  for (const std::int64_t bucket : {8, 32, 128, 512, 2048, 4096}) {
    const Workload w(bucket);
    const std::int64_t nbuckets = kTotalSegs / bucket;

    struct KernelRun {
      const char* name;
      double (*run)(const kr::KernelTable&, const Workload&, std::int64_t, std::int64_t,
                    volatile std::int64_t&);
    };
    static constexpr KernelRun kRuns[] = {
        {"seg-overlap",
         [](const kr::KernelTable& K, const Workload& wl, std::int64_t bsz,
            std::int64_t nb, volatile std::int64_t& out) {
           return best_ms([&] {
             std::int64_t total = 0;
             for (std::int64_t b = 0; b < nb; ++b)
               total += K.count_seg_conflicts(wl.line.data() + b * bsz,
                                              wl.lo.data() + b * bsz,
                                              wl.hi.data() + b * bsz, bsz);
             out = total;
           });
         }},
        {"via-conflict",
         [](const kr::KernelTable& K, const Workload& wl, std::int64_t bsz,
            std::int64_t nb, volatile std::int64_t& out) {
           return best_ms([&] {
             std::int64_t total = 0;
             for (std::int64_t b = 0; b < nb; ++b)
               total += K.count_via_conflicts(
                   wl.x.data() + b * bsz, wl.y.data() + b * bsz,
                   wl.zlo.data() + b * bsz, wl.zhi.data() + b * bsz,
                   wl.wire.data() + b * bsz, bsz);
             out = total;
           });
         }},
        {"deinterleave4",
         [](const kr::KernelTable& K, const Workload& wl, std::int64_t bsz,
            std::int64_t nb, volatile std::int64_t& out) {
           static std::vector<std::int32_t> a, b2, c, d;
           a.resize(kTotalSegs);
           b2.resize(kTotalSegs);
           c.resize(kTotalSegs);
           d.resize(kTotalSegs);
           return best_ms([&] {
             for (std::int64_t b = 0; b < nb; ++b)
               K.deinterleave4(wl.packed.data() + 4 * b * bsz, bsz, a.data() + b * bsz,
                               b2.data() + b * bsz, c.data() + b * bsz,
                               d.data() + b * bsz);
             out = a[0] + d[kTotalSegs - 1];
           });
         }},
        {"fold-hashes4",
         [](const kr::KernelTable& K, const Workload& wl, std::int64_t bsz,
            std::int64_t nb, volatile std::int64_t& out) {
           return best_ms([&] {
             std::uint64_t lanes[4] = {1, 2, 3, 4};
             for (std::int64_t b = 0; b < nb; ++b)
               K.fold_hashes4(wl.hashes.data() + b * bsz, bsz, lanes);
             out = static_cast<std::int64_t>(lanes[0] ^ lanes[1] ^ lanes[2] ^ lanes[3]);
           });
         }},
    };

    for (const KernelRun& run : kRuns) {
      std::printf("%-14s %7lld", run.name, static_cast<long long>(bucket));
      for (kr::SimdLevel level : levels) {
        const double ms = run.run(kr::table(level), w, bucket, nbuckets, sink);
        const double mseg_s = static_cast<double>(kTotalSegs) / 1e6 / (ms / 1e3);
        std::printf(" %14.1f", mseg_s);
        json.add_row()
            .str("kernel", run.name)
            .integer("bucket", static_cast<long long>(bucket))
            .str("simd", kr::level_name(level))
            .num("ms", ms)
            .num("segments_per_s", mseg_s * 1e6);
      }
      std::printf("\n");
    }
  }
  json.add_row().str("kernel", "footer").num("peak_rss_mb", starlay::benchutil::peak_rss_mb());
  json.write();
}

void BM_SegConflicts(benchmark::State& state) {
  const Workload w(state.range(0));
  const std::int64_t bucket = state.range(0);
  const kr::KernelTable& K = kr::active();
  for (auto _ : state) {
    std::int64_t total = 0;
    for (std::int64_t b = 0; b + 1 <= kTotalSegs / bucket; ++b)
      total += K.count_seg_conflicts(w.line.data() + b * bucket, w.lo.data() + b * bucket,
                                     w.hi.data() + b * bucket, bucket);
    benchmark::DoNotOptimize(total);
  }
  state.SetItemsProcessed(state.iterations() * kTotalSegs);
}
BENCHMARK(BM_SegConflicts)->Arg(64)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "bench_certify_kernels")
