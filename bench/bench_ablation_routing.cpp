// E11 (ablation): attribute the paper's area gains to their ingredients —
// track sharing, hierarchical placement, and the orientation rule.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/baseline.hpp"
#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/networks.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E11: routing ablations",
                    "each removed ingredient must cost measurable area");
  std::printf("\nstar n = 6 (N = 720):\n");
  benchutil::row_labels({"variant", "area", "vs-optimized"});
  const auto opt = core::star_layout(6);
  const double a_opt = static_cast<double>(opt.routed.layout.area());
  std::printf("%16s%16.0f%16.2f\n", "optimized", a_opt, 1.0);
  {
    const auto r = core::unbalanced_orientation_layout(opt.graph, opt.structure.placement);
    std::printf("%16s%16.0f%16.2f\n", "no-orientation",
                static_cast<double>(r.layout.area()),
                static_cast<double>(r.layout.area()) / a_opt);
  }
  {
    const auto r = core::unordered_grid_layout(opt.graph);
    std::printf("%16s%16.0f%16.2f\n", "no-hierarchy", static_cast<double>(r.layout.area()),
                static_cast<double>(r.layout.area()) / a_opt);
  }
  {
    const auto r = core::naive_collinear_layout(opt.graph);
    std::printf("%16s%16.0f%16.2f\n", "1-track/edge", static_cast<double>(r.layout.area()),
                static_cast<double>(r.layout.area()) / a_opt);
  }

  std::printf("\ncollinear K_m backends (tracks must agree):\n");
  benchutil::row_labels({"m", "left-edge", "paper-rule"});
  for (int m : {16, 64}) {
    std::printf("%16d%16d%16d\n", m,
                core::collinear_complete_layout(m, core::TrackBackend::kLeftEdge).tracks,
                core::collinear_complete_layout(m, core::TrackBackend::kPaperRule).tracks);
  }
}

void BM_OptimizedStar6(benchmark::State& state) {
  for (auto _ : state) {
    auto r = starlay::core::star_layout(6);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_OptimizedStar6)->Unit(benchmark::kMillisecond);

void BM_UnorderedStar6(benchmark::State& state) {
  const auto g = starlay::topology::star_graph(6);
  for (auto _ : state) {
    auto r = starlay::core::unordered_grid_layout(g);
    benchmark::DoNotOptimize(r.layout.area());
  }
}
BENCHMARK(BM_UnorderedStar6)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "ablation_routing")
