// E19: out-of-core sharded certification — shard-count scaling and the
// bounded-RSS contract (core/star_shard.hpp).
// Claim: the sharded engine reproduces the streaming certifier's verdict
// and canonical wire fingerprint at every shard count, with per-process
// peak RSS bounded by the banded working set rather than by n! — star
// n = 11 (39.9M vertices, 199.6M edges) certifies in under 2 GB per
// process on a machine whose materialized layout would need >100 GB.
//
// Default sweep (n <= 8): shard counts 1/2/4/8 sequentially plus a forked
// 2-worker run, each row cross-checked for fingerprint identity against
// the first.  STARLAY_BENCH_SHARD_N raises the size; at n >= 9 the sweep
// collapses to a single auto-sharded row (these are scaling runs — the
// bench_regression.py --shard-rss gate runs one n = 10 row and fails if
// any process exceeds the 2048 MiB ceiling).  STARLAY_BENCH_SHARD_WORKERS
// sets the worker count for that single row (default 2).
//
// Emits BENCH_shard_certify.json; the peak-RSS footer comes from
// STARLAY_BENCH_MAIN like every other bench.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "starlay/core/star_shard.hpp"
#include "starlay/support/math.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct SweepRow {
  int shards = 0;   // 0 = auto (engine picks from the edge count)
  int workers = 1;
};

std::string hex16(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

void print_table() {
  using namespace starlay;
  benchutil::header(
      "E19: sharded out-of-core certification (shard scaling, bounded RSS)",
      "fingerprint identical at every shard/worker count; peak RSS per "
      "process bounded by the band working set, not n!");
  int n = 7;
  if (const char* env = std::getenv("STARLAY_BENCH_SHARD_N")) n = std::atoi(env);
  int single_workers = 2;
  if (const char* env = std::getenv("STARLAY_BENCH_SHARD_WORKERS"))
    single_workers = std::atoi(env);

  // n >= 9 rows run for minutes; those are scaling (or gate) runs, one
  // configuration each, not a sweep.
  std::vector<SweepRow> sweep;
  if (n >= 9) {
    sweep.push_back({0, single_workers});
  } else {
    sweep = {{1, 1}, {2, 1}, {4, 1}, {8, 1}, {4, 2}};
  }

  benchutil::row_labels({"n", "N", "shards", "workers", "wall-s", "coord-mb",
                         "worker-mb", "spill-mb", "fp-match", "valid"});
  benchutil::JsonReport report("BENCH_shard_certify.json");
  std::uint64_t first_fp = 0;
  bool have_fp = false;
  for (const SweepRow& row : sweep) {
    core::ShardOptions opt;
    opt.num_shards = row.shards;
    opt.workers = row.workers;
    opt.spill_dir = "starlay_spill_bench";
    const auto t0 = Clock::now();
    auto out = core::star_certify_sharded(n, opt);
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (!out.ok()) {
      std::printf("%16d%16s  build failed: %s\n", n, "-",
                  out.error().message.c_str());
      continue;
    }
    const core::ShardReport& r = out.value();
    const double coord_mb =
        static_cast<double>(r.coordinator_peak_rss_bytes) / (1024.0 * 1024.0);
    const double worker_mb =
        static_cast<double>(r.worker_peak_rss_bytes) / (1024.0 * 1024.0);
    const double spill_mb =
        static_cast<double>(r.spill_bytes_written) / (1024.0 * 1024.0);
    if (!have_fp) {
      first_fp = r.wire_fingerprint;
      have_fp = true;
    }
    const bool fp_match = r.wire_fingerprint == first_fp;
    const bool valid = r.stream.validation.ok;
    std::printf("%16d%16lld%16d%16d%16.2f%16.0f%16.0f%16.0f%16s%16s\n", n,
                static_cast<long long>(factorial(n)), r.num_shards,
                r.num_workers, wall_s, coord_mb, worker_mb, spill_mb,
                fp_match ? "yes" : "NO", valid ? "yes" : "NO");
    report.add_row()
        .integer("n", n)
        .integer("N", static_cast<long long>(factorial(n)))
        .integer("shards", r.num_shards)
        .integer("workers", r.num_workers)
        .num("wall_s", wall_s)
        .num("coordinator_rss_mb", coord_mb)
        .num("worker_rss_mb", worker_mb)
        .num("spill_mb", spill_mb)
        .str("fingerprint", hex16(r.wire_fingerprint))
        .boolean("fp_match", fp_match)
        .boolean("valid", valid);
  }
  if (report.write()) std::printf("\nwrote BENCH_shard_certify.json\n");
}

void BM_ShardCertify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  starlay::core::ShardOptions opt;
  opt.num_shards = 2;
  opt.spill_dir = "starlay_spill_bench";
  for (auto _ : state) {
    auto out = starlay::core::star_certify_sharded(n, opt);
    benchmark::DoNotOptimize(out.ok());
  }
}
BENCHMARK(BM_ShardCertify)->Arg(5)->Arg(6)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "shard_certify")
