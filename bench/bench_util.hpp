#pragma once
/// \file bench_util.hpp
/// \brief Shared table printing for the experiment benches.
///
/// Every bench binary first prints its experiment table (paper-claimed vs
/// measured) and then runs google-benchmark timings for the constructive
/// kernels.  The tables are what EXPERIMENTS.md records.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

namespace starlay::benchutil {

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void row_labels(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------------");
  std::printf("\n");
}

inline void cell(const char* fmt, double v) { std::printf(fmt, v); }

/// Standard main: print the experiment table, then run timings.
#define STARLAY_BENCH_MAIN(print_table_fn)                          \
  int main(int argc, char** argv) {                                 \
    print_table_fn();                                               \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

}  // namespace starlay::benchutil
