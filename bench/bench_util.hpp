#pragma once
/// \file bench_util.hpp
/// \brief Shared table printing for the experiment benches.
///
/// Every bench binary first prints its experiment table (paper-claimed vs
/// measured) and then runs google-benchmark timings for the constructive
/// kernels.  The tables are what EXPERIMENTS.md records.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "starlay/support/telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace starlay::benchutil {

/// Peak resident set size of this process in MiB (0 when unavailable).
/// The scaling benches report it alongside timings: at star dimension 9 the
/// layout's memory footprint, not time, is the binding constraint.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

/// Machine-readable companion to the printed tables: accumulates flat rows
/// of (key, value) pairs and writes them as a JSON array of objects, in the
/// spirit of google-benchmark's --benchmark_out.  Every bench binary also
/// accepts --benchmark_out=<file> natively (handled by benchmark::Initialize
/// in STARLAY_BENCH_MAIN) for the timing section; this reporter covers the
/// experiment tables, which benchmark's own reporter cannot see.
class JsonReport {
 public:
  class Row {
   public:
    Row& num(const std::string& key, double v) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      fields_.push_back({key, buf});
      return *this;
    }
    Row& integer(const std::string& key, long long v) {
      fields_.push_back({key, std::to_string(v)});
      return *this;
    }
    Row& boolean(const std::string& key, bool v) {
      fields_.push_back({key, v ? "true" : "false"});
      return *this;
    }
    Row& str(const std::string& key, const std::string& v) {
      fields_.push_back({key, "\"" + v + "\""});  // values are identifier-like
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the accumulated rows; returns false (and keeps quiet) when the
  /// file cannot be opened, so benches never fail on read-only dirs.
  bool write() const {
    std::ofstream out(path_);
    if (!out) return false;
    out << "[\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "  {";
      const auto& fields = rows_[r].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        out << "\"" << fields[f].first << "\": " << fields[f].second;
        if (f + 1 < fields.size()) out << ", ";
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    return static_cast<bool>(out);
  }

 private:
  std::string path_;
  std::vector<Row> rows_;
};

inline void header(const std::string& experiment, const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void row_labels(const std::vector<std::string>& cols) {
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "---------------");
  std::printf("\n");
}

inline void cell(const char* fmt, double v) { std::printf(fmt, v); }

/// Telemetry is on by default for the experiment tables (every bench ends
/// with a per-phase breakdown); STARLAY_BENCH_TELEMETRY=0 disables it —
/// that is how the overhead gate measures the instrumented-but-untraced
/// fast path against an active trace.
inline bool telemetry_enabled() {
  const char* env = std::getenv("STARLAY_BENCH_TELEMETRY");
  return env == nullptr || std::string_view(env) != "0";
}

inline void begin_bench_trace() {
#if STARLAY_TELEMETRY
  if (telemetry_enabled()) ::starlay::support::telemetry::start_trace();
#endif
}

/// Ends the table-phase trace and prints the per-phase summary; \p bench
/// labels the block so multi-bench logs stay attributable.
inline void end_bench_trace(const char* bench) {
#if STARLAY_TELEMETRY
  if (!telemetry_enabled()) return;
  const auto rep = ::starlay::support::telemetry::stop_trace();
  std::printf("\nper-phase telemetry (%s):\n%s", bench, rep.summary_table().c_str());
#else
  (void)bench;
#endif
}

/// Standard main: print the experiment table (followed by the process's
/// peak RSS — at star dimension >= 9 memory, not time, is the binding
/// constraint, so every experiment records it) with a telemetry trace
/// around it, then run timings (untraced: google-benchmark owns those).
#define STARLAY_BENCH_MAIN(print_table_fn, bench_name)              \
  int main(int argc, char** argv) {                                 \
    ::starlay::benchutil::begin_bench_trace();                      \
    print_table_fn();                                               \
    ::starlay::benchutil::end_bench_trace(bench_name);              \
    std::printf("\npeak RSS after tables: %.1f MiB\n",              \
                ::starlay::benchutil::peak_rss_mb());               \
    ::benchmark::Initialize(&argc, argv);                           \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                          \
    ::benchmark::Shutdown();                                        \
    return 0;                                                       \
  }

}  // namespace starlay::benchutil
