// E2 (Lemma 2.1b): 2-D complete-graph layout areas.
// Claim: undirected m^4/16 + O(m^3.5); directed m^4/4 + O(m^3.5).
// The "model" column includes the paper's explicit second-order node term
// (width = m2 (m2 floor(m1^2/4) + m - 1)), against which the measured
// ratio should be ~1.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/math.hpp"

namespace {

double model_area(int m) {
  const auto f = starlay::grid_factors(m);
  const double w = f.cols * (static_cast<double>(f.cols) * (f.rows * f.rows / 4) + m - 1);
  const double h = f.rows * (static_cast<double>(f.rows) * (f.cols * f.cols / 4) + m - 1);
  return w * h;
}

void print_table() {
  using namespace starlay;
  benchutil::header("E2: 2-D complete-graph layouts (Lemma 2.1b)",
                    "undirected area -> m^4/16; directed -> m^4/4 (4x)");
  benchutil::row_labels({"m", "area", "m^4/16", "ratio", "model-ratio", "valid"});
  for (int m : {9, 16, 25, 36, 64, 100, 144}) {
    const auto r = core::complete2d_layout(m);
    const double area = static_cast<double>(r.routed.layout.area());
    const bool valid = layout::validate_layout(r.graph, r.routed.layout).ok;
    std::printf("%16d%16.0f%16.0f%16.3f%16.3f%16s\n", m, area, core::complete2d_area(m),
                area / core::complete2d_area(m), area / model_area(m), valid ? "yes" : "NO");
  }
  std::printf("\ndirected vs undirected (claim: 4x):\n");
  benchutil::row_labels({"m", "undirected", "directed", "ratio"});
  for (int m : {16, 36, 64}) {
    const double u = static_cast<double>(core::complete2d_layout(m).routed.layout.area());
    const double d = static_cast<double>(core::complete2d_directed_layout(m).routed.layout.area());
    std::printf("%16d%16.0f%16.0f%16.3f\n", m, u, d, d / u);
  }
}

void BM_Complete2D(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::complete2d_layout(m);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_Complete2D)->Arg(16)->Arg(64)->Arg(144);

void BM_Complete2DDirected(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::complete2d_directed_layout(m);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_Complete2DDirected)->Arg(16)->Arg(64);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "complete2d")
