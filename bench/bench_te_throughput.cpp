// E7 (Lemmas 3.6/3.9 substrate): total-exchange times.
// Claims: star TE achievable in 2N + o(N) (single) and nN/(n-1) amortized
// (pipelined); HCN/HFN throughput -> 1/N; hypercube TE = N/2 exactly.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "starlay/comm/te.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E7: total-exchange times (Lemmas 3.6 / 3.9)",
                    "greedy all-port simulation vs the paper's formulas");
  benchutil::row_labels(
      {"network", "N", "greedy-1", "greedy-2/2", "2N", "lb(N^2/4B)", "shortest"});
  struct Net {
    std::string name;
    topology::Graph g;
    std::int64_t bisection;
  };
  std::vector<Net> nets;
  nets.push_back({"star4", topology::star_graph(4), 8});
  nets.push_back({"star5", topology::star_graph(5), 32});   // KL upper bound witness
  nets.push_back({"hcn(h=2)", topology::hcn(2), 4});
  nets.push_back({"hfn(h=2)", topology::hfn(2), 4});
  nets.push_back({"Q4", topology::hypercube(4), 8});
  nets.push_back({"K16", topology::complete_graph(16), 64});
  for (auto& net : nets) {
    const comm::DistanceTable dt(net.g);
    const auto one = comm::greedy_te(net.g, dt, 1);
    const auto two = comm::greedy_te(net.g, dt, 2);
    const auto lb =
        comm::te_time_lower_bounds(net.g.num_vertices(), net.bisection, net.g.max_degree());
    std::printf("%16s%16d%16lld%16.1f%16d%16lld%16s\n", net.name.c_str(),
                net.g.num_vertices(), static_cast<long long>(one.steps),
                static_cast<double>(two.steps) / 2.0, 2 * net.g.num_vertices(),
                static_cast<long long>(lb.bisection),
                one.all_shortest_paths ? "yes" : "no");
  }

  std::printf("\noptimal hypercube TE schedule (Konig coloring):\n");
  benchutil::row_labels({"d", "steps", "N/2", "optimal"});
  for (int d : {3, 5, 7, 9, 11}) {
    const auto s = comm::hypercube_te_schedule(d);
    const std::int64_t steps = comm::execute_hypercube_te(s);
    std::printf("%16d%16lld%16d%16s\n", d, static_cast<long long>(steps), (1 << d) / 2,
                steps == (1 << d) / 2 ? "yes" : "NO");
  }
}

void BM_GreedyTeStar5(benchmark::State& state) {
  const auto g = starlay::topology::star_graph(5);
  const starlay::comm::DistanceTable dt(g);
  for (auto _ : state) {
    auto r = starlay::comm::greedy_te(g, dt);
    benchmark::DoNotOptimize(r.steps);
  }
}
BENCHMARK(BM_GreedyTeStar5)->Unit(benchmark::kMillisecond);

void BM_HypercubeTeSchedule(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto s = starlay::comm::hypercube_te_schedule(d);
    benchmark::DoNotOptimize(s.steps);
  }
}
BENCHMARK(BM_HypercubeTeSchedule)->Arg(6)->Arg(9)->Arg(11)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "te_throughput")
