// E5 (Lemma 2.4 / Theorem 3.10): HCN/HFN layout areas.
// Claim: area = N^2/16 + o(N^2) for both; diameter links cost only
// lower-order area.

#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_util.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/layout/validate.hpp"

namespace {

void print_table() {
  using namespace starlay;
  benchutil::header("E5: HCN / HFN layout area (Lemma 2.4, Thm 3.10)",
                    "area -> N^2/16 for both networks");
  benchutil::row_labels({"h", "N", "HCN-area", "HFN-area", "N^2/16", "HCN-ratio", "HFN-ratio"});
  std::vector<int> sizes{2, 3, 4, 5};
  if (std::getenv("STARLAY_BIG")) sizes.push_back(6);
  for (int h : sizes) {
    const double N = static_cast<double>(1 << (2 * h));
    const auto rc = core::hcn_layout(h);
    const auto rf = core::hfn_layout(h);
    const double ac = static_cast<double>(rc.routed.layout.area());
    const double af = static_cast<double>(rf.routed.layout.area());
    if (!layout::validate_layout(rc.graph, rc.routed.layout).ok ||
        !layout::validate_layout(rf.graph, rf.routed.layout).ok)
      std::printf("INVALID LAYOUT at h=%d\n", h);
    std::printf("%16d%16.0f%16.0f%16.0f%16.0f%16.3f%16.3f\n", h, N, ac, af,
                core::hcn_area(N), ac / core::hcn_area(N), af / core::hcn_area(N));
  }
  std::printf("\n(ratios decrease toward 1; at small N the (log2 N + 1)-sized nodes\n"
              " dominate, exactly the o(N^2) the paper's extended grid absorbs.)\n");
}

void BM_HcnLayout(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::hcn_layout(h);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_HcnLayout)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_HfnLayout(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto r = starlay::core::hfn_layout(h);
    benchmark::DoNotOptimize(r.routed.layout.area());
  }
}
BENCHMARK(BM_HfnLayout)->Arg(3)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

}  // namespace

STARLAY_BENCH_MAIN(print_table, "hcn_hfn_area")
