#include "starlay/serve/json.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace starlay::serve {

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  bool consume(char c) {
    if (eof() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consume_word(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos + 4 > text.size()) return false;
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = text[pos + static_cast<std::size_t>(k)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else return false;
    }
    pos += 4;
    *out = v;
    return true;
  }

  static void append_utf8(std::string* s, std::uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (true) {
      if (eof()) return false;
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control char
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (eof()) return false;
      const char esc = text[pos++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            if (!consume('\\') || !consume('u')) return false;
            std::uint32_t lo = 0;
            if (!parse_hex4(&lo) || lo < 0xDC00 || lo > 0xDFFF) return false;
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default: return false;
      }
    }
  }

  bool parse_number(Json* out) {
    const std::size_t start = pos;
    if (consume('-')) {}
    if (eof()) return false;
    if (!consume('0')) {
      if (eof() || peek() < '1' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || peek() < '0' || peek() > '9') return false;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        *out = Json(static_cast<std::int64_t>(v));
        return true;
      }
      // Out of int64 range: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) return false;
    *out = Json(d);
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (eof()) return false;
    const char c = peek();
    if (c == 'n') { if (!consume_word("null")) return false; *out = Json(); return true; }
    if (c == 't') { if (!consume_word("true")) return false; *out = Json(true); return true; }
    if (c == 'f') { if (!consume_word("false")) return false; *out = Json(false); return true; }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) { *out = std::move(arr); return true; }
      while (true) {
        Json item;
        if (!parse_value(&item, depth + 1)) return false;
        arr.push_back(std::move(item));
        skip_ws();
        if (consume(']')) break;
        if (!consume(',')) return false;
      }
      *out = std::move(arr);
      return true;
    }
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) { *out = std::move(obj); return true; }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (!consume(':')) return false;
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        obj.set(std::move(key), std::move(value));
        skip_ws();
        if (consume('}')) break;
        if (!consume(',')) return false;
      }
      *out = std::move(obj);
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return false;
  }
};

void dump_string(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    const unsigned char uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (uc < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", uc);
          *out += buf;
        } else {
          out->push_back(c);  // UTF-8 bytes pass through
        }
    }
  }
  out->push_back('"');
}

void dump_value(const Json& j, std::string* out) {
  switch (j.type()) {
    case Json::Type::kNull: *out += "null"; return;
    case Json::Type::kBool: *out += j.as_bool() ? "true" : "false"; return;
    case Json::Type::kInt: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%" PRId64, j.as_int());
      *out += buf;
      return;
    }
    case Json::Type::kDouble: {
      // %.17g round-trips every double; trim to the shortest spelling a
      // reader parses back exactly is overkill for telemetry numbers.
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", j.as_double());
      *out += buf;
      return;
    }
    case Json::Type::kString: dump_string(j.as_string(), out); return;
    case Json::Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out->push_back(',');
        first = false;
        dump_value(item, out);
      }
      out->push_back(']');
      return;
    }
    case Json::Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [key, value] : j.members()) {
        if (!first) out->push_back(',');
        first = false;
        dump_string(key, out);
        out->push_back(':');
        dump_value(value, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

const Json* Json::find(std::string_view key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, &out);
  return out;
}

std::optional<Json> Json::parse(std::string_view text) {
  Parser p{text};
  Json value;
  if (!p.parse_value(&value, 0)) return std::nullopt;
  p.skip_ws();
  if (!p.eof()) return std::nullopt;  // trailing garbage
  return value;
}

}  // namespace starlay::serve
