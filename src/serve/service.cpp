#include "starlay/serve/service.hpp"

#include <condition_variable>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "starlay/layout/wire_sink.hpp"
#include "starlay/render/render.hpp"
#include "starlay/serve/protocol.hpp"
#include "starlay/support/telemetry.hpp"

namespace starlay::serve {

namespace {

namespace tel = support::telemetry;

core::BuildError invalid(std::string message) {
  core::BuildError err;
  err.code = core::BuildErrorCode::kInvalidArgument;
  err.message = std::move(message);
  return err;
}

/// Estimated resident footprint of a snapshot: the wire store's SoA
/// buffers, the node rectangles, the graph's edge list, and the report
/// strings.  An estimate, not an accounting — it only has to make the LRU
/// budget proportional to reality.
std::int64_t estimate_bytes(const CachedLayout& c) {
  const layout::WireStore& w = c.layout.wires();
  std::int64_t bytes = 0;
  bytes += w.num_points() * 8;  // packed points
  bytes += (w.size() + 1) * static_cast<std::int64_t>(sizeof(std::uint32_t));
  bytes += w.size() * static_cast<std::int64_t>(sizeof(layout::WireStore::Meta));
  bytes += static_cast<std::int64_t>(c.layout.node_rects().size()) *
           static_cast<std::int64_t>(sizeof(layout::Rect));
  bytes += c.graph.num_edges() * static_cast<std::int64_t>(sizeof(topology::Edge));
  for (const std::string& e : c.validation.errors)
    bytes += static_cast<std::int64_t>(e.size());
  bytes += static_cast<std::int64_t>(c.key.size() + c.family.size() + sizeof(CachedLayout));
  return bytes;
}

}  // namespace

std::string_view cache_source_name(CacheSource s) {
  switch (s) {
    case CacheSource::kHit: return "hit";
    case CacheSource::kMiss: return "miss";
    case CacheSource::kJoin: return "join";
  }
  return "hit";
}

struct LayoutService::Impl {
  struct Flight {
    std::shared_ptr<const CachedLayout> snapshot;  ///< set by the leader
    core::BuildError error;                        ///< set when snapshot is null
    bool done = false;
    std::condition_variable cv;
  };

  struct Entry {
    std::shared_ptr<const CachedLayout> snapshot;
    std::list<std::string>::iterator lru_it;  ///< position in `lru`
  };

  Options opt;

  /// Guards every field below.  Never held while building.
  mutable std::mutex mu;
  std::unordered_map<std::string, Entry> cache;
  std::list<std::string> lru;  ///< front = most recently used key
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights;
  ServiceStats st;

  /// The exclusive execution lane: the ThreadPool's job state, the forced
  /// SIMD level, the pool size, and the telemetry trace are all
  /// process-global, so exactly one request may use them at a time.
  std::mutex lane;

  void touch(Entry& e) {
    lru.splice(lru.begin(), lru, e.lru_it);  // O(1), iterator stays valid
  }

  /// Drops least-recently-used snapshots until the budget holds, always
  /// keeping at least the newest entry (an over-budget singleton stays:
  /// evicting it would just rebuild it on every request).
  void evict_over_budget() {
    while (st.bytes > opt.cache_bytes && lru.size() > 1) {
      const std::string& victim = lru.back();
      auto it = cache.find(victim);
      st.bytes -= it->second.snapshot->bytes;
      --st.entries;
      ++st.evictions;
      cache.erase(it);
      lru.pop_back();
    }
  }
};

LayoutService::LayoutService() : LayoutService(Options()) {}
LayoutService::LayoutService(Options opt) : impl_(new Impl) { impl_->opt = opt; }
LayoutService::~LayoutService() = default;

ServiceResult LayoutService::acquire(const core::BuildRequest& request) {
  ServiceResult res;

  core::BuildOutcome<const core::LayoutBuilder*> resolved = request.resolve();
  if (!resolved.ok()) {
    res.error = resolved.error();
    res.source = CacheSource::kMiss;
    return res;
  }
  const core::LayoutBuilder* builder = resolved.value();
  const std::string key = request.canonical_key(*builder);

  std::shared_ptr<Impl::Flight> flight;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    if (auto it = impl_->cache.find(key); it != impl_->cache.end()) {
      impl_->touch(it->second);
      ++impl_->st.hits;
      res.snapshot = it->second.snapshot;
      res.source = CacheSource::kHit;
      return res;
    }
    if (auto it = impl_->flights.find(key); it != impl_->flights.end()) {
      // Someone is already building this key: join their flight.
      ++impl_->st.joins;
      std::shared_ptr<Impl::Flight> theirs = it->second;
      theirs->cv.wait(lock, [&] { return theirs->done; });
      res.snapshot = theirs->snapshot;  // immutable once done
      res.error = theirs->error;
      res.source = CacheSource::kJoin;
      return res;
    }
    ++impl_->st.misses;
    flight = std::make_shared<Impl::Flight>();
    impl_->flights.emplace(key, flight);
  }

  // Flight leader: build outside the state mutex, inside the lane.
  res.source = CacheSource::kMiss;
  std::shared_ptr<CachedLayout> built;
  core::BuildError build_error;
  {
    std::lock_guard<std::mutex> lane(impl_->lane);
    const core::ScopedRequestRuntime runtime(request.options);
    const bool traced = request.options.trace;
    if (traced) tel::start_trace();

    layout::MaterializingSink sink;
    auto cached = std::make_shared<CachedLayout>();
    core::BuildOutcome<layout::RouteStats> out =
        builder->try_build_stream(request, sink, &cached->graph);
    if (out.ok()) {
      cached->key = key;
      cached->family = std::string(builder->name());
      cached->params = request.params;
      cached->passes = request.passes;
      cached->stats = out.value();
      cached->node_size = out.value().node_size;
      cached->layout = sink.take_layout();
      cached->validation = layout::validate_layout(cached->graph, cached->layout);
      cached->bytes = estimate_bytes(*cached);
      built = std::move(cached);
    } else {
      build_error = out.error();
    }
    if (traced) res.trace_json = tel::stop_trace().to_json();
  }

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (built) {
      ++impl_->st.builds_run;
      impl_->lru.push_front(key);
      impl_->cache.emplace(key, Impl::Entry{built, impl_->lru.begin()});
      ++impl_->st.entries;
      impl_->st.bytes += built->bytes;
      impl_->evict_over_budget();
      flight->snapshot = built;
      res.snapshot = std::move(built);
    } else {
      // Errors are not cached: the flight's joiners share this error, but
      // the next request for the key gets a fresh attempt.
      flight->error = build_error;
      res.error = std::move(build_error);
    }
    flight->done = true;
    flight->cv.notify_all();
    impl_->flights.erase(key);
  }
  return res;
}

bisect::BisectionResult LayoutService::bisect(const CachedLayout& snapshot) {
  // layout_slice_bisection runs pool jobs; serialize with builds.
  std::lock_guard<std::mutex> lane(impl_->lane);
  return bisect::layout_slice_bisection(snapshot.graph, snapshot.layout);
}

ServiceStats LayoutService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ServiceStats s = impl_->st;
  s.byte_budget = impl_->opt.cache_bytes;
  return s;
}

std::string LayoutService::handle_line(std::string_view line, bool* shutdown) {
  core::BuildOutcome<ProtocolRequest> parsed = parse_request(line);
  if (!parsed.ok()) return error_response(0, parsed.error()).dump();
  const ProtocolRequest& req = parsed.value();

  if (req.method == "ping")
    return ok_response(req.id, req.method, "", "", Json("pong")).dump();
  if (req.method == "shutdown") {
    if (shutdown != nullptr) *shutdown = true;
    return ok_response(req.id, req.method, "", "", Json(true)).dump();
  }
  if (req.method == "stats") {
    const ServiceStats s = stats();
    Json result = Json::object();
    result.set("hits", Json(s.hits));
    result.set("misses", Json(s.misses));
    result.set("joins", Json(s.joins));
    result.set("evictions", Json(s.evictions));
    result.set("builds_run", Json(s.builds_run));
    result.set("entries", Json(s.entries));
    result.set("bytes", Json(s.bytes));
    result.set("byte_budget", Json(s.byte_budget));
    return ok_response(req.id, req.method, "", "", std::move(result)).dump();
  }

  // Everything else is a layout method: it needs a resolvable request.
  if (req.build.family.empty())
    return error_response(req.id, invalid("missing 'family'")).dump();
  if (!req.n_set) return error_response(req.id, invalid("missing 'n'")).dump();
  if (req.method == "render-window" && !req.have_window)
    return error_response(req.id, invalid("method 'render-window' requires 'window'")).dump();

  ServiceResult res = acquire(req.build);
  if (!res.ok()) return error_response(req.id, res.error).dump();
  const CachedLayout& c = *res.snapshot;

  Json result = Json::object();
  if (req.method == "build" || req.method == "measure") {
    result.set("vertices", Json(static_cast<std::int64_t>(c.graph.num_vertices())));
    result.set("edges", Json(c.graph.num_edges()));
    result.set("wires", Json(c.layout.num_wires()));
    result.set("layers", Json(static_cast<std::int64_t>(c.layout.num_layers())));
    result.set("width", Json(c.layout.width()));
    result.set("height", Json(c.layout.height()));
    result.set("area", Json(c.layout.area()));
    result.set("node_size", Json(c.node_size));
    result.set("wire_length", Json(c.layout.total_wire_length()));
    result.set("max_wire_length", Json(c.layout.max_wire_length()));
    if (req.method == "build") {
      result.set("valid", Json(c.validation.ok));
      result.set("verdict", Json(c.validation.summary()));
    }
  } else if (req.method == "certify") {
    result.set("valid", Json(c.validation.ok));
    result.set("verdict", Json(c.validation.summary()));
    Json errors = Json::array();
    for (const std::string& e : c.validation.errors) errors.push_back(Json(e));
    result.set("errors", std::move(errors));
  } else if (req.method == "bisect") {
    const bisect::BisectionResult b = bisect(c);
    std::int64_t side0 = 0;
    for (const std::uint8_t s : b.side) side0 += (s == 0) ? 1 : 0;
    result.set("width", Json(b.width));
    result.set("vertices", Json(static_cast<std::int64_t>(b.side.size())));
    result.set("side0", Json(side0));  // witness balance: floor(N/2) vs ceil(N/2)
  } else {  // render-window (the method set is closed by parse_request)
    render::SvgOptions ropt;
    ropt.window = req.window;
    result.set("svg", Json(render::to_svg(c.layout, ropt)));
  }

  Json rsp = ok_response(req.id, req.method, c.key, cache_source_name(res.source),
                         std::move(result));
  if (!res.trace_json.empty()) {
    // The trace is itself JSON; embed it structurally so clients read one
    // document (fall back to a string if it ever fails to re-parse).
    std::optional<Json> trace = Json::parse(res.trace_json);
    rsp.set("trace", trace ? std::move(*trace) : Json(res.trace_json));
  }
  return rsp.dump();
}

}  // namespace starlay::serve
