#include "starlay/serve/protocol.hpp"

#include <algorithm>

#include "starlay/core/pass.hpp"
#include "starlay/core/suggest.hpp"

namespace starlay::serve {

namespace {

core::BuildError invalid(std::string message) {
  core::BuildError err;
  err.code = core::BuildErrorCode::kInvalidArgument;
  err.message = std::move(message);
  return err;
}

/// Accepts an integer-valued field (strictly an integer: 7, not 7.5 or "7").
bool int_field(const Json& v, std::int64_t* out) {
  if (!v.is_int()) return false;
  *out = v.as_int();
  return true;
}

}  // namespace

const std::vector<std::string_view>& protocol_methods() {
  static const std::vector<std::string_view> methods = {
      "bisect", "build", "certify", "measure", "ping", "render-window", "shutdown", "stats",
  };
  return methods;
}

core::BuildOutcome<ProtocolRequest> parse_request(std::string_view line) {
  std::optional<Json> doc = Json::parse(line);
  if (!doc) return invalid("malformed request: not valid JSON");
  if (!doc->is_object()) return invalid("malformed request: expected a JSON object");

  ProtocolRequest req;
  req.build = core::BuildRequest::with_process_defaults();

  // Read "id" first so even a rejected request echoes it back.
  if (const Json* id = doc->find("id")) {
    if (!id->is_int()) return invalid("field 'id': expected an integer");
    req.id = id->as_int();
  }

  for (const auto& [key, value] : doc->members()) {
    std::int64_t i = 0;
    if (key == "id") {
      continue;  // handled above
    } else if (key == "method") {
      if (!value.is_string()) return invalid("field 'method': expected a string");
      req.method = value.as_string();
    } else if (key == "family") {
      if (!value.is_string()) return invalid("field 'family': expected a string");
      req.build.family = value.as_string();
    } else if (key == "n") {
      if (!int_field(value, &i)) return invalid("field 'n': expected an integer");
      req.build.params.n = static_cast<int>(i);
      req.n_set = true;
    } else if (key == "base") {
      if (!int_field(value, &i)) return invalid("field 'base': expected an integer");
      req.build.params.base_size = static_cast<int>(i);
      req.build.explicit_fields |= core::kParamBaseSize;
    } else if (key == "layers") {
      if (!int_field(value, &i)) return invalid("field 'layers': expected an integer");
      req.build.params.layers = static_cast<int>(i);
      req.build.explicit_fields |= core::kParamLayers;
    } else if (key == "mult") {
      if (!int_field(value, &i)) return invalid("field 'mult': expected an integer");
      req.build.params.multiplicity = static_cast<int>(i);
      req.build.explicit_fields |= core::kParamMultiplicity;
    } else if (key == "passes") {
      if (!value.is_string()) return invalid("field 'passes': expected a string");
      core::BuildOutcome<core::PassList> passes = core::parse_pass_list(value.as_string());
      if (!passes.ok()) return passes.error();  // kUnknownParam + suggestion
      req.build.passes = passes.value();
    } else if (key == "threads") {
      if (!int_field(value, &i) || i < 1 || i > 256)
        return invalid("field 'threads': expected an integer in [1, 256]");
      req.build.options.threads = static_cast<int>(i);
    } else if (key == "simd") {
      if (!value.is_string()) return invalid("field 'simd': expected a string");
      if (!core::parse_simd_level(value.as_string()))
        return invalid("field 'simd': unknown level '" + value.as_string() +
                       "' (scalar | sse4 | avx2)");
      req.build.options.simd = value.as_string();
    } else if (key == "trace") {
      if (!value.is_bool()) return invalid("field 'trace': expected a boolean");
      req.build.options.trace = value.as_bool();
    } else if (key == "window") {
      if (!value.is_array() || value.items().size() != 4)
        return invalid("field 'window': expected [x0, y0, x1, y1]");
      std::int64_t c[4];
      for (int k = 0; k < 4; ++k)
        if (!int_field(value.items()[static_cast<std::size_t>(k)], &c[k]))
          return invalid("field 'window': expected [x0, y0, x1, y1] integers");
      req.window = {c[0], c[1], c[2], c[3]};
      req.have_window = true;
    } else {
      return invalid("unknown request field '" + key + "'");
    }
  }

  if (req.method.empty()) return invalid("missing 'method'");
  const auto& methods = protocol_methods();
  if (std::find(methods.begin(), methods.end(), req.method) == methods.end()) {
    // Same shape as unknown families: kInvalidArgument with the nearest
    // known method, via the shared suggestion helper.
    core::BuildError err;
    err.code = core::BuildErrorCode::kInvalidArgument;
    err.suggestion = std::string(core::nearest_name(req.method, methods));
    err.message = "unknown method '" + req.method + "'; did you mean '" + err.suggestion + "'?";
    return err;
  }
  return req;
}

Json error_response(std::int64_t id, const core::BuildError& err) {
  Json e = Json::object();
  e.set("code", Json(core::build_error_code_name(err.code)));
  e.set("message", Json(err.message));
  if (err.code == core::BuildErrorCode::kSizeOutOfRange) {
    e.set("n_lo", Json(static_cast<std::int64_t>(err.n_lo)));
    e.set("n_hi", Json(static_cast<std::int64_t>(err.n_hi)));
  }
  if (!err.suggestion.empty()) e.set("suggestion", Json(err.suggestion));
  if (err.code == core::BuildErrorCode::kIoError) {
    e.set("io_path", Json(err.io_path));
    e.set("io_errno", Json(static_cast<std::int64_t>(err.io_errno)));
  }
  Json rsp = Json::object();
  rsp.set("id", Json(id));
  rsp.set("ok", Json(false));
  rsp.set("error", std::move(e));
  return rsp;
}

Json ok_response(std::int64_t id, std::string_view method, std::string_view key,
                 std::string_view cache, Json result) {
  Json rsp = Json::object();
  rsp.set("id", Json(id));
  rsp.set("ok", Json(true));
  rsp.set("method", Json(method));
  if (!key.empty()) rsp.set("key", Json(key));
  if (!cache.empty()) rsp.set("cache", Json(cache));
  rsp.set("result", std::move(result));
  return rsp;
}

}  // namespace starlay::serve
