#include "starlay/serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

namespace starlay::serve {

namespace {

core::BuildError io_error(std::string what, std::string path) {
  core::BuildError err;
  err.code = core::BuildErrorCode::kIoError;
  err.io_errno = errno;
  err.io_path = std::move(path);
  err.message = std::move(what) + ": " + std::strerror(err.io_errno);
  return err;
}

/// write() the whole buffer, riding out EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

struct Server::Impl {
  LayoutService& service;
  Options opt;
  int listen_fd = -1;
  int bound_port = 0;
  std::atomic<bool> stopping{false};

  std::mutex mu;  ///< guards threads + client_fds
  std::vector<std::thread> threads;
  std::vector<int> client_fds;

  explicit Impl(LayoutService& s) : service(s) {}

  void handle_connection(int fd) {
    std::string buffer;
    char chunk[4096];
    bool shutdown_requested = false;
    while (!shutdown_requested) {
      const ssize_t n = ::read(fd, chunk, sizeof chunk);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF or error: client is gone
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t start = 0;
      for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
           nl = buffer.find('\n', start)) {
        const std::string_view line(buffer.data() + start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;  // tolerate keep-alive blank lines
        bool shutdown = false;
        std::string response = service.handle_line(line, &shutdown);
        response.push_back('\n');
        if (!write_all(fd, response.data(), response.size())) {
          shutdown_requested = shutdown;
          break;
        }
        if (shutdown) {
          // Respond first, then take the whole server down.
          shutdown_requested = true;
          break;
        }
      }
      buffer.erase(0, start);
    }
    {
      // Deregister before closing so stop_sockets() never touches a
      // recycled descriptor.
      std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i < client_fds.size(); ++i) {
        if (client_fds[i] != fd) continue;
        client_fds[i] = client_fds.back();
        client_fds.pop_back();
        break;
      }
    }
    ::close(fd);
    if (shutdown_requested) stop_sockets();
  }

  /// Closes the listening socket and nudges every open connection, so the
  /// accept loop and every connection thread unblock promptly.
  void stop_sockets() {
    if (stopping.exchange(true)) return;
    if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
    std::lock_guard<std::mutex> lock(mu);
    for (const int fd : client_fds) ::shutdown(fd, SHUT_RDWR);
  }
};

Server::Server(LayoutService& service, Options opt) : impl_(new Impl(service)) {
  impl_->opt = std::move(opt);
}

Server::~Server() {
  impl_->stop_sockets();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
  for (std::thread& t : impl_->threads)
    if (t.joinable()) t.join();
  delete impl_;
}

core::BuildStatus Server::listen() {
  if (!impl_->opt.unix_path.empty()) {
    const std::string& path = impl_->opt.unix_path;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
      errno = ENAMETOOLONG;
      return io_error("socket path too long", path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    impl_->listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (impl_->listen_fd < 0) return io_error("cannot create socket", path);
    ::unlink(path.c_str());  // stale socket from a previous run
    if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      return io_error("cannot bind socket", path);
    if (::listen(impl_->listen_fd, 64) != 0) return io_error("cannot listen", path);
    return {};
  }

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const std::string where = "127.0.0.1:" + std::to_string(impl_->opt.tcp_port);
  if (impl_->listen_fd < 0) return io_error("cannot create socket", where);
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(impl_->opt.tcp_port));
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return io_error("cannot bind socket", where);
  if (::listen(impl_->listen_fd, 64) != 0) return io_error("cannot listen", where);
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    impl_->bound_port = ntohs(bound.sin_port);
  return {};
}

int Server::port() const { return impl_->bound_port; }

void Server::serve() {
  while (!impl_->stopping.load()) {
    const int fd = ::accept(impl_->listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket was shut down
    }
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->stopping.load()) {
      ::close(fd);
      break;
    }
    impl_->client_fds.push_back(fd);
    impl_->threads.emplace_back([this, fd] { impl_->handle_connection(fd); });
  }
  // Stop accepting, then wait for in-flight connections to drain.
  impl_->stop_sockets();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    threads.swap(impl_->threads);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  if (!impl_->opt.unix_path.empty()) ::unlink(impl_->opt.unix_path.c_str());
}

void Server::stop() { impl_->stop_sockets(); }

}  // namespace starlay::serve
