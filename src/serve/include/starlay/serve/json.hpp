#pragma once
/// \file json.hpp
/// \brief Minimal JSON value for the starlayd wire protocol.
///
/// The daemon speaks line-delimited JSON and the repo deliberately has no
/// external dependencies, so this is the one JSON implementation in the
/// tree: a small immutable-ish value type with a strict recursive-descent
/// parser and a deterministic serializer (object members keep insertion
/// order; no whitespace).  It supports exactly what the protocol needs —
/// null, booleans, 64-bit integers, doubles, strings (with \uXXXX escapes
/// decoded to UTF-8), arrays, objects — and rejects everything else
/// (trailing garbage, unterminated literals, nesting deeper than 64).
///
/// It is NOT a general-purpose library: no comments, no NaN/Infinity, no
/// duplicate-key detection (last one wins on lookup is avoided by keeping
/// the first), and numbers outside int64 range fall back to double.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace starlay::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}                    // NOLINT
  Json(std::int64_t i) : type_(Type::kInt), int_(i) {}              // NOLINT
  Json(int i) : Json(static_cast<std::int64_t>(i)) {}               // NOLINT
  Json(double d) : type_(Type::kDouble), double_(d) {}              // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {} // NOLINT
  Json(std::string_view s) : Json(std::string(s)) {}                // NOLINT
  Json(const char* s) : Json(std::string(s)) {}                     // NOLINT

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_int() const { return type_ == Type::kInt; }
  bool is_number() const { return type_ == Type::kInt || type_ == Type::kDouble; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  std::int64_t as_int() const {
    return type_ == Type::kDouble ? static_cast<std::int64_t>(double_) : int_;
  }
  double as_double() const { return type_ == Type::kInt ? static_cast<double>(int_) : double_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  /// Object lookup (first occurrence); nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Array append / object member set (appends; does not replace).
  void push_back(Json v) { items_.push_back(std::move(v)); }
  void set(std::string key, Json v) { members_.emplace_back(std::move(key), std::move(v)); }

  /// Compact deterministic serialization (insertion order, no whitespace).
  std::string dump() const;

  /// Strict parse of exactly one JSON document (surrounding whitespace
  /// allowed, trailing bytes rejected).  nullopt on any syntax error.
  static std::optional<Json> parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace starlay::serve
