#pragma once
/// \file server.hpp
/// \brief Socket front-end for LayoutService: accept, read lines, respond.
///
/// The server owns only transport: one listening socket (Unix-domain at a
/// filesystem path, or TCP on 127.0.0.1), one accept loop, one thread per
/// connection reading newline-delimited requests and writing back the
/// response line LayoutService::handle_line produced.  All protocol and
/// caching semantics live in the service, which is why the service tests
/// need no sockets.
///
/// Lifecycle: listen() binds (kIoError with the failing path/errno on any
/// socket failure), serve() runs the accept loop in the calling thread
/// until a client sends {"method": "shutdown"} or another thread calls
/// stop(), then joins every connection thread.  TCP binds to port 0 by
/// default and reports the kernel-chosen port via port(), so test drivers
/// never race for a fixed port.

#include <string>

#include "starlay/core/build_status.hpp"
#include "starlay/serve/service.hpp"

namespace starlay::serve {

class Server {
 public:
  struct Options {
    std::string unix_path;  ///< non-empty: Unix-domain socket at this path
    int tcp_port = 0;       ///< Unix path empty: TCP on 127.0.0.1 (0 = ephemeral)
  };

  Server(LayoutService& service, Options opt);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens.  kIoError (path + errno attached) on failure.
  core::BuildStatus listen();

  /// The bound TCP port (after listen(); 0 for Unix-domain servers).
  int port() const;

  /// Accept loop; blocks until shutdown.  Call after listen() succeeded.
  void serve();

  /// Asynchronously stops serve(): closes the listening socket and nudges
  /// open connections closed.  Safe from any thread and from handlers.
  void stop();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace starlay::serve
