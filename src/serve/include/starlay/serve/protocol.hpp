#pragma once
/// \file protocol.hpp
/// \brief The starlayd wire protocol: line-delimited JSON requests.
///
/// One request per line, one response line back, over a Unix or TCP
/// socket.  A request is a JSON object:
///
///   {"id": 7, "method": "build", "family": "star", "n": 7,
///    "base": 3, "layers": 2, "mult": 1, "passes": "compact,refine",
///    "threads": 4, "simd": "avx2", "trace": true,
///    "window": [0, 0, 200, 120]}
///
/// Methods: "build" (construct + validate, return measured metrics),
/// "measure" (metrics only), "certify" (validation verdict), "bisect"
/// (layout-slice bisection witness), "render-window" (SVG of a window —
/// requires "window"), "ping", "stats" (cache/flight counters), and
/// "shutdown".  Field spellings match the canonical request key
/// (build_request.hpp): "base" / "layers" / "mult" mirror --base-size /
/// --layers / --multiplicity.
///
/// Every parse failure maps onto the existing BuildErrorCode vocabulary —
/// malformed JSON, a non-object, a bad field type, or an unknown method
/// (with a nearest-name suggestion, like unknown families) are all
/// kInvalidArgument; an unknown pass is kUnknownParam — so the daemon's
/// error JSON carries exactly the codes starlay_cli already documents.
///
/// A response is a JSON object, always carrying the request's "id" (0 when
/// the request was too malformed to read one):
///
///   {"id": 7, "ok": true, "method": "build", "key": "family=star n=7
///    base=3", "cache": "hit", "result": {...}}
///   {"id": 7, "ok": false, "error": {"code": "size-out-of-range",
///    "message": "...", "n_lo": 2, "n_hi": 12}}

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "starlay/core/build_request.hpp"
#include "starlay/core/build_status.hpp"
#include "starlay/layout/geometry.hpp"
#include "starlay/serve/json.hpp"

namespace starlay::serve {

struct ProtocolRequest {
  std::int64_t id = 0;
  std::string method;
  core::BuildRequest build;  ///< options seeded from RuntimeConfig::process()
  bool n_set = false;        ///< "n" was present
  bool have_window = false;  ///< "window" was present
  layout::Rect window{};
};

/// All protocol methods, sorted — the suggestion candidate set.
const std::vector<std::string_view>& protocol_methods();

/// Parses one request line.  Strict: unknown fields are rejected
/// (kInvalidArgument), so a typo'd option can never be silently ignored.
core::BuildOutcome<ProtocolRequest> parse_request(std::string_view line);

/// Error envelope: {"id", "ok": false, "error": {code/message/payload}}.
/// The "code" string is build_error_code_name() — the same stable
/// identifiers starlay_cli prints.
Json error_response(std::int64_t id, const core::BuildError& err);

/// Success envelope around \p result; \p cache is "hit" / "miss" / "join"
/// (empty = omitted, for cache-less methods like ping).
Json ok_response(std::int64_t id, std::string_view method, std::string_view key,
                 std::string_view cache, Json result);

}  // namespace starlay::serve
