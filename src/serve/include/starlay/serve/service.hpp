#pragma once
/// \file service.hpp
/// \brief The layout service: one build per canonical key, shared forever.
///
/// LayoutService turns the stateless builder registry into a long-running
/// daemon's engine.  Three mechanisms, all keyed by
/// BuildRequest::canonical_key():
///
///  * Snapshot cache — a completed build is materialized once (graph +
///    layout + validation verdict) into an immutable CachedLayout held by
///    shared_ptr.  Every later request for the same key — build, measure,
///    certify, bisect, render-window — answers from the snapshot without
///    touching the build machinery.
///  * Single-flight — concurrent requests for the same key elect one
///    leader; the rest block on the flight and share the leader's snapshot
///    (or its error).  N identical requests cost one build.
///  * LRU byte budget — snapshots are charged their estimated footprint;
///    when the total exceeds the budget the least-recently-used entries are
///    evicted (the newest entry always survives, so a single over-budget
///    layout still caches).
///
/// Concurrency contract: the support::ThreadPool's job state is shared, so
/// two threads must never run pool jobs concurrently.  The service
/// therefore runs every build (and every pool-using snapshot operation:
/// bisection) inside one exclusive *execution lane*; cache hits bypass the
/// lane entirely, which is what makes hit latency orders of magnitude
/// below build latency.  Runtime overrides (threads/SIMD) and telemetry
/// traces are process-global too, so they are applied only inside the
/// lane, by the flight leader.  Build errors are returned but never
/// cached: a transient condition (budget, I/O) must not poison the key.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "starlay/bisect/bisect.hpp"
#include "starlay/core/build_request.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/layout/layout.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::serve {

/// Immutable completed build.  Never mutated after insertion, so any
/// number of connection threads may read one snapshot concurrently.
struct CachedLayout {
  std::string key;      ///< canonical request key
  std::string family;   ///< resolved registry name
  core::BuildParams params;
  core::PassList passes;
  topology::Graph graph{0};
  layout::Layout layout{0};
  std::int64_t node_size = 0;
  layout::RouteStats stats;
  layout::ValidationReport validation;  ///< computed once at build time
  std::int64_t bytes = 0;               ///< estimated resident footprint
};

/// Where a request's snapshot came from.
enum class CacheSource { kHit, kMiss, kJoin };
std::string_view cache_source_name(CacheSource s);  ///< "hit" / "miss" / "join"

struct ServiceResult {
  std::shared_ptr<const CachedLayout> snapshot;  ///< null on error
  core::BuildError error;                        ///< set when !snapshot
  CacheSource source = CacheSource::kHit;
  std::string trace_json;  ///< non-empty only for a traced miss leader

  bool ok() const { return snapshot != nullptr; }
};

struct ServiceStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;       ///< flights led (includes failed builds)
  std::int64_t joins = 0;        ///< requests that waited on another's flight
  std::int64_t evictions = 0;    ///< snapshots dropped by the LRU budget
  std::int64_t builds_run = 0;   ///< successful builds inserted
  std::int64_t entries = 0;      ///< snapshots currently cached
  std::int64_t bytes = 0;        ///< their summed estimated footprint
  std::int64_t byte_budget = 0;
};

class LayoutService {
 public:
  struct Options {
    std::int64_t cache_bytes = std::int64_t{256} << 20;  ///< LRU budget
  };

  LayoutService();  ///< default Options
  explicit LayoutService(Options opt);
  ~LayoutService();
  LayoutService(const LayoutService&) = delete;
  LayoutService& operator=(const LayoutService&) = delete;

  /// The core entry point: resolve, then hit / join / lead-a-build.
  /// Blocking: a join waits for the leader; a miss runs the build in the
  /// calling thread (inside the execution lane).  request.options.trace
  /// attaches the leader's telemetry trace JSON to the result; hits and
  /// joins never carry a trace (the build they share already ran).
  ServiceResult acquire(const core::BuildRequest& request);

  /// Layout-slice bisection of a snapshot.  Runs pool jobs, so it takes
  /// the execution lane internally.
  bisect::BisectionResult bisect(const CachedLayout& snapshot);

  /// Handles one protocol line end-to-end (parse -> dispatch -> serialize)
  /// and returns the response line (without trailing newline).  Sets
  /// \p shutdown when the line was a shutdown request.  This is the whole
  /// daemon minus the sockets, so tests drive it directly.
  std::string handle_line(std::string_view line, bool* shutdown = nullptr);

  ServiceStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace starlay::serve
