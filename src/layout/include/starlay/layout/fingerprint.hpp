#pragma once
/// \file fingerprint.hpp
/// \brief Canonical wire fingerprints: the bit-equality currency of the
///        verification subsystem (src/check) and the golden tests.
///
/// Every differential claim in the tree — "streaming reproduces the
/// materialized geometry", "the result is identical at 1/2/4/8 threads",
/// "telemetry does not perturb the build" — reduces to comparing two wire
/// sequences for bit-equality.  This header defines ONE canonical hash so
/// the claims are comparable across execution modes:
///
///  * wire_content_hash(w) — FNV-1a over a wire's edge id, layer pair,
///    point count, and points.  Pure per-wire; no ordering involved.
///  * wire_fingerprint(layout) / FingerprintingSink — fold the per-wire
///    hashes in wire-index order, chunked by kFingerprintGrain exactly like
///    support::parallel_for.  Each chunk folds its hashes through four
///    independent FNV-1a lanes (the fold_hashes4 certification kernel, fed
///    in blocks whose size is a multiple of 4 so the round-robin lane
///    phase is preserved), then folds the lanes serially; chunk digests
///    fold serially in chunk order.  Chunk geometry is a pure function of
///    the wire count and every kernel variant is bit-identical, so the
///    digest is the same for every thread count and SIMD level, and the
///    materialized and streaming computations agree by construction.
///
/// FingerprintingSink is the streaming side of the hook: it consumes a
/// builder's build_stream() emission without materializing anything (O(1)
/// memory on the emit_bulk path) and yields the same digest
/// wire_fingerprint() computes over the equivalent materialized Layout.

#include <cstdint>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/wire_sink.hpp"

namespace starlay::layout {

/// Chunk size of the canonical fold (also the parallel grain).
inline constexpr std::int64_t kFingerprintGrain = 8192;

/// FNV-1a fold of one 64-bit value into a running hash.
inline std::uint64_t fingerprint_mix(std::uint64_t h, std::int64_t v) {
  h ^= static_cast<std::uint64_t>(v);
  h *= 1099511628211ull;
  return h;
}

inline constexpr std::uint64_t kFingerprintSeed = 14695981039346656037ull;

/// Content hash of one wire: edge, layers, point count, points.
std::uint64_t wire_content_hash(const Wire& w);

/// Canonical digest of a materialized layout's wire sequence (wires only —
/// node rectangles and derived measures are compared separately).
std::uint64_t wire_fingerprint(const Layout& lay);

/// WireSink computing the canonical digest of an emission stream without
/// storing geometry.  Usable with any builder's build_stream(); after
/// end(), fingerprint() equals wire_fingerprint() of the Layout the same
/// emission would have materialized.
class FingerprintingSink final : public WireSink {
 public:
  void begin(const topology::Graph& g, std::vector<Rect>&& nodes) override;
  void emit(const Wire& w) override;
  void emit_bulk(std::int64_t count, std::int64_t grain, const WireFill& fill) override;
  void end() override;

  /// Canonical wire digest; valid after end().
  std::uint64_t fingerprint() const { return fingerprint_; }
  std::int64_t num_wires() const { return num_wires_; }
  /// Node rectangles captured at begin() (builders emit them up front).
  const std::vector<Rect>& node_rects() const { return nodes_; }

  /// Routed wirelengths of the emission, accumulated alongside the digest
  /// (integer sums/maxes are order-independent, so both are deterministic
  /// at every thread count).  Valid after end(); equal to the materialized
  /// Layout's total_wire_length()/max_wire_length() by construction.
  std::int64_t total_wire_length() const { return total_wire_length_; }
  std::int64_t max_wire_length() const { return max_wire_length_; }

 private:
  std::vector<std::uint64_t> buffered_;  ///< emit() path; folded at end()
  std::vector<Rect> nodes_;
  std::uint64_t fingerprint_ = kFingerprintSeed;
  std::int64_t num_wires_ = 0;
  std::int64_t total_wire_length_ = 0;
  std::int64_t max_wire_length_ = 0;
  bool bulk_done_ = false;
};

/// Manhattan length of one wire's polyline (the quantity Layout::
/// total_wire_length() sums); shared by the sink above and the tests.
std::int64_t wire_polyline_length(const Wire& w);

}  // namespace starlay::layout
