#pragma once
/// \file router.hpp
/// \brief Channel-based grid router: turns (graph, placement, orientation)
///        into a concrete, validator-clean Layout.
///
/// Routing discipline (exactly the paper's Lemma 2.1 scheme, generalized):
///  * every node occupies a w x w square in its grid cell; each incident
///    wire owns a private stub position on the node's top edge (if the wire
///    leaves through the row channel above) or right edge (if it arrives
///    from the column channel to the right);
///  * an edge whose endpoints share a row is routed through the channel
///    above that row; one sharing a column through the channel right of it;
///  * any other edge is an "L": a horizontal run in the *source's* row
///    channel followed by a vertical run in the *destination's* column
///    channel — the paper's turning-node scheme.  Which endpoint acts as
///    source is the caller's choice (RouteSpec::source_is_u); the default
///    is the paper's bundle-halving parity rule, which is what turns the
///    directed m^4/4 complete-graph area into the undirected m^4/16.
///  * within each channel, tracks are assigned by left-edge packing of
///    closed intervals, independently per wiring layer.
///
/// Multilayer X-Y layouts: RouteSpec::layers assigns each wire an
/// (h_layer, v_layer) pair with h odd, v even, |h - v| = 1.  Tracks on
/// different layers share physical positions, which is where the paper's
/// N^2/(4 L^2) area gain comes from.

#include <cstdint>
#include <utility>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout {

struct RouteSpec {
  /// Per-edge orientation for L-shaped routes: true = u is the source
  /// (horizontal run in u's row channel, vertical in v's column channel).
  /// Empty = apply the paper's parity rule on node rows.
  std::vector<std::uint8_t> source_is_u;

  /// Per-edge (h_layer, v_layer); empty = all wires on layers (1, 2)
  /// (the Thompson model's two implicit layers).
  std::vector<std::pair<std::int16_t, std::int16_t>> layers;
};

struct RouterOptions {
  /// Side of the square each node occupies; 0 = auto (max degree, floor 1).
  /// Must be >= the per-side stub demand — the router throws otherwise.
  Coord node_size = 0;

  /// Use all four node sides for stubs (the paper's extended-grid regime,
  /// Lemma 2.2's node sides below the degree): L-edge horizontal runs may
  /// go through the channel above OR below the source row, vertical runs
  /// left OR right of the destination column, balanced per node.  Top
  /// stubs take even in-cell offsets and bottom stubs odd ones (likewise
  /// right/left), so node_size can drop to about ceil(degree/2) + 1.
  bool four_sided = false;
};

/// Channel statistics of a routed grid, as the benches report them.
/// Two-sided mode: entry r/c = channel above row r / right of column c
/// (size rows/cols).  Four-sided mode: entry k = channel below row k /
/// left of column k (size rows+1 / cols+1).
struct RouteStats {
  std::vector<std::int32_t> row_channel_tracks;
  std::vector<std::int32_t> col_channel_tracks;
  Coord node_size = 0;
};

/// A routed layout plus its channel statistics (the materialized result).
struct RoutedLayout {
  Layout layout;
  std::vector<std::int32_t> row_channel_tracks;
  std::vector<std::int32_t> col_channel_tracks;
  Coord node_size = 0;
};

/// Routes every edge of \p g on the slot grid of \p p, emitting node
/// rectangles and wire geometry into \p sink (begin / emit_bulk / end).
/// With a MaterializingSink this reproduces route_grid bit-for-bit; with a
/// StreamingCertifier the geometry is validated and measured without ever
/// being stored.  Preconditions: g finalized or carrying the
/// release_adjacency() degree cache (only degrees are consulted),
/// p.check(g.num_vertices()) passes, g.num_edges() < 2^31 (wire ids and
/// stub bookkeeping are 32-bit, matching WireStore's 32-bit point offsets).
RouteStats route_grid_stream(const topology::Graph& g, const Placement& p,
                             const RouteSpec& spec, const RouterOptions& opt,
                             WireSink& sink);

/// Routes every edge of \p g on the slot grid of \p p.
/// Preconditions: g finalized, p.check(g.num_vertices()) passes.
RoutedLayout route_grid(const topology::Graph& g, const Placement& p,
                        const RouteSpec& spec = {}, const RouterOptions& opt = {});

/// The paper's parity orientation rule (Section 2.2): for an edge whose
/// endpoints' rows differ by k > 0, the endpoint u with floor(row_u / k)
/// even is the source.  Exactly one endpoint qualifies.  Rows here may be
/// node rows or block rows, depending on the granularity the construction
/// balances at.
bool parity_source_is_first(std::int32_t row_u, std::int32_t row_v);

}  // namespace starlay::layout
