#pragma once
/// \file router.hpp
/// \brief Channel-based grid router: turns (graph, placement, orientation)
///        into a concrete, validator-clean Layout.
///
/// Routing discipline (exactly the paper's Lemma 2.1 scheme, generalized):
///  * every node occupies a w x w square in its grid cell; each incident
///    wire owns a private stub position on the node's top edge (if the wire
///    leaves through the row channel above) or right edge (if it arrives
///    from the column channel to the right);
///  * an edge whose endpoints share a row is routed through the channel
///    above that row; one sharing a column through the channel right of it;
///  * any other edge is an "L": a horizontal run in the *source's* row
///    channel followed by a vertical run in the *destination's* column
///    channel — the paper's turning-node scheme.  Which endpoint acts as
///    source is the caller's choice (RouteSpec::source_is_u); the default
///    is the paper's bundle-halving parity rule, which is what turns the
///    directed m^4/4 complete-graph area into the undirected m^4/16.
///  * within each channel, tracks are assigned by left-edge packing of
///    closed intervals, independently per wiring layer.
///
/// Multilayer X-Y layouts: RouteSpec::layers assigns each wire an
/// (h_layer, v_layer) pair with h odd, v even, |h - v| = 1.  Tracks on
/// different layers share physical positions, which is where the paper's
/// N^2/(4 L^2) area gain comes from.
///
/// The route is staged: plan_route() classifies edges, assigns channels and
/// stubs, and packs tracks (everything except geometry emission) into a
/// RoutePlan; emit_route() turns a plan into wire geometry through a
/// WireSink.  Between the two, compact_route() may re-pack the plan's
/// channel tracks with track-refined interval keys (the initial horizontal
/// pack must treat a whole vertical channel as one x position because the
/// vertical tracks are not assigned yet; once they are, the true turn
/// coordinates are known and the channel cliques can only shrink), keeping
/// the best grid extent over a bounded number of rounds.  route_grid_stream
/// remains the single-call plan+emit path and is bit-identical to the
/// pre-staged router.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout {

struct RouteSpec {
  /// Per-edge orientation for L-shaped routes: true = u is the source
  /// (horizontal run in u's row channel, vertical in v's column channel).
  /// Empty = apply the paper's parity rule on node rows.
  std::vector<std::uint8_t> source_is_u;

  /// Per-edge (h_layer, v_layer); empty = all wires on layers (1, 2)
  /// (the Thompson model's two implicit layers).
  std::vector<std::pair<std::int16_t, std::int16_t>> layers;
};

struct RouterOptions {
  /// Side of the square each node occupies; 0 = auto (max degree, floor 1).
  /// Must be >= the per-side stub demand — the router throws otherwise.
  Coord node_size = 0;

  /// Use all four node sides for stubs (the paper's extended-grid regime,
  /// Lemma 2.2's node sides below the degree): L-edge horizontal runs may
  /// go through the channel above OR below the source row, vertical runs
  /// left OR right of the destination column, balanced per node.  Top
  /// stubs take even in-cell offsets and bottom stubs odd ones (likewise
  /// right/left), so node_size can drop to about ceil(degree/2) + 1.
  bool four_sided = false;
};

/// Channel statistics of a routed grid, as the benches report them.
/// Two-sided mode: entry r/c = channel above row r / right of column c
/// (size rows/cols).  Four-sided mode: entry k = channel below row k /
/// left of column k (size rows+1 / cols+1).
struct RouteStats {
  std::vector<std::int32_t> row_channel_tracks;
  std::vector<std::int32_t> col_channel_tracks;
  Coord node_size = 0;
};

/// A routed layout plus its channel statistics (the materialized result).
struct RoutedLayout {
  Layout layout;
  std::vector<std::int32_t> row_channel_tracks;
  std::vector<std::int32_t> col_channel_tracks;
  Coord node_size = 0;
};

/// The routed-but-not-yet-emitted state of a grid route: per-edge channel
/// and track assignments, stub offsets, and per-channel track counts.
/// Produced by plan_route, optionally transformed by compact_route, and
/// consumed (read-only) by emit_route.  Movable, not copyable; the
/// representation is private to router.cpp.
struct RoutePlanData;
struct RoutePlan {
  RoutePlan();
  RoutePlan(RoutePlan&&) noexcept;
  RoutePlan& operator=(RoutePlan&&) noexcept;
  ~RoutePlan();
  bool empty() const { return d == nullptr; }
  std::unique_ptr<RoutePlanData> d;
};

/// Bounded-iteration knobs for compact_route.
struct CompactionOptions {
  /// Maximum track-refined repack rounds (each round re-packs horizontal
  /// channels against the previous round's vertical tracks, then re-packs
  /// vertical channels).  The best round by grid extent is kept, so more
  /// rounds can only help; the loop exits early on a fixed point.
  int max_rounds = 4;
};

/// What compact_route did: grid extents before/after and which round won
/// (0 = the coarse baseline packing was already best).
struct CompactionStats {
  int rounds = 0;
  int best_round = 0;
  std::int64_t area_before = 0;
  std::int64_t area_after = 0;
};

/// Classifies, channel-selects, stub-assigns, and track-packs every edge of
/// \p g on the slot grid of \p p.  The returned plan is emit-ready.
/// Preconditions: g finalized or carrying the release_adjacency() degree
/// cache (only degrees are consulted), p.check(g.num_vertices()) passes,
/// g.num_edges() < 2^31 (wire ids and stub bookkeeping are 32-bit).
RoutePlan plan_route(const topology::Graph& g, const Placement& p,
                     const RouteSpec& spec = {}, const RouterOptions& opt = {});

/// Re-packs \p rp's channel tracks in place using track-refined interval
/// keys, keeping the round with the smallest grid extent (ties prefer the
/// earliest round, so an unimproved plan is restored bit-identically to its
/// coarse packing).  Deterministic and idempotent: the rounds are a pure
/// function of the plan's structure, so compact(compact(p)) == compact(p)
/// bit-for-bit.  Requires a non-empty plan.
CompactionStats compact_route(RoutePlan& rp, const CompactionOptions& opt = {});

/// The grid extent of a plan — (total vertical tracks + cols * node_size)
/// * (total horizontal tracks + rows * node_size) — i.e. the area of the
/// full routing grid.  This is what compact_route minimizes; the measured
/// layout bounding box can only be tighter.  Requires a non-empty plan.
std::int64_t planned_area(const RoutePlan& rp);

/// Emits the node rectangles and wire geometry of \p rp into \p sink
/// (begin / emit_bulk / end) and returns the channel statistics.  Pure
/// reader of the plan: may be called repeatedly, e.g. once per sink.
RouteStats emit_route(const RoutePlan& rp, const topology::Graph& g,
                      WireSink& sink);

/// Routes every edge of \p g on the slot grid of \p p, emitting node
/// rectangles and wire geometry into \p sink (begin / emit_bulk / end).
/// Exactly plan_route + emit_route under one "routing" telemetry span.
/// With a MaterializingSink this reproduces route_grid bit-for-bit; with a
/// StreamingCertifier the geometry is validated and measured without ever
/// being stored.
RouteStats route_grid_stream(const topology::Graph& g, const Placement& p,
                             const RouteSpec& spec, const RouterOptions& opt,
                             WireSink& sink);

/// Routes every edge of \p g on the slot grid of \p p.
/// Preconditions: g finalized, p.check(g.num_vertices()) passes.
RoutedLayout route_grid(const topology::Graph& g, const Placement& p,
                        const RouteSpec& spec = {}, const RouterOptions& opt = {});

/// The paper's parity orientation rule (Section 2.2): for an edge whose
/// endpoints' rows differ by k > 0, the endpoint u with floor(row_u / k)
/// even is the source.  Exactly one endpoint qualifies.  Rows here may be
/// node rows or block rows, depending on the granularity the construction
/// balances at.
bool parity_source_is_first(std::int32_t row_u, std::int32_t row_v);

}  // namespace starlay::layout
