#pragma once
/// \file validate.hpp
/// \brief Mechanical certification of layouts under the grid models.
///
/// The validator enforces, independently of how a layout was constructed:
///
///  1. *Path rules* — wires are alternating rectilinear polylines;
///     horizontal segments on the wire's odd h_layer, vertical on its even
///     v_layer, |h_layer - v_layer| = 1.
///  2. *Track exclusivity* — on every (layer, grid line), the closed spans
///     of all segments are pairwise disjoint.  Perpendicular crossings are
///     allowed (different layers); overlaps and shared endpoints are not.
///     Because bends join two segments that *end* at the bend point, this
///     single rule also excludes knock-knees (two wires bending at one
///     grid point) and, with the adjacent-layer restriction, all 3-D via
///     conflicts of the multilayer model.
///  3. *Via audit* — defense in depth: bend points are collected and any
///     two vias at the same (x, y) with overlapping layer ranges are
///     reported, as is any foreign segment passing through a via point on
///     a spanned layer.  With rules 1-2 intact this never fires.
///  4. *Node clearance* — a wire may touch only its own two endpoint
///     nodes, at exactly one boundary grid point each; every other
///     node rectangle must be completely avoided (closed).
///  5. *Node size* (optional) — Thompson: each node is a square of side
///     exactly max(1, degree); extended grid: each side must lie inside a
///     caller-supplied window [min_side, max_side].

#include <cstdint>
#include <string>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout {

struct ValidationOptions {
  /// 0 = don't check node sizes; otherwise extended-grid window.
  Coord min_node_side = 0;
  Coord max_node_side = 0;
  /// Require side == max(1, degree) exactly (classic Thompson nodes).
  bool thompson_node_size = false;
  /// Stop after this many recorded errors.
  int max_errors = 20;
};

/// Wall-clock breakdown of one validate_layout call, in milliseconds.
/// Mirrored into BENCH_star_area.json rows so the bench regression gate can
/// show *which* phase moved, not just the validate total.
struct ValidatePhases {
  double index_ms = 0;      ///< SegmentIndex build (count/place/sort/split)
  double rules_ms = 0;      ///< per-wire path rules + node sizes + bijection
  double overlap_ms = 0;    ///< track-exclusivity count + materialization
  double via_ms = 0;        ///< via collection, sort, via-via conflicts
  double crossing_ms = 0;   ///< via-pierce probes against the segment index
  double clearance_ms = 0;  ///< node-clearance rect queries
};

struct ValidationReport {
  bool ok = true;
  std::vector<std::string> errors;  ///< first max_errors messages only
  /// Every violation found, including those truncated out of `errors`.
  /// The pre-truncation count used to be lost entirely; reports now say
  /// "N errors (showing first 20)" instead of silently showing 20.
  std::int64_t num_errors_total = 0;
  std::int64_t num_segments = 0;
  int num_layers = 0;
  /// Measured wirelength of the certified layout — first-class report
  /// quantities (the optimization passes are judged on them alongside
  /// area): sum and max over all wires of the rectilinear polyline length.
  std::int64_t total_wire_length = 0;
  std::int64_t max_wire_length = 0;
  ValidatePhases phases;

  void fail(std::string msg, int max_errors) {
    ok = false;
    ++num_errors_total;
    if (static_cast<int>(errors.size()) < max_errors) errors.push_back(std::move(msg));
  }

  /// One-line verdict: "clean", "3 errors", or "41 errors (showing first 20)".
  std::string summary() const {
    if (ok) return "clean";
    std::string s = std::to_string(num_errors_total) + " error" +
                    (num_errors_total == 1 ? "" : "s");
    if (num_errors_total > static_cast<std::int64_t>(errors.size()))
      s += " (showing first " + std::to_string(errors.size()) + ")";
    return s;
  }
};

/// Validates \p lay as a layout of \p g.  Every edge of g must have exactly
/// one wire and vice versa.
ValidationReport validate_layout(const topology::Graph& g, const Layout& lay,
                                 const ValidationOptions& opt = {});

}  // namespace starlay::layout
