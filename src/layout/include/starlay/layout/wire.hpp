#pragma once
/// \file wire.hpp
/// \brief Rectilinear wires with multilayer X-Y layer assignment.
///
/// A wire is a polyline of up to kMaxWirePoints grid points; consecutive
/// points differ in exactly one coordinate.  Horizontal segments live on the
/// wire's (odd) h_layer, vertical segments on its (even) v_layer.  The
/// classic Thompson model is the special case h_layer = 1, v_layer = 2 for
/// every wire (Thompson guarantees two wiring layers suffice when wires
/// merely cross).  |h_layer - v_layer| must be 1 so that bend vias span only
/// the wire's own two layers — see validate.hpp for why that makes via
/// conflicts reduce to same-line interval overlaps.

#include <array>
#include <cstdint>

#include "starlay/layout/geometry.hpp"

namespace starlay::layout {

inline constexpr int kMaxWirePoints = 8;

struct Wire {
  std::int64_t edge = -1;   ///< index into the topology graph's edge list
  std::int16_t h_layer = 1; ///< odd layer carrying horizontal segments
  std::int16_t v_layer = 2; ///< even layer carrying vertical segments
  std::uint8_t npts = 0;
  std::array<Point, kMaxWirePoints> pts{};

  /// Appends a point, dropping it when it repeats the previous point.
  void push(Point p) {
    if (npts > 0 && pts[npts - 1] == p) return;
    pts[static_cast<std::size_t>(npts++)] = p;
  }
  Point front() const { return pts[0]; }
  Point back() const { return pts[static_cast<std::size_t>(npts - 1)]; }
};

/// An oriented segment extracted from a wire, tagged with its layer.
struct LayerSegment {
  std::int16_t layer;
  bool horizontal;
  Coord line;  ///< y for horizontal segments, x for vertical ones
  Interval span;
  std::int64_t wire;  ///< index into Layout::wires()
};

}  // namespace starlay::layout
