#pragma once
/// \file layout.hpp
/// \brief The layout container: node rectangles + wires + area queries.
///
/// A Layout is the executable counterpart of the paper's pen-and-paper grid
/// layouts.  Constructions fill it; validate.hpp certifies it; area() is the
/// quantity every lemma of the paper bounds.
///
/// Wires live in a structure-of-arrays WireStore (wire_store.hpp); the
/// bounding box is cached (constructions query area()/width()/height()
/// repeatedly) and invalidated by every geometry mutation, and the O(W)
/// scans (bounding box, layer count, wire lengths) run chunk-parallel with
/// serial per-chunk merges, so they are bit-identical across thread counts.

#include <cstdint>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/wire.hpp"
#include "starlay/layout/wire_store.hpp"

namespace starlay::layout {

class Layout {
 public:
  /// Creates a layout for \p num_nodes topology vertices (rects unset).
  explicit Layout(std::int32_t num_nodes);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes_.size()); }
  std::int64_t num_wires() const { return wires_.size(); }

  void set_node_rect(std::int32_t node, const Rect& r);
  const Rect& node_rect(std::int32_t node) const;
  const std::vector<Rect>& node_rects() const { return nodes_; }

  void add_wire(const Wire& w) {
    wires_.push_back(w);
    bb_valid_ = false;
  }
  const WireStore& wires() const { return wires_; }
  /// Materializes wire \p i as the AoS value type (tests, repairs).
  Wire wire(std::int64_t i) const { return wires_.extract(i); }
  /// Replaces wire \p i wholesale; O(total points) when the size changes.
  void replace_wire(std::int64_t i, const Wire& w) {
    wires_.replace(i, w);
    bb_valid_ = false;
  }
  /// Installs a bulk-built store (route_grid's two-phase parallel build).
  void set_wires(WireStore&& s) {
    wires_ = std::move(s);
    bb_valid_ = false;
  }
  void reserve_wires(std::int64_t n) { wires_.reserve(n, 4 * n); }

  /// Number of wiring layers used (max layer index over all wires; >= 2
  /// whenever any wire exists, matching Thompson's two-layer guarantee).
  int num_layers() const;

  /// Smallest upright rectangle containing all nodes and wires.  Cached;
  /// recomputed (chunk-parallel) after any mutation.
  const Rect& bounding_box() const;
  Coord width() const { return bounding_box().width(); }
  Coord height() const { return bounding_box().height(); }

  /// Thompson-model layout area: grid-point count of the bounding box.
  std::int64_t area() const { return bounding_box().area(); }

  /// Total wire length (sum of Manhattan lengths of all wires).
  std::int64_t total_wire_length() const;

  /// Longest single wire (Manhattan length).
  std::int64_t max_wire_length() const;

  /// Flattens every wire into per-layer oriented segments in wire-major
  /// order (drops zero-length artifacts).  The validator uses the bucketed
  /// SegmentIndex instead; this remains for renderers, tests, and tools.
  std::vector<LayerSegment> segments() const;

 private:
  std::vector<Rect> nodes_;
  WireStore wires_;
  mutable Rect bb_;
  mutable bool bb_valid_ = false;
};

}  // namespace starlay::layout
