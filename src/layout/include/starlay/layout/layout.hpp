#pragma once
/// \file layout.hpp
/// \brief The layout container: node rectangles + wires + area queries.
///
/// A Layout is the executable counterpart of the paper's pen-and-paper grid
/// layouts.  Constructions fill it; validate.hpp certifies it; area() is the
/// quantity every lemma of the paper bounds.

#include <cstdint>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/wire.hpp"

namespace starlay::layout {

class Layout {
 public:
  /// Creates a layout for \p num_nodes topology vertices (rects unset).
  explicit Layout(std::int32_t num_nodes);

  std::int32_t num_nodes() const { return static_cast<std::int32_t>(nodes_.size()); }
  std::int64_t num_wires() const { return static_cast<std::int64_t>(wires_.size()); }

  void set_node_rect(std::int32_t node, const Rect& r);
  const Rect& node_rect(std::int32_t node) const;
  const std::vector<Rect>& node_rects() const { return nodes_; }

  void add_wire(const Wire& w) { wires_.push_back(w); }
  const std::vector<Wire>& wires() const { return wires_; }
  std::vector<Wire>& mutable_wires() { return wires_; }
  void reserve_wires(std::int64_t n) { wires_.reserve(static_cast<std::size_t>(n)); }

  /// Number of wiring layers used (max layer index over all wires; >= 2
  /// whenever any wire exists, matching Thompson's two-layer guarantee).
  int num_layers() const;

  /// Smallest upright rectangle containing all nodes and wires.
  Rect bounding_box() const;
  Coord width() const { return bounding_box().width(); }
  Coord height() const { return bounding_box().height(); }

  /// Thompson-model layout area: grid-point count of the bounding box.
  std::int64_t area() const { return bounding_box().area(); }

  /// Total wire length (sum of Manhattan lengths of all wires).
  std::int64_t total_wire_length() const;

  /// Longest single wire (Manhattan length).
  std::int64_t max_wire_length() const;

  /// Flattens every wire into per-layer oriented segments (drops
  /// zero-length artifacts).  Used by the validator and renderer.
  std::vector<LayerSegment> segments() const;

 private:
  std::vector<Rect> nodes_;
  std::vector<Wire> wires_;
};

}  // namespace starlay::layout
