#pragma once
/// \file wire_rules.hpp
/// \brief Per-wire validation rules shared by both validation pipelines.
///
/// The materialized validator (validate.cpp) and the streaming certifier
/// (stream_certify.cpp) must produce the same verdict for the same
/// geometry.  Every check that looks at one wire in isolation — path
/// shape, layer discipline, endpoint attachment, node clearance — lives
/// here as a template over the wire view (WireRef for stored wires, the
/// Wire value type for streamed ones), so the two pipelines cannot drift.
///
/// Error message texts are part of the shared contract: tests and the CLI
/// print them, and the stream-vs-materialized tests compare totals.

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/rect_index.hpp"
#include "starlay/layout/wire.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::layout {

inline std::string format_point(Point p) {
  std::ostringstream os;
  os << "(" << p.x << "," << p.y << ")";
  return os.str();
}

inline bool on_node_boundary(const Rect& r, Point p) {
  return r.contains(p) && !r.strictly_contains(p);
}

/// Adapter giving the Wire value type the WireRef accessor surface, so the
/// rule templates below take either interchangeably.
class WireValueView {
 public:
  explicit WireValueView(const Wire& w) : w_(&w) {}
  std::int64_t edge() const { return w_->edge; }
  std::int16_t h_layer() const { return w_->h_layer; }
  std::int16_t v_layer() const { return w_->v_layer; }
  int npts() const { return w_->npts; }
  Point pt(int i) const { return w_->pts[static_cast<std::size_t>(i)]; }
  Point front() const { return w_->front(); }
  Point back() const { return w_->back(); }

 private:
  const Wire* w_;
};

/// Path rules (orthogonal alternating polyline, X-Y layer discipline) and
/// endpoint attachment for one wire.  \p wi is the wire's index (used only
/// in messages), \p rects the per-vertex node rectangles.  Emits zero or
/// more error strings via \p emit.
///
/// The graph and rect parameters are templates so the sharded out-of-core
/// engine can substitute analytic views (edge endpoints and node rects
/// computed on the fly from grid coordinates, never materialized): \p g
/// needs num_edges() and edge(e) with .u/.v members, \p rects an
/// operator[] yielding a Rect (by value or reference).  topology::Graph
/// and std::vector<Rect> keep the materialized pipeline unchanged.
template <typename W, typename G, typename Rects, typename Emit>
void check_wire_path(const W& w, std::int64_t wi, const G& g, const Rects& rects,
                     const Emit& emit) {
  // Built lazily: clean wires (the overwhelming majority) must not pay for
  // a heap string each.
  const auto tag = [wi] { return "wire " + std::to_string(wi); };
  if (w.npts() < 2) {
    emit(tag() + ": fewer than 2 points");
    return;
  }
  if (w.h_layer() < 1 || w.h_layer() % 2 != 1) emit(tag() + ": h_layer must be odd >= 1");
  if (w.v_layer() < 2 || w.v_layer() % 2 != 0) emit(tag() + ": v_layer must be even >= 2");
  if (std::abs(w.h_layer() - w.v_layer()) != 1) emit(tag() + ": layers not adjacent");
  for (int i = 1; i < w.npts(); ++i) {
    const Point a = w.pt(i - 1), b = w.pt(i);
    const bool dx = a.x != b.x, dy = a.y != b.y;
    if (dx == dy) {  // both (diagonal) or neither (repeated point)
      emit(tag() + ": segment " + format_point(a) + "->" + format_point(b) +
           " not a proper orthogonal step");
      break;
    }
    if (i >= 2) {
      const Point z = w.pt(i - 2);
      const bool prev_horizontal = z.y == a.y;
      if (prev_horizontal == (a.y == b.y)) {
        emit(tag() + ": consecutive collinear segments (merge them)");
        break;
      }
    }
  }
  // Endpoint attachment.
  if (w.edge() >= 0 && w.edge() < g.num_edges()) {
    const auto& e = g.edge(w.edge());
    const Rect& ru = rects[static_cast<std::size_t>(e.u)];
    const Rect& rv = rects[static_cast<std::size_t>(e.v)];
    const Point a = w.front(), b = w.back();
    const bool ok_uv = on_node_boundary(ru, a) && on_node_boundary(rv, b);
    const bool ok_vu = on_node_boundary(rv, a) && on_node_boundary(ru, b);
    if (!(ok_uv || ok_vu))
      emit(tag() + ": endpoints " + format_point(a) + "," + format_point(b) +
           " not on its nodes' boundaries");
  }
}

/// Node clearance for one wire: it may touch only its own two endpoint
/// nodes, at exactly one boundary point each (its endpoints).
///
/// Like check_wire_path, templated over the graph view, the rect index
/// (needs for_touching(horizontal, line, lo, hi, f) calling f with node
/// ids) and the rect lookup.  \p name renders a node id for error messages
/// — the sharded engine addresses nodes by placement slot internally but
/// must report the same vertex ids the in-process certifier prints, so it
/// passes a slot-to-rank decoder here.
template <typename W, typename G, typename Index, typename Rects, typename Emit,
          typename Name>
void check_wire_clearance(const W& w, std::int64_t wi, const G& g, const Index& index,
                          const Rects& rects, const Emit& emit, const Name& name) {
  std::int32_t nu = -1, nv = -1;
  if (w.edge() >= 0 && w.edge() < g.num_edges()) {
    nu = g.edge(w.edge()).u;
    nv = g.edge(w.edge()).v;
  }
  for (int i = 1; i < w.npts(); ++i) {
    const Point a = w.pt(i - 1), b = w.pt(i);
    const bool horizontal = a.y == b.y;
    const Coord line = horizontal ? a.y : a.x;
    const Coord lo = horizontal ? std::min(a.x, b.x) : std::min(a.y, b.y);
    const Coord hi = horizontal ? std::max(a.x, b.x) : std::max(a.y, b.y);
    index.for_touching(horizontal, line, lo, hi, [&](std::int32_t node) {
      if (node != nu && node != nv) {
        emit("wire " + std::to_string(wi) + " touches foreign node " + name(node));
        return;
      }
      // Own node: the intersection must be a single boundary point and
      // must be this wire's endpoint at that node.
      const Rect& r = rects[static_cast<std::size_t>(node)];
      const Coord cl = std::max(lo, horizontal ? r.x0 : r.y0);
      const Coord ch = std::min(hi, horizontal ? r.x1 : r.y1);
      const bool line_inside =
          horizontal ? (line >= r.y0 && line <= r.y1) : (line >= r.x0 && line <= r.x1);
      if (!line_inside || cl > ch) return;  // no real intersection
      if (cl != ch) {
        emit("wire " + std::to_string(wi) + " runs along/through its node " + name(node));
        return;
      }
      const Point touch = horizontal ? Point{cl, line} : Point{line, cl};
      if (!(touch == w.front() || touch == w.back()))
        emit("wire " + std::to_string(wi) + " passes over its own node " + name(node) +
             " at non-endpoint " + format_point(touch));
    });
  }
}

/// Default-name overload: node ids render as their decimal vertex ids (the
/// materialized validator and the in-process certifier).
template <typename W, typename G, typename Index, typename Rects, typename Emit>
void check_wire_clearance(const W& w, std::int64_t wi, const G& g, const Index& index,
                          const Rects& rects, const Emit& emit) {
  check_wire_clearance(w, wi, g, index, rects, emit,
                       [](std::int32_t node) { return std::to_string(node); });
}

/// Node-size window checks for one node (Thompson / extended grid).
/// \p degree is the node's topology degree (only read when
/// \p thompson_node_size is set).
template <typename Emit>
void check_node_rect(std::int32_t v, const Rect& r, std::int32_t degree,
                     Coord min_node_side, Coord max_node_side, bool thompson_node_size,
                     const Emit& emit) {
  if (r.empty()) {
    emit("node " + std::to_string(v) + " has no rectangle");
    return;
  }
  if (thompson_node_size) {
    const Coord want = std::max<Coord>(1, degree);
    if (r.width() != want || r.height() != want)
      emit("node " + std::to_string(v) + " is " + std::to_string(r.width()) + "x" +
           std::to_string(r.height()) + ", Thompson model wants side " +
           std::to_string(want));
  }
  if (min_node_side > 0 && (r.width() < min_node_side || r.height() < min_node_side))
    emit("node " + std::to_string(v) + " smaller than extended-grid minimum");
  if (max_node_side > 0 && (r.width() > max_node_side || r.height() > max_node_side))
    emit("node " + std::to_string(v) + " larger than extended-grid maximum");
}

}  // namespace starlay::layout
