#pragma once
/// \file geometry.hpp
/// \brief Integer grid geometry for VLSI layouts.
///
/// All coordinates are 64-bit: an n-star layout has side ~n!/4, so a 9-star
/// already needs coordinates near 10^5 and areas near 10^10.

#include <cstdint>

namespace starlay::layout {

using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

/// Closed axis-aligned rectangle [x0, x1] x [y0, y1] of grid points.
struct Rect {
  Coord x0 = 0;
  Coord y0 = 0;
  Coord x1 = -1;  // empty by default
  Coord y1 = -1;

  bool empty() const { return x1 < x0 || y1 < y0; }
  Coord width() const { return empty() ? 0 : x1 - x0 + 1; }
  Coord height() const { return empty() ? 0 : y1 - y0 + 1; }
  std::int64_t area() const { return width() * height(); }

  bool contains(Point p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }
  /// True when \p p lies strictly inside (not on the boundary).
  bool strictly_contains(Point p) const {
    return p.x > x0 && p.x < x1 && p.y > y0 && p.y < y1;
  }
  /// Grows the rectangle to cover \p p.
  void cover(Point p) {
    if (empty()) {
      x0 = x1 = p.x;
      y0 = y1 = p.y;
      return;
    }
    if (p.x < x0) x0 = p.x;
    if (p.x > x1) x1 = p.x;
    if (p.y < y0) y0 = p.y;
    if (p.y > y1) y1 = p.y;
  }
  void cover(const Rect& r) {
    if (r.empty()) return;
    cover(Point{r.x0, r.y0});
    cover(Point{r.x1, r.y1});
  }
  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Closed 1-D interval [lo, hi]; used for track packing.
struct Interval {
  Coord lo = 0;
  Coord hi = 0;
  bool overlaps_closed(const Interval& o) const { return lo <= o.hi && o.lo <= hi; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

}  // namespace starlay::layout
