#pragma once
/// \file channel.hpp
/// \brief Track assignment within a routing channel (left-edge packing).
///
/// Every layout in the paper boils down to: assign each wire segment in a
/// channel to a track so that segments on the same track are disjoint.  The
/// paper gives explicit modular assignment rules (Lemma 2.1); this module
/// provides the classic left-edge algorithm instead, which is *optimal per
/// channel* — for interval graphs the greedy coloring attains the clique
/// number, i.e. the maximum closed-coverage density.  The explicit paper
/// rules are implemented in core/collinear_complete.* and cross-checked to
/// give identical track counts (experiment E11).
///
/// Intervals are CLOSED: two segments sharing even one grid point must land
/// on different tracks.  This is what makes the downstream 3-D via argument
/// work (see wire.hpp / validate.hpp).

#include <cstdint>
#include <span>
#include <vector>

namespace starlay::layout {

/// A packing request: closed interval [lo, hi] in an ordinal key space.
struct PackRequest {
  std::int64_t lo;
  std::int64_t hi;
};

struct PackResult {
  std::vector<std::int32_t> track;  ///< per request, in input order
  std::int32_t num_tracks = 0;
};

/// Left-edge packing of closed intervals.  Returns the minimum number of
/// tracks (= max closed coverage) and a valid assignment.
PackResult pack_intervals_left_edge(std::span<const PackRequest> reqs);

/// Maximum number of intervals covering a single point (closed coverage).
/// Lower bound for any packing; equals left-edge's track count.
std::int64_t max_closed_coverage(std::span<const PackRequest> reqs);

/// True when no two requests assigned to the same track overlap (closed).
bool packing_is_valid(std::span<const PackRequest> reqs, const PackResult& result);

}  // namespace starlay::layout
