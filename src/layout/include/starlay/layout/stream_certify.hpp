#pragma once
/// \file stream_certify.hpp
/// \brief Streaming certification: validate + measure wires, then discard.
///
/// The materialized pipeline holds every wire in memory (WireStore), then
/// builds global indices over all of them (SegmentIndex, via arrays) to run
/// the track-exclusivity and via audits.  At star dimension 10 that is
/// ~16.3M wires and several GB of transient index state.  The
/// StreamingCertifier runs the same rule set without ever materializing the
/// full geometry:
///
///  * Per-wire rules (path shape, layer discipline, endpoint attachment,
///    node clearance) and the scalar accumulators (bounding box, wire
///    lengths, segment count) need one look at each wire — they run in a
///    single chunk-parallel pass over the emit_bulk fill.
///  * The cross-wire rules (track exclusivity, via-via, via-pierce) only
///    relate records that share a grid line: horizontal segments and
///    odd-layer via probes are keyed by y, vertical segments and even-layer
///    probes by x, vias by x.  Lines are grouped into *bands*
///    (line >> band_shift) and consecutive bands are greedily packed into
///    batches whose record bytes fit batch_budget_bytes.  For each batch
///    the fill is replayed, only the records falling in the batch's bands
///    are collected, sorted, and scanned with the same SIMD certification
///    kernels (kernels/kernels.hpp) the materialized validator streams:
///    a tiled vectorized count pass first, then a scalar re-scan that
///    builds error strings only for batches reporting conflicts.  A
///    (layer, orientation, line) group always falls entirely inside one
///    batch, so the adjacent-pair scans see the same pairs the global sort
///    would have produced, and the pierce probes inspect the same
///    kernels::kCoverWindow candidates — verdict and error totals match
///    validate_layout at every SIMD level.
///
/// The verdict (ok), the total error count and the measured quantities are
/// identical to running validate_layout on the materialized layout; only
/// the order of the retained error *messages* may differ (the materialized
/// validator reports rule-by-rule over all wires, the streaming one
/// batch-by-batch).
///
/// emit_bulk's fill is replayed 2 + (number of batches) times, so it must
/// be pure (see wire_sink.hpp).  Serial constructions that use emit() are
/// buffered and certified through the identical code path at end().

#include <cstdint>
#include <memory>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/layout.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/layout/wire_sink.hpp"

namespace starlay::layout {

struct StreamOptions {
  ValidationOptions validation;
  /// Approximate cap on the record bytes held by one cross-wire batch.
  std::int64_t batch_budget_bytes = std::int64_t{384} << 20;
  /// Grid lines per spatial band: band = (line - base) >> band_shift.
  int band_shift = 12;
  /// Non-empty: wires and node rects intersecting this window are kept in
  /// retained_layout() for rendering a zoomed view of the (discarded) whole.
  Rect retain_window;
};

/// Everything the materialized pipeline would have reported, minus the
/// geometry itself.
struct StreamReport {
  ValidationReport validation;
  std::int64_t num_wires = 0;
  int num_layers = 0;       ///< == Layout::num_layers()
  Rect bounding_box;        ///< == Layout::bounding_box()
  std::int64_t area = 0;    ///< == Layout::area()
  std::int64_t total_wire_length = 0;
  std::int64_t max_wire_length = 0;
  std::int64_t num_batches = 0;   ///< cross-wire batches run
  std::int64_t num_replays = 0;   ///< times the fill was invoked per index
};

class StreamingCertifier final : public WireSink {
 public:
  explicit StreamingCertifier(StreamOptions opt = {});
  ~StreamingCertifier() override;

  void begin(const topology::Graph& g, std::vector<Rect>&& nodes) override;
  void emit(const Wire& w) override;
  void emit_bulk(std::int64_t count, std::int64_t grain, const WireFill& fill) override;
  void end() override;

  /// Certification results; valid after end().
  const StreamReport& report() const;

  /// Wires/nodes captured inside StreamOptions::retain_window (empty
  /// layout when no window was set); valid after end().
  const Layout& retained_layout() const;

 private:
  void process(std::int64_t count, std::int64_t grain, const WireFill& fill);

  StreamOptions opt_;
  const topology::Graph* g_ = nullptr;
  std::vector<Rect> nodes_;
  std::vector<Wire> buffered_;  ///< emit() path; certified at end()
  bool begun_ = false;
  bool bulk_done_ = false;
  bool done_ = false;
  StreamReport rep_;
  Layout retained_{0};
};

}  // namespace starlay::layout
