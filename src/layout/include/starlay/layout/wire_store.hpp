#pragma once
/// \file wire_store.hpp
/// \brief Structure-of-arrays wire storage: the layout data plane.
///
/// A layout holds up to ~1.5M wires at star dimension n = 9; the AoS
/// `std::vector<Wire>` representation spends a fixed 144 bytes per wire
/// (8-point capacity) although wires carry 2-7 actual points.  WireStore
/// keeps one flat point buffer (32-bit coordinates — checked on append;
/// any realistic layout side fits comfortably), per-wire offsets into it,
/// and one parallel metadata array (edge, h_layer, v_layer).  At the star
/// layouts' ~4.5 points per wire this is ~56 bytes per wire, every O(W)
/// pass streams linearly, and per-wire padding disappears.
///
/// `Wire` (wire.hpp) remains the value/builder type: constructions build a
/// Wire on the stack and append it; consumers read through the `WireRef`
/// view, whose accessors mirror the old Wire fields one-for-one.

#include <cstdint>
#include <functional>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/wire.hpp"
#include "starlay/support/check.hpp"

namespace starlay::layout {

/// Internal 32-bit point of the flat buffer.  Narrowing is checked on
/// append; coordinates are widened back to Coord on read.
struct Point32 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Point32&, const Point32&) = default;
};

class WireStore;

/// Lightweight view of one stored wire; accessors mirror Wire's fields.
class WireRef {
 public:
  std::int64_t edge() const;
  std::int16_t h_layer() const;
  std::int16_t v_layer() const;
  int npts() const;
  Point pt(int i) const;
  Point front() const { return pt(0); }
  Point back() const { return pt(npts() - 1); }
  std::int64_t index() const { return i_; }

 private:
  friend class WireStore;
  WireRef(const WireStore* store, std::int64_t i) : store_(store), i_(i) {}
  const WireStore* store_;
  std::int64_t i_;
};

/// Flat SoA container of wires.
class WireStore {
 public:
  struct Meta {
    std::int64_t edge = -1;
    std::int16_t h_layer = 1;
    std::int16_t v_layer = 2;
  };

  std::int64_t size() const { return static_cast<std::int64_t>(meta_.size()); }
  bool empty() const { return meta_.empty(); }
  std::int64_t num_points() const { return static_cast<std::int64_t>(pts_.size()); }

  WireRef operator[](std::int64_t i) const { return WireRef(this, i); }

  /// Index-based forward iteration yielding WireRef views.
  class const_iterator {
   public:
    const_iterator(const WireStore* s, std::int64_t i) : store_(s), i_(i) {}
    WireRef operator*() const { return WireRef(store_, i_); }
    const_iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }

   private:
    const WireStore* store_;
    std::int64_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

  void reserve(std::int64_t wires, std::int64_t points);

  /// Appends \p w (coordinates are checked against the 32-bit range).
  void push_back(const Wire& w);

  /// Materializes wire \p i back into the AoS value type.
  Wire extract(std::int64_t i) const;

  /// Replaces wire \p i, shifting the point buffer when the point count
  /// changes.  O(total points); meant for tests and small repairs.
  void replace(std::int64_t i, const Wire& w);

  /// Two-phase chunk-parallel bulk build: \p fill(i, wire) must write wire
  /// i deterministically (it is invoked twice — once to size the point
  /// buffer, once to fill it).  Offsets are a prefix sum over counts, so
  /// the result is bit-identical for every thread count.
  static WireStore build_parallel(std::int64_t count, std::int64_t grain,
                                  const std::function<void(std::int64_t, Wire&)>& fill);

  // Raw access for streaming passes (renderer, validator, fingerprints).
  const Point32* raw_points() const { return pts_.data(); }
  const std::uint32_t* raw_offsets() const { return off_.data(); }  ///< size()+1 entries
  const Meta* raw_meta() const { return meta_.data(); }

 private:
  friend class WireRef;
  std::vector<Point32> pts_;
  std::vector<std::uint32_t> off_{0};  ///< off_[i]..off_[i+1]: wire i's points
  std::vector<Meta> meta_;
};

inline std::int64_t WireRef::edge() const {
  return store_->meta_[static_cast<std::size_t>(i_)].edge;
}
inline std::int16_t WireRef::h_layer() const {
  return store_->meta_[static_cast<std::size_t>(i_)].h_layer;
}
inline std::int16_t WireRef::v_layer() const {
  return store_->meta_[static_cast<std::size_t>(i_)].v_layer;
}
inline int WireRef::npts() const {
  return static_cast<int>(store_->off_[static_cast<std::size_t>(i_) + 1] -
                          store_->off_[static_cast<std::size_t>(i_)]);
}
inline Point WireRef::pt(int i) const {
  const Point32& p =
      store_->pts_[store_->off_[static_cast<std::size_t>(i_)] + static_cast<std::size_t>(i)];
  return {p.x, p.y};
}

}  // namespace starlay::layout
