#pragma once
/// \file rect_index.hpp
/// \brief Y-banded rectangle index for node-clearance queries.
///
/// Node rectangles grouped by their y-interval for fast "which rects does
/// this segment touch" queries; grid layouts have one group per node row.
/// Groups are expected to be y-disjoint (nodes in distinct row bands); the
/// index stays correct otherwise but degrades to scanning.  Shared by the
/// materialized validator (validate.cpp) and the streaming certifier
/// (stream_certify.cpp), which must agree on clearance semantics exactly.
///
/// Queries dominate validation (one per wire segment), so the entries are
/// packed into int32 SoA arrays scanned by the branchless rect-overlap
/// kernel, and the group lookup goes through a dense y -> group table (one
/// load instead of a binary search) when the y-range is modest.  Layouts
/// whose node coordinates exceed int32 — impossible for routed wires, which
/// WireStore clamps, but legal for bare node rects — keep the original
/// wide-entry scan path.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "starlay/layout/geometry.hpp"
#include "starlay/layout/kernels/kernels.hpp"

namespace starlay::layout {

class RectIndex {
 public:
  explicit RectIndex(const std::vector<Rect>& rects) {
    // Sort-then-group over one flat vector: one allocation and a single
    // sort instead of a node-count's worth of std::map rebalancing.
    entries_.reserve(rects.size());
    bool fits32 = true;
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].empty()) continue;
      entries_.push_back({rects[i].y0, rects[i].y1, rects[i].x0, rects[i].x1,
                          static_cast<std::int32_t>(i)});
      fits32 = fits32 && fits_int32(rects[i].x0) && fits_int32(rects[i].x1) &&
               fits_int32(rects[i].y0) && fits_int32(rects[i].y1);
    }
    std::sort(entries_.begin(), entries_.end());
    max_band_height_ = 0;
    for (std::size_t i = 0; i < entries_.size();) {
      std::size_t j = i;
      while (j < entries_.size() && entries_[j].y0 == entries_[i].y0 &&
             entries_[j].y1 == entries_[i].y1)
        ++j;
      groups_.push_back({entries_[i].y0, entries_[i].y1, i, j});
      max_band_height_ = std::max(max_band_height_, entries_[i].y1 - entries_[i].y0 + 1);
      i = j;
    }
    // groups_ is sorted by y0 (sort order).
    if (fits32 && !entries_.empty()) {
      packed_ = true;
      x0_.reserve(entries_.size());
      x1_.reserve(entries_.size());
      node_.reserve(entries_.size());
      for (const Entry& e : entries_) {
        x0_.push_back(static_cast<std::int32_t>(e.x0));
        x1_.push_back(static_cast<std::int32_t>(e.x1));
        node_.push_back(e.node);
      }
      entries_.clear();  // packed queries never touch the wide entries
      entries_.shrink_to_fit();
      // Dense y -> first-group-with-y0>=y table, capped so a pathological
      // coordinate range cannot blow up memory (falls back to the binary
      // search on groups_ beyond the cap).
      const Coord ymin = groups_.front().y0;
      const Coord ymax = groups_.back().y0;
      const Coord range = ymax - ymin + 1;
      if (range <= (Coord{1} << 22)) {
        ymin_ = ymin;
        ymax_ = ymax;
        ytab_.assign(static_cast<std::size_t>(range), 0);
        std::size_t g = groups_.size();
        for (Coord y = ymax; y >= ymin; --y) {
          while (g > 0 && groups_[g - 1].y0 >= y) --g;
          ytab_[static_cast<std::size_t>(y - ymin)] = static_cast<std::uint32_t>(g);
        }
      }
      // Column-occupancy bitmap: bit g of column x is set iff some rect in
      // group g covers column x.  Vertical clearance queries — one fixed
      // column, potentially crossing every row band — then probe only the
      // groups that can match instead of binary-searching each band they
      // cross.  Capped (64 MB of words) so a wide layout cannot blow up
      // memory; queries beyond the cap fall back to the band walk.
      std::int32_t xmin = std::numeric_limits<std::int32_t>::max();
      std::int32_t xmax = std::numeric_limits<std::int32_t>::min();
      for (std::size_t i = 0; i < x0_.size(); ++i) {
        xmin = std::min(xmin, x0_[i]);
        xmax = std::max(xmax, x1_[i]);
      }
      const std::int64_t ncols = static_cast<std::int64_t>(xmax) - xmin + 1;
      const std::int64_t words = (static_cast<std::int64_t>(groups_.size()) + 63) / 64;
      if (ncols > 0 && ncols * words <= (std::int64_t{1} << 23)) {
        xmin_ = xmin;
        xmax_ = xmax;
        col_words_ = static_cast<std::size_t>(words);
        colmap_.assign(static_cast<std::size_t>(ncols * words), 0);
        for (std::size_t g = 0; g < groups_.size(); ++g) {
          const std::uint64_t bit = std::uint64_t{1} << (g % 64);
          const std::size_t word = g / 64;
          for (std::size_t i = groups_[g].begin; i < groups_[g].end; ++i)
            for (std::int64_t x = x0_[i]; x <= x1_[i]; ++x)
              colmap_[static_cast<std::size_t>(x - xmin) * col_words_ + word] |= bit;
        }
        // One-bit-per-column summary: most vertical segments run in
        // routing channels no rect covers, so one cache-resident bit test
        // rejects them before the per-column word scan.
        colcov_.assign(static_cast<std::size_t>((ncols + 63) / 64), 0);
        for (std::int64_t c = 0; c < ncols; ++c) {
          const std::uint64_t* w = colmap_.data() + static_cast<std::size_t>(c) * col_words_;
          for (std::size_t k = 0; k < col_words_; ++k)
            if (w[k] != 0) {
              colcov_[static_cast<std::size_t>(c / 64)] |= std::uint64_t{1} << (c % 64);
              break;
            }
        }
      }
      // Row summary, same idea for horizontal segments: bit y set iff some
      // band covers row y.  Independent of the colmap cap, but bounded so
      // a pathological y-range cannot blow up memory.
      {
        const Coord rymin = groups_.front().y0;
        Coord rymax = groups_.front().y1;
        for (const Group& grp : groups_) rymax = std::max(rymax, grp.y1);
        const Coord rows = rymax - rymin + 1;
        if (rows > 0 && rows <= (Coord{1} << 25)) {
          rymin_ = rymin;
          rymax_ = rymax;
          rowcov_.assign(static_cast<std::size_t>((rows + 63) / 64), 0);
          for (const Group& grp : groups_)
            for (Coord y = grp.y0; y <= grp.y1; ++y)
              rowcov_[static_cast<std::size_t>((y - rymin) / 64)] |=
                  std::uint64_t{1} << ((y - rymin) % 64);
        }
      }
    }
  }

  /// One-bit summary test: false when no rect covers the query line (the
  /// row for horizontal segments, the column for vertical ones), in which
  /// case no segment on that line can touch any rect and a whole same-line
  /// run can be skipped without probing.  Conservatively true when the
  /// summary tables are unavailable (wide-coordinate path or capped out).
  bool line_may_touch(bool horizontal, Coord line) const {
    if (!packed_) return true;
    if (horizontal) {
      if (rowcov_.empty()) return true;
      if (line < rymin_ || line > rymax_) return false;
      const Coord r = line - rymin_;
      return ((rowcov_[static_cast<std::size_t>(r / 64)] >> (r % 64)) & 1) != 0;
    }
    if (colcov_.empty()) return true;
    if (line < xmin_ || line > xmax_) return false;
    const std::int64_t c = line - xmin_;
    return ((colcov_[static_cast<std::size_t>(c / 64)] >> (c % 64)) & 1) != 0;
  }

  /// Invokes \p f(node) for every rect whose closed area intersects the
  /// closed segment (horizontal ? [lo,hi] x {line} : {line} x [lo,hi]).
  template <typename F>
  void for_touching(bool horizontal, Coord line, Coord lo, Coord hi, F&& f) const {
    const Coord ylo = horizontal ? line : lo;
    const Coord yhi = horizontal ? line : hi;
    const Coord xlo = horizontal ? lo : line;
    const Coord xhi = horizontal ? hi : line;
    // First group that can intersect [ylo, yhi]: any such group has
    // y0 >= ylo - (max height - 1).  Deferred behind the one-bit rejects on
    // the packed path, which drop most channel-running segments without
    // ever touching the y table.
    const auto first_group = [&]() -> std::size_t {
      const Coord want = ylo - (max_band_height_ - 1);
      if (!ytab_.empty()) {
        if (want <= ymin_) return 0;
        if (want > ymax_) return groups_.size();
        return ytab_[static_cast<std::size_t>(want - ymin_)];
      }
      return static_cast<std::size_t>(
          std::lower_bound(groups_.begin(), groups_.end(), want,
                           [](const Group& grp, Coord y) { return grp.y0 < y; }) -
          groups_.begin());
    };
    if (!packed_) {
      std::size_t g = first_group();
      for (; g < groups_.size() && groups_[g].y0 <= yhi; ++g) {
        const Group& grp = groups_[g];
        if (grp.y1 < ylo) continue;
        const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(grp.begin);
        const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(grp.end);
        auto it = std::lower_bound(first, last, xlo,
                                   [](const Entry& e, Coord x) { return e.x1 < x; });
        // Entries are sorted by (x0, x1); x1 is monotone in x0 for
        // disjoint same-row rects, so linear scan from `it` is exact.
        for (; it != last && it->x0 <= xhi; ++it) f(it->node);
      }
      return;
    }
    // Packed path: entry coordinates all fit int32, so a query window
    // clamped to int32 preserves every closed-intersection verdict.
    if (xhi < xlo || yhi < ylo) return;
    // Cache-resident one-bit rejects: a horizontal segment can only touch
    // a rect whose band covers its row; a vertical one, a rect covering
    // its column.  Most segments run in channels and fail these tests.
    if (horizontal) {
      if (!rowcov_.empty()) {
        if (line < rymin_ || line > rymax_) return;
        const Coord r = line - rymin_;
        if (((rowcov_[static_cast<std::size_t>(r / 64)] >> (r % 64)) & 1) == 0) return;
      }
    } else if (!colcov_.empty()) {
      if (line < xmin_ || line > xmax_) return;
      const std::int64_t c = line - xmin_;
      if (((colcov_[static_cast<std::size_t>(c / 64)] >> (c % 64)) & 1) == 0) return;
    }
    const std::int32_t qxlo = clamp32(xlo);
    const std::int32_t qxhi = clamp32(xhi);
    std::size_t g = first_group();
    const kernels::KernelTable& K = kernels::active();
    const auto probe_group = [&](const Group& grp) {
      const std::int64_t e = static_cast<std::int64_t>(grp.end);
      // First candidate by x1 (monotone in x0 for disjoint same-row
      // rects); the kernel re-checks x1 >= xlo per entry, so rows that
      // break the monotonicity assumption only cost extra scanning.
      std::int64_t it = std::lower_bound(x1_.begin() + static_cast<std::ptrdiff_t>(grp.begin),
                                         x1_.begin() + static_cast<std::ptrdiff_t>(grp.end),
                                         qxlo) -
                        x1_.begin();
      while ((it = K.find_rect_overlap(x0_.data(), x1_.data(), e, it, qxlo, qxhi)) >= 0) {
        f(node_[static_cast<std::size_t>(it)]);
        ++it;
      }
    };
    if (!horizontal && !colmap_.empty()) {
      // Vertical fast path: walk only the set bits of this column's
      // occupancy word run, clamped to the groups that can reach [ylo,
      // yhi].  Bits come out in ascending group order, so the callback
      // order matches the band walk exactly.
      if (line < xmin_ || line > xmax_) return;
      std::size_t gend;  // first group with y0 > yhi
      if (yhi >= groups_.back().y0) {
        gend = groups_.size();
      } else if (!ytab_.empty()) {
        // yhi < back().y0 == ymax_, so yhi + 1 neither overflows nor
        // leaves the table.
        gend = yhi + 1 <= ymin_ ? 0 : ytab_[static_cast<std::size_t>(yhi + 1 - ymin_)];
      } else {
        gend = static_cast<std::size_t>(
            std::lower_bound(groups_.begin(), groups_.end(), yhi,
                             [](const Group& grp, Coord y) { return grp.y0 <= y; }) -
            groups_.begin());
      }
      if (gend <= g) return;
      const std::uint64_t* col =
          colmap_.data() + static_cast<std::size_t>(line - xmin_) * col_words_;
      std::size_t w = g / 64;
      const std::size_t wlast = (gend - 1) / 64;
      std::uint64_t bits = col[w] & (~std::uint64_t{0} << (g % 64));
      for (;;) {
        if (w == wlast && (gend % 64) != 0)
          bits &= ~std::uint64_t{0} >> (64 - gend % 64);
        while (bits != 0) {
          const std::size_t gg = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
          bits &= bits - 1;
          const Group& grp = groups_[gg];
          if (grp.y1 < ylo) continue;
          probe_group(grp);
        }
        if (w == wlast) return;
        bits = col[++w];
      }
    }
    for (; g < groups_.size() && groups_[g].y0 <= yhi; ++g) {
      if (groups_[g].y1 < ylo) continue;
      probe_group(groups_[g]);
    }
  }

  /// Sum of for_touching() counts over a same-line run of segments sorted
  /// ascending by \p lo — the shape the clearance count pass hands in (one
  /// SegmentIndex line run at a time).  Exactly equal to calling
  /// for_touching per segment and counting callbacks, but the per-segment
  /// first-candidate binary search collapses into a merge cursor that only
  /// moves forward as lo ascends, and on the vertical path each row band's
  /// per-column rect count is taken once per run instead of once per
  /// segment crossing it.
  std::int64_t count_touching_run(bool horizontal, Coord line, const std::int32_t* lo,
                                  const std::int32_t* hi, std::int64_t n) const {
    if (n <= 0) return 0;
    if (!line_may_touch(horizontal, line)) return 0;
    if (!packed_ || (!horizontal && colmap_.empty())) {
      std::int64_t c = 0;
      for (std::int64_t i = 0; i < n; ++i)
        for_touching(horizontal, line, lo[i], hi[i], [&](std::int32_t) { ++c; });
      return c;
    }
    std::int64_t total = 0;
    const auto group_lb = [&](Coord want) -> std::size_t {
      if (!ytab_.empty()) {
        if (want <= ymin_) return 0;
        if (want > ymax_) return groups_.size();
        return ytab_[static_cast<std::size_t>(want - ymin_)];
      }
      return static_cast<std::size_t>(
          std::lower_bound(groups_.begin(), groups_.end(), want,
                           [](const Group& grp, Coord y) { return grp.y0 < y; }) -
          groups_.begin());
    };
    if (horizontal) {
      // The groups covering this row are the same for every segment in the
      // run; merge each one against the run with a forward-only cursor.
      for (std::size_t g = group_lb(line - (max_band_height_ - 1));
           g < groups_.size() && groups_[g].y0 <= line; ++g) {
        if (groups_[g].y1 < line) continue;
        const Group& grp = groups_[g];
        std::size_t it = static_cast<std::size_t>(
            std::lower_bound(x1_.begin() + static_cast<std::ptrdiff_t>(grp.begin),
                             x1_.begin() + static_cast<std::ptrdiff_t>(grp.end), lo[0]) -
            x1_.begin());
        for (std::int64_t i = 0; i < n; ++i) {
          // Entries with x1 < lo[i] can never match a later segment either
          // (lo ascends), so discarding them here is permanent and safe.
          while (it < grp.end && x1_[it] < lo[i]) ++it;
          for (std::size_t j = it; j < grp.end && x0_[j] <= hi[i]; ++j)
            if (x1_[j] >= lo[i]) ++total;
        }
      }
      return total;
    }
    // Vertical: every entry of a group shares one y-interval, so a segment
    // touches either every rect of the group that covers its column or none
    // of them.  Count the column's rects once per covered band (the column
    // bitmap names the candidate bands), then sum per segment by band
    // overlap with a forward-only cursor.
    if (line < xmin_ || line > xmax_) return 0;
    Coord yhi_max = hi[0];
    for (std::int64_t i = 1; i < n; ++i) yhi_max = std::max<Coord>(yhi_max, hi[i]);
    const std::size_t gfirst = group_lb(lo[0] - (max_band_height_ - 1));
    const std::size_t gend =
        yhi_max >= groups_.back().y0 ? groups_.size() : group_lb(yhi_max + 1);
    if (gend <= gfirst) return 0;
    const std::uint64_t* col =
        colmap_.data() + static_cast<std::size_t>(line - xmin_) * col_words_;
    // Covered bands live on the stack: a run's y-window rarely crosses more
    // than a few node rows.  A window wider than the cap (a segment spanning
    // most of the chip) falls back to the per-segment path.
    constexpr std::size_t kMaxBands = 96;
    Coord by0[kMaxBands], by1[kMaxBands];
    std::int64_t bcnt[kMaxBands];
    std::size_t nb = 0;
    const kernels::KernelTable& K = kernels::active();
    const std::int32_t q = static_cast<std::int32_t>(line);
    std::size_t w = gfirst / 64;
    const std::size_t wlast = (gend - 1) / 64;
    std::uint64_t bits = col[w] & (~std::uint64_t{0} << (gfirst % 64));
    for (;;) {
      if (w == wlast && (gend % 64) != 0)
        bits &= ~std::uint64_t{0} >> (64 - gend % 64);
      while (bits != 0) {
        const std::size_t gg = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const Group& grp = groups_[gg];
        std::int64_t cnt = 0;
        std::int64_t it = std::lower_bound(
                              x1_.begin() + static_cast<std::ptrdiff_t>(grp.begin),
                              x1_.begin() + static_cast<std::ptrdiff_t>(grp.end), q) -
                          x1_.begin();
        while ((it = K.find_rect_overlap(x0_.data(), x1_.data(),
                                         static_cast<std::int64_t>(grp.end), it, q, q)) >=
               0) {
          ++cnt;
          ++it;
        }
        if (cnt > 0) {
          if (nb == kMaxBands) {
            std::int64_t c = 0;
            for (std::int64_t i = 0; i < n; ++i)
              for_touching(false, line, lo[i], hi[i], [&](std::int32_t) { ++c; });
            return c;
          }
          by0[nb] = grp.y0;
          by1[nb] = grp.y1;
          bcnt[nb] = cnt;
          ++nb;
        }
      }
      if (w == wlast) break;
      bits = col[++w];
    }
    std::size_t cur = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      while (cur < nb && by1[cur] < lo[i]) ++cur;  // dead for all later segments too
      for (std::size_t k = cur; k < nb && by0[k] <= hi[i]; ++k)
        if (by1[k] >= lo[i]) total += bcnt[k];
    }
    return total;
  }

 private:
  struct Entry {
    Coord y0, y1, x0, x1;
    std::int32_t node;
    bool operator<(const Entry& o) const {
      if (y0 != o.y0) return y0 < o.y0;
      if (y1 != o.y1) return y1 < o.y1;
      if (x0 != o.x0) return x0 < o.x0;
      return x1 < o.x1;
    }
  };
  struct Group {
    Coord y0, y1;
    std::size_t begin, end;  ///< half-open range into entries_
  };

  static bool fits_int32(Coord v) {
    return v >= std::numeric_limits<std::int32_t>::min() &&
           v <= std::numeric_limits<std::int32_t>::max();
  }
  static std::int32_t clamp32(Coord v) {
    return static_cast<std::int32_t>(
        std::clamp<Coord>(v, std::numeric_limits<std::int32_t>::min(),
                          std::numeric_limits<std::int32_t>::max()));
  }

  std::vector<Entry> entries_;
  std::vector<Group> groups_;
  Coord max_band_height_ = 0;
  // Packed query path (all entry coordinates fit int32).
  bool packed_ = false;
  std::vector<std::int32_t> x0_, x1_;
  std::vector<std::int32_t> node_;
  std::vector<std::uint32_t> ytab_;  ///< y - ymin_ -> first group with y0 >= y
  Coord ymin_ = 0, ymax_ = -1;
  // Column-occupancy bitmap: col_words_ words per column, bit g set iff
  // group g has a rect covering that column (vertical-query fast path).
  std::vector<std::uint64_t> colmap_;
  std::size_t col_words_ = 0;
  std::int32_t xmin_ = 0, xmax_ = -1;
  // One-bit summaries: column/row covered by any rect at all.
  std::vector<std::uint64_t> colcov_;
  std::vector<std::uint64_t> rowcov_;
  Coord rymin_ = 0, rymax_ = -1;
};

}  // namespace starlay::layout
