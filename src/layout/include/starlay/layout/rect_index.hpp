#pragma once
/// \file rect_index.hpp
/// \brief Y-banded rectangle index for node-clearance queries.
///
/// Node rectangles grouped by their y-interval for fast "which rects does
/// this segment touch" queries; grid layouts have one group per node row.
/// Groups are expected to be y-disjoint (nodes in distinct row bands); the
/// index stays correct otherwise but degrades to scanning.  Shared by the
/// materialized validator (validate.cpp) and the streaming certifier
/// (stream_certify.cpp), which must agree on clearance semantics exactly.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "starlay/layout/geometry.hpp"

namespace starlay::layout {

class RectIndex {
 public:
  explicit RectIndex(const std::vector<Rect>& rects) {
    // Sort-then-group over one flat vector: one allocation and a single
    // sort instead of a node-count's worth of std::map rebalancing.
    entries_.reserve(rects.size());
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].empty()) continue;
      entries_.push_back({rects[i].y0, rects[i].y1, rects[i].x0, rects[i].x1,
                          static_cast<std::int32_t>(i)});
    }
    std::sort(entries_.begin(), entries_.end());
    max_band_height_ = 0;
    for (std::size_t i = 0; i < entries_.size();) {
      std::size_t j = i;
      while (j < entries_.size() && entries_[j].y0 == entries_[i].y0 &&
             entries_[j].y1 == entries_[i].y1)
        ++j;
      groups_.push_back({entries_[i].y0, entries_[i].y1, i, j});
      max_band_height_ = std::max(max_band_height_, entries_[i].y1 - entries_[i].y0 + 1);
      i = j;
    }
    // groups_ is sorted by y0 (sort order).
  }

  /// Invokes \p f(node) for every rect whose closed area intersects the
  /// closed segment (horizontal ? [lo,hi] x {line} : {line} x [lo,hi]).
  template <typename F>
  void for_touching(bool horizontal, Coord line, Coord lo, Coord hi, F&& f) const {
    const Coord ylo = horizontal ? line : lo;
    const Coord yhi = horizontal ? line : hi;
    const Coord xlo = horizontal ? lo : line;
    const Coord xhi = horizontal ? hi : line;
    // Any group intersecting [ylo, yhi] has y0 >= ylo - (max height - 1).
    auto git = std::lower_bound(groups_.begin(), groups_.end(),
                                ylo - (max_band_height_ - 1),
                                [](const Group& g, Coord y) { return g.y0 < y; });
    for (; git != groups_.end() && git->y0 <= yhi; ++git) {
      if (git->y1 < ylo) continue;
      const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(git->begin);
      const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(git->end);
      auto it = std::lower_bound(first, last, xlo,
                                 [](const Entry& e, Coord x) { return e.x1 < x; });
      // Entries are sorted by (x0, x1); x1 is monotone in x0 for
      // disjoint same-row rects, so linear scan from `it` is exact.
      for (; it != last && it->x0 <= xhi; ++it) f(it->node);
    }
  }

 private:
  struct Entry {
    Coord y0, y1, x0, x1;
    std::int32_t node;
    bool operator<(const Entry& o) const {
      if (y0 != o.y0) return y0 < o.y0;
      if (y1 != o.y1) return y1 < o.y1;
      if (x0 != o.x0) return x0 < o.x0;
      return x1 < o.x1;
    }
  };
  struct Group {
    Coord y0, y1;
    std::size_t begin, end;  ///< half-open range into entries_
  };
  std::vector<Entry> entries_;
  std::vector<Group> groups_;
  Coord max_band_height_ = 0;
};

}  // namespace starlay::layout
