#pragma once
/// \file stream_records.hpp
/// \brief Banded certification records and batch passes shared by the
///        in-process streaming certifier and the sharded out-of-core engine.
///
/// The StreamingCertifier (stream_certify.cpp) and the sharded coordinator
/// (core/star_shard.cpp) must reach bit-identical verdicts: same record
/// encodings, same band packing, same sort orders, same kernel passes, and
/// the same error strings in the same sequence.  Everything that defines
/// that contract lives here; the two pipelines differ only in how records
/// reach a batch (replayed fills vs mmap-backed spill files).
///
/// The batch passes assume their inputs are fully sorted by the canonical
/// orders below.  Record keys are unique on layouts the rest of the stack
/// produces ((layer, line, lo, hi) repeats would themselves be overlap
/// errors), so the sorted arrays — and therefore every downstream verdict
/// and message — are independent of the order records were collected in.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/layout/wire.hpp"
#include "starlay/layout/wire_rules.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

inline constexpr std::int64_t kStreamTileGrain = 1 << 15;  ///< records per kernel tile

/// Runs tile(lo, hi) over [0, n) on the thread pool and sums the per-tile
/// counts in chunk order — a deterministic total for any thread count.
template <typename F>
std::int64_t stream_tiled_count(std::int64_t n, const F& tile) {
  if (n <= 0) return 0;
  const std::int64_t chunks = support::num_chunks(0, n, kStreamTileGrain);
  std::vector<std::int64_t> partial(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, n, kStreamTileGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    partial[static_cast<std::size_t>(chunk)] = tile(lo, hi);
  });
  std::int64_t total = 0;
  for (const std::int64_t p : partial) total += p;
  return total;
}

/// Cross-wire records.  Coordinates are 32-bit (checked against the same
/// range WireStore enforces on append), wire ids 32-bit (count checked);
/// record size is what bounds a batch's memory, so these stay compact.
struct SegRec {
  std::int32_t line, lo, hi;
  std::uint32_t wire;
  std::int16_t layer;
};

struct ProbeRec {
  std::int32_t line, pos;
  std::uint32_t wire;
  std::int16_t layer;
};

struct ViaRec {
  std::int32_t x, y;
  std::uint32_t wire;
  std::int16_t zlo, zhi;
};

/// One greedily-packed run of consecutive bands.
struct BandBatch {
  std::int64_t band_lo = 0, band_hi = 0;  ///< half-open band range
  std::int64_t nseg = 0, nprobe = 0;
};

inline std::int32_t stream_to32(Coord c) {
  STARLAY_REQUIRE(c >= std::numeric_limits<std::int32_t>::min() &&
                      c <= std::numeric_limits<std::int32_t>::max(),
                  "stream: wire coordinate exceeds 32-bit range");
  return static_cast<std::int32_t>(c);
}

/// Walks one wire's oriented segments exactly like Layout::segments()
/// (zero-length steps dropped, horizontal on h_layer keyed by y, the rest
/// on v_layer keyed by x) and its interior bend points like the
/// materialized via collection.
template <typename SegF, typename ViaF>
void scan_wire(const Wire& w, const SegF& on_seg, const ViaF& on_via) {
  for (int i = 1; i < w.npts; ++i) {
    const Point a = w.pts[static_cast<std::size_t>(i) - 1];
    const Point b = w.pts[static_cast<std::size_t>(i)];
    if (a == b) continue;
    if (a.y == b.y)
      on_seg(true, w.h_layer, a.y, std::min(a.x, b.x), std::max(a.x, b.x));
    else
      on_seg(false, w.v_layer, a.x, std::min(a.y, b.y), std::max(a.y, b.y));
  }
  const auto zlo = std::min(w.h_layer, w.v_layer);
  const auto zhi = std::max(w.h_layer, w.v_layer);
  for (int i = 1; i + 1 < w.npts; ++i)
    on_via(w.pts[static_cast<std::size_t>(i)], zlo, zhi);
}

/// Packs consecutive bands into batches of at most `budget` record bytes
/// (a single band may exceed it — bands are indivisible).
inline std::vector<BandBatch> pack_bands(const std::vector<std::int64_t>& seg_counts,
                                         const std::vector<std::int64_t>& probe_counts,
                                         std::int64_t seg_bytes, std::int64_t probe_bytes,
                                         std::int64_t budget) {
  std::vector<BandBatch> batches;
  BandBatch cur;
  std::int64_t cur_bytes = 0;
  const auto bands = static_cast<std::int64_t>(seg_counts.size());
  for (std::int64_t b = 0; b < bands; ++b) {
    const std::int64_t nseg = seg_counts[static_cast<std::size_t>(b)];
    const std::int64_t nprobe =
        probe_counts.empty() ? 0 : probe_counts[static_cast<std::size_t>(b)];
    const std::int64_t bytes = nseg * seg_bytes + nprobe * probe_bytes;
    if (cur.band_hi > cur.band_lo && cur_bytes + bytes > budget) {
      batches.push_back(cur);
      cur = {b, b, 0, 0};
      cur_bytes = 0;
    }
    if (cur.band_hi == cur.band_lo) cur.band_lo = b;
    cur.band_hi = b + 1;
    cur.nseg += nseg;
    cur.nprobe += nprobe;
    cur_bytes += bytes;
  }
  if (cur.band_hi > cur.band_lo) batches.push_back(cur);
  return batches;
}

/// Canonical sort orders.  Keys are unique on sane inputs (duplicates would
/// be overlap errors in their own right), so the sorted sequences do not
/// depend on the collection order.
inline void sort_seg_records(std::vector<SegRec>& segs) {
  std::sort(segs.begin(), segs.end(), [](const SegRec& a, const SegRec& b) {
    if (a.layer != b.layer) return a.layer < b.layer;
    if (a.line != b.line) return a.line < b.line;
    if (a.lo != b.lo) return a.lo < b.lo;
    if (a.hi != b.hi) return a.hi < b.hi;
    return a.wire < b.wire;
  });
}

inline void sort_probe_records(std::vector<ProbeRec>& probes) {
  std::sort(probes.begin(), probes.end(), [](const ProbeRec& a, const ProbeRec& b) {
    if (a.layer != b.layer) return a.layer < b.layer;
    if (a.line != b.line) return a.line < b.line;
    if (a.pos != b.pos) return a.pos < b.pos;
    return a.wire < b.wire;
  });
}

inline void sort_via_records(std::vector<ViaRec>& vias) {
  std::sort(vias.begin(), vias.end(), [](const ViaRec& a, const ViaRec& b) {
    if (a.x != b.x) return a.x < b.x;
    if (a.y != b.y) return a.y < b.y;
    if (a.zlo != b.zlo) return a.zlo < b.zlo;
    if (a.zhi != b.zhi) return a.zhi < b.zhi;
    return a.wire < b.wire;
  });
}

/// Track-exclusivity + via-pierce pass over one batch's sorted records.
/// The records feed the same SIMD kernels the materialized validator
/// streams, but the SoA splits live in per-tile thread-local scratch,
/// never whole-batch arrays: the band packer budgets memory by record size
/// alone, and a batch-wide split would grow the peak RSS by nearly the
/// batch budget again at star n = 10.  Counts are exact; error strings
/// materialize in a scalar re-scan only when a count is non-zero, so clean
/// batches allocate nothing beyond the tile scratch and stop building
/// messages once max_errors are recorded.
inline void certify_seg_batch(const std::vector<SegRec>& segs,
                              const std::vector<ProbeRec>& probes, bool horizontal,
                              int max_errors, ValidationReport& rep) {
  const kernels::KernelTable& K = kernels::active();
  const auto ns = static_cast<std::int64_t>(segs.size());
  // Track exclusivity per layer run (the adjacent-pair kernel compares
  // lines, so runs of different layers must not be concatenated).
  std::int64_t overlap_total = 0;
  for (std::int64_t r0 = 0; r0 < ns;) {
    const std::int16_t L = segs[static_cast<std::size_t>(r0)].layer;
    const std::int64_t r1 =
        std::upper_bound(segs.begin() + static_cast<std::ptrdiff_t>(r0), segs.end(), L,
                         [](std::int16_t l, const SegRec& s) { return l < s.layer; }) -
        segs.begin();
    overlap_total += stream_tiled_count(r1 - r0 - 1, [&](std::int64_t lo, std::int64_t hi) {
      thread_local std::vector<std::int32_t> tline, tlo, thi;
      const std::int64_t m = hi - lo + 1;
      tline.resize(static_cast<std::size_t>(m));
      tlo.resize(static_cast<std::size_t>(m));
      thi.resize(static_cast<std::size_t>(m));
      for (std::int64_t i = 0; i < m; ++i) {
        const SegRec& s = segs[static_cast<std::size_t>(r0 + lo + i)];
        tline[static_cast<std::size_t>(i)] = s.line;
        tlo[static_cast<std::size_t>(i)] = s.lo;
        thi[static_cast<std::size_t>(i)] = s.hi;
      }
      return K.count_seg_conflicts(tline.data(), tlo.data(), thi.data(), m);
    });
    r0 = r1;
  }
  if (overlap_total > 0) {
    rep.ok = false;
    std::int64_t emitted = 0;
    for (std::size_t i = 0;
         i + 1 < segs.size() && static_cast<int>(rep.errors.size()) < max_errors; ++i) {
      const SegRec& a = segs[i];
      const SegRec& b = segs[i + 1];
      if (a.layer == b.layer && a.line == b.line && b.lo <= a.hi) {
        rep.fail("overlap on layer " + std::to_string(a.layer) +
                     (horizontal ? " y=" : " x=") + std::to_string(a.line) + ": wires " +
                     std::to_string(a.wire) + " and " + std::to_string(b.wire),
                 max_errors);
        ++emitted;
      }
    }
    rep.num_errors_total += overlap_total - emitted;
  }
  // Via-pierce probes share the validator's merge-cursor design: probes
  // on one (layer, line) arrive pos-ascending, so each tile re-derives
  // its segment run once per line change and slides an upper bound
  // forward, handing the covering kernel the same kCoverWindow
  // candidates the materialized check inspects — the shared constant
  // keeps the two certifiers' verdicts aligned.
  struct LineCursor {
    std::int16_t layer = 0;
    std::int32_t line = 0;
    bool valid = false;
    std::int64_t s = 0, e = 0, ub = 0;
  };
  const auto probe_hit = [&](LineCursor& cur, const ProbeRec& pr) -> std::int64_t {
    if (!cur.valid || pr.layer != cur.layer || pr.line != cur.line) {
      const auto first = std::lower_bound(
          segs.begin(), segs.end(), pr, [](const SegRec& s, const ProbeRec& p) {
            if (s.layer != p.layer) return s.layer < p.layer;
            return s.line < p.line;
          });
      const auto last = std::upper_bound(
          first, segs.end(), pr, [](const ProbeRec& p, const SegRec& s) {
            if (p.layer != s.layer) return p.layer < s.layer;
            return p.line < s.line;
          });
      cur = {pr.layer, pr.line, true, first - segs.begin(), last - segs.begin(),
             first - segs.begin()};
    }
    while (cur.ub < cur.e && segs[static_cast<std::size_t>(cur.ub)].lo <= pr.pos)
      ++cur.ub;
    // Gather the window's <= kCoverWindow candidates from the AoS
    // records; the kernel sees exactly the slice a batch-wide SoA
    // split would have handed it.
    const std::int64_t w0 = std::max(cur.s, cur.ub - kernels::kCoverWindow);
    const std::int64_t m = cur.ub - w0;
    std::int32_t wlo[kernels::kCoverWindow], whi[kernels::kCoverWindow];
    std::uint32_t wwire[kernels::kCoverWindow];
    for (std::int64_t i = 0; i < m; ++i) {
      const SegRec& s = segs[static_cast<std::size_t>(w0 + i)];
      wlo[i] = s.lo;
      whi[i] = s.hi;
      wwire[i] = s.wire;
    }
    const std::int64_t idx = K.find_covering(wlo, whi, wwire, m, pr.pos, pr.wire);
    return idx < 0 ? -1 : w0 + idx;
  };
  const std::int64_t pierce_total = stream_tiled_count(
      static_cast<std::int64_t>(probes.size()), [&](std::int64_t lo, std::int64_t hi) {
        LineCursor cur;
        std::int64_t n = 0;
        for (std::int64_t k = lo; k < hi; ++k)
          n += probe_hit(cur, probes[static_cast<std::size_t>(k)]) >= 0;
        return n;
      });
  if (pierce_total > 0) {
    rep.ok = false;
    std::int64_t emitted = 0;
    LineCursor cur;
    for (std::size_t k = 0;
         k < probes.size() && static_cast<int>(rep.errors.size()) < max_errors; ++k) {
      const ProbeRec& pr = probes[k];
      const std::int64_t hit = probe_hit(cur, pr);
      if (hit < 0) continue;
      const Point p = horizontal ? Point{pr.pos, pr.line} : Point{pr.line, pr.pos};
      rep.fail("via of wire " + std::to_string(pr.wire) + " at " + format_point(p) +
                   " pierced by wire " +
                   std::to_string(segs[static_cast<std::size_t>(hit)].wire) +
                   " on layer " + std::to_string(pr.layer),
               max_errors);
      ++emitted;
    }
    rep.num_errors_total += pierce_total - emitted;
  }
}

/// Via-via conflict pass over one batch's sorted via records.  Same
/// two-pass shape as the segment spaces: tiled vectorized count over
/// per-tile SoA scratch (z widened to int32 for the kernel; no batch-wide
/// split, which would inflate the packer's RSS budget), scalar
/// materialization only for broken batches.
inline void certify_via_batch(const std::vector<ViaRec>& vias, int max_errors,
                              ValidationReport& rep) {
  const kernels::KernelTable& K = kernels::active();
  const auto nv = static_cast<std::int64_t>(vias.size());
  const std::int64_t via_total =
      stream_tiled_count(nv - 1, [&](std::int64_t lo, std::int64_t hi) {
        thread_local std::vector<std::int32_t> tx, ty, tzlo, tzhi;
        thread_local std::vector<std::uint32_t> twire;
        const std::int64_t m = hi - lo + 1;
        tx.resize(static_cast<std::size_t>(m));
        ty.resize(static_cast<std::size_t>(m));
        tzlo.resize(static_cast<std::size_t>(m));
        tzhi.resize(static_cast<std::size_t>(m));
        twire.resize(static_cast<std::size_t>(m));
        for (std::int64_t i = 0; i < m; ++i) {
          const ViaRec& v = vias[static_cast<std::size_t>(lo + i)];
          tx[static_cast<std::size_t>(i)] = v.x;
          ty[static_cast<std::size_t>(i)] = v.y;
          tzlo[static_cast<std::size_t>(i)] = v.zlo;
          tzhi[static_cast<std::size_t>(i)] = v.zhi;
          twire[static_cast<std::size_t>(i)] = v.wire;
        }
        return K.count_via_conflicts(tx.data(), ty.data(), tzlo.data(), tzhi.data(),
                                     twire.data(), m);
      });
  if (via_total > 0) {
    rep.ok = false;
    std::int64_t emitted = 0;
    for (std::size_t i = 0;
         i + 1 < vias.size() && static_cast<int>(rep.errors.size()) < max_errors; ++i) {
      const ViaRec& a = vias[i];
      const ViaRec& b = vias[i + 1];
      if (a.x == b.x && a.y == b.y && a.wire != b.wire && a.zlo <= b.zhi &&
          b.zlo <= a.zhi) {
        rep.fail("via conflict at " + format_point({a.x, a.y}) + ": wires " +
                     std::to_string(a.wire) + " and " + std::to_string(b.wire),
                 max_errors);
        ++emitted;
      }
    }
    rep.num_errors_total += via_total - emitted;
  }
}

}  // namespace starlay::layout
