#pragma once
/// \file placement.hpp
/// \brief Assignment of topology vertices to slots of a 2-D grid.
///
/// The router (router.hpp) only sees a slot grid; the network-specific
/// hierarchy (substar nesting, HCN clusters, hypercube halves) is encoded
/// entirely in *which slot each vertex gets* via hierarchical_placement().

#include <cstdint>
#include <vector>

#include "starlay/support/check.hpp"

namespace starlay::layout {

/// Vertex-to-slot map on a rows x cols grid.  Slots may be empty; each
/// occupied slot holds exactly one vertex.
struct Placement {
  std::int32_t rows = 0;
  std::int32_t cols = 0;
  std::vector<std::int64_t> slot;  ///< vertex -> row * cols + col

  std::int32_t row_of(std::int32_t v) const {
    return static_cast<std::int32_t>(slot[static_cast<std::size_t>(v)] / cols);
  }
  std::int32_t col_of(std::int32_t v) const {
    return static_cast<std::int32_t>(slot[static_cast<std::size_t>(v)] % cols);
  }
  std::int64_t num_slots() const {
    return static_cast<std::int64_t>(rows) * static_cast<std::int64_t>(cols);
  }

  /// Throws InvariantError unless every vertex has a distinct in-range slot.
  void check(std::int32_t num_vertices) const;
};

/// Row-major placement of vertices 0..n-1 on a near-square grid
/// (rows = ceil(sqrt(n))).
Placement row_major_placement(std::int32_t num_vertices);

/// Row-major placement on an explicit rows x cols grid (rows*cols >= n).
Placement grid_placement(std::int32_t num_vertices, std::int32_t rows, std::int32_t cols);

/// Single-row placement (used by collinear layouts).
Placement collinear_placement(std::int32_t num_vertices);

/// Shape of one hierarchy level's block grid.
struct LevelShape {
  std::int32_t rows;
  std::int32_t cols;
};

/// Hierarchical placement.  Vertex v's digit path (one digit per level,
/// outermost first) selects a block in each level's rows x cols grid,
/// row-major: digit d -> (d / cols, d % cols).  The vertex's final grid row
/// is the digit rows combined positionally (outer levels are coarser):
///   row(v) = sum_j rowdigit_j * prod_{j' > j} shape[j'].rows
/// and likewise for columns.  All paths must have one digit per level.
Placement hierarchical_placement(const std::vector<std::vector<std::int32_t>>& digit_paths,
                                 const std::vector<LevelShape>& shapes);

/// Flat-buffer variant: \p digits holds \p count paths of \p stride digits
/// each, vertex-major (path v at digits[v * stride .. v * stride + stride)).
/// Requires stride == shapes.size().  Slot computation is embarrassingly
/// parallel per vertex and runs on the global thread pool.
Placement hierarchical_placement(const std::int32_t* digits, std::int32_t stride,
                                 std::int64_t count, const std::vector<LevelShape>& shapes);

}  // namespace starlay::layout
