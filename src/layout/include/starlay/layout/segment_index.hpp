#pragma once
/// \file segment_index.hpp
/// \brief Bucketed, line-sorted view of a layout's wire segments.
///
/// The validator's track-exclusivity and via-pierce passes need segments
/// grouped per (layer, orientation) and sorted by grid line.  Materializing
/// every segment and running one global comparison sort is the dominant
/// validation cost at star dimension n >= 8, so SegmentIndex instead:
///
///   1. counts segments per (layer, orientation) bucket chunk-parallel,
///   2. places each segment into its bucket via a serial prefix sum over
///      the per-chunk counts (thread-count independent),
///   3. counting-sorts each bucket by line (lines are bounded by the
///      layout's bounding box, so the histogram is one array per bucket),
///   4. sorts each line's handful of segments by (span.lo, span.hi, wire),
///      chunk-parallel over lines.
///
/// The resulting global order — (layer, vertical-before-horizontal, line,
/// span.lo, span.hi, wire) — refines the order the old std::sort pass
/// produced, so the adjacent-overlap scan runs over it unchanged, and
/// line_range() gives the via-pierce check O(1) access to one line's
/// segments.  Degenerate layouts whose coordinate range dwarfs the segment
/// count fall back to a comparison sort per bucket (line_range then binary
/// searches); the order is identical either way.

#include <cstdint>
#include <utility>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/wire.hpp"

namespace starlay::layout {

class SegmentIndex {
 public:
  explicit SegmentIndex(const Layout& lay);

  std::int64_t size() const { return static_cast<std::int64_t>(segs_.size()); }

  /// All segments in (layer, orientation, line, span.lo, span.hi, wire)
  /// order; vertical precedes horizontal within a layer (matching the
  /// validator's historical comparator).
  const std::vector<LayerSegment>& segments() const { return segs_; }

  /// Half-open range of the segments on grid line \p line of the given
  /// layer/orientation, sorted by span.lo.  Empty when there are none.
  std::pair<const LayerSegment*, const LayerSegment*> line_range(std::int16_t layer,
                                                                 bool horizontal,
                                                                 Coord line) const;

 private:
  struct Bucket {
    std::int64_t begin = 0;  ///< range into segs_
    std::int64_t end = 0;
    Coord base = 0;  ///< smallest line covered by line_start
    /// Dense per-line offsets into segs_ (size = line count + 1); empty in
    /// the sparse fallback, where line_range binary-searches instead.
    std::vector<std::int64_t> line_start;
  };

  std::vector<LayerSegment> segs_;
  std::vector<Bucket> buckets_;  ///< index: (layer - min_layer_) * 2 + horizontal
  std::int16_t min_layer_ = 0;
  std::int16_t max_layer_ = -1;
};

}  // namespace starlay::layout
