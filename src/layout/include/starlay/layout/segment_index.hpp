#pragma once
/// \file segment_index.hpp
/// \brief Bucketed, line-sorted, packed-SoA view of a layout's wire segments.
///
/// The validator's track-exclusivity and via-pierce passes need segments
/// grouped per (layer, orientation) and sorted by grid line.  Materializing
/// every segment and running one global comparison sort is the dominant
/// validation cost at star dimension n >= 8, so SegmentIndex instead:
///
///   1. counts segments per (layer, orientation) bucket chunk-parallel,
///   2. builds a per-line histogram for each dense bucket straight from the
///      wires (relaxed atomic adds commute, so counts are thread-count
///      independent),
///   3. scatters each segment directly into its line's slice of one packed
///      scratch, claiming positions with relaxed fetch_add,
///   4. sorts each line's handful of segments by (lo, hi, wire),
///      chunk-parallel over lines — which also erases the scatter order,
///      since records tying on (lo, hi, wire) are byte-identical.
///
/// The resulting global order — (layer, vertical-before-horizontal, line,
/// span.lo, span.hi, wire) — refines the order the old std::sort pass
/// produced, so the adjacent-overlap scan runs over it unchanged, and
/// line_span() gives the via-pierce check O(1) access to one line's
/// segments.  Degenerate layouts whose coordinate range dwarfs the segment
/// count fall back to a comparison sort per bucket (line_span then binary
/// searches); the order is identical either way.
///
/// Storage is four parallel int32/uint32 arrays (16 B per segment, down
/// from the 40 B LayerSegment) — WireStore guarantees every coordinate fits
/// int32 — so the SIMD certification kernels (kernels/kernels.hpp) stream
/// whole buckets branchlessly.  The layer and orientation are implicit in
/// the bucket, not stored per segment.

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/wire.hpp"

namespace starlay::layout {

class SegmentIndex {
 public:
  /// One build record: everything per-segment except the bucket-implicit
  /// layer/orientation.  16 bytes; the constructor sorts these, then splits
  /// them into the SoA arrays the kernels consume.
  struct PackedSeg {
    std::int32_t line;
    std::int32_t lo;
    std::int32_t hi;
    std::uint32_t wire;
  };

  explicit SegmentIndex(const Layout& lay);

  std::int64_t size() const { return size_; }

  /// SoA views over all segments in canonical (layer, vertical-before-
  /// horizontal, line, lo, hi, wire) order.  Indices from bucket()/
  /// line_span() address these arrays directly.
  const std::int32_t* lines() const { return line_.get(); }
  const std::int32_t* span_lo() const { return lo_.get(); }
  const std::int32_t* span_hi() const { return hi_.get(); }
  const std::uint32_t* wires() const { return wire_.get(); }

  struct BucketView {
    std::int16_t layer;
    bool horizontal;
    std::int64_t begin;  ///< half-open range into the SoA arrays
    std::int64_t end;
  };

  std::int64_t num_buckets() const { return static_cast<std::int64_t>(buckets_.size()); }
  BucketView bucket(std::int64_t b) const {
    const Bucket& bk = buckets_[static_cast<std::size_t>(b)];
    return {static_cast<std::int16_t>(min_layer_ + b / 2), (b % 2) == 1, bk.begin, bk.end};
  }

  /// Half-open index range of the segments on grid line \p line of the
  /// given layer/orientation, sorted by lo.  Empty when there are none.
  std::pair<std::int64_t, std::int64_t> line_span(std::int16_t layer, bool horizontal,
                                                  Coord line) const;

  /// Dense per-line run table of one bucket: line base + l holds segments
  /// [start[l], start[l+1]) of the SoA arrays.  Lets per-line passes (the
  /// clearance count) jump straight between runs instead of re-deriving the
  /// boundaries by scanning lines().  nlines == 0 on the sparse fallback,
  /// where no dense table exists — callers scan the bucket instead.
  struct LineRunsView {
    Coord base = 0;
    const std::int64_t* start = nullptr;  ///< nlines + 1 absolute offsets
    std::int64_t nlines = 0;
  };
  LineRunsView line_runs(std::int64_t b) const {
    const Bucket& bk = buckets_[static_cast<std::size_t>(b)];
    if (bk.line_start.empty()) return {};
    return {bk.base, bk.line_start.data(),
            static_cast<std::int64_t>(bk.line_start.size()) - 1};
  }

  /// Prefetch hint: pulls the offset-table entry a later line_span() call
  /// with the same arguments will load.  Callers issuing many independent
  /// probes (the via-pierce pass) batch these ahead of the line_span calls
  /// so the table misses overlap instead of serializing.  No-op for
  /// out-of-range lines and sparse buckets.
  void prefetch_line(std::int16_t layer, bool horizontal, Coord line) const {
    if (layer < min_layer_ || layer > max_layer_) return;
    const Bucket& bk = buckets_[static_cast<std::size_t>(
        (static_cast<std::int64_t>(layer) - min_layer_) * 2 + (horizontal ? 1 : 0))];
    if (bk.line_start.empty()) return;
    const std::int64_t l = line - bk.base;
    if (l < 0 || l + 1 >= static_cast<std::int64_t>(bk.line_start.size())) return;
    __builtin_prefetch(bk.line_start.data() + l);
  }

  /// Widened single-segment view for error messages and tests; the hot
  /// paths use the SoA arrays instead.
  LayerSegment segment(std::int64_t i) const;

  /// All segments as LayerSegments, for tests and tools.
  std::vector<LayerSegment> materialize() const;

 private:
  struct Bucket {
    std::int64_t begin = 0;  ///< range into the SoA arrays
    std::int64_t end = 0;
    Coord base = 0;  ///< smallest line covered by line_start
    /// Dense per-line offsets (size = line count + 1); empty in the sparse
    /// fallback, where line_span binary-searches instead.
    std::vector<std::int64_t> line_start;
  };

  /// Uninitialized on allocation (every slot is written exactly once by
  /// the scatter/split passes); a std::vector's zero-fill would cost a
  /// full memory sweep per array at star n >= 9.
  std::int64_t size_ = 0;
  std::unique_ptr<std::int32_t[]> line_, lo_, hi_;
  std::unique_ptr<std::uint32_t[]> wire_;
  std::vector<Bucket> buckets_;  ///< index: (layer - min_layer_) * 2 + horizontal
  std::int16_t min_layer_ = 0;
  std::int16_t max_layer_ = -1;
};

}  // namespace starlay::layout
