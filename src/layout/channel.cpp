#include "starlay/layout/channel.hpp"

#include <algorithm>
#include <queue>

#include "starlay/support/check.hpp"

namespace starlay::layout {

PackResult pack_intervals_left_edge(std::span<const PackRequest> reqs) {
  for (const PackRequest& r : reqs)
    STARLAY_REQUIRE(r.lo <= r.hi, "pack_intervals_left_edge: inverted interval");

  std::vector<std::int32_t> order(reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) order[i] = static_cast<std::int32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const auto& ra = reqs[static_cast<std::size_t>(a)];
    const auto& rb = reqs[static_cast<std::size_t>(b)];
    if (ra.lo != rb.lo) return ra.lo < rb.lo;
    return ra.hi < rb.hi;
  });

  PackResult result;
  result.track.assign(reqs.size(), -1);
  // Min-heap over (last hi on track, track index): reuse the track that
  // freed earliest, provided it freed strictly before this interval starts.
  using Slot = std::pair<std::int64_t, std::int32_t>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> free_at;
  for (std::int32_t idx : order) {
    const PackRequest& r = reqs[static_cast<std::size_t>(idx)];
    if (!free_at.empty() && free_at.top().first < r.lo) {
      const std::int32_t t = free_at.top().second;
      free_at.pop();
      result.track[static_cast<std::size_t>(idx)] = t;
      free_at.push({r.hi, t});
    } else {
      const std::int32_t t = result.num_tracks++;
      result.track[static_cast<std::size_t>(idx)] = t;
      free_at.push({r.hi, t});
    }
  }
  return result;
}

std::int64_t max_closed_coverage(std::span<const PackRequest> reqs) {
  // Sweep: +1 at lo, -1 just after hi.  Closed intervals touching at a
  // point both count at that point.
  std::vector<std::pair<std::int64_t, std::int32_t>> events;
  events.reserve(reqs.size() * 2);
  for (const PackRequest& r : reqs) {
    events.push_back({r.lo, +1});
    events.push_back({r.hi + 1, -1});
  }
  std::sort(events.begin(), events.end());
  std::int64_t cur = 0, best = 0;
  for (const auto& [pos, delta] : events) {
    (void)pos;
    cur += delta;
    best = std::max(best, cur);
  }
  return best;
}

bool packing_is_valid(std::span<const PackRequest> reqs, const PackResult& result) {
  if (result.track.size() != reqs.size()) return false;
  std::vector<std::vector<PackRequest>> per_track(
      static_cast<std::size_t>(result.num_tracks));
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::int32_t t = result.track[i];
    if (t < 0 || t >= result.num_tracks) return false;
    per_track[static_cast<std::size_t>(t)].push_back(reqs[i]);
  }
  for (auto& track : per_track) {
    std::sort(track.begin(), track.end(),
              [](const PackRequest& a, const PackRequest& b) { return a.lo < b.lo; });
    for (std::size_t i = 1; i < track.size(); ++i)
      if (track[i].lo <= track[i - 1].hi) return false;
  }
  return true;
}

}  // namespace starlay::layout
