#include "starlay/layout/router.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <limits>
#include <optional>

#include "starlay/layout/channel.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace detail {

enum class EdgeClass : std::uint8_t { kRow, kCol, kL };

// Node sides an attachment can leave through.  Top/Bottom attachments are
// vertical stubs into the horizontal channel above/below the node's row;
// Right/Left are horizontal stubs into the vertical channel beside it.
enum Side : int { kTop = 0, kBottom = 1, kRight = 2, kLeft = 3 };

inline bool vertical_side(int s) { return s == kTop || s == kBottom; }

// One entry per edge, alive for the whole route — at star dimension 10
// that is 16.3M edges, so the layout matters: 32 bytes, with the
// four-sided-only jog fields split into JogPlan (allocated only in
// four-sided mode, where edge counts are small).
struct EdgePlan {
  std::int32_t src = -1;       // L: source; Row: left endpoint; Col: lower endpoint
  std::int32_t dst = -1;       // the other endpoint
  // Main runs.
  std::int32_t h_chan = -1;    // horizontal channel of the main H run, in [0, R]
  std::int32_t v_chan = -1;    // vertical channel of the main V run, in [0, C]
  std::int32_t h_track = -1;
  std::int32_t v_track = -1;
  std::int16_t h_layer = 1;
  std::int16_t v_layer = 2;
  EdgeClass cls = EdgeClass::kL;
  std::int8_t src_side = kTop;
  std::int8_t dst_side = kRight;
};
static_assert(sizeof(EdgePlan) <= 32, "EdgePlan grew past its memory budget");

// Jogs (four-sided mode): a source attached left/right needs a short
// vertical jog from its stub up/down to the main H run; a destination
// attached top/bottom needs a short horizontal jog from the main V run to
// its terminal stub.
struct JogPlan {
  std::int32_t src_vchan = -1;
  std::int32_t src_vtrack = -1;
  std::int32_t dst_hchan = -1;
  std::int32_t dst_htrack = -1;
};

}  // namespace detail

// The full routed-but-unemitted state.  Everything emit_route (and the
// compactor) needs, nothing it does not: the Graph and Placement are not
// retained — derived arrays are.
struct RoutePlanData {
  std::int32_t V = 0;
  std::int32_t R = 0;
  std::int32_t C = 0;
  std::int32_t HC = 0;  // horizontal channels (R + 1)
  std::int32_t VC = 0;  // vertical channels (C + 1)
  std::int64_t E = 0;
  bool four = false;
  Coord w = 0;
  std::vector<std::int32_t> vrow, vcol;
  std::vector<detail::EdgePlan> plan;
  std::vector<detail::JogPlan> jogs;
  std::vector<std::int32_t> src_off, dst_off;
  std::vector<std::int32_t> h_chan_tracks, v_chan_tracks;
};

namespace {

namespace tel = starlay::support::telemetry;
using detail::EdgeClass;
using detail::EdgePlan;
using detail::JogPlan;
using detail::kBottom;
using detail::kLeft;
using detail::kRight;
using detail::kTop;
using detail::vertical_side;

constexpr std::int64_t kEdgeGrain = 8192;  // per-edge loops
constexpr std::int64_t kNodeGrain = 4096;  // per-node loops

// One stub (edge endpoint attachment) on a node side.  Stored in a single
// flat array, slot-major (slot = node * 4 + side), built by counting sort —
// the former vector-of-vectors cost a heap block per (node, side).
struct StubEntry {
  std::int32_t edge;
  std::int32_t primary;   // far endpoint's column (vertical sides) or row
  std::int32_t secondary;
  std::uint8_t is_src;
  bool operator<(const StubEntry& o) const {
    if (primary != o.primary) return primary < o.primary;
    if (secondary != o.secondary) return secondary < o.secondary;
    if (edge != o.edge) return edge < o.edge;
    return is_src < o.is_src;
  }
};

/// A main-run or jog interval destined for one (channel, layer) group.
/// key = channel * kMaxLayer + layer; the sort key leads the struct.
struct KeyedReq {
  std::int64_t key;
  std::int64_t lo, hi;
  std::int32_t edge;
  bool is_jog;
};
static_assert(sizeof(KeyedReq) <= 32, "KeyedReq grew past its memory budget");

constexpr std::int64_t kMaxLayer = 64;

/// Left-edge packs every (channel * kMaxLayer + layer) group of \p reqs.
/// Groups are independent interval sets, so they run concurrently on the
/// pool; per-channel track counts are reduced serially from per-group
/// results afterward, keeping the outcome thread-count independent.
/// \p store(edge, is_jog, track) records each request's assigned track.
template <typename Store>
void pack_groups(std::vector<KeyedReq>& reqs, std::int64_t max_layer,
                 std::vector<std::int32_t>& chan_tracks, Store&& store) {
  std::sort(reqs.begin(), reqs.end(),
            [](const KeyedReq& a, const KeyedReq& b) { return a.key < b.key; });
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  for (std::size_t i = 0; i < reqs.size();) {
    std::size_t j = i;
    while (j < reqs.size() && reqs[j].key == reqs[i].key) ++j;
    groups.push_back({i, j});
    i = j;
  }
  std::vector<std::int32_t> group_tracks(groups.size(), 0);
  support::parallel_for(
      0, static_cast<std::int64_t>(groups.size()), 1,
      [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        for (std::int64_t gi = lo; gi < hi; ++gi) {
          const auto [i, j] = groups[static_cast<std::size_t>(gi)];
          std::vector<PackRequest> group;
          group.reserve(j - i);
          for (std::size_t k = i; k < j; ++k) group.push_back({reqs[k].lo, reqs[k].hi});
          const PackResult pr = pack_intervals_left_edge(group);
          group_tracks[static_cast<std::size_t>(gi)] = pr.num_tracks;
          for (std::size_t k = i; k < j; ++k)
            store(reqs[k].edge, reqs[k].is_jog, pr.track[k - i]);
        }
      });
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const auto ch = static_cast<std::size_t>(reqs[groups[gi].first].key / max_layer);
    chan_tracks[ch] = std::max(chan_tracks[ch], group_tracks[gi]);
  }
}

template <typename T>
void free_vector(std::vector<T>& v) {
  std::vector<T>().swap(v);
}

/// Horizontal track packing (H channels: main runs + destination jogs).
///
/// Coarse keys (the only option before the vertical pack): fine x-keys,
/// interleaved [v-chan 0][col 0][v-chan 1][col 1]...[v-chan C], with each
/// vertical channel collapsed to a single key — every L turn in a channel
/// is treated as the same x position because its track is not known yet.
///
/// Refined keys (\p refined, valid once v tracks are assigned): each
/// vertical channel widens to one key per track, so turn endpoints carry
/// their true relative x order.  Refined keys are order-isomorphic to the
/// final geometry, and every refined overlap is also a coarse overlap, so
/// per-channel cliques — and with them left-edge track counts — can only
/// shrink.
void pack_h_tracks(RoutePlanData& d, bool refined) {
  const Coord w = d.w;
  const std::vector<std::int32_t>& vcol = d.vcol;
  std::vector<EdgePlan>& plan = d.plan;
  std::vector<JogPlan>& jogs = d.jogs;

  // Coarse key space: channel k at k * (w + 1), cells offset by 1.
  const std::int64_t xkey_width = w + 1;
  auto xkey_cell = [&](std::int32_t c, Coord off) {
    return static_cast<std::int64_t>(c) * xkey_width + 1 + off;
  };
  auto xkey_chan = [&](std::int32_t k) { return static_cast<std::int64_t>(k) * xkey_width; };

  // Refined key space: channel k spans [k * (maxV + w), +tracks), cells
  // follow at + maxV — the same interleaving with real track resolution.
  std::int32_t max_v_tracks = 0;
  for (std::int32_t t : d.v_chan_tracks) max_v_tracks = std::max(max_v_tracks, t);
  const std::int64_t x2_width = w + std::max<std::int64_t>(1, max_v_tracks);
  const std::int64_t x2_cell_base = std::max<std::int64_t>(1, max_v_tracks);
  auto x2key_cell = [&](std::int32_t c, Coord off) {
    return static_cast<std::int64_t>(c) * x2_width + x2_cell_base + off;
  };
  auto x2key_track = [&](std::int32_t k, std::int32_t track) {
    return static_cast<std::int64_t>(k) * x2_width + track;
  };

  d.h_chan_tracks.assign(static_cast<std::size_t>(d.HC), 0);
  std::vector<KeyedReq> hreqs;  // key = chan * kMaxLayer + layer
  for (std::int64_t e = 0; e < d.E; ++e) {
    const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
    STARLAY_REQUIRE(ep.h_layer < kMaxLayer, "route_grid: layer index too large");
    if (ep.cls == EdgeClass::kCol) continue;
    // Main H run.
    std::int64_t lo, hi;
    if (ep.cls == EdgeClass::kRow) {
      lo = refined ? x2key_cell(vcol[static_cast<std::size_t>(ep.src)],
                                d.src_off[static_cast<std::size_t>(e)])
                   : xkey_cell(vcol[static_cast<std::size_t>(ep.src)],
                               d.src_off[static_cast<std::size_t>(e)]);
      hi = refined ? x2key_cell(vcol[static_cast<std::size_t>(ep.dst)],
                                d.dst_off[static_cast<std::size_t>(e)])
                   : xkey_cell(vcol[static_cast<std::size_t>(ep.dst)],
                               d.dst_off[static_cast<std::size_t>(e)]);
    } else {
      const JogPlan* jp = d.four ? &jogs[static_cast<std::size_t>(e)] : nullptr;
      if (vertical_side(ep.src_side)) {
        lo = refined ? x2key_cell(vcol[static_cast<std::size_t>(ep.src)],
                                  d.src_off[static_cast<std::size_t>(e)])
                     : xkey_cell(vcol[static_cast<std::size_t>(ep.src)],
                                 d.src_off[static_cast<std::size_t>(e)]);
      } else {
        lo = refined ? x2key_track(jp->src_vchan, jp->src_vtrack)
                     : xkey_chan(jp->src_vchan);
      }
      hi = refined ? x2key_track(ep.v_chan, ep.v_track) : xkey_chan(ep.v_chan);
    }
    if (lo > hi) std::swap(lo, hi);
    hreqs.push_back({static_cast<std::int64_t>(ep.h_chan) * kMaxLayer + ep.h_layer, lo, hi,
                     static_cast<std::int32_t>(e), false});
    // Destination jog (L edges attached top/bottom).
    if (ep.cls == EdgeClass::kL && vertical_side(ep.dst_side)) {
      std::int64_t jlo = refined ? x2key_track(ep.v_chan, ep.v_track) : xkey_chan(ep.v_chan);
      std::int64_t jhi = refined ? x2key_cell(vcol[static_cast<std::size_t>(ep.dst)],
                                              d.dst_off[static_cast<std::size_t>(e)])
                                 : xkey_cell(vcol[static_cast<std::size_t>(ep.dst)],
                                             d.dst_off[static_cast<std::size_t>(e)]);
      if (jlo > jhi) std::swap(jlo, jhi);
      hreqs.push_back(
          {static_cast<std::int64_t>(jogs[static_cast<std::size_t>(e)].dst_hchan) * kMaxLayer +
               ep.h_layer,
           jlo, jhi, static_cast<std::int32_t>(e), true});
    }
  }
  pack_groups(hreqs, kMaxLayer, d.h_chan_tracks,
              [&](std::int32_t e, bool is_jog, std::int32_t track) {
                if (is_jog)
                  jogs[static_cast<std::size_t>(e)].dst_htrack = track;
                else
                  plan[static_cast<std::size_t>(e)].h_track = track;
              });
}

/// Vertical track packing (V channels: main runs + source jogs).
///
/// Refined y-keys (\p refined — the construction default): each horizontal
/// channel contributes one key per assigned h track, so turn endpoints
/// carry their true relative y order.  Valid only while the h tracks the
/// keys were derived from stay the final ones.
///
/// Coarse y-keys: each horizontal channel collapses to a single key, so any
/// two runs turning in the same channel conflict and can never share a
/// track — conservative for *any* later h track assignment (the mirror of
/// pack_h_tracks' coarse mode, used by the compactor's transposed corner).
void pack_v_tracks(RoutePlanData& d, bool refined) {
  const Coord w = d.w;
  const std::vector<std::int32_t>& vrow = d.vrow;
  std::vector<EdgePlan>& plan = d.plan;
  std::vector<JogPlan>& jogs = d.jogs;

  std::int32_t max_h_tracks = 0;
  for (std::int32_t t : d.h_chan_tracks) max_h_tracks = std::max(max_h_tracks, t);
  const std::int64_t y2_width = w + max_h_tracks;
  auto y2key_cell = [&](std::int32_t r, Coord off) {
    return static_cast<std::int64_t>(r) * y2_width + max_h_tracks + off;
  };
  auto y2key_track = [&](std::int32_t chan, std::int32_t track) {
    return static_cast<std::int64_t>(chan) * y2_width + track;
  };

  // Coarse key space: channel j at j * (w + 1), cells offset by 1.
  const std::int64_t ykey_width = w + 1;
  auto ykey_cell = [&](std::int32_t r, Coord off) {
    return static_cast<std::int64_t>(r) * ykey_width + 1 + off;
  };
  auto ykey_chan = [&](std::int32_t j) { return static_cast<std::int64_t>(j) * ykey_width; };

  d.v_chan_tracks.assign(static_cast<std::size_t>(d.VC), 0);
  std::vector<KeyedReq> vreqs;
  for (std::int64_t e = 0; e < d.E; ++e) {
    const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
    if (ep.cls == EdgeClass::kRow) continue;
    std::int64_t lo, hi;
    if (ep.cls == EdgeClass::kCol) {
      lo = refined ? y2key_cell(vrow[static_cast<std::size_t>(ep.src)],
                                d.src_off[static_cast<std::size_t>(e)])
                   : ykey_cell(vrow[static_cast<std::size_t>(ep.src)],
                               d.src_off[static_cast<std::size_t>(e)]);
      hi = refined ? y2key_cell(vrow[static_cast<std::size_t>(ep.dst)],
                                d.dst_off[static_cast<std::size_t>(e)])
                   : ykey_cell(vrow[static_cast<std::size_t>(ep.dst)],
                               d.dst_off[static_cast<std::size_t>(e)]);
    } else {
      lo = refined ? y2key_track(ep.h_chan, ep.h_track) : ykey_chan(ep.h_chan);
      hi = vertical_side(ep.dst_side)
               ? (refined ? y2key_track(jogs[static_cast<std::size_t>(e)].dst_hchan,
                                        jogs[static_cast<std::size_t>(e)].dst_htrack)
                          : ykey_chan(jogs[static_cast<std::size_t>(e)].dst_hchan))
               : (refined ? y2key_cell(vrow[static_cast<std::size_t>(ep.dst)],
                                       d.dst_off[static_cast<std::size_t>(e)])
                          : ykey_cell(vrow[static_cast<std::size_t>(ep.dst)],
                                      d.dst_off[static_cast<std::size_t>(e)]));
    }
    if (lo > hi) std::swap(lo, hi);
    vreqs.push_back({static_cast<std::int64_t>(ep.v_chan) * kMaxLayer + ep.v_layer, lo, hi,
                     static_cast<std::int32_t>(e), false});
    // Source jog (L edges attached right/left).
    if (ep.cls == EdgeClass::kL && !vertical_side(ep.src_side)) {
      std::int64_t jlo = refined ? y2key_cell(vrow[static_cast<std::size_t>(ep.src)],
                                              d.src_off[static_cast<std::size_t>(e)])
                                 : ykey_cell(vrow[static_cast<std::size_t>(ep.src)],
                                             d.src_off[static_cast<std::size_t>(e)]);
      std::int64_t jhi = refined ? y2key_track(ep.h_chan, ep.h_track) : ykey_chan(ep.h_chan);
      if (jlo > jhi) std::swap(jlo, jhi);
      vreqs.push_back(
          {static_cast<std::int64_t>(jogs[static_cast<std::size_t>(e)].src_vchan) * kMaxLayer +
               ep.v_layer,
           jlo, jhi, static_cast<std::int32_t>(e), true});
    }
  }
  pack_groups(vreqs, kMaxLayer, d.v_chan_tracks,
              [&](std::int32_t e, bool is_jog, std::int32_t track) {
                if (is_jog)
                  jogs[static_cast<std::size_t>(e)].src_vtrack = track;
                else
                  plan[static_cast<std::size_t>(e)].v_track = track;
              });
}

std::int64_t grid_extent_area(const RoutePlanData& d) {
  std::int64_t width = static_cast<std::int64_t>(d.C) * d.w;
  for (std::int32_t t : d.v_chan_tracks) width += t;
  std::int64_t height = static_cast<std::int64_t>(d.R) * d.w;
  for (std::int32_t t : d.h_chan_tracks) height += t;
  return width * height;
}

// The mutable slice of a plan that a repack round rewrites: per-request
// track assignments plus per-channel track counts.  Snapshots let the
// compactor keep the best round and restore it losslessly.
struct TrackSnapshot {
  std::vector<std::int32_t> h_track, v_track, src_vtrack, dst_htrack;
  std::vector<std::int32_t> h_chan_tracks, v_chan_tracks;

  static TrackSnapshot capture(const RoutePlanData& d) {
    TrackSnapshot s;
    s.h_track.resize(static_cast<std::size_t>(d.E));
    s.v_track.resize(static_cast<std::size_t>(d.E));
    for (std::int64_t e = 0; e < d.E; ++e) {
      s.h_track[static_cast<std::size_t>(e)] = d.plan[static_cast<std::size_t>(e)].h_track;
      s.v_track[static_cast<std::size_t>(e)] = d.plan[static_cast<std::size_t>(e)].v_track;
    }
    if (d.four) {
      s.src_vtrack.resize(static_cast<std::size_t>(d.E));
      s.dst_htrack.resize(static_cast<std::size_t>(d.E));
      for (std::int64_t e = 0; e < d.E; ++e) {
        s.src_vtrack[static_cast<std::size_t>(e)] = d.jogs[static_cast<std::size_t>(e)].src_vtrack;
        s.dst_htrack[static_cast<std::size_t>(e)] = d.jogs[static_cast<std::size_t>(e)].dst_htrack;
      }
    }
    s.h_chan_tracks = d.h_chan_tracks;
    s.v_chan_tracks = d.v_chan_tracks;
    return s;
  }

  void restore(RoutePlanData& d) const {
    for (std::int64_t e = 0; e < d.E; ++e) {
      d.plan[static_cast<std::size_t>(e)].h_track = h_track[static_cast<std::size_t>(e)];
      d.plan[static_cast<std::size_t>(e)].v_track = v_track[static_cast<std::size_t>(e)];
    }
    if (d.four) {
      for (std::int64_t e = 0; e < d.E; ++e) {
        d.jogs[static_cast<std::size_t>(e)].src_vtrack = src_vtrack[static_cast<std::size_t>(e)];
        d.jogs[static_cast<std::size_t>(e)].dst_htrack = dst_htrack[static_cast<std::size_t>(e)];
      }
    }
    d.h_chan_tracks = h_chan_tracks;
    d.v_chan_tracks = v_chan_tracks;
  }

  bool operator==(const TrackSnapshot& o) const {
    return h_track == o.h_track && v_track == o.v_track && src_vtrack == o.src_vtrack &&
           dst_htrack == o.dst_htrack && h_chan_tracks == o.h_chan_tracks &&
           v_chan_tracks == o.v_chan_tracks;
  }
};

}  // namespace

RoutePlan::RoutePlan() = default;
RoutePlan::RoutePlan(RoutePlan&&) noexcept = default;
RoutePlan& RoutePlan::operator=(RoutePlan&&) noexcept = default;
RoutePlan::~RoutePlan() = default;

bool parity_source_is_first(std::int32_t row_u, std::int32_t row_v) {
  STARLAY_REQUIRE(row_u != row_v, "parity_source_is_first: rows must differ");
  const std::int32_t k = std::abs(row_u - row_v);
  return (row_u / k) % 2 == 0;
}

RoutePlan plan_route(const topology::Graph& g, const Placement& p,
                     const RouteSpec& spec, const RouterOptions& opt) {
  p.check(g.num_vertices());
  const std::int64_t E = g.num_edges();
  tel::count("route.edges", E);
  STARLAY_REQUIRE(E <= std::numeric_limits<std::int32_t>::max(),
                  "route_grid: edge count exceeds 32-bit bookkeeping");
  if (!spec.source_is_u.empty())
    STARLAY_REQUIRE(static_cast<std::int64_t>(spec.source_is_u.size()) == E,
                    "route_grid: source_is_u size mismatch");
  if (!spec.layers.empty())
    STARLAY_REQUIRE(static_cast<std::int64_t>(spec.layers.size()) == E,
                    "route_grid: layers size mismatch");

  RoutePlan rp;
  rp.d = std::make_unique<RoutePlanData>();
  RoutePlanData& d = *rp.d;
  d.V = g.num_vertices();
  d.R = p.rows;
  d.C = p.cols;
  d.E = E;
  d.four = opt.four_sided;
  // Channel k sits below row k / left of column k; channels R and C close
  // the top/right side.  Two-sided mode only uses channels 1..R / 1..C.
  d.HC = d.R + 1;
  d.VC = d.C + 1;
  const std::int32_t V = d.V;
  const bool four = d.four;

  d.vrow.resize(static_cast<std::size_t>(V));
  d.vcol.resize(static_cast<std::size_t>(V));
  std::vector<std::int32_t>& vrow = d.vrow;
  std::vector<std::int32_t>& vcol = d.vcol;
  for (std::int32_t v = 0; v < V; ++v) {
    vrow[static_cast<std::size_t>(v)] = p.row_of(v);
    vcol[static_cast<std::size_t>(v)] = p.col_of(v);
  }

  // Sequential pipeline sections share one span slot: emplace ends the
  // previous section's span and opens the next (all children of the
  // caller's "routing" span).
  std::optional<tel::ScopedPhase> section;

  // ---- Classify edges and pick L orientations -------------------------------
  // Per-edge independent: each iteration writes only plan[e].
  section.emplace("classify");
  d.plan.resize(static_cast<std::size_t>(E));
  d.jogs.resize(four ? static_cast<std::size_t>(E) : 0);
  std::vector<EdgePlan>& plan = d.plan;
  std::vector<JogPlan>& jogs = d.jogs;
  support::parallel_for(0, E, kEdgeGrain, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
  for (std::int64_t e = lo; e < hi; ++e) {
    const auto& ed = g.edge(e);
    EdgePlan& ep = plan[static_cast<std::size_t>(e)];
    if (!spec.layers.empty()) {
      ep.h_layer = spec.layers[static_cast<std::size_t>(e)].first;
      ep.v_layer = spec.layers[static_cast<std::size_t>(e)].second;
      STARLAY_REQUIRE(ep.h_layer >= 1 && ep.h_layer % 2 == 1, "route_grid: h_layer must be odd");
      STARLAY_REQUIRE(ep.v_layer >= 2 && ep.v_layer % 2 == 0, "route_grid: v_layer must be even");
      STARLAY_REQUIRE(std::abs(ep.h_layer - ep.v_layer) == 1,
                      "route_grid: h and v layers must be adjacent");
    }
    const std::int32_t ru = vrow[static_cast<std::size_t>(ed.u)];
    const std::int32_t rv = vrow[static_cast<std::size_t>(ed.v)];
    const std::int32_t cu = vcol[static_cast<std::size_t>(ed.u)];
    const std::int32_t cv = vcol[static_cast<std::size_t>(ed.v)];
    if (ru == rv) {
      ep.cls = EdgeClass::kRow;
      ep.src = cu <= cv ? ed.u : ed.v;
      ep.dst = cu <= cv ? ed.v : ed.u;
      const bool above = !four || ((cu + cv) % 2 == 0);
      ep.src_side = ep.dst_side = above ? kTop : kBottom;
      ep.h_chan = above ? ru + 1 : ru;
    } else if (cu == cv) {
      ep.cls = EdgeClass::kCol;
      ep.src = ru <= rv ? ed.u : ed.v;
      ep.dst = ru <= rv ? ed.v : ed.u;
      const bool right_side = !four || ((ru + rv) % 2 == 0);
      ep.src_side = ep.dst_side = right_side ? kRight : kLeft;
      ep.v_chan = right_side ? cu + 1 : cu;
    } else {
      ep.cls = EdgeClass::kL;
      bool u_is_src;
      if (!spec.source_is_u.empty())
        u_is_src = spec.source_is_u[static_cast<std::size_t>(e)] != 0;
      else
        u_is_src = parity_source_is_first(ru, rv);
      ep.src = u_is_src ? ed.u : ed.v;
      ep.dst = u_is_src ? ed.v : ed.u;
      ep.src_side = kTop;    // refined below in four-sided mode
      ep.dst_side = kRight;
    }
  }
  });

  // ---- Attachment-side balancing (four-sided mode) ---------------------------
  // Each node spreads its L-edge attachments over all four sides; sources
  // prefer top/bottom (no jog) and destinations right/left, but a loaded
  // node spills onto the other pair, which is what lets node sides shrink
  // toward degree/2 (the paper's extended-grid regime).
  if (four) {
    std::vector<std::array<std::int32_t, 4>> load(static_cast<std::size_t>(V),
                                                  {0, 0, 0, 0});
    for (std::int64_t e = 0; e < E; ++e) {
      const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
      if (ep.cls == EdgeClass::kL) continue;
      ++load[static_cast<std::size_t>(ep.src)][static_cast<std::size_t>(ep.src_side)];
      ++load[static_cast<std::size_t>(ep.dst)][static_cast<std::size_t>(ep.dst_side)];
    }
    const auto pick = [&](std::int32_t v, bool prefer_vertical) -> std::int8_t {
      auto& l = load[static_cast<std::size_t>(v)];
      // Twice the load plus a half-step penalty for non-preferred sides.
      int best = -1;
      int best_score = 1 << 30;
      for (int s = 0; s < 4; ++s) {
        const int penalty = vertical_side(s) == prefer_vertical ? 0 : 1;
        const int score = 2 * l[static_cast<std::size_t>(s)] + penalty;
        if (score < best_score) {
          best_score = score;
          best = s;
        }
      }
      ++l[static_cast<std::size_t>(best)];
      return static_cast<std::int8_t>(best);
    };
    for (std::int64_t e = 0; e < E; ++e) {
      EdgePlan& ep = plan[static_cast<std::size_t>(e)];
      if (ep.cls != EdgeClass::kL) continue;
      ep.src_side = pick(ep.src, /*prefer_vertical=*/true);
      ep.dst_side = pick(ep.dst, /*prefer_vertical=*/false);
    }
  }

  // ---- Channel selection ------------------------------------------------------
  section.emplace("channel_select");
  support::parallel_for(0, E, kEdgeGrain, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
  for (std::int64_t e = lo; e < hi; ++e) {
    EdgePlan& ep = plan[static_cast<std::size_t>(e)];
    if (ep.cls != EdgeClass::kL) continue;
    const std::int32_t rs = vrow[static_cast<std::size_t>(ep.src)];
    const std::int32_t cs = vcol[static_cast<std::size_t>(ep.src)];
    const std::int32_t rt = vrow[static_cast<std::size_t>(ep.dst)];
    const std::int32_t ct = vcol[static_cast<std::size_t>(ep.dst)];
    switch (ep.src_side) {
      case kTop: ep.h_chan = rs + 1; break;
      case kBottom: ep.h_chan = rs; break;
      default:
        // Side attachment: the jog channel is fixed by the side; the main
        // H run may go above or below, alternating for balance.
        jogs[static_cast<std::size_t>(e)].src_vchan = ep.src_side == kRight ? cs + 1 : cs;
        ep.h_chan = (e % 2 == 0) ? rs + 1 : rs;
        break;
    }
    switch (ep.dst_side) {
      case kRight: ep.v_chan = ct + 1; break;
      case kLeft: ep.v_chan = ct; break;
      default:
        jogs[static_cast<std::size_t>(e)].dst_hchan = ep.dst_side == kTop ? rt + 1 : rt;
        ep.v_chan = (e % 2 == 0) ? ct + 1 : ct;
        break;
    }
  }
  });

  // ---- Stub assignment ---------------------------------------------------------
  // Within each node side, stubs are ordered by the far endpoint (column
  // first on vertical sides, row first on horizontal ones) — the ordering
  // that makes collinear K_m take exactly floor(m^2/4) tracks.  Four-sided
  // mode interleaves: top/right stubs take even in-cell offsets, bottom/
  // left odd ones, so the two rows (columns) adjoining a channel can never
  // collide.
  //
  // The 2E stubs live in one flat slot-major array (slot = node * 4 +
  // side): count per slot, prefix-sum, then write in edge order — the same
  // per-slot sequences the former per-slot vectors held, without their 4V
  // heap blocks.
  section.emplace("stub_assign");
  const std::size_t num_slots = static_cast<std::size_t>(V) * 4;
  std::vector<std::uint32_t> slot_start(num_slots + 1, 0);
  std::vector<StubEntry> stubs(static_cast<std::size_t>(E) * 2);
  {
    const auto slot_of = [](std::int32_t v, std::int8_t side) {
      return static_cast<std::size_t>(v) * 4 + static_cast<std::size_t>(side);
    };
    for (std::int64_t e = 0; e < E; ++e) {
      const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
      ++slot_start[slot_of(ep.src, ep.src_side) + 1];
      ++slot_start[slot_of(ep.dst, ep.dst_side) + 1];
    }
    for (std::size_t s = 1; s < slot_start.size(); ++s) slot_start[s] += slot_start[s - 1];
    std::vector<std::uint32_t> cursor(slot_start.begin(), slot_start.end() - 1);
    const auto put = [&](std::int64_t e, std::int32_t v, std::int8_t side,
                         std::int32_t other, bool is_src) {
      const bool by_col = vertical_side(side);
      const std::int32_t oc = vcol[static_cast<std::size_t>(other)];
      const std::int32_t orow = vrow[static_cast<std::size_t>(other)];
      stubs[cursor[slot_of(v, side)]++] = {static_cast<std::int32_t>(e),
                                           by_col ? oc : orow, by_col ? orow : oc,
                                           is_src ? std::uint8_t{1} : std::uint8_t{0}};
    };
    for (std::int64_t e = 0; e < E; ++e) {
      const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
      put(e, ep.src, ep.src_side, ep.dst, true);
      put(e, ep.dst, ep.dst_side, ep.src, false);
    }
  }

  const auto stub_offset = [&](int side, std::int32_t idx) -> Coord {
    if (!four) return idx;
    const bool odd = side == kBottom || side == kLeft;
    return 2 * static_cast<Coord>(idx) + (odd ? 1 : 0);
  };
  // Auto node size: Thompson's degree square in two-sided mode; the exact
  // per-side stub demand (about ceil(degree/2)) in four-sided mode.
  // Per-slot runs are sorted independently; the stub-demand maximum is
  // reduced from per-chunk partials to stay thread-count independent.
  Coord w = opt.node_size;
  Coord w_needed = 1;
  {
    const std::int64_t chunks = support::num_chunks(0, V, kNodeGrain);
    std::vector<Coord> chunk_max(static_cast<std::size_t>(chunks), 1);
    support::parallel_for(0, V, kNodeGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      Coord m = 1;
      for (std::int64_t v = lo; v < hi; ++v) {
        for (int side = 0; side < 4; ++side) {
          const std::size_t slot = static_cast<std::size_t>(v) * 4 + static_cast<std::size_t>(side);
          const std::uint32_t b = slot_start[slot], t = slot_start[slot + 1];
          if (b == t) continue;
          std::sort(stubs.begin() + b, stubs.begin() + t);
          m = std::max(m, stub_offset(side, static_cast<std::int32_t>(t - b) - 1) + 1);
        }
      }
      chunk_max[static_cast<std::size_t>(chunk)] = m;
    });
    for (Coord m : chunk_max) w_needed = std::max(w_needed, m);
  }
  if (w == 0) {
    w = four ? w_needed
             : std::max<Coord>(1, g.num_edges() == 0 ? 1 : g.max_degree());
  }
  STARLAY_REQUIRE(w >= w_needed,
                  "route_grid: node_size too small for stub demand; "
                  "increase RouterOptions::node_size");
  d.w = w;
  // In-cell stub offsets fit 32 bits (bounded by 2 * degree + 1).
  d.src_off.resize(static_cast<std::size_t>(E));
  d.dst_off.resize(static_cast<std::size_t>(E));
  std::vector<std::int32_t>& src_off = d.src_off;
  std::vector<std::int32_t>& dst_off = d.dst_off;
  support::parallel_for(0, V, kNodeGrain, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    for (std::int64_t v = lo; v < hi; ++v) {
      for (int side = 0; side < 4; ++side) {
        const std::size_t slot = static_cast<std::size_t>(v) * 4 + static_cast<std::size_t>(side);
        const std::uint32_t b = slot_start[slot], t = slot_start[slot + 1];
        for (std::uint32_t i = b; i < t; ++i) {
          const auto off =
              static_cast<std::int32_t>(stub_offset(side, static_cast<std::int32_t>(i - b)));
          if (stubs[i].is_src)
            src_off[static_cast<std::size_t>(stubs[i].edge)] = off;
          else
            dst_off[static_cast<std::size_t>(stubs[i].edge)] = off;
        }
      }
    }
  });
  free_vector(stubs);
  free_vector(slot_start);

  // ---- Horizontal packing (H channels: main runs + destination jogs) ---------
  section.emplace("h_pack");
  pack_h_tracks(d, /*refined=*/false);

  // ---- Vertical packing (V channels: main runs + source jogs) -----------------
  section.emplace("v_pack");
  pack_v_tracks(d, /*refined=*/true);

  section.reset();
  return rp;
}

CompactionStats compact_route(RoutePlan& rp, const CompactionOptions& opt) {
  STARLAY_REQUIRE(!rp.empty(), "compact_route: empty plan");
  tel::ScopedPhase phase("compact");
  RoutePlanData& d = *rp.d;

  CompactionStats st;
  // A packed state is *emit-safe* only when each orientation's intervals
  // were keyed by exactly the opposite orientation's final tracks (refined
  // keys) or by keys conservative for any assignment (coarse keys): the
  // emitted turn coordinate is chan_x0[chan] + track, so re-packing one
  // orientation invalidates refined intervals previously computed against
  // it.  Three kinds of candidates qualify:
  //
  //   round 0 — the construction corner: h coarse, v refined against the
  //             final h tracks (what plan_route emitted historically);
  //   round 1 — the transposed corner: v coarse, h refined against the
  //             final v tracks;
  //   rounds 2+ — alternate refined repacks; a state is a candidate only
  //             at a mutual fixed point (re-packing changes nothing, so
  //             each side's keys used the other's final tracks).
  //
  // Every pack recomputes from the plan's structure alone — incoming track
  // state matters only through the documented key inputs — so the whole
  // procedure is a pure function of the plan and bit-exactly idempotent.
  pack_h_tracks(d, /*refined=*/false);
  pack_v_tracks(d, /*refined=*/true);
  TrackSnapshot best = TrackSnapshot::capture(d);
  std::int64_t best_area = grid_extent_area(d);
  st.area_before = best_area;
  st.best_round = 0;

  if (opt.max_rounds >= 1) {
    pack_v_tracks(d, /*refined=*/false);
    pack_h_tracks(d, /*refined=*/true);
    st.rounds = 1;
    const std::int64_t area = grid_extent_area(d);
    if (area < best_area) {
      best_area = area;
      best = TrackSnapshot::capture(d);
      st.best_round = 1;
    }
  }

  TrackSnapshot prev = TrackSnapshot::capture(d);
  for (int round = 2; round <= opt.max_rounds; ++round) {
    pack_v_tracks(d, /*refined=*/true);
    pack_h_tracks(d, /*refined=*/true);
    st.rounds = round;
    TrackSnapshot cur = TrackSnapshot::capture(d);
    const bool fixed_point = cur == prev;
    prev = std::move(cur);
    if (!fixed_point) continue;
    const std::int64_t area = grid_extent_area(d);
    if (area < best_area) {
      best_area = area;
      best = std::move(prev);
      st.best_round = round;
    }
    break;  // further rounds repeat the fixed point
  }

  best.restore(d);
  st.area_after = best_area;
  tel::count("compact.area_saved", st.area_before - st.area_after);
  return st;
}

std::int64_t planned_area(const RoutePlan& rp) {
  STARLAY_REQUIRE(!rp.empty(), "planned_area: empty plan");
  return grid_extent_area(*rp.d);
}

RouteStats emit_route(const RoutePlan& rp, const topology::Graph& g, WireSink& sink) {
  STARLAY_REQUIRE(!rp.empty(), "emit_route: empty plan");
  const RoutePlanData& d = *rp.d;
  const std::int32_t V = d.V;
  const std::int32_t R = d.R;
  const std::int32_t C = d.C;
  const std::int64_t E = d.E;
  const Coord w = d.w;
  const bool four = d.four;
  const std::vector<std::int32_t>& vrow = d.vrow;
  const std::vector<std::int32_t>& vcol = d.vcol;
  const std::vector<EdgePlan>& plan = d.plan;
  const std::vector<JogPlan>& jogs = d.jogs;
  const std::vector<std::int32_t>& src_off = d.src_off;
  const std::vector<std::int32_t>& dst_off = d.dst_off;
  const std::vector<std::int32_t>& h_chan_tracks = d.h_chan_tracks;
  const std::vector<std::int32_t>& v_chan_tracks = d.v_chan_tracks;

  std::optional<tel::ScopedPhase> section;

  // ---- Geometry -----------------------------------------------------------------
  section.emplace("geometry");
  std::vector<Coord> chan_x0(static_cast<std::size_t>(d.VC)), col_x0(static_cast<std::size_t>(C));
  {
    Coord pos = 0;
    for (std::int32_t k = 0; k <= C; ++k) {
      chan_x0[static_cast<std::size_t>(k)] = pos;
      pos += v_chan_tracks[static_cast<std::size_t>(k)];
      if (k < C) {
        col_x0[static_cast<std::size_t>(k)] = pos;
        pos += w;
      }
    }
  }
  std::vector<Coord> chan_y0(static_cast<std::size_t>(d.HC)), row_y0(static_cast<std::size_t>(R));
  {
    Coord pos = 0;
    for (std::int32_t k = 0; k <= R; ++k) {
      chan_y0[static_cast<std::size_t>(k)] = pos;
      pos += h_chan_tracks[static_cast<std::size_t>(k)];
      if (k < R) {
        row_y0[static_cast<std::size_t>(k)] = pos;
        pos += w;
      }
    }
  }

  RouteStats stats;
  stats.node_size = w;
  if (four) {
    stats.row_channel_tracks = h_chan_tracks;
    stats.col_channel_tracks = v_chan_tracks;
  } else {
    stats.row_channel_tracks.assign(h_chan_tracks.begin() + 1, h_chan_tracks.end());
    stats.col_channel_tracks.assign(v_chan_tracks.begin() + 1, v_chan_tracks.end());
  }

  std::vector<Rect> node_rects(static_cast<std::size_t>(V));
  for (std::int32_t v = 0; v < V; ++v) {
    const Coord x0 = col_x0[static_cast<std::size_t>(vcol[static_cast<std::size_t>(v)])];
    const Coord y0 = row_y0[static_cast<std::size_t>(vrow[static_cast<std::size_t>(v)])];
    node_rects[static_cast<std::size_t>(v)] = {x0, y0, x0 + w - 1, y0 + w - 1};
  }
  sink.begin(g, std::move(node_rects));

  const auto htrack_y = [&](std::int32_t chan, std::int32_t track) {
    return chan_y0[static_cast<std::size_t>(chan)] + track;
  };
  const auto vtrack_x = [&](std::int32_t chan, std::int32_t track) {
    return chan_x0[static_cast<std::size_t>(chan)] + track;
  };
  // Attachment point of an endpoint on its node boundary, and the first
  // off-node point direction, per side.
  const auto attach = [&](std::int32_t v, int side, Coord off) -> Point {
    const Coord x0 = col_x0[static_cast<std::size_t>(vcol[static_cast<std::size_t>(v)])];
    const Coord y0 = row_y0[static_cast<std::size_t>(vrow[static_cast<std::size_t>(v)])];
    switch (side) {
      case kTop: return {x0 + off, y0 + w - 1};
      case kBottom: return {x0 + off, y0};
      case kRight: return {x0 + w - 1, y0 + off};
      default: return {x0, y0 + off};
    }
  };

  // Each edge's wire geometry is a pure function of its plan entry, so
  // sinks may replay this fill any number of times (the materializing sink
  // runs it twice to size the SoA store, the streaming one once per tile
  // batch).
  section.emplace("emit");
  sink.emit_bulk(E, kEdgeGrain, [&](std::int64_t e, Wire& wre) {
    const EdgePlan& ep = plan[static_cast<std::size_t>(e)];
    wre.edge = e;
    wre.h_layer = ep.h_layer;
    wre.v_layer = ep.v_layer;
    const Point sp = attach(ep.src, ep.src_side, src_off[static_cast<std::size_t>(e)]);
    const Point dp = attach(ep.dst, ep.dst_side, dst_off[static_cast<std::size_t>(e)]);
    switch (ep.cls) {
      case EdgeClass::kRow: {
        const Coord ty = htrack_y(ep.h_chan, ep.h_track);
        wre.push(sp);
        wre.push({sp.x, ty});
        wre.push({dp.x, ty});
        wre.push(dp);
        break;
      }
      case EdgeClass::kCol: {
        const Coord tx = vtrack_x(ep.v_chan, ep.v_track);
        wre.push(sp);
        wre.push({tx, sp.y});
        wre.push({tx, dp.y});
        wre.push(dp);
        break;
      }
      case EdgeClass::kL: {
        const Coord ty = htrack_y(ep.h_chan, ep.h_track);
        const Coord tx = vtrack_x(ep.v_chan, ep.v_track);
        wre.push(sp);
        if (vertical_side(ep.src_side)) {
          wre.push({sp.x, ty});  // vertical stub straight to the main run
        } else {
          const Coord jx = vtrack_x(jogs[static_cast<std::size_t>(e)].src_vchan,
                                    jogs[static_cast<std::size_t>(e)].src_vtrack);
          wre.push({jx, sp.y});  // horizontal stub to the jog track
          wre.push({jx, ty});    // vertical jog to the main run's level
        }
        wre.push({tx, ty});
        if (vertical_side(ep.dst_side)) {
          const Coord jy = htrack_y(jogs[static_cast<std::size_t>(e)].dst_hchan,
                                    jogs[static_cast<std::size_t>(e)].dst_htrack);
          wre.push({tx, jy});    // vertical main down/up to the jog track
          wre.push({dp.x, jy});  // horizontal jog over the terminal stub
        } else {
          wre.push({tx, dp.y});
        }
        wre.push(dp);
        break;
      }
    }
  });
  sink.end();
  section.reset();
  return stats;
}

RouteStats route_grid_stream(const topology::Graph& g, const Placement& p,
                             const RouteSpec& spec, const RouterOptions& opt,
                             WireSink& sink) {
  tel::ScopedPhase routing_phase("routing");
  RoutePlan rp = plan_route(g, p, spec, opt);
  return emit_route(rp, g, sink);
}

RoutedLayout route_grid(const topology::Graph& g, const Placement& p,
                        const RouteSpec& spec, const RouterOptions& opt) {
  MaterializingSink sink;
  RouteStats stats = route_grid_stream(g, p, spec, opt, sink);
  return {sink.take_layout(), std::move(stats.row_channel_tracks),
          std::move(stats.col_channel_tracks), stats.node_size};
}

}  // namespace starlay::layout
