#include "starlay/layout/segment_index.hpp"

#include <algorithm>
#include <atomic>
#include <limits>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kWireGrain = 8192;  // per-wire counting / scatter
constexpr std::int64_t kLineGrain = 1024;  // per-line sorting
constexpr std::int64_t kSplitGrain = 1 << 16;  // AoS -> SoA split
constexpr std::size_t kBatch = 2048;  // segments buffered per prefetch batch

/// Invokes f(layer, horizontal, line, lo, hi) for every non-degenerate
/// segment of wire w, in point order.  Coordinates stay int32: WireStore
/// rejects anything wider on append.
template <typename F>
void for_wire_segments(const Point32* pts, const std::uint32_t* off,
                       const WireStore::Meta& m, std::int64_t w, F&& f) {
  for (std::uint32_t i = off[w] + 1; i < off[w + 1]; ++i) {
    const Point32 a = pts[i - 1];
    const Point32 b = pts[i];
    if (a == b) continue;
    if (a.y == b.y)
      f(m.h_layer, true, a.y, std::min(a.x, b.x), std::max(a.x, b.x));
    else
      f(m.v_layer, false, a.x, std::min(a.y, b.y), std::max(a.y, b.y));
  }
}

bool span_less(const SegmentIndex::PackedSeg& a, const SegmentIndex::PackedSeg& b) {
  if (a.lo != b.lo) return a.lo < b.lo;
  if (a.hi != b.hi) return a.hi < b.hi;
  return a.wire < b.wire;
}

/// (lo, hi) folded into one unsigned word whose integer order equals the
/// signed lexicographic order span_less uses — one compare instead of two
/// data-dependent branches in the insertion sort's hot loop.
std::uint64_t span_key(const SegmentIndex::PackedSeg& s) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(s.lo) ^ 0x80000000u)
          << 32) |
         (static_cast<std::uint32_t>(s.hi) ^ 0x80000000u);
}

/// 128-bit sort word: (span_key | via_key, wire/tie-break) — one branchless
/// compare instead of a branchy multi-field comparator.
__extension__ typedef unsigned __int128 SortWord;

/// Comparison-free run sort: within a run the line is constant, so a record
/// is exactly (span_key, wire) — fold it into one SortWord, sort plain
/// integers, and decode in place.  The encode/decode is bijective, so no
/// permutation bookkeeping is needed, and ties produce byte-identical
/// records either way — scatter order still never shows in the result.
void sort_run_encoded(SegmentIndex::PackedSeg* first, std::ptrdiff_t n) {
  thread_local std::vector<SortWord> buf;
  buf.resize(static_cast<std::size_t>(n));
  for (std::ptrdiff_t i = 0; i < n; ++i)
    buf[static_cast<std::size_t>(i)] =
        (static_cast<SortWord>(span_key(first[i])) << 64) | first[i].wire;
  std::sort(buf.begin(), buf.end());
  const std::int32_t line = first[0].line;
  for (std::ptrdiff_t i = 0; i < n; ++i) {
    const std::uint64_t k = static_cast<std::uint64_t>(buf[static_cast<std::size_t>(i)] >> 64);
    first[i] = {line,
                static_cast<std::int32_t>(static_cast<std::uint32_t>(k >> 32) ^
                                          0x80000000u),
                static_cast<std::int32_t>(static_cast<std::uint32_t>(k) ^ 0x80000000u),
                static_cast<std::uint32_t>(buf[static_cast<std::size_t>(i)])};
  }
}

/// Sorts one line's run by (lo, hi, wire).  The scatter delivers each run
/// in wire order, whose distance from span order varies wildly with scale:
/// small stars leave most runs already sorted, while at star n = 9 over
/// half the segments sit in runs that are thoroughly shuffled (an insertion
/// sort there burns its whole shift budget and falls back anyway — measured
/// 18M wasted shifts per build).  A key-compare pre-scan classifies the run
/// first: already sorted returns immediately, near-sorted runs take the
/// insertion path from the first out-of-place record, and everything else
/// goes straight to the encoded integer sort.  The shift budget stays as
/// the adversarial guard (few inversions but long shift distances).
void sort_run(SegmentIndex::PackedSeg* first, SegmentIndex::PackedSeg* last) {
  const std::ptrdiff_t n = last - first;
  if (n <= 1) return;
  std::ptrdiff_t oop = 0;    ///< adjacent pairs out of order
  std::ptrdiff_t start = 0;  ///< first out-of-place index
  for (std::ptrdiff_t i = 1; i < n; ++i) {
    const std::uint64_t ki = span_key(first[i]);
    const std::uint64_t kp = span_key(first[i - 1]);
    if (ki < kp || (ki == kp && first[i].wire < first[i - 1].wire)) {
      if (oop == 0) start = i;
      ++oop;
    }
  }
  if (oop == 0) return;
  if (oop > n / 8) {
    sort_run_encoded(first, n);
    return;
  }
  std::ptrdiff_t budget = 4 * n + 64;
  for (std::ptrdiff_t i = start; i < n; ++i) {
    const std::uint64_t ki = span_key(first[i]);
    const std::uint64_t kp = span_key(first[i - 1]);
    if (ki > kp || (ki == kp && first[i].wire >= first[i - 1].wire)) continue;
    const SegmentIndex::PackedSeg v = first[i];
    std::ptrdiff_t j = i;
    while (j > 0) {
      const std::uint64_t kj = span_key(first[j - 1]);
      if (ki > kj || (ki == kj && v.wire >= first[j - 1].wire)) break;
      first[j] = first[j - 1];
      --j;
      if (--budget < 0) {
        first[j] = v;
        sort_run_encoded(first, n);
        return;
      }
    }
    first[j] = v;
  }
}

}  // namespace

SegmentIndex::SegmentIndex(const Layout& lay) {
  const WireStore& ws = lay.wires();
  const Point32* pts = ws.raw_points();
  const std::uint32_t* off = ws.raw_offsets();
  const WireStore::Meta* meta = ws.raw_meta();
  const std::int64_t W = ws.size();
  if (W == 0) return;

  // Layer range (over wire metadata; buckets for layers that carry no
  // segments simply stay empty), plus an upper bound on the segment count
  // (every point pair, degenerate ones included) from the offsets alone.
  const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
  std::int64_t pairs_ub = 0;
  {
    struct Partial {
      std::int16_t mn = std::numeric_limits<std::int16_t>::max();
      std::int16_t mx = std::numeric_limits<std::int16_t>::min();
      std::int64_t pairs = 0;
    };
    std::vector<Partial> partial(static_cast<std::size_t>(chunks));
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      Partial& p = partial[static_cast<std::size_t>(chunk)];
      for (std::int64_t i = lo; i < hi; ++i) {
        p.mn = std::min({p.mn, meta[i].h_layer, meta[i].v_layer});
        p.mx = std::max({p.mx, meta[i].h_layer, meta[i].v_layer});
        const std::int64_t npts = static_cast<std::int64_t>(off[i + 1]) - off[i];
        p.pairs += std::max<std::int64_t>(0, npts - 1);
      }
    });
    min_layer_ = std::numeric_limits<std::int16_t>::max();
    max_layer_ = std::numeric_limits<std::int16_t>::min();
    for (const Partial& p : partial) {
      min_layer_ = std::min(min_layer_, p.mn);
      max_layer_ = std::max(max_layer_, p.mx);
      pairs_ub += p.pairs;
    }
  }
  const std::int64_t B = (static_cast<std::int64_t>(max_layer_) - min_layer_ + 1) * 2;
  const auto bucket_of = [&](std::int16_t layer, bool horizontal) {
    return (static_cast<std::int64_t>(layer) - min_layer_) * 2 + (horizontal ? 1 : 0);
  };

  // When every bucket's dense per-line table fits the histogram budget (the
  // same 4x-the-segments bound the per-bucket pick uses, applied to the
  // upper bound), the counting pass is redundant: allocate every table up
  // front, run the histogram sweep alone, and read the bucket counts off
  // the histogram sums — one sweep over the wires instead of two.
  const Rect& bb = lay.bounding_box();
  const std::int64_t dense_cells = (B / 2) * (bb.width() + bb.height());
  const bool fused = pairs_ub > 0 && dense_cells <= 4 * pairs_ub + 4096;
  buckets_.resize(static_cast<std::size_t>(B));
  std::int64_t run = 0;  ///< total (non-degenerate) segment count
  if (fused) {
    for (std::int64_t b = 0; b < B; ++b) {
      Bucket& bk = buckets_[static_cast<std::size_t>(b)];
      const bool horizontal = (b % 2) == 1;
      const std::int64_t nlines = horizontal ? bb.height() : bb.width();
      bk.base = horizontal ? bb.y0 : bb.x0;
      bk.line_start.assign(static_cast<std::size_t>(nlines) + 1, 0);
    }
  } else {
    // Pass 1: per-chunk, per-bucket segment counts -> bucket begin/end.
    std::vector<std::int64_t> counts(static_cast<std::size_t>(chunks * B), 0);
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      std::int64_t* c = counts.data() + chunk * B;
      for (std::int64_t w = lo; w < hi; ++w)
        for_wire_segments(pts, off, meta[w], w,
                          [&](std::int16_t layer, bool horizontal, std::int32_t,
                              std::int32_t, std::int32_t) { ++c[bucket_of(layer, horizontal)]; });
    });
    for (std::int64_t b = 0; b < B; ++b) {
      buckets_[static_cast<std::size_t>(b)].begin = run;
      for (std::int64_t c = 0; c < chunks; ++c)
        run += counts[static_cast<std::size_t>(c * B + b)];
      buckets_[static_cast<std::size_t>(b)].end = run;
    }

    // Pick each bucket's representation up front.  Dense coordinate ranges
    // get a per-line histogram (counting sort); degenerate layouts whose
    // range dwarfs the segment count fall back to one comparison sort per
    // bucket.
    for (std::int64_t b = 0; b < B; ++b) {
      Bucket& bk = buckets_[static_cast<std::size_t>(b)];
      const std::int64_t count = bk.end - bk.begin;
      if (count == 0) continue;
      const bool horizontal = (b % 2) == 1;
      const std::int64_t nlines = horizontal ? bb.height() : bb.width();
      if (nlines > 4 * count + 1024) continue;  // sparse: line_start stays empty
      bk.base = horizontal ? bb.y0 : bb.x0;
      bk.line_start.assign(static_cast<std::size_t>(nlines) + 1, 0);
    }
  }

  // Pass 2: per-(bucket, line) histogram straight from the wires.  Relaxed
  // atomic adds commute, so the counts are thread-count independent.  The
  // cell addresses are staged through a small batch so the random histogram
  // misses overlap under a lookahead prefetch instead of serializing.  A
  // 1-thread pool runs chunks inline on the calling thread, so the lock
  // prefix (and its ~20-cycle toll per increment) can be skipped outright.
  const bool serial = support::ThreadPool::instance().num_threads() == 1;
  std::vector<std::uint8_t> bad(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::vector<std::int64_t*> cells;
    cells.reserve(kBatch);
    const auto flush = [&] {
      const std::size_t nb = cells.size();
      for (std::size_t j = 0; j < nb; ++j) {
        if (j + 16 < nb) __builtin_prefetch(cells[j + 16], 1);
        if (serial)
          ++*cells[j];
        else
          std::atomic_ref<std::int64_t>(*cells[j]).fetch_add(1, std::memory_order_relaxed);
      }
      cells.clear();
    };
    for (std::int64_t w = lo; w < hi; ++w)
      for_wire_segments(pts, off, meta[w], w,
                        [&](std::int16_t layer, bool horizontal, std::int32_t line,
                            std::int32_t, std::int32_t) {
                          Bucket& bk = buckets_[static_cast<std::size_t>(
                              bucket_of(layer, horizontal))];
                          if (bk.line_start.empty()) return;
                          const std::int64_t l = line - bk.base;
                          if (l < 0 || l + 1 >= static_cast<std::int64_t>(bk.line_start.size())) {
                            bad[static_cast<std::size_t>(chunk)] = 1;
                            return;
                          }
                          cells.push_back(bk.line_start.data() + l + 1);
                          if (cells.size() == kBatch) flush();
                        });
    flush();
  });
  for (const std::uint8_t f : bad)
    STARLAY_REQUIRE(!f, "SegmentIndex: segment outside bounding box");

  // Prefix sums -> absolute per-line offsets, plus scatter cursors (one per
  // line for histogram buckets, one per bucket for sparse ones).  In the
  // fused build the bucket ranges come straight off the histogram totals.
  std::vector<std::vector<std::int64_t>> curs(static_cast<std::size_t>(B));
  std::vector<std::int64_t> sparse_cur(static_cast<std::size_t>(B), 0);
  for (std::int64_t b = 0; b < B; ++b) {
    Bucket& bk = buckets_[static_cast<std::size_t>(b)];
    if (bk.line_start.empty()) {
      sparse_cur[static_cast<std::size_t>(b)] = bk.begin;
      continue;
    }
    for (std::size_t l = 1; l < bk.line_start.size(); ++l)
      bk.line_start[l] += bk.line_start[l - 1];
    if (fused) {
      bk.begin = run;
      run += bk.line_start.back();
      bk.end = run;
    }
    for (auto& s : bk.line_start) s += bk.begin;
    curs[static_cast<std::size_t>(b)].assign(bk.line_start.begin(), bk.line_start.end() - 1);
  }

  // Pass 3: scatter each segment straight into its line's slice of one AoS
  // scratch, claiming positions with relaxed fetch_add.  The per-line sort
  // below canonicalizes order by (lo, hi, wire) — and records that tie on
  // all of those are byte-identical — so the scatter order (thread
  // interleaving included) never shows in the final arrays.  (Scattering
  // directly into the SoA arrays was tried and is slower: one segment then
  // touches four random cache lines instead of one.)  Segments are staged
  // through a batch per chunk so two lookahead prefetches (cursor cell,
  // then the write target the cursor points at — off by at most the few
  // same-line records in between, i.e. usually the same cache line) keep
  // the store misses overlapped.
  const std::unique_ptr<PackedSeg[]> scratch_owner =
      std::make_unique_for_overwrite<PackedSeg[]>(static_cast<std::size_t>(run));
  PackedSeg* const scratch = scratch_owner.get();
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    struct Pending {
      PackedSeg s;
      std::int32_t bucket;
    };
    std::vector<Pending> batch;
    batch.reserve(kBatch);
    const auto cell_of = [&](const Pending& p) -> std::int64_t* {
      std::vector<std::int64_t>& cv = curs[static_cast<std::size_t>(p.bucket)];
      if (cv.empty()) return sparse_cur.data() + p.bucket;
      return cv.data() + (p.s.line - buckets_[static_cast<std::size_t>(p.bucket)].base);
    };
    const auto flush = [&] {
      const std::size_t nb = batch.size();
      for (std::size_t j = 0; j < nb; ++j) __builtin_prefetch(cell_of(batch[j]));
      for (std::size_t j = 0; j < nb; ++j) {
        if (j + 12 < nb)
          __builtin_prefetch(
              scratch + std::atomic_ref<std::int64_t>(*cell_of(batch[j + 12]))
                                   .load(std::memory_order_relaxed),
              1);
        std::int64_t* c = cell_of(batch[j]);
        const std::int64_t pos =
            serial ? (*c)++
                   : std::atomic_ref<std::int64_t>(*c).fetch_add(1, std::memory_order_relaxed);
        scratch[static_cast<std::size_t>(pos)] = batch[j].s;
      }
      batch.clear();
    };
    for (std::int64_t w = lo; w < hi; ++w)
      for_wire_segments(pts, off, meta[w], w,
                        [&](std::int16_t layer, bool horizontal, std::int32_t line,
                            std::int32_t slo, std::int32_t shi) {
                          batch.push_back({{line, slo, shi, static_cast<std::uint32_t>(w)},
                                           static_cast<std::int32_t>(
                                               bucket_of(layer, horizontal))});
                          if (batch.size() == kBatch) flush();
                        });
    flush();
  });

  // Pass 4: order within each line (histogram buckets; disjoint ranges, so
  // deterministic under any thread count) or within the whole bucket
  // (sparse fallback), splitting each chunk's final order straight into the
  // SoA arrays with the deinterleave4 kernel while its records are still
  // cache-hot.
  size_ = run;
  line_ = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(run));
  lo_ = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(run));
  hi_ = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(run));
  wire_ = std::make_unique_for_overwrite<std::uint32_t[]>(static_cast<std::size_t>(run));
  static_assert(sizeof(PackedSeg) == 4 * sizeof(std::int32_t),
                "deinterleave4 views PackedSeg as four packed int32 fields");
  const kernels::KernelTable& K = kernels::active();
  const auto split_out = [&](std::int64_t begin, std::int64_t end) {
    K.deinterleave4(reinterpret_cast<const std::int32_t*>(scratch + begin), end - begin,
                    line_.get() + begin, lo_.get() + begin, hi_.get() + begin,
                    reinterpret_cast<std::int32_t*>(wire_.get() + begin));
  };
  for (std::int64_t b = 0; b < B; ++b) {
    Bucket& bk = buckets_[static_cast<std::size_t>(b)];
    if (bk.end == bk.begin) continue;
    if (bk.line_start.empty()) {
      std::sort(scratch + bk.begin, scratch + bk.end,
                [](const PackedSeg& a, const PackedSeg& c) {
                  if (a.line != c.line) return a.line < c.line;
                  return span_less(a, c);
                });
      support::parallel_for(bk.begin, bk.end, kSplitGrain,
                            [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        split_out(lo, hi);
      });
      continue;
    }
    const std::int64_t nlines = static_cast<std::int64_t>(bk.line_start.size()) - 1;
    support::parallel_for(0, nlines, kLineGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t l = lo; l < hi; ++l) {
        const std::int64_t s = bk.line_start[static_cast<std::size_t>(l)];
        const std::int64_t e = bk.line_start[static_cast<std::size_t>(l) + 1];
        sort_run(scratch + s, scratch + e);
      }
      split_out(bk.line_start[static_cast<std::size_t>(lo)],
                bk.line_start[static_cast<std::size_t>(hi)]);
    });
  }
}

std::pair<std::int64_t, std::int64_t> SegmentIndex::line_span(std::int16_t layer,
                                                              bool horizontal,
                                                              Coord line) const {
  if (layer < min_layer_ || layer > max_layer_) return {0, 0};
  const Bucket& bk = buckets_[static_cast<std::size_t>(
      (static_cast<std::int64_t>(layer) - min_layer_) * 2 + (horizontal ? 1 : 0))];
  if (bk.begin == bk.end) return {0, 0};
  if (!bk.line_start.empty()) {
    const std::int64_t l = line - bk.base;
    if (l < 0 || l + 1 >= static_cast<std::int64_t>(bk.line_start.size())) return {0, 0};
    return {bk.line_start[static_cast<std::size_t>(l)],
            bk.line_start[static_cast<std::size_t>(l) + 1]};
  }
  // Sparse bucket: binary search the line's range in the SoA line array.
  if (line < std::numeric_limits<std::int32_t>::min() ||
      line > std::numeric_limits<std::int32_t>::max())
    return {0, 0};
  const std::int32_t l32 = static_cast<std::int32_t>(line);
  const std::int32_t* first = line_.get() + bk.begin;
  const std::int32_t* last = line_.get() + bk.end;
  const std::int32_t* lo = std::lower_bound(first, last, l32);
  const std::int32_t* hi = std::upper_bound(lo, last, l32);
  return {lo - line_.get(), hi - line_.get()};
}

LayerSegment SegmentIndex::segment(std::int64_t i) const {
  for (std::int64_t b = 0; b < num_buckets(); ++b) {
    const BucketView bv = bucket(b);
    if (i >= bv.begin && i < bv.end) {
      const std::size_t s = static_cast<std::size_t>(i);
      return {bv.layer, bv.horizontal, line_[s], {lo_[s], hi_[s]},
              static_cast<std::int64_t>(wire_[s])};
    }
  }
  STARLAY_REQUIRE(false, "SegmentIndex::segment: index out of range");
  return {};
}

std::vector<LayerSegment> SegmentIndex::materialize() const {
  std::vector<LayerSegment> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (std::int64_t b = 0; b < num_buckets(); ++b) {
    const BucketView bv = bucket(b);
    for (std::int64_t i = bv.begin; i < bv.end; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      out.push_back({bv.layer, bv.horizontal, line_[s], {lo_[s], hi_[s]},
                     static_cast<std::int64_t>(wire_[s])});
    }
  }
  return out;
}

}  // namespace starlay::layout
