#include "starlay/layout/segment_index.hpp"

#include <algorithm>
#include <limits>

#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kWireGrain = 8192;  // per-wire counting / filling
constexpr std::int64_t kLineGrain = 1024;  // per-line sorting

/// Invokes f(layer, horizontal, line, lo, hi) for every non-degenerate
/// segment of wire w, in point order.
template <typename F>
void for_wire_segments(const Point32* pts, const std::uint32_t* off,
                       const WireStore::Meta& m, std::int64_t w, F&& f) {
  for (std::uint32_t i = off[w] + 1; i < off[w + 1]; ++i) {
    const Point32 a = pts[i - 1];
    const Point32 b = pts[i];
    if (a == b) continue;
    if (a.y == b.y)
      f(m.h_layer, true, static_cast<Coord>(a.y), static_cast<Coord>(std::min(a.x, b.x)),
        static_cast<Coord>(std::max(a.x, b.x)));
    else
      f(m.v_layer, false, static_cast<Coord>(a.x), static_cast<Coord>(std::min(a.y, b.y)),
        static_cast<Coord>(std::max(a.y, b.y)));
  }
}

bool span_less(const LayerSegment& a, const LayerSegment& b) {
  if (a.span.lo != b.span.lo) return a.span.lo < b.span.lo;
  if (a.span.hi != b.span.hi) return a.span.hi < b.span.hi;
  return a.wire < b.wire;
}

}  // namespace

SegmentIndex::SegmentIndex(const Layout& lay) {
  const WireStore& ws = lay.wires();
  const Point32* pts = ws.raw_points();
  const std::uint32_t* off = ws.raw_offsets();
  const WireStore::Meta* meta = ws.raw_meta();
  const std::int64_t W = ws.size();
  if (W == 0) return;

  // Layer range (over wire metadata; buckets for layers that carry no
  // segments simply stay empty).
  const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
  {
    std::vector<std::pair<std::int16_t, std::int16_t>> partial(
        static_cast<std::size_t>(chunks), {std::numeric_limits<std::int16_t>::max(),
                                           std::numeric_limits<std::int16_t>::min()});
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      auto& [mn, mx] = partial[static_cast<std::size_t>(chunk)];
      for (std::int64_t i = lo; i < hi; ++i) {
        mn = std::min({mn, meta[i].h_layer, meta[i].v_layer});
        mx = std::max({mx, meta[i].h_layer, meta[i].v_layer});
      }
    });
    min_layer_ = std::numeric_limits<std::int16_t>::max();
    max_layer_ = std::numeric_limits<std::int16_t>::min();
    for (const auto& [mn, mx] : partial) {
      min_layer_ = std::min(min_layer_, mn);
      max_layer_ = std::max(max_layer_, mx);
    }
  }
  const std::int64_t B = (static_cast<std::int64_t>(max_layer_) - min_layer_ + 1) * 2;
  const auto bucket_of = [&](std::int16_t layer, bool horizontal) {
    return (static_cast<std::int64_t>(layer) - min_layer_) * 2 + (horizontal ? 1 : 0);
  };

  // Pass 1: per-chunk, per-bucket segment counts.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(chunks * B), 0);
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::int64_t* c = counts.data() + chunk * B;
    for (std::int64_t w = lo; w < hi; ++w)
      for_wire_segments(pts, off, meta[w], w,
                        [&](std::int16_t layer, bool horizontal, Coord, Coord, Coord) {
                          ++c[bucket_of(layer, horizontal)];
                        });
  });

  // Serial prefix sum in (bucket, chunk) order: bucket-major placement that
  // preserves wire order within a bucket and is thread-count independent.
  buckets_.resize(static_cast<std::size_t>(B));
  std::vector<std::int64_t> cursor(static_cast<std::size_t>(chunks * B), 0);
  std::int64_t run = 0;
  for (std::int64_t b = 0; b < B; ++b) {
    buckets_[static_cast<std::size_t>(b)].begin = run;
    for (std::int64_t c = 0; c < chunks; ++c) {
      cursor[static_cast<std::size_t>(c * B + b)] = run;
      run += counts[static_cast<std::size_t>(c * B + b)];
    }
    buckets_[static_cast<std::size_t>(b)].end = run;
  }

  // Pass 2: place each segment into its bucket slice.
  segs_.resize(static_cast<std::size_t>(run));
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::int64_t* cur = cursor.data() + chunk * B;
    for (std::int64_t w = lo; w < hi; ++w)
      for_wire_segments(pts, off, meta[w], w,
                        [&](std::int16_t layer, bool horizontal, Coord line, Coord slo,
                            Coord shi) {
                          segs_[static_cast<std::size_t>(
                              cur[bucket_of(layer, horizontal)]++)] =
                              {layer, horizontal, line, {slo, shi}, w};
                        });
  });

  // Pass 3: order each bucket by (line, span.lo, span.hi, wire).
  const Rect& bb = lay.bounding_box();
  std::vector<LayerSegment> scratch;
  for (std::int64_t b = 0; b < B; ++b) {
    Bucket& bk = buckets_[static_cast<std::size_t>(b)];
    const std::int64_t count = bk.end - bk.begin;
    if (count == 0) continue;
    const bool horizontal = (b % 2) == 1;
    const Coord base = horizontal ? bb.y0 : bb.x0;
    const std::int64_t nlines = horizontal ? bb.height() : bb.width();
    if (nlines > 4 * count + 1024) {
      // Sparse coordinate range: a comparison sort beats the histogram.
      std::sort(segs_.begin() + static_cast<std::ptrdiff_t>(bk.begin),
                segs_.begin() + static_cast<std::ptrdiff_t>(bk.end),
                [](const LayerSegment& a, const LayerSegment& c) {
                  if (a.line != c.line) return a.line < c.line;
                  return span_less(a, c);
                });
      continue;
    }
    // Counting sort by line.  Every segment lies inside the bounding box,
    // so line - base indexes the histogram directly.
    bk.base = base;
    bk.line_start.assign(static_cast<std::size_t>(nlines) + 1, 0);
    for (std::int64_t i = bk.begin; i < bk.end; ++i) {
      const std::int64_t l = segs_[static_cast<std::size_t>(i)].line - base;
      STARLAY_REQUIRE(l >= 0 && l < nlines, "SegmentIndex: segment outside bounding box");
      ++bk.line_start[static_cast<std::size_t>(l) + 1];
    }
    for (std::size_t l = 1; l < bk.line_start.size(); ++l)
      bk.line_start[l] += bk.line_start[l - 1];
    for (auto& s : bk.line_start) s += bk.begin;  // absolute offsets into segs_
    scratch.resize(static_cast<std::size_t>(count));
    {
      std::vector<std::int64_t> cur(bk.line_start.begin(), bk.line_start.end() - 1);
      for (std::int64_t i = bk.begin; i < bk.end; ++i) {
        const LayerSegment& s = segs_[static_cast<std::size_t>(i)];
        scratch[static_cast<std::size_t>(cur[static_cast<std::size_t>(s.line - base)]++ -
                                         bk.begin)] = s;
      }
    }
    std::copy(scratch.begin(), scratch.begin() + static_cast<std::ptrdiff_t>(count),
              segs_.begin() + static_cast<std::ptrdiff_t>(bk.begin));
    // Per-line sorts touch disjoint ranges: deterministic under any thread
    // count.
    support::parallel_for(0, nlines, kLineGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t l = lo; l < hi; ++l) {
        const std::int64_t s = bk.line_start[static_cast<std::size_t>(l)];
        const std::int64_t e = bk.line_start[static_cast<std::size_t>(l) + 1];
        if (e - s > 1)
          std::sort(segs_.begin() + static_cast<std::ptrdiff_t>(s),
                    segs_.begin() + static_cast<std::ptrdiff_t>(e), span_less);
      }
    });
  }
}

std::pair<const LayerSegment*, const LayerSegment*> SegmentIndex::line_range(
    std::int16_t layer, bool horizontal, Coord line) const {
  static constexpr std::pair<const LayerSegment*, const LayerSegment*> kEmpty{nullptr,
                                                                              nullptr};
  if (layer < min_layer_ || layer > max_layer_) return kEmpty;
  const Bucket& bk = buckets_[static_cast<std::size_t>(
      (static_cast<std::int64_t>(layer) - min_layer_) * 2 + (horizontal ? 1 : 0))];
  if (bk.begin == bk.end) return kEmpty;
  if (!bk.line_start.empty()) {
    const std::int64_t l = line - bk.base;
    if (l < 0 || l + 1 >= static_cast<std::int64_t>(bk.line_start.size())) return kEmpty;
    return {segs_.data() + bk.line_start[static_cast<std::size_t>(l)],
            segs_.data() + bk.line_start[static_cast<std::size_t>(l) + 1]};
  }
  // Sparse bucket: binary search the line's range.
  const LayerSegment* first = segs_.data() + bk.begin;
  const LayerSegment* last = segs_.data() + bk.end;
  const LayerSegment* lo = std::lower_bound(
      first, last, line, [](const LayerSegment& s, Coord ln) { return s.line < ln; });
  const LayerSegment* hi = std::upper_bound(
      lo, last, line, [](Coord ln, const LayerSegment& s) { return ln < s.line; });
  return {lo, hi};
}

}  // namespace starlay::layout
