#include "starlay/layout/validate.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "starlay/layout/segment_index.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kWireGrain = 4096;

std::string pt(Point p) {
  std::ostringstream os;
  os << "(" << p.x << "," << p.y << ")";
  return os.str();
}

/// Node rectangles grouped by their y-interval for fast "which rects does
/// this segment touch" queries; grid layouts have one group per node row.
/// Groups are expected to be y-disjoint (nodes in distinct row bands); the
/// index stays correct otherwise but degrades to scanning.
class RectIndex {
 public:
  explicit RectIndex(const std::vector<Rect>& rects) {
    // Sort-then-group over one flat vector: one allocation and a single
    // sort instead of a node-count's worth of std::map rebalancing.
    entries_.reserve(rects.size());
    for (std::size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].empty()) continue;
      entries_.push_back({rects[i].y0, rects[i].y1, rects[i].x0, rects[i].x1,
                          static_cast<std::int32_t>(i)});
    }
    std::sort(entries_.begin(), entries_.end());
    max_band_height_ = 0;
    for (std::size_t i = 0; i < entries_.size();) {
      std::size_t j = i;
      while (j < entries_.size() && entries_[j].y0 == entries_[i].y0 &&
             entries_[j].y1 == entries_[i].y1)
        ++j;
      groups_.push_back({entries_[i].y0, entries_[i].y1, i, j});
      max_band_height_ = std::max(max_band_height_, entries_[i].y1 - entries_[i].y0 + 1);
      i = j;
    }
    // groups_ is sorted by y0 (sort order).
  }

  /// Invokes \p f(node) for every rect whose closed area intersects the
  /// closed segment (horizontal ? [lo,hi] x {line} : {line} x [lo,hi]).
  template <typename F>
  void for_touching(bool horizontal, Coord line, Coord lo, Coord hi, F&& f) const {
    const Coord ylo = horizontal ? line : lo;
    const Coord yhi = horizontal ? line : hi;
    const Coord xlo = horizontal ? lo : line;
    const Coord xhi = horizontal ? hi : line;
    // Any group intersecting [ylo, yhi] has y0 >= ylo - (max height - 1).
    auto git = std::lower_bound(groups_.begin(), groups_.end(),
                                ylo - (max_band_height_ - 1),
                                [](const Group& g, Coord y) { return g.y0 < y; });
    for (; git != groups_.end() && git->y0 <= yhi; ++git) {
      if (git->y1 < ylo) continue;
      const auto first = entries_.begin() + static_cast<std::ptrdiff_t>(git->begin);
      const auto last = entries_.begin() + static_cast<std::ptrdiff_t>(git->end);
      auto it = std::lower_bound(first, last, xlo,
                                 [](const Entry& e, Coord x) { return e.x1 < x; });
      // Entries are sorted by (x0, x1); x1 is monotone in x0 for
      // disjoint same-row rects, so linear scan from `it` is exact.
      for (; it != last && it->x0 <= xhi; ++it) f(it->node);
    }
  }

 private:
  struct Entry {
    Coord y0, y1, x0, x1;
    std::int32_t node;
    bool operator<(const Entry& o) const {
      if (y0 != o.y0) return y0 < o.y0;
      if (y1 != o.y1) return y1 < o.y1;
      if (x0 != o.x0) return x0 < o.x0;
      return x1 < o.x1;
    }
  };
  struct Group {
    Coord y0, y1;
    std::size_t begin, end;  ///< half-open range into entries_
  };
  std::vector<Entry> entries_;
  std::vector<Group> groups_;
  Coord max_band_height_ = 0;
};

bool on_boundary(const Rect& r, Point p) { return r.contains(p) && !r.strictly_contains(p); }

/// Per-chunk error buffer for parallel validation passes.  Each chunk
/// records its first max_errors messages plus the total count; buffers are
/// merged into the report in chunk order, which reproduces the serial scan
/// order exactly (chunk geometry is thread-count independent).
struct ChunkErrors {
  std::vector<std::string> msgs;
  std::int64_t total = 0;
};

}  // namespace

ValidationReport validate_layout(const topology::Graph& g, const Layout& lay,
                                 const ValidationOptions& opt) {
  ValidationReport rep;
  const auto fail = [&](const std::string& m) { rep.fail(m, opt.max_errors); };

  // Runs body(i, emit) for i in [0, count) on the thread pool, collecting
  // emitted errors deterministically (see ChunkErrors).  Negative counts
  // (e.g. `size() - 1` on an empty collection) clamp to an empty pass.
  const auto parallel_check = [&](std::int64_t count, const auto& body) {
    count = std::max<std::int64_t>(0, count);
    const std::int64_t chunks = support::num_chunks(0, count, kWireGrain);
    std::vector<ChunkErrors> errs(static_cast<std::size_t>(chunks));
    support::parallel_for(0, count, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      ChunkErrors& local = errs[static_cast<std::size_t>(chunk)];
      const auto emit = [&](std::string m) {
        ++local.total;
        if (static_cast<int>(local.msgs.size()) < opt.max_errors)
          local.msgs.push_back(std::move(m));
      };
      for (std::int64_t i = lo; i < hi; ++i) body(i, emit);
    });
    for (ChunkErrors& ce : errs) {
      for (std::string& m : ce.msgs) rep.fail(std::move(m), opt.max_errors);
      if (ce.total > 0) rep.ok = false;  // capped chunks still flip the verdict
    }
  };

  // --- wire <-> edge bijection ------------------------------------------
  if (lay.num_wires() != g.num_edges())
    fail("wire count " + std::to_string(lay.num_wires()) + " != edge count " +
         std::to_string(g.num_edges()));
  {
    const WireStore::Meta* meta = lay.wires().raw_meta();
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.num_edges()), 0);
    for (std::int64_t wi = 0; wi < lay.num_wires(); ++wi) {
      const std::int64_t edge = meta[wi].edge;
      if (edge < 0 || edge >= g.num_edges()) {
        fail("wire references invalid edge " + std::to_string(edge));
        continue;
      }
      if (seen[static_cast<std::size_t>(edge)]++)
        fail("edge " + std::to_string(edge) + " has multiple wires");
    }
  }

  // --- node sizes ---------------------------------------------------------
  parallel_check(lay.num_nodes(), [&](std::int64_t vi, const auto& emit) {
    const auto v = static_cast<std::int32_t>(vi);
    const Rect& r = lay.node_rect(v);
    if (r.empty()) {
      emit("node " + std::to_string(v) + " has no rectangle");
      return;
    }
    if (opt.thompson_node_size) {
      const Coord want = std::max<Coord>(1, g.degree(v));
      if (r.width() != want || r.height() != want)
        emit("node " + std::to_string(v) + " is " + std::to_string(r.width()) + "x" +
             std::to_string(r.height()) + ", Thompson model wants side " +
             std::to_string(want));
    }
    if (opt.min_node_side > 0 &&
        (r.width() < opt.min_node_side || r.height() < opt.min_node_side))
      emit("node " + std::to_string(v) + " smaller than extended-grid minimum");
    if (opt.max_node_side > 0 &&
        (r.width() > opt.max_node_side || r.height() > opt.max_node_side))
      emit("node " + std::to_string(v) + " larger than extended-grid maximum");
  });

  // --- per-wire path rules --------------------------------------------------
  parallel_check(lay.num_wires(), [&](std::int64_t wi, const auto& emit) {
    const WireRef w = lay.wires()[wi];
    const std::string tag = "wire " + std::to_string(wi);
    if (w.npts() < 2) {
      emit(tag + ": fewer than 2 points");
      return;
    }
    if (w.h_layer() < 1 || w.h_layer() % 2 != 1) emit(tag + ": h_layer must be odd >= 1");
    if (w.v_layer() < 2 || w.v_layer() % 2 != 0) emit(tag + ": v_layer must be even >= 2");
    if (std::abs(w.h_layer() - w.v_layer()) != 1) emit(tag + ": layers not adjacent");
    for (int i = 1; i < w.npts(); ++i) {
      const Point a = w.pt(i - 1), b = w.pt(i);
      const bool dx = a.x != b.x, dy = a.y != b.y;
      if (dx == dy) {  // both (diagonal) or neither (repeated point)
        emit(tag + ": segment " + pt(a) + "->" + pt(b) + " not a proper orthogonal step");
        break;
      }
      if (i >= 2) {
        const Point z = w.pt(i - 2);
        const bool prev_horizontal = z.y == a.y;
        if (prev_horizontal == (a.y == b.y)) {
          emit(tag + ": consecutive collinear segments (merge them)");
          break;
        }
      }
    }
    // Endpoint attachment.
    if (w.edge() >= 0 && w.edge() < g.num_edges()) {
      const auto& e = g.edge(w.edge());
      const Rect& ru = lay.node_rect(e.u);
      const Rect& rv = lay.node_rect(e.v);
      const Point a = w.front(), b = w.back();
      const bool ok_uv = on_boundary(ru, a) && on_boundary(rv, b);
      const bool ok_vu = on_boundary(rv, a) && on_boundary(ru, b);
      if (!(ok_uv || ok_vu))
        emit(tag + ": endpoints " + pt(a) + "," + pt(b) + " not on its nodes' boundaries");
    }
  });

  // --- track exclusivity ------------------------------------------------
  // Segments arrive bucketed per (layer, orientation) and sorted by
  // (line, span.lo), so a single adjacent-pair scan finds every overlap.
  const SegmentIndex sidx(lay);
  const std::vector<LayerSegment>& segs = sidx.segments();
  rep.num_segments = sidx.size();
  rep.num_layers = lay.num_layers();
  parallel_check(sidx.size() - 1, [&](std::int64_t i, const auto& emit) {
    const LayerSegment& a = segs[static_cast<std::size_t>(i)];
    const LayerSegment& b = segs[static_cast<std::size_t>(i) + 1];
    if (a.layer == b.layer && a.horizontal == b.horizontal && a.line == b.line &&
        b.span.lo <= a.span.hi)
      emit("overlap on layer " + std::to_string(a.layer) +
           (a.horizontal ? " y=" : " x=") + std::to_string(a.line) + ": wires " +
           std::to_string(a.wire) + " and " + std::to_string(b.wire));
  });

  // --- via audit ----------------------------------------------------------
  // Bend points with their z-ranges; conflicts between vias, and between a
  // via and a segment crossing a spanned layer at that exact point.
  struct Via {
    Point p;
    std::int16_t zlo, zhi;
    std::int64_t wire;
  };
  std::vector<Via> vias;
  {
    // Two-phase parallel collection into wire-major order.
    const Point32* pts = lay.wires().raw_points();
    const std::uint32_t* off = lay.wires().raw_offsets();
    const WireStore::Meta* meta = lay.wires().raw_meta();
    const std::int64_t W = lay.num_wires();
    const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
    std::vector<std::int64_t> start(static_cast<std::size_t>(chunks) + 1, 0);
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      std::int64_t n = 0;
      for (std::int64_t w = lo; w < hi; ++w) {
        const std::int64_t npts = static_cast<std::int64_t>(off[w + 1]) - off[w];
        n += std::max<std::int64_t>(0, npts - 2);
      }
      start[static_cast<std::size_t>(chunk) + 1] = n;
    });
    for (std::size_t c = 1; c < start.size(); ++c) start[c] += start[c - 1];
    vias.resize(static_cast<std::size_t>(start.back()));
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      std::int64_t cur = start[static_cast<std::size_t>(chunk)];
      for (std::int64_t w = lo; w < hi; ++w) {
        const std::int16_t zlo = std::min(meta[w].h_layer, meta[w].v_layer);
        const std::int16_t zhi = std::max(meta[w].h_layer, meta[w].v_layer);
        for (std::uint32_t i = off[w] + 1; i + 1 < off[w + 1]; ++i)
          vias[static_cast<std::size_t>(cur++)] = {
              {pts[i].x, pts[i].y}, zlo, zhi, w};
      }
    });
  }
  {
    // Order by (x, y, zlo, zhi, wire) so same-point vias are adjacent:
    // counting sort by x (vias lie inside the bounding box), then sort each
    // x-column — deterministic for every thread count.
    const auto rest_less = [](const Via& a, const Via& b) {
      if (a.p.y != b.p.y) return a.p.y < b.p.y;
      if (a.zlo != b.zlo) return a.zlo < b.zlo;
      if (a.zhi != b.zhi) return a.zhi < b.zhi;
      return a.wire < b.wire;
    };
    const Rect& bb = lay.bounding_box();
    const std::int64_t n = static_cast<std::int64_t>(vias.size());
    if (n > 0 && bb.width() <= 4 * n + 1024) {
      const Coord base = bb.x0;
      const std::int64_t ncols = bb.width();
      std::vector<std::int64_t> col_start(static_cast<std::size_t>(ncols) + 1, 0);
      for (const Via& v : vias) {
        const std::int64_t c = v.p.x - base;
        STARLAY_REQUIRE(c >= 0 && c < ncols, "validate: via outside bounding box");
        ++col_start[static_cast<std::size_t>(c) + 1];
      }
      for (std::size_t c = 1; c < col_start.size(); ++c) col_start[c] += col_start[c - 1];
      std::vector<Via> sorted(vias.size());
      {
        std::vector<std::int64_t> cur(col_start.begin(), col_start.end() - 1);
        for (const Via& v : vias)
          sorted[static_cast<std::size_t>(cur[static_cast<std::size_t>(v.p.x - base)]++)] =
              v;
      }
      vias.swap(sorted);
      support::parallel_for(0, ncols, 1024,
                            [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        for (std::int64_t c = lo; c < hi; ++c) {
          const std::int64_t s = col_start[static_cast<std::size_t>(c)];
          const std::int64_t e = col_start[static_cast<std::size_t>(c) + 1];
          if (e - s > 1)
            std::sort(vias.begin() + static_cast<std::ptrdiff_t>(s),
                      vias.begin() + static_cast<std::ptrdiff_t>(e), rest_less);
        }
      });
    } else {
      std::sort(vias.begin(), vias.end(), [&](const Via& a, const Via& b) {
        if (a.p.x != b.p.x) return a.p.x < b.p.x;
        return rest_less(a, b);
      });
    }
  }
  parallel_check(static_cast<std::int64_t>(vias.size()) - 1,
                 [&](std::int64_t i, const auto& emit) {
    const Via& a = vias[static_cast<std::size_t>(i)];
    const Via& b = vias[static_cast<std::size_t>(i) + 1];
    if (a.p == b.p && a.wire != b.wire && a.zlo <= b.zhi && b.zlo <= a.zhi)
      emit("via conflict at " + pt(a.p) + ": wires " + std::to_string(a.wire) + " and " +
           std::to_string(b.wire));
  });
  {
    // Segment passing through a via point on a spanned layer.  The index
    // hands back exactly the segments on (layer, line); segments on a line
    // are disjoint (or already reported), so at most a couple of
    // candidates around `pos` need checking.
    auto covering = [&](std::int16_t layer, bool horizontal, Coord line,
                        Coord pos, std::int64_t self) -> std::int64_t {
      const auto [first, last] = sidx.line_range(layer, horizontal, line);
      const LayerSegment* it = std::upper_bound(
          first, last, pos,
          [](Coord p, const LayerSegment& s) { return p < s.span.lo; });
      for (int back = 0; back < 3 && it != first; ++back) {
        --it;
        if (it->span.lo <= pos && pos <= it->span.hi && it->wire != self) return it->wire;
      }
      return -1;
    };
    parallel_check(static_cast<std::int64_t>(vias.size()),
                   [&](std::int64_t vi, const auto& emit) {
      const Via& v = vias[static_cast<std::size_t>(vi)];
      for (std::int16_t z = v.zlo; z <= v.zhi; ++z) {
        const bool horizontal = z % 2 == 1;
        const Coord line = horizontal ? v.p.y : v.p.x;
        const Coord pos = horizontal ? v.p.x : v.p.y;
        const std::int64_t other = covering(z, horizontal, line, pos, v.wire);
        if (other >= 0)
          emit("via of wire " + std::to_string(v.wire) + " at " + pt(v.p) +
               " pierced by wire " + std::to_string(other) + " on layer " +
               std::to_string(z));
      }
    });
  }

  // --- node clearance -------------------------------------------------------
  {
    const RectIndex index(lay.node_rects());
    parallel_check(lay.num_wires(), [&](std::int64_t wi, const auto& emit) {
      const WireRef w = lay.wires()[wi];
      std::int32_t nu = -1, nv = -1;
      if (w.edge() >= 0 && w.edge() < g.num_edges()) {
        nu = g.edge(w.edge()).u;
        nv = g.edge(w.edge()).v;
      }
      for (int i = 1; i < w.npts(); ++i) {
        const Point a = w.pt(i - 1), b = w.pt(i);
        const bool horizontal = a.y == b.y;
        const Coord line = horizontal ? a.y : a.x;
        const Coord lo = horizontal ? std::min(a.x, b.x) : std::min(a.y, b.y);
        const Coord hi = horizontal ? std::max(a.x, b.x) : std::max(a.y, b.y);
        index.for_touching(horizontal, line, lo, hi, [&](std::int32_t node) {
          if (node != nu && node != nv) {
            emit("wire " + std::to_string(wi) + " touches foreign node " +
                 std::to_string(node));
            return;
          }
          // Own node: the intersection must be a single boundary point and
          // must be this wire's endpoint at that node.
          const Rect& r = lay.node_rect(node);
          const Coord cl = std::max(lo, horizontal ? r.x0 : r.y0);
          const Coord ch = std::min(hi, horizontal ? r.x1 : r.y1);
          const bool line_inside =
              horizontal ? (line >= r.y0 && line <= r.y1) : (line >= r.x0 && line <= r.x1);
          if (!line_inside || cl > ch) return;  // no real intersection
          if (cl != ch) {
            emit("wire " + std::to_string(wi) + " runs along/through its node " +
                 std::to_string(node));
            return;
          }
          const Point touch = horizontal ? Point{cl, line} : Point{line, cl};
          if (!(touch == w.front() || touch == w.back()))
            emit("wire " + std::to_string(wi) + " passes over its own node " +
                 std::to_string(node) + " at non-endpoint " + pt(touch));
        });
      }
    });
  }

  return rep;
}

}  // namespace starlay::layout
