#include "starlay/layout/validate.hpp"

#include <algorithm>
#include <cstdlib>

#include "starlay/layout/rect_index.hpp"
#include "starlay/layout/segment_index.hpp"
#include "starlay/layout/wire_rules.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kWireGrain = 4096;

/// Per-chunk error buffer for parallel validation passes.  Each chunk
/// records its first max_errors messages plus the total count; buffers are
/// merged into the report in chunk order, which reproduces the serial scan
/// order exactly (chunk geometry is thread-count independent).
struct ChunkErrors {
  std::vector<std::string> msgs;
  std::int64_t total = 0;
};

}  // namespace

ValidationReport validate_layout(const topology::Graph& g, const Layout& lay,
                                 const ValidationOptions& opt) {
  support::telemetry::ScopedPhase phase("validation");
  support::telemetry::count("validate.wires", lay.num_wires());
  ValidationReport rep;
  const auto fail = [&](const std::string& m) { rep.fail(m, opt.max_errors); };

  // Runs body(i, emit) for i in [0, count) on the thread pool, collecting
  // emitted errors deterministically (see ChunkErrors).  Negative counts
  // (e.g. `size() - 1` on an empty collection) clamp to an empty pass.
  const auto parallel_check = [&](std::int64_t count, const auto& body) {
    count = std::max<std::int64_t>(0, count);
    const std::int64_t chunks = support::num_chunks(0, count, kWireGrain);
    std::vector<ChunkErrors> errs(static_cast<std::size_t>(chunks));
    support::parallel_for(0, count, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      ChunkErrors& local = errs[static_cast<std::size_t>(chunk)];
      const auto emit = [&](std::string m) {
        ++local.total;
        if (static_cast<int>(local.msgs.size()) < opt.max_errors)
          local.msgs.push_back(std::move(m));
      };
      for (std::int64_t i = lo; i < hi; ++i) body(i, emit);
    });
    for (ChunkErrors& ce : errs) {
      const auto recorded = static_cast<std::int64_t>(ce.msgs.size());
      for (std::string& m : ce.msgs) rep.fail(std::move(m), opt.max_errors);
      // Capped chunks still flip the verdict and count toward the total.
      rep.num_errors_total += ce.total - recorded;
      if (ce.total > 0) rep.ok = false;
    }
  };

  // --- wire <-> edge bijection ------------------------------------------
  if (lay.num_wires() != g.num_edges())
    fail("wire count " + std::to_string(lay.num_wires()) + " != edge count " +
         std::to_string(g.num_edges()));
  {
    const WireStore::Meta* meta = lay.wires().raw_meta();
    std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.num_edges()), 0);
    for (std::int64_t wi = 0; wi < lay.num_wires(); ++wi) {
      const std::int64_t edge = meta[wi].edge;
      if (edge < 0 || edge >= g.num_edges()) {
        fail("wire references invalid edge " + std::to_string(edge));
        continue;
      }
      if (seen[static_cast<std::size_t>(edge)]++)
        fail("edge " + std::to_string(edge) + " has multiple wires");
    }
  }

  // --- node sizes ---------------------------------------------------------
  parallel_check(lay.num_nodes(), [&](std::int64_t vi, const auto& emit) {
    const auto v = static_cast<std::int32_t>(vi);
    const Rect& r = lay.node_rect(v);
    const std::int32_t deg = !r.empty() && opt.thompson_node_size ? g.degree(v) : 0;
    check_node_rect(v, r, deg, opt.min_node_side, opt.max_node_side,
                    opt.thompson_node_size, emit);
  });

  // --- per-wire path rules --------------------------------------------------
  parallel_check(lay.num_wires(), [&](std::int64_t wi, const auto& emit) {
    check_wire_path(lay.wires()[wi], wi, g, lay.node_rects(), emit);
  });

  // --- track exclusivity ------------------------------------------------
  // Segments arrive bucketed per (layer, orientation) and sorted by
  // (line, span.lo), so a single adjacent-pair scan finds every overlap.
  const SegmentIndex sidx(lay);
  const std::vector<LayerSegment>& segs = sidx.segments();
  rep.num_segments = sidx.size();
  rep.num_layers = lay.num_layers();
  parallel_check(sidx.size() - 1, [&](std::int64_t i, const auto& emit) {
    const LayerSegment& a = segs[static_cast<std::size_t>(i)];
    const LayerSegment& b = segs[static_cast<std::size_t>(i) + 1];
    if (a.layer == b.layer && a.horizontal == b.horizontal && a.line == b.line &&
        b.span.lo <= a.span.hi)
      emit("overlap on layer " + std::to_string(a.layer) +
           (a.horizontal ? " y=" : " x=") + std::to_string(a.line) + ": wires " +
           std::to_string(a.wire) + " and " + std::to_string(b.wire));
  });

  // --- via audit ----------------------------------------------------------
  // Bend points with their z-ranges; conflicts between vias, and between a
  // via and a segment crossing a spanned layer at that exact point.
  struct Via {
    Point p;
    std::int16_t zlo, zhi;
    std::int64_t wire;
  };
  std::vector<Via> vias;
  {
    // Two-phase parallel collection into wire-major order.
    const Point32* pts = lay.wires().raw_points();
    const std::uint32_t* off = lay.wires().raw_offsets();
    const WireStore::Meta* meta = lay.wires().raw_meta();
    const std::int64_t W = lay.num_wires();
    const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
    std::vector<std::int64_t> start(static_cast<std::size_t>(chunks) + 1, 0);
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      std::int64_t n = 0;
      for (std::int64_t w = lo; w < hi; ++w) {
        const std::int64_t npts = static_cast<std::int64_t>(off[w + 1]) - off[w];
        n += std::max<std::int64_t>(0, npts - 2);
      }
      start[static_cast<std::size_t>(chunk) + 1] = n;
    });
    for (std::size_t c = 1; c < start.size(); ++c) start[c] += start[c - 1];
    vias.resize(static_cast<std::size_t>(start.back()));
    support::parallel_for(0, W, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      std::int64_t cur = start[static_cast<std::size_t>(chunk)];
      for (std::int64_t w = lo; w < hi; ++w) {
        const std::int16_t zlo = std::min(meta[w].h_layer, meta[w].v_layer);
        const std::int16_t zhi = std::max(meta[w].h_layer, meta[w].v_layer);
        for (std::uint32_t i = off[w] + 1; i + 1 < off[w + 1]; ++i)
          vias[static_cast<std::size_t>(cur++)] = {
              {pts[i].x, pts[i].y}, zlo, zhi, w};
      }
    });
  }
  {
    // Order by (x, y, zlo, zhi, wire) so same-point vias are adjacent:
    // counting sort by x (vias lie inside the bounding box), then sort each
    // x-column — deterministic for every thread count.
    const auto rest_less = [](const Via& a, const Via& b) {
      if (a.p.y != b.p.y) return a.p.y < b.p.y;
      if (a.zlo != b.zlo) return a.zlo < b.zlo;
      if (a.zhi != b.zhi) return a.zhi < b.zhi;
      return a.wire < b.wire;
    };
    const Rect& bb = lay.bounding_box();
    const std::int64_t n = static_cast<std::int64_t>(vias.size());
    if (n > 0 && bb.width() <= 4 * n + 1024) {
      const Coord base = bb.x0;
      const std::int64_t ncols = bb.width();
      std::vector<std::int64_t> col_start(static_cast<std::size_t>(ncols) + 1, 0);
      for (const Via& v : vias) {
        const std::int64_t c = v.p.x - base;
        STARLAY_REQUIRE(c >= 0 && c < ncols, "validate: via outside bounding box");
        ++col_start[static_cast<std::size_t>(c) + 1];
      }
      for (std::size_t c = 1; c < col_start.size(); ++c) col_start[c] += col_start[c - 1];
      std::vector<Via> sorted(vias.size());
      {
        std::vector<std::int64_t> cur(col_start.begin(), col_start.end() - 1);
        for (const Via& v : vias)
          sorted[static_cast<std::size_t>(cur[static_cast<std::size_t>(v.p.x - base)]++)] =
              v;
      }
      vias.swap(sorted);
      support::parallel_for(0, ncols, 1024,
                            [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        for (std::int64_t c = lo; c < hi; ++c) {
          const std::int64_t s = col_start[static_cast<std::size_t>(c)];
          const std::int64_t e = col_start[static_cast<std::size_t>(c) + 1];
          if (e - s > 1)
            std::sort(vias.begin() + static_cast<std::ptrdiff_t>(s),
                      vias.begin() + static_cast<std::ptrdiff_t>(e), rest_less);
        }
      });
    } else {
      std::sort(vias.begin(), vias.end(), [&](const Via& a, const Via& b) {
        if (a.p.x != b.p.x) return a.p.x < b.p.x;
        return rest_less(a, b);
      });
    }
  }
  parallel_check(static_cast<std::int64_t>(vias.size()) - 1,
                 [&](std::int64_t i, const auto& emit) {
    const Via& a = vias[static_cast<std::size_t>(i)];
    const Via& b = vias[static_cast<std::size_t>(i) + 1];
    if (a.p == b.p && a.wire != b.wire && a.zlo <= b.zhi && b.zlo <= a.zhi)
      emit("via conflict at " + format_point(a.p) + ": wires " + std::to_string(a.wire) +
           " and " + std::to_string(b.wire));
  });
  {
    // Segment passing through a via point on a spanned layer.  The index
    // hands back exactly the segments on (layer, line); segments on a line
    // are disjoint (or already reported), so at most a couple of
    // candidates around `pos` need checking.
    auto covering = [&](std::int16_t layer, bool horizontal, Coord line,
                        Coord pos, std::int64_t self) -> std::int64_t {
      const auto [first, last] = sidx.line_range(layer, horizontal, line);
      const LayerSegment* it = std::upper_bound(
          first, last, pos,
          [](Coord p, const LayerSegment& s) { return p < s.span.lo; });
      for (int back = 0; back < 3 && it != first; ++back) {
        --it;
        if (it->span.lo <= pos && pos <= it->span.hi && it->wire != self) return it->wire;
      }
      return -1;
    };
    parallel_check(static_cast<std::int64_t>(vias.size()),
                   [&](std::int64_t vi, const auto& emit) {
      const Via& v = vias[static_cast<std::size_t>(vi)];
      for (std::int16_t z = v.zlo; z <= v.zhi; ++z) {
        const bool horizontal = z % 2 == 1;
        const Coord line = horizontal ? v.p.y : v.p.x;
        const Coord pos = horizontal ? v.p.x : v.p.y;
        const std::int64_t other = covering(z, horizontal, line, pos, v.wire);
        if (other >= 0)
          emit("via of wire " + std::to_string(v.wire) + " at " + format_point(v.p) +
               " pierced by wire " + std::to_string(other) + " on layer " +
               std::to_string(z));
      }
    });
  }

  // --- node clearance -------------------------------------------------------
  {
    const RectIndex index(lay.node_rects());
    parallel_check(lay.num_wires(), [&](std::int64_t wi, const auto& emit) {
      check_wire_clearance(lay.wires()[wi], wi, g, index, lay.node_rects(), emit);
    });
  }

  return rep;
}

}  // namespace starlay::layout
