#include "starlay/layout/validate.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/rect_index.hpp"
#include "starlay/layout/segment_index.hpp"
#include "starlay/layout/wire_rules.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kWireGrain = 4096;
constexpr std::int64_t kTileGrain = 1 << 15;  ///< segments per kernel tile
constexpr std::size_t kScatterBatch = 2048;  ///< records staged per prefetch batch

/// Per-chunk error buffer for parallel validation passes.  Each chunk
/// records its first max_errors messages plus the total count; buffers are
/// merged into the report in chunk order, which reproduces the serial scan
/// order exactly (chunk geometry is thread-count independent).
struct ChunkErrors {
  std::vector<std::string> msgs;
  std::int64_t total = 0;
};

/// Accumulates wall-clock into a ValidatePhases field.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& out) : out_(out), t0_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    out_ += std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_)
                .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& out_;
  std::chrono::steady_clock::time_point t0_;
};

/// Bend points with their z-ranges, packed for the via kernels: 16 bytes,
/// all-int32 coordinates (WireStore guarantees the fit).
struct PackedVia {
  std::int32_t x, y;
  std::int16_t zlo, zhi;
  std::uint32_t wire;
};

/// Sorts a run that the scatter delivered in wire order, which on real
/// layouts is already nearly sorted: insertion sort with a shift budget
/// that bails to std::sort once a run proves adversarial (same scheme as
/// the SegmentIndex per-line sort).
template <typename T, typename Less>
void sort_near_sorted(T* first, T* last, Less less) {
  const std::ptrdiff_t n = last - first;
  if (n <= 1) return;
  std::ptrdiff_t budget = 4 * n + 64;
  for (std::ptrdiff_t i = 1; i < n; ++i) {
    // Roughly half the records arrive already in place; skip the copy and
    // the write-back for those instead of shifting by zero.
    if (!less(first[i], first[i - 1])) continue;
    const T v = first[i];
    std::ptrdiff_t j = i;
    while (j > 0 && less(v, first[j - 1])) {
      first[j] = first[j - 1];
      --j;
      if (--budget < 0) {
        first[j] = v;
        std::sort(first, last, less);
        return;
      }
    }
    first[j] = v;
  }
}

}  // namespace

ValidationReport validate_layout(const topology::Graph& g, const Layout& lay,
                                 const ValidationOptions& opt) {
  support::telemetry::ScopedPhase phase("validation");
  support::telemetry::count("validate.wires", lay.num_wires());
  ValidationReport rep;
  const auto fail = [&](const std::string& m) { rep.fail(m, opt.max_errors); };
  const kernels::KernelTable& K = kernels::active();

  // Runs body(i, emit) for i in [0, count) on the thread pool, collecting
  // emitted errors deterministically (see ChunkErrors).  Negative counts
  // (e.g. `size() - 1` on an empty collection) clamp to an empty pass.
  const auto parallel_check = [&](std::int64_t count, const auto& body) {
    count = std::max<std::int64_t>(0, count);
    const std::int64_t chunks = support::num_chunks(0, count, kWireGrain);
    std::vector<ChunkErrors> errs(static_cast<std::size_t>(chunks));
    support::parallel_for(0, count, kWireGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      ChunkErrors& local = errs[static_cast<std::size_t>(chunk)];
      const auto emit = [&](std::string m) {
        ++local.total;
        if (static_cast<int>(local.msgs.size()) < opt.max_errors)
          local.msgs.push_back(std::move(m));
      };
      for (std::int64_t i = lo; i < hi; ++i) body(i, emit, chunk);
    });
    for (ChunkErrors& ce : errs) {
      const auto recorded = static_cast<std::int64_t>(ce.msgs.size());
      for (std::string& m : ce.msgs) rep.fail(std::move(m), opt.max_errors);
      // Capped chunks still flip the verdict and count toward the total.
      rep.num_errors_total += ce.total - recorded;
      if (ce.total > 0) rep.ok = false;
    }
  };

  // Sums per-tile kernel counts over [0, n_pairs) adjacent-pair indices.
  // Tiles overlap by one element so every pair is counted exactly once;
  // sums are order-independent, hence thread-count independent.
  const auto tiled_count = [&](std::int64_t n_pairs, const auto& body) -> std::int64_t {
    if (n_pairs <= 0) return 0;
    const std::int64_t chunks = support::num_chunks(0, n_pairs, kTileGrain);
    std::vector<std::int64_t> partial(static_cast<std::size_t>(chunks), 0);
    support::parallel_for(0, n_pairs, kTileGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      partial[static_cast<std::size_t>(chunk)] = body(lo, hi);
    });
    std::int64_t total = 0;
    for (const std::int64_t p : partial) total += p;
    return total;
  };

  const auto msg_budget_left = [&] {
    return static_cast<int>(rep.errors.size()) < opt.max_errors;
  };
  // Folds a counted-pass result into the report: the count pass already
  // established the exact total (no strings); materialize() re-scans and
  // appends at most the remaining message budget, and is skipped outright
  // once earlier phases have filled it (max_errors short-circuit: a broken
  // layout pays for at most max_errors message constructions, while
  // num_errors_total stays exact — the counts come from the kernels, never
  // from the materialization walk).
  const auto apply_counted = [&](std::int64_t total, const auto& materialize) {
    if (total <= 0) return;
    if (msg_budget_left()) materialize();
    rep.ok = false;
    rep.num_errors_total += total;
  };

  // Clearance bookkeeping filled during the rules wire sweep (see below):
  // per-chunk allowed-touch counts and the rare degenerate steps, indexed by
  // the same chunk geometry parallel_check uses for the wire passes.
  struct DegenStep {
    Point32 a, front, back;
    std::int32_t nu, nv;
  };
  const std::size_t wire_chunks = static_cast<std::size_t>(
      support::num_chunks(0, std::max<std::int64_t>(0, lay.num_wires()), kWireGrain));
  std::vector<std::int64_t> clearance_allowed(wire_chunks, 0);
  std::vector<std::vector<DegenStep>> degen_steps(wire_chunks);

  {
    const PhaseTimer t(rep.phases.rules_ms);
    support::telemetry::ScopedPhase sub("validate.rules");

    // --- wire <-> edge bijection ----------------------------------------
    if (lay.num_wires() != g.num_edges())
      fail("wire count " + std::to_string(lay.num_wires()) + " != edge count " +
           std::to_string(g.num_edges()));
    {
      const WireStore::Meta* meta = lay.wires().raw_meta();
      std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.num_edges()), 0);
      for (std::int64_t wi = 0; wi < lay.num_wires(); ++wi) {
        const std::int64_t edge = meta[wi].edge;
        if (edge < 0 || edge >= g.num_edges()) {
          fail("wire references invalid edge " + std::to_string(edge));
          continue;
        }
        if (seen[static_cast<std::size_t>(edge)]++)
          fail("edge " + std::to_string(edge) + " has multiple wires");
      }
    }

    // --- node sizes -------------------------------------------------------
    parallel_check(lay.num_nodes(), [&](std::int64_t vi, const auto& emit, std::int64_t) {
      const auto v = static_cast<std::int32_t>(vi);
      const Rect& r = lay.node_rect(v);
      const std::int32_t deg = !r.empty() && opt.thompson_node_size ? g.degree(v) : 0;
      check_node_rect(v, r, deg, opt.min_node_side, opt.max_node_side,
                      opt.thompson_node_size, emit);
    });

    // --- per-wire path rules (+ clearance allowed-touch accounting) -------
    // The clearance pass (below) counts errors as
    // candidates - allowed + degenerate-step errors; `allowed` — own-node
    // touches at a single boundary point that is the wire's endpoint — only
    // needs this wire's nodes and endpoints, all of which check_wire_path
    // just pulled into cache, so it is tallied here instead of re-sweeping
    // every wire in the clearance phase.  Degenerate (repeated-point) steps
    // need the rect index, which does not exist yet; they are rare, so they
    // are queued for the clearance pass.
    {
      const Point32* pts = lay.wires().raw_points();
      const std::uint32_t* off = lay.wires().raw_offsets();
      const WireStore::Meta* meta = lay.wires().raw_meta();
      const std::vector<Rect>& rects = lay.node_rects();
      parallel_check(lay.num_wires(),
                     [&](std::int64_t wi, const auto& emit, std::int64_t chunk) {
        check_wire_path(lay.wires()[wi], wi, g, lay.node_rects(), emit);
        std::int32_t nu = -1, nv = -1;
        const std::int64_t edge = meta[wi].edge;
        if (edge >= 0 && edge < g.num_edges()) {
          nu = g.edge(edge).u;
          nv = g.edge(edge).v;
        }
        const std::uint32_t b = off[wi], e = off[wi + 1];
        const Point32 front = b < e ? pts[b] : Point32{};
        const Point32 back = b < e ? pts[e - 1] : Point32{};
        std::int64_t allowed = 0;
        // Mirrors check_wire_clearance's own-node branch: the touch must be
        // a single boundary point (cl == ch on an inside line) that is the
        // wire's endpoint.  Wider or non-endpoint own touches stay errors
        // and are left to the candidates count.
        const auto own_touch = [&](bool horizontal, std::int32_t line, std::int32_t seg_lo,
                                   std::int32_t seg_hi, std::int32_t node) {
          const Rect& r = rects[static_cast<std::size_t>(node)];
          const Coord cl = std::max<Coord>(seg_lo, horizontal ? r.x0 : r.y0);
          const Coord ch = std::min<Coord>(seg_hi, horizontal ? r.x1 : r.y1);
          const bool line_inside = horizontal ? (line >= r.y0 && line <= r.y1)
                                              : (line >= r.x0 && line <= r.x1);
          if (!line_inside || cl != ch) return;
          const Point32 touch = horizontal ? Point32{static_cast<std::int32_t>(cl), line}
                                           : Point32{line, static_cast<std::int32_t>(cl)};
          if (touch == front || touch == back) ++allowed;
        };
        for (std::uint32_t p = b + 1; p < e; ++p) {
          const Point32 pa = pts[p - 1], pb = pts[p];
          if (pa == pb) {
            degen_steps[static_cast<std::size_t>(chunk)].push_back(
                {pa, front, back, nu, nv});
            continue;
          }
          const bool horizontal = pa.y == pb.y;
          const std::int32_t line = horizontal ? pa.y : pa.x;
          const std::int32_t seg_lo =
              horizontal ? std::min(pa.x, pb.x) : std::min(pa.y, pb.y);
          const std::int32_t seg_hi =
              horizontal ? std::max(pa.x, pb.x) : std::max(pa.y, pb.y);
          if (nu >= 0) own_touch(horizontal, line, seg_lo, seg_hi, nu);
          if (nv >= 0 && nv != nu) own_touch(horizontal, line, seg_lo, seg_hi, nv);
        }
        clearance_allowed[static_cast<std::size_t>(chunk)] += allowed;
      });
    }
  }

  // --- track exclusivity ----------------------------------------------------
  // Segments arrive bucketed per (layer, orientation), sorted by (line,
  // lo), and packed into int32 SoA arrays, so one branchless adjacent-pair
  // kernel sweep per bucket counts every overlap; messages are materialized
  // by a scalar re-scan only over buckets that reported conflicts.
  std::optional<SegmentIndex> sidx_storage;
  {
    const PhaseTimer t(rep.phases.index_ms);
    support::telemetry::ScopedPhase sub("validate.index");
    sidx_storage.emplace(lay);
  }
  const SegmentIndex& sidx = *sidx_storage;
  rep.num_segments = sidx.size();
  rep.num_layers = lay.num_layers();
  rep.total_wire_length = lay.total_wire_length();
  rep.max_wire_length = lay.max_wire_length();
  const std::int32_t* sline = sidx.lines();
  const std::int32_t* slo = sidx.span_lo();
  const std::int32_t* shi = sidx.span_hi();
  const std::uint32_t* swire = sidx.wires();
  std::int64_t overlap_conflicts = 0;
  {
    const PhaseTimer t(rep.phases.overlap_ms);
    support::telemetry::ScopedPhase sub("validate.overlap");
    const std::int64_t B = sidx.num_buckets();
    std::vector<std::int64_t> bucket_conflicts(static_cast<std::size_t>(B), 0);
    std::int64_t total = 0;
    for (std::int64_t b = 0; b < B; ++b) {
      const SegmentIndex::BucketView bv = sidx.bucket(b);
      const std::int64_t n = bv.end - bv.begin;
      const std::int64_t c = tiled_count(n - 1, [&](std::int64_t lo, std::int64_t hi) {
        return K.count_seg_conflicts(sline + bv.begin + lo, slo + bv.begin + lo,
                                     shi + bv.begin + lo, hi - lo + 1);
      });
      bucket_conflicts[static_cast<std::size_t>(b)] = c;
      total += c;
    }
    overlap_conflicts = total;
    apply_counted(total, [&] {
      // Scalar materialization, in canonical order: buckets (and their
      // remainders) are skipped outright once the message cap is hit, so a
      // badly broken layout never pays for strings it will not show.
      for (std::int64_t b = 0; b < B && msg_budget_left(); ++b) {
        if (bucket_conflicts[static_cast<std::size_t>(b)] == 0) continue;
        const SegmentIndex::BucketView bv = sidx.bucket(b);
        for (std::int64_t i = bv.begin; i + 1 < bv.end && msg_budget_left(); ++i) {
          const std::size_t s = static_cast<std::size_t>(i);
          if (sline[s] == sline[s + 1] && slo[s + 1] <= shi[s])
            rep.errors.push_back("overlap on layer " + std::to_string(bv.layer) +
                                 (bv.horizontal ? " y=" : " x=") + std::to_string(sline[s]) +
                                 ": wires " + std::to_string(swire[s]) + " and " +
                                 std::to_string(swire[s + 1]));
        }
      }
    });
  }

  // --- via audit ------------------------------------------------------------
  // Bend points with their z-ranges; conflicts between vias, and between a
  // via and a segment crossing a spanned layer at that exact point.
  // Uninitialized on allocation: the scatter below writes every slot
  // exactly once, and a zero-fill would cost a full memory sweep.
  std::unique_ptr<PackedVia[]> vias_owner;
  PackedVia* vias = nullptr;
  std::int64_t nvias = 0;
  {
    const PhaseTimer t(rep.phases.via_ms);
    support::telemetry::ScopedPhase sub("validate.via");
    // SoA copies for the adjacent-pair kernel (z widened to int32);
    // uninitialized, split from the sorted vias exactly once — fused into
    // the per-column sort when that path runs (the run is still cache-hot
    // there), as one tiled sweep otherwise.
    std::unique_ptr<std::int32_t[]> vx, vy, vzlo, vzhi;
    std::unique_ptr<std::uint32_t[]> vwire;
    bool split_done = false;
    std::int64_t counted_total = 0;
    {
      // Collection fused with the x counting sort: count vias per column
      // straight from the wire points, then scatter each via directly into
      // its column's slice.  Positions are claimed with relaxed fetch_add
      // (plain increments when the 1-thread pool runs chunks inline); the
      // per-column sort below canonicalizes order, and vias tying on
      // (y, zlo, zhi, wire) within a column are byte-identical, so the
      // scatter order never shows in the result.
      const Point32* pts = lay.wires().raw_points();
      const std::uint32_t* off = lay.wires().raw_offsets();
      const WireStore::Meta* meta = lay.wires().raw_meta();
      const std::int64_t W = lay.num_wires();
      const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
      const bool serial = support::ThreadPool::instance().num_threads() == 1;
      for (std::int64_t w = 0; w < W; ++w) {
        const std::int64_t npts = static_cast<std::int64_t>(off[w + 1]) - off[w];
        nvias += std::max<std::int64_t>(0, npts - 2);
      }
      vx = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(nvias));
      vy = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(nvias));
      vzlo = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(nvias));
      vzhi = std::make_unique_for_overwrite<std::int32_t[]>(static_cast<std::size_t>(nvias));
      vwire =
          std::make_unique_for_overwrite<std::uint32_t[]>(static_cast<std::size_t>(nvias));
      const auto split_run = [&](std::int64_t s, std::int64_t e) {
        for (std::int64_t i = s; i < e; ++i) {
          const PackedVia& v = vias[static_cast<std::size_t>(i)];
          vx[static_cast<std::size_t>(i)] = v.x;
          vy[static_cast<std::size_t>(i)] = v.y;
          vzlo[static_cast<std::size_t>(i)] = v.zlo;
          vzhi[static_cast<std::size_t>(i)] = v.zhi;
          vwire[static_cast<std::size_t>(i)] = v.wire;
        }
      };
      // (y, zlo, zhi) folded into one unsigned word whose integer order
      // equals the signed lexicographic order — one compare instead of
      // three data-dependent branches in the per-column insertion sort.
      const auto via_key = [](const PackedVia& v) {
        return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v.y) ^ 0x80000000u)
                << 32) |
               (static_cast<std::uint64_t>(
                    static_cast<std::uint16_t>(static_cast<std::uint16_t>(v.zlo) ^ 0x8000u))
                << 16) |
               static_cast<std::uint16_t>(static_cast<std::uint16_t>(v.zhi) ^ 0x8000u);
      };
      const auto rest_less = [&](const PackedVia& a, const PackedVia& b) {
        const std::uint64_t ka = via_key(a);
        const std::uint64_t kb = via_key(b);
        if (ka != kb) return ka < kb;
        return a.wire < b.wire;
      };
      // Pre-scan + encoded sort, same scheme as the SegmentIndex per-line
      // sort: columns that arrive nearly sorted keep the insertion path,
      // shuffled ones go straight to a plain-integer sort of
      // (via_key, wire) pairs — x is column-constant, so the encode is
      // bijective (no permutation bookkeeping) and ties decode to
      // byte-identical records either way.
      const auto sort_via_run = [&](PackedVia* first, std::ptrdiff_t n) {
        std::ptrdiff_t oop = 0;
        for (std::ptrdiff_t i = 1; i < n; ++i)
          oop += rest_less(first[i], first[i - 1]) ? 1 : 0;
        if (oop == 0) return;
        if (oop <= n / 8) {
          sort_near_sorted(first, first + n, rest_less);
          return;
        }
        __extension__ typedef unsigned __int128 SortWord;
        thread_local std::vector<SortWord> buf;
        buf.resize(static_cast<std::size_t>(n));
        for (std::ptrdiff_t i = 0; i < n; ++i)
          buf[static_cast<std::size_t>(i)] =
              (static_cast<SortWord>(via_key(first[i])) << 64) | first[i].wire;
        std::sort(buf.begin(), buf.end());
        const std::int32_t x = first[0].x;
        for (std::ptrdiff_t i = 0; i < n; ++i) {
          const std::uint64_t k =
              static_cast<std::uint64_t>(buf[static_cast<std::size_t>(i)] >> 64);
          first[i] = {
              x,
              static_cast<std::int32_t>(static_cast<std::uint32_t>(k >> 32) ^
                                        0x80000000u),
              static_cast<std::int16_t>(
                  static_cast<std::uint16_t>(static_cast<std::uint16_t>(k >> 16) ^
                                             0x8000u)),
              static_cast<std::int16_t>(
                  static_cast<std::uint16_t>(static_cast<std::uint16_t>(k) ^ 0x8000u)),
              static_cast<std::uint32_t>(buf[static_cast<std::size_t>(i)])};
        }
      };
      const Rect& bb = lay.bounding_box();
      if (nvias > 0 && bb.width() <= 4 * nvias + 1024) {
        const Coord base = bb.x0;
        const std::int64_t ncols = bb.width();
        std::vector<std::int64_t> col_start(static_cast<std::size_t>(ncols) + 1, 0);
        std::vector<std::uint8_t> bad(static_cast<std::size_t>(chunks), 0);
        support::parallel_for(0, W, kWireGrain,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
          std::vector<std::int64_t*> cells;
          cells.reserve(kScatterBatch);
          const auto flush = [&] {
            const std::size_t nb = cells.size();
            for (std::size_t j = 0; j < nb; ++j) {
              if (j + 16 < nb) __builtin_prefetch(cells[j + 16], 1);
              if (serial)
                ++*cells[j];
              else
                std::atomic_ref<std::int64_t>(*cells[j]).fetch_add(
                    1, std::memory_order_relaxed);
            }
            cells.clear();
          };
          for (std::int64_t w = lo; w < hi; ++w)
            for (std::uint32_t i = off[w] + 1; i + 1 < off[w + 1]; ++i) {
              const std::int64_t c = pts[i].x - base;
              if (c < 0 || c >= ncols) {
                bad[static_cast<std::size_t>(chunk)] = 1;
                continue;
              }
              cells.push_back(col_start.data() + c + 1);
              if (cells.size() == kScatterBatch) flush();
            }
          flush();
        });
        for (const std::uint8_t f : bad)
          STARLAY_REQUIRE(!f, "validate: via outside bounding box");
        for (std::size_t c = 1; c < col_start.size(); ++c) col_start[c] += col_start[c - 1];
        vias_owner = std::make_unique_for_overwrite<PackedVia[]>(
            static_cast<std::size_t>(nvias));
        vias = vias_owner.get();
        std::vector<std::int64_t> cur(col_start.begin(), col_start.end() - 1);
        support::parallel_for(0, W, kWireGrain,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
          std::vector<PackedVia> batch;
          batch.reserve(kScatterBatch);
          const auto flush = [&] {
            const std::size_t nb = batch.size();
            for (std::size_t j = 0; j < nb; ++j)
              __builtin_prefetch(cur.data() + (batch[j].x - base));
            for (std::size_t j = 0; j < nb; ++j) {
              if (j + 12 < nb)
                __builtin_prefetch(
                    vias +
                        std::atomic_ref<std::int64_t>(
                            cur[static_cast<std::size_t>(batch[j + 12].x - base)])
                            .load(std::memory_order_relaxed),
                    1);
              std::int64_t* c = cur.data() + (batch[j].x - base);
              const std::int64_t pos =
                  serial ? (*c)++
                         : std::atomic_ref<std::int64_t>(*c).fetch_add(
                               1, std::memory_order_relaxed);
              vias[static_cast<std::size_t>(pos)] = batch[j];
            }
            batch.clear();
          };
          for (std::int64_t w = lo; w < hi; ++w) {
            const std::int16_t zlo = std::min(meta[w].h_layer, meta[w].v_layer);
            const std::int16_t zhi = std::max(meta[w].h_layer, meta[w].v_layer);
            for (std::uint32_t i = off[w] + 1; i + 1 < off[w + 1]; ++i) {
              batch.push_back({pts[i].x, pts[i].y, zlo, zhi, static_cast<std::uint32_t>(w)});
              if (batch.size() == kScatterBatch) flush();
            }
          }
          flush();
        });
        // Sort, split, and count each column in one pass while its records
        // are cache-hot.  Adjacent pairs spanning two columns differ in x,
        // so they can never conflict and per-column kernel counts sum to
        // exactly the global adjacent-pair count.
        const std::int64_t col_chunks = support::num_chunks(0, ncols, 1024);
        std::vector<std::int64_t> col_conflicts(static_cast<std::size_t>(col_chunks), 0);
        support::parallel_for(0, ncols, 1024,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
          std::int64_t n = 0;
          for (std::int64_t c = lo; c < hi; ++c) {
            const std::int64_t s = col_start[static_cast<std::size_t>(c)];
            const std::int64_t e = col_start[static_cast<std::size_t>(c) + 1];
            if (e - s > 1) sort_via_run(vias + s, e - s);
            split_run(s, e);
            if (e - s > 1)
              n += K.count_via_conflicts(vx.get() + s, vy.get() + s, vzlo.get() + s,
                                         vzhi.get() + s, vwire.get() + s, e - s);
          }
          col_conflicts[static_cast<std::size_t>(chunk)] = n;
        });
        for (const std::int64_t n : col_conflicts) counted_total += n;
        split_done = true;
      } else {
        // Degenerate coordinate range: wire-major collection (per-chunk
        // prefix keeps it deterministic), then one comparison sort.
        std::vector<std::int64_t> start(static_cast<std::size_t>(chunks) + 1, 0);
        support::parallel_for(0, W, kWireGrain,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
          std::int64_t n = 0;
          for (std::int64_t w = lo; w < hi; ++w) {
            const std::int64_t npts = static_cast<std::int64_t>(off[w + 1]) - off[w];
            n += std::max<std::int64_t>(0, npts - 2);
          }
          start[static_cast<std::size_t>(chunk) + 1] = n;
        });
        for (std::size_t c = 1; c < start.size(); ++c) start[c] += start[c - 1];
        vias_owner = std::make_unique_for_overwrite<PackedVia[]>(
            static_cast<std::size_t>(start.back()));
        vias = vias_owner.get();
        support::parallel_for(0, W, kWireGrain,
                              [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
          std::int64_t cur = start[static_cast<std::size_t>(chunk)];
          for (std::int64_t w = lo; w < hi; ++w) {
            const std::int16_t zlo = std::min(meta[w].h_layer, meta[w].v_layer);
            const std::int16_t zhi = std::max(meta[w].h_layer, meta[w].v_layer);
            for (std::uint32_t i = off[w] + 1; i + 1 < off[w + 1]; ++i)
              vias[static_cast<std::size_t>(cur++)] = {pts[i].x, pts[i].y, zlo, zhi,
                                                       static_cast<std::uint32_t>(w)};
          }
        });
        std::sort(vias, vias + nvias, [&](const PackedVia& a, const PackedVia& b) {
          if (a.x != b.x) return a.x < b.x;
          return rest_less(a, b);
        });
      }
    }
    if (!split_done) {
      support::parallel_for(0, nvias, kTileGrain,
                            [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const PackedVia& v = vias[static_cast<std::size_t>(i)];
          vx[static_cast<std::size_t>(i)] = v.x;
          vy[static_cast<std::size_t>(i)] = v.y;
          vzlo[static_cast<std::size_t>(i)] = v.zlo;
          vzhi[static_cast<std::size_t>(i)] = v.zhi;
          vwire[static_cast<std::size_t>(i)] = v.wire;
        }
      });
      counted_total = tiled_count(nvias - 1, [&](std::int64_t lo, std::int64_t hi) {
        return K.count_via_conflicts(vx.get() + lo, vy.get() + lo, vzlo.get() + lo,
                                     vzhi.get() + lo, vwire.get() + lo, hi - lo + 1);
      });
    }
    const std::int64_t total = counted_total;
    apply_counted(total, [&] {
      for (std::int64_t i = 0; i + 1 < nvias && msg_budget_left(); ++i) {
        const PackedVia& a = vias[static_cast<std::size_t>(i)];
        const PackedVia& b = vias[static_cast<std::size_t>(i) + 1];
        if (a.x == b.x && a.y == b.y && a.wire != b.wire && a.zlo <= b.zhi &&
            b.zlo <= a.zhi)
          rep.errors.push_back("via conflict at " + format_point({a.x, a.y}) + ": wires " +
                               std::to_string(a.wire) + " and " + std::to_string(b.wire));
      }
    });
  }
  {
    // Segment passing through a via point on a spanned layer.  The index
    // hands back exactly the segments on (layer, line) as one SoA run;
    // a binary search finds the first span starting past the probe point,
    // and the covering kernel scans only the kCoverWindow candidates before
    // it (lo ascending; spans further back cannot reach pos on any layout
    // that passes track exclusivity).  It reports the last covering foreign
    // segment, matching the pre-kernel probe's choice.
    const PhaseTimer t(rep.phases.crossing_ms);
    support::telemetry::ScopedPhase sub("validate.crossing");
    const auto covering = [&](const PackedVia& v, std::int16_t z) -> std::int64_t {
      const bool horizontal = z % 2 == 1;
      const std::int32_t line = horizontal ? v.y : v.x;
      const std::int32_t pos = horizontal ? v.x : v.y;
      const auto [s, e] = sidx.line_span(z, horizontal, line);
      if (s >= e) return -1;
      const std::int64_t ub = std::upper_bound(slo + s, slo + e, pos) - slo;
      const std::int64_t w0 = std::max(s, ub - kernels::kCoverWindow);
      if (ub <= w0) return -1;
      const std::int64_t idx =
          K.find_covering(slo + w0, shi + w0, swire + w0, ub - w0, pos, v.wire);
      return idx < 0 ? -1 : static_cast<std::int64_t>(swire[w0 + idx]);
    };
    // The count pass exploits probe order instead of binary-searching per
    // probe.  Within one grid line, probes with ascending pos advance a
    // merge cursor over the line run (first index with lo > pos is
    // monotone in pos), turning ~7M random binary searches into a few
    // sequential sweeps:
    //
    //  - vertical probes (even z, line = x, pos = y): vias are already
    //    sorted by (x, y), so same-column probes are adjacent with y
    //    ascending;
    //  - horizontal probes (odd z, line = y, pos = x): a *stable* counting
    //    sort of via indices by y keeps x ascending within each row.
    //
    // Each pass keeps one cursor per layer; tiles re-derive the cursor at
    // their first probe, so the per-tile sums are order-independent and
    // the total is thread-count independent.
    const std::int16_t zmin = lay.num_layers() > 0 ? std::int16_t{1} : std::int16_t{0};
    const std::int16_t zmax = static_cast<std::int16_t>(lay.num_layers());
    struct LineCursor {
      std::int32_t line = std::numeric_limits<std::int32_t>::min();
      bool valid = false;
      std::int64_t s = 0, e = 0, ub = 0;
    };
    // Counts one probe against the merge cursor for layer z; the window
    // semantics (kCoverWindow candidates before the first lo > pos) match
    // the `covering` lambda exactly.
    // With zero overlap conflicts every line's spans are pairwise disjoint,
    // so at most one segment can reach any probe point: the last one with
    // lo <= pos.  One scalar check replaces the kernel window scan; layouts
    // that failed track exclusivity keep the exact kCoverWindow semantics.
    const bool disjoint = overlap_conflicts == 0;
    const auto probe_merged = [&](LineCursor& cur, std::int16_t z, bool horizontal,
                                  std::int32_t line, std::int32_t pos,
                                  std::uint32_t wire) -> std::int64_t {
      if (!cur.valid || cur.line != line) {
        const auto [s, e] = sidx.line_span(z, horizontal, line);
        cur = {line, true, s, e, s};
      }
      while (cur.ub < cur.e && slo[cur.ub] <= pos) ++cur.ub;
      if (disjoint) {
        const std::int64_t i = cur.ub - 1;
        return static_cast<std::int64_t>(i >= cur.s && shi[i] >= pos && swire[i] != wire);
      }
      const std::int64_t w0 = std::max(cur.s, cur.ub - kernels::kCoverWindow);
      if (cur.ub <= w0) return 0;
      return static_cast<std::int64_t>(
          K.find_covering(slo + w0, shi + w0, swire + w0, cur.ub - w0, pos, wire) >= 0);
    };
    std::int64_t total = 0;
    // Vertical probes, in stored (x, y) via order.
    total += tiled_count(nvias, [&](std::int64_t lo, std::int64_t hi) {
      std::vector<LineCursor> cursors(static_cast<std::size_t>(zmax - zmin + 1));
      std::int64_t n = 0;
      for (std::int64_t i = lo; i < hi; ++i) {
        const PackedVia& v = vias[static_cast<std::size_t>(i)];
        for (std::int16_t z = v.zlo; z <= v.zhi; ++z) {
          if (z % 2 != 0) continue;
          LineCursor plain;
          LineCursor& cur = z >= zmin && z <= zmax
                                ? cursors[static_cast<std::size_t>(z - zmin)]
                                : plain;
          n += probe_merged(cur, z, false, v.x, v.y, v.wire);
        }
      }
      return n;
    });
    // Horizontal probes, via a stable by-row permutation of the via order.
    {
      std::unique_ptr<std::uint32_t[]> by_row;  // written once per slot below
      bool have_rows = false;
      const Rect& bb = lay.bounding_box();
      if (nvias > 0 && bb.height() <= 4 * nvias + 1024) {
        by_row = std::make_unique_for_overwrite<std::uint32_t[]>(
            static_cast<std::size_t>(nvias));
        const Coord base = bb.y0;
        const std::int64_t nrows = bb.height();
        std::vector<std::int64_t> row_start(static_cast<std::size_t>(nrows) + 1, 0);
        for (std::int64_t i = 0; i < nvias; ++i)
          ++row_start[static_cast<std::size_t>(vias[static_cast<std::size_t>(i)].y - base) +
                      1];
        for (std::size_t r = 1; r < row_start.size(); ++r) row_start[r] += row_start[r - 1];
        constexpr std::int64_t kPfCur = 24, kPfDst = 12;
        for (std::int64_t i = 0; i < nvias; ++i) {
          if (i + kPfCur < nvias)
            __builtin_prefetch(
                row_start.data() + (vias[static_cast<std::size_t>(i + kPfCur)].y - base));
          if (i + kPfDst < nvias)
            __builtin_prefetch(
                by_row.get() + row_start[static_cast<std::size_t>(
                                    vias[static_cast<std::size_t>(i + kPfDst)].y - base)],
                1);
          by_row[static_cast<std::size_t>(
              row_start[static_cast<std::size_t>(vias[static_cast<std::size_t>(i)].y -
                                                 base)]++)] = static_cast<std::uint32_t>(i);
        }
        have_rows = true;
      }
      total += tiled_count(nvias, [&](std::int64_t lo, std::int64_t hi) {
        std::vector<LineCursor> cursors(static_cast<std::size_t>(zmax - zmin + 1));
        std::int64_t n = 0;
        for (std::int64_t k = lo; k < hi; ++k) {
          if (have_rows && k + 8 < hi)
            __builtin_prefetch(vias + by_row[static_cast<std::size_t>(k + 8)]);
          const PackedVia& v =
              vias[have_rows ? by_row[static_cast<std::size_t>(k)]
                             : static_cast<std::size_t>(k)];
          for (std::int16_t z = v.zlo; z <= v.zhi; ++z) {
            if (z % 2 != 1) continue;
            LineCursor plain;
            LineCursor& cur = z >= zmin && z <= zmax
                                  ? cursors[static_cast<std::size_t>(z - zmin)]
                                  : plain;
            n += probe_merged(cur, z, true, v.y, v.x, v.wire);
          }
        }
        return n;
      });
    }
    apply_counted(total, [&] {
      for (std::int64_t i = 0; i < nvias && msg_budget_left(); ++i) {
        const PackedVia& v = vias[static_cast<std::size_t>(i)];
        for (std::int16_t z = v.zlo; z <= v.zhi && msg_budget_left(); ++z) {
          const std::int64_t other = covering(v, z);
          if (other >= 0)
            rep.errors.push_back("via of wire " + std::to_string(v.wire) + " at " +
                                 format_point({v.x, v.y}) + " pierced by wire " +
                                 std::to_string(other) + " on layer " + std::to_string(z));
        }
      }
    });
  }
  // --- node clearance -------------------------------------------------------
  // Two-pass like the other passes, but the count never evaluates a
  // candidate against per-wire state.  Every candidate the rect index
  // reports for an indexed segment geometrically touches its rect (the
  // index is exact), and check_wire_clearance emits one error for each such
  // pair UNLESS it is an allowed touch: the segment's own node, met at a
  // single boundary point that is the wire's endpoint.  Hence
  //
  //   errors = candidates - allowed + degenerate-step errors
  //
  // where `candidates` is a plain per-bucket count through the index
  // (lines ascend, so its row/column tables stay cache-resident), `allowed`
  // was tallied during the rules wire sweep, and the queued degenerate
  // (repeated-point) steps — dropped by the SegmentIndex but still queried
  // by check_wire_clearance — are evaluated here against the index with the
  // full foreign/own predicate.  Only a broken layout ever pays for the
  // message-building walk.
  {
    const PhaseTimer t(rep.phases.clearance_ms);
    support::telemetry::ScopedPhase sub("validate.clearance");
    const std::vector<Rect>& rects = lay.node_rects();
    const RectIndex index(rects);
    const std::int64_t W = lay.num_wires();

    std::int64_t total = 0;
    for (std::int64_t b = 0; b < sidx.num_buckets(); ++b) {
      const SegmentIndex::BucketView bv = sidx.bucket(b);
      // Segments come in same-line runs; one summary-bit test skips a
      // whole run on an uncovered line (most lines are routing channels),
      // and a covered run is counted in one merge pass over the index
      // instead of one binary search per segment.  The dense run table
      // jumps between runs directly — an uncovered line costs two offset
      // loads, never a walk over its segments.
      const SegmentIndex::LineRunsView runs = sidx.line_runs(b);
      if (runs.nlines > 0) {
        total += tiled_count(runs.nlines, [&](std::int64_t l0, std::int64_t l1) {
          std::int64_t n = 0;
          for (std::int64_t l = l0; l < l1; ++l) {
            const std::int64_t s = runs.start[l];
            const std::int64_t e = runs.start[l + 1];
            if (s == e) continue;
            n += index.count_touching_run(bv.horizontal,
                                          runs.base + static_cast<Coord>(l), slo + s,
                                          shi + s, e - s);
          }
          return n;
        });
        continue;
      }
      total += tiled_count(bv.end - bv.begin, [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t n = 0;
        std::int64_t i = bv.begin + lo;
        const std::int64_t e = bv.begin + hi;
        while (i < e) {
          const std::int32_t line = sline[i];
          std::int64_t r = i;
          do ++r;
          while (r < e && sline[r] == line);
          n += index.count_touching_run(bv.horizontal, line, slo + i, shi + i, r - i);
          i = r;
        }
        return n;
      });
    }
    for (const std::int64_t a : clearance_allowed) total -= a;
    for (const std::vector<DegenStep>& steps : degen_steps)
      for (const DegenStep& d : steps)
        // A zero-length step probes as a horizontal single-point segment,
        // exactly as check_wire_clearance's loop sees it (a.y == b.y).
        index.for_touching(true, d.a.y, d.a.x, d.a.x, [&](std::int32_t node) {
          if (node != d.nu && node != d.nv) {
            ++total;  // foreign touch
            return;
          }
          const Rect& r = rects[static_cast<std::size_t>(node)];
          const Coord cl = std::max<Coord>(d.a.x, r.x0);
          const Coord ch = std::min<Coord>(d.a.x, r.x1);
          if (d.a.y < r.y0 || d.a.y > r.y1 || cl > ch) return;
          if (cl != ch) {
            ++total;  // "runs along/through its node"
            return;
          }
          const Point32 touch{static_cast<std::int32_t>(cl), d.a.y};
          if (!(touch == d.front || touch == d.back)) ++total;  // non-endpoint pass-over
        });

    apply_counted(total, [&] {
      for (std::int64_t wi = 0; wi < W && msg_budget_left(); ++wi)
        check_wire_clearance(lay.wires()[wi], wi, g, index, rects, [&](std::string m) {
          if (msg_budget_left()) rep.errors.push_back(std::move(m));
        });
    });
  }
  sidx_storage.reset();

  return rep;
}

}  // namespace starlay::layout
