#include "starlay/layout/wire_sink.hpp"

namespace starlay::layout {

void MaterializingSink::begin(const topology::Graph& g, std::vector<Rect>&& nodes) {
  (void)g;
  layout_ = Layout(static_cast<std::int32_t>(nodes.size()));
  for (std::size_t v = 0; v < nodes.size(); ++v)
    if (!nodes[v].empty()) layout_.set_node_rect(static_cast<std::int32_t>(v), nodes[v]);
}

void MaterializingSink::emit_bulk(std::int64_t count, std::int64_t grain,
                                  const WireFill& fill) {
  layout_.set_wires(WireStore::build_parallel(count, grain, fill));
}

}  // namespace starlay::layout
