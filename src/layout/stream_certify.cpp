#include "starlay/layout/stream_certify.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <utility>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/rect_index.hpp"
#include "starlay/layout/stream_records.hpp"
#include "starlay/layout/wire_rules.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

namespace tel = starlay::support::telemetry;

struct ChunkErrors {
  std::vector<std::string> msgs;
  std::int64_t total = 0;
};

bool rects_intersect(const Rect& a, const Rect& b) {
  return !a.empty() && !b.empty() && a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 &&
         b.y0 <= a.y1;
}

}  // namespace

StreamingCertifier::StreamingCertifier(StreamOptions opt) : opt_(std::move(opt)) {}
StreamingCertifier::~StreamingCertifier() = default;

void StreamingCertifier::begin(const topology::Graph& g, std::vector<Rect>&& nodes) {
  STARLAY_REQUIRE(!begun_, "stream: begin() called twice");
  g_ = &g;
  nodes_ = std::move(nodes);
  begun_ = true;
  retained_ = Layout(static_cast<std::int32_t>(nodes_.size()));
  if (!opt_.retain_window.empty())
    for (std::size_t v = 0; v < nodes_.size(); ++v)
      if (rects_intersect(nodes_[v], opt_.retain_window))
        retained_.set_node_rect(static_cast<std::int32_t>(v), nodes_[v]);
}

void StreamingCertifier::emit(const Wire& w) {
  STARLAY_REQUIRE(begun_ && !bulk_done_, "stream: emit() outside an emission");
  buffered_.push_back(w);
}

void StreamingCertifier::emit_bulk(std::int64_t count, std::int64_t grain,
                                   const WireFill& fill) {
  STARLAY_REQUIRE(begun_ && !bulk_done_ && buffered_.empty(),
                  "stream: emit_bulk() mixed with emit() or called twice");
  process(count, grain, fill);
  bulk_done_ = true;
}

void StreamingCertifier::end() {
  STARLAY_REQUIRE(begun_ && !done_, "stream: end() without begin()");
  if (!bulk_done_) {
    const auto n = static_cast<std::int64_t>(buffered_.size());
    process(n, 4096, [this](std::int64_t i, Wire& w) {
      w = buffered_[static_cast<std::size_t>(i)];
    });
    buffered_.clear();
    buffered_.shrink_to_fit();
  }
  done_ = true;
}

const StreamReport& StreamingCertifier::report() const {
  STARLAY_REQUIRE(done_, "stream: report() before end()");
  return rep_;
}

const Layout& StreamingCertifier::retained_layout() const {
  STARLAY_REQUIRE(done_, "stream: retained_layout() before end()");
  return retained_;
}

void StreamingCertifier::process(std::int64_t count, std::int64_t grain,
                                 const WireFill& fill) {
  const std::int64_t E = g_->num_edges();
  const int max_errors = opt_.validation.max_errors;
  ValidationReport& rep = rep_.validation;
  rep_.num_wires = count;
  tel::count("stream.wires", count);
  STARLAY_REQUIRE(count <= std::numeric_limits<std::uint32_t>::max(),
                  "stream: wire count exceeds 32-bit record ids");
  STARLAY_REQUIRE(grain > 0, "stream: grain must be positive");

  // Merges per-chunk error buffers in chunk order — identical error
  // sequence to a serial scan, independent of thread count.
  const auto merge_errors = [&](std::vector<ChunkErrors>& errs) {
    for (ChunkErrors& ce : errs) {
      const auto recorded = static_cast<std::int64_t>(ce.msgs.size());
      for (std::string& m : ce.msgs) rep.fail(std::move(m), max_errors);
      rep.num_errors_total += ce.total - recorded;
      if (ce.total > 0) rep.ok = false;
    }
  };
  const auto chunk_emit = [max_errors](ChunkErrors& ce) {
    return [&ce, max_errors](std::string m) {
      ++ce.total;
      if (static_cast<int>(ce.msgs.size()) < max_errors) ce.msgs.push_back(std::move(m));
    };
  };

  // --- wire <-> edge counts ---------------------------------------------
  if (count != E)
    rep.fail("wire count " + std::to_string(count) + " != edge count " +
                 std::to_string(E),
             max_errors);

  // --- node sizes ---------------------------------------------------------
  {
    const auto N = static_cast<std::int64_t>(nodes_.size());
    constexpr std::int64_t kNodeGrain = 4096;
    std::vector<ChunkErrors> errs(
        static_cast<std::size_t>(support::num_chunks(0, N, kNodeGrain)));
    support::parallel_for(0, N, kNodeGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      const auto emit = chunk_emit(errs[static_cast<std::size_t>(chunk)]);
      for (std::int64_t vi = lo; vi < hi; ++vi) {
        const auto v = static_cast<std::int32_t>(vi);
        const Rect& r = nodes_[static_cast<std::size_t>(vi)];
        const std::int32_t deg =
            !r.empty() && opt_.validation.thompson_node_size ? g_->degree(v) : 0;
        check_node_rect(v, r, deg, opt_.validation.min_node_side,
                        opt_.validation.max_node_side,
                        opt_.validation.thompson_node_size, emit);
      }
    });
    merge_errors(errs);
  }

  Rect bb;
  for (const Rect& r : nodes_) bb.cover(r);

  std::unique_ptr<std::atomic<std::uint32_t>[]> edge_seen;
  if (E > 0) {
    edge_seen.reset(new std::atomic<std::uint32_t>[static_cast<std::size_t>(E)]);
    support::parallel_for(0, E, std::int64_t{1} << 16,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t e = lo; e < hi; ++e)
        edge_seen[static_cast<std::size_t>(e)].store(0, std::memory_order_relaxed);
    });
  }

  // --- pass A: per-wire rules + accumulators ------------------------------
  {
    tel::ScopedPhase phase("validation");
    const RectIndex rect_index(nodes_);
    struct ChunkStats {
      Rect bb;
      std::int64_t len = 0, len_max = 0, nsegs = 0;
      int max_layer = 0;
      ChunkErrors errs;
      std::vector<Wire> captured;
    };
    const std::int64_t chunks = support::num_chunks(0, count, grain);
    std::vector<ChunkStats> stats(static_cast<std::size_t>(chunks));
    support::parallel_for(0, count, grain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      ChunkStats& cs = stats[static_cast<std::size_t>(chunk)];
      const auto emit = chunk_emit(cs.errs);
      for (std::int64_t i = lo; i < hi; ++i) {
        Wire w;
        fill(i, w);
        const WireValueView view(w);
        check_wire_path(view, i, *g_, nodes_, emit);
        check_wire_clearance(view, i, *g_, rect_index, nodes_, emit);
        if (w.edge < 0 || w.edge >= E)
          emit("wire references invalid edge " + std::to_string(w.edge));
        else
          edge_seen[static_cast<std::size_t>(w.edge)].fetch_add(
              1, std::memory_order_relaxed);
        Rect wbb;
        std::int64_t len = 0;
        for (int p = 0; p < w.npts; ++p) {
          const Point pt = w.pts[static_cast<std::size_t>(p)];
          (void)stream_to32(pt.x);
          (void)stream_to32(pt.y);
          wbb.cover(pt);
          if (p > 0) {
            const Point prev = w.pts[static_cast<std::size_t>(p) - 1];
            len += std::abs(pt.x - prev.x) + std::abs(pt.y - prev.y);
            if (!(pt == prev)) ++cs.nsegs;
          }
        }
        cs.bb.cover(wbb);
        cs.len += len;
        cs.len_max = std::max(cs.len_max, len);
        cs.max_layer = std::max(
            {cs.max_layer, static_cast<int>(w.h_layer), static_cast<int>(w.v_layer)});
        if (rects_intersect(wbb, opt_.retain_window)) cs.captured.push_back(w);
      }
    });
    for (ChunkStats& cs : stats) {
      bb.cover(cs.bb);
      rep_.total_wire_length += cs.len;
      rep_.max_wire_length = std::max(rep_.max_wire_length, cs.len_max);
      rep_.num_layers = std::max(rep_.num_layers, cs.max_layer);
      rep.num_segments += cs.nsegs;
      for (const Wire& w : cs.captured) retained_.add_wire(w);
    }
    std::vector<ChunkErrors> errs;
    errs.reserve(stats.size());
    for (ChunkStats& cs : stats) errs.push_back(std::move(cs.errs));
    merge_errors(errs);
  }
  rep_.num_replays = 1;

  // --- bijection: duplicate wires per edge --------------------------------
  for (std::int64_t e = 0; e < E; ++e) {
    const std::uint32_t c =
        edge_seen[static_cast<std::size_t>(e)].load(std::memory_order_relaxed);
    for (std::uint32_t k = 1; k < c; ++k)
      rep.fail("edge " + std::to_string(e) + " has multiple wires", max_errors);
  }
  edge_seen.reset();

  rep_.bounding_box = bb;
  rep_.area = bb.area();
  rep.num_layers = rep_.num_layers;
  rep.total_wire_length = rep_.total_wire_length;
  rep.max_wire_length = rep_.max_wire_length;
  if (count == 0) {
    tel::count("stream.replays", rep_.num_replays);
    return;
  }

  // --- pass B: per-band record counts -------------------------------------
  // Horizontal space keyed by y, vertical and via spaces keyed by x.  bb
  // covers every wire point, so band indices are in range by construction.
  const int shift = opt_.band_shift;
  const Coord ybase = bb.y0, xbase = bb.x0;
  const std::int64_t ybands = ((bb.y1 - ybase) >> shift) + 1;
  const std::int64_t xbands = ((bb.x1 - xbase) >> shift) + 1;
  const auto yband = [&](Coord y) { return (y - ybase) >> shift; };
  const auto xband = [&](Coord x) { return (x - xbase) >> shift; };

  using AtomicCounts = std::unique_ptr<std::atomic<std::int64_t>[]>;
  const auto make_counts = [](std::int64_t n) {
    AtomicCounts a(new std::atomic<std::int64_t>[static_cast<std::size_t>(n)]);
    for (std::int64_t i = 0; i < n; ++i) a[static_cast<std::size_t>(i)].store(0);
    return a;
  };
  AtomicCounts hseg_n = make_counts(ybands), hprobe_n = make_counts(ybands);
  AtomicCounts vseg_n = make_counts(xbands), vprobe_n = make_counts(xbands);
  AtomicCounts via_n = make_counts(xbands);
  {
  tel::ScopedPhase band_count_phase("band_count");
  support::parallel_for(0, count, grain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    const auto bump = [](std::atomic<std::int64_t>& c) {
      c.fetch_add(1, std::memory_order_relaxed);
    };
    for (std::int64_t i = lo; i < hi; ++i) {
      Wire w;
      fill(i, w);
      scan_wire(
          w,
          [&](bool horizontal, std::int16_t, Coord line, Coord, Coord) {
            if (horizontal)
              bump(hseg_n[static_cast<std::size_t>(yband(line))]);
            else
              bump(vseg_n[static_cast<std::size_t>(xband(line))]);
          },
          [&](Point p, std::int16_t zlo, std::int16_t zhi) {
            bump(via_n[static_cast<std::size_t>(xband(p.x))]);
            for (std::int16_t z = zlo; z <= zhi; ++z) {
              if (z % 2 == 1)
                bump(hprobe_n[static_cast<std::size_t>(yband(p.y))]);
              else
                bump(vprobe_n[static_cast<std::size_t>(xband(p.x))]);
            }
          });
    }
  });
  }
  rep_.num_replays = 2;
  const auto snapshot = [](const AtomicCounts& a, std::int64_t n) {
    std::vector<std::int64_t> v(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i)
      v[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)].load();
    return v;
  };
  const std::vector<std::int64_t> hseg_c = snapshot(hseg_n, ybands);
  const std::vector<std::int64_t> hprobe_c = snapshot(hprobe_n, ybands);
  const std::vector<std::int64_t> vseg_c = snapshot(vseg_n, xbands);
  const std::vector<std::int64_t> vprobe_c = snapshot(vprobe_n, xbands);
  const std::vector<std::int64_t> via_c = snapshot(via_n, xbands);
  hseg_n.reset();
  hprobe_n.reset();
  vseg_n.reset();
  vprobe_n.reset();
  via_n.reset();

  // --- batched track-exclusivity + via-pierce -----------------------------
  // Every (layer, line) group lands in exactly one batch (the batch owning
  // the line's band), so the adjacent-pair overlap scan and the pierce
  // lookups see the complete group — identical pairs to the materialized
  // validator's global sort.
  const auto run_seg_space = [&](bool horizontal, Coord base,
                                 const std::vector<std::int64_t>& seg_c,
                                 const std::vector<std::int64_t>& probe_c) {
    const auto band_of = [&](Coord line) { return (line - base) >> shift; };
    for (const BandBatch& bt : pack_bands(seg_c, probe_c,
                                          static_cast<std::int64_t>(sizeof(SegRec)),
                                          static_cast<std::int64_t>(sizeof(ProbeRec)),
                                          opt_.batch_budget_bytes)) {
      if (bt.nseg == 0 && bt.nprobe == 0) continue;
      tel::ScopedPhase phase("band_replay");
      std::vector<SegRec> segs(static_cast<std::size_t>(bt.nseg));
      std::vector<ProbeRec> probes(static_cast<std::size_t>(bt.nprobe));
      std::atomic<std::int64_t> seg_cur{0}, probe_cur{0};
      support::parallel_for(0, count, grain,
                            [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
        for (std::int64_t i = lo; i < hi; ++i) {
          Wire w;
          fill(i, w);
          scan_wire(
              w,
              [&](bool h, std::int16_t layer, Coord line, Coord slo, Coord shi) {
                if (h != horizontal) return;
                const std::int64_t b = band_of(line);
                if (b < bt.band_lo || b >= bt.band_hi) return;
                segs[static_cast<std::size_t>(
                    seg_cur.fetch_add(1, std::memory_order_relaxed))] = {
                    stream_to32(line), stream_to32(slo), stream_to32(shi),
                    static_cast<std::uint32_t>(i), layer};
              },
              [&](Point p, std::int16_t zlo, std::int16_t zhi) {
                for (std::int16_t z = zlo; z <= zhi; ++z) {
                  if ((z % 2 == 1) != horizontal) continue;
                  const Coord line = horizontal ? p.y : p.x;
                  const Coord pos = horizontal ? p.x : p.y;
                  const std::int64_t b = band_of(line);
                  if (b < bt.band_lo || b >= bt.band_hi) continue;
                  probes[static_cast<std::size_t>(
                      probe_cur.fetch_add(1, std::memory_order_relaxed))] = {
                      stream_to32(line), stream_to32(pos), static_cast<std::uint32_t>(i),
                      z};
                }
              });
        }
      });
      STARLAY_REQUIRE(seg_cur.load() == bt.nseg && probe_cur.load() == bt.nprobe,
                      "stream: fill is not replay-pure (record counts drifted)");
      sort_seg_records(segs);
      sort_probe_records(probes);
      certify_seg_batch(segs, probes, horizontal, max_errors, rep);
      ++rep_.num_batches;
      ++rep_.num_replays;
    }
  };
  run_seg_space(true, ybase, hseg_c, hprobe_c);
  run_seg_space(false, xbase, vseg_c, vprobe_c);

  // --- batched via-via audit ----------------------------------------------
  for (const BandBatch& bt :
       pack_bands(via_c, {}, static_cast<std::int64_t>(sizeof(ViaRec)), 0,
                  opt_.batch_budget_bytes)) {
    if (bt.nseg == 0) continue;
    tel::ScopedPhase phase("band_replay");
    std::vector<ViaRec> vias(static_cast<std::size_t>(bt.nseg));
    std::atomic<std::int64_t> cur{0};
    support::parallel_for(0, count, grain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t i = lo; i < hi; ++i) {
        Wire w;
        fill(i, w);
        scan_wire(
            w, [](bool, std::int16_t, Coord, Coord, Coord) {},
            [&](Point p, std::int16_t zlo, std::int16_t zhi) {
              const std::int64_t b = xband(p.x);
              if (b < bt.band_lo || b >= bt.band_hi) return;
              vias[static_cast<std::size_t>(
                  cur.fetch_add(1, std::memory_order_relaxed))] = {
                  stream_to32(p.x), stream_to32(p.y), static_cast<std::uint32_t>(i), zlo,
                  zhi};
            });
      }
    });
    STARLAY_REQUIRE(cur.load() == bt.nseg,
                    "stream: fill is not replay-pure (via counts drifted)");
    sort_via_records(vias);
    certify_via_batch(vias, max_errors, rep);
    ++rep_.num_batches;
    ++rep_.num_replays;
  }
  tel::count("stream.batches", rep_.num_batches);
  tel::count("stream.replays", rep_.num_replays);
}

}  // namespace starlay::layout
