#include "starlay/layout/layout.hpp"

#include <algorithm>

#include "starlay/support/check.hpp"

namespace starlay::layout {

Layout::Layout(std::int32_t num_nodes) {
  STARLAY_REQUIRE(num_nodes >= 0, "Layout: negative node count");
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

void Layout::set_node_rect(std::int32_t node, const Rect& r) {
  STARLAY_REQUIRE(node >= 0 && node < num_nodes(), "Layout::set_node_rect: node out of range");
  STARLAY_REQUIRE(!r.empty(), "Layout::set_node_rect: empty rectangle");
  nodes_[static_cast<std::size_t>(node)] = r;
}

const Rect& Layout::node_rect(std::int32_t node) const {
  STARLAY_REQUIRE(node >= 0 && node < num_nodes(), "Layout::node_rect: node out of range");
  return nodes_[static_cast<std::size_t>(node)];
}

int Layout::num_layers() const {
  int layers = 0;
  for (const Wire& w : wires_)
    layers = std::max({layers, static_cast<int>(w.h_layer), static_cast<int>(w.v_layer)});
  return layers;
}

Rect Layout::bounding_box() const {
  Rect bb;
  for (const Rect& r : nodes_) bb.cover(r);
  for (const Wire& w : wires_)
    for (std::uint8_t i = 0; i < w.npts; ++i) bb.cover(w.pts[i]);
  return bb;
}

std::int64_t Layout::total_wire_length() const {
  std::int64_t len = 0;
  for (const Wire& w : wires_)
    for (std::uint8_t i = 1; i < w.npts; ++i)
      len += std::abs(w.pts[i].x - w.pts[i - 1].x) + std::abs(w.pts[i].y - w.pts[i - 1].y);
  return len;
}

std::int64_t Layout::max_wire_length() const {
  std::int64_t best = 0;
  for (const Wire& w : wires_) {
    std::int64_t len = 0;
    for (std::uint8_t i = 1; i < w.npts; ++i)
      len += std::abs(w.pts[i].x - w.pts[i - 1].x) + std::abs(w.pts[i].y - w.pts[i - 1].y);
    best = std::max(best, len);
  }
  return best;
}

std::vector<LayerSegment> Layout::segments() const {
  std::vector<LayerSegment> segs;
  segs.reserve(wires_.size() * 3);
  for (std::size_t wi = 0; wi < wires_.size(); ++wi) {
    const Wire& w = wires_[wi];
    for (std::uint8_t i = 1; i < w.npts; ++i) {
      const Point a = w.pts[i - 1];
      const Point b = w.pts[i];
      if (a == b) continue;
      if (a.y == b.y) {
        segs.push_back({w.h_layer, true, a.y,
                        {std::min(a.x, b.x), std::max(a.x, b.x)},
                        static_cast<std::int64_t>(wi)});
      } else {
        segs.push_back({w.v_layer, false, a.x,
                        {std::min(a.y, b.y), std::max(a.y, b.y)},
                        static_cast<std::int64_t>(wi)});
      }
    }
  }
  return segs;
}

}  // namespace starlay::layout
