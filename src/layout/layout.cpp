#include "starlay/layout/layout.hpp"

#include <algorithm>

#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

constexpr std::int64_t kPointGrain = 1 << 16;  // flat point-buffer scans
constexpr std::int64_t kWireGrain = 8192;      // per-wire scans

}  // namespace

Layout::Layout(std::int32_t num_nodes) {
  STARLAY_REQUIRE(num_nodes >= 0, "Layout: negative node count");
  nodes_.resize(static_cast<std::size_t>(num_nodes));
}

void Layout::set_node_rect(std::int32_t node, const Rect& r) {
  STARLAY_REQUIRE(node >= 0 && node < num_nodes(), "Layout::set_node_rect: node out of range");
  STARLAY_REQUIRE(!r.empty(), "Layout::set_node_rect: empty rectangle");
  nodes_[static_cast<std::size_t>(node)] = r;
  bb_valid_ = false;
}

const Rect& Layout::node_rect(std::int32_t node) const {
  STARLAY_REQUIRE(node >= 0 && node < num_nodes(), "Layout::node_rect: node out of range");
  return nodes_[static_cast<std::size_t>(node)];
}

int Layout::num_layers() const {
  const WireStore::Meta* meta = wires_.raw_meta();
  const std::int64_t W = wires_.size();
  const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
  std::vector<int> partial(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    int m = 0;
    for (std::int64_t i = lo; i < hi; ++i)
      m = std::max({m, static_cast<int>(meta[i].h_layer), static_cast<int>(meta[i].v_layer)});
    partial[static_cast<std::size_t>(chunk)] = m;
  });
  int layers = 0;
  for (int m : partial) layers = std::max(layers, m);
  return layers;
}

const Rect& Layout::bounding_box() const {
  if (bb_valid_) return bb_;
  Rect bb;
  for (const Rect& r : nodes_) bb.cover(r);
  const Point32* pts = wires_.raw_points();
  const std::int64_t P = wires_.num_points();
  const std::int64_t chunks = support::num_chunks(0, P, kPointGrain);
  std::vector<Rect> partial(static_cast<std::size_t>(chunks));
  support::parallel_for(0, P, kPointGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    Rect r;
    for (std::int64_t i = lo; i < hi; ++i) r.cover(Point{pts[i].x, pts[i].y});
    partial[static_cast<std::size_t>(chunk)] = r;
  });
  for (const Rect& r : partial) bb.cover(r);
  bb_ = bb;
  bb_valid_ = true;
  return bb_;
}

std::int64_t Layout::total_wire_length() const {
  const Point32* pts = wires_.raw_points();
  const std::uint32_t* off = wires_.raw_offsets();
  const std::int64_t W = wires_.size();
  const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
  std::vector<std::int64_t> partial(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::int64_t len = 0;
    for (std::int64_t w = lo; w < hi; ++w)
      for (std::uint32_t i = off[w] + 1; i < off[w + 1]; ++i)
        len += std::abs(static_cast<std::int64_t>(pts[i].x) - pts[i - 1].x) +
               std::abs(static_cast<std::int64_t>(pts[i].y) - pts[i - 1].y);
    partial[static_cast<std::size_t>(chunk)] = len;
  });
  std::int64_t len = 0;
  for (std::int64_t l : partial) len += l;
  return len;
}

std::int64_t Layout::max_wire_length() const {
  const Point32* pts = wires_.raw_points();
  const std::uint32_t* off = wires_.raw_offsets();
  const std::int64_t W = wires_.size();
  const std::int64_t chunks = support::num_chunks(0, W, kWireGrain);
  std::vector<std::int64_t> partial(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, W, kWireGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::int64_t best = 0;
    for (std::int64_t w = lo; w < hi; ++w) {
      std::int64_t len = 0;
      for (std::uint32_t i = off[w] + 1; i < off[w + 1]; ++i)
        len += std::abs(static_cast<std::int64_t>(pts[i].x) - pts[i - 1].x) +
               std::abs(static_cast<std::int64_t>(pts[i].y) - pts[i - 1].y);
      best = std::max(best, len);
    }
    partial[static_cast<std::size_t>(chunk)] = best;
  });
  std::int64_t best = 0;
  for (std::int64_t l : partial) best = std::max(best, l);
  return best;
}

std::vector<LayerSegment> Layout::segments() const {
  const Point32* pts = wires_.raw_points();
  const std::uint32_t* off = wires_.raw_offsets();
  const WireStore::Meta* meta = wires_.raw_meta();
  std::vector<LayerSegment> segs;
  segs.reserve(static_cast<std::size_t>(
      std::max<std::int64_t>(0, wires_.num_points() - wires_.size())));
  for (std::int64_t w = 0; w < wires_.size(); ++w) {
    for (std::uint32_t i = off[w] + 1; i < off[w + 1]; ++i) {
      const Point32 a = pts[i - 1];
      const Point32 b = pts[i];
      if (a == b) continue;
      if (a.y == b.y) {
        segs.push_back({meta[w].h_layer, true, a.y,
                        {std::min(a.x, b.x), std::max(a.x, b.x)}, w});
      } else {
        segs.push_back({meta[w].v_layer, false, a.x,
                        {std::min(a.y, b.y), std::max(a.y, b.y)}, w});
      }
    }
  }
  return segs;
}

}  // namespace starlay::layout
