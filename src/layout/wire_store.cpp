#include "starlay/layout/wire_store.hpp"

#include <limits>

#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

inline std::int32_t narrow(Coord c) {
  STARLAY_REQUIRE(c >= std::numeric_limits<std::int32_t>::min() &&
                      c <= std::numeric_limits<std::int32_t>::max(),
                  "WireStore: coordinate exceeds 32-bit storage range");
  return static_cast<std::int32_t>(c);
}

}  // namespace

void WireStore::reserve(std::int64_t wires, std::int64_t points) {
  meta_.reserve(static_cast<std::size_t>(wires));
  off_.reserve(static_cast<std::size_t>(wires) + 1);
  pts_.reserve(static_cast<std::size_t>(points));
}

void WireStore::push_back(const Wire& w) {
  for (std::uint8_t i = 0; i < w.npts; ++i)
    pts_.push_back({narrow(w.pts[i].x), narrow(w.pts[i].y)});
  STARLAY_REQUIRE(pts_.size() <= std::numeric_limits<std::uint32_t>::max(),
                  "WireStore: point buffer exceeds 32-bit offsets");
  off_.push_back(static_cast<std::uint32_t>(pts_.size()));
  meta_.push_back({w.edge, w.h_layer, w.v_layer});
}

Wire WireStore::extract(std::int64_t i) const {
  const WireRef r = (*this)[i];
  Wire w;
  w.edge = r.edge();
  w.h_layer = r.h_layer();
  w.v_layer = r.v_layer();
  STARLAY_REQUIRE(r.npts() <= kMaxWirePoints, "WireStore::extract: wire too long");
  for (int p = 0; p < r.npts(); ++p) {
    const Point pt = r.pt(p);
    w.pts[static_cast<std::size_t>(w.npts++)] = pt;
  }
  return w;
}

void WireStore::replace(std::int64_t i, const Wire& w) {
  STARLAY_REQUIRE(i >= 0 && i < size(), "WireStore::replace: index out of range");
  const std::size_t lo = off_[static_cast<std::size_t>(i)];
  const std::size_t hi = off_[static_cast<std::size_t>(i) + 1];
  std::vector<Point32> np;
  np.reserve(w.npts);
  for (std::uint8_t p = 0; p < w.npts; ++p)
    np.push_back({narrow(w.pts[p].x), narrow(w.pts[p].y)});
  const std::int64_t delta =
      static_cast<std::int64_t>(np.size()) - static_cast<std::int64_t>(hi - lo);
  pts_.erase(pts_.begin() + static_cast<std::ptrdiff_t>(lo),
             pts_.begin() + static_cast<std::ptrdiff_t>(hi));
  pts_.insert(pts_.begin() + static_cast<std::ptrdiff_t>(lo), np.begin(), np.end());
  if (delta != 0)
    for (std::size_t j = static_cast<std::size_t>(i) + 1; j < off_.size(); ++j)
      off_[j] = static_cast<std::uint32_t>(static_cast<std::int64_t>(off_[j]) + delta);
  meta_[static_cast<std::size_t>(i)] = {w.edge, w.h_layer, w.v_layer};
}

WireStore WireStore::build_parallel(std::int64_t count, std::int64_t grain,
                                    const std::function<void(std::int64_t, Wire&)>& fill) {
  WireStore s;
  s.meta_.resize(static_cast<std::size_t>(count));
  s.off_.assign(static_cast<std::size_t>(count) + 1, 0);
  // Pass 1: point counts (and metadata) per wire, written to disjoint slots.
  support::parallel_for(0, count, grain, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    for (std::int64_t i = lo; i < hi; ++i) {
      Wire w;
      fill(i, w);
      s.off_[static_cast<std::size_t>(i) + 1] = w.npts;
      s.meta_[static_cast<std::size_t>(i)] = {w.edge, w.h_layer, w.v_layer};
    }
  });
  // Serial prefix sum fixes every wire's slice; thread-count independent.
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < s.off_.size(); ++i) {
    total += s.off_[i];
    STARLAY_REQUIRE(total <= std::numeric_limits<std::uint32_t>::max(),
                    "WireStore: point buffer exceeds 32-bit offsets");
    s.off_[i] = static_cast<std::uint32_t>(total);
  }
  // Pass 2: rebuild each wire into its disjoint slice.
  s.pts_.resize(static_cast<std::size_t>(total));
  support::parallel_for(0, count, grain, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    for (std::int64_t i = lo; i < hi; ++i) {
      Wire w;
      fill(i, w);
      Point32* out = s.pts_.data() + s.off_[static_cast<std::size_t>(i)];
      for (std::uint8_t p = 0; p < w.npts; ++p)
        out[p] = {narrow(w.pts[p].x), narrow(w.pts[p].y)};
    }
  });
  return s;
}

}  // namespace starlay::layout
