#include "starlay/layout/fingerprint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

namespace {

/// Folds per-wire hashes [0, count) through the canonical chunk scheme:
/// chunk digests computed independently (parallel-safe), folded serially in
/// chunk order.  Within a chunk the hashes feed the 4-lane FNV-1a kernel in
/// kBlock-sized blocks — kBlock is a multiple of 4, so every block leaves
/// the round-robin lane phase intact and the digest is a pure function of
/// the hash sequence: identical at every thread count and SIMD level (all
/// fold_hashes4 variants are bit-identical by contract).  \p wire_hash must
/// be a pure function of the index.
template <typename HashF>
std::uint64_t fold_chunked(std::int64_t count, const HashF& wire_hash) {
  const kernels::KernelTable& K = kernels::active();
  const std::int64_t chunks = support::num_chunks(0, count, kFingerprintGrain);
  std::vector<std::uint64_t> partial(static_cast<std::size_t>(chunks), kFingerprintSeed);
  support::parallel_for(0, count, kFingerprintGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    constexpr std::int64_t kBlock = 1024;
    std::uint64_t block[kBlock];
    std::uint64_t lanes[4] = {kFingerprintSeed, kFingerprintSeed, kFingerprintSeed,
                              kFingerprintSeed};
    std::int64_t nb = 0;
    for (std::int64_t i = lo; i < hi; ++i) {
      block[nb++] = wire_hash(i);
      if (nb == kBlock) {
        K.fold_hashes4(block, nb, lanes);
        nb = 0;
      }
    }
    if (nb > 0) K.fold_hashes4(block, nb, lanes);
    std::uint64_t h = kFingerprintSeed;
    for (const std::uint64_t lane : lanes)
      h = fingerprint_mix(h, static_cast<std::int64_t>(lane));
    partial[static_cast<std::size_t>(chunk)] = h;
  });
  std::uint64_t h = kFingerprintSeed;
  h = fingerprint_mix(h, count);
  for (std::uint64_t p : partial) h = fingerprint_mix(h, static_cast<std::int64_t>(p));
  return h;
}

}  // namespace

std::int64_t wire_polyline_length(const Wire& w) {
  std::int64_t len = 0;
  for (int i = 1; i < w.npts; ++i) {
    const Point a = w.pts[static_cast<std::size_t>(i - 1)];
    const Point b = w.pts[static_cast<std::size_t>(i)];
    len += std::abs(static_cast<std::int64_t>(b.x) - a.x) +
           std::abs(static_cast<std::int64_t>(b.y) - a.y);
  }
  return len;
}

std::uint64_t wire_content_hash(const Wire& w) {
  std::uint64_t h = kFingerprintSeed;
  h = fingerprint_mix(h, w.edge);
  h = fingerprint_mix(h, w.h_layer);
  h = fingerprint_mix(h, w.v_layer);
  h = fingerprint_mix(h, w.npts);
  for (int i = 0; i < w.npts; ++i) {
    h = fingerprint_mix(h, w.pts[static_cast<std::size_t>(i)].x);
    h = fingerprint_mix(h, w.pts[static_cast<std::size_t>(i)].y);
  }
  return h;
}

std::uint64_t wire_fingerprint(const Layout& lay) {
  const WireStore& wires = lay.wires();
  return fold_chunked(wires.size(), [&](std::int64_t i) {
    // Hash through the SoA view directly — identical bytes to hashing the
    // extracted Wire, without the copy.
    const WireRef w = wires[i];
    std::uint64_t h = kFingerprintSeed;
    h = fingerprint_mix(h, w.edge());
    h = fingerprint_mix(h, w.h_layer());
    h = fingerprint_mix(h, w.v_layer());
    h = fingerprint_mix(h, w.npts());
    for (int p = 0; p < w.npts(); ++p) {
      h = fingerprint_mix(h, w.pt(p).x);
      h = fingerprint_mix(h, w.pt(p).y);
    }
    return h;
  });
}

void FingerprintingSink::begin(const topology::Graph& g, std::vector<Rect>&& nodes) {
  (void)g;
  nodes_ = std::move(nodes);
  buffered_.clear();
  fingerprint_ = kFingerprintSeed;
  num_wires_ = 0;
  total_wire_length_ = 0;
  max_wire_length_ = 0;
  bulk_done_ = false;
}

void FingerprintingSink::emit(const Wire& w) {
  STARLAY_REQUIRE(!bulk_done_, "fingerprint: emit() after emit_bulk()");
  buffered_.push_back(wire_content_hash(w));
  const std::int64_t len = wire_polyline_length(w);
  total_wire_length_ += len;
  max_wire_length_ = std::max(max_wire_length_, len);
}

void FingerprintingSink::emit_bulk(std::int64_t count, std::int64_t grain,
                                   const WireFill& fill) {
  STARLAY_REQUIRE(!bulk_done_ && buffered_.empty(),
                  "fingerprint: emit_bulk() mixed with emit() or called twice");
  // The caller's grain controls its own emission batching; the canonical
  // digest always folds with kFingerprintGrain so every execution mode
  // (and thread count) produces the same value.  fill is pure by the
  // WireSink contract, so replaying it here at a different grain is fine.
  (void)grain;
  // Wirelengths ride along on the digest scan: a relaxed fetch_add for the
  // total and a CAS max — both order-independent integer reductions, so
  // the results match the serial emit() path at every thread count.
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t> longest{0};
  fingerprint_ = fold_chunked(count, [&](std::int64_t i) {
    Wire w;
    fill(i, w);
    const std::int64_t len = wire_polyline_length(w);
    total.fetch_add(len, std::memory_order_relaxed);
    std::int64_t cur = longest.load(std::memory_order_relaxed);
    while (len > cur &&
           !longest.compare_exchange_weak(cur, len, std::memory_order_relaxed)) {
    }
    return wire_content_hash(w);
  });
  num_wires_ = count;
  total_wire_length_ = total.load(std::memory_order_relaxed);
  max_wire_length_ = longest.load(std::memory_order_relaxed);
  bulk_done_ = true;
}

void FingerprintingSink::end() {
  if (bulk_done_) return;
  const auto n = static_cast<std::int64_t>(buffered_.size());
  fingerprint_ = fold_chunked(n, [&](std::int64_t i) {
    return buffered_[static_cast<std::size_t>(i)];
  });
  num_wires_ = n;
  buffered_.clear();
  buffered_.shrink_to_fit();
  bulk_done_ = true;
}

}  // namespace starlay::layout
