// SSE4.2 kernels: 4 int32 lanes per instruction.  Same math as the AVX2
// variant at half width; exists so pre-AVX2 x86 still gets a vector path
// and so the dispatch ladder has a middle rung to test clamping against.

#include "kernels_internal.hpp"

#if defined(STARLAY_KERNELS_SSE4)

#include <nmmintrin.h>

namespace starlay::layout::kernels {
namespace {

inline std::uint32_t mask_ps(__m128i m) {
  return static_cast<std::uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(m)));
}

std::int64_t count_seg_conflicts_sse4(const std::int32_t* line, const std::int32_t* lo,
                                      const std::int32_t* hi, std::int64_t n) {
  std::int64_t conflicts = 0;
  std::int64_t i = 0;
  for (; i + 5 <= n; i += 4) {
    const __m128i la = _mm_loadu_si128(reinterpret_cast<const __m128i*>(line + i));
    const __m128i lb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(line + i + 1));
    const __m128i ha = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    const __m128i ob = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i + 1));
    const __m128i same_line = _mm_cmpeq_epi32(la, lb);
    const __m128i disjoint = _mm_cmpgt_epi32(ob, ha);
    conflicts += __builtin_popcount(mask_ps(_mm_andnot_si128(disjoint, same_line)));
  }
  for (; i + 1 < n; ++i) {
    conflicts += static_cast<std::int64_t>(line[i] == line[i + 1] && lo[i + 1] <= hi[i]);
  }
  return conflicts;
}

std::int64_t count_via_conflicts_sse4(const std::int32_t* x, const std::int32_t* y,
                                      const std::int32_t* zlo, const std::int32_t* zhi,
                                      const std::uint32_t* wire, std::int64_t n) {
  std::int64_t conflicts = 0;
  std::int64_t i = 0;
  for (; i + 5 <= n; i += 4) {
    const __m128i xa = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i xb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i + 1));
    const __m128i ya = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    const __m128i yb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i + 1));
    const __m128i za = _mm_loadu_si128(reinterpret_cast<const __m128i*>(zlo + i));
    const __m128i zb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(zlo + i + 1));
    const __m128i ta = _mm_loadu_si128(reinterpret_cast<const __m128i*>(zhi + i));
    const __m128i tb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(zhi + i + 1));
    const __m128i wa = _mm_loadu_si128(reinterpret_cast<const __m128i*>(wire + i));
    const __m128i wb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(wire + i + 1));
    const __m128i same_col = _mm_and_si128(_mm_cmpeq_epi32(xa, xb), _mm_cmpeq_epi32(ya, yb));
    const __m128i z_apart = _mm_or_si128(_mm_cmpgt_epi32(za, tb), _mm_cmpgt_epi32(zb, ta));
    const __m128i same_wire = _mm_cmpeq_epi32(wa, wb);
    const __m128i conflict =
        _mm_andnot_si128(same_wire, _mm_andnot_si128(z_apart, same_col));
    conflicts += __builtin_popcount(mask_ps(conflict));
  }
  for (; i + 1 < n; ++i) {
    const bool same_column = x[i] == x[i + 1] && y[i] == y[i + 1];
    const bool z_meet = zlo[i] <= zhi[i + 1] && zlo[i + 1] <= zhi[i];
    conflicts += static_cast<std::int64_t>(same_column && z_meet && wire[i] != wire[i + 1]);
  }
  return conflicts;
}

std::int64_t find_covering_sse4(const std::int32_t* lo, const std::int32_t* hi,
                                const std::uint32_t* wire, std::int64_t n, std::int32_t pos,
                                std::uint32_t self) {
  const __m128i vpos = _mm_set1_epi32(pos);
  const __m128i vself = _mm_set1_epi32(static_cast<std::int32_t>(self));
  std::int64_t last = -1;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vlo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lo + i));
    const __m128i vhi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(hi + i));
    const __m128i vw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(wire + i));
    const __m128i lo_gt = _mm_cmpgt_epi32(vlo, vpos);
    const __m128i pos_gt = _mm_cmpgt_epi32(vpos, vhi);
    const __m128i is_self = _mm_cmpeq_epi32(vw, vself);
    __m128i cover = _mm_andnot_si128(lo_gt, _mm_andnot_si128(pos_gt, _mm_set1_epi32(-1)));
    cover = _mm_andnot_si128(is_self, cover);
    const std::uint32_t bits = mask_ps(cover);
    if (bits != 0) last = i + (31 - __builtin_clz(bits));
    if (mask_ps(lo_gt) != 0) return last;
  }
  for (; i < n; ++i) {
    if (lo[i] > pos) break;
    if (pos <= hi[i] && wire[i] != self) last = i;
  }
  return last;
}

std::int64_t find_rect_overlap_sse4(const std::int32_t* x0, const std::int32_t* x1,
                                    std::int64_t n, std::int64_t start, std::int32_t xlo,
                                    std::int32_t xhi) {
  const __m128i vxlo = _mm_set1_epi32(xlo);
  const __m128i vxhi = _mm_set1_epi32(xhi);
  std::int64_t i = start;
  for (; i + 4 <= n; i += 4) {
    const __m128i v0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x0 + i));
    const __m128i v1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x1 + i));
    const __m128i past = _mm_cmpgt_epi32(v0, vxhi);
    const __m128i miss = _mm_cmpgt_epi32(vxlo, v1);
    const __m128i hit = _mm_andnot_si128(past, _mm_andnot_si128(miss, _mm_set1_epi32(-1)));
    const std::uint32_t hit_bits = mask_ps(hit);
    const std::uint32_t past_bits = mask_ps(past);
    if (hit_bits != 0) {
      if (past_bits == 0 || __builtin_ctz(hit_bits) < __builtin_ctz(past_bits)) {
        return i + __builtin_ctz(hit_bits);
      }
    }
    if (past_bits != 0) return -1;
  }
  for (; i < n; ++i) {
    if (x0[i] > xhi) return -1;
    if (x1[i] >= xlo) return i;
  }
  return -1;
}

inline __m128i mul_fnv_prime(__m128i a) {
  constexpr std::uint64_t kPrime = 1099511628211ull;  // 0x100000001B3
  const __m128i p = _mm_set1_epi64x(static_cast<long long>(kPrime));
  const __m128i p_hi = _mm_srli_epi64(p, 32);
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i lo = _mm_mul_epu32(a, p);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(a_hi, p), _mm_mul_epu32(a, p_hi));
  return _mm_add_epi64(lo, _mm_slli_epi64(cross, 32));
}

void fold_hashes4_sse4(const std::uint64_t* h, std::int64_t n, std::uint64_t lanes[4]) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  __m128i acc01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes));
  __m128i acc23 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(lanes + 2));
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v01 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    const __m128i v23 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i + 2));
    acc01 = mul_fnv_prime(_mm_xor_si128(acc01, v01));
    acc23 = mul_fnv_prime(_mm_xor_si128(acc23, v23));
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes), acc01);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(lanes + 2), acc23);
  for (int j = 0; i < n; ++i, ++j) lanes[j] = (lanes[j] ^ h[i]) * kPrime;
}

void deinterleave4_sse4(const std::int32_t* in, std::int64_t n, std::int32_t* a,
                        std::int32_t* b, std::int32_t* c, std::int32_t* d) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Classic 4x4 int32 transpose: 4 records -> one vector per field.
    const __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * i));
    const __m128i r1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * i + 4));
    const __m128i r2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * i + 8));
    const __m128i r3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 4 * i + 12));
    const __m128i t0 = _mm_unpacklo_epi32(r0, r1);  // a0 a1 b0 b1
    const __m128i t1 = _mm_unpackhi_epi32(r0, r1);  // c0 c1 d0 d1
    const __m128i t2 = _mm_unpacklo_epi32(r2, r3);  // a2 a3 b2 b3
    const __m128i t3 = _mm_unpackhi_epi32(r2, r3);  // c2 c3 d2 d3
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), _mm_unpacklo_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), _mm_unpackhi_epi64(t0, t2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(c + i), _mm_unpacklo_epi64(t1, t3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(d + i), _mm_unpackhi_epi64(t1, t3));
  }
  for (; i < n; ++i) {
    a[i] = in[4 * i + 0];
    b[i] = in[4 * i + 1];
    c[i] = in[4 * i + 2];
    d[i] = in[4 * i + 3];
  }
}

}  // namespace

const KernelTable kSse4Table = {
    &count_seg_conflicts_sse4, &count_via_conflicts_sse4, &find_covering_sse4,
    &find_rect_overlap_sse4,   &fold_hashes4_sse4,        &deinterleave4_sse4,
};

}  // namespace starlay::layout::kernels

#endif  // STARLAY_KERNELS_SSE4
