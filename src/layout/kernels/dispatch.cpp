// Runtime kernel dispatch.  The startup level is resolved once (CPUID
// capped by what the build compiled in, then capped by STARLAY_SIMD); tests
// override it thread-safely through ScopedForcedLevel.

#include <atomic>
#include <cstring>

#include "kernels_internal.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/runtime_config.hpp"

namespace starlay::layout::kernels {
namespace {

SimdLevel best_cpu_level() {
#if defined(__x86_64__) || defined(__i386__)
#if defined(STARLAY_KERNELS_AVX2)
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAVX2;
#endif
#if defined(STARLAY_KERNELS_SSE4)
  if (__builtin_cpu_supports("sse4.2")) return SimdLevel::kSSE4;
#endif
#endif
  return SimdLevel::kScalar;
}

SimdLevel parse_level(const char* s, SimdLevel fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  if (std::strcmp(s, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(s, "sse4") == 0 || std::strcmp(s, "sse4.2") == 0) return SimdLevel::kSSE4;
  if (std::strcmp(s, "avx2") == 0) return SimdLevel::kAVX2;
  return fallback;  // unknown spelling: keep the auto-detected level
}

SimdLevel clamp_supported(SimdLevel want) {
  const SimdLevel best = best_cpu_level();
  return static_cast<int>(want) <= static_cast<int>(best) ? want : best;
}

SimdLevel startup_level() {
  // STARLAY_SIMD arrives through the one-shot RuntimeConfig parse, so the
  // daemon can trust the startup level never shifts under a running job.
  static const SimdLevel level = clamp_supported(
      parse_level(support::RuntimeConfig::process().simd.c_str(), best_cpu_level()));
  return level;
}

// -1 = no override; otherwise the forced SimdLevel.  Plain atomic rather
// than thread_local: a forced level must bind the pool workers spawned by
// parallel_for too, and tests force levels only around single-threaded
// validation calls.
std::atomic<int> g_forced{-1};

}  // namespace

const char* level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSSE4: return "sse4";
    case SimdLevel::kAVX2: return "avx2";
  }
  return "unknown";
}

bool level_compiled(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kSSE4:
#if defined(STARLAY_KERNELS_SSE4)
      return true;
#else
      return false;
#endif
    case SimdLevel::kAVX2:
#if defined(STARLAY_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool level_supported(SimdLevel level) {
  return level_compiled(level) &&
         static_cast<int>(level) <= static_cast<int>(best_cpu_level());
}

SimdLevel active_level() {
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  return startup_level();
}

const KernelTable& table(SimdLevel level) {
  STARLAY_REQUIRE(level_supported(level), "kernel level not supported on this host/build");
  switch (level) {
    case SimdLevel::kScalar:
      return kScalarTable;
    case SimdLevel::kSSE4:
#if defined(STARLAY_KERNELS_SSE4)
      return kSse4Table;
#else
      break;
#endif
    case SimdLevel::kAVX2:
#if defined(STARLAY_KERNELS_AVX2)
      return kAvx2Table;
#else
      break;
#endif
  }
  return kScalarTable;
}

const KernelTable& active() { return table(active_level()); }

ScopedForcedLevel::ScopedForcedLevel(SimdLevel level)
    : prev_(g_forced.load(std::memory_order_acquire)), effective_(clamp_supported(level)) {
  g_forced.store(static_cast<int>(effective_), std::memory_order_release);
}

ScopedForcedLevel::~ScopedForcedLevel() { g_forced.store(prev_, std::memory_order_release); }

}  // namespace starlay::layout::kernels
