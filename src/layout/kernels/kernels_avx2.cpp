// AVX2 kernels: 8 int32 comparisons per instruction on the packed SoA
// arrays, 4x64-bit FNV lanes for the fingerprint fold.  Compiled with
// -mavx2 on this TU only; dispatch.cpp never calls in here unless CPUID
// reported AVX2, so no other TU needs the ISA flag.

#include "kernels_internal.hpp"

#if defined(STARLAY_KERNELS_AVX2)

#include <immintrin.h>

namespace starlay::layout::kernels {
namespace {

constexpr std::int64_t kPrefetchAhead = 16;  // 2 vectors ahead, in elements

inline std::uint32_t mask_ps(__m256i m) {
  return static_cast<std::uint32_t>(_mm256_movemask_ps(_mm256_castsi256_ps(m)));
}

std::int64_t count_seg_conflicts_avx2(const std::int32_t* line, const std::int32_t* lo,
                                      const std::int32_t* hi, std::int64_t n) {
  std::int64_t conflicts = 0;
  std::int64_t i = 0;
  for (; i + 9 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(line + i + kPrefetchAhead), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(lo + i + kPrefetchAhead), _MM_HINT_T0);
    _mm_prefetch(reinterpret_cast<const char*>(hi + i + kPrefetchAhead), _MM_HINT_T0);
    const __m256i la = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(line + i));
    const __m256i lb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(line + i + 1));
    const __m256i ha = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i ob = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i + 1));
    // conflict = (line equal) && !(next.lo > cur.hi)
    const __m256i same_line = _mm256_cmpeq_epi32(la, lb);
    const __m256i disjoint = _mm256_cmpgt_epi32(ob, ha);
    const __m256i conflict = _mm256_andnot_si256(disjoint, same_line);
    conflicts += __builtin_popcount(mask_ps(conflict));
  }
  for (; i + 1 < n; ++i) {
    conflicts += static_cast<std::int64_t>(line[i] == line[i + 1] && lo[i + 1] <= hi[i]);
  }
  return conflicts;
}

std::int64_t count_via_conflicts_avx2(const std::int32_t* x, const std::int32_t* y,
                                      const std::int32_t* zlo, const std::int32_t* zhi,
                                      const std::uint32_t* wire, std::int64_t n) {
  std::int64_t conflicts = 0;
  std::int64_t i = 0;
  for (; i + 9 <= n; i += 8) {
    const __m256i xa = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i xb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 1));
    const __m256i ya = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i yb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 1));
    const __m256i za = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zlo + i));
    const __m256i zb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zlo + i + 1));
    const __m256i ta = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zhi + i));
    const __m256i tb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(zhi + i + 1));
    const __m256i wa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wire + i));
    const __m256i wb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wire + i + 1));
    const __m256i same_col =
        _mm256_and_si256(_mm256_cmpeq_epi32(xa, xb), _mm256_cmpeq_epi32(ya, yb));
    // z-intervals meet: !(zlo[i] > zhi[i+1]) && !(zlo[i+1] > zhi[i])
    const __m256i z_apart =
        _mm256_or_si256(_mm256_cmpgt_epi32(za, tb), _mm256_cmpgt_epi32(zb, ta));
    const __m256i same_wire = _mm256_cmpeq_epi32(wa, wb);
    const __m256i conflict =
        _mm256_andnot_si256(same_wire, _mm256_andnot_si256(z_apart, same_col));
    conflicts += __builtin_popcount(mask_ps(conflict));
  }
  for (; i + 1 < n; ++i) {
    const bool same_column = x[i] == x[i + 1] && y[i] == y[i + 1];
    const bool z_meet = zlo[i] <= zhi[i + 1] && zlo[i + 1] <= zhi[i];
    conflicts += static_cast<std::int64_t>(same_column && z_meet && wire[i] != wire[i + 1]);
  }
  return conflicts;
}

std::int64_t find_covering_avx2(const std::int32_t* lo, const std::int32_t* hi,
                                const std::uint32_t* wire, std::int64_t n, std::int32_t pos,
                                std::uint32_t self) {
  const __m256i vpos = _mm256_set1_epi32(pos);
  const __m256i vself = _mm256_set1_epi32(static_cast<std::int32_t>(self));
  std::int64_t last = -1;
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vlo = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lo + i));
    const __m256i vhi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hi + i));
    const __m256i vw = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(wire + i));
    const __m256i lo_gt = _mm256_cmpgt_epi32(vlo, vpos);     // lane starts past pos
    const __m256i pos_gt = _mm256_cmpgt_epi32(vpos, vhi);    // lane ends before pos
    const __m256i is_self = _mm256_cmpeq_epi32(vw, vself);
    __m256i cover = _mm256_andnot_si256(lo_gt, _mm256_andnot_si256(pos_gt, _mm256_set1_epi32(-1)));
    cover = _mm256_andnot_si256(is_self, cover);
    const std::uint32_t bits = mask_ps(cover);
    if (bits != 0) last = i + (31 - __builtin_clz(bits));
    // lo is ascending: once any lane starts past pos, later blocks cannot
    // cover it (and within this block those lanes were already masked off).
    if (mask_ps(lo_gt) != 0) return last;
  }
  for (; i < n; ++i) {
    if (lo[i] > pos) break;
    if (pos <= hi[i] && wire[i] != self) last = i;
  }
  return last;
}

std::int64_t find_rect_overlap_avx2(const std::int32_t* x0, const std::int32_t* x1,
                                    std::int64_t n, std::int64_t start, std::int32_t xlo,
                                    std::int32_t xhi) {
  const __m256i vxlo = _mm256_set1_epi32(xlo);
  const __m256i vxhi = _mm256_set1_epi32(xhi);
  std::int64_t i = start;
  for (; i + 8 <= n; i += 8) {
    const __m256i v0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x0 + i));
    const __m256i v1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x1 + i));
    const __m256i past = _mm256_cmpgt_epi32(v0, vxhi);   // x0 > xhi: stop lane
    const __m256i miss = _mm256_cmpgt_epi32(vxlo, v1);   // x1 < xlo: skip lane
    const __m256i hit = _mm256_andnot_si256(past, _mm256_andnot_si256(miss, _mm256_set1_epi32(-1)));
    const std::uint32_t hit_bits = mask_ps(hit);
    const std::uint32_t past_bits = mask_ps(past);
    if (hit_bits != 0) {
      const std::int64_t idx = i + __builtin_ctz(hit_bits);
      // A hit counts only if it precedes the first stopped lane.
      if (past_bits == 0 || __builtin_ctz(hit_bits) < __builtin_ctz(past_bits)) return idx;
    }
    if (past_bits != 0) return -1;
  }
  for (; i < n; ++i) {
    if (x0[i] > xhi) return -1;
    if (x1[i] >= xlo) return i;
  }
  return -1;
}

/// 64-bit a * kFnvPrime per lane via 32x32 cross products (AVX2 has no
/// vpmullq): lo = aL*pL, cross = (aH*pL + aL*pH) << 32.
inline __m256i mul_fnv_prime(__m256i a) {
  constexpr std::uint64_t kPrime = 1099511628211ull;  // 0x100000001B3
  const __m256i p = _mm256_set1_epi64x(static_cast<long long>(kPrime));
  const __m256i p_hi = _mm256_srli_epi64(p, 32);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i lo = _mm256_mul_epu32(a, p);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(a_hi, p), _mm256_mul_epu32(a, p_hi));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

void fold_hashes4_avx2(const std::uint64_t* h, std::int64_t n, std::uint64_t lanes[4]) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  __m256i acc = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lanes));
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_prefetch(reinterpret_cast<const char*>(h + i + 16), _MM_HINT_T0);
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    acc = mul_fnv_prime(_mm256_xor_si256(acc, v));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  for (int j = 0; i < n; ++i, ++j) lanes[j] = (lanes[j] ^ h[i]) * kPrime;
}

void deinterleave4_avx2(const std::int32_t* in, std::int64_t n, std::int32_t* a,
                        std::int32_t* b, std::int32_t* c, std::int32_t* d) {
  const __m256i gather = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm_prefetch(reinterpret_cast<const char*>(in + 4 * i + 64), _MM_HINT_T0);
    // Each 256-bit load holds two whole records, one per 128-bit lane.
    const __m256i r01 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4 * i));
    const __m256i r23 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4 * i + 8));
    const __m256i r45 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4 * i + 16));
    const __m256i r67 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + 4 * i + 24));
    // Per-lane 32-bit unpacks pair fields of records 2 apart...
    const __m256i t0 = _mm256_unpacklo_epi32(r01, r23);  // a0 a2 b0 b2 | a1 a3 b1 b3
    const __m256i t1 = _mm256_unpackhi_epi32(r01, r23);  // c0 c2 d0 d2 | c1 c3 d1 d3
    const __m256i t2 = _mm256_unpacklo_epi32(r45, r67);  // a4 a6 b4 b6 | a5 a7 b5 b7
    const __m256i t3 = _mm256_unpackhi_epi32(r45, r67);  // c4 c6 d4 d6 | c5 c7 d5 d7
    // ...64-bit unpacks gather one field per vector, stride-2 interleaved...
    const __m256i av = _mm256_unpacklo_epi64(t0, t2);  // a0 a2 a4 a6 | a1 a3 a5 a7
    const __m256i bv = _mm256_unpackhi_epi64(t0, t2);
    const __m256i cv = _mm256_unpacklo_epi64(t1, t3);
    const __m256i dv = _mm256_unpackhi_epi64(t1, t3);
    // ...and a cross-lane permute restores record order.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i),
                        _mm256_permutevar8x32_epi32(av, gather));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + i),
                        _mm256_permutevar8x32_epi32(bv, gather));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(c + i),
                        _mm256_permutevar8x32_epi32(cv, gather));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i),
                        _mm256_permutevar8x32_epi32(dv, gather));
  }
  for (; i < n; ++i) {
    a[i] = in[4 * i + 0];
    b[i] = in[4 * i + 1];
    c[i] = in[4 * i + 2];
    d[i] = in[4 * i + 3];
  }
}

}  // namespace

const KernelTable kAvx2Table = {
    &count_seg_conflicts_avx2, &count_via_conflicts_avx2, &find_covering_avx2,
    &find_rect_overlap_avx2,   &fold_hashes4_avx2,        &deinterleave4_avx2,
};

}  // namespace starlay::layout::kernels

#endif  // STARLAY_KERNELS_AVX2
