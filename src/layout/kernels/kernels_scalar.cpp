// Scalar reference kernels.  Every SIMD variant must match these bit for
// bit; tests/kernels_test.cpp enforces it exhaustively on small buckets.
// The loops are written branch-light (mask arithmetic, no early stores) so
// the scalar fallback is itself respectable on non-x86 hosts.

#include "kernels_internal.hpp"

namespace starlay::layout::kernels {
namespace {

std::int64_t count_seg_conflicts_scalar(const std::int32_t* line, const std::int32_t* lo,
                                        const std::int32_t* hi, std::int64_t n) {
  std::int64_t conflicts = 0;
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    conflicts += static_cast<std::int64_t>(line[i] == line[i + 1] && lo[i + 1] <= hi[i]);
  }
  return conflicts;
}

std::int64_t count_via_conflicts_scalar(const std::int32_t* x, const std::int32_t* y,
                                        const std::int32_t* zlo, const std::int32_t* zhi,
                                        const std::uint32_t* wire, std::int64_t n) {
  std::int64_t conflicts = 0;
  for (std::int64_t i = 0; i + 1 < n; ++i) {
    const bool same_column = x[i] == x[i + 1] && y[i] == y[i + 1];
    const bool z_meet = zlo[i] <= zhi[i + 1] && zlo[i + 1] <= zhi[i];
    conflicts += static_cast<std::int64_t>(same_column && z_meet && wire[i] != wire[i + 1]);
  }
  return conflicts;
}

std::int64_t find_covering_scalar(const std::int32_t* lo, const std::int32_t* hi,
                                  const std::uint32_t* wire, std::int64_t n, std::int32_t pos,
                                  std::uint32_t self) {
  std::int64_t last = -1;
  for (std::int64_t i = 0; i < n; ++i) {
    if (lo[i] > pos) break;  // lo ascending: nothing further can cover pos
    if (pos <= hi[i] && wire[i] != self) last = i;
  }
  return last;
}

std::int64_t find_rect_overlap_scalar(const std::int32_t* x0, const std::int32_t* x1,
                                      std::int64_t n, std::int64_t start, std::int32_t xlo,
                                      std::int32_t xhi) {
  for (std::int64_t i = start; i < n; ++i) {
    if (x0[i] > xhi) return -1;  // x0 ascending: past the query window
    if (x1[i] >= xlo) return i;
  }
  return -1;
}

void fold_hashes4_scalar(const std::uint64_t* h, std::int64_t n, std::uint64_t lanes[4]) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    lanes[0] = (lanes[0] ^ h[i + 0]) * kPrime;
    lanes[1] = (lanes[1] ^ h[i + 1]) * kPrime;
    lanes[2] = (lanes[2] ^ h[i + 2]) * kPrime;
    lanes[3] = (lanes[3] ^ h[i + 3]) * kPrime;
  }
  for (int j = 0; i < n; ++i, ++j) lanes[j] = (lanes[j] ^ h[i]) * kPrime;
}

void deinterleave4_scalar(const std::int32_t* in, std::int64_t n, std::int32_t* a,
                          std::int32_t* b, std::int32_t* c, std::int32_t* d) {
  for (std::int64_t i = 0; i < n; ++i) {
    a[i] = in[4 * i + 0];
    b[i] = in[4 * i + 1];
    c[i] = in[4 * i + 2];
    d[i] = in[4 * i + 3];
  }
}

}  // namespace

const KernelTable kScalarTable = {
    &count_seg_conflicts_scalar, &count_via_conflicts_scalar, &find_covering_scalar,
    &find_rect_overlap_scalar,   &fold_hashes4_scalar,        &deinterleave4_scalar,
};

}  // namespace starlay::layout::kernels
