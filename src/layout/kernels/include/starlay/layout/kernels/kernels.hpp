// Vectorized certification kernels with runtime CPU dispatch.
//
// The certifier's hot loops (adjacent-overlap scans over counting-sorted
// segment buckets, via conflict scans, pierce probes, rect-index scans, and
// the fingerprint fold) all reduce to branchless sweeps over packed int32
// SoA arrays.  This layer provides one scalar and up to two x86 variants
// (SSE4.2, AVX2) of each sweep behind a function-pointer table.  The level
// is picked once at startup from CPUID, overridable with
//
//   STARLAY_SIMD=scalar|sse4|avx2
//
// (requests above what the CPU or build supports clamp down, so forcing
// avx2 on a non-x86 host degrades gracefully to scalar).  Every variant of
// every kernel computes bit-identical results; the equivalence is enforced
// by tests/kernels_test.cpp and by the scalar-vs-SIMD metamorphic relation.
//
// Kernels only *count* or *locate* — they never build error strings.  The
// callers run a vectorized count pass first and materialize messages with a
// scalar re-scan only over the rare buckets that reported conflicts, so the
// clean-layout fast path allocates nothing.

#pragma once

#include <cstdint>

namespace starlay::layout::kernels {

enum class SimdLevel : int {
  kScalar = 0,
  kSSE4 = 1,
  kAVX2 = 2,
};

/// Pierce-probe window: callers binary-search the lo-ascending line run for
/// the first segment with lo > pos, then hand find_covering only the last
/// kCoverWindow candidates before that point.  Track exclusivity bounds how
/// many same-line spans can reach any single grid point, so the window is
/// exact on layouts the rest of the validator accepts; both the materialized
/// validator and the streaming certifier must use this same constant or
/// their verdicts drift on pathological inputs.
inline constexpr std::int64_t kCoverWindow = 16;

/// "scalar" | "sse4" | "avx2".
const char* level_name(SimdLevel level);

/// One implementation of every kernel.  All variants are bit-identical.
struct KernelTable {
  /// Counts adjacent conflicting pairs (i, i+1) for i in [0, n-1):
  /// line[i] == line[i+1] && lo[i+1] <= hi[i].  Arrays hold one bucket of
  /// the SegmentIndex in canonical (line, lo, hi, wire) order, so a
  /// conflict between *any* two same-line segments always shows up on an
  /// adjacent pair.
  std::int64_t (*count_seg_conflicts)(const std::int32_t* line, const std::int32_t* lo,
                                      const std::int32_t* hi, std::int64_t n);

  /// Counts adjacent via pairs (i, i+1) in (x, y, zlo, zhi, wire) order that
  /// collide: same column, different wire, intersecting z-intervals.
  std::int64_t (*count_via_conflicts)(const std::int32_t* x, const std::int32_t* y,
                                      const std::int32_t* zlo, const std::int32_t* zhi,
                                      const std::uint32_t* wire, std::int64_t n);

  /// Pierce probe: index of the LAST segment in a line run (lo ascending)
  /// with lo[i] <= pos <= hi[i] && wire[i] != self, or -1.  "Last" matches
  /// the materialized message of the pre-kernel validator, which reported
  /// the covering segment with the greatest span start.
  std::int64_t (*find_covering)(const std::int32_t* lo, const std::int32_t* hi,
                                const std::uint32_t* wire, std::int64_t n, std::int32_t pos,
                                std::uint32_t self);

  /// Rect-index scan: first i >= start with x0[i] <= xhi && x1[i] >= xlo,
  /// or -1.  x0 is ascending, so the scan stops at the first x0 > xhi.
  std::int64_t (*find_rect_overlap)(const std::int32_t* x0, const std::int32_t* x1,
                                    std::int64_t n, std::int64_t start, std::int32_t xlo,
                                    std::int32_t xhi);

  /// FNV-1a fold of n 64-bit hashes into 4 independent lanes, round-robin:
  /// lanes[i % 4] = (lanes[i % 4] ^ h[i]) * kFnvPrime.  Lanes are in/out so
  /// large streams fold in blocks (keep block sizes a multiple of 4 to
  /// preserve the lane phase).
  void (*fold_hashes4)(const std::uint64_t* h, std::int64_t n, std::uint64_t lanes[4]);

  /// Stride-4 AoS -> SoA transpose: for each record i in [0, n),
  /// a[i] = in[4i], b[i] = in[4i+1], c[i] = in[4i+2], d[i] = in[4i+3].
  /// The SegmentIndex's 16-byte PackedSeg records split into the four SoA
  /// arrays the other kernels consume; the destinations must not alias the
  /// source.
  void (*deinterleave4)(const std::int32_t* in, std::int64_t n, std::int32_t* a,
                        std::int32_t* b, std::int32_t* c, std::int32_t* d);
};

/// True when the variant was compiled into this binary (x86 + STARLAY_SIMD).
bool level_compiled(SimdLevel level);

/// True when the variant is compiled in *and* the CPU can run it.
bool level_supported(SimdLevel level);

/// The level in effect: forced override if set, else STARLAY_SIMD env (read
/// once), else the best CPU-supported compiled level.
SimdLevel active_level();

/// Table for an explicit level; REQUIREs level_supported(level).  Lets the
/// equivalence tests and the kernel bench drive every variant in-process.
const KernelTable& table(SimdLevel level);

/// Table for active_level().
const KernelTable& active();

/// RAII override of active_level() for tests/metamorphic relations.  The
/// requested level clamps down to the best supported one, mirroring the env
/// variable's graceful-fallback contract.
class ScopedForcedLevel {
 public:
  explicit ScopedForcedLevel(SimdLevel level);
  ~ScopedForcedLevel();
  ScopedForcedLevel(const ScopedForcedLevel&) = delete;
  ScopedForcedLevel& operator=(const ScopedForcedLevel&) = delete;

  /// The level actually in effect after clamping.
  SimdLevel effective() const { return effective_; }

 private:
  int prev_;
  SimdLevel effective_;
};

}  // namespace starlay::layout::kernels
