// Internal glue between the per-ISA translation units and the dispatcher.
// Each variant TU defines one table; dispatch.cpp links whichever ones the
// build compiled in (STARLAY_KERNELS_SSE4 / STARLAY_KERNELS_AVX2).

#pragma once

#include "starlay/layout/kernels/kernels.hpp"

namespace starlay::layout::kernels {

extern const KernelTable kScalarTable;
#if defined(STARLAY_KERNELS_SSE4)
extern const KernelTable kSse4Table;
#endif
#if defined(STARLAY_KERNELS_AVX2)
extern const KernelTable kAvx2Table;
#endif

}  // namespace starlay::layout::kernels
