#include "starlay/layout/placement.hpp"

#include <unordered_set>

#include "starlay/support/math.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::layout {

void Placement::check(std::int32_t num_vertices) const {
  STARLAY_REQUIRE(rows > 0 && cols > 0, "Placement: empty grid");
  STARLAY_REQUIRE(static_cast<std::int32_t>(slot.size()) == num_vertices,
                  "Placement: slot table size mismatch");
  if (num_slots() <= 4 * static_cast<std::int64_t>(slot.size()) + 4096) {
    // Dense grids (every real placement): one byte per slot beats hashing.
    std::vector<std::uint8_t> used(static_cast<std::size_t>(num_slots()), 0);
    for (std::int64_t s : slot) {
      STARLAY_REQUIRE(s >= 0 && s < num_slots(), "Placement: slot out of range");
      STARLAY_REQUIRE(!used[static_cast<std::size_t>(s)]++, "Placement: duplicate slot");
    }
    return;
  }
  std::unordered_set<std::int64_t> used;
  used.reserve(slot.size() * 2);
  for (std::int64_t s : slot) {
    STARLAY_REQUIRE(s >= 0 && s < num_slots(), "Placement: slot out of range");
    STARLAY_REQUIRE(used.insert(s).second, "Placement: duplicate slot");
  }
}

Placement row_major_placement(std::int32_t num_vertices) {
  STARLAY_REQUIRE(num_vertices >= 1, "row_major_placement: need >= 1 vertex");
  const auto f = starlay::grid_factors(num_vertices);
  return grid_placement(num_vertices, f.rows, f.cols);
}

Placement grid_placement(std::int32_t num_vertices, std::int32_t rows, std::int32_t cols) {
  STARLAY_REQUIRE(static_cast<std::int64_t>(rows) * cols >= num_vertices,
                  "grid_placement: grid too small");
  Placement p;
  p.rows = rows;
  p.cols = cols;
  p.slot.resize(static_cast<std::size_t>(num_vertices));
  for (std::int32_t v = 0; v < num_vertices; ++v) p.slot[static_cast<std::size_t>(v)] = v;
  return p;
}

Placement collinear_placement(std::int32_t num_vertices) {
  return grid_placement(num_vertices, 1, num_vertices);
}

Placement hierarchical_placement(const std::vector<std::vector<std::int32_t>>& digit_paths,
                                 const std::vector<LevelShape>& shapes) {
  STARLAY_REQUIRE(!shapes.empty(), "hierarchical_placement: no level shapes");
  const std::size_t levels = shapes.size();
  std::vector<std::int32_t> flat;
  flat.reserve(digit_paths.size() * levels);
  for (const auto& path : digit_paths) {
    STARLAY_REQUIRE(path.size() == levels, "hierarchical_placement: path length mismatch");
    flat.insert(flat.end(), path.begin(), path.end());
  }
  return hierarchical_placement(flat.data(), static_cast<std::int32_t>(levels),
                                static_cast<std::int64_t>(digit_paths.size()), shapes);
}

Placement hierarchical_placement(const std::int32_t* digits, std::int32_t stride,
                                 std::int64_t count, const std::vector<LevelShape>& shapes) {
  support::telemetry::ScopedPhase phase("placement");
  STARLAY_REQUIRE(!shapes.empty(), "hierarchical_placement: no level shapes");
  STARLAY_REQUIRE(stride == static_cast<std::int32_t>(shapes.size()),
                  "hierarchical_placement: stride must equal the level count");
  const std::size_t levels = shapes.size();
  // Row/column strides: stride of level j = product of finer levels' extents.
  std::vector<std::int64_t> row_stride(levels, 1), col_stride(levels, 1);
  for (std::size_t j = levels; j-- > 0;) {
    if (j + 1 < levels) {
      row_stride[j] = row_stride[j + 1] * shapes[j + 1].rows;
      col_stride[j] = col_stride[j + 1] * shapes[j + 1].cols;
    }
  }
  std::int64_t total_rows = row_stride[0] * shapes[0].rows;
  std::int64_t total_cols = col_stride[0] * shapes[0].cols;
  STARLAY_REQUIRE(total_rows * total_cols < (std::int64_t{1} << 62),
                  "hierarchical_placement: grid overflow");

  // Stamp each level's block-local slot geometry once: digit d of level j
  // always shifts the final slot by the same amount, so the per-vertex
  // inner loop collapses to `levels` table lookups and adds — no div/mod,
  // no per-level row/col bookkeeping.
  std::vector<std::vector<std::int64_t>> contrib(levels);
  for (std::size_t j = 0; j < levels; ++j) {
    const std::int32_t extent = shapes[j].rows * shapes[j].cols;
    contrib[j].resize(static_cast<std::size_t>(extent));
    for (std::int32_t d = 0; d < extent; ++d)
      contrib[j][static_cast<std::size_t>(d)] =
          (d / shapes[j].cols) * row_stride[j] * total_cols +
          (d % shapes[j].cols) * col_stride[j];
  }

  Placement p;
  p.rows = static_cast<std::int32_t>(total_rows);
  p.cols = static_cast<std::int32_t>(total_cols);
  p.slot.resize(static_cast<std::size_t>(count));
  support::parallel_for(0, count, 8192, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
    for (std::int64_t v = lo; v < hi; ++v) {
      const std::int32_t* path = digits + v * stride;
      std::int64_t slot = 0;
      for (std::size_t j = 0; j < levels; ++j) {
        const std::int32_t d = path[j];
        STARLAY_REQUIRE(d >= 0 && d < static_cast<std::int32_t>(contrib[j].size()),
                        "hierarchical_placement: digit out of range");
        slot += contrib[j][static_cast<std::size_t>(d)];
      }
      p.slot[static_cast<std::size_t>(v)] = slot;
    }
  });
  p.check(static_cast<std::int32_t>(count));
  return p;
}

}  // namespace starlay::layout
