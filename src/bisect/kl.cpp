#include <algorithm>
#include <numeric>
#include <random>

#include "starlay/bisect/bisect.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::bisect {

namespace {

constexpr std::int64_t kVertexGrain = 64;

}  // namespace

/// One KL pass: repeatedly swap the best (unlocked) pair across the cut,
/// tracking the best prefix of the swap sequence.
std::int64_t kl_refine_pass(const topology::Graph& g, std::vector<std::uint8_t>& side) {
  support::telemetry::ScopedPhase phase("bisect.kl_pass");
  const std::int32_t n = g.num_vertices();
  // D-values: external - internal cost per vertex.  Expressed per vertex
  // over its own adjacency (instead of scattering over the edge list) so
  // chunks write disjoint D slots.
  std::vector<std::int64_t> D(static_cast<std::size_t>(n), 0);
  const auto recompute_d = [&]() {
    support::parallel_for(0, n, kVertexGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t v = lo; v < hi; ++v) {
        std::int64_t d = 0;
        for (std::int32_t w : g.neighbors(static_cast<std::int32_t>(v)))
          d += side[static_cast<std::size_t>(w)] != side[static_cast<std::size_t>(v)] ? 1 : -1;
        D[static_cast<std::size_t>(v)] = d;
      }
    });
  };
  recompute_d();

  struct Best {
    std::int64_t gain = std::numeric_limits<std::int64_t>::min();
    std::int32_t a = -1, b = -1;
  };
  std::vector<std::uint8_t> locked(static_cast<std::size_t>(n), 0);
  std::vector<std::pair<std::int32_t, std::int32_t>> swaps;
  std::vector<std::int64_t> gains;
  const std::int32_t pairs = n / 2;
  for (std::int32_t round = 0; round < pairs; ++round) {
    // Gain scan, chunked over the `a` side.  Each chunk keeps the first
    // strictly-best pair in (a, b) scan order; merging chunks in ascending
    // order reproduces the serial argmax exactly for any thread count.
    const std::int64_t chunks = support::num_chunks(0, n, kVertexGrain);
    std::vector<Best> chunk_best(static_cast<std::size_t>(chunks));
    support::parallel_for(0, n, kVertexGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
      Best best;
      for (std::int64_t a = lo; a < hi; ++a) {
        if (locked[static_cast<std::size_t>(a)] || side[static_cast<std::size_t>(a)] != 0)
          continue;
        for (std::int32_t b = 0; b < n; ++b) {
          if (locked[static_cast<std::size_t>(b)] || side[static_cast<std::size_t>(b)] != 1)
            continue;
          std::int64_t w_ab = 0;
          for (std::int32_t w : g.neighbors(static_cast<std::int32_t>(a)))
            if (w == b) ++w_ab;
          const std::int64_t gain = D[static_cast<std::size_t>(a)] +
                                    D[static_cast<std::size_t>(b)] - 2 * w_ab;
          if (gain > best.gain) {
            best.gain = gain;
            best.a = static_cast<std::int32_t>(a);
            best.b = b;
          }
        }
      }
      chunk_best[static_cast<std::size_t>(chunk)] = best;
    });
    std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
    std::int32_t ba = -1, bb = -1;
    for (const Best& cb : chunk_best) {
      if (cb.a >= 0 && cb.gain > best_gain) {
        best_gain = cb.gain;
        ba = cb.a;
        bb = cb.b;
      }
    }
    if (ba < 0) break;
    // Tentatively swap and update D-values.
    side[static_cast<std::size_t>(ba)] = 1;
    side[static_cast<std::size_t>(bb)] = 0;
    locked[static_cast<std::size_t>(ba)] = locked[static_cast<std::size_t>(bb)] = 1;
    recompute_d();
    swaps.push_back({ba, bb});
    gains.push_back(best_gain);
  }
  support::telemetry::count("bisect.swaps", static_cast<std::int64_t>(swaps.size()));
  // Best prefix of cumulative gains.
  std::int64_t cum = 0, best_cum = 0;
  std::size_t best_k = 0;
  for (std::size_t k = 0; k < gains.size(); ++k) {
    cum += gains[k];
    if (cum > best_cum) {
      best_cum = cum;
      best_k = k + 1;
    }
  }
  // Undo swaps beyond the best prefix.
  for (std::size_t k = gains.size(); k-- > best_k;) {
    side[static_cast<std::size_t>(swaps[k].first)] = 0;
    side[static_cast<std::size_t>(swaps[k].second)] = 1;
  }
  return best_cum;
}

std::int64_t kl_refine(const topology::Graph& g, std::vector<std::uint8_t>& side,
                       int max_passes) {
  STARLAY_REQUIRE(max_passes >= 1, "kl_refine: max_passes >= 1");
  std::int64_t total = 0;
  for (int p = 0; p < max_passes; ++p) {
    const std::int64_t gain = kl_refine_pass(g, side);
    if (gain <= 0) break;
    total += gain;
  }
  return total;
}

BisectionResult kernighan_lin_bisection(const topology::Graph& g, int restarts) {
  const std::int32_t n = g.num_vertices();
  STARLAY_REQUIRE(n >= 2, "kernighan_lin_bisection: need >= 2 vertices");
  STARLAY_REQUIRE(restarts >= 1, "kernighan_lin_bisection: restarts >= 1");

  BisectionResult best;
  best.width = g.num_edges() + 1;
  for (int r = 0; r < restarts; ++r) {
    std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 0);
    std::vector<std::int32_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::mt19937 rng(static_cast<std::uint32_t>(0x9e3779b9u + 0x85ebca6bu * static_cast<std::uint32_t>(r)));
    std::shuffle(order.begin(), order.end(), rng);
    for (std::int32_t i = n / 2; i < n; ++i)
      side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 1;

    while (kl_refine_pass(g, side) > 0) {
    }
    const std::int64_t cut = partition_cut(g, side);
    if (cut < best.width) {
      best.width = cut;
      best.side = side;
    }
  }
  return best;
}

}  // namespace starlay::bisect
