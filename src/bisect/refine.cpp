#include "starlay/bisect/refine.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "starlay/bisect/bisect.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::bisect {

namespace {

namespace tel = starlay::support::telemetry;

constexpr std::int64_t kEdgeGrain = 8192;
constexpr std::int64_t kPairGrain = 1;  // each pair scans two whole columns

std::int64_t energy_of(const topology::Graph& g, const std::vector<std::int32_t>& vrow,
                       const std::vector<std::int32_t>& vcol) {
  const std::int64_t E = g.num_edges();
  const std::int64_t chunks = support::num_chunks(0, E, kEdgeGrain);
  std::vector<std::int64_t> partial(static_cast<std::size_t>(chunks), 0);
  support::parallel_for(0, E, kEdgeGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::int64_t sum = 0;
    for (std::int64_t e = lo; e < hi; ++e) {
      const auto& ed = g.edge(e);
      sum += std::abs(vcol[static_cast<std::size_t>(ed.u)] - vcol[static_cast<std::size_t>(ed.v)]);
      sum += std::abs(vrow[static_cast<std::size_t>(ed.u)] - vrow[static_cast<std::size_t>(ed.v)]);
    }
    partial[static_cast<std::size_t>(chunk)] = sum;
  });
  std::int64_t total = 0;
  for (std::int64_t s : partial) total += s;
  return total;
}

void refresh_coords(const layout::Placement& p, std::vector<std::int32_t>& vrow,
                    std::vector<std::int32_t>& vcol) {
  for (std::size_t v = 0; v < p.slot.size(); ++v) {
    vrow[v] = p.row_of(static_cast<std::int32_t>(v));
    vcol[v] = p.col_of(static_cast<std::int32_t>(v));
  }
}

/// Vertices grouped by \p coord (column or row index), vertex-id order
/// within each group — a counting sort, rebuilt per phase.
struct Groups {
  std::vector<std::int32_t> start;  // group -> first index in order
  std::vector<std::int32_t> order;  // concatenated group members

  void build(const std::vector<std::int32_t>& coord, std::int32_t num_groups) {
    start.assign(static_cast<std::size_t>(num_groups) + 1, 0);
    order.resize(coord.size());
    for (std::int32_t c : coord) ++start[static_cast<std::size_t>(c) + 1];
    for (std::size_t i = 1; i < start.size(); ++i) start[i] += start[i - 1];
    std::vector<std::int32_t> cursor(start.begin(), start.end() - 1);
    for (std::size_t v = 0; v < coord.size(); ++v)
      order[static_cast<std::size_t>(cursor[static_cast<std::size_t>(coord[v])]++)] =
          static_cast<std::int32_t>(v);
  }
};

}  // namespace

std::int64_t placement_energy(const topology::Graph& g, const layout::Placement& p) {
  p.check(g.num_vertices());
  const std::int32_t V = g.num_vertices();
  std::vector<std::int32_t> vrow(static_cast<std::size_t>(V)), vcol(static_cast<std::size_t>(V));
  refresh_coords(p, vrow, vcol);
  return energy_of(g, vrow, vcol);
}

RefineStats refine_placement(const topology::Graph& g, layout::Placement& p,
                             const RefineOptions& opt) {
  tel::ScopedPhase phase("bisect.refine");
  p.check(g.num_vertices());
  const std::int32_t V = g.num_vertices();
  RefineStats st;
  if (V == 0 || g.num_edges() == 0) return st;

  std::vector<std::int32_t> vrow(static_cast<std::size_t>(V)), vcol(static_cast<std::size_t>(V));
  refresh_coords(p, vrow, vcol);
  std::int64_t energy = energy_of(g, vrow, vcol);
  st.energy_before = energy;

  // ---- KL seeding -----------------------------------------------------------
  // Slice the placement at its median column, let the KL oracle improve the
  // cut, and realize the improved partition by swapping the slots of the
  // matched flipped pairs (KL swaps across the cut, so the two flip sets
  // have equal size).  Kept only if the realized energy drops: a smaller
  // median cut usually, but not always, means shorter horizontal runs.
  if (V >= 4 && V <= opt.kl_max_vertices && opt.kl_passes >= 1) {
    const BisectionResult slice = layout_slice_bisection(g, p);
    std::vector<std::uint8_t> side = slice.side;
    kl_refine(g, side, opt.kl_passes);
    std::vector<std::int32_t> flip0, flip1;  // 0 -> 1, 1 -> 0, ascending ids
    for (std::int32_t v = 0; v < V; ++v) {
      if (slice.side[static_cast<std::size_t>(v)] == side[static_cast<std::size_t>(v)]) continue;
      (slice.side[static_cast<std::size_t>(v)] == 0 ? flip0 : flip1).push_back(v);
    }
    if (!flip0.empty() && flip0.size() == flip1.size()) {
      std::vector<std::int64_t> saved = p.slot;
      for (std::size_t i = 0; i < flip0.size(); ++i)
        std::swap(p.slot[static_cast<std::size_t>(flip0[i])],
                  p.slot[static_cast<std::size_t>(flip1[i])]);
      refresh_coords(p, vrow, vcol);
      const std::int64_t seeded = energy_of(g, vrow, vcol);
      if (seeded < energy) {
        energy = seeded;
        st.kl_seeded = true;
        st.swaps_applied += static_cast<std::int64_t>(flip0.size());
      } else {
        p.slot = std::move(saved);
        refresh_coords(p, vrow, vcol);
      }
    }
  }

  // ---- Odd-even adjacent column/row sweeps -----------------------------------
  // Disjoint pairs, so per-pair gains (measured against the phase-start
  // placement) can be computed concurrently and applied serially in pair
  // order for a deterministic result.  Interactions between applied pairs
  // mean the realized energy is re-measured after each phase; the best
  // placement seen wins at the end.
  std::vector<std::int64_t> best_slots = p.slot;
  std::int64_t best_energy = energy;

  Groups groups;
  // \p by_col: pair adjacent columns (slot delta +-1) else rows (+-cols).
  const auto run_phase = [&](bool by_col, std::int32_t offset) -> std::int64_t {
    const std::int32_t extent = by_col ? p.cols : p.rows;
    const std::vector<std::int32_t>& coord = by_col ? vcol : vrow;
    if (extent < 2 || offset >= extent - 1) return 0;
    groups.build(coord, extent);
    const std::int64_t npairs = (extent - 1 - offset + 1) / 2;
    std::vector<std::int64_t> gain(static_cast<std::size_t>(npairs), 0);
    support::parallel_for(0, npairs, kPairGrain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      for (std::int64_t pi = lo; pi < hi; ++pi) {
        const std::int32_t c = offset + static_cast<std::int32_t>(pi) * 2;
        std::int64_t gsum = 0;
        for (std::int32_t half = 0; half < 2; ++half) {
          const std::int32_t from = c + half;
          const std::int32_t to = c + 1 - half;
          for (std::int32_t i = groups.start[static_cast<std::size_t>(from)];
               i < groups.start[static_cast<std::size_t>(from) + 1]; ++i) {
            const std::int32_t v = groups.order[static_cast<std::size_t>(i)];
            for (std::int32_t w : g.neighbors(v)) {
              const std::int32_t b = coord[static_cast<std::size_t>(w)];
              if (b == c || b == c + 1) continue;  // intra-pair: distance unchanged
              gsum += std::abs(from - b) - std::abs(to - b);
            }
          }
        }
        gain[static_cast<std::size_t>(pi)] = gsum;
      }
    });
    std::int64_t applied = 0;
    for (std::int64_t pi = 0; pi < npairs; ++pi) {
      if (gain[static_cast<std::size_t>(pi)] <= 0) continue;
      const std::int32_t c = offset + static_cast<std::int32_t>(pi) * 2;
      const std::int64_t delta = by_col ? 1 : p.cols;
      for (std::int32_t i = groups.start[static_cast<std::size_t>(c)];
           i < groups.start[static_cast<std::size_t>(c) + 1]; ++i)
        p.slot[static_cast<std::size_t>(groups.order[static_cast<std::size_t>(i)])] += delta;
      for (std::int32_t i = groups.start[static_cast<std::size_t>(c) + 1];
           i < groups.start[static_cast<std::size_t>(c) + 2]; ++i)
        p.slot[static_cast<std::size_t>(groups.order[static_cast<std::size_t>(i)])] -= delta;
      ++applied;
    }
    if (applied > 0) {
      refresh_coords(p, vrow, vcol);
      energy = energy_of(g, vrow, vcol);
      if (energy < best_energy) {
        best_energy = energy;
        best_slots = p.slot;
      }
    }
    return applied;
  };

  for (int sweep = 0; sweep < opt.max_sweeps; ++sweep) {
    std::int64_t applied = 0;
    applied += run_phase(/*by_col=*/true, 0);
    applied += run_phase(/*by_col=*/true, 1);
    applied += run_phase(/*by_col=*/false, 0);
    applied += run_phase(/*by_col=*/false, 1);
    st.swaps_applied += applied;
    if (applied == 0) break;
  }

  if (energy != best_energy) p.slot = std::move(best_slots);
  st.energy_after = best_energy;
  tel::count("refine.energy_saved", st.energy_before - st.energy_after);
  return st;
}

}  // namespace starlay::bisect
