#include <algorithm>

#include "starlay/bisect/bisect.hpp"
#include "starlay/support/check.hpp"

namespace starlay::bisect {

namespace {

/// DFS over assignments of vertices 0..N-1 to sides, vertex order as given.
/// The partial cut (edges with both endpoints assigned, on opposite sides)
/// is monotone in the assignment prefix, so "partial >= best" prunes.
class ExactSolver {
 public:
  explicit ExactSolver(const topology::Graph& g)
      : g_(g), n_(g.num_vertices()), side_(static_cast<std::size_t>(n_), 0) {
    // Adjacency restricted to already-assigned vertices: since we assign in
    // id order, neighbors with smaller id are assigned when v is placed.
    best_side_ = side_;
  }

  BisectionResult solve() {
    const std::int32_t size0 = n_ / 2;
    const std::int32_t size1 = n_ - size0;
    best_ = g_.num_edges() + 1;
    side_[0] = 0;  // WLOG
    dfs(1, 1, 0, size0, size1, 0);
    return {best_, best_side_};
  }

 private:
  void dfs(std::int32_t v, std::int32_t c0, std::int32_t c1, std::int32_t size0,
           std::int32_t size1, std::int64_t cut) {
    if (cut >= best_) return;
    if (v == n_) {
      best_ = cut;
      best_side_ = side_;
      return;
    }
    // Remaining capacity check.
    const std::int32_t remaining = n_ - v;
    if (c0 + remaining < size0 || c1 + remaining < size1) return;

    for (std::uint8_t s : {std::uint8_t{0}, std::uint8_t{1}}) {
      if (s == 0 && c0 == size0) continue;
      if (s == 1 && c1 == size1) continue;
      std::int64_t delta = 0;
      for (std::size_t i = 0; i < g_.neighbors(v).size(); ++i) {
        const std::int32_t w = g_.neighbors(v)[i];
        if (w < v && side_[static_cast<std::size_t>(w)] != s) ++delta;
      }
      side_[static_cast<std::size_t>(v)] = s;
      dfs(v + 1, c0 + (s == 0 ? 1 : 0), c1 + (s == 1 ? 1 : 0), size0, size1, cut + delta);
    }
  }

  const topology::Graph& g_;
  std::int32_t n_;
  std::vector<std::uint8_t> side_;
  std::vector<std::uint8_t> best_side_;
  std::int64_t best_ = 0;
};

}  // namespace

BisectionResult exact_bisection(const topology::Graph& g) {
  STARLAY_REQUIRE(g.num_vertices() >= 2, "exact_bisection: need >= 2 vertices");
  STARLAY_REQUIRE(g.num_vertices() <= 32,
                  "exact_bisection: too large; use kernighan_lin_bisection");
  return ExactSolver(g).solve();
}

std::int64_t partition_cut(const topology::Graph& g, const std::vector<std::uint8_t>& side) {
  STARLAY_REQUIRE(static_cast<std::int32_t>(side.size()) == g.num_vertices(),
                  "partition_cut: side size mismatch");
  std::int64_t cut = 0;
  for (const auto& e : g.edges())
    if (side[static_cast<std::size_t>(e.u)] != side[static_cast<std::size_t>(e.v)]) ++cut;
  return cut;
}

}  // namespace starlay::bisect
