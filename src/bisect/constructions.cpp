#include <algorithm>
#include <numeric>

#include "starlay/bisect/bisect.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::bisect {

BisectionResult layout_slice_bisection(const topology::Graph& g, const layout::Placement& p) {
  const std::int32_t n = g.num_vertices();
  p.check(n);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    if (p.col_of(a) != p.col_of(b)) return p.col_of(a) < p.col_of(b);
    return p.row_of(a) < p.row_of(b);
  });
  BisectionResult res;
  res.side.assign(static_cast<std::size_t>(n), 1);
  for (std::int32_t i = 0; i < n / 2; ++i)
    res.side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 0;
  res.width = partition_cut(g, res.side);
  return res;
}

BisectionResult layout_slice_bisection(const topology::Graph& g, const layout::Layout& lay) {
  const std::int32_t n = g.num_vertices();
  STARLAY_REQUIRE(lay.num_nodes() == n, "layout_slice_bisection: node count mismatch");
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const layout::Rect& ra = lay.node_rect(a);
    const layout::Rect& rb = lay.node_rect(b);
    if (ra.x0 != rb.x0) return ra.x0 < rb.x0;
    return ra.y0 < rb.y0;
  });
  BisectionResult res;
  res.side.assign(static_cast<std::size_t>(n), 1);
  for (std::int32_t i = 0; i < n / 2; ++i)
    res.side[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = 0;
  res.width = partition_cut(g, res.side);
  return res;
}

BisectionResult hcn_cluster_bisection(const topology::Graph& g, int h) {
  const std::int32_t M = std::int32_t{1} << h;
  STARLAY_REQUIRE(g.num_vertices() == M * M, "hcn_cluster_bisection: size mismatch");
  STARLAY_REQUIRE(h >= 2, "hcn_cluster_bisection: need M >= 4 clusters");
  BisectionResult res;
  res.side.assign(static_cast<std::size_t>(M) * M, 1);
  for (std::int32_t c = 0; c < M; ++c) {
    const bool side0 = c < M / 4 || c >= 3 * M / 4;
    if (!side0) continue;
    for (std::int32_t x = 0; x < M; ++x)
      res.side[static_cast<std::size_t>(topology::hcn_vertex(h, c, x))] = 0;
  }
  res.width = partition_cut(g, res.side);
  return res;
}

BisectionResult star_substar_bisection(const topology::Graph& g, int n) {
  STARLAY_REQUIRE(g.num_vertices() == starlay::factorial(n),
                  "star_substar_bisection: size mismatch");
  STARLAY_REQUIRE(n % 2 == 0, "star_substar_bisection: balanced only for even n "
                              "(the paper's Theorem 4.1 remark)");
  BisectionResult res;
  res.side.assign(static_cast<std::size_t>(g.num_vertices()), 1);
  for (std::int64_t r = 0; r < g.num_vertices(); ++r) {
    const topology::Perm p = topology::perm_unrank(r, n);
    if (p[static_cast<std::size_t>(n - 1)] <= n / 2) res.side[static_cast<std::size_t>(r)] = 0;
  }
  res.width = partition_cut(g, res.side);
  return res;
}

}  // namespace starlay::bisect
