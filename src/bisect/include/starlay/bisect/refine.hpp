#pragma once
/// \file refine.hpp
/// \brief Iterative placement refiner: swap-based wirelength-energy
///        minimization over a slot grid, seeded from the KL bisection
///        oracle (kl_refine_pass) when the graph is small enough.
///
/// The energy is the half-perimeter wirelength of the placement,
/// sum over edges of |col_u - col_v| + |row_u - row_v| — the standard
/// proxy the density-constrained placement literature minimizes, and a
/// direct driver of channel congestion in the grid router.
///
/// Two mechanisms, both deterministic for any STARLAY_THREADS:
///  * KL seeding (V <= kl_max_vertices): slice the placement at its median
///    column, improve the cut with Kernighan-Lin passes, then realize the
///    improved partition by swapping the slots of matched flipped-vertex
///    pairs.  Fewer edges across the median means shorter horizontal runs.
///    Kept only if the energy actually drops.
///  * Odd-even sweeps (any size): alternately consider every disjoint pair
///    of adjacent columns (then rows) and swap the pair's contents when the
///    energy gain — computed against the phase-start placement, in parallel
///    over pairs — is positive.  Cross-pair interactions can make the
///    realized energy differ from the predicted sum, so each phase is
///    re-measured and the best placement seen is what refine_placement
///    finally leaves in place.
///
/// The refiner never changes the set of occupied slot columns/rows (it
/// permutes whole columns/rows and slot pairs), so any placement invariant
/// of the form "the grid is rows x cols" is preserved; orientation metadata
/// derived from rows (RouteSpec) must be recomputed afterward — the pass
/// pipeline does this in its respec hook.

#include <cstdint>

#include "starlay/layout/placement.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::bisect {

struct RefineOptions {
  /// Full odd-even sweep rounds (each = 4 phases: even/odd column pairs,
  /// even/odd row pairs).  A sweep that applies no swap ends the loop early.
  int max_sweeps = 3;

  /// KL seeding is attempted only when num_vertices <= this; the oracle's
  /// gain scan is quadratic per swap round, so it prices out quickly.
  std::int32_t kl_max_vertices = 512;

  /// KL improvement passes over the median-column slice.
  int kl_passes = 2;
};

struct RefineStats {
  std::int64_t energy_before = 0;
  std::int64_t energy_after = 0;
  std::int64_t swaps_applied = 0;  ///< column/row pair swaps + KL slot swaps
  bool kl_seeded = false;          ///< a KL-improved partition was kept
};

/// Half-perimeter wirelength of \p p over the edges of \p g.
/// Requires a finalized graph (edge list) and p.check(g.num_vertices()).
std::int64_t placement_energy(const topology::Graph& g, const layout::Placement& p);

/// Refines \p p in place toward lower placement_energy; never worsens it
/// (the best placement seen is restored at exit).  Requires g's adjacency
/// (neighbor queries drive the sweep gains).
RefineStats refine_placement(const topology::Graph& g, layout::Placement& p,
                             const RefineOptions& opt = {});

}  // namespace starlay::bisect
