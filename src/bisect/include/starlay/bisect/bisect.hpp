#pragma once
/// \file bisect.hpp
/// \brief Bisection-width computation (Section 4).
///
/// Three independent attacks, combined by the benches exactly as the paper
/// combines them:
///  * exact_bisection — branch-and-bound over balanced partitions; feasible
///    to ~30 vertices (covers the 4-star, K_m, HCN/HFN-16);
///  * kernighan_lin_bisection — multi-start KL heuristic (upper bounds);
///  * constructive partitions — the paper's cluster/substar cuts and the
///    cut induced by slicing an actual layout down its middle (the
///    upper-bound half of Theorems 4.1/4.2);
///  * the TE-throughput lower bound lives in core/formulas.hpp
///    (bisection_lb_batt), closing the sandwich.

#include <cstdint>
#include <vector>

#include "starlay/layout/layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::bisect {

struct BisectionResult {
  std::int64_t width = 0;
  std::vector<std::uint8_t> side;  ///< witness partition (0/1 per vertex)
};

/// Exact minimum balanced cut via DFS with partial-cut pruning.
/// Sides have sizes floor(N/2) and ceil(N/2); vertex 0 is pinned to side 0
/// (WLOG).  Throws if num_vertices > 32 (use the heuristic instead).
BisectionResult exact_bisection(const topology::Graph& g);

/// Kernighan-Lin with \p restarts random starts (deterministic seeds).
BisectionResult kernighan_lin_bisection(const topology::Graph& g, int restarts = 8);

/// One Kernighan-Lin improvement pass over an existing partition: repeatedly
/// swap the best unlocked pair across the cut, then keep the best prefix of
/// the swap sequence.  Mutates \p side in place and returns the cut-size
/// reduction achieved (>= 0).  This is the reusable refinement oracle behind
/// kernighan_lin_bisection and the placement refiner (refine.hpp); it is
/// deterministic for any STARLAY_THREADS.  Requires g's adjacency.
std::int64_t kl_refine_pass(const topology::Graph& g, std::vector<std::uint8_t>& side);

/// Runs kl_refine_pass until it stops improving, at most \p max_passes
/// times; returns the total cut reduction.
std::int64_t kl_refine(const topology::Graph& g, std::vector<std::uint8_t>& side,
                       int max_passes = 8);

/// Cut size of a given 0/1 partition (must be balanced to be a bisection).
std::int64_t partition_cut(const topology::Graph& g, const std::vector<std::uint8_t>& side);

/// The cut induced by slicing a placed layout at the median column:
/// vertices ordered by (col, row), first half vs rest.  This is the
/// "VLSI area => bisection upper bound" direction of Theorem 4.1.
BisectionResult layout_slice_bisection(const topology::Graph& g, const layout::Placement& p);

/// Same slice, but ordered by the node rectangles of a materialized layout
/// (x then y of each vertex's lower-left corner).  Lets builder-registry
/// consumers compute the witness without family-specific placement access.
BisectionResult layout_slice_bisection(const topology::Graph& g, const layout::Layout& lay);

/// Theorem 4.2's construction for HCN/HFN with 2^(2h) nodes: side 0 holds
/// clusters [0, M/4) and [3M/4, M), which confines every diameter link and
/// cuts exactly N/4 inter-cluster links.
BisectionResult hcn_cluster_bisection(const topology::Graph& g, int h);

/// Substar partition of the n-star: side 0 = the first floor(n/2)
/// (n-1)-substars (by last symbol).  Balanced only for even n; the paper
/// notes this gives N/4 * n/(n-1) > N/4, i.e. substar cuts are NOT optimal.
BisectionResult star_substar_bisection(const topology::Graph& g, int n);

}  // namespace starlay::bisect
