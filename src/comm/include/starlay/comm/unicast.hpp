#pragma once
/// \file unicast.hpp
/// \brief BAUT — best achievable unicast throughput (Section 3.1).
///
/// The paper's companion to BATT: sustained random unicast traffic also
/// lower-bounds layout area.  Formalization used here: if every node can
/// sustain an injection rate of lambda packets/step with uniformly random
/// destinations, then in expectation half of all traffic crosses any
/// balanced bisection, so lambda * N / 2 packets/step cross B bidirectional
/// links of capacity 2/step:  B >= lambda * N / 4,  hence area >= B^2
/// (Theorem 3.1).  The simulator measures achievable lambda by routing
/// pipelined random permutation batches greedily.

#include <cstdint>

#include "starlay/comm/network.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::comm {

struct UnicastResult {
  std::int64_t steps = 0;        ///< time to deliver all batches
  std::int64_t packets = 0;      ///< total packets routed
  double rate = 0.0;             ///< packets per node per step (lambda)
};

/// Routes \p batches pipelined random permutations (one packet per node per
/// batch, derangement-free random destinations) with the greedy
/// farthest-first scheduler.  Deterministic for a given seed.
UnicastResult route_random_permutations(const topology::Graph& g, const DistanceTable& dt,
                                        int batches, std::uint32_t seed = 1);

/// BAUT bisection bound: B >= lambda * N / 4.
double bisection_lb_baut(std::int64_t N, double rate);

/// BAUT area bound: area >= (lambda * N / 4)^2.
double area_lb_baut(std::int64_t N, double rate);

}  // namespace starlay::comm
