#pragma once
/// \file edge_coloring.hpp
/// \brief Bipartite edge coloring (Konig) for conflict-free schedules.
///
/// Used by the optimal hypercube total-exchange schedule: offsets x
/// dimensions form a bipartite multigraph whose proper edge coloring with
/// exactly max-degree colors is a minimum-makespan unit open-shop schedule.

#include <cstdint>
#include <vector>

namespace starlay::comm {

struct BipartiteEdge {
  std::int32_t left;
  std::int32_t right;
};

/// Proper edge coloring of a bipartite multigraph using exactly max-degree
/// colors (Konig's theorem), via alternating-path recoloring.
/// Returns color per edge (same order as input), colors in [0, max_degree).
std::vector<std::int32_t> bipartite_edge_coloring(std::int32_t num_left,
                                                  std::int32_t num_right,
                                                  const std::vector<BipartiteEdge>& edges);

}  // namespace starlay::comm
