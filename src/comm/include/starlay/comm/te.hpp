#pragma once
/// \file te.hpp
/// \brief Total-exchange (all-to-all personalized) tasks and schedules.
///
/// The BATT lower-bound technique (Section 3.1) needs TE *throughput*
/// numbers.  This module provides:
///  * packet generation for f simultaneous TE tasks;
///  * the greedy farthest-first simulation (achievable times on any
///    vertex-transitive network);
///  * a provably optimal hypercube TE schedule (exactly N/2 steps for
///    d >= 2, via Konig edge coloring of the offsets x dimensions demand);
///  * the trivial 1-step complete-graph TE;
///  * the generic TE-time lower bounds (bisection and degree based) used
///    to certify how close the simulated times are.

#include <cstdint>
#include <utility>
#include <vector>

#include "starlay/comm/network.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::comm {

/// Packets for \p copies simultaneous TE tasks on an N-node network.
std::vector<Packet> make_te_packets(std::int32_t N, int copies = 1);

/// Greedy farthest-first execution of \p copies TE tasks.
SimResult greedy_te(const topology::Graph& g, const DistanceTable& dt, int copies = 1);

/// Generic TE-time lower bounds under the all-port model.
struct TeLowerBounds {
  std::int64_t bisection;  ///< ceil(floor(N/2)*ceil(N/2) / B)
  std::int64_t degree;     ///< ceil((N-1)/d): each node must absorb N-1 packets
};
TeLowerBounds te_time_lower_bounds(std::int64_t N, std::int64_t B, std::int32_t degree);

/// Optimal all-port hypercube TE: offset e in [1, N) is routed through the
/// set bits of e, one dimension per step; a proper edge coloring of the
/// bipartite (offset, dimension) demand graph with max-degree N/2 colors
/// gives a conflict-free schedule of exactly N/2 steps (d >= 2).
struct HypercubeTeSchedule {
  int d = 0;
  std::int64_t steps = 0;
  /// Per offset e (index e-1): the (bit, step) pairs, in routing order.
  std::vector<std::vector<std::pair<int, std::int64_t>>> slots;
};
HypercubeTeSchedule hypercube_te_schedule(int d);

/// Replays the schedule, asserting no two packets use a directed link in
/// the same step and every packet arrives.  Returns the makespan.
std::int64_t execute_hypercube_te(const HypercubeTeSchedule& s);

}  // namespace starlay::comm
