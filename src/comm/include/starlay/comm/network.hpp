#pragma once
/// \file network.hpp
/// \brief Synchronous all-port packet network over a topology::Graph.
///
/// The model of Section 3 (BATT): links are bidirectional and carry one
/// packet per direction per step; nodes have unbounded buffers and
/// unlimited computation.  The simulator executes shortest-path store-and-
/// forward schedules and reports completion times, giving *achievable*
/// (upper-bound) TE times to compare against the paper's cited optima.

#include <cstdint>
#include <vector>

#include "starlay/topology/graph.hpp"

namespace starlay::comm {

/// All-pairs hop distances (BFS per source).  Memory: N^2 * 2 bytes.
class DistanceTable {
 public:
  explicit DistanceTable(const topology::Graph& g);
  std::int32_t dist(std::int32_t u, std::int32_t v) const {
    return table_[static_cast<std::size_t>(u) * n_ + static_cast<std::size_t>(v)];
  }
  std::int32_t num_vertices() const { return static_cast<std::int32_t>(n_); }

 private:
  std::size_t n_;
  std::vector<std::uint16_t> table_;
};

/// A packet in flight: where it currently sits and where it must go.
struct Packet {
  std::int32_t at;
  std::int32_t dst;
};

struct SimResult {
  std::int64_t steps = 0;             ///< completion time (communication steps)
  std::int64_t packets_delivered = 0;
  std::int64_t total_hops = 0;        ///< sum over packets of hops taken
  bool all_shortest_paths = true;     ///< every packet took a shortest path
};

/// Runs greedy farthest-first all-port store-and-forward until every packet
/// reaches its destination.  Each step, every directed link forwards at
/// most one packet; packets only move along shortest paths toward their
/// destinations; per node, the farthest-from-destination packets claim
/// links first.
SimResult simulate_greedy(const topology::Graph& g, const DistanceTable& dt,
                          std::vector<Packet> packets, std::int64_t max_steps = -1);

}  // namespace starlay::comm
