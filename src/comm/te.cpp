#include "starlay/comm/te.hpp"

#include <algorithm>
#include <set>

#include "starlay/comm/edge_coloring.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"

namespace starlay::comm {

std::vector<Packet> make_te_packets(std::int32_t N, int copies) {
  STARLAY_REQUIRE(N >= 2, "make_te_packets: need >= 2 nodes");
  STARLAY_REQUIRE(copies >= 1, "make_te_packets: copies >= 1");
  std::vector<Packet> pkts;
  pkts.reserve(static_cast<std::size_t>(copies) * N * (N - 1));
  for (int c = 0; c < copies; ++c)
    for (std::int32_t s = 0; s < N; ++s)
      for (std::int32_t t = 0; t < N; ++t)
        if (s != t) pkts.push_back({s, t});
  return pkts;
}

SimResult greedy_te(const topology::Graph& g, const DistanceTable& dt, int copies) {
  return simulate_greedy(g, dt, make_te_packets(g.num_vertices(), copies));
}

TeLowerBounds te_time_lower_bounds(std::int64_t N, std::int64_t B, std::int32_t degree) {
  STARLAY_REQUIRE(N >= 2 && B >= 1 && degree >= 1, "te_time_lower_bounds: bad arguments");
  return {starlay::ceil_div((N / 2) * (N - N / 2), B),
          starlay::ceil_div(N - 1, degree)};
}

HypercubeTeSchedule hypercubeschedule_impl(int d) {
  const std::int64_t N = std::int64_t{1} << d;
  // Demand bipartite multigraph: offsets (left) x dimensions (right); one
  // edge per set bit of each offset.  Max degree = N/2 (each dimension is
  // needed by half the offsets) as long as d <= N/2, i.e. d >= 2.
  std::vector<BipartiteEdge> demand;
  for (std::int64_t e = 1; e < N; ++e)
    for (int b = 0; b < d; ++b)
      if (e & (std::int64_t{1} << b))
        demand.push_back({static_cast<std::int32_t>(e - 1), b});
  const auto colors = bipartite_edge_coloring(static_cast<std::int32_t>(N - 1), d, demand);

  HypercubeTeSchedule s;
  s.d = d;
  s.slots.resize(static_cast<std::size_t>(N - 1));
  std::int64_t makespan = 0;
  for (std::size_t i = 0; i < demand.size(); ++i) {
    s.slots[static_cast<std::size_t>(demand[i].left)].push_back(
        {demand[i].right, colors[i]});
    makespan = std::max<std::int64_t>(makespan, colors[i] + 1);
  }
  // Route bits in increasing time order (any order is fine for delivery;
  // time order makes the replay a real store-and-forward execution).
  for (auto& v : s.slots)
    std::sort(v.begin(), v.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
  s.steps = makespan;
  return s;
}

HypercubeTeSchedule hypercube_te_schedule(int d) {
  STARLAY_REQUIRE(d >= 1 && d <= 16, "hypercube_te_schedule: d in [1, 16]");
  return hypercubeschedule_impl(d);
}

std::int64_t execute_hypercubete_impl(const HypercubeTeSchedule& s) {
  const std::int64_t N = std::int64_t{1} << s.d;
  // (step, dimension) slots must be unique: one offset owns all dim-i
  // links in a given step.
  std::set<std::pair<std::int64_t, int>> used;
  for (std::int64_t e = 1; e < N; ++e) {
    const auto& route = s.slots[static_cast<std::size_t>(e - 1)];
    std::int64_t applied = 0;
    std::int64_t prev_step = -1;
    for (const auto& [bit, step] : route) {
      STARLAY_REQUIRE(step > prev_step, "hypercube TE: route not time-ordered");
      prev_step = step;
      STARLAY_REQUIRE(used.insert({step, bit}).second,
                      "hypercube TE: link conflict (two offsets share a dimension-step)");
      applied |= (std::int64_t{1} << bit);
    }
    STARLAY_REQUIRE(applied == e, "hypercube TE: offset not fully routed");
  }
  return s.steps;
}

std::int64_t execute_hypercube_te(const HypercubeTeSchedule& s) {
  return execute_hypercubete_impl(s);
}

}  // namespace starlay::comm
