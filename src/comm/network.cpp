#include "starlay/comm/network.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "starlay/support/check.hpp"
#include "starlay/topology/properties.hpp"

namespace starlay::comm {

DistanceTable::DistanceTable(const topology::Graph& g)
    : n_(static_cast<std::size_t>(g.num_vertices())) {
  STARLAY_REQUIRE(g.num_vertices() >= 1, "DistanceTable: empty graph");
  table_.resize(n_ * n_);
  for (std::int32_t s = 0; s < g.num_vertices(); ++s) {
    const auto d = topology::bfs_distances(g, s);
    for (std::size_t v = 0; v < n_; ++v) {
      STARLAY_REQUIRE(d[v] >= 0, "DistanceTable: graph is disconnected");
      STARLAY_REQUIRE(d[v] <= std::numeric_limits<std::uint16_t>::max(),
                      "DistanceTable: distance overflow");
      table_[static_cast<std::size_t>(s) * n_ + v] = static_cast<std::uint16_t>(d[v]);
    }
  }
}

SimResult simulate_greedy(const topology::Graph& g, const DistanceTable& dt,
                          std::vector<Packet> packets, std::int64_t max_steps) {
  STARLAY_REQUIRE(dt.num_vertices() == g.num_vertices(),
                  "simulate_greedy: distance table mismatch");
  SimResult res;
  const std::int32_t V = g.num_vertices();

  // Per-node queues of packet indices, kept as unsorted vectors; each step
  // we sort candidates per node by remaining distance (farthest first).
  std::vector<std::vector<std::int64_t>> at_node(static_cast<std::size_t>(V));
  std::int64_t live = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    if (packets[i].at == packets[i].dst) {
      ++res.packets_delivered;
      continue;
    }
    at_node[static_cast<std::size_t>(packets[i].at)].push_back(static_cast<std::int64_t>(i));
    ++live;
  }

  std::vector<std::vector<std::int64_t>> arriving(static_cast<std::size_t>(V));
  while (live > 0) {
    if (max_steps >= 0 && res.steps >= max_steps) break;
    ++res.steps;
    bool moved_any = false;
    for (std::int32_t u = 0; u < V; ++u) {
      auto& q = at_node[static_cast<std::size_t>(u)];
      if (q.empty()) continue;
      // Farthest-first priority.
      std::sort(q.begin(), q.end(), [&](std::int64_t a, std::int64_t b) {
        const std::int32_t da = dt.dist(u, packets[static_cast<std::size_t>(a)].dst);
        const std::int32_t db = dt.dist(u, packets[static_cast<std::size_t>(b)].dst);
        if (da != db) return da > db;
        return a < b;
      });
      const auto nbrs = g.neighbors(u);
      std::vector<std::uint8_t> link_used(nbrs.size(), 0);
      std::vector<std::int64_t> stay;
      stay.reserve(q.size());
      for (std::int64_t pi : q) {
        const Packet& p = packets[static_cast<std::size_t>(pi)];
        bool sent = false;
        for (std::size_t li = 0; li < nbrs.size(); ++li) {
          if (link_used[li]) continue;
          const std::int32_t w = nbrs[li];
          if (dt.dist(w, p.dst) == dt.dist(u, p.dst) - 1) {
            link_used[li] = 1;
            arriving[static_cast<std::size_t>(w)].push_back(pi);
            sent = true;
            moved_any = true;
            break;
          }
        }
        if (!sent) stay.push_back(pi);
      }
      q = std::move(stay);
    }
    STARLAY_REQUIRE(moved_any, "simulate_greedy: deadlock (no packet advanced)");
    for (std::int32_t w = 0; w < V; ++w) {
      for (std::int64_t pi : arriving[static_cast<std::size_t>(w)]) {
        Packet& p = packets[static_cast<std::size_t>(pi)];
        p.at = w;
        ++res.total_hops;
        if (p.at == p.dst) {
          ++res.packets_delivered;
          --live;
        } else {
          at_node[static_cast<std::size_t>(w)].push_back(pi);
        }
      }
      arriving[static_cast<std::size_t>(w)].clear();
    }
  }
  return res;
}

}  // namespace starlay::comm
