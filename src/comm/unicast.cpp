#include "starlay/comm/unicast.hpp"

#include <algorithm>
#include <numeric>
#include <random>

#include "starlay/support/check.hpp"

namespace starlay::comm {

UnicastResult route_random_permutations(const topology::Graph& g, const DistanceTable& dt,
                                        int batches, std::uint32_t seed) {
  STARLAY_REQUIRE(batches >= 1, "route_random_permutations: batches >= 1");
  const std::int32_t N = g.num_vertices();
  STARLAY_REQUIRE(N >= 2, "route_random_permutations: need >= 2 nodes");

  std::mt19937 rng(seed);
  std::vector<Packet> packets;
  packets.reserve(static_cast<std::size_t>(batches) * static_cast<std::size_t>(N));
  std::vector<std::int32_t> perm(static_cast<std::size_t>(N));
  std::iota(perm.begin(), perm.end(), 0);
  for (int b = 0; b < batches; ++b) {
    // Random permutation with fixed points re-rolled once (self-packets
    // would inflate the measured rate for free).
    std::shuffle(perm.begin(), perm.end(), rng);
    for (std::int32_t s = 0; s < N; ++s) {
      std::int32_t d = perm[static_cast<std::size_t>(s)];
      if (d == s) d = perm[static_cast<std::size_t>((s + 1) % N)];
      if (d == s) d = (s + 1) % N;
      packets.push_back({s, d});
    }
  }

  const SimResult sim = simulate_greedy(g, dt, packets);
  UnicastResult res;
  res.steps = sim.steps;
  res.packets = static_cast<std::int64_t>(packets.size());
  res.rate = sim.steps == 0
                 ? 0.0
                 : static_cast<double>(res.packets) /
                       (static_cast<double>(N) * static_cast<double>(sim.steps));
  return res;
}

double bisection_lb_baut(std::int64_t N, double rate) {
  STARLAY_REQUIRE(N >= 2 && rate > 0, "bisection_lb_baut: bad arguments");
  return rate * static_cast<double>(N) / 4.0;
}

double area_lb_baut(std::int64_t N, double rate) {
  const double b = bisection_lb_baut(N, rate);
  return b * b;
}

}  // namespace starlay::comm
