#include "starlay/comm/edge_coloring.hpp"

#include <algorithm>

#include "starlay/support/check.hpp"

namespace starlay::comm {

std::vector<std::int32_t> bipartite_edge_coloring(std::int32_t num_left,
                                                  std::int32_t num_right,
                                                  const std::vector<BipartiteEdge>& edges) {
  STARLAY_REQUIRE(num_left >= 0 && num_right >= 0, "bipartite_edge_coloring: bad sizes");
  std::vector<std::int32_t> ldeg(static_cast<std::size_t>(num_left), 0),
      rdeg(static_cast<std::size_t>(num_right), 0);
  for (const auto& e : edges) {
    STARLAY_REQUIRE(e.left >= 0 && e.left < num_left && e.right >= 0 && e.right < num_right,
                    "bipartite_edge_coloring: endpoint out of range");
    ++ldeg[static_cast<std::size_t>(e.left)];
    ++rdeg[static_cast<std::size_t>(e.right)];
  }
  std::int32_t delta = 0;
  for (std::int32_t d : ldeg) delta = std::max(delta, d);
  for (std::int32_t d : rdeg) delta = std::max(delta, d);
  if (delta == 0) return {};

  // free_l[v][c] / free_r[v][c]: edge index using color c at vertex, or -1.
  const auto idx = [&](std::int32_t v, std::int32_t c) {
    return static_cast<std::size_t>(v) * static_cast<std::size_t>(delta) +
           static_cast<std::size_t>(c);
  };
  std::vector<std::int64_t> used_l(static_cast<std::size_t>(num_left) * delta, -1);
  std::vector<std::int64_t> used_r(static_cast<std::size_t>(num_right) * delta, -1);
  std::vector<std::int32_t> color(edges.size(), -1);

  for (std::size_t ei = 0; ei < edges.size(); ++ei) {
    const std::int32_t u = edges[ei].left;
    const std::int32_t v = edges[ei].right;
    // Find a color free at u and a color free at v.
    std::int32_t cu = -1, cv = -1;
    for (std::int32_t c = 0; c < delta; ++c) {
      if (cu < 0 && used_l[idx(u, c)] < 0) cu = c;
      if (cv < 0 && used_r[idx(v, c)] < 0) cv = c;
    }
    STARLAY_REQUIRE(cu >= 0 && cv >= 0, "bipartite_edge_coloring: no free color (degree bug)");
    if (cu != cv) {
      // Flip the maximal (cu, cv)-alternating path starting at v so cu
      // becomes free at v.  In a bipartite graph this path can never reach
      // u, so cu stays free there (Konig's argument).
      bool on_right = true;
      std::int32_t c_from = cu, c_to = cv;
      std::int64_t e2 = used_r[idx(v, cu)];
      while (e2 >= 0) {
        const std::int32_t nu = edges[static_cast<std::size_t>(e2)].left;
        const std::int32_t nv = edges[static_cast<std::size_t>(e2)].right;
        const std::int32_t next_vertex = on_right ? nu : nv;
        // Grab the edge that will conflict at the far endpoint BEFORE
        // overwriting the occupancy tables.
        const std::int64_t e3 =
            on_right ? used_l[idx(next_vertex, c_to)] : used_r[idx(next_vertex, c_to)];
        // Recolor e2: c_from -> c_to.
        color[static_cast<std::size_t>(e2)] = c_to;
        if (used_l[idx(nu, c_from)] == e2) used_l[idx(nu, c_from)] = -1;
        if (used_r[idx(nv, c_from)] == e2) used_r[idx(nv, c_from)] = -1;
        used_l[idx(nu, c_to)] = e2;
        used_r[idx(nv, c_to)] = e2;
        e2 = e3;
        on_right = !on_right;
        std::swap(c_from, c_to);
      }
    }
    color[ei] = cu;
    used_l[idx(u, cu)] = static_cast<std::int64_t>(ei);
    used_r[idx(v, cu)] = static_cast<std::int64_t>(ei);
  }
  return color;
}

}  // namespace starlay::comm
