#include <vector>

#include "starlay/render/render.hpp"
#include "starlay/support/check.hpp"

namespace starlay::render {

std::string to_ascii(const layout::Layout& lay, const layout::Rect& window) {
  const layout::Rect bb = window.empty() ? lay.bounding_box() : window;
  STARLAY_REQUIRE(bb.width() <= 400 && bb.height() <= 200,
                  "to_ascii: layout too large for ASCII rendering");
  const auto W = static_cast<std::size_t>(bb.width());
  const auto H = static_cast<std::size_t>(bb.height());
  std::vector<std::string> grid(H, std::string(W, ' '));
  const auto put = [&](layout::Coord x, layout::Coord y, char c) {
    if (x < bb.x0 || x > bb.x1 || y < bb.y0 || y > bb.y1) return;
    auto& cell = grid[static_cast<std::size_t>(y - bb.y0)][static_cast<std::size_t>(x - bb.x0)];
    if (cell == ' ')
      cell = c;
    else if (cell != c)
      cell = '+';  // crossing / bend
  };
  for (const layout::WireRef w : lay.wires()) {
    for (int i = 1; i < w.npts(); ++i) {
      const layout::Point a = w.pt(i - 1), b = w.pt(i);
      if (a.y == b.y) {
        for (layout::Coord x = std::max(std::min(a.x, b.x), bb.x0);
             x <= std::min(std::max(a.x, b.x), bb.x1); ++x)
          put(x, a.y, '-');
      } else {
        for (layout::Coord y = std::max(std::min(a.y, b.y), bb.y0);
             y <= std::min(std::max(a.y, b.y), bb.y1); ++y)
          put(a.x, y, '|');
      }
    }
  }
  for (std::int32_t v = 0; v < lay.num_nodes(); ++v) {
    const layout::Rect& r = lay.node_rect(v);
    if (r.empty()) continue;
    for (layout::Coord y = std::max(r.y0, bb.y0); y <= std::min(r.y1, bb.y1); ++y)
      for (layout::Coord x = std::max(r.x0, bb.x0); x <= std::min(r.x1, bb.x1); ++x)
        grid[static_cast<std::size_t>(y - bb.y0)][static_cast<std::size_t>(x - bb.x0)] = '#';
  }
  // Top row of the layout is printed first (y grows upward).
  std::string out;
  for (std::size_t row = H; row-- > 0;) {
    out += grid[row];
    out += '\n';
  }
  return out;
}

}  // namespace starlay::render
