#include <cmath>
#include <fstream>
#include <sstream>

#include "starlay/render/render.hpp"
#include "starlay/support/check.hpp"

namespace starlay::render {

namespace {

const char* layer_color(int layer) {
  static const char* kColors[] = {"#1f77b4", "#d62728", "#2ca02c", "#9467bd",
                                  "#ff7f0e", "#8c564b", "#e377c2", "#17becf"};
  return kColors[layer % 8];
}

}  // namespace

std::string to_svg(const layout::Layout& lay, const SvgOptions& opt) {
  const layout::Rect bb = opt.window.empty() ? lay.bounding_box() : opt.window;
  const auto intersects = [&](const layout::Rect& r) {
    return !r.empty() && r.x0 <= bb.x1 && bb.x0 <= r.x1 && r.y0 <= bb.y1 && bb.y0 <= r.y1;
  };
  const double s = opt.scale;
  const double margin = 2 * s;
  const double W = static_cast<double>(bb.width()) * s + 2 * margin;
  const double H = static_cast<double>(bb.height()) * s + 2 * margin;
  const auto X = [&](layout::Coord x) { return margin + static_cast<double>(x - bb.x0) * s; };
  // SVG y grows downward; layouts use y growing upward.
  const auto Y = [&](layout::Coord y) { return H - margin - static_cast<double>(y - bb.y0) * s; };

  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W << "\" height=\"" << H
     << "\" viewBox=\"0 0 " << W << " " << H << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (std::int32_t v = 0; v < lay.num_nodes(); ++v) {
    const layout::Rect& r = lay.node_rect(v);
    if (!intersects(r)) continue;
    os << "<rect x=\"" << X(r.x0) - 0.4 * s << "\" y=\"" << Y(r.y1) - 0.4 * s << "\" width=\""
       << static_cast<double>(r.width() - 1) * s + 0.8 * s << "\" height=\""
       << static_cast<double>(r.height() - 1) * s + 0.8 * s
       << "\" fill=\"#f2d7a0\" stroke=\"#333\" stroke-width=\"1\"/>\n";
    if (opt.show_node_labels) {
      os << "<text x=\"" << X((r.x0 + r.x1) / 2) << "\" y=\"" << Y((r.y0 + r.y1) / 2) + 3
         << "\" font-size=\"" << s * 1.2 << "\" text-anchor=\"middle\">" << v << "</text>\n";
    }
  }
  for (const layout::WireRef w : lay.wires()) {
    if (!opt.window.empty()) {
      layout::Rect wbb;
      for (int i = 0; i < w.npts(); ++i) wbb.cover(w.pt(i));
      if (!intersects(wbb)) continue;
    }
    const int color_layer = opt.color_by_layer ? (w.h_layer() - 1) / 2 : 0;
    os << "<polyline fill=\"none\" stroke=\"" << layer_color(color_layer)
       << "\" stroke-width=\"1\" points=\"";
    for (int i = 0; i < w.npts(); ++i)
      os << X(w.pt(i).x) << "," << Y(w.pt(i).y) << " ";
    os << "\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

void write_svg(const layout::Layout& lay, const std::string& path, const SvgOptions& opt) {
  std::ofstream f(path);
  STARLAY_REQUIRE(f.good(), "write_svg: cannot open " + path);
  f << to_svg(lay, opt);
  STARLAY_REQUIRE(f.good(), "write_svg: write failed for " + path);
}

std::string graph_to_svg(const topology::Graph& g, double radius) {
  const double cx = radius + 20, cy = radius + 20;
  const double W = 2 * cx, H = 2 * cy;
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << W << "\" height=\"" << H
     << "\" viewBox=\"0 0 " << W << " " << H << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  const double n = std::max(1, g.num_vertices());
  const auto pos = [&](std::int32_t v) {
    const double a = 2 * 3.14159265358979 * v / n - 3.14159265358979 / 2;
    return std::pair<double, double>{cx + radius * std::cos(a), cy + radius * std::sin(a)};
  };
  for (const auto& e : g.edges()) {
    const auto [x1, y1] = pos(e.u);
    const auto [x2, y2] = pos(e.v);
    os << "<line x1=\"" << x1 << "\" y1=\"" << y1 << "\" x2=\"" << x2 << "\" y2=\"" << y2
       << "\" stroke=\"" << layer_color(e.label) << "\" stroke-width=\"0.7\"/>\n";
  }
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const auto [x, y] = pos(v);
    os << "<circle cx=\"" << x << "\" cy=\"" << y << "\" r=\"3\" fill=\"#333\"/>\n";
  }
  os << "</svg>\n";
  return os.str();
}

}  // namespace starlay::render
