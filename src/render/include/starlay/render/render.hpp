#pragma once
/// \file render.hpp
/// \brief SVG and ASCII renderings of layouts (Figures 1-3 reproduction).

#include <string>

#include "starlay/layout/layout.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::render {

struct SvgOptions {
  double scale = 8.0;        ///< pixels per grid unit
  bool color_by_layer = true;
  bool show_node_labels = false;
  /// Non-empty: render only this grid window (e.g. the retained tile of a
  /// StreamingCertifier); geometry outside is skipped/clipped.
  layout::Rect window;
};

/// Renders the layout as a standalone SVG document.
std::string to_svg(const layout::Layout& lay, const SvgOptions& opt = {});

/// Writes to_svg() output to \p path (throws on I/O failure).
void write_svg(const layout::Layout& lay, const std::string& path, const SvgOptions& opt = {});

/// ASCII-art rendering for small layouts (width x height up to ~200x100):
/// '#' node cells, '-'/'|' wires, '+' crossings and bends.  A non-empty
/// \p window restricts the rendering to that grid region.
std::string to_ascii(const layout::Layout& lay, const layout::Rect& window = {});

/// Renders a graph as a circular-arrangement SVG (structure figures:
/// the paper's Fig. 2/3 top views).
std::string graph_to_svg(const topology::Graph& g, double radius = 200.0);

}  // namespace starlay::render
