#include "starlay/support/math.hpp"

#include <limits>

#include "starlay/support/check.hpp"

namespace starlay {

std::int64_t factorial(int n) {
  STARLAY_REQUIRE(n >= 0, "factorial: n must be non-negative");
  STARLAY_REQUIRE(n <= 20, "factorial: n! overflows int64 for n > 20");
  std::int64_t r = 1;
  for (int i = 2; i <= n; ++i) r *= i;
  return r;
}

std::int64_t binomial(int n, int k) {
  STARLAY_REQUIRE(n >= 0 && k >= 0, "binomial: negative argument");
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::int64_t r = 1;
  for (int i = 1; i <= k; ++i) {
    // r * (n - k + i) can overflow; divide first where exact.
    std::int64_t num = n - k + i;
    std::int64_t g = r % i == 0 ? i : 1;
    std::int64_t rr = r / g;
    std::int64_t ii = i / g;
    if (num % ii == 0) {
      num /= ii;
      ii = 1;
    }
    STARLAY_REQUIRE(rr <= std::numeric_limits<std::int64_t>::max() / num,
                    "binomial: overflow");
    r = rr * num / ii;
  }
  return r;
}

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  STARLAY_REQUIRE(b > 0, "ceil_div: divisor must be positive");
  if (a >= 0) return (a + b - 1) / b;
  return -((-a) / b);
}

std::int64_t isqrt(std::int64_t x) {
  STARLAY_REQUIRE(x >= 0, "isqrt: negative argument");
  if (x < 2) return x;
  std::int64_t r = static_cast<std::int64_t>(__builtin_sqrt(static_cast<double>(x)));
  while (r > 0 && r > x / r) --r;                      // r*r > x without overflow
  while (r + 1 <= x / (r + 1)) ++r;                    // (r+1)^2 <= x without overflow
  return r;
}

GridFactors grid_factors(int m) {
  STARLAY_REQUIRE(m >= 1, "grid_factors: m must be positive");
  int rows = static_cast<int>(isqrt(m));
  if (rows * rows < m) ++rows;  // rows = ceil(sqrt(m))
  int cols = static_cast<int>(ceil_div(m, rows));
  return {rows, cols};
}

int ilog2(std::int64_t x) {
  STARLAY_REQUIRE(x >= 1, "ilog2: argument must be >= 1");
  int r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

bool is_pow2(std::int64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

}  // namespace starlay
