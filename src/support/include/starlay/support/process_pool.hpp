#pragma once
/// \file process_pool.hpp
/// \brief Forked worker-process pool for the sharded out-of-core engine.
///
/// The counterpart of ThreadPool one isolation level up: run_process_tasks
/// executes tasks 0..num_tasks-1 in `workers` forked child processes, each
/// claiming task ids from a shared atomic counter in a MAP_SHARED page
/// (dynamic load balancing — shard costs are skewed, so static striping
/// would leave workers idle).  Children communicate results through the
/// spill files the tasks write; the only protocol back to the coordinator
/// is each child's exit status, its rusage (peak RSS, reported per worker),
/// and — on failure — a small error file describing the first exception.
///
/// workers <= 1 runs every task inline on the calling thread: sequential
/// passes, no fork, exceptions propagate directly.  This is the
/// STARLAY_WORKERS=1 mode, and what the in-process metamorphic relation
/// and the sanitizer suites drive (forked children would escape TSan/ASan
/// reporting).
///
/// Forking with live pool threads is a classic deadlock trap (a thread
/// holding the allocator lock at fork time leaves the child wedged), so
/// run_process_tasks REQUIREs the ThreadPool to be at one thread (zero
/// spawned workers) whenever it forks.  Callers shrink the pool for the
/// duration — the sharded engine gets its parallelism from processes, not
/// threads.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace starlay::support {

/// One forked worker's outcome.
struct WorkerStatus {
  int exit_code = 0;                ///< 0 = all claimed tasks succeeded
  std::int64_t peak_rss_bytes = 0;  ///< child ru_maxrss (inline mode: 0)
};

struct ProcessPoolResult {
  std::vector<WorkerStatus> workers;  ///< one entry per forked child; empty inline

  std::int64_t max_peak_rss_bytes() const {
    std::int64_t m = 0;
    for (const WorkerStatus& w : workers) m = std::max(m, w.peak_rss_bytes);
    return m;
  }
};

/// Runs fn(task, worker) for every task in [0, num_tasks).  `worker` is the
/// index of the executing child in [0, min(workers, num_tasks)) — tasks use
/// it to name per-worker spill files so no two processes ever share a
/// writer (inline mode passes 0).
///
/// workers <= 1: inline sequential execution; exceptions propagate.
/// workers >= 2: forks min(workers, num_tasks) children; each loops
/// claiming the next task id until the counter runs out, then _exit(0)s.
/// A child that catches an exception writes err_dir/worker_<idx>.err and
/// exits nonzero; after all children are reaped the first reported error
/// is rethrown in the parent (support::IoError for I/O failures, the
/// original message otherwise), so callers see one failure mode for both
/// execution styles.
ProcessPoolResult run_process_tasks(int workers, std::int64_t num_tasks,
                                    const std::string& err_dir,
                                    const std::function<void(std::int64_t, int)>& fn);

}  // namespace starlay::support
