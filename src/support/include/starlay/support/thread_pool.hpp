#pragma once
/// \file thread_pool.hpp
/// \brief Deterministic parallel execution layer shared by all subsystems.
///
/// The layout pipeline decomposes into bulk per-node / per-edge work
/// (placement digits, edge routes, validation probes, KL gain scans).  This
/// module runs such loops on a persistent worker pool while guaranteeing
/// *bit-identical results for every thread count*, which the tests pin down
/// (parallel_determinism_test):
///
///  * parallel_for splits [begin, end) into fixed chunks of size `grain`.
///    Chunk boundaries depend only on (begin, end, grain) — never on the
///    number of threads — so kernels that write disjoint per-index output
///    slots produce the same bytes serially and in parallel.
///  * Reductions must be expressed as per-chunk partials (the chunk index is
///    passed to the body) merged serially afterward; no atomics on results.
///
/// Sizing: STARLAY_THREADS overrides std::thread::hardware_concurrency();
/// ThreadPool::set_num_threads() overrides both at runtime (used by tests
/// and benches to compare thread counts within one process).

#include <cstdint>
#include <functional>

namespace starlay::support {

/// Persistent worker pool.  Workers sleep between jobs; the calling thread
/// participates in every job, so a 1-thread pool degenerates to inline
/// serial execution with zero synchronization overhead.
class ThreadPool {
 public:
  /// The process-wide pool, created on first use.  Initial size comes from
  /// the STARLAY_THREADS environment variable when set (clamped to
  /// [1, 256]), else std::thread::hardware_concurrency().
  static ThreadPool& instance();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resizes the pool (joins/spawns workers).  Must not be called while a
  /// job is running.  Intended for tests and benches.
  void set_num_threads(int n);

  /// Runs fn(chunk) for every chunk in [0, num_chunks), distributing chunks
  /// over the pool.  Blocks until all chunks are done; rethrows the first
  /// exception any chunk threw.  Chunks may run in any order and must not
  /// depend on each other.  Re-entrant calls (from inside a chunk) run
  /// inline on the calling worker.
  void run(std::int64_t num_chunks, const std::function<void(std::int64_t)>& fn);

 private:
  explicit ThreadPool(int num_threads);
  struct Impl;
  Impl* impl_;
  int num_threads_;
};

/// Splits [begin, end) into chunks of size `grain` (the last chunk may be
/// short) and invokes fn(lo, hi, chunk_index) for each on the global pool.
/// Chunk geometry is a pure function of the range and grain, so output
/// written to disjoint [lo, hi) slots — or to per-chunk_index partials
/// merged serially by the caller — is identical for every thread count.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn);

/// Number of chunks parallel_for will use for the given range and grain.
/// Callers size per-chunk partial buffers with this.
std::int64_t num_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain);

}  // namespace starlay::support
