#pragma once
/// \file mapped_file.hpp
/// \brief mmap-backed spill files for the out-of-core sharded engine.
///
/// The sharded layout engine (core/star_shard.cpp) keeps every O(E) table —
/// wire preplans, per-band certification records, channel-packing intervals
/// — in files under a spill directory instead of anonymous memory, so the
/// resident set of each process is bounded by the working window rather
/// than the table sizes.  Three primitives cover its access patterns:
///
///  * MappedFile — MAP_SHARED mapping of a created or existing file.
///    Sequential scans ride the page cache; drop_resident() releases the
///    pages behind a cursor (MADV_DONTNEED) so a full-table pass never
///    accumulates a full-table RSS.  The data stays in the page cache /
///    on disk — re-faults are cheap minor faults, not correctness events.
///  * AppendWriter — buffered sequential appends for record spill streams
///    (one open bucket file per band/batch per worker).
///  * file/directory helpers with errno-carrying failures.
///
/// Every failure throws IoError with the operation, path, and errno; the
/// core layer maps that onto BuildStatus::kIoError so CLI users see a
/// stable error instead of a crash when a spill directory is unwritable
/// or a disk fills mid-run.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace starlay::support {

/// A filesystem operation failed.  what() renders "op path: strerror".
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& op, const std::string& path, int err);

  const std::string& op() const { return op_; }
  const std::string& path() const { return path_; }
  int error_code() const { return err_; }

 private:
  std::string op_;
  std::string path_;
  int err_;
};

/// Move-only MAP_SHARED file mapping.  All entry points throw IoError.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& o) noexcept;
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// Creates (or truncates) \p path at \p bytes and maps it read-write.
  /// bytes == 0 yields a valid object with a null mapping.
  static MappedFile create(const std::string& path, std::int64_t bytes);

  /// Maps an existing file read-write (writable = true) or read-only.
  static MappedFile open(const std::string& path, bool writable);

  bool valid() const { return fd_ >= 0; }
  void* data() const { return base_; }
  std::int64_t size() const { return size_; }

  template <typename T>
  T* as() const {
    return static_cast<T*>(base_);
  }

  /// Releases the resident pages of [off, off+len) back to the kernel
  /// (MADV_DONTNEED on the containing page range; dirty MAP_SHARED pages
  /// are written through first by the kernel).  A no-op on empty ranges.
  void drop_resident(std::int64_t off, std::int64_t len) const;

  /// Unmaps and closes.  Idempotent; also run by the destructor.
  void close();

 private:
  void* base_ = nullptr;
  std::int64_t size_ = 0;
  int fd_ = -1;
};

/// Buffered sequential appender; one exclusive writer per file.  Creates /
/// truncates on construction.  All failures throw IoError.
class AppendWriter {
 public:
  AppendWriter() = default;
  explicit AppendWriter(const std::string& path, std::size_t buf_bytes = 1u << 20);
  AppendWriter(AppendWriter&& o) noexcept;
  AppendWriter& operator=(AppendWriter&& o) noexcept;
  AppendWriter(const AppendWriter&) = delete;
  AppendWriter& operator=(const AppendWriter&) = delete;
  ~AppendWriter();  ///< best-effort close; call close() to observe failures

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::int64_t bytes_written() const { return written_; }

  void append(const void* p, std::size_t n);

  template <typename T>
  void append_record(const T& rec) {
    append(&rec, sizeof(T));
  }

  void flush();
  void close();  ///< flush + close, reporting failures

 private:
  std::string path_;
  std::vector<unsigned char> buf_;
  std::size_t used_ = 0;
  std::int64_t written_ = 0;
  int fd_ = -1;
};

/// Size of \p path in bytes; throws IoError when it cannot be stat'ed.
std::int64_t file_size(const std::string& path);

/// True when \p path exists (any type).
bool path_exists(const std::string& path);

/// Unlinks \p path; missing files are not an error.
void remove_file(const std::string& path);

/// mkdir -p.  Throws IoError when a component cannot be created.
void make_dirs(const std::string& path);

/// Recursively removes \p path if it exists (best-effort; errors ignored —
/// spill cleanup must never mask the real result of a run).
void remove_tree(const std::string& path);

/// The process's peak resident set size in bytes (ru_maxrss).
std::int64_t peak_rss_bytes();

}  // namespace starlay::support
