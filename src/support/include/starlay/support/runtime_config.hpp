#pragma once
/// \file runtime_config.hpp
/// \brief One startup parse of every STARLAY_* runtime knob.
///
/// The execution knobs used to be scattered getenv() calls — the pool read
/// STARLAY_THREADS, the kernel dispatcher STARLAY_SIMD, the CLI
/// STARLAY_WORKERS, and the shard engine fell back to a hard-coded spill
/// directory.  A long-running daemon cannot re-point them per job with
/// setenv() (getenv/setenv racing across threads is undefined behaviour),
/// so the environment is now read exactly once, into one immutable struct:
///
///  * RuntimeConfig::process() — the process-wide defaults, parsed from the
///    environment on first use and never again.  Every subsystem that used
///    to call getenv() reads this instead.
///  * Per-job overrides travel inside core::BuildRequest::options and are
///    applied scope-locally (pool resize, kernels::ScopedForcedLevel,
///    ShardOptions fields) — never by mutating the environment.
///
/// The historical variables keep their exact semantics:
///
///   STARLAY_THREADS    pool size, clamped to [1, 256]; unset/invalid =
///                      hardware concurrency
///   STARLAY_WORKERS    forked shard workers, clamped to [1, 256]; default 1
///   STARLAY_SIMD       requested kernel level ("scalar", "sse4", "avx2");
///                      unknown spellings keep auto-detection, unsupported
///                      levels clamp down (dispatch.cpp owns that logic)
///   STARLAY_SPILL_DIR  shard-engine spill root; default "starlay_spill"

#include <string>

namespace starlay::support {

struct RuntimeConfig {
  int threads = 0;        ///< pool size; 0 = hardware concurrency
  int workers = 1;        ///< forked shard worker processes
  std::string simd;       ///< requested kernel level; empty = auto-detect
  std::string spill_dir;  ///< shard spill root; empty = "starlay_spill"

  /// The process-wide defaults, parsed from the environment exactly once
  /// (thread-safe function-local static).  Later setenv() calls are
  /// intentionally invisible — consumers needing a different value pass an
  /// explicit override, they do not mutate the environment.
  static const RuntimeConfig& process();

  /// Parses a config from getenv-style lookups; exposed so tests can feed
  /// a fake environment.  \p get may return nullptr (unset).
  static RuntimeConfig from_env(const char* (*get)(const char*));
};

}  // namespace starlay::support
