#pragma once
/// \file check.hpp
/// \brief Invariant-checking helpers used across the library.
///
/// All library-level precondition violations throw starlay::InvariantError,
/// so tests can assert on failures without aborting the process.

#include <stdexcept>
#include <string>

namespace starlay {

/// Thrown when a library invariant or caller precondition is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Throws InvariantError with \p msg when \p cond is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvariantError(msg);
}

}  // namespace starlay

/// Convenience macro adding file/line context to the failure message.
#define STARLAY_REQUIRE(cond, msg)                                        \
  ::starlay::require((cond), std::string(msg) + " [" + __FILE__ + ":" + \
                                 std::to_string(__LINE__) + "]")
