#pragma once
/// \file check.hpp
/// \brief Invariant-checking helpers used across the library.
///
/// All library-level precondition violations throw starlay::InvariantError,
/// so tests can assert on failures without aborting the process.
///
/// STARLAY_REQUIRE builds its failure message *only on failure*: checks sit
/// on per-edge / per-vertex hot paths (graph building, placement digits,
/// wire appends), where eagerly concatenating the message string would
/// dominate the loop body.

#include <stdexcept>
#include <string>

namespace starlay {

/// Thrown when a library invariant or caller precondition is violated.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Throws InvariantError with \p msg when \p cond is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw InvariantError(msg);
}

[[noreturn]] inline void require_fail(const std::string& msg) { throw InvariantError(msg); }

}  // namespace starlay

/// Convenience macro adding file/line context to the failure message.  The
/// message expression is not evaluated unless the condition fails.
#define STARLAY_REQUIRE(cond, msg)                                             \
  do {                                                                         \
    if (!(cond))                                                               \
      ::starlay::require_fail(std::string(msg) + " [" + __FILE__ + ":" +       \
                              std::to_string(__LINE__) + "]");                 \
  } while (0)
