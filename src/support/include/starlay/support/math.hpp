#pragma once
/// \file math.hpp
/// \brief Exact integer math helpers shared by all subsystems.
///
/// Layout areas for an n-star grow like (n!)^2/16, so everything here is
/// 64-bit (or checked against overflow) rather than templated on smaller
/// integer types.

#include <cstdint>

namespace starlay {

/// Exact n! — throws InvariantError when the result would overflow int64.
/// Valid for 0 <= n <= 20.
std::int64_t factorial(int n);

/// Exact binomial coefficient C(n, k); throws on overflow.
std::int64_t binomial(int n, int k);

/// ceil(a / b) for positive b; works for negative a.
std::int64_t ceil_div(std::int64_t a, std::int64_t b);

/// floor(sqrt(x)) computed exactly for x >= 0.
std::int64_t isqrt(std::int64_t x);

/// Smallest integer m1 >= ceil(sqrt(m)) used by the paper's m1 x m2 node
/// grids (m2 = ceil(m / m1)); the pair satisfies m1 * m2 >= m with both
/// factors Theta(sqrt(m)).
struct GridFactors {
  int rows;  ///< m1 in the paper
  int cols;  ///< m2 in the paper
};
GridFactors grid_factors(int m);

/// floor(log2(x)) for x >= 1.
int ilog2(std::int64_t x);

/// True when x is a power of two (x >= 1).
bool is_pow2(std::int64_t x);

}  // namespace starlay
