#pragma once
/// \file telemetry.hpp
/// \brief Low-overhead instrumentation: phase spans, counters, RSS samples.
///
/// The streaming certifier runs multi-minute jobs (star n=10: 16.3M wires)
/// as one opaque call; this module makes the pipeline observable without
/// perturbing it.  Three primitives:
///
///  * ScopedPhase — a named, nested wall-time span.  Spans aggregate: two
///    ScopedPhase("band_replay") under the same parent merge into one node
///    with calls=2.  Nesting is tracked per thread; instrumentation sites
///    sit in *orchestration* code (between parallel_for calls, never inside
///    their bodies), so the span tree is a pure function of the work — it
///    is bit-identical for every STARLAY_THREADS setting and traces diff
///    cleanly.
///  * count(name, delta) — a monotonic counter attributed to the calling
///    thread's innermost open span (the trace root when none is open).
///    Hot loops must not call it per element: accumulate locally and add
///    one delta after the join, which also keeps attribution deterministic.
///  * An RSS sampler thread recording (seconds, resident bytes) every few
///    tens of milliseconds while a trace is active, so a trace shows the
///    memory *profile* of a run, not just the peak footer.
///
/// When no trace is active every primitive is one relaxed atomic load.
/// Configuring with -DSTARLAY_TELEMETRY=OFF compiles the instrumentation
/// out entirely (ScopedPhase/count become empty inlines); the report and
/// serialization types below stay available so consumers always compile.
///
/// Usage:
///   telemetry::start_trace();
///   { telemetry::ScopedPhase p("routing"); ...; telemetry::count("edges", E); }
///   telemetry::TraceReport rep = telemetry::stop_trace();
///   rep.summary_table();            // human-readable per-phase table
///   telemetry::write_trace_json(rep, "trace.json");

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#ifndef STARLAY_TELEMETRY
#define STARLAY_TELEMETRY 1
#endif

namespace starlay::support::telemetry {

/// One resident-set-size sample, relative to the trace start.
struct RssSample {
  double seconds = 0.0;
  std::int64_t rss_bytes = 0;
};

/// Aggregated span node: wall time and counter deltas attributed to one
/// phase, with children in first-open order.
struct TraceSpan {
  std::string name;
  std::int64_t calls = 0;
  double seconds = 0.0;
  std::vector<std::pair<std::string, std::int64_t>> counters;  ///< sorted by name
  std::vector<TraceSpan> children;
};

/// Snapshot of a finished trace.
struct TraceReport {
  TraceSpan root;                      ///< name "trace"; seconds == total_seconds
  double total_seconds = 0.0;
  int threads = 0;                     ///< pool size during the trace
  std::vector<RssSample> rss_samples;  ///< empty when sampling was off
  std::int64_t peak_rss_bytes = 0;     ///< max over samples (0 when off)

  /// Counters summed over the whole tree, sorted by name.
  std::vector<std::pair<std::string, std::int64_t>> total_counters() const;

  /// JSON object: {"schema": "starlay-trace-v1", "threads", "total_seconds",
  /// "peak_rss_mb", "counters", "rss_samples", "spans"}.
  std::string to_json() const;

  /// Human-readable per-phase table (indent = depth, wall ms, % of total,
  /// counter deltas), followed by an RSS-profile footer.
  std::string summary_table() const;

  /// Structure-only digest (names, nesting, calls, counters — no timings):
  /// what the determinism tests compare across thread counts.
  std::string structure_digest() const;
};

/// Writes to_json() to \p path; false when the file cannot be opened.
bool write_trace_json(const TraceReport& rep, const std::string& path);

struct TraceOptions {
  bool sample_rss = true;
  int rss_interval_ms = 50;
};

#if STARLAY_TELEMETRY

namespace detail {
extern std::atomic<bool> g_active;
/// Returns the node handle (nullptr when the trace stopped concurrently).
void* span_begin(std::string_view name, std::uint64_t* epoch_out);
void span_end(void* node, std::uint64_t epoch, double seconds);
void counter_add(std::string_view name, std::int64_t delta);
}  // namespace detail

/// True while a trace is active.  One relaxed load — callers may use it to
/// skip building span names dynamically.
inline bool tracing() { return detail::g_active.load(std::memory_order_relaxed); }

/// Starts a trace session (resets any previous tree).  Must not be called
/// while instrumented spans are open.
void start_trace(TraceOptions opt = {});

/// Stops the session and returns its snapshot.  Safe to call when no trace
/// is active (returns an empty report).
TraceReport stop_trace();

/// RAII phase span.  A no-op (one relaxed load) when no trace is active.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view name) {
    if (tracing()) node_ = detail::span_begin(name, &epoch_);
    if (node_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedPhase() {
    if (node_)
      detail::span_end(node_, epoch_,
                       std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0_)
                           .count());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  void* node_ = nullptr;
  std::uint64_t epoch_ = 0;
  std::chrono::steady_clock::time_point t0_;
};

/// Adds \p delta to counter \p name under the innermost open span of the
/// calling thread (the trace root when none).  No-op when not tracing.
inline void count(std::string_view name, std::int64_t delta) {
  if (tracing()) detail::counter_add(name, delta);
}

#else  // STARLAY_TELEMETRY compiled out

inline bool tracing() { return false; }
inline void start_trace(TraceOptions = {}) {}
inline TraceReport stop_trace() { return {}; }

class ScopedPhase {
 public:
  explicit ScopedPhase(std::string_view) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
};

inline void count(std::string_view, std::int64_t) {}

#endif  // STARLAY_TELEMETRY

}  // namespace starlay::support::telemetry
