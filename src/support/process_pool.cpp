#include "starlay/support/process_pool.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "starlay/support/check.hpp"
#include "starlay/support/mapped_file.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::support {

namespace {

std::string err_path(const std::string& err_dir, int worker) {
  return err_dir + "/worker_" + std::to_string(worker) + ".err";
}

/// Serializes the failure a child saw so the parent can rethrow its kind.
void write_error_file(const std::string& path, const IoError* io, const char* what) {
  std::ofstream f(path, std::ios::trunc);
  if (io != nullptr)
    f << "io\n" << io->op() << "\n" << io->path() << "\n" << io->error_code() << "\n";
  else
    f << "ex\n";
  f << (what != nullptr ? what : "unknown error") << "\n";
}

[[noreturn]] void rethrow_error_file(const std::string& path, int worker, int exit_code) {
  std::ifstream f(path);
  std::string kind;
  if (std::getline(f, kind)) {
    if (kind == "io") {
      std::string op, fpath, errline;
      if (std::getline(f, op) && std::getline(f, fpath) && std::getline(f, errline))
        throw IoError(op, fpath, std::atoi(errline.c_str()));
    } else {
      std::stringstream rest;
      rest << f.rdbuf();
      std::string msg = rest.str();
      while (!msg.empty() && msg.back() == '\n') msg.pop_back();
      if (!msg.empty()) throw InvariantError(msg);
    }
  }
  throw InvariantError("shard worker " + std::to_string(worker) +
                       " failed (exit code " + std::to_string(exit_code) +
                       ", no error report)");
}

}  // namespace

ProcessPoolResult run_process_tasks(int workers, std::int64_t num_tasks,
                                    const std::string& err_dir,
                                    const std::function<void(std::int64_t, int)>& fn) {
  ProcessPoolResult result;
  if (num_tasks <= 0) return result;
  if (workers <= 1) {
    for (std::int64_t t = 0; t < num_tasks; ++t) fn(t, 0);
    return result;
  }
  STARLAY_REQUIRE(ThreadPool::instance().num_threads() == 1,
                  "process pool: shrink the thread pool to 1 before forking");

  // Task counter in a shared anonymous page: children claim ids with a
  // plain fetch_add — lock-free, so no lock can be mid-held at fork time.
  void* page = ::mmap(nullptr, sizeof(std::atomic<std::int64_t>),
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  STARLAY_REQUIRE(page != MAP_FAILED, "process pool: shared counter mmap failed");
  auto* next_task = new (page) std::atomic<std::int64_t>(0);

  const int nworkers = static_cast<int>(
      std::min<std::int64_t>(workers, num_tasks));
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(nworkers));
  for (int wi = 0; wi < nworkers; ++wi) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      // Out of processes: reap what we started, then report.
      const int err = errno;
      for (const pid_t p : pids) {
        int st = 0;
        ::waitpid(p, &st, 0);
      }
      ::munmap(page, sizeof(std::atomic<std::int64_t>));
      throw IoError("fork", err_dir, err);
    }
    if (pid == 0) {
      // Child: claim and run tasks; report the first failure via an error
      // file and a nonzero exit.  _exit (not exit) — no atexit handlers,
      // no double-flushed inherited stdio.
      int code = 0;
      try {
        for (;;) {
          const std::int64_t t = next_task->fetch_add(1, std::memory_order_relaxed);
          if (t >= num_tasks) break;
          fn(t, wi);
        }
      } catch (const IoError& e) {
        write_error_file(err_path(err_dir, wi), &e, e.what());
        code = 75;
      } catch (const std::exception& e) {
        write_error_file(err_path(err_dir, wi), nullptr, e.what());
        code = 70;
      } catch (...) {
        write_error_file(err_path(err_dir, wi), nullptr, nullptr);
        code = 70;
      }
      ::_exit(code);
    }
    pids.push_back(pid);
  }

  result.workers.resize(static_cast<std::size_t>(nworkers));
  int first_failed = -1;
  int first_failed_code = 0;
  for (int wi = 0; wi < nworkers; ++wi) {
    int status = 0;
    struct rusage ru{};
    if (::wait4(pids[static_cast<std::size_t>(wi)], &status, 0, &ru) < 0) {
      result.workers[static_cast<std::size_t>(wi)].exit_code = -1;
      if (first_failed < 0) first_failed = wi;
      continue;
    }
    WorkerStatus& ws = result.workers[static_cast<std::size_t>(wi)];
    ws.peak_rss_bytes = static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
    ws.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128;
    if (ws.exit_code != 0 && first_failed < 0) {
      first_failed = wi;
      first_failed_code = ws.exit_code;
    }
  }
  ::munmap(page, sizeof(std::atomic<std::int64_t>));
  if (first_failed >= 0)
    rethrow_error_file(err_path(err_dir, first_failed), first_failed, first_failed_code);
  return result;
}

}  // namespace starlay::support
