#include "starlay/support/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

namespace starlay::support {

namespace {

std::string describe(const std::string& op, const std::string& path, int err) {
  return op + " " + path + ": " + std::strerror(err);
}

[[noreturn]] void throw_io(const std::string& op, const std::string& path) {
  throw IoError(op, path, errno);
}

}  // namespace

IoError::IoError(const std::string& op, const std::string& path, int err)
    : std::runtime_error(describe(op, path, err)), op_(op), path_(path), err_(err) {}

MappedFile::MappedFile(MappedFile&& o) noexcept
    : base_(std::exchange(o.base_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      fd_(std::exchange(o.fd_, -1)) {}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    close();
    base_ = std::exchange(o.base_, nullptr);
    size_ = std::exchange(o.size_, 0);
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

MappedFile::~MappedFile() { close(); }

MappedFile MappedFile::create(const std::string& path, std::int64_t bytes) {
  MappedFile f;
  f.fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (f.fd_ < 0) throw_io("create", path);
  if (bytes > 0) {
    if (::ftruncate(f.fd_, static_cast<off_t>(bytes)) != 0) {
      const int err = errno;
      ::close(f.fd_);
      f.fd_ = -1;
      throw IoError("resize", path, err);
    }
    f.base_ = ::mmap(nullptr, static_cast<std::size_t>(bytes), PROT_READ | PROT_WRITE,
                     MAP_SHARED, f.fd_, 0);
    if (f.base_ == MAP_FAILED) {
      const int err = errno;
      f.base_ = nullptr;
      ::close(f.fd_);
      f.fd_ = -1;
      throw IoError("mmap", path, err);
    }
  }
  f.size_ = bytes;
  return f;
}

MappedFile MappedFile::open(const std::string& path, bool writable) {
  MappedFile f;
  f.fd_ = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (f.fd_ < 0) throw_io("open", path);
  struct stat st{};
  if (::fstat(f.fd_, &st) != 0) {
    const int err = errno;
    ::close(f.fd_);
    f.fd_ = -1;
    throw IoError("stat", path, err);
  }
  f.size_ = static_cast<std::int64_t>(st.st_size);
  if (f.size_ > 0) {
    f.base_ = ::mmap(nullptr, static_cast<std::size_t>(f.size_),
                     writable ? (PROT_READ | PROT_WRITE) : PROT_READ, MAP_SHARED, f.fd_, 0);
    if (f.base_ == MAP_FAILED) {
      const int err = errno;
      f.base_ = nullptr;
      ::close(f.fd_);
      f.fd_ = -1;
      throw IoError("mmap", path, err);
    }
  }
  return f;
}

void MappedFile::drop_resident(std::int64_t off, std::int64_t len) const {
  if (base_ == nullptr || len <= 0) return;
  const std::int64_t page = static_cast<std::int64_t>(::sysconf(_SC_PAGESIZE));
  std::int64_t lo = (off / page) * page;
  std::int64_t hi = std::min(size_, ((off + len + page - 1) / page) * page);
  if (hi <= lo) return;
  // Best-effort: a failed advise costs memory, not correctness.
  (void)::madvise(static_cast<char*>(base_) + lo, static_cast<std::size_t>(hi - lo),
                  MADV_DONTNEED);
}

void MappedFile::close() {
  if (base_ != nullptr) {
    ::munmap(base_, static_cast<std::size_t>(size_));
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

AppendWriter::AppendWriter(const std::string& path, std::size_t buf_bytes)
    : path_(path), buf_(buf_bytes == 0 ? 1 : buf_bytes) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) throw_io("create", path);
}

AppendWriter::AppendWriter(AppendWriter&& o) noexcept
    : path_(std::move(o.path_)),
      buf_(std::move(o.buf_)),
      used_(std::exchange(o.used_, 0)),
      written_(std::exchange(o.written_, 0)),
      fd_(std::exchange(o.fd_, -1)) {}

AppendWriter& AppendWriter::operator=(AppendWriter&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    buf_ = std::move(o.buf_);
    used_ = std::exchange(o.used_, 0);
    written_ = std::exchange(o.written_, 0);
    fd_ = std::exchange(o.fd_, -1);
  }
  return *this;
}

AppendWriter::~AppendWriter() {
  if (fd_ >= 0) ::close(fd_);  // unflushed data is lost; close() observes errors
}

void AppendWriter::append(const void* p, std::size_t n) {
  // written_ counts logical bytes (buffered included) so spill accounting
  // does not depend on flush timing.
  written_ += static_cast<std::int64_t>(n);
  const auto* src = static_cast<const unsigned char*>(p);
  while (n > 0) {
    if (used_ == buf_.size()) flush();
    const std::size_t take = std::min(n, buf_.size() - used_);
    std::memcpy(buf_.data() + used_, src, take);
    used_ += take;
    src += take;
    n -= take;
  }
}

void AppendWriter::flush() {
  std::size_t done = 0;
  while (done < used_) {
    const ssize_t k = ::write(fd_, buf_.data() + done, used_ - done);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw_io("write", path_);
    }
    done += static_cast<std::size_t>(k);
  }
  used_ = 0;
}

void AppendWriter::close() {
  if (fd_ < 0) return;
  flush();
  if (::close(fd_) != 0) {
    fd_ = -1;
    throw_io("close", path_);
  }
  fd_ = -1;
}

std::int64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) throw_io("stat", path);
  return static_cast<std::int64_t>(st.st_size);
}

bool path_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

void remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) throw_io("unlink", path);
}

void make_dirs(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) throw IoError("mkdir", path, ec.value());
}

void remove_tree(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);  // best-effort by contract
}

std::int64_t peak_rss_bytes() {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::int64_t>(ru.ru_maxrss) * 1024;
}

}  // namespace starlay::support
