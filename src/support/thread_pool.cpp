#include "starlay/support/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/support/runtime_config.hpp"

namespace starlay::support {

namespace {

int env_or_hardware_threads() {
  if (const int cfg = RuntimeConfig::process().threads; cfg >= 1) return cfg;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

thread_local bool tls_in_pool_job = false;

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable job_cv;    // workers wait here for a new job
  std::condition_variable done_cv;   // run() waits here for completion
  std::vector<std::thread> workers;

  // Current job state, guarded by mu except for the chunk counter.
  std::uint64_t generation = 0;
  const std::function<void(std::int64_t)>* job = nullptr;
  std::int64_t job_chunks = 0;
  std::atomic<std::int64_t> next_chunk{0};
  std::int64_t chunks_done = 0;
  std::exception_ptr first_error;
  bool shutting_down = false;

  /// Grabs chunks until the counter is exhausted; returns how many ran.
  std::int64_t drain(const std::function<void(std::int64_t)>& fn, std::int64_t total) {
    std::int64_t ran = 0;
    for (;;) {
      const std::int64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= total) break;
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
      ++ran;
    }
    return ran;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    tls_in_pool_job = true;  // re-entrant run() calls from here stay inline
    for (;;) {
      const std::function<void(std::int64_t)>* fn = nullptr;
      std::int64_t total = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        job_cv.wait(lock, [&] { return shutting_down || generation != seen; });
        if (shutting_down) return;
        seen = generation;
        fn = job;
        total = job_chunks;
      }
      if (fn == nullptr) continue;  // woke after the job already completed
      const std::int64_t ran = drain(*fn, total);
      if (ran > 0) {
        std::lock_guard<std::mutex> lock(mu);
        chunks_done += ran;
        if (chunks_done == total) done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(new Impl), num_threads_(num_threads) {
  STARLAY_REQUIRE(num_threads >= 1, "ThreadPool: need at least one thread");
  for (int i = 1; i < num_threads; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->job_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool(env_or_hardware_threads());
  return pool;
}

void ThreadPool::set_num_threads(int n) {
  STARLAY_REQUIRE(n >= 1 && n <= 256, "ThreadPool::set_num_threads: n in [1, 256]");
  if (n == num_threads_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->job_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  impl_->workers.clear();
  impl_->shutting_down = false;
  num_threads_ = n;
  for (int i = 1; i < n; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

void ThreadPool::run(std::int64_t chunks, const std::function<void(std::int64_t)>& fn) {
  if (chunks <= 0) return;
  // Serial fast paths: tiny jobs, a 1-thread pool, or a nested call from
  // inside a running chunk.  Chunk order 0..chunks-1 here is irrelevant to
  // results (chunks are independent by contract).
  if (chunks == 1 || num_threads_ == 1 || tls_in_pool_job) {
    for (std::int64_t c = 0; c < chunks; ++c) fn(c);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &fn;
    impl_->job_chunks = chunks;
    impl_->next_chunk.store(0, std::memory_order_relaxed);
    impl_->chunks_done = 0;
    impl_->first_error = nullptr;
    ++impl_->generation;
  }
  impl_->job_cv.notify_all();
  const bool was_in_job = tls_in_pool_job;
  tls_in_pool_job = true;
  const std::int64_t ran = impl_->drain(fn, chunks);
  tls_in_pool_job = was_in_job;
  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->chunks_done += ran;
  impl_->done_cv.wait(lock, [&] { return impl_->chunks_done == chunks; });
  impl_->job = nullptr;
  if (impl_->first_error) {
    std::exception_ptr err = impl_->first_error;
    impl_->first_error = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::int64_t num_chunks(std::int64_t begin, std::int64_t end, std::int64_t grain) {
  STARLAY_REQUIRE(grain >= 1, "parallel_for: grain must be >= 1");
  return begin >= end ? 0 : ceil_div(end - begin, grain);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t, std::int64_t)>& fn) {
  const std::int64_t chunks = num_chunks(begin, end, grain);
  if (chunks == 0) return;
  ThreadPool::instance().run(chunks, [&](std::int64_t c) {
    const std::int64_t lo = begin + c * grain;
    const std::int64_t hi = lo + grain < end ? lo + grain : end;
    fn(lo, hi, c);
  });
}

}  // namespace starlay::support
