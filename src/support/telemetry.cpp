#include "starlay/support/telemetry.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

#if defined(__linux__)
#include <unistd.h>
#endif

namespace starlay::support::telemetry {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void span_to_json(const TraceSpan& s, std::string& out) {
  out += "{\"name\": \"" + json_escape(s.name) + "\", \"calls\": " +
         std::to_string(s.calls) + ", \"seconds\": ";
  append_num(out, s.seconds);
  out += ", \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out += "\"" + json_escape(s.counters[i].first) +
           "\": " + std::to_string(s.counters[i].second);
    if (i + 1 < s.counters.size()) out += ", ";
  }
  out += "}, \"children\": [";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    span_to_json(s.children[i], out);
    if (i + 1 < s.children.size()) out += ", ";
  }
  out += "]}";
}

void accumulate_counters(const TraceSpan& s, std::map<std::string, std::int64_t>& into) {
  for (const auto& [k, v] : s.counters) into[k] += v;
  for (const TraceSpan& c : s.children) accumulate_counters(c, into);
}

void span_table_rows(const TraceSpan& s, int depth, double total_seconds,
                     std::string& out) {
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  const double pct = total_seconds > 0.0 ? 100.0 * s.seconds / total_seconds : 0.0;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%-40s %7lld %12.2f %6.1f  ",
                (indent + s.name).c_str(), static_cast<long long>(s.calls),
                s.seconds * 1e3, pct);
  out += buf;
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out += s.counters[i].first + "=" + std::to_string(s.counters[i].second);
    if (i + 1 < s.counters.size()) out += " ";
  }
  out += "\n";
  for (const TraceSpan& c : s.children) span_table_rows(c, depth + 1, total_seconds, out);
}

void span_digest(const TraceSpan& s, int depth, std::string& out) {
  out += std::string(static_cast<std::size_t>(depth) * 2, ' ') + s.name + " calls=" +
         std::to_string(s.calls);
  for (const auto& [k, v] : s.counters) out += " " + k + "=" + std::to_string(v);
  out += "\n";
  for (const TraceSpan& c : s.children) span_digest(c, depth + 1, out);
}

}  // namespace

std::vector<std::pair<std::string, std::int64_t>> TraceReport::total_counters() const {
  std::map<std::string, std::int64_t> sums;
  accumulate_counters(root, sums);
  return {sums.begin(), sums.end()};
}

std::string TraceReport::to_json() const {
  std::string out = "{\n  \"schema\": \"starlay-trace-v1\",\n  \"threads\": " +
                    std::to_string(threads) + ",\n  \"total_seconds\": ";
  append_num(out, total_seconds);
  out += ",\n  \"peak_rss_mb\": ";
  append_num(out, static_cast<double>(peak_rss_bytes) / (1024.0 * 1024.0));
  out += ",\n  \"counters\": {";
  const auto totals = total_counters();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    out += "\"" + json_escape(totals[i].first) + "\": " + std::to_string(totals[i].second);
    if (i + 1 < totals.size()) out += ", ";
  }
  out += "},\n  \"rss_samples\": [";
  for (std::size_t i = 0; i < rss_samples.size(); ++i) {
    out += "{\"t\": ";
    append_num(out, rss_samples[i].seconds);
    out += ", \"rss_mb\": ";
    append_num(out, static_cast<double>(rss_samples[i].rss_bytes) / (1024.0 * 1024.0));
    out += "}";
    if (i + 1 < rss_samples.size()) out += ", ";
  }
  out += "],\n  \"spans\": ";
  span_to_json(root, out);
  out += "\n}\n";
  return out;
}

std::string TraceReport::summary_table() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-40s %7s %12s %6s  %s\n", "phase", "calls",
                "wall-ms", "%", "counters");
  out += buf;
  out += std::string(40, '-') + " " + std::string(7, '-') + " " + std::string(12, '-') +
         " " + std::string(6, '-') + "  " + std::string(24, '-') + "\n";
  span_table_rows(root, 0, total_seconds, out);
  if (!rss_samples.empty()) {
    std::int64_t lo = rss_samples.front().rss_bytes, hi = 0;
    for (const RssSample& s : rss_samples) {
      lo = std::min(lo, s.rss_bytes);
      hi = std::max(hi, s.rss_bytes);
    }
    std::snprintf(buf, sizeof buf,
                  "rss: %zu samples, min %.1f MiB, max %.1f MiB (threads=%d)\n",
                  rss_samples.size(), static_cast<double>(lo) / (1024.0 * 1024.0),
                  static_cast<double>(hi) / (1024.0 * 1024.0), threads);
    out += buf;
  }
  return out;
}

std::string TraceReport::structure_digest() const {
  std::string out;
  span_digest(root, 0, out);
  return out;
}

bool write_trace_json(const TraceReport& rep, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << rep.to_json();
  return static_cast<bool>(out);
}

#if STARLAY_TELEMETRY

namespace detail {

std::atomic<bool> g_active{false};

namespace {

/// Mutable span node while a trace is live.  Children in first-open order;
/// repeated same-name children under one parent merge (calls++).
struct SpanNode {
  std::string name;
  std::int64_t calls = 0;
  double seconds = 0.0;
  std::map<std::string, std::int64_t> counters;
  std::vector<std::unique_ptr<SpanNode>> children;
};

/// Per-thread open-span stack.  The epoch detects traces started after the
/// stack was last used, so stale frames from a previous session never leak
/// into a new tree.
struct TlStack {
  std::uint64_t epoch = 0;
  std::vector<SpanNode*> stack;
};
thread_local TlStack tl_stack;

std::int64_t read_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared ... (pages)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (!f) return 0;
  long long size = 0, resident = 0;
  const int got = std::fscanf(f, "%lld %lld", &size, &resident);
  std::fclose(f);
  if (got != 2) return 0;
  return resident * static_cast<std::int64_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

struct Engine {
  std::mutex mu;  ///< guards epoch, root, the tl stacks' shared tree
  std::uint64_t epoch = 0;
  std::unique_ptr<SpanNode> root;
  std::chrono::steady_clock::time_point t0;
  TraceOptions opt;

  std::mutex sampler_mu;  ///< guards samples + stop flag
  std::condition_variable sampler_cv;
  std::thread sampler;
  bool sampler_stop = false;
  std::vector<RssSample> samples;

  void sample_once() {
    const double t = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    samples.push_back({t, read_rss_bytes()});
  }
};

Engine& engine() {
  static Engine* e = new Engine;  // leaked: outlives static destruction order
  return *e;
}

void snapshot_span(const SpanNode& n, TraceSpan& out) {
  out.name = n.name;
  out.calls = n.calls;
  out.seconds = n.seconds;
  out.counters.assign(n.counters.begin(), n.counters.end());
  out.children.resize(n.children.size());
  for (std::size_t i = 0; i < n.children.size(); ++i)
    snapshot_span(*n.children[i], out.children[i]);
}

}  // namespace

void* span_begin(std::string_view name, std::uint64_t* epoch_out) {
  Engine& e = engine();
  std::lock_guard<std::mutex> lock(e.mu);
  if (!g_active.load(std::memory_order_relaxed)) return nullptr;
  TlStack& tl = tl_stack;
  if (tl.epoch != e.epoch) {
    tl.stack.clear();
    tl.epoch = e.epoch;
  }
  SpanNode* parent = tl.stack.empty() ? e.root.get() : tl.stack.back();
  SpanNode* node = nullptr;
  for (const auto& c : parent->children)
    if (c->name == name) {
      node = c.get();
      break;
    }
  if (!node) {
    parent->children.push_back(std::make_unique<SpanNode>());
    node = parent->children.back().get();
    node->name = std::string(name);
  }
  ++node->calls;
  tl.stack.push_back(node);
  *epoch_out = e.epoch;
  return node;
}

void span_end(void* handle, std::uint64_t epoch, double seconds) {
  Engine& e = engine();
  std::lock_guard<std::mutex> lock(e.mu);
  // A trace stopped (or restarted) while this span was open: the node may
  // no longer exist — drop the measurement rather than touch freed memory.
  if (epoch != e.epoch) return;
  auto* node = static_cast<SpanNode*>(handle);
  node->seconds += seconds;
  TlStack& tl = tl_stack;
  if (tl.epoch == e.epoch && !tl.stack.empty() && tl.stack.back() == node)
    tl.stack.pop_back();
}

void counter_add(std::string_view name, std::int64_t delta) {
  Engine& e = engine();
  std::lock_guard<std::mutex> lock(e.mu);
  if (!g_active.load(std::memory_order_relaxed)) return;
  TlStack& tl = tl_stack;
  SpanNode* node =
      (tl.epoch == e.epoch && !tl.stack.empty()) ? tl.stack.back() : e.root.get();
  node->counters[std::string(name)] += delta;
}

}  // namespace detail

void start_trace(TraceOptions opt) {
  detail::Engine& e = detail::engine();
  stop_trace();  // idempotent; joins a running sampler
  std::lock_guard<std::mutex> lock(e.mu);
  ++e.epoch;
  e.root = std::make_unique<detail::SpanNode>();
  e.root->name = "trace";
  e.root->calls = 1;
  e.t0 = std::chrono::steady_clock::now();
  e.opt = opt;
  {
    std::lock_guard<std::mutex> slock(e.sampler_mu);
    e.samples.clear();
    e.sampler_stop = false;
  }
  detail::g_active.store(true, std::memory_order_relaxed);
  if (opt.sample_rss) {
    const auto interval = std::chrono::milliseconds(std::max(1, opt.rss_interval_ms));
    e.sampler = std::thread([&e, interval] {
      std::unique_lock<std::mutex> lk(e.sampler_mu);
      e.sample_once();
      while (!e.sampler_cv.wait_for(lk, interval, [&e] { return e.sampler_stop; }))
        e.sample_once();
      e.sample_once();
    });
  }
}

TraceReport stop_trace() {
  detail::Engine& e = detail::engine();
  detail::g_active.store(false, std::memory_order_relaxed);
  if (e.sampler.joinable()) {
    {
      std::lock_guard<std::mutex> slock(e.sampler_mu);
      e.sampler_stop = true;
    }
    e.sampler_cv.notify_all();
    e.sampler.join();
  }
  TraceReport rep;
  std::lock_guard<std::mutex> lock(e.mu);
  if (!e.root) return rep;
  rep.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - e.t0).count();
  e.root->seconds = rep.total_seconds;
  detail::snapshot_span(*e.root, rep.root);
  rep.threads = ThreadPool::instance().num_threads();
  {
    std::lock_guard<std::mutex> slock(e.sampler_mu);
    rep.rss_samples = std::move(e.samples);
    e.samples.clear();
  }
  for (const RssSample& s : rep.rss_samples)
    rep.peak_rss_bytes = std::max(rep.peak_rss_bytes, s.rss_bytes);
  // Keep the tree alive (epoch-guarded) so spans still open in other
  // threads can unwind without touching freed memory; the next start_trace
  // replaces it.
  return rep;
}

#endif  // STARLAY_TELEMETRY

}  // namespace starlay::support::telemetry
