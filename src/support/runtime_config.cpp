#include "starlay/support/runtime_config.hpp"

#include <cstdlib>

namespace starlay::support {

namespace {

/// Strict positive-int parse with the historical clamp to [1, 256]; any
/// unparsable or non-positive value falls back to \p fallback (exactly what
/// the scattered strtol call sites did).
int parse_count(const char* s, int fallback) {
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 1) return fallback;
  return v > 256 ? 256 : static_cast<int>(v);
}

const char* real_getenv(const char* name) { return std::getenv(name); }

}  // namespace

RuntimeConfig RuntimeConfig::from_env(const char* (*get)(const char*)) {
  RuntimeConfig cfg;
  cfg.threads = parse_count(get("STARLAY_THREADS"), 0);
  cfg.workers = parse_count(get("STARLAY_WORKERS"), 1);
  if (const char* simd = get("STARLAY_SIMD"); simd != nullptr) cfg.simd = simd;
  if (const char* spill = get("STARLAY_SPILL_DIR"); spill != nullptr) cfg.spill_dir = spill;
  return cfg;
}

const RuntimeConfig& RuntimeConfig::process() {
  static const RuntimeConfig cfg = from_env(&real_getenv);
  return cfg;
}

}  // namespace starlay::support
