#include "starlay/core/suggest.hpp"

#include <algorithm>

namespace starlay::core {

std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
    }
  }
  return row[b.size()];
}

std::string_view nearest_name(std::string_view needle,
                              const std::vector<std::string_view>& candidates) {
  std::string_view best;
  std::size_t best_dist = 0;
  bool have = false;
  for (const std::string_view c : candidates) {
    const std::size_t d = edit_distance(needle, c);
    if (!have || d < best_dist || (d == best_dist && c < best)) {
      best = c;
      best_dist = d;
      have = true;
    }
  }
  return best;
}

}  // namespace starlay::core
