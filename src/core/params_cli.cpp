#include "starlay/core/params_cli.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace starlay::core {

namespace {

BuildError invalid_argument(std::string message) {
  BuildError err;
  err.code = BuildErrorCode::kInvalidArgument;
  err.message = std::move(message);
  return err;
}

/// Strict base-10 int parse: the whole token must be one in-range integer.
bool parse_int(std::string_view text, int* out) {
  if (text.empty()) return false;
  // strtol needs NUL termination; tokens are short.
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

struct FlagSpec {
  std::string_view flag;
  unsigned field_bit;  ///< ParamField bit; 0 for --family / --n
};
constexpr FlagSpec kFlags[] = {
    {"--family", 0},
    {"--n", 0},
    {"--base-size", kParamBaseSize},
    {"--layers", kParamLayers},
    {"--multiplicity", kParamMultiplicity},
};

}  // namespace

BuildOutcome<ParsedBuildParams> parse_build_params(int argc, const char* const* argv,
                                                   std::vector<std::string>* extra) {
  ParsedBuildParams out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const FlagSpec* spec = nullptr;
    std::string_view value;
    bool have_value = false;
    for (const FlagSpec& f : kFlags) {
      if (arg == f.flag) {
        spec = &f;
        if (i + 1 < argc) {
          value = argv[++i];
          have_value = true;
        }
        break;
      }
      if (arg.size() > f.flag.size() && arg.substr(0, f.flag.size()) == f.flag &&
          arg[f.flag.size()] == '=') {
        spec = &f;
        value = arg.substr(f.flag.size() + 1);
        have_value = true;
        break;
      }
    }
    if (!spec) {
      if (extra) {
        extra->emplace_back(arg);
        continue;
      }
      return invalid_argument("unknown argument '" + std::string(arg) + "'");
    }
    if (!have_value)
      return invalid_argument("missing value after '" + std::string(spec->flag) + "'");

    if (spec->flag == "--family") {
      out.family = std::string(value);
      continue;
    }
    int parsed = 0;
    if (!parse_int(value, &parsed))
      return invalid_argument("bad integer '" + std::string(value) + "' for '" +
                              std::string(spec->flag) + "'");
    if (spec->flag == "--n") {
      out.params.n = parsed;
      out.n_set = true;
    } else if (spec->field_bit == kParamBaseSize) {
      out.params.base_size = parsed;
      out.explicit_fields |= kParamBaseSize;
    } else if (spec->field_bit == kParamLayers) {
      out.params.layers = parsed;
      out.explicit_fields |= kParamLayers;
    } else {
      out.params.multiplicity = parsed;
      out.explicit_fields |= kParamMultiplicity;
    }
  }
  return out;
}

BuildOutcome<const LayoutBuilder*> resolve_builder(const ParsedBuildParams& parsed) {
  if (parsed.family.empty()) return invalid_argument("missing --family NAME");
  if (!parsed.n_set) return invalid_argument("missing --n INT");
  BuildOutcome<const LayoutBuilder*> found = try_find_builder(parsed.family);
  if (!found.ok()) return found;
  const LayoutBuilder* builder = found.value();
  if (BuildStatus st = parsed.params.validate(*builder, parsed.explicit_fields); !st.ok())
    return st.error();
  return builder;
}

}  // namespace starlay::core
