#include "starlay/core/params_cli.hpp"

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace starlay::core {

namespace {

BuildError invalid_argument(std::string message) {
  BuildError err;
  err.code = BuildErrorCode::kInvalidArgument;
  err.message = std::move(message);
  return err;
}

/// Strict base-10 int parse: the whole token must be one in-range integer.
bool parse_int(std::string_view text, int* out) {
  if (text.empty()) return false;
  // strtol needs NUL termination; tokens are short.
  const std::string buf(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size() || v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

struct FlagSpec {
  std::string_view flag;
  unsigned field_bit;  ///< ParamField bit; 0 for --family / --n
};
constexpr FlagSpec kFlags[] = {
    {"--family", 0},
    {"--n", 0},
    {"--base-size", kParamBaseSize},
    {"--layers", kParamLayers},
    {"--multiplicity", kParamMultiplicity},
};

}  // namespace

BuildOutcome<ParsedBuildParams> parse_build_params(int argc, const char* const* argv,
                                                   std::vector<std::string>* extra) {
  ParsedBuildParams out;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const FlagSpec* spec = nullptr;
    std::string_view value;
    bool have_value = false;
    for (const FlagSpec& f : kFlags) {
      if (arg == f.flag) {
        spec = &f;
        if (i + 1 < argc) {
          value = argv[++i];
          have_value = true;
        }
        break;
      }
      if (arg.size() > f.flag.size() && arg.substr(0, f.flag.size()) == f.flag &&
          arg[f.flag.size()] == '=') {
        spec = &f;
        value = arg.substr(f.flag.size() + 1);
        have_value = true;
        break;
      }
    }
    if (!spec) {
      if (extra) {
        extra->emplace_back(arg);
        continue;
      }
      return invalid_argument("unknown argument '" + std::string(arg) + "'");
    }
    if (!have_value)
      return invalid_argument("missing value after '" + std::string(spec->flag) + "'");

    if (spec->flag == "--family") {
      out.family = std::string(value);
      continue;
    }
    int parsed = 0;
    if (!parse_int(value, &parsed))
      return invalid_argument("bad integer '" + std::string(value) + "' for '" +
                              std::string(spec->flag) + "'");
    if (spec->flag == "--n") {
      out.params.n = parsed;
      out.n_set = true;
    } else if (spec->field_bit == kParamBaseSize) {
      out.params.base_size = parsed;
      out.explicit_fields |= kParamBaseSize;
    } else if (spec->field_bit == kParamLayers) {
      out.params.layers = parsed;
      out.explicit_fields |= kParamLayers;
    } else {
      out.params.multiplicity = parsed;
      out.explicit_fields |= kParamMultiplicity;
    }
  }
  return out;
}

BuildOutcome<const LayoutBuilder*> resolve_builder(const ParsedBuildParams& parsed) {
  if (parsed.family.empty()) return invalid_argument("missing --family NAME");
  if (!parsed.n_set) return invalid_argument("missing --n INT");
  BuildOutcome<const LayoutBuilder*> found = try_find_builder(parsed.family);
  if (!found.ok()) return found;
  const LayoutBuilder* builder = found.value();
  if (BuildStatus st = parsed.params.validate(*builder, parsed.explicit_fields); !st.ok())
    return st.error();
  return builder;
}

BuildOutcome<ParsedBuildRequest> parse_build_request(int argc, const char* const* argv,
                                                     std::vector<std::string>* extra) {
  std::vector<std::string> rest;
  BuildOutcome<ParsedBuildParams> base = parse_build_params(argc, argv, &rest);
  if (!base.ok()) return base.error();

  ParsedBuildRequest out;
  out.request = BuildRequest::with_process_defaults();
  out.request.family = base.value().family;
  out.request.params = base.value().params;
  out.request.explicit_fields = base.value().explicit_fields;
  out.n_set = base.value().n_set;

  // Same two spellings as the shared flags: `--flag value` and `--flag=value`.
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string_view arg = rest[i];
    const auto take_value = [&](std::string_view flag, std::string_view* value) {
      if (arg == flag) {
        if (i + 1 >= rest.size()) return false;
        *value = rest[++i];
        return true;
      }
      *value = arg.substr(flag.size() + 1);
      return true;
    };
    const auto matches = [&](std::string_view flag) {
      return arg == flag || (arg.size() > flag.size() &&
                             arg.substr(0, flag.size()) == flag && arg[flag.size()] == '=');
    };
    const auto int_flag = [&](std::string_view flag, int* slot) -> BuildStatus {
      std::string_view value;
      if (!take_value(flag, &value))
        return invalid_argument("missing value after '" + std::string(flag) + "'");
      int parsed = 0;
      if (!parse_int(value, &parsed) || parsed < 1)
        return invalid_argument("bad value '" + std::string(value) + "' for '" +
                                std::string(flag) + "' (want an integer >= 1)");
      *slot = parsed;
      return {};
    };

    if (matches("--passes")) {
      std::string_view value;
      if (!take_value("--passes", &value))
        return invalid_argument("missing value after '--passes'");
      BuildOutcome<PassList> passes = parse_pass_list(value);
      if (!passes.ok()) return passes.error();
      out.request.passes = passes.value();
    } else if (matches("--threads")) {
      if (BuildStatus st = int_flag("--threads", &out.request.options.threads); !st.ok())
        return st.error();
    } else if (matches("--workers")) {
      if (BuildStatus st = int_flag("--workers", &out.request.options.workers); !st.ok())
        return st.error();
    } else if (matches("--shards")) {
      if (BuildStatus st = int_flag("--shards", &out.request.options.shards); !st.ok())
        return st.error();
    } else if (matches("--simd")) {
      std::string_view value;
      if (!take_value("--simd", &value))
        return invalid_argument("missing value after '--simd'");
      if (!parse_simd_level(value))
        return invalid_argument("unknown SIMD level '" + std::string(value) +
                                "' for '--simd' (scalar | sse4 | avx2)");
      out.request.options.simd = std::string(value);
    } else if (matches("--spill-dir")) {
      std::string_view value;
      if (!take_value("--spill-dir", &value))
        return invalid_argument("missing value after '--spill-dir'");
      out.request.options.spill_dir = std::string(value);
    } else {
      if (extra == nullptr)
        return invalid_argument("unknown argument '" + std::string(arg) + "'");
      extra->emplace_back(arg);
    }
  }
  return out;
}

BuildOutcome<const LayoutBuilder*> resolve_request(const ParsedBuildRequest& parsed) {
  if (parsed.request.family.empty()) return invalid_argument("missing --family NAME");
  if (!parsed.n_set) return invalid_argument("missing --n INT");
  return parsed.request.resolve();
}

}  // namespace starlay::core
