#include "starlay/core/build_request.hpp"

#include <string>

#include "starlay/support/runtime_config.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::core {

namespace kern = layout::kernels;

BuildRequest BuildRequest::with_process_defaults() {
  const support::RuntimeConfig& cfg = support::RuntimeConfig::process();
  BuildRequest req;
  req.options.threads = cfg.threads;
  req.options.simd = cfg.simd;
  req.options.workers = cfg.workers;
  req.options.spill_dir = cfg.spill_dir;
  return req;
}

BuildOutcome<const LayoutBuilder*> BuildRequest::resolve() const {
  BuildOutcome<const LayoutBuilder*> found = try_find_builder(family);
  if (!found.ok()) return found;
  const LayoutBuilder* builder = found.value();
  if (BuildStatus st = params.validate(*builder, explicit_fields); !st.ok())
    return st.error();
  if (!passes.empty() && !builder->supports_passes()) {
    BuildError err;
    err.code = BuildErrorCode::kUnknownParam;
    err.message = "--passes does not apply to family '" + std::string(builder->name()) +
                  "' (only the star hierarchy machinery threads optimization passes)";
    return err;
  }
  return builder;
}

std::string BuildRequest::canonical_key(const LayoutBuilder& builder) const {
  std::string key = "family=";
  key += builder.name();
  key += " n=";
  key += std::to_string(params.n);
  // Every field the family reads appears, even at its default value, so a
  // future default change can never silently alias two distinct layouts
  // under one key.  Fields the family ignores never appear, so "hcn n=3
  // base=5" and "hcn n=3" collapse to the same (identical) layout.
  const unsigned used = builder.params_used();
  if ((used & kParamBaseSize) != 0) key += " base=" + std::to_string(params.base_size);
  if ((used & kParamLayers) != 0) key += " layers=" + std::to_string(params.layers);
  if ((used & kParamMultiplicity) != 0)
    key += " mult=" + std::to_string(params.multiplicity);
  if (!passes.empty()) {
    key += " passes=";
    key += passes.compact ? (passes.refine ? "compact,refine" : "compact") : "refine";
  }
  return key;
}

ScopedRequestRuntime::ScopedRequestRuntime(const RequestOptions& options) {
  if (!options.simd.empty()) {
    // Unknown spellings keep the startup level — the same graceful-fallback
    // contract the STARLAY_SIMD environment variable has always had.
    if (std::optional<kern::SimdLevel> level = parse_simd_level(options.simd))
      forced_.emplace(*level);
  }
  if (options.threads >= 1) {
    support::ThreadPool& pool = support::ThreadPool::instance();
    if (pool.num_threads() != options.threads) {
      restore_threads_ = pool.num_threads();
      pool.set_num_threads(options.threads);
    }
  }
}

ScopedRequestRuntime::~ScopedRequestRuntime() {
  if (restore_threads_ >= 1)
    support::ThreadPool::instance().set_num_threads(restore_threads_);
}

kern::SimdLevel ScopedRequestRuntime::active_level() const { return kern::active_level(); }

std::optional<kern::SimdLevel> parse_simd_level(std::string_view name) {
  if (name == "scalar") return kern::SimdLevel::kScalar;
  if (name == "sse4" || name == "sse4.2") return kern::SimdLevel::kSSE4;
  if (name == "avx2") return kern::SimdLevel::kAVX2;
  return std::nullopt;
}

}  // namespace starlay::core
