#pragma once
/// \file star_shard.hpp
/// \brief Sharded out-of-core certification of the star-graph layout.
///
/// The streaming pipeline (star_layout_stream + StreamingCertifier) already
/// avoids materializing geometry, but it still holds the router's O(N + E)
/// plan tables — placement digits, stub offsets, interval keys, track
/// assignments — in anonymous memory, and it re-runs the router's fill once
/// per certification batch.  At star n = 11 (N = 39,916,800 vertices,
/// E = 199,584,000 edges) those tables alone exceed any sane RSS budget.
///
/// star_certify_sharded replaces the in-memory tables with mmap-backed
/// spill files and splits every O(N)/O(E) pass into independent range
/// tasks executed by forked worker processes (support/process_pool.hpp);
/// STARLAY_WORKERS=1 runs the same tasks as sequential passes in-process.
/// The phases mirror the router's plan/assign/emit stages exactly:
///
///   1. plan     — enumerate rank shards, classify + orient each edge
///                 (row / column / L), spill wire preplans and stub records;
///   2. stubs    — per slot band, sort stub records and assign the router's
///                 per-side stub offsets;
///   3-6. pack   — per channel band, left-edge pack the horizontal then
///                 vertical interval keys (identical track assignment to the
///                 router: packing is a pure function of the interval set);
///   7. scan     — per edge band, rebuild each wire from its preplan and run
///                 the per-wire rules, accumulators, fingerprint chunks and
///                 band record counts;
///   8. records  — scatter cross-wire certification records into per-batch
///                 spill buckets;
///   9. batches  — sort + certify each batch with the shared kernels
///                 (layout/stream_records.hpp).
///
/// The coordinator merges per-task results in task order, reproducing the
/// StreamingCertifier's chunk-ordered merge: the final report, error
/// message sequence, and canonical wire fingerprint are bit-identical to
/// the single-process streaming run at every shard and worker count.
///
/// Peak RSS per process is bounded by one band's working set (the spill
/// data itself lives in the page cache), which is what makes n = 11
/// certifiable end-to-end in a ~2 GB-per-process envelope.

#include <cstdint>
#include <string>
#include <vector>

#include "starlay/core/build_status.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/stream_certify.hpp"

namespace starlay::core {

/// Analytic view of the star placement's slot grid: per-level block shapes,
/// strides, and digit counts, derived from star_level_shapes without the
/// O(N * levels) digit-path buffer.  Exposed for tests: occupied() and
/// rank_of_slot() must agree with star_structure's materialized placement.
struct StarSlotGrid {
  int n = 0;
  int base_size = 0;
  int levels = 0;
  std::vector<layout::LevelShape> shapes;   ///< outermost level first
  std::vector<std::int64_t> rstride;        ///< per level, rows of inner levels
  std::vector<std::int64_t> cstride;
  std::vector<std::int32_t> digit_count;    ///< valid digits per level
  std::int32_t rows = 0, cols = 0;          ///< full grid extent

  /// Requires 2 <= base_size <= n <= 12 (star_level_shapes' domain).
  static StarSlotGrid make(int n, int base_size);

  /// Grid row/column of a digit path (one digit per level, outermost first,
  /// base-block rank last) — matches hierarchical_placement.
  std::int32_t row_of_digits(const std::int32_t* d) const;
  std::int32_t col_of_digits(const std::int32_t* d) const;

  /// True when the slot holds a vertex.  Factoradic independence makes this
  /// exact: slot (r, c) decomposes uniquely into per-level digits, and the
  /// slot is occupied iff every digit is below its level's count.
  bool occupied(std::int64_t slot) const;

  /// Rank (= vertex id) of the permutation at an occupied slot.
  std::int64_t rank_of_slot(std::int64_t slot) const;
};

struct ShardOptions {
  int base_size = 3;        ///< the paper's l = O(1) base-block size
  int num_shards = 0;       ///< rank-range shards; 0 = auto (4 per worker)
  int workers = 1;          ///< forked processes; <= 1 = sequential in-process
  std::string spill_dir;    ///< spill root (empty = RuntimeConfig::process()
                            ///< .spill_dir, else "starlay_spill" in the CWD);
                            ///< the engine owns only its own
                            ///< "<root>/star_n<n>" subtree
  bool keep_spill = false;  ///< keep the spill tree for post-mortems
  layout::ValidationOptions validation;
  std::int64_t batch_budget_bytes = std::int64_t{384} << 20;
  int band_shift = 12;      ///< grid lines per certification band (log2)
};

struct ShardReport {
  /// Field-identical to the StreamingCertifier's report for the same n
  /// (num_replays counts logical passes over the edge space).
  layout::StreamReport stream;
  /// Canonical wire digest — equals FingerprintingSink over the same build.
  std::uint64_t wire_fingerprint = 0;
  layout::RouteStats route;
  int num_shards = 0;
  int num_workers = 0;
  std::int64_t spill_bytes_written = 0;       ///< total bytes spilled to disk
  std::int64_t coordinator_peak_rss_bytes = 0;
  std::int64_t worker_peak_rss_bytes = 0;     ///< max child ru_maxrss (0 inline)
};

/// Certifies the optimal star layout of dimension \p n out of core.
/// Errors: n outside [2, 12] -> kSizeOutOfRange; spill I/O failures ->
/// kIoError (io_path/io_errno filled); internal budget violations ->
/// kBudgetExceeded.
BuildOutcome<ShardReport> star_certify_sharded(int n, const ShardOptions& opt = {});

}  // namespace starlay::core
