#pragma once
/// \file params_cli.hpp
/// \brief One command-line parser for the shared BuildParams flag family.
///
/// Every driver that builds "family F at size n" — starlay_cli, the bench
/// harness, the examples — accepts the same five flags:
///
///   --family NAME   --n INT   --base-size INT   --layers INT   --multiplicity INT
///
/// in both `--flag value` and `--flag=value` spellings.  This header is the
/// single implementation, so a bad integer, an unknown family (with its
/// nearest-name suggestion), or a flag the family does not read (--layers
/// on a hypercube) produces the *same* diagnostic from every driver.
/// Errors come back as BuildOutcome values (build_status.hpp), never as
/// exits or throws, so drivers own their usage text and exit codes.

#include <string>
#include <vector>

#include "starlay/core/build_request.hpp"
#include "starlay/core/build_status.hpp"
#include "starlay/core/builder.hpp"

namespace starlay::core {

/// BuildParams plus what the command line actually said, so validation can
/// distinguish "explicitly passed --layers 2" from "left at the default".
struct ParsedBuildParams {
  std::string family;            ///< empty when --family was absent
  BuildParams params;
  unsigned explicit_fields = 0;  ///< ParamField bits of flags seen on the line
  bool n_set = false;            ///< --n was present
};

/// Parses the shared builder flags out of argv[1..argc).  Arguments outside
/// the shared family (a driver's own --mode, --svg, ...) are appended to
/// \p extra in order when it is non-null, and reported as kInvalidArgument
/// when it is null.  A malformed value (unparsable integer, missing value
/// after a flag) is kInvalidArgument naming the offending argument.
BuildOutcome<ParsedBuildParams> parse_build_params(int argc, const char* const* argv,
                                                   std::vector<std::string>* extra = nullptr);

/// Resolves a parsed line against the registry: requires --family and --n,
/// looks the family up (kUnknownFamily with suggestion), and validates the
/// params against it (kSizeOutOfRange with the valid range, kUnknownParam
/// for an explicitly-set flag the family does not read).
BuildOutcome<const LayoutBuilder*> resolve_builder(const ParsedBuildParams& parsed);

/// A full BuildRequest parsed off a driver command line, plus what the
/// line actually said (resolve_request needs to require --n).
struct ParsedBuildRequest {
  BuildRequest request;  ///< options pre-seeded from RuntimeConfig::process()
  bool n_set = false;    ///< --n was present
};

/// Parses the shared builder flags (parse_build_params) PLUS the
/// request-level flags
///
///   --passes CSV      optimization passes ("compact,refine")
///   --threads INT     pool size for this job (>= 1)
///   --simd LEVEL      forced kernel level: scalar | sse4 | avx2
///   --workers INT     sharded runs: forked worker processes (>= 1)
///   --shards INT      sharded runs: rank-range shard count (>= 1)
///   --spill-dir PATH  sharded runs: spill root
///
/// (RequestOptions::trace has no flag here: starlay_cli's --trace takes a
/// PATH and stays driver-specific; the daemon protocol sets it from JSON.)
///
/// into a BuildRequest whose options start from the process-wide
/// RuntimeConfig defaults — so a flag overrides the environment, and an
/// absent flag inherits it.  Unknown-pass and unknown-SIMD spellings are
/// parse errors here (drivers want loud diagnostics), unlike the
/// environment variables' silent-fallback contract.  Leftover arguments go
/// to \p extra exactly as in parse_build_params.
BuildOutcome<ParsedBuildRequest> parse_build_request(int argc, const char* const* argv,
                                                     std::vector<std::string>* extra = nullptr);

/// resolve_builder for full requests: requires --family and --n, then
/// defers to BuildRequest::resolve() (family lookup + param + pass checks).
BuildOutcome<const LayoutBuilder*> resolve_request(const ParsedBuildRequest& parsed);

}  // namespace starlay::core
