#pragma once
/// \file builder.hpp
/// \brief Unified builder interface + registry over every network family.
///
/// Each family (star, HCN, hypercube, complete-graph variants, baselines)
/// registers one LayoutBuilder.  Every consumer that wants "a layout of
/// family F at size n" — the CLI driver, the design explorer, tests that
/// sweep families — goes through find_builder()/all_builders() instead of
/// hard-coding the per-family entry points.  Both execution modes share
/// one construction: build() materializes the geometry, build_stream()
/// emits it into a WireSink (a StreamingCertifier validates and measures
/// tile-by-tile without ever holding the full wire store).

#include <string_view>
#include <utility>
#include <vector>

#include "starlay/layout/router.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

/// Family-independent size knobs.  Builders read the fields that apply to
/// them and ignore the rest (the star's base_size means nothing to a
/// hypercube; multiplicity only matters to complete-graph variants).
struct BuildParams {
  int n = 0;             ///< primary size: star/transposition n, HCN h, hypercube d, K_m m
  int base_size = 3;     ///< star hierarchy base block size (the paper's l = O(1))
  int layers = 2;        ///< wiring layers for the multilayer X-Y variants
  int multiplicity = 1;  ///< parallel links per pair (complete-graph variants)
};

/// Materialized build: the subject graph plus its routed, stored layout.
struct BuildResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
};

/// One network family's entry point, in both execution modes.
class LayoutBuilder {
 public:
  virtual ~LayoutBuilder() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Inclusive [min, max] range of BuildParams::n this family accepts.
  virtual std::pair<int, int> n_range() const = 0;

  /// Materializes the full layout (geometry stored in a WireStore).
  virtual BuildResult build(const BuildParams& params) const = 0;

  /// Streams the same construction into \p sink.  With a
  /// layout::MaterializingSink the emitted geometry is bit-identical to
  /// build(); with a layout::StreamingCertifier it is validated and
  /// measured without being stored.  On return \p graph_out (if non-null)
  /// receives the subject graph, its CSR adjacency released where the
  /// family can afford to (degrees stay available).
  virtual layout::RouteStats build_stream(const BuildParams& params, layout::WireSink& sink,
                                          topology::Graph* graph_out = nullptr) const = 0;
};

/// Looks up a registered family by name; nullptr when unknown.
const LayoutBuilder* find_builder(std::string_view name);

/// All registered families, sorted by name.
std::vector<const LayoutBuilder*> all_builders();

}  // namespace starlay::core
