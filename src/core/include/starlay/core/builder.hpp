#pragma once
/// \file builder.hpp
/// \brief Unified builder interface + registry over every network family.
///
/// Each family (star, HCN, hypercube, complete-graph variants, baselines)
/// registers one LayoutBuilder.  Every consumer that wants "a layout of
/// family F at size n" — the CLI driver, the design explorer, tests that
/// sweep families — goes through the registry instead of hard-coding the
/// per-family entry points.  Both execution modes share one construction:
/// build() materializes the geometry, build_stream() emits it into a
/// WireSink (a StreamingCertifier validates and measures tile-by-tile
/// without ever holding the full wire store).
///
/// Two API tiers:
///
///  * The *stable, error-returning* surface — try_find_builder(),
///    try_build(), try_build_stream(), BuildParams::validate() — returns
///    structured BuildStatus/BuildOutcome errors (unknown family with a
///    nearest-name suggestion, n out of range with the valid range, a
///    param the family does not read, a blown resource budget) and never
///    throws on bad input.  Drivers (CLI, explorer, benches) use this tier.
///  * The historical asserting surface — find_builder(), build(),
///    build_stream() — is a thin wrapper over the same checks that throws
///    InvariantError where the stable tier would return an error.  In-tree
///    code whose params are correct by construction keeps using it.

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "starlay/core/build_status.hpp"
#include "starlay/core/pass.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

class LayoutBuilder;
struct BuildRequest;  // build_request.hpp — the unified request representation

/// Bit per BuildParams field (beyond n, which every family reads).
/// LayoutBuilder::params_used() advertises which fields a family consumes;
/// BuildParams::validate() rejects set-but-unread fields.
enum ParamField : unsigned {
  kParamBaseSize = 1u << 0,
  kParamLayers = 1u << 1,
  kParamMultiplicity = 1u << 2,
  kParamAll = kParamBaseSize | kParamLayers | kParamMultiplicity,
};

/// Family-independent size knobs.  Builders read the fields that apply to
/// them (params_used()) and ignore the rest — validate() turns a set-but-
/// ignored field into a structured error instead of a silent drop.
struct BuildParams {
  int n = 0;             ///< primary size: star/transposition n, HCN h, hypercube d, K_m m
  int base_size = 3;     ///< star hierarchy base block size (the paper's l = O(1))
  int layers = 2;        ///< wiring layers for the multilayer X-Y variants
  int multiplicity = 1;  ///< parallel links per pair (complete-graph variants)

  /// Bits of the fields whose values differ from the defaults above.
  unsigned nondefault_fields() const;

  /// Checks this param set against \p builder: n inside n_range()
  /// (kSizeOutOfRange, range attached) and every checked field read by the
  /// family (kUnknownParam).  \p explicit_fields names the fields a driver
  /// saw set explicitly (ParamField bits); fields with non-default values
  /// are always checked, so programmatic callers may pass 0.
  BuildStatus validate(const LayoutBuilder& builder, unsigned explicit_fields = 0) const;
};

/// Materialized build: the subject graph plus its routed, stored layout.
struct BuildResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
};

/// The paper-derived, machine-checkable bounds of one family.  The
/// verification subsystem (src/check) re-derives what a finished layout's
/// measured quantities must satisfy from the closed forms of formulas.hpp
/// — independently of the construction that produced the layout — so a
/// constant-factor regression (a doubled channel, a dropped bundle
/// halving) trips a bound even though the layout stays validator-clean.
///
/// Finite-size semantics: the paper's area claims are leading terms with
/// o(.) slack, so `area_leading` is checked as
///     layout.area() <= area_slack * area_leading(params)
/// and only once params.n >= area_min_n (below that the lower-order terms
/// dominate and the leading term says nothing).  Slack factors are
/// calibrated against the tree's actual constructions and recorded here so
/// any future growth of the constant factor is caught.
struct BoundSpec {
  /// Leading-term layout area the paper claims (formulas.hpp closed form);
  /// absent = no area claim for this family.
  std::function<double(const BuildParams&)> area_leading;
  double area_slack = 0.0;  ///< calibrated finite-size factor (see above)
  int area_min_n = 0;       ///< smallest n at which the area bound is checked

  /// Exact collinear track count (Lemma 2.1): the number of distinct
  /// horizontal grid lines carrying wire segments.  Absent for 2-D layouts.
  std::function<std::int64_t(const BuildParams&)> tracks_exact;

  /// Exact wiring layer count (Layout::num_layers()) once the build has at
  /// least 2x that many wires; an upper bound below that (tiny builds may
  /// not touch every layer).  Absent = unchecked.
  std::function<int(const BuildParams&)> layers_exact;

  const char* claim = "";  ///< the lemma/theorem the bounds come from

  /// Exact *host-embedding* total wirelengths (arXiv 2204.12079 /
  /// cs/0105034 style): the sum over subject edges of the host-graph
  /// distance between the endpoint slots of the family's placement,
  /// independent of how the router detours around congestion.  The oracle
  /// recovers the logical lattice from the finished node rectangles and
  /// checks these as *equalities*, so a silently permuted placement or a
  /// dropped edge trips them even when the layout stays validator-clean.
  ///
  ///  * wl_grid_exact — host is the rows x cols grid (Manhattan distance
  ///    on recovered lattice coordinates).
  ///  * wl_cylinder_exact — grid with the axis that has FEWER distinct
  ///    lines wrapped (ties wrap y); distances on that axis go modular.
  ///  * wl_tree_exact — host is the complete 3-ary tree over vertex ids
  ///    (distance 2*steps where steps = iterations of u/=3, v/=3 until
  ///    equal); measured from ids alone, so it pins the edge set itself.
  ///
  /// Absent (default) = no claim for that host.  (Declared after `claim`
  /// so the registry's positional BoundSpec initializers, which end at the
  /// claim string, keep working; wl claims are attached by name.)
  std::function<std::int64_t(const BuildParams&)> wl_grid_exact;
  std::function<std::int64_t(const BuildParams&)> wl_cylinder_exact;
  std::function<std::int64_t(const BuildParams&)> wl_tree_exact;
};

/// One network family's entry point, in both execution modes.
class LayoutBuilder {
 public:
  virtual ~LayoutBuilder() = default;

  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;

  /// Inclusive [min, max] range of BuildParams::n this family accepts.
  virtual std::pair<int, int> n_range() const = 0;

  /// ParamField bits of the BuildParams fields this family reads (n is
  /// implicit).  Defaults to "reads everything" so external subclasses are
  /// never rejected by validate().
  virtual unsigned params_used() const { return kParamAll; }

  /// The family's paper-derived bounds, or nullptr when none are
  /// registered.  The pointer stays valid for the builder's lifetime.
  virtual const BoundSpec* bound_spec() const { return nullptr; }

  /// Materializes the full layout (geometry stored in a WireStore).
  /// Asserting tier: throws InvariantError on out-of-range params.
  virtual BuildResult build(const BuildParams& params) const = 0;

  /// Streams the same construction into \p sink.  With a
  /// layout::MaterializingSink the emitted geometry is bit-identical to
  /// build(); with a layout::StreamingCertifier it is validated and
  /// measured without being stored.  On return \p graph_out (if non-null)
  /// receives the subject graph, its CSR adjacency released where the
  /// family can afford to (degrees stay available).
  /// Asserting tier: throws InvariantError on out-of-range params.
  virtual layout::RouteStats build_stream(const BuildParams& params, layout::WireSink& sink,
                                          topology::Graph* graph_out = nullptr) const = 0;

  /// True when the family can splice optimization passes (--passes,
  /// pass.hpp) into its construction pipeline.  Families built on the star
  /// hierarchy machinery opt in; the rest default to identity-only.
  virtual bool supports_passes() const { return false; }

  /// Streams the construction with the given optimization passes spliced
  /// into the layout pipeline (run_layout_pipeline).  With passes.empty()
  /// this is bit-identical to build_stream().  The default implementation
  /// rejects any non-empty pass list (asserting tier); opting-in families
  /// override it alongside supports_passes().
  virtual layout::RouteStats build_stream_passes(const BuildParams& params,
                                                 const PassList& passes, layout::WireSink& sink,
                                                 topology::Graph* graph_out = nullptr) const;

  /// Stable tier: validates \p params (kSizeOutOfRange, kUnknownParam),
  /// then builds; a resource-budget invariant tripped by the (validated)
  /// construction surfaces as kBudgetExceeded instead of a throw.
  BuildOutcome<BuildResult> try_build(const BuildParams& params) const;

  /// Stable tier, streaming mode — THE streaming entry point.  Validates
  /// request.params against this family (kSizeOutOfRange, kUnknownParam,
  /// with request.explicit_fields naming driver-set fields), rejects a
  /// non-empty request.passes on a family with supports_passes() == false
  /// (kUnknownParam; the CLI surfaces it as exit code 2), then streams the
  /// construction with the requested passes spliced in.  When a telemetry
  /// trace is active the request's canonical key is recorded as a counter
  /// on the enclosing span, so traces are attributable to requests.
  /// request.options is NOT applied here — runtime overrides are the
  /// caller's job (ScopedRequestRuntime), since they are process-global.
  BuildOutcome<layout::RouteStats> try_build_stream(const BuildRequest& request,
                                                    layout::WireSink& sink,
                                                    topology::Graph* graph_out = nullptr) const;

  /// Convenience wrapper: an identity-pipeline request for \p params.
  /// Same error contract as try_build().
  BuildOutcome<layout::RouteStats> try_build_stream(const BuildParams& params,
                                                    layout::WireSink& sink,
                                                    topology::Graph* graph_out = nullptr) const;

  /// DEPRECATED thin wrapper over try_build_stream(BuildRequest): folds
  /// (params, passes) into a request and forwards.  New code should build a
  /// BuildRequest (the passes ride in its `passes` field); this signature
  /// stays only so the pre-PR-9 call sites keep compiling.
  BuildOutcome<layout::RouteStats> try_build_stream_passes(
      const BuildParams& params, const PassList& passes, layout::WireSink& sink,
      topology::Graph* graph_out = nullptr) const;
};

/// Looks up a registered family by name; nullptr when unknown.  Exact
/// match only — the asserting tier's lookup.
const LayoutBuilder* find_builder(std::string_view name);

/// Stable tier lookup: trims whitespace, matches case-insensitively with
/// '_' treated as '-', and on a miss returns kUnknownFamily carrying the
/// nearest registered name ("did you mean 'multilayer-star'?").
BuildOutcome<const LayoutBuilder*> try_find_builder(std::string_view name);

/// All registered families, sorted by name.
std::vector<const LayoutBuilder*> all_builders();

}  // namespace starlay::core
