#pragma once
/// \file pass.hpp
/// \brief The layout pass pipeline: the build path (enumerate -> place ->
///        route -> emit) as an explicit sequence of LayoutPass stages over
///        a shared PassContext, with optional optimization passes spliced
///        in between.
///
/// Structure of every pipeline (run_layout_pipeline):
///
///     front -> [refine] -> route -> [compact] -> emit
///
///  * front    — family hook: enumerate the network, build the Graph, the
///               Placement, and the RouteSpec into the context.
///  * refine   — optional: swap-based placement-energy minimization seeded
///               from the KL bisection oracle (bisect/refine.hpp), followed
///               by the family's respec hook (orientation metadata derived
///               from node rows must track the moved placement).  Energy is
///               a wirelength proxy, not the area objective, so the refined
///               placement is a *candidate*: the pipeline routes both it and
///               the original placement, measures the emitted extents, and
///               keeps the refined plan only on a strict area improvement
///               (the optimized build is monotone in area by construction).
///  * route    — family shed hook (streaming builds drop enumeration
///               scaffolding here), then plan_route: classification,
///               channel selection, stub assignment, track packing.
///  * compact  — optional: track-refined channel re-packing
///               (layout::compact_route), keeping the best grid extent.
///  * emit     — geometry emission into the context's WireSink.
///
/// The identity pipeline (no optimization passes) is bit-identical to the
/// historical monolithic build path: the hooks run in the same order, the
/// router stages execute the same loops, and the telemetry span structure
/// is unchanged ("routing" spans route..emit with the same child sections).
///
/// Only optimization passes are nameable from the outside (--passes=
/// compact,refine); the structural stages are always present and in fixed
/// order, so a pass list is a set, not a program.  parse_pass_list turns
/// user input into a PassList with kUnknownParam + nearest-name suggestion
/// on a miss.
///
/// Authoring a new optimization pass: subclass LayoutPass, mutate only the
/// context (placement before route, route_plan after), keep run() a
/// deterministic pure function of the context for any STARLAY_THREADS, and
/// register it in pass.cpp's registry so parse_pass_list and --help see it.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "starlay/bisect/refine.hpp"
#include "starlay/core/build_status.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/layout/wire_sink.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

/// Which optimization passes a pipeline runs.  The structural stages are
/// implicit; order is fixed (refine before route, compact after), so this
/// is a set of switches rather than a sequence.
struct PassList {
  bool refine = false;
  bool compact = false;

  bool empty() const { return !refine && !compact; }
};

/// Measured effect of the optimization passes, for reports and benches.
struct PassMetrics {
  std::int64_t planned_area_before = -1;  ///< grid extent after plan_route
  std::int64_t planned_area_after = -1;   ///< grid extent going into emit
  layout::CompactionStats compaction;     ///< populated by the compact pass
  bisect::RefineStats refine;             ///< populated by the refine pass
  bool compacted = false;
  bool refined = false;
  /// True when the refined placement strictly reduced the emitted extent
  /// and was kept; false when the pipeline fell back to the original
  /// placement (the refine pass never grows area).
  bool refine_kept = false;
};

/// Everything the passes share.  Family hooks fill the front of it (graph,
/// placement, spec); the router passes fill the back (route_plan, stats).
/// The placement pointer aims into family-owned state (family_state keeps
/// it alive), so the refine pass mutates the same tables the route pass
/// consumes.
struct PassContext {
  topology::Graph graph{0};
  layout::Placement* placement = nullptr;
  layout::RouteSpec spec;
  layout::RouterOptions router_options;
  layout::RoutePlan route_plan;
  layout::WireSink* sink = nullptr;
  layout::RouteStats stats;

  /// Family hooks (see run_layout_pipeline's stage list above).  front is
  /// required; respec runs after a placement-mutating pass and must rebuild
  /// ctx.spec from the current placement; shed (optional) frees enumeration
  /// scaffolding before routing allocates.
  std::function<void(PassContext&)> front;
  std::function<void(PassContext&)> respec;
  std::function<void(PassContext&)> shed;

  /// Keeps family-owned state (e.g. a StarStructure the placement pointer
  /// aims into) alive across passes and retrievable afterward.
  std::shared_ptr<void> family_state;

  /// The "routing" telemetry span, held open from the route pass through
  /// emit so the optimization passes' spans nest under it exactly like the
  /// monolithic router's sections did.
  std::optional<support::telemetry::ScopedPhase> routing_span;

  PassMetrics metrics;

  /// Tuning knobs for the optimization passes.
  layout::CompactionOptions compaction_options;
  bisect::RefineOptions refine_options;
};

/// One pipeline stage.  Instances are stateless singletons (the registry
/// owns them); all state lives in the PassContext.
class LayoutPass {
 public:
  virtual ~LayoutPass() = default;
  virtual std::string_view name() const = 0;
  virtual std::string_view description() const = 0;
  virtual void run(PassContext& ctx) const = 0;
};

/// A declared sequence of passes over one shared context.
class PassManager {
 public:
  PassManager& add(const LayoutPass* pass);
  const std::vector<const LayoutPass*>& sequence() const { return seq_; }
  void run(PassContext& ctx) const;

 private:
  std::vector<const LayoutPass*> seq_;
};

/// Nameable optimization passes ("compact", "refine"); nullptr on a miss.
/// Lookup is normalized like family names (trim, case-fold, '_' == '-').
const LayoutPass* find_pass(std::string_view name);

/// All nameable optimization passes, sorted by name (for --help and docs).
std::vector<const LayoutPass*> all_passes();

/// Parses a comma-separated pass list ("compact,refine"; empty = identity).
/// Unknown names return kUnknownParam with a nearest-name suggestion in the
/// message — the CLI surfaces this as exit code 2.
BuildOutcome<PassList> parse_pass_list(std::string_view csv);

/// Assembles front -> [refine] -> route -> [compact] -> emit per \p passes
/// and runs it over \p ctx.  Requires ctx.front and ctx.sink; returns
/// ctx.stats.  With passes.empty() this is the identity pipeline.
layout::RouteStats run_layout_pipeline(PassContext& ctx, const PassList& passes);

}  // namespace starlay::core
