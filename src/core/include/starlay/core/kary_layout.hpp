#pragma once
/// \file kary_layout.hpp
/// \brief Digit-split grid layout for the 3-ary n-cube.
///
/// The k-ary analogue of hypercube_layout.hpp: the n base-3 digits of a
/// vertex split into a row half (low floor(n/2) digits) and a column half,
/// so every dimension line {0, 1, 2} runs inside one row or one column and
/// the channel packer sees the same collinear profile the hypercube does.
/// The placement's host-embedding wirelengths have exact closed forms
/// (formulas.hpp, arXiv 2204.12079 style) that the oracle re-measures from
/// the finished geometry and checks as equalities.

#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

struct KaryLayoutResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
};

KaryLayoutResult threeary_cube_layout(int n);

/// Streaming variant: same construction, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats threeary_cube_layout_stream(int n, layout::WireSink& sink,
                                               topology::Graph* graph_out = nullptr);

/// The digit-split placement used above: rows = 3^floor(n/2) (low digits),
/// cols = 3^ceil(n/2) (high digits).
layout::Placement threeary_cube_placement(int n);

}  // namespace starlay::core
