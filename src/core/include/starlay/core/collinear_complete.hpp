#pragma once
/// \file collinear_complete.hpp
/// \brief Lemma 2.1 (part 1): collinear layout of K_m in floor(m^2/4) tracks.
///
/// Two interchangeable backends produce the layout:
///  * kPaperRule — the paper's explicit assignment: type-i links (address
///    difference i) occupy min(i, m-i) tracks, grouped by address modulo i
///    when i <= m/2 and one per link otherwise;
///  * kLeftEdge — generic left-edge channel packing (layout/channel.hpp).
/// Both are provably optimal: the track count equals the maximum cut
/// density floor(m^2/4), which is also K_m's bisection width, so the
/// layout is *strictly* optimal among collinear layouts (Theorem 3.5).

#include <cstdint>

#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

enum class TrackBackend { kLeftEdge, kPaperRule };

struct CollinearResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
  std::int32_t tracks = 0;  ///< channel height actually used
};

/// Lays out K_m (optionally with parallel edges) along a single row.
CollinearResult collinear_complete_layout(int m, TrackBackend backend = TrackBackend::kLeftEdge,
                                          int multiplicity = 1);

/// Streaming variant: same construction, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats collinear_complete_layout_stream(
    int m, layout::WireSink& sink, TrackBackend backend = TrackBackend::kLeftEdge,
    int multiplicity = 1, topology::Graph* graph_out = nullptr);

}  // namespace starlay::core
