#pragma once
/// \file lower_bounds.hpp
/// \brief Section 3: BATT / bisection lower-bound aggregators.
///
/// The raw formulas live in formulas.hpp; these helpers combine them into
/// the per-network bound summaries the benches and EXPERIMENTS.md report,
/// reproducing the paper's narrative numbers (the 12.25x improvement over
/// Sykora-Vrt'o from the single-TE time, the further 4x from the pipelined
/// (n-1)-TE throughput, and the final 1 + o(1) upper/lower ratio).

#include <cstdint>

namespace starlay::core {

/// Everything Theorems 3.5/3.7/3.10 say about one network instance.
struct AreaBoundSummary {
  std::int64_t nodes = 0;
  double upper_formula = 0.0;       ///< paper's constructive area (leading term)
  double lb_bisection = 0.0;        ///< Theorem 3.1 with the network's B
  double lb_batt_single = 0.0;      ///< Theorem 3.2 with one-task TE time
  double lb_batt_pipelined = 0.0;   ///< Theorem 3.2 with pipelined TE throughput
  double ratio = 0.0;               ///< upper / best lower
};

/// Star graph S_n: uses Lemma 3.6's pipelined TE and the 2N single-TE time.
AreaBoundSummary star_area_bounds(int n);

/// HCN/HFN with N = 2^(2h) nodes: uses Lemma 3.9's 1/N TE throughput.
AreaBoundSummary hcn_area_bounds(int h);

/// Complete graph K_m: B = floor(m^2/4), and one TE step suffices
/// (T_TE -> f(N) tasks in f(N)*ceil((N-1)/ (N-1)) = 1 step each under
/// all-port: every node sends one packet per link per step).
AreaBoundSummary complete_area_bounds(int m);

/// Multilayer X-Y bounds for the star graph with L layers (Theorem 3.8).
struct XYBoundSummary {
  double upper_formula = 0.0;
  double lb_batt = 0.0;
  double ratio = 0.0;
};
XYBoundSummary star_xy_bounds(int n, int L);

}  // namespace starlay::core
