#pragma once
/// \file build_request.hpp
/// \brief One request representation for every layout consumer.
///
/// Before PR 9, "build family F at size n with passes P using K threads"
/// was smeared across positional CLI flags, environment variables, and a
/// widening fan of entry-point overloads (try_build_stream vs
/// try_build_stream_passes).  A BuildRequest is the single value that
/// carries all of it: the *layout identity* (family, n, the params the
/// family reads, the optimization passes) plus the *runtime options* that
/// change how — but never what — gets built (threads, SIMD level, shard
/// workers, spill dir, trace attachment).
///
/// The same struct flows through every layer:
///
///   socket bytes  — the starlayd protocol parses request JSON into a
///                   BuildRequest (serve/protocol.hpp);
///   cache key     — canonical_key() is the daemon's dedup/cache key: only
///                   identity fields, canonically spelled, runtime options
///                   excluded (results are bit-identical across thread
///                   counts, SIMD levels, and worker counts by the
///                   determinism contract);
///   builder       — LayoutBuilder::try_build_stream(const BuildRequest&)
///                   is the one streaming entry point; the historical
///                   params/passes overloads are thin wrappers over it;
///   telemetry     — a traced build records the canonical key as a span
///                   counter, so traces are attributable to requests;
///   response JSON — the daemon echoes the canonical key back to clients.
///
/// Runtime-option defaults come from support::RuntimeConfig (the one-shot
/// environment parse); per-request overrides are applied scope-locally via
/// ScopedRequestRuntime, never by mutating the environment.

#include <optional>
#include <string>

#include "starlay/core/build_status.hpp"
#include "starlay/core/builder.hpp"
#include "starlay/layout/kernels/kernels.hpp"

namespace starlay::core {

/// How to run a build — never *what* to build.  Excluded from
/// canonical_key(); every field's zero/empty value means "use the
/// process-wide RuntimeConfig default".
struct RequestOptions {
  int threads = 0;        ///< pool size for the build; 0 = process default
  std::string simd;       ///< forced kernel level; empty = process default
  int workers = 0;        ///< sharded runs: forked processes; 0 = default
  int shards = 0;         ///< sharded runs: rank-range shards; 0 = auto
  std::string spill_dir;  ///< sharded runs: spill root; empty = default
  bool trace = false;     ///< attach a telemetry trace to the result
};

struct BuildRequest {
  std::string family;            ///< registry name (normalized on resolve)
  BuildParams params;
  unsigned explicit_fields = 0;  ///< ParamField bits a driver saw set
  PassList passes;               ///< optimization passes (identity if empty)
  RequestOptions options;

  /// A request whose options are seeded from RuntimeConfig::process()
  /// (the STARLAY_* environment, parsed once at startup).
  static BuildRequest with_process_defaults();

  /// Resolves the family against the registry and validates the request
  /// against it: kUnknownFamily (with suggestion), kSizeOutOfRange (with
  /// the valid range), kUnknownParam for a set-but-unread field or for
  /// passes on a family with supports_passes() == false.
  BuildOutcome<const LayoutBuilder*> resolve() const;

  /// Canonical identity serialization, e.g.
  ///     "family=star n=7 base=3 passes=compact,refine"
  /// Field spellings match starcheck case lines; only fields \p builder
  /// reads appear (always, even at their defaults, so the key never
  /// changes meaning if a default does); passes are listed in fixed
  /// alphabetical order; runtime options never appear.  Equal keys mean
  /// bit-identical layouts — this is the daemon's dedup and cache key.
  std::string canonical_key(const LayoutBuilder& builder) const;
};

/// RAII application of a request's runtime overrides: forces the kernel
/// level (kernels::ScopedForcedLevel) and resizes the global pool for the
/// scope, restoring both on destruction.  The pool resize and the forced
/// level are process-global, so the holder must guarantee no other build
/// is running concurrently — the CLI applies it once at startup, the
/// daemon only inside its exclusive execution lane.
class ScopedRequestRuntime {
 public:
  explicit ScopedRequestRuntime(const RequestOptions& options);
  ~ScopedRequestRuntime();
  ScopedRequestRuntime(const ScopedRequestRuntime&) = delete;
  ScopedRequestRuntime& operator=(const ScopedRequestRuntime&) = delete;

  /// The kernel level in effect for this scope (after clamping).
  layout::kernels::SimdLevel active_level() const;

 private:
  std::optional<layout::kernels::ScopedForcedLevel> forced_;
  int restore_threads_ = 0;  ///< 0 = pool was not resized
};

/// Parses a --simd style spelling ("scalar", "sse4", "avx2") to a level;
/// nullopt on an unknown spelling (callers own the diagnostic).
std::optional<layout::kernels::SimdLevel> parse_simd_level(std::string_view name);

}  // namespace starlay::core
