#pragma once
/// \file suggest.hpp
/// \brief Shared nearest-name suggestion for every user-facing lookup.
///
/// try_find_builder introduced the "did you mean 'multilayer-star'?"
/// diagnostic; parse_pass_list grew its own copy, and the service protocol
/// needs the same for unknown method names.  This header is the single
/// implementation: one edit-distance routine and one tie-break rule
/// (smallest distance, then lexicographically smallest name), so every
/// suggestion — family, pass, protocol method — is deterministic and
/// pinned by the same tests.

#include <cstddef>
#include <string_view>
#include <vector>

namespace starlay::core {

/// Plain O(|a|*|b|) Levenshtein distance; candidate sets are tiny
/// (registry names, pass names, protocol methods).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// The candidate closest to \p needle; empty view when \p candidates is
/// empty.  Ties break to the lexicographically smallest candidate —
/// explicitly, not via iteration order — so the suggestion is identical
/// across standard libraries and any future reordering of the set.
std::string_view nearest_name(std::string_view needle,
                              const std::vector<std::string_view>& candidates);

}  // namespace starlay::core
