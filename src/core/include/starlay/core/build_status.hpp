#pragma once
/// \file build_status.hpp
/// \brief Structured, expected-style error returns for the builder API.
///
/// The registry's original surface aborted (threw InvariantError) on any
/// bad input, so callers could not tell "unknown family" from "n out of
/// range" from "the construction blew a resource budget".  This header is
/// the error vocabulary of the stable surface:
///
///   * BuildError      — code + human-readable message, plus the machine-
///                       readable payload per code (valid n-range for
///                       kSizeOutOfRange, nearest-name suggestion for
///                       kUnknownFamily).
///   * BuildStatus     — success or one BuildError (a void outcome).
///   * BuildOutcome<T> — T or one BuildError (an expected-style value).
///
/// LayoutBuilder::try_build / try_build_stream and try_find_builder return
/// these; the historical build()/build_stream()/find_builder() remain as
/// thin asserting wrappers over the same checks.

#include <optional>
#include <string>
#include <utility>

#include "starlay/support/check.hpp"

namespace starlay::core {

enum class BuildErrorCode {
  kUnknownFamily,    ///< no registered builder by that name (see suggestion)
  kUnknownParam,     ///< a param was set that this family does not read
  kSizeOutOfRange,   ///< BuildParams::n outside n_range() (see n_lo/n_hi)
  kBudgetExceeded,   ///< construction blew a resource budget (wire ids,
                     ///< coordinates, bookkeeping widths)
  kInvalidArgument,  ///< malformed driver input (unparsable integer, ...)
  kIoError,          ///< a spill-file operation failed (unwritable spill
                     ///< dir, disk full, ...); see io_path/io_errno
};

/// Short stable identifier for a code ("size-out-of-range", ...).
const char* build_error_code_name(BuildErrorCode code);

struct BuildError {
  BuildErrorCode code = BuildErrorCode::kInvalidArgument;
  std::string message;      ///< complete human-readable diagnostic
  int n_lo = 0, n_hi = 0;   ///< valid range; set for kSizeOutOfRange
  std::string suggestion;   ///< nearest registered name; kUnknownFamily only
  std::string io_path;      ///< failing filesystem path; kIoError only
  int io_errno = 0;         ///< errno of the failed operation; kIoError only
};

/// Success, or exactly one structured error.
class BuildStatus {
 public:
  BuildStatus() = default;  ///< success
  BuildStatus(BuildError err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Requires !ok().
  const BuildError& error() const {
    STARLAY_REQUIRE(err_.has_value(), "BuildStatus: error() on a success status");
    return *err_;
  }

 private:
  std::optional<BuildError> err_;
};

/// A value of type T, or exactly one structured error.
template <typename T>
class BuildOutcome {
 public:
  BuildOutcome(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  BuildOutcome(BuildError err) : err_(std::move(err)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// Requires ok().
  T& value() {
    STARLAY_REQUIRE(value_.has_value(), "BuildOutcome: value() on an error outcome");
    return *value_;
  }
  const T& value() const {
    STARLAY_REQUIRE(value_.has_value(), "BuildOutcome: value() on an error outcome");
    return *value_;
  }

  /// Requires !ok().
  const BuildError& error() const {
    STARLAY_REQUIRE(err_.has_value(), "BuildOutcome: error() on a success outcome");
    return *err_;
  }

  /// The error as a void status (success status when ok()).
  BuildStatus status() const { return ok() ? BuildStatus() : BuildStatus(*err_); }

 private:
  std::optional<T> value_;
  std::optional<BuildError> err_;
};

}  // namespace starlay::core
