#pragma once
/// \file star_model.hpp
/// \brief Finite-size area model for the star layout (the o(N^2) terms).
///
/// The paper's N^2/16 hides two lower-order effects that dominate at
/// buildable n: the block-grid quantization (j blocks on a
/// ceil(sqrt(j))-square grid) and the per-level channel tail
/// (sum over levels of prod ceil(sqrt(j))/j ~ 1/sqrt(n) per step).  This
/// model predicts both by routing each level's supernode complete graph
/// (K_j with multiplicity (j-2)!) on its actual block grid and summing the
/// per-axis channel demands down the recursion:
///
///   H(n) = H_level(n) + rows(n) * H(n-1),   base: the base block's own H,
///
/// plus the node-rectangle terms.  Cross-level track sharing makes the
/// real router slightly better than the model, so measured/model is
/// expected a bit below 1 — much tighter than measured/(N^2/16).

#include <cstdint>

namespace starlay::core {

struct StarAreaModel {
  std::int64_t channel_width = 0;   ///< predicted total vertical tracks
  std::int64_t channel_height = 0;  ///< predicted total horizontal tracks
  std::int64_t node_width = 0;      ///< grid columns x node side
  std::int64_t node_height = 0;
  double area = 0.0;                ///< (cw + nw) * (ch + nh)
};

/// Predicts the n-star layout's measured area including second-order
/// terms.  Matches star_layout(n, base_size)'s construction choices.
StarAreaModel star_area_model(int n, int base_size = 3);

}  // namespace starlay::core
