#pragma once
/// \file complete2d.hpp
/// \brief Lemma 2.1 (part 2): 2-D layouts of complete graphs.
///
/// Nodes are placed on an m1 x m2 grid (m1 = ceil(sqrt(m))); each link is
/// routed as an L through the source's row channel and the destination's
/// column channel.  For the undirected K_m the paper's bundle-halving rule
/// (equivalently: the endpoint u with floor(row(u)/k) even is the source,
/// k = row gap) keeps exactly one orientation per pair and yields area
/// m^4/16 + O(m^3.5).  The directed variant routes both orientations and
/// measures m^4/4 + O(m^3.5).
///
/// Edge multiplicity is supported because the star-graph and HCN layouts
/// reduce to complete graphs with (n-2)! (resp. 1) parallel links between
/// supernodes; copies are split evenly between the two orientations,
/// mirroring the paper's "first half / second half of each bundle".

#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

struct Complete2DResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
  std::int32_t grid_rows = 0;
  std::int32_t grid_cols = 0;
};

/// Undirected K_m with \p multiplicity parallel links per pair.
Complete2DResult complete2d_layout(int m, int multiplicity = 1);

/// Directed K_m: both orientations routed (modelled as multiplicity 2 with
/// forced opposite orientations).  Area leading term m^4/4.
Complete2DResult complete2d_directed_layout(int m);

/// Extended-grid variant of the undirected layout: four-sided attachments,
/// node side ~ceil((m-1)/2) instead of m-1 (Lemma 2.1's smaller node
/// window).  Same m^4/16 asymptotics, smaller finite-size constant.
Complete2DResult complete2d_compact_layout(int m, int multiplicity = 1);

/// Streaming variants: same constructions, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats complete2d_layout_stream(int m, layout::WireSink& sink, int multiplicity = 1,
                                            topology::Graph* graph_out = nullptr);
layout::RouteStats complete2d_compact_layout_stream(int m, layout::WireSink& sink,
                                                    int multiplicity = 1,
                                                    topology::Graph* graph_out = nullptr);
layout::RouteStats complete2d_directed_layout_stream(int m, layout::WireSink& sink,
                                                     topology::Graph* graph_out = nullptr);

/// The paper's orientation (RouteSpec::source_is_u) for a complete-graph
/// style construction: parity rule on rows for row-distinct pairs, with
/// copies alternating orientation.  Exposed for reuse by star/HCN layouts.
std::uint8_t complete_orientation(std::int32_t row_u, std::int32_t row_v, std::int32_t copy);

}  // namespace starlay::core
