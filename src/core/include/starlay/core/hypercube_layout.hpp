#pragma once
/// \file hypercube_layout.hpp
/// \brief Recursive-grid layouts for hypercubes and folded hypercubes.
///
/// Substrate for the HCN/HFN layouts (each cluster is a (folded) hypercube
/// that must fit in an O(sqrt(N))-side block) and for the paper's headline
/// comparison against the 4N^2/9 hypercube area of [28].  The placement
/// splits the d address bits into a row half (low bits) and a column half;
/// dimension links then run inside rows/columns and the channel packer
/// recovers the familiar ~(2/3) 2^d collinear cube profile per channel.

#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

struct HypercubeLayoutResult {
  topology::Graph graph;
  layout::RoutedLayout routed;
};

HypercubeLayoutResult hypercube_layout(int d);
HypercubeLayoutResult folded_hypercube_layout(int d);

/// Enhanced hypercube Q(d, 2) (Tzeng & Wei) on the same bit-split
/// placement; the partial-complement links keep bit 0, so they reflect
/// rows pairwise and columns fully.
HypercubeLayoutResult enhanced_hypercube_layout(int d);

/// Streaming variants: same constructions, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats hypercube_layout_stream(int d, layout::WireSink& sink,
                                           topology::Graph* graph_out = nullptr);
layout::RouteStats folded_hypercube_layout_stream(int d, layout::WireSink& sink,
                                                  topology::Graph* graph_out = nullptr);
layout::RouteStats enhanced_hypercube_layout_stream(int d, layout::WireSink& sink,
                                                    topology::Graph* graph_out = nullptr);

/// The bit-split placement used above (exposed for the HCN layout, which
/// replicates it inside every cluster block).
layout::Placement hypercube_placement(int d);

}  // namespace starlay::core
