#pragma once
/// \file baseline.hpp
/// \brief Unoptimized comparison layouts for the ablation benches (E11).
///
/// The paper's gains come from three ingredients: channel track *sharing*
/// (vs one private track per link), the *hierarchical* block placement,
/// and the *orientation* (bundle-halving) rule.  Each baseline removes one
/// ingredient so the benches can attribute the area factors.

#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

/// Collinear layout with one private track per edge (no sharing at all) —
/// the most naive valid layout; area ~ (#edges) x (row width).
layout::RoutedLayout naive_collinear_layout(const topology::Graph& g);

/// Row-major placement in vertex-id order (ignores the network hierarchy),
/// default parity orientation.
layout::RoutedLayout unordered_grid_layout(const topology::Graph& g);

/// Given any placement, route with every L edge oriented from its
/// smaller-id endpoint (disables the paper's halving rule).
layout::RoutedLayout unbalanced_orientation_layout(const topology::Graph& g,
                                                   const layout::Placement& p);

/// Streaming variants: same constructions, wires emitted into \p sink
/// instead of materialized.  The caller owns \p g (finalized; the naive
/// variant needs incident_edges for its stub ordering).
layout::RouteStats naive_collinear_layout_stream(const topology::Graph& g,
                                                 layout::WireSink& sink);
layout::RouteStats unordered_grid_layout_stream(const topology::Graph& g,
                                                layout::WireSink& sink);
layout::RouteStats unbalanced_orientation_layout_stream(const topology::Graph& g,
                                                        const layout::Placement& p,
                                                        layout::WireSink& sink);

}  // namespace starlay::core
