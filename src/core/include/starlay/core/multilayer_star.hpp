#pragma once
/// \file multilayer_star.hpp
/// \brief Lemma 2.3: multilayer X-Y layouts of the star graph.
///
/// With L wiring layers, odd layers carry horizontal segments and even
/// layers vertical ones (the paper's X-Y discipline).  Each wire is
/// assigned an adjacent (odd, even) layer pair, so its bend vias span only
/// its own two layers; the closed-interval track packing then rules out
/// every 3-D conflict (see layout/validate.hpp).  For even L = 2k the k
/// disjoint pairs (1,2), (3,4), ... each receive 1/k of the wires; for odd
/// L = 2k+1 the 2k overlapping pairs (1,2), (3,2), (3,4), (5,4), ... are
/// weighted so every one of the k+1 horizontal layers carries 1/(k+1) of
/// the horizontal demand and every one of the k vertical layers 1/k of
/// the vertical demand — which is exactly how the paper's area drops from
/// N^2/(4(L-1)^2) to N^2/(4(L^2-1)) for odd L.

#include <cstdint>
#include <utility>
#include <vector>

#include "starlay/core/star_layout.hpp"

namespace starlay::core {

/// The adjacent (h_layer, v_layer) pairs available with L layers:
/// (1,2),(3,4),... for even L; (1,2),(3,2),(3,4),(5,4),... for odd L.
std::vector<std::pair<std::int16_t, std::int16_t>> xy_layer_pairs(int L);

/// Wire-fraction each pair should receive so per-layer loads balance.
/// Same order as xy_layer_pairs; sums to 1.
std::vector<double> xy_pair_weights(int L);

/// Deterministic smooth weighted round-robin assignment of \p count wires
/// to pairs; any window of >= #pairs consecutive indices is balanced.
std::vector<std::int32_t> assign_pairs(std::int64_t count, const std::vector<double>& weights);

struct MultilayerStarResult {
  topology::Graph graph;
  StarStructure structure;
  layout::RoutedLayout routed;
  int num_layers = 0;

  std::int64_t volume() const {
    return static_cast<std::int64_t>(num_layers) * routed.layout.area();
  }
};

/// L-layer X-Y layout of the n-star; 2 <= L, L = o(sqrt(N)/n) for the
/// area claim to have room (the code works for any L >= 2).
MultilayerStarResult multilayer_star_layout(int n, int L, int base_size = 3);

/// Streaming variant: same construction, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats multilayer_star_layout_stream(int n, int L, layout::WireSink& sink,
                                                 int base_size = 3,
                                                 topology::Graph* graph_out = nullptr);

/// Adds the L-layer X-Y assignment to any existing route spec (the
/// Section 2.4 remark: the technique applies to every network that
/// partitions into clusters).  Overwrites spec.layers.
void apply_xy_layers(layout::RouteSpec& spec, std::int64_t num_edges, int L);

}  // namespace starlay::core
