#pragma once
/// \file hcn_layout.hpp
/// \brief Lemma 2.4: N^2/16 + o(N^2) layouts of HCNs and HFNs.
///
/// Clusters (each a (log2 N)/2-dimensional (folded) hypercube) are placed
/// as blocks on a near-square block grid; the inter-cluster links — one per
/// cluster pair, a K_sqrt(N) among supernodes — are routed with the
/// complete-graph scheme at block granularity; intra-cluster links use the
/// hypercube bit-split placement inside each block.  The HCN's sqrt(N)/2
/// diameter links add only O(N sqrt(N)) area.

#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

struct HcnLayoutResult {
  topology::Graph graph;
  layout::Placement placement;
  layout::RoutedLayout routed;
};

/// Layout of the 2^(2h)-node hierarchical cubic network.
HcnLayoutResult hcn_layout(int h);

/// Layout of the 2^(2h)-node hierarchical folded-hypercube network.
HcnLayoutResult hfn_layout(int h);

/// L-layer X-Y variants (Section 2.4's remark: the multilayer technique
/// applies to any cluster-partitionable network).  Area scales like the
/// star's N^2/(4L^2) / N^2/(4(L^2-1)).
HcnLayoutResult multilayer_hcn_layout(int h, int L);
HcnLayoutResult multilayer_hfn_layout(int h, int L);

/// Streaming variants: same constructions, wires emitted into \p sink
/// instead of materialized (see star_layout.hpp for the conventions).
layout::RouteStats hcn_layout_stream(int h, layout::WireSink& sink,
                                     topology::Graph* graph_out = nullptr);
layout::RouteStats hfn_layout_stream(int h, layout::WireSink& sink,
                                     topology::Graph* graph_out = nullptr);
layout::RouteStats multilayer_hcn_layout_stream(int h, int L, layout::WireSink& sink,
                                                topology::Graph* graph_out = nullptr);
layout::RouteStats multilayer_hfn_layout_stream(int h, int L, layout::WireSink& sink,
                                                topology::Graph* graph_out = nullptr);

}  // namespace starlay::core
