#pragma once
/// \file star_layout.hpp
/// \brief Lemma 2.2: the optimal N^2/16 + o(N^2) star-graph layout.
///
/// The construction, flattened onto one global slot grid:
///  * the recursive substar hierarchy (an n-star is n (n-1)-stars, each of
///    which is n-1 (n-2)-stars, ... down to base_size-stars) determines the
///    *placement*: each level-j block occupies a contiguous sub-block of
///    the grid, blocks arranged on a ceil(sqrt(j)) x ceil(j/..) block grid
///    exactly as in the paper;
///  * every dimension-i link is an inter-block link of the level-i complete
///    graph of blocks and is oriented by the paper's bundle-halving parity
///    rule *at block granularity*, then routed as an L through the global
///    row/column channels (router.hpp).
/// Dimension-n links dominate and reproduce the complete-graph constant;
/// everything below contributes only o(N^2) — the measured/claimed ratio
/// approaches 1 from above as n grows (EXPERIMENTS.md, E3).
///
/// The same machinery lays out pancake and bubble-sort graphs (the paper's
/// closing remark of Section 2.3): both are hierarchical Cayley graphs
/// whose dimension-i generators preserve all symbols above position i
/// (star/pancake) or i+1 (bubble-sort).

#include <vector>

#include "starlay/core/pass.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/topology/graph.hpp"

namespace starlay::core {

enum class PermutationFamily { kStar, kPancake, kBubbleSort };

/// Per-vertex digit paths in one flat row-major buffer (stride digits per
/// vertex) instead of n! small vectors — one allocation for the whole
/// hierarchy, cache-linear traversal, and chunkable for parallel fill.
struct DigitPaths {
  std::int32_t stride = 0;          ///< digits per vertex (= #levels)
  std::vector<std::int32_t> flat;   ///< vertex-major, outermost level first

  std::int64_t num_paths() const {
    return stride == 0 ? 0 : static_cast<std::int64_t>(flat.size()) / stride;
  }
  std::int32_t digit(std::int64_t vertex, std::int32_t depth) const {
    return flat[static_cast<std::size_t>(vertex * stride + depth)];
  }
};

/// The hierarchy data shared by the single- and multi-layer constructions.
struct StarStructure {
  int n = 0;
  int base_size = 0;
  std::vector<layout::LevelShape> shapes;  ///< per level, outer first
  DigitPaths paths;                        ///< substar digits + base rank per vertex
  layout::Placement placement;
};

/// The per-level block-grid shapes of the recursive placement (outermost
/// level first, base-block grid last), balanced-orientation rule included.
/// This is the part of star_structure the sharded out-of-core engine needs
/// — the shapes pin down every slot coordinate analytically, without the
/// O(n! * levels) digit-path buffer.  Requires 2 <= base_size <= n <= 12.
std::vector<layout::LevelShape> star_level_shapes(int n, int base_size);

/// Builds the recursive block placement for the n-dimensional family
/// member.  base_size is the paper's l = O(1): blocks of base_size! nodes
/// are laid out directly.  Requires 2 <= base_size <= n.
StarStructure star_structure(int n, int base_size = 3);

/// The paper's orientation for every edge (block-granularity parity rule).
/// \p level_of_label maps an edge label to its hierarchy level (identity
/// for star/pancake, +1 for bubble-sort).
layout::RouteSpec star_route_spec(const topology::Graph& g, const StarStructure& s,
                                  int level_shift = 0);

struct StarLayoutResult {
  topology::Graph graph;
  StarStructure structure;
  layout::RoutedLayout routed;
};

/// Optimal Thompson-model layout of the n-star (N = n! nodes).
StarLayoutResult star_layout(int n, int base_size = 3);

/// Extended-grid variant (Theorem 3.7's smaller node window): attachments
/// use all four node sides, shrinking the node side from n-1 to about
/// ceil((n-1)/2) + 1 and the finite-size area with it.  Same asymptotics.
StarLayoutResult star_layout_compact(int n, int base_size = 3);

/// Same construction for the other permutation families.
StarLayoutResult permutation_layout(PermutationFamily family, int n, int base_size = 3);

/// Per-edge hierarchy levels, for families whose generators do not map
/// one-to-one onto levels (the complete transposition graph: generator
/// (i, j) is a level-j edge).
layout::RouteSpec star_route_spec_levels(const topology::Graph& g, const StarStructure& s,
                                         const std::vector<int>& edge_level);

/// Layout of the n-dimensional complete transposition graph — the
/// "various other networks" remark of Section 2.4: any network that
/// partitions into clusters with multi-link cluster pairs.
StarLayoutResult transposition_layout(int n, int base_size = 3);

/// Streaming variants: identical construction, but the wire geometry is
/// emitted into \p sink (validated/measured tile-by-tile when the sink is
/// a layout::StreamingCertifier) instead of materialized.  The digit-path
/// buffer and the graph's CSR adjacency are freed before routing, so peak
/// memory is the router's plan tables plus one certifier tile.  Pass
/// \p graph_out to keep the (adjacency-released) graph for reporting.
layout::RouteStats permutation_layout_stream(PermutationFamily family, int n,
                                             layout::WireSink& sink, int base_size = 3,
                                             topology::Graph* graph_out = nullptr);
layout::RouteStats star_layout_stream(int n, layout::WireSink& sink, int base_size = 3,
                                      topology::Graph* graph_out = nullptr);
layout::RouteStats star_layout_compact_stream(int n, layout::WireSink& sink, int base_size = 3,
                                              topology::Graph* graph_out = nullptr);
layout::RouteStats transposition_layout_stream(int n, layout::WireSink& sink, int base_size = 3,
                                               topology::Graph* graph_out = nullptr);

/// Pipeline variants: the same streaming construction with the requested
/// optimization passes (pass.hpp) spliced in — refine mutates the
/// hierarchical placement (the route spec is re-derived), compact re-packs
/// the planned channel tracks.  With passes.empty() these are bit-identical
/// to the plain *_stream entry points above (which are thin wrappers over
/// them).  \p metrics_out (optional) receives the measured pass effect.
layout::RouteStats permutation_layout_stream_passes(PermutationFamily family, int n,
                                                    const PassList& passes,
                                                    layout::WireSink& sink, int base_size = 3,
                                                    topology::Graph* graph_out = nullptr,
                                                    PassMetrics* metrics_out = nullptr);
layout::RouteStats star_layout_stream_passes(int n, const PassList& passes,
                                             layout::WireSink& sink, int base_size = 3,
                                             topology::Graph* graph_out = nullptr,
                                             PassMetrics* metrics_out = nullptr);
layout::RouteStats star_layout_compact_stream_passes(int n, const PassList& passes,
                                                     layout::WireSink& sink, int base_size = 3,
                                                     topology::Graph* graph_out = nullptr,
                                                     PassMetrics* metrics_out = nullptr);
layout::RouteStats transposition_layout_stream_passes(int n, const PassList& passes,
                                                      layout::WireSink& sink, int base_size = 3,
                                                      topology::Graph* graph_out = nullptr,
                                                      PassMetrics* metrics_out = nullptr);

}  // namespace starlay::core
