#pragma once
/// \file formulas.hpp
/// \brief Every closed form the paper states, as checkable functions.
///
/// These are the "claimed" columns of EXPERIMENTS.md.  Leading-term
/// formulas (areas, TE times) return doubles; exact combinatorial values
/// (track counts, bisection widths) return integers.

#include <cmath>
#include <cstdint>

namespace starlay::core {

// ---- Complete graphs (Lemma 2.1, Theorem 3.5) -----------------------------

/// Exact minimum track count for the collinear layout of K_m.
inline std::int64_t collinear_complete_tracks(std::int64_t m) { return m * m / 4; }

/// Leading term of the 2-D layout area of an undirected K_m.
inline double complete2d_area(double m) { return m * m * m * m / 16.0; }

/// Leading term of the 2-D layout area of a directed K_m (two opposite
/// links per pair).
inline double complete2d_directed_area(double m) { return m * m * m * m / 4.0; }

/// Exact bisection width of K_m: floor(m^2/4).
inline std::int64_t complete_bisection(std::int64_t m) { return m * m / 4; }

// ---- Star graphs (Lemma 2.2/2.3, Theorems 3.7/3.8, 4.1) -------------------

/// Leading term of the optimal star-graph layout area (N = n!).
inline double star_area(double N) { return N * N / 16.0; }

/// Sykora & Vrt'o 1994: prior best star layout area (72x worse).
inline double sykora_vrto_star_area(double N) { return 4.5 * N * N; }

/// Sykora & Vrt'o 1994: prior best star area lower bound (N^2/784,
/// reconstructed from the paper's 3528x upper/lower ratio and 12.25x
/// improvement statements).
inline double sykora_vrto_star_lower_bound(double N) { return N * N / 784.0; }

/// Lemma 3.6: (n-1) total exchanges in nN + o(nN) steps => per-task time.
inline double star_te_time(int n, double N) {
  return static_cast<double>(n) * N / (n - 1);
}

/// Fragopoulou & Akl: one TE task in 2N + o(N) steps (all-port).
inline double fragopoulou_akl_te_time(double N) { return 2.0 * N; }

/// Leading term of the star bisection width (Theorem 4.1).
inline double star_bisection(double N) { return N / 4.0; }

/// Multilayer star layout area (Lemma 2.3 / Theorem 3.8).
inline double multilayer_star_area(double N, int L) {
  return L % 2 == 0 ? N * N / (4.0 * L * L) : N * N / (4.0 * (static_cast<double>(L) * L - 1));
}

// ---- Hypercubes (comparison baseline, [28]) --------------------------------

/// Optimal hypercube layout area from Yeh-Varvarigos-Parhami FMPC'99:
/// (4/9) N^2 — the 0.444 N^2 the paper compares against.
inline double hypercube_area(double N) { return 4.0 * N * N / 9.0; }

/// The headline ratio: hypercube area / star area = 64/9 = 7.1(1).
inline double star_vs_hypercube_ratio() { return 64.0 / 9.0; }

/// Exact hypercube bisection width: N/2.
inline std::int64_t hypercube_bisection(std::int64_t N) { return N / 2; }

// ---- Host-embedding wirelengths (arXiv 2204.12079 / cs/0105034 style) ------
//
// Exact total wirelength of the canonical bit/digit-split placements into
// abstract host metrics, re-derived in the style of the 3-ary n-cube
// embedding paper (arXiv 2204.12079: cylinders and complete ternary trees)
// and measured independently by the oracle (check/oracle.cpp) from the
// finished geometry.  All are exact integers, not leading terms, so the
// oracle checks them as equalities — an off-by-one in a placement digit
// split trips them where slack-bounded area checks stay silent.

inline std::int64_t int_pow(std::int64_t base, int e) {
  std::int64_t p = 1;
  for (int i = 0; i < e; ++i) p *= base;
  return p;
}

/// Hypercube Q_d, bit-split placement (low d/2 bits -> row): the dimension-b
/// link moves one lattice step of weight 2^b inside its half, 2^(d-1) links
/// per dimension.  Sum: 2^(d-1) (2^floor(d/2) + 2^ceil(d/2) - 2).
inline std::int64_t hypercube_grid_wirelength(int d) {
  const int rb = d / 2;
  return int_pow(2, d - 1) * (int_pow(2, rb) + int_pow(2, d - rb) - 2);
}

/// Folded hypercube FQ_d on the same placement: Q_d plus N/2 complement
/// links; complementing reflects both lattice coordinates, contributing
/// (cols floor(rows^2/2) + rows floor(cols^2/2)) / 2 in total.
inline std::int64_t folded_hypercube_grid_wirelength(int d) {
  const std::int64_t rows = int_pow(2, d / 2);
  const std::int64_t cols = int_pow(2, d - d / 2);
  return hypercube_grid_wirelength(d) +
         (cols * (rows * rows / 2) + rows * (cols * cols / 2)) / 2;
}

/// Enhanced hypercube Q(d, 2) on the same placement: the partial complement
/// keeps bit 0 (a row bit), reflecting rows in pairs and columns fully:
/// extra links contribute 2 cols floor(rows^2/8) + rows cols^2/4.
inline std::int64_t enhanced_hypercube_grid_wirelength(int d) {
  const std::int64_t rows = int_pow(2, d / 2);
  const std::int64_t cols = int_pow(2, d - d / 2);
  return hypercube_grid_wirelength(d) + 2 * cols * (rows * rows / 8) +
         rows * cols * cols / 4;
}

/// 3-ary n-cube, digit-split placement (low n/2 digits -> row): a dimension
/// line {0, 1, 2} at digit weight w costs (1 + 1 + 2) w = 4w, 3^(n-1) lines
/// per dimension.  Sum: 2 * 3^(n-1) (3^floor(n/2) + 3^ceil(n/2) - 2).
inline std::int64_t threeary_grid_wirelength(int n) {
  const int a = n / 2;
  return 2 * int_pow(3, n - 1) * (int_pow(3, a) + int_pow(3, n - a) - 2);
}

/// Same placement with the row axis closed into a cycle (the 2204.12079
/// cylinder host): only the top row digit's wrap link benefits, saving
/// 3^(a-1) on one link of each of the 3^(n-1) lines of that dimension.
inline std::int64_t threeary_cylinder_wirelength(int n) {
  const int a = n / 2;
  return threeary_grid_wirelength(n) - (a >= 1 ? int_pow(3, n + a - 2) : 0);
}

/// Complete ternary tree host, leaves in digit order: a dimension-j link
/// joins leaves whose lowest common ancestor sits j+1 levels up, so it
/// costs 2(j+1); 3^n links per dimension.  Sum: 3^n n (n+1).
inline std::int64_t threeary_tree_wirelength(int n) {
  return int_pow(3, n) * n * (n + 1);
}

// ---- HCN / HFN (Lemma 2.4, Theorems 3.10, 4.2) ------------------------------

/// Leading term of the optimal HCN/HFN layout area.
inline double hcn_area(double N) { return N * N / 16.0; }

/// Exact bisection width of HCN and HFN (Theorem 4.2).
inline std::int64_t hcn_bisection(std::int64_t N) { return N / 4; }

/// Lemma 3.9: TE throughput arbitrarily close to 1/N => effective per-task
/// time used in Theorem 4.2 (f(N)=10N tasks in 10N^2+2N steps).
inline double hcn_te_time(double N) { return N + 0.2; }

// ---- Lower bounds (Theorems 3.1-3.4) ----------------------------------------

/// Theorem 3.1: area >= B^2 (Thompson / extended grid).
inline double area_lb_bisection(double B) { return B * B; }

/// Theorem 3.2 (BATT): area >= floor(N/2)^2 ceil(N/2)^2 / T_TE^2.
inline double area_lb_batt(std::int64_t N, double t_te) {
  const double lo = static_cast<double>(N / 2);
  const double hi = static_cast<double>(N - N / 2);
  return lo * lo * hi * hi / (t_te * t_te);
}

/// Theorem 3.3: X-Y layout area >= 4B^2/L^2 (even L) or 4B^2/(L^2-1) (odd).
inline double xy_area_lb_bisection(double B, int L) {
  return L % 2 == 0 ? 4.0 * B * B / (static_cast<double>(L) * L)
                    : 4.0 * B * B / (static_cast<double>(L) * L - 1);
}

/// Theorem 3.4: X-Y BATT bound.
inline double xy_area_lb_batt(std::int64_t N, double t_te, int L) {
  const double base = 4.0 * area_lb_batt(N, t_te);
  return L % 2 == 0 ? base / (static_cast<double>(L) * L)
                    : base / (static_cast<double>(L) * L - 1);
}

/// Theorem 4.2's chain: B >= floor(N/2) ceil(N/2) / T_TE.
inline double bisection_lb_batt(std::int64_t N, double t_te) {
  return static_cast<double>(N / 2) * static_cast<double>(N - N / 2) / t_te;
}

}  // namespace starlay::core
