#pragma once
/// \file formulas.hpp
/// \brief Every closed form the paper states, as checkable functions.
///
/// These are the "claimed" columns of EXPERIMENTS.md.  Leading-term
/// formulas (areas, TE times) return doubles; exact combinatorial values
/// (track counts, bisection widths) return integers.

#include <cmath>
#include <cstdint>

namespace starlay::core {

// ---- Complete graphs (Lemma 2.1, Theorem 3.5) -----------------------------

/// Exact minimum track count for the collinear layout of K_m.
inline std::int64_t collinear_complete_tracks(std::int64_t m) { return m * m / 4; }

/// Leading term of the 2-D layout area of an undirected K_m.
inline double complete2d_area(double m) { return m * m * m * m / 16.0; }

/// Leading term of the 2-D layout area of a directed K_m (two opposite
/// links per pair).
inline double complete2d_directed_area(double m) { return m * m * m * m / 4.0; }

/// Exact bisection width of K_m: floor(m^2/4).
inline std::int64_t complete_bisection(std::int64_t m) { return m * m / 4; }

// ---- Star graphs (Lemma 2.2/2.3, Theorems 3.7/3.8, 4.1) -------------------

/// Leading term of the optimal star-graph layout area (N = n!).
inline double star_area(double N) { return N * N / 16.0; }

/// Sykora & Vrt'o 1994: prior best star layout area (72x worse).
inline double sykora_vrto_star_area(double N) { return 4.5 * N * N; }

/// Sykora & Vrt'o 1994: prior best star area lower bound (N^2/784,
/// reconstructed from the paper's 3528x upper/lower ratio and 12.25x
/// improvement statements).
inline double sykora_vrto_star_lower_bound(double N) { return N * N / 784.0; }

/// Lemma 3.6: (n-1) total exchanges in nN + o(nN) steps => per-task time.
inline double star_te_time(int n, double N) {
  return static_cast<double>(n) * N / (n - 1);
}

/// Fragopoulou & Akl: one TE task in 2N + o(N) steps (all-port).
inline double fragopoulou_akl_te_time(double N) { return 2.0 * N; }

/// Leading term of the star bisection width (Theorem 4.1).
inline double star_bisection(double N) { return N / 4.0; }

/// Multilayer star layout area (Lemma 2.3 / Theorem 3.8).
inline double multilayer_star_area(double N, int L) {
  return L % 2 == 0 ? N * N / (4.0 * L * L) : N * N / (4.0 * (static_cast<double>(L) * L - 1));
}

// ---- Hypercubes (comparison baseline, [28]) --------------------------------

/// Optimal hypercube layout area from Yeh-Varvarigos-Parhami FMPC'99:
/// (4/9) N^2 — the 0.444 N^2 the paper compares against.
inline double hypercube_area(double N) { return 4.0 * N * N / 9.0; }

/// The headline ratio: hypercube area / star area = 64/9 = 7.1(1).
inline double star_vs_hypercube_ratio() { return 64.0 / 9.0; }

/// Exact hypercube bisection width: N/2.
inline std::int64_t hypercube_bisection(std::int64_t N) { return N / 2; }

// ---- HCN / HFN (Lemma 2.4, Theorems 3.10, 4.2) ------------------------------

/// Leading term of the optimal HCN/HFN layout area.
inline double hcn_area(double N) { return N * N / 16.0; }

/// Exact bisection width of HCN and HFN (Theorem 4.2).
inline std::int64_t hcn_bisection(std::int64_t N) { return N / 4; }

/// Lemma 3.9: TE throughput arbitrarily close to 1/N => effective per-task
/// time used in Theorem 4.2 (f(N)=10N tasks in 10N^2+2N steps).
inline double hcn_te_time(double N) { return N + 0.2; }

// ---- Lower bounds (Theorems 3.1-3.4) ----------------------------------------

/// Theorem 3.1: area >= B^2 (Thompson / extended grid).
inline double area_lb_bisection(double B) { return B * B; }

/// Theorem 3.2 (BATT): area >= floor(N/2)^2 ceil(N/2)^2 / T_TE^2.
inline double area_lb_batt(std::int64_t N, double t_te) {
  const double lo = static_cast<double>(N / 2);
  const double hi = static_cast<double>(N - N / 2);
  return lo * lo * hi * hi / (t_te * t_te);
}

/// Theorem 3.3: X-Y layout area >= 4B^2/L^2 (even L) or 4B^2/(L^2-1) (odd).
inline double xy_area_lb_bisection(double B, int L) {
  return L % 2 == 0 ? 4.0 * B * B / (static_cast<double>(L) * L)
                    : 4.0 * B * B / (static_cast<double>(L) * L - 1);
}

/// Theorem 3.4: X-Y BATT bound.
inline double xy_area_lb_batt(std::int64_t N, double t_te, int L) {
  const double base = 4.0 * area_lb_batt(N, t_te);
  return L % 2 == 0 ? base / (static_cast<double>(L) * L)
                    : base / (static_cast<double>(L) * L - 1);
}

/// Theorem 4.2's chain: B >= floor(N/2) ceil(N/2) / T_TE.
inline double bisection_lb_batt(std::int64_t N, double t_te) {
  return static_cast<double>(N / 2) * static_cast<double>(N - N / 2) / t_te;
}

}  // namespace starlay::core
