#include "starlay/core/lower_bounds.hpp"

#include <algorithm>

#include "starlay/core/formulas.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"

namespace starlay::core {

AreaBoundSummary star_area_bounds(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 20, "star_area_bounds: n out of range");
  AreaBoundSummary s;
  s.nodes = starlay::factorial(n);
  const auto N = static_cast<double>(s.nodes);
  s.upper_formula = star_area(N);
  s.lb_bisection = area_lb_bisection(star_bisection(N));
  s.lb_batt_single = area_lb_batt(s.nodes, fragopoulou_akl_te_time(N));
  s.lb_batt_pipelined = area_lb_batt(s.nodes, star_te_time(n, N));
  // The bisection-based bound is informational only: the paper *derives*
  // B = N/4 from the layout/TE sandwich, so using it here would be
  // circular.  The honest lower bound is BATT.
  s.ratio = s.upper_formula / std::max(s.lb_batt_single, s.lb_batt_pipelined);
  return s;
}

AreaBoundSummary hcn_area_bounds(int h) {
  STARLAY_REQUIRE(h >= 1 && h <= 15, "hcn_area_bounds: h out of range");
  AreaBoundSummary s;
  s.nodes = std::int64_t{1} << (2 * h);
  const auto N = static_cast<double>(s.nodes);
  s.upper_formula = hcn_area(N);
  s.lb_bisection = area_lb_bisection(static_cast<double>(hcn_bisection(s.nodes)));
  s.lb_batt_single = area_lb_batt(s.nodes, 2.0 * N);  // conservative single-task time
  s.lb_batt_pipelined = area_lb_batt(s.nodes, hcn_te_time(N));
  // BATT only — B = N/4 is itself a consequence (Theorem 4.2).
  s.ratio = s.upper_formula / std::max(s.lb_batt_single, s.lb_batt_pipelined);
  return s;
}

AreaBoundSummary complete_area_bounds(int m) {
  STARLAY_REQUIRE(m >= 2, "complete_area_bounds: m out of range");
  AreaBoundSummary s;
  s.nodes = m;
  const auto M = static_cast<double>(m);
  s.upper_formula = complete2d_area(M);
  s.lb_bisection = area_lb_bisection(static_cast<double>(complete_bisection(m)));
  // All-port K_m performs a whole TE task in one step (each node sends the
  // packet for every destination over the direct link).
  s.lb_batt_single = area_lb_batt(s.nodes, 1.0);
  s.lb_batt_pipelined = s.lb_batt_single;
  s.ratio = s.upper_formula /
            std::max({s.lb_bisection, s.lb_batt_single, s.lb_batt_pipelined});
  return s;
}

XYBoundSummary star_xy_bounds(int n, int L) {
  STARLAY_REQUIRE(L >= 2, "star_xy_bounds: need >= 2 layers");
  const std::int64_t nodes = starlay::factorial(n);
  const auto N = static_cast<double>(nodes);
  XYBoundSummary s;
  s.upper_formula = multilayer_star_area(N, L);
  s.lb_batt = xy_area_lb_batt(nodes, star_te_time(n, N), L);
  s.ratio = s.upper_formula / s.lb_batt;
  return s;
}

}  // namespace starlay::core
