#include "starlay/core/hypercube_layout.hpp"

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

layout::Placement hypercube_placement(int d) {
  STARLAY_REQUIRE(d >= 1, "hypercube_placement: d must be >= 1");
  const int row_bits = d / 2;  // low bits index the row
  const std::int32_t rows = std::int32_t{1} << row_bits;
  const std::int32_t cols = std::int32_t{1} << (d - row_bits);
  layout::Placement p;
  p.rows = rows;
  p.cols = cols;
  const std::int32_t N = std::int32_t{1} << d;
  p.slot.resize(static_cast<std::size_t>(N));
  const std::int32_t row_mask = rows - 1;
  for (std::int32_t v = 0; v < N; ++v) {
    const std::int32_t r = v & row_mask;
    const std::int32_t c = v >> row_bits;
    p.slot[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(r) * cols + c;
  }
  return p;
}

HypercubeLayoutResult hypercube_layout(int d) {
  topology::Graph g = topology::hypercube(d);
  const layout::Placement p = hypercube_placement(d);
  layout::RoutedLayout routed = layout::route_grid(g, p);
  return {std::move(g), std::move(routed)};
}

HypercubeLayoutResult folded_hypercube_layout(int d) {
  topology::Graph g = topology::folded_hypercube(d);
  const layout::Placement p = hypercube_placement(d);
  layout::RoutedLayout routed = layout::route_grid(g, p);
  return {std::move(g), std::move(routed)};
}

HypercubeLayoutResult enhanced_hypercube_layout(int d) {
  topology::Graph g = topology::enhanced_hypercube(d, 2);
  const layout::Placement p = hypercube_placement(d);
  layout::RoutedLayout routed = layout::route_grid(g, p);
  return {std::move(g), std::move(routed)};
}

layout::RouteStats hypercube_layout_stream(int d, layout::WireSink& sink,
                                           topology::Graph* graph_out) {
  topology::Graph g = topology::hypercube(d);
  const layout::Placement p = hypercube_placement(d);
  g.release_adjacency();
  layout::RouteStats stats = layout::route_grid_stream(g, p, {}, {}, sink);
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

layout::RouteStats folded_hypercube_layout_stream(int d, layout::WireSink& sink,
                                                  topology::Graph* graph_out) {
  topology::Graph g = topology::folded_hypercube(d);
  const layout::Placement p = hypercube_placement(d);
  g.release_adjacency();
  layout::RouteStats stats = layout::route_grid_stream(g, p, {}, {}, sink);
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

layout::RouteStats enhanced_hypercube_layout_stream(int d, layout::WireSink& sink,
                                                    topology::Graph* graph_out) {
  topology::Graph g = topology::enhanced_hypercube(d, 2);
  const layout::Placement p = hypercube_placement(d);
  g.release_adjacency();
  layout::RouteStats stats = layout::route_grid_stream(g, p, {}, {}, sink);
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

}  // namespace starlay::core
