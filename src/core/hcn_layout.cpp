#include "starlay/core/hcn_layout.hpp"

#include "starlay/core/multilayer_star.hpp"

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

HcnLayoutResult hierarchical_layout(int h, bool folded, int num_layers = 2) {
  STARLAY_REQUIRE(h >= 1 && h <= 8, "hcn/hfn layout: h must be in [1, 8]");
  topology::Graph g = folded ? topology::hfn(h) : topology::hcn(h);
  const std::int32_t M = std::int32_t{1} << h;  // clusters == cluster size

  // Two-level hierarchical placement: cluster block grid, then the
  // hypercube bit-split grid inside each block.
  const auto cf = starlay::grid_factors(M);
  // Orient the intra-cluster bit split so the overall slot grid stays as
  // square as possible.
  int row_bits = h / 2;
  {
    const auto skew = [&](int rb) {
      const double r = static_cast<double>(cf.rows) * (1 << rb);
      const double c = static_cast<double>(cf.cols) * (1 << (h - rb));
      return r > c ? r / c : c / r;
    };
    if (skew(h - h / 2) < skew(h / 2)) row_bits = h - h / 2;
  }
  const std::int32_t in_rows = std::int32_t{1} << row_bits;
  const std::int32_t in_cols = std::int32_t{1} << (h - row_bits);
  std::vector<layout::LevelShape> shapes = {{cf.rows, cf.cols}, {in_rows, in_cols}};

  std::vector<std::vector<std::int32_t>> paths(static_cast<std::size_t>(g.num_vertices()));
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const std::int32_t c = topology::hcn_cluster_of(h, v);
    const std::int32_t x = topology::hcn_local_of(h, v);
    const std::int32_t lr = x & (in_rows - 1);
    const std::int32_t lc = x >> row_bits;
    paths[static_cast<std::size_t>(v)] = {c, lr * in_cols + lc};
  }
  layout::Placement p = layout::hierarchical_placement(paths, shapes);

  // Orientation: inter-cluster and diameter links follow the parity rule
  // at cluster-block granularity (the complete-graph scheme); intra links
  // use node granularity.
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    bool u_src = true;
    if (ed.label == topology::kInterClusterLabel || ed.label == topology::kDiameterLabel) {
      const std::int32_t cu = topology::hcn_cluster_of(h, ed.u);
      const std::int32_t cv = topology::hcn_cluster_of(h, ed.v);
      const std::int32_t bru = cu / cf.cols, brv = cv / cf.cols;
      if (bru != brv) {
        u_src = layout::parity_source_is_first(bru, brv);
      } else {
        const std::int32_t bcu = cu % cf.cols, bcv = cv % cf.cols;
        STARLAY_REQUIRE(bcu != bcv, "hcn_layout: identical cluster blocks");
        u_src = layout::parity_source_is_first(bcu, bcv);
      }
    } else {
      const std::int32_t ru = p.row_of(ed.u), rv = p.row_of(ed.v);
      if (ru != rv) u_src = layout::parity_source_is_first(ru, rv);
    }
    spec.source_is_u[static_cast<std::size_t>(e)] = u_src ? 1 : 0;
  }

  if (num_layers > 2) apply_xy_layers(spec, g.num_edges(), num_layers);
  layout::RoutedLayout routed = layout::route_grid(g, p, spec);
  return {std::move(g), std::move(p), std::move(routed)};
}

}  // namespace

HcnLayoutResult hcn_layout(int h) { return hierarchical_layout(h, /*folded=*/false); }

HcnLayoutResult hfn_layout(int h) { return hierarchical_layout(h, /*folded=*/true); }

HcnLayoutResult multilayer_hcn_layout(int h, int L) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hcn_layout: need at least 2 layers");
  return hierarchical_layout(h, /*folded=*/false, L);
}

HcnLayoutResult multilayer_hfn_layout(int h, int L) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hfn_layout: need at least 2 layers");
  return hierarchical_layout(h, /*folded=*/true, L);
}

}  // namespace starlay::core
