#include "starlay/core/hcn_layout.hpp"

#include "starlay/core/multilayer_star.hpp"

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

/// Everything the router consumes, shared by the materialized and
/// streaming tails.
struct HcnPrep {
  topology::Graph graph;
  layout::Placement placement;
  layout::RouteSpec spec;
};

HcnPrep hierarchical_prep(int h, bool folded, int num_layers) {
  STARLAY_REQUIRE(h >= 1 && h <= 8, "hcn/hfn layout: h must be in [1, 8]");
  topology::Graph g = folded ? topology::hfn(h) : topology::hcn(h);
  const std::int32_t M = std::int32_t{1} << h;  // clusters == cluster size

  // Two-level hierarchical placement: cluster block grid, then the
  // hypercube bit-split grid inside each block.
  const auto cf = starlay::grid_factors(M);
  // Orient the intra-cluster bit split so the overall slot grid stays as
  // square as possible.
  int row_bits = h / 2;
  {
    const auto skew = [&](int rb) {
      const double r = static_cast<double>(cf.rows) * (1 << rb);
      const double c = static_cast<double>(cf.cols) * (1 << (h - rb));
      return r > c ? r / c : c / r;
    };
    if (skew(h - h / 2) < skew(h / 2)) row_bits = h - h / 2;
  }
  const std::int32_t in_rows = std::int32_t{1} << row_bits;
  const std::int32_t in_cols = std::int32_t{1} << (h - row_bits);
  std::vector<layout::LevelShape> shapes = {{cf.rows, cf.cols}, {in_rows, in_cols}};

  std::vector<std::vector<std::int32_t>> paths(static_cast<std::size_t>(g.num_vertices()));
  for (std::int32_t v = 0; v < g.num_vertices(); ++v) {
    const std::int32_t c = topology::hcn_cluster_of(h, v);
    const std::int32_t x = topology::hcn_local_of(h, v);
    const std::int32_t lr = x & (in_rows - 1);
    const std::int32_t lc = x >> row_bits;
    paths[static_cast<std::size_t>(v)] = {c, lr * in_cols + lc};
  }
  layout::Placement p = layout::hierarchical_placement(paths, shapes);

  // Orientation: inter-cluster and diameter links follow the parity rule
  // at cluster-block granularity (the complete-graph scheme); intra links
  // use node granularity.
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    bool u_src = true;
    if (ed.label == topology::kInterClusterLabel || ed.label == topology::kDiameterLabel) {
      const std::int32_t cu = topology::hcn_cluster_of(h, ed.u);
      const std::int32_t cv = topology::hcn_cluster_of(h, ed.v);
      const std::int32_t bru = cu / cf.cols, brv = cv / cf.cols;
      if (bru != brv) {
        u_src = layout::parity_source_is_first(bru, brv);
      } else {
        const std::int32_t bcu = cu % cf.cols, bcv = cv % cf.cols;
        STARLAY_REQUIRE(bcu != bcv, "hcn_layout: identical cluster blocks");
        u_src = layout::parity_source_is_first(bcu, bcv);
      }
    } else {
      const std::int32_t ru = p.row_of(ed.u), rv = p.row_of(ed.v);
      if (ru != rv) u_src = layout::parity_source_is_first(ru, rv);
    }
    spec.source_is_u[static_cast<std::size_t>(e)] = u_src ? 1 : 0;
  }

  if (num_layers > 2) apply_xy_layers(spec, g.num_edges(), num_layers);
  return {std::move(g), std::move(p), std::move(spec)};
}

HcnLayoutResult hierarchical_layout(int h, bool folded, int num_layers = 2) {
  HcnPrep pr = hierarchical_prep(h, folded, num_layers);
  layout::RoutedLayout routed = layout::route_grid(pr.graph, pr.placement, pr.spec);
  return {std::move(pr.graph), std::move(pr.placement), std::move(routed)};
}

layout::RouteStats hierarchical_stream(int h, bool folded, int num_layers,
                                       layout::WireSink& sink, topology::Graph* graph_out) {
  HcnPrep pr = hierarchical_prep(h, folded, num_layers);
  pr.graph.release_adjacency();
  layout::RouteStats stats =
      layout::route_grid_stream(pr.graph, pr.placement, pr.spec, {}, sink);
  if (graph_out) *graph_out = std::move(pr.graph);
  return stats;
}

}  // namespace

HcnLayoutResult hcn_layout(int h) { return hierarchical_layout(h, /*folded=*/false); }

HcnLayoutResult hfn_layout(int h) { return hierarchical_layout(h, /*folded=*/true); }

HcnLayoutResult multilayer_hcn_layout(int h, int L) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hcn_layout: need at least 2 layers");
  return hierarchical_layout(h, /*folded=*/false, L);
}

HcnLayoutResult multilayer_hfn_layout(int h, int L) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hfn_layout: need at least 2 layers");
  return hierarchical_layout(h, /*folded=*/true, L);
}

layout::RouteStats hcn_layout_stream(int h, layout::WireSink& sink,
                                     topology::Graph* graph_out) {
  return hierarchical_stream(h, /*folded=*/false, 2, sink, graph_out);
}

layout::RouteStats hfn_layout_stream(int h, layout::WireSink& sink,
                                     topology::Graph* graph_out) {
  return hierarchical_stream(h, /*folded=*/true, 2, sink, graph_out);
}

layout::RouteStats multilayer_hcn_layout_stream(int h, int L, layout::WireSink& sink,
                                                topology::Graph* graph_out) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hcn_layout_stream: need at least 2 layers");
  return hierarchical_stream(h, /*folded=*/false, L, sink, graph_out);
}

layout::RouteStats multilayer_hfn_layout_stream(int h, int L, layout::WireSink& sink,
                                                topology::Graph* graph_out) {
  STARLAY_REQUIRE(L >= 2, "multilayer_hfn_layout_stream: need at least 2 layers");
  return hierarchical_stream(h, /*folded=*/true, L, sink, graph_out);
}

}  // namespace starlay::core
