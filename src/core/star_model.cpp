#include "starlay/core/star_model.hpp"

#include <numeric>

#include "starlay/core/complete2d.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/layout/router.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

/// Channel demand of one hierarchy level: the level's j blocks as
/// supernodes of a complete graph with (j-2)! parallel links, placed on
/// the same (possibly transposed) block grid the star construction uses.
struct LevelDemand {
  std::int64_t h_tracks;
  std::int64_t v_tracks;
};

LevelDemand level_demand(int j, layout::LevelShape shape) {
  const int mult = j >= 2 ? static_cast<int>(starlay::factorial(j - 2)) : 1;
  topology::Graph g = topology::complete_graph(j, mult);
  const layout::Placement p = layout::grid_placement(j, shape.rows, shape.cols);
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    spec.source_is_u[static_cast<std::size_t>(e)] =
        complete_orientation(p.row_of(ed.u), p.row_of(ed.v), ed.label);
  }
  const layout::RoutedLayout r = layout::route_grid(g, p, spec);
  return {std::accumulate(r.row_channel_tracks.begin(), r.row_channel_tracks.end(),
                          std::int64_t{0}),
          std::accumulate(r.col_channel_tracks.begin(), r.col_channel_tracks.end(),
                          std::int64_t{0})};
}

}  // namespace

StarAreaModel star_area_model(int n, int base_size) {
  STARLAY_REQUIRE(n >= 2 && n <= 10, "star_area_model: n in [2, 10]");
  if (base_size > n) base_size = n;
  const StarStructure s = star_structure(n, base_size);

  // Channel recursion down the levels (outermost first in s.shapes).
  std::int64_t h_total = 0, v_total = 0;
  std::int64_t row_mult = 1, col_mult = 1;  // sibling copies sharing rows/cols
  for (int j = n; j > base_size; --j) {
    const layout::LevelShape shape = s.shapes[static_cast<std::size_t>(n - j)];
    const LevelDemand d = level_demand(j, shape);
    // All sibling blocks at this level live in disjoint column ranges of
    // the same rows (and vice versa), so the per-level demand enters once
    // per *outer* row/column strip, not once per block.
    h_total += row_mult * d.h_tracks;
    v_total += col_mult * d.v_tracks;
    row_mult *= shape.rows;
    col_mult *= shape.cols;
  }
  // Base blocks: measure one directly (they are tiny).
  {
    const StarLayoutResult base = star_layout(base_size, base_size);
    const std::int64_t bh =
        std::accumulate(base.routed.row_channel_tracks.begin(),
                        base.routed.row_channel_tracks.end(), std::int64_t{0});
    const std::int64_t bv =
        std::accumulate(base.routed.col_channel_tracks.begin(),
                        base.routed.col_channel_tracks.end(), std::int64_t{0});
    h_total += row_mult * bh;
    v_total += col_mult * bv;
  }

  StarAreaModel m;
  m.channel_height = h_total;
  m.channel_width = v_total;
  m.node_width = static_cast<std::int64_t>(s.placement.cols) * (n - 1);
  m.node_height = static_cast<std::int64_t>(s.placement.rows) * (n - 1);
  m.area = static_cast<double>(m.channel_width + m.node_width) *
           static_cast<double>(m.channel_height + m.node_height);
  return m;
}

}  // namespace starlay::core
